module thedb

go 1.22
