package thedb

import (
	"fmt"
	"io"
	"time"

	"thedb/internal/checkpoint"
	"thedb/internal/metrics"
	"thedb/internal/wal"
)

// WALSet manages a directory of per-worker WAL generation files. Open
// one with OpenWALSet, pass it as Config.WALSet, and the database logs
// into rotating generation files that checkpoints truncate — instead
// of a single ever-growing stream per worker.
type WALSet = checkpoint.FileSet

// CheckpointInfo describes a published or loaded checkpoint image.
type CheckpointInfo = checkpoint.Info

// BootReport is the structured recovery summary a server emits at
// boot (see cmd/thedb-server and /debug/recovery).
type BootReport = checkpoint.BootReport

// OpenWALSet opens (or creates) dir as a WAL generation directory:
// existing generation files become the recovery tail (BootStreams),
// and a fresh generation is created for each worker's live stream.
func OpenWALSet(dir string, workers int) (*WALSet, error) {
	return checkpoint.OpenFileSet(dir, workers, nil)
}

// CheckpointStats exposes the checkpoint subsystem's counters (also
// served as thedb_checkpoint_* by the obs plane).
func (db *DB) CheckpointStats() *metrics.Checkpoint { return &db.ckstats }

// SeedEpoch fast-forwards the global epoch to at least epoch. Callers
// restoring state from a checkpoint or raw streams (RecoverFromWith
// does this itself) must seed past the highest recovered commit epoch
// before serving: the epoch counter restarts at 1 in every process,
// and a commit inheriting a recovered record's far-higher epoch would
// otherwise sit above every seal the advancer writes and be dropped by
// the next salvage.
func (db *DB) SeedEpoch(epoch uint32) {
	db.ensureEngines()
	if db.eng != nil {
		db.eng.SeedEpoch(epoch)
	}
}

// checkpointSource builds the engine surface the checkpointer
// snapshots, validating that an online checkpoint is safe: value
// logging only (a fuzzy image plus command replay double-executes
// procedures; value replay is idempotent under the Thomas write rule)
// and a live durability frontier to gate publication on.
func (db *DB) checkpointSource() (checkpoint.Source, error) {
	db.ensureEngines()
	if db.deng != nil {
		return checkpoint.Source{}, fmt.Errorf("thedb: checkpointing is not supported on the deterministic engine")
	}
	src := checkpoint.Source{Catalog: db.catalog, CurrentEpoch: db.eng.Epoch().Current}
	if !db.started {
		src.Quiesced = true
		return src, nil
	}
	if db.logger == nil {
		return src, fmt.Errorf("thedb: online checkpoint requires durability (Config.LogSink or Config.WALSet)")
	}
	if db.cfg.LogMode == CommandLogging {
		return src, fmt.Errorf("thedb: online checkpoint requires value logging (command replay of a fuzzy image is not idempotent)")
	}
	src.DurableEpoch = db.eng.DurableEpoch
	src.DurabilityLost = db.eng.DurabilityLost
	return src, nil
}

// checkpointOptions wires the WAL set (rotation + truncation) into a
// round when the logger is live to rotate.
func (db *DB) checkpointOptions(dir string) checkpoint.Options {
	opt := checkpoint.Options{Dir: dir, Stats: &db.ckstats}
	if db.started && db.cfg.WALSet != nil && db.logger != nil {
		opt.Files = db.cfg.WALSet
		opt.Log = db.logger
	}
	return opt
}

// Checkpoint takes one checkpoint round into dir: scan every table,
// publish checkpoint-<seq>.ckpt crash-atomically (temp file, fsync,
// rename), prune to the two newest images, and — when running with a
// WALSet — rotate the log onto a fresh generation and delete
// generations the new watermark covers.
//
// Running engine: the scan is online (no stall; per-record seqlock
// snapshots) and the image is published only once every epoch it may
// contain is durable in the WAL. Stopped or not-yet-started engine:
// the scan is trivially consistent and the watermark is the current
// epoch.
func (db *DB) Checkpoint(dir string) (*CheckpointInfo, error) {
	src, err := db.checkpointSource()
	if err != nil {
		return nil, err
	}
	c, err := checkpoint.New(src, db.checkpointOptions(dir))
	if err != nil {
		return nil, err
	}
	info, err := c.RunOnce()
	if err != nil {
		return nil, err
	}
	// A quiesced round cannot rotate a stopped logger; closed
	// generations below the watermark are still safe to drop.
	if src.Quiesced && db.cfg.WALSet != nil {
		if _, terr := db.cfg.WALSet.Truncate(info.Watermark, nil); terr != nil {
			return info, terr
		}
	}
	return info, nil
}

// CheckpointEvery starts a background checkpointer running one round
// every interval (see Checkpoint for round semantics). The database
// must be started with value logging. Stop it via StopCheckpoints or
// Close. Round failures are counted in CheckpointStats and retried
// next tick.
func (db *DB) CheckpointEvery(dir string, interval time.Duration) error {
	if !db.started {
		return fmt.Errorf("thedb: CheckpointEvery requires a started database")
	}
	if db.ck != nil {
		return fmt.Errorf("thedb: a background checkpointer is already running")
	}
	src, err := db.checkpointSource()
	if err != nil {
		return err
	}
	opt := db.checkpointOptions(dir)
	opt.Interval = interval
	c, err := checkpoint.New(src, opt)
	if err != nil {
		return err
	}
	if err := c.Start(); err != nil {
		return err
	}
	db.ck = c
	return nil
}

// StopCheckpoints halts the background checkpointer, waiting out an
// in-flight round. No-op if none is running.
func (db *DB) StopCheckpoints() {
	if db.ck != nil {
		db.ck.Stop()
		db.ck = nil
	}
}

// RestoreCheckpoint loads the newest valid checkpoint image from dir
// into this (schema-complete, data-empty) database. Images are tried
// newest first; a damaged one is skipped in favor of its predecessor,
// whose missing suffix the WAL tail replay supplies. Returns
// (nil, nil) when dir holds no images — a fresh start.
func (db *DB) RestoreCheckpoint(dir string) (*CheckpointInfo, error) {
	return checkpoint.LoadNewest(db.catalog, dir)
}

// WriteCheckpoint writes a transaction-consistent snapshot of all
// visible records in the legacy single-stream format. The caller must
// quiesce transactions first. Prefer Checkpoint, which owns placement,
// atomic publication and retention.
func (db *DB) WriteCheckpoint(w io.Writer) error {
	return wal.Checkpoint(db.catalog, w)
}

// LoadCheckpoint restores a legacy-format snapshot (WriteCheckpoint)
// into this (empty) database.
func (db *DB) LoadCheckpoint(r io.Reader) error {
	return wal.LoadCheckpoint(db.catalog, r)
}
