// Package client is THEDB's Go network client: a connection-pooled,
// pipelined stored-procedure caller that cooperates with the server's
// load shedding.
//
// Calls are procedure invocations — Call("PayBill", thedb.Int(7)) —
// multiplexed over a small pool of TCP connections. Each connection
// pipelines up to the server-advertised in-flight window and matches
// responses to requests by id, so responses may return out of order
// and a slow transaction never blocks the wire behind it.
//
// When the server sheds (wire.CodeShed), reports engine contention
// (wire.CodeContended) or drains (wire.CodeDraining), the error
// carries a backoff hint; Call retries with jittered exponential
// backoff floored at that hint, up to Options.RetryAttempts. All
// other errors — user aborts, unknown procedures, protocol faults —
// return immediately.
//
// # Exactly-once retries
//
// A connection can die after a call was sent but before its response
// arrived — the ambiguous window where the transaction may or may not
// have committed. The client closes it with the protocol's session
// machinery: every Call gets a client-wide monotonic sequence number,
// and a re-send of the same (session, seq) — over the same connection
// pool or a fresh one after redial — is answered from the server's
// per-session dedup window instead of executing twice. Retries across
// connection failures are therefore transparent and safe, including
// for non-idempotent procedures.
//
// The guarantee ends at a server restart: the dedup window dies with
// the process, which the client detects through the incarnation token
// in the handshake. A call that was sent, lost its connection, and
// cannot be safely retried surfaces as a MaybeCommittedError (matched
// by errors.Is(err, ErrMaybeCommitted)): the caller must reconcile —
// typically by reading back the affected keys under a fresh sequence
// number.
//
// A context deadline travels with each call as a budget; the server
// refuses to execute once the budget is dead, so a caller that has
// given up never commits work it will not observe.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/storage"
	"thedb/internal/wire"
)

// Options tunes a Client. The zero value gets sensible defaults.
type Options struct {
	// Conns is the connection-pool size (default 1). Calls round-robin
	// across the pool.
	Conns int

	// MaxFrame bounds response-frame payloads this client will accept
	// (default wire.DefaultMaxFrame).
	MaxFrame int

	// DialTimeout bounds connection establishment including the
	// handshake (default 5s).
	DialTimeout time.Duration

	// RetryAttempts is the number of retries after a retryable server
	// error before giving up (default 8). Zero keeps the default; use
	// -1 to disable retries.
	RetryAttempts int

	// RetryBase and RetryMax shape the jittered exponential backoff
	// between retries (defaults 500µs and 100ms). The server's hint
	// acts as a floor for each sleep.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Name identifies this client in the handshake (default
	// "thedb-go").
	Name string
}

func (o *Options) fill() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryAttempts == 0 {
		o.RetryAttempts = 8
	}
	if o.RetryAttempts < 0 {
		o.RetryAttempts = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Microsecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 100 * time.Millisecond
	}
	if o.Name == "" {
		o.Name = "thedb-go"
	}
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrMaybeCommitted marks an ambiguous outcome: the call was sent, no
// response arrived, and the exactly-once machinery could not settle it
// (server restart, dedup disabled, or the caller's context died).
// Match with errors.Is; the concrete error is a *MaybeCommittedError
// carrying the cause.
var ErrMaybeCommitted = errors.New("client: call may have committed")

// MaybeCommittedError reports a call whose transaction may or may not
// have committed on the server. It is never returned when the server
// answered (even with an error) or when the call was provably not
// executed; the caller must reconcile by reading back the keys the
// call would have written.
type MaybeCommittedError struct {
	// Cause is the failure that created the ambiguity (connection
	// loss, context death, retry exhaustion).
	Cause error
}

// Error formats the ambiguity with its cause.
func (e *MaybeCommittedError) Error() string {
	return fmt.Sprintf("client: call may have committed (outcome unknown): %v", e.Cause)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *MaybeCommittedError) Unwrap() error { return e.Cause }

// Is matches the ErrMaybeCommitted sentinel.
func (e *MaybeCommittedError) Is(target error) bool { return target == ErrMaybeCommitted }

// Result is one committed transaction's named outputs.
type Result struct {
	outs []wire.Output
}

// Names lists the output variables in sorted order.
func (r *Result) Names() []string {
	names := make([]string, len(r.outs))
	for i, o := range r.outs {
		names[i] = o.Name
	}
	sort.Strings(names)
	return names
}

func (r *Result) find(name string) (wire.Output, bool) {
	for _, o := range r.outs {
		if o.Name == name {
			return o, true
		}
	}
	return wire.Output{}, false
}

// Has reports whether the transaction produced output name.
func (r *Result) Has(name string) bool {
	_, ok := r.find(name)
	return ok
}

// Val returns the scalar output name, or Null if absent.
func (r *Result) Val(name string) storage.Value {
	o, ok := r.find(name)
	if !ok || len(o.Vals) == 0 {
		return storage.Null
	}
	return o.Vals[0]
}

// Vals returns the list output name (range-read results), or nil.
func (r *Result) Vals(name string) []storage.Value {
	o, ok := r.find(name)
	if !ok {
		return nil
	}
	return o.Vals
}

// Invocation names one procedure call for CallBatch.
type Invocation struct {
	Proc string
	Args []storage.Value
}

// Reply pairs one batched invocation's outcome.
type Reply struct {
	Result *Result
	Err    error
}

// Client is a pooled, pipelined connection to one THEDB server. It is
// safe for concurrent use.
type Client struct {
	addr string
	opts Options

	next atomic.Uint64

	// session is the exactly-once token bound by the first handshake
	// and presented on every subsequent dial, so all pooled (and
	// re-dialed) connections share one dedup window. seq numbers the
	// client's calls within that session.
	session atomic.Uint64
	seq     atomic.Uint64

	mu     sync.Mutex
	pool   []*clientConn
	closed bool
}

// Dial connects to a THEDB server. Connections are established
// lazily; Dial itself opens one to validate the address and protocol
// version.
func Dial(addr string, opts Options) (*Client, error) {
	opts.fill()
	c := &Client{addr: addr, opts: opts, pool: make([]*clientConn, opts.Conns)}
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.pool[0] = cc
	return c, nil
}

// Close releases every pooled connection. In-flight calls fail with a
// connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var errs []error
	for i, cc := range c.pool {
		if cc == nil {
			continue
		}
		if err := cc.close(ErrClosed); err != nil {
			errs = append(errs, err)
		}
		c.pool[i] = nil
	}
	return errors.Join(errs...)
}

// Call invokes a stored procedure and waits for its outputs, retrying
// shed/contended/draining responses and connection failures with
// jittered backoff. A nil error means the transaction committed on
// the server exactly once; a MaybeCommittedError means the outcome is
// unknown and the caller must reconcile.
func (c *Client) Call(ctx context.Context, procName string, args ...storage.Value) (*Result, error) {
	return c.callSeq(ctx, c.seq.Add(1), 0, procName, args, false)
}

// CallSnapshot invokes a stored procedure as a read-only snapshot
// transaction: the server executes it against an epoch-consistent
// snapshot with zero validation (DESIGN.md §16), so long analytical
// reads neither abort nor slow concurrent writers. The call is
// idempotent by construction — it opts out of the exactly-once dedup
// window and is retried freely, never surfacing MaybeCommittedError. A
// procedure that attempts a write fails with a server-reported abort.
func (c *Client) CallSnapshot(ctx context.Context, procName string, args ...storage.Value) (*Result, error) {
	return c.callSeq(ctx, 0, 0, procName, args, true)
}

// callSeq drives one logical call — one sequence number — through as
// many attempts as the retry budget allows. sentInc carries ambiguity
// in from a batch path whose frame already reached the wire (0 when
// nothing was sent yet): it records the incarnation of the server
// holding the unanswered attempt, and the call stays transparently
// retryable only while reconnects land on that same incarnation, whose
// dedup window guarantees the retry cannot double-apply.
func (c *Client) callSeq(ctx context.Context, seq, sentInc uint64, procName string, args []storage.Value, readOnly bool) (*Result, error) {
	var lastErr error
	maybe := func(err error) error {
		if sentInc != 0 {
			return &MaybeCommittedError{Cause: err}
		}
		return err
	}
	for attempt := 0; attempt <= c.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return nil, maybe(err)
			}
		}
		cc, err := c.conn()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, maybe(err)
			}
			// Dial failure: the server may be mid-restart. Keep
			// retrying; the incarnation check below settles ambiguity
			// once a connection lands.
			lastErr = err
			continue
		}
		if sentInc != 0 && (cc.welcome.Session == 0 || cc.welcome.Incarnation != sentInc) {
			// An attempt is unanswered and the server that held its
			// dedup entry is gone (restart = new incarnation). A
			// re-send could double-apply; surface the ambiguity.
			return nil, &MaybeCommittedError{Cause: lastErr}
		}
		res, sent, err := cc.call(ctx, seq, procName, args, readOnly)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var re *wire.RemoteError
		if errors.As(err, &re) {
			// The server answered, so the outcome of seq is settled: a
			// retryable rejection provably did not execute (rejections
			// are never cached in the dedup window), so any earlier
			// ambiguity is resolved too.
			if re.Retryable() {
				sentInc = 0
				continue
			}
			return nil, err
		}
		// No answer for this attempt. If the frame may have reached
		// the wire, the call is ambiguous from here on — transparently
		// retryable only under this incarnation's dedup window. A
		// read-only snapshot call has no ambiguity to track:
		// re-executing it is always safe.
		if sent && !readOnly {
			if cc.welcome.Session == 0 {
				return nil, &MaybeCommittedError{Cause: err}
			}
			sentInc = cc.welcome.Incarnation
		}
		if ctx.Err() != nil {
			return nil, maybe(ctx.Err())
		}
	}
	return nil, maybe(fmt.Errorf("client: %d retries exhausted: %w", c.opts.RetryAttempts, lastErr))
}

// CallBatch pipelines a batch of invocations over one connection —
// one write, one flush, responses collected as they complete (in any
// order). Retryable failures within the batch are retried
// individually via Call. The returned slice matches calls by index.
func (c *Client) CallBatch(ctx context.Context, calls []Invocation) []Reply {
	replies := make([]Reply, len(calls))
	if len(calls) == 0 {
		return replies
	}
	// Each invocation gets its sequence number up front, so a batched
	// call retried individually below re-sends under the same seq and
	// stays exactly-once.
	slots := make([]batchSlot, len(calls))
	for i := range slots {
		slots[i].seq = c.seq.Add(1)
	}
	cc, err := c.conn()
	if err != nil {
		for i := range replies {
			replies[i].Err = err
		}
		return replies
	}
	// Window the batch by the server's in-flight bound so pipelining
	// never trips the shed policy by construction.
	window := cap(cc.sem)
	for lo := 0; lo < len(calls); lo += window {
		hi := lo + window
		if hi > len(calls) {
			hi = len(calls)
		}
		cc.sendWindow(ctx, calls[lo:hi], replies[lo:hi], slots[lo:hi])
	}
	// Individually retry what can be retried safely: retryable server
	// rejections (provably not executed) and connection failures,
	// whose sent frames the dedup window guards against double apply.
	for i := range replies {
		err := replies[i].Err
		if err == nil {
			continue
		}
		var re *wire.RemoteError
		switch {
		case errors.As(err, &re):
			if !re.Retryable() {
				continue // settled outcome
			}
			slots[i].sentInc = 0 // rejection: the seq did not execute
		case ctx.Err() != nil:
			if slots[i].sentInc != 0 {
				replies[i].Err = &MaybeCommittedError{Cause: err}
			}
			continue
		case slots[i].sent && slots[i].sentInc == 0:
			// Sent without a dedup-capable session: no safe retry.
			replies[i].Err = &MaybeCommittedError{Cause: err}
			continue
		}
		replies[i].Result, replies[i].Err = c.callSeq(ctx, slots[i].seq, slots[i].sentInc, calls[i].Proc, calls[i].Args, false)
	}
	return replies
}

// backoff sleeps before retry attempt n: jittered exponential from
// RetryBase, capped at RetryMax, floored at the server's hint.
func (c *Client) backoff(ctx context.Context, attempt int, cause error) error {
	var hint time.Duration
	var re *wire.RemoteError
	if errors.As(cause, &re) {
		hint = re.Backoff
	}
	d := retryDelay(c.opts.RetryBase, c.opts.RetryMax, hint, attempt, rand.Int63n)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryDelay computes the sleep before retry attempt n (1-based):
// exponential from base, capped at max (with the left shift guarded
// against overflow for large attempt counts), jittered uniformly into
// [d/2, d], then floored at the server's backoff hint. jitter is the
// random source — rand.Int63n in production, deterministic in tests.
func retryDelay(base, max, hint time.Duration, attempt int, jitter func(int64) int64) time.Duration {
	d := base
	if shift := attempt - 1; shift > 0 {
		if shift >= 63 {
			d = max
		} else if d <<= shift; d <= 0 || d > max {
			d = max
		}
	}
	if d > max {
		d = max
	}
	// Full jitter: uniform in [d/2, d].
	d = d/2 + time.Duration(jitter(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	return d
}

// conn picks the next pooled connection, dialing or replacing broken
// ones lazily.
func (c *Client) conn() (*clientConn, error) {
	idx := int(c.next.Add(1)) % c.opts.Conns
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cc := c.pool[idx]
	if cc != nil && !cc.broken() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	// Dial outside the lock; only one winner installs.
	fresh, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cerr := fresh.close(ErrClosed)
		_ = cerr // racing Close already tears the pool down
		return nil, ErrClosed
	}
	if cur := c.pool[idx]; cur != nil && !cur.broken() {
		cerr := fresh.close(ErrClosed)
		_ = cerr // lost the install race; the surviving conn is cur
		return cur, nil
	}
	c.pool[idx] = fresh
	return fresh, nil
}

// clientConn is one TCP connection: a writer guarded by wmu and a
// reader goroutine that dispatches responses to waiting calls by
// request id.
//
// The in-flight window (sem) counts requests the server has not yet
// answered. A slot is acquired in issue and released the moment the
// response arrives at the read loop (or the request is abandoned) —
// NOT when the caller collects the result. Releasing on arrival
// matters: concurrent batches issue whole windows before collecting,
// so slots held until collection would deadlock once enough batches
// share a connection.
type clientConn struct {
	nc net.Conn
	bw *bufio.Writer

	welcome wire.Welcome
	sem     chan struct{} // unanswered-request window, sized from the handshake
	done    chan struct{} // closed when the connection fails; unblocks acquirers

	wmu sync.Mutex // serializes bw writes and flushes

	mu      sync.Mutex
	pending map[uint64]chan outcome
	err     error // set once the connection is unusable

	nextID atomic.Uint64

	// traceBase salts the per-call trace IDs minted by issue: each
	// attempt carries splitmix64(traceBase + request id), unique across
	// connections and retries so server-side traces, recorder events
	// and exemplars correlate end to end.
	traceBase uint64
}

type outcome struct {
	outs []wire.Output
	err  error
}

func (c *Client) dialConn() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{
		nc:        nc,
		bw:        bufio.NewWriterSize(nc, 64<<10),
		pending:   make(map[uint64]chan outcome),
		done:      make(chan struct{}),
		traceBase: rand.Uint64(),
	}
	if err := cc.handshake(c.opts, c.session.Load()); err != nil {
		cerr := nc.Close()
		_ = cerr // handshake failure already reported; socket is dead
		return nil, err
	}
	// The first successful handshake mints the client's session; every
	// later dial presented it, and the server echoed the same token.
	c.session.CompareAndSwap(0, cc.welcome.Session)
	go cc.readLoop(c.opts.MaxFrame)
	return cc, nil
}

// handshake sends hello (presenting the client's session token, 0 to
// mint) and waits for the server's welcome (or a version error),
// synchronously, before the reader starts.
func (cc *clientConn) handshake(opts Options, session uint64) error {
	if err := cc.nc.SetDeadline(time.Now().Add(opts.DialTimeout)); err != nil {
		return fmt.Errorf("client: handshake deadline: %w", err)
	}
	buf := wire.AppendHello(nil, wire.Hello{Client: opts.Name, Session: session})
	if _, err := cc.nc.Write(buf); err != nil {
		return fmt.Errorf("client: sending hello: %w", err)
	}
	fr := wire.NewReader(cc.nc, opts.MaxFrame)
	f, err := fr.Next()
	if err != nil {
		return fmt.Errorf("client: reading welcome: %w", err)
	}
	switch f.Op {
	case wire.OpWelcome:
	case wire.OpError:
		re, derr := wire.DecodeError(f.Payload)
		if derr != nil {
			return fmt.Errorf("client: malformed handshake error: %w", derr)
		}
		return &re
	default:
		return fmt.Errorf("client: unexpected %s during handshake", wire.OpName(f.Op))
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		return fmt.Errorf("client: malformed welcome: %w", err)
	}
	if err := cc.nc.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("client: clearing deadline: %w", err)
	}
	cc.welcome = w
	window := int(w.MaxInFlight)
	if window <= 0 {
		window = 1
	}
	cc.sem = make(chan struct{}, window)
	return nil
}

// call runs one attempt of a sequenced call on this connection. sent
// reports whether the frame may have reached the wire — the flag that
// separates "provably never executed" from "ambiguous" when err is a
// connection failure rather than a server answer.
func (cc *clientConn) call(ctx context.Context, seq uint64, procName string, args []storage.Value, readOnly bool) (*Result, bool, error) {
	ch, id, sent, err := cc.issue(ctx, seq, procName, args, true, readOnly)
	if err != nil {
		return nil, sent, err
	}
	res, err := cc.await(ctx, id, ch)
	return res, true, err
}

// issue reserves an in-flight slot, registers a waiter, and writes
// one call frame stamped with its sequence number and the context's
// remaining deadline as a microsecond budget; flush controls whether
// the buffer is pushed to the wire immediately (single calls) or left
// for a batch flush. sent=true means bytes may have reached the wire
// (a failed write can still have delivered the frame).
func (cc *clientConn) issue(ctx context.Context, seq uint64, procName string, args []storage.Value, flush, readOnly bool) (chan outcome, uint64, bool, error) {
	var budgetUS uint64
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, 0, false, ctx.Err()
		}
		if budgetUS = uint64(rem / time.Microsecond); budgetUS == 0 {
			budgetUS = 1
		}
	}
	select {
	case cc.sem <- struct{}{}:
	default:
		// The window is full. Push any frames still sitting in the
		// write buffer (ours or a sibling batch's) before blocking:
		// a slot only frees when the server answers, and it cannot
		// answer frames it has never been sent. Without this flush,
		// concurrent batches on one connection can fill the window
		// entirely with buffered frames and deadlock.
		if err := cc.flushCalls(); err != nil {
			return nil, 0, false, err
		}
		select {
		case cc.sem <- struct{}{}:
		case <-cc.done:
			return nil, 0, false, cc.failure()
		case <-ctx.Done():
			return nil, 0, false, ctx.Err()
		}
	}
	id := cc.nextID.Add(1)
	ch := make(chan outcome, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		<-cc.sem
		return nil, 0, false, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	buf := wire.AppendCall(nil, id, wire.Call{
		Proc: procName, Args: args, Seq: seq, BudgetUS: budgetUS,
		TraceID: mintTraceID(cc.traceBase + id), ReadOnly: readOnly,
	})
	cc.wmu.Lock()
	_, werr := cc.bw.Write(buf)
	if werr == nil && flush {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if werr != nil {
		cc.abandon(id)
		werr = fmt.Errorf("client: write: %w", werr)
		cerr := cc.close(werr)
		_ = cerr // the write error is the one worth reporting
		return nil, 0, true, werr
	}
	return ch, id, true, nil
}

// mintTraceID finalizes a trace ID from the connection salt plus the
// request id (splitmix64; | 1 keeps it nonzero, since zero means
// untraced on the wire).
func mintTraceID(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x | 1
}

// flushCalls pushes buffered batch frames to the wire.
func (cc *clientConn) flushCalls() error {
	cc.wmu.Lock()
	err := cc.bw.Flush()
	cc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("client: flush: %w", err)
		cerr := cc.close(err)
		_ = cerr // the flush error is the one worth reporting
	}
	return err
}

// await blocks until the response for id arrives or ctx ends. The
// in-flight slot was already released when the response reached the
// read loop (or by abandon here).
func (cc *clientConn) await(ctx context.Context, id uint64, ch chan outcome) (*Result, error) {
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		return &Result{outs: out.outs}, nil
	case <-ctx.Done():
		cc.abandon(id)
		return nil, ctx.Err()
	}
}

// batchSlot carries one batched invocation's exactly-once state: its
// pre-assigned sequence number and, after sendWindow, whether its
// frame may have reached the wire and under which server incarnation.
type batchSlot struct {
	seq     uint64
	sent    bool
	sentInc uint64 // incarnation if sent with a dedup-capable session
}

// sendWindow pipelines one window of batch calls: issue all (buffered),
// one flush, then collect. slots[i] records each call's sent state for
// the exactly-once retry pass in CallBatch.
func (cc *clientConn) sendWindow(ctx context.Context, calls []Invocation, replies []Reply, slots []batchSlot) {
	type pend struct {
		ch chan outcome
		id uint64
	}
	pends := make([]pend, len(calls))
	issued := 0
	for i, inv := range calls {
		ch, id, sent, err := cc.issue(ctx, slots[i].seq, inv.Proc, inv.Args, false, false)
		slots[i].sent = sent
		if sent && cc.welcome.Session != 0 {
			slots[i].sentInc = cc.welcome.Incarnation
		}
		if err != nil {
			replies[i].Err = err
			continue
		}
		pends[i] = pend{ch: ch, id: id}
		issued++
	}
	if issued > 0 {
		if err := cc.flushCalls(); err != nil {
			// close already failed every pending waiter; fall through
			// so collection below reports the connection error.
			_ = err
		}
	}
	for i := range calls {
		if pends[i].ch == nil {
			continue
		}
		replies[i].Result, replies[i].Err = cc.await(ctx, pends[i].id, pends[i].ch)
	}
}

// abandon forgets a request whose caller stopped waiting and releases
// its slot; a late response is dropped by the reader.
func (cc *clientConn) abandon(id uint64) {
	cc.mu.Lock()
	_, had := cc.pending[id]
	delete(cc.pending, id)
	cc.mu.Unlock()
	if had {
		<-cc.sem
	}
}

// broken reports whether the connection has failed.
func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// failure returns the error the connection failed with.
func (cc *clientConn) failure() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return errors.New("client: connection failed")
}

// close marks the connection failed with cause, fails every pending
// call, unblocks window waiters, and closes the socket.
func (cc *clientConn) close(cause error) error {
	cc.mu.Lock()
	first := cc.err == nil
	if first {
		cc.err = cause
	}
	pend := cc.pending
	cc.pending = make(map[uint64]chan outcome)
	cc.mu.Unlock()
	if first {
		close(cc.done)
	}
	for _, ch := range pend {
		ch <- outcome{err: cause}
	}
	if !first {
		return nil // socket already closed by the first closer
	}
	return cc.nc.Close()
}

// readLoop dispatches response frames to their waiters by request id
// until the connection dies.
func (cc *clientConn) readLoop(maxFrame int) {
	fr := wire.NewReader(cc.nc, maxFrame)
	for {
		f, err := fr.Next()
		if err != nil {
			cerr := cc.close(fmt.Errorf("client: connection lost: %w", err))
			_ = cerr // close-after-error: the read error is authoritative
			return
		}
		var out outcome
		switch f.Op {
		case wire.OpResult:
			outs, derr := wire.DecodeResult(f.Payload)
			if derr != nil {
				out.err = fmt.Errorf("client: malformed result: %w", derr)
			} else {
				out.outs = outs
			}
		case wire.OpError:
			re, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				out.err = fmt.Errorf("client: malformed error frame: %w", derr)
			} else {
				out.err = &re
			}
		default:
			// Unknown frame for a known id is a protocol fault; for an
			// unknown id it is dropped below like any late response.
			out.err = fmt.Errorf("client: unexpected %s frame", wire.OpName(f.Op))
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		delete(cc.pending, f.ID)
		cc.mu.Unlock()
		if ok {
			ch <- outcome{outs: out.outs, err: out.err}
			// The request is answered: free its window slot now so
			// batches still issuing can proceed before anyone
			// collects this result. Abandoned requests released
			// their slot in abandon (the pending entry was gone).
			<-cc.sem
		}
	}
}
