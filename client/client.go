// Package client is THEDB's Go network client: a connection-pooled,
// pipelined stored-procedure caller that cooperates with the server's
// load shedding.
//
// Calls are procedure invocations — Call("PayBill", thedb.Int(7)) —
// multiplexed over a small pool of TCP connections. Each connection
// pipelines up to the server-advertised in-flight window and matches
// responses to requests by id, so responses may return out of order
// and a slow transaction never blocks the wire behind it.
//
// When the server sheds (wire.CodeShed), reports engine contention
// (wire.CodeContended) or drains (wire.CodeDraining), the error
// carries a backoff hint; Call retries with jittered exponential
// backoff floored at that hint, up to Options.RetryAttempts. All
// other errors — user aborts, unknown procedures, protocol faults —
// return immediately.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/storage"
	"thedb/internal/wire"
)

// Options tunes a Client. The zero value gets sensible defaults.
type Options struct {
	// Conns is the connection-pool size (default 1). Calls round-robin
	// across the pool.
	Conns int

	// MaxFrame bounds response-frame payloads this client will accept
	// (default wire.DefaultMaxFrame).
	MaxFrame int

	// DialTimeout bounds connection establishment including the
	// handshake (default 5s).
	DialTimeout time.Duration

	// RetryAttempts is the number of retries after a retryable server
	// error before giving up (default 8). Zero keeps the default; use
	// -1 to disable retries.
	RetryAttempts int

	// RetryBase and RetryMax shape the jittered exponential backoff
	// between retries (defaults 500µs and 100ms). The server's hint
	// acts as a floor for each sleep.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Name identifies this client in the handshake (default
	// "thedb-go").
	Name string
}

func (o *Options) fill() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryAttempts == 0 {
		o.RetryAttempts = 8
	}
	if o.RetryAttempts < 0 {
		o.RetryAttempts = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Microsecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 100 * time.Millisecond
	}
	if o.Name == "" {
		o.Name = "thedb-go"
	}
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: closed")

// Result is one committed transaction's named outputs.
type Result struct {
	outs []wire.Output
}

// Names lists the output variables in sorted order.
func (r *Result) Names() []string {
	names := make([]string, len(r.outs))
	for i, o := range r.outs {
		names[i] = o.Name
	}
	sort.Strings(names)
	return names
}

func (r *Result) find(name string) (wire.Output, bool) {
	for _, o := range r.outs {
		if o.Name == name {
			return o, true
		}
	}
	return wire.Output{}, false
}

// Has reports whether the transaction produced output name.
func (r *Result) Has(name string) bool {
	_, ok := r.find(name)
	return ok
}

// Val returns the scalar output name, or Null if absent.
func (r *Result) Val(name string) storage.Value {
	o, ok := r.find(name)
	if !ok || len(o.Vals) == 0 {
		return storage.Null
	}
	return o.Vals[0]
}

// Vals returns the list output name (range-read results), or nil.
func (r *Result) Vals(name string) []storage.Value {
	o, ok := r.find(name)
	if !ok {
		return nil
	}
	return o.Vals
}

// Invocation names one procedure call for CallBatch.
type Invocation struct {
	Proc string
	Args []storage.Value
}

// Reply pairs one batched invocation's outcome.
type Reply struct {
	Result *Result
	Err    error
}

// Client is a pooled, pipelined connection to one THEDB server. It is
// safe for concurrent use.
type Client struct {
	addr string
	opts Options

	next atomic.Uint64

	mu     sync.Mutex
	pool   []*clientConn
	closed bool
}

// Dial connects to a THEDB server. Connections are established
// lazily; Dial itself opens one to validate the address and protocol
// version.
func Dial(addr string, opts Options) (*Client, error) {
	opts.fill()
	c := &Client{addr: addr, opts: opts, pool: make([]*clientConn, opts.Conns)}
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.pool[0] = cc
	return c, nil
}

// Close releases every pooled connection. In-flight calls fail with a
// connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var errs []error
	for i, cc := range c.pool {
		if cc == nil {
			continue
		}
		if err := cc.close(ErrClosed); err != nil {
			errs = append(errs, err)
		}
		c.pool[i] = nil
	}
	return errors.Join(errs...)
}

// Call invokes a stored procedure and waits for its outputs, retrying
// shed/contended/draining responses with jittered backoff. A nil
// error means the transaction committed on the server.
func (c *Client) Call(ctx context.Context, procName string, args ...storage.Value) (*Result, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		res, err := c.callOnce(ctx, procName, args)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Retryable() {
			continue
		}
		return nil, err
	}
	return nil, fmt.Errorf("client: %d retries exhausted: %w", c.opts.RetryAttempts, lastErr)
}

// CallBatch pipelines a batch of invocations over one connection —
// one write, one flush, responses collected as they complete (in any
// order). Retryable failures within the batch are retried
// individually via Call. The returned slice matches calls by index.
func (c *Client) CallBatch(ctx context.Context, calls []Invocation) []Reply {
	replies := make([]Reply, len(calls))
	if len(calls) == 0 {
		return replies
	}
	cc, err := c.conn()
	if err != nil {
		for i := range replies {
			replies[i].Err = err
		}
		return replies
	}
	// Window the batch by the server's in-flight bound so pipelining
	// never trips the shed policy by construction.
	window := cap(cc.sem)
	for lo := 0; lo < len(calls); lo += window {
		hi := lo + window
		if hi > len(calls) {
			hi = len(calls)
		}
		cc.sendWindow(ctx, calls[lo:hi], replies[lo:hi])
	}
	// Individually retry anything retryable (shed under competing
	// load, contended, draining-then-restarted).
	for i := range replies {
		var re *wire.RemoteError
		if replies[i].Err == nil || !errors.As(replies[i].Err, &re) || !re.Retryable() {
			continue
		}
		replies[i].Result, replies[i].Err = c.Call(ctx, calls[i].Proc, calls[i].Args...)
	}
	return replies
}

// backoff sleeps before retry attempt n: jittered exponential from
// RetryBase, capped at RetryMax, floored at the server's hint.
func (c *Client) backoff(ctx context.Context, attempt int, cause error) error {
	d := c.opts.RetryBase << (attempt - 1)
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	// Full jitter: uniform in [d/2, d).
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var re *wire.RemoteError
	if errors.As(cause, &re) && re.Backoff > d {
		d = re.Backoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) callOnce(ctx context.Context, procName string, args []storage.Value) (*Result, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	ch, id, err := cc.issue(ctx, procName, args, true)
	if err != nil {
		return nil, err
	}
	return cc.await(ctx, id, ch)
}

// conn picks the next pooled connection, dialing or replacing broken
// ones lazily.
func (c *Client) conn() (*clientConn, error) {
	idx := int(c.next.Add(1)) % c.opts.Conns
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cc := c.pool[idx]
	if cc != nil && !cc.broken() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	// Dial outside the lock; only one winner installs.
	fresh, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		cerr := fresh.close(ErrClosed)
		_ = cerr // racing Close already tears the pool down
		return nil, ErrClosed
	}
	if cur := c.pool[idx]; cur != nil && !cur.broken() {
		cerr := fresh.close(ErrClosed)
		_ = cerr // lost the install race; the surviving conn is cur
		return cur, nil
	}
	c.pool[idx] = fresh
	return fresh, nil
}

// clientConn is one TCP connection: a writer guarded by wmu and a
// reader goroutine that dispatches responses to waiting calls by
// request id.
//
// The in-flight window (sem) counts requests the server has not yet
// answered. A slot is acquired in issue and released the moment the
// response arrives at the read loop (or the request is abandoned) —
// NOT when the caller collects the result. Releasing on arrival
// matters: concurrent batches issue whole windows before collecting,
// so slots held until collection would deadlock once enough batches
// share a connection.
type clientConn struct {
	nc net.Conn
	bw *bufio.Writer

	welcome wire.Welcome
	sem     chan struct{} // unanswered-request window, sized from the handshake
	done    chan struct{} // closed when the connection fails; unblocks acquirers

	wmu sync.Mutex // serializes bw writes and flushes

	mu      sync.Mutex
	pending map[uint64]chan outcome
	err     error // set once the connection is unusable

	nextID atomic.Uint64
}

type outcome struct {
	outs []wire.Output
	err  error
}

func (c *Client) dialConn() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan outcome),
		done:    make(chan struct{}),
	}
	if err := cc.handshake(c.opts); err != nil {
		cerr := nc.Close()
		_ = cerr // handshake failure already reported; socket is dead
		return nil, err
	}
	go cc.readLoop(c.opts.MaxFrame)
	return cc, nil
}

// handshake sends hello and waits for the server's welcome (or a
// version error), synchronously, before the reader starts.
func (cc *clientConn) handshake(opts Options) error {
	if err := cc.nc.SetDeadline(time.Now().Add(opts.DialTimeout)); err != nil {
		return fmt.Errorf("client: handshake deadline: %w", err)
	}
	buf := wire.AppendHello(nil, wire.Hello{Client: opts.Name})
	if _, err := cc.nc.Write(buf); err != nil {
		return fmt.Errorf("client: sending hello: %w", err)
	}
	fr := wire.NewReader(cc.nc, opts.MaxFrame)
	f, err := fr.Next()
	if err != nil {
		return fmt.Errorf("client: reading welcome: %w", err)
	}
	switch f.Op {
	case wire.OpWelcome:
	case wire.OpError:
		re, derr := wire.DecodeError(f.Payload)
		if derr != nil {
			return fmt.Errorf("client: malformed handshake error: %w", derr)
		}
		return &re
	default:
		return fmt.Errorf("client: unexpected %s during handshake", wire.OpName(f.Op))
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		return fmt.Errorf("client: malformed welcome: %w", err)
	}
	if err := cc.nc.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("client: clearing deadline: %w", err)
	}
	cc.welcome = w
	window := int(w.MaxInFlight)
	if window <= 0 {
		window = 1
	}
	cc.sem = make(chan struct{}, window)
	return nil
}

// issue reserves an in-flight slot, registers a waiter, and writes
// one call frame; flush controls whether the buffer is pushed to the
// wire immediately (single calls) or left for a batch flush.
func (cc *clientConn) issue(ctx context.Context, procName string, args []storage.Value, flush bool) (chan outcome, uint64, error) {
	select {
	case cc.sem <- struct{}{}:
	default:
		// The window is full. Push any frames still sitting in the
		// write buffer (ours or a sibling batch's) before blocking:
		// a slot only frees when the server answers, and it cannot
		// answer frames it has never been sent. Without this flush,
		// concurrent batches on one connection can fill the window
		// entirely with buffered frames and deadlock.
		if err := cc.flushCalls(); err != nil {
			return nil, 0, err
		}
		select {
		case cc.sem <- struct{}{}:
		case <-cc.done:
			return nil, 0, cc.failure()
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	id := cc.nextID.Add(1)
	ch := make(chan outcome, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		<-cc.sem
		return nil, 0, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	buf := wire.AppendCall(nil, id, wire.Call{Proc: procName, Args: args})
	cc.wmu.Lock()
	_, werr := cc.bw.Write(buf)
	if werr == nil && flush {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if werr != nil {
		cc.abandon(id)
		werr = fmt.Errorf("client: write: %w", werr)
		cerr := cc.close(werr)
		_ = cerr // the write error is the one worth reporting
		return nil, 0, werr
	}
	return ch, id, nil
}

// flushCalls pushes buffered batch frames to the wire.
func (cc *clientConn) flushCalls() error {
	cc.wmu.Lock()
	err := cc.bw.Flush()
	cc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("client: flush: %w", err)
		cerr := cc.close(err)
		_ = cerr // the flush error is the one worth reporting
	}
	return err
}

// await blocks until the response for id arrives or ctx ends. The
// in-flight slot was already released when the response reached the
// read loop (or by abandon here).
func (cc *clientConn) await(ctx context.Context, id uint64, ch chan outcome) (*Result, error) {
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		return &Result{outs: out.outs}, nil
	case <-ctx.Done():
		cc.abandon(id)
		return nil, ctx.Err()
	}
}

// sendWindow pipelines one window of batch calls: issue all (buffered),
// one flush, then collect.
func (cc *clientConn) sendWindow(ctx context.Context, calls []Invocation, replies []Reply) {
	type slot struct {
		ch chan outcome
		id uint64
	}
	slots := make([]slot, len(calls))
	issued := 0
	for i, inv := range calls {
		ch, id, err := cc.issue(ctx, inv.Proc, inv.Args, false)
		if err != nil {
			replies[i].Err = err
			continue
		}
		slots[i] = slot{ch: ch, id: id}
		issued++
	}
	if issued > 0 {
		if err := cc.flushCalls(); err != nil {
			// close already failed every pending waiter; fall through
			// so collection below reports the connection error.
			_ = err
		}
	}
	for i := range calls {
		if slots[i].ch == nil {
			continue
		}
		replies[i].Result, replies[i].Err = cc.await(ctx, slots[i].id, slots[i].ch)
	}
}

// abandon forgets a request whose caller stopped waiting and releases
// its slot; a late response is dropped by the reader.
func (cc *clientConn) abandon(id uint64) {
	cc.mu.Lock()
	_, had := cc.pending[id]
	delete(cc.pending, id)
	cc.mu.Unlock()
	if had {
		<-cc.sem
	}
}

// broken reports whether the connection has failed.
func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// failure returns the error the connection failed with.
func (cc *clientConn) failure() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return errors.New("client: connection failed")
}

// close marks the connection failed with cause, fails every pending
// call, unblocks window waiters, and closes the socket.
func (cc *clientConn) close(cause error) error {
	cc.mu.Lock()
	first := cc.err == nil
	if first {
		cc.err = cause
	}
	pend := cc.pending
	cc.pending = make(map[uint64]chan outcome)
	cc.mu.Unlock()
	if first {
		close(cc.done)
	}
	for _, ch := range pend {
		ch <- outcome{err: cause}
	}
	return cc.nc.Close()
}

// readLoop dispatches response frames to their waiters by request id
// until the connection dies.
func (cc *clientConn) readLoop(maxFrame int) {
	fr := wire.NewReader(cc.nc, maxFrame)
	for {
		f, err := fr.Next()
		if err != nil {
			cerr := cc.close(fmt.Errorf("client: connection lost: %w", err))
			_ = cerr // close-after-error: the read error is authoritative
			return
		}
		var out outcome
		switch f.Op {
		case wire.OpResult:
			outs, derr := wire.DecodeResult(f.Payload)
			if derr != nil {
				out.err = fmt.Errorf("client: malformed result: %w", derr)
			} else {
				out.outs = outs
			}
		case wire.OpError:
			re, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				out.err = fmt.Errorf("client: malformed error frame: %w", derr)
			} else {
				out.err = &re
			}
		default:
			// Unknown frame for a known id is a protocol fault; for an
			// unknown id it is dropped below like any late response.
			out.err = fmt.Errorf("client: unexpected %s frame", wire.OpName(f.Op))
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		delete(cc.pending, f.ID)
		cc.mu.Unlock()
		if ok {
			ch <- outcome{outs: out.outs, err: out.err}
			// The request is answered: free its window slot now so
			// batches still issuing can proceed before anyone
			// collects this result. Abandoned requests released
			// their slot in abandon (the pending entry was gone).
			<-cc.sem
		}
	}
}
