package client

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thedb/internal/storage"
	"thedb/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to unit-test the
// client: handshake, then a caller-supplied handler per CALL frame.
// The handler returns the encoded response frame (nil = no response,
// killConn = drop the connection on the floor).
type fakeServer struct {
	t       *testing.T
	l       net.Listener
	handler func(f wire.Frame, c wire.Call) []byte
	// welcome shapes the handshake reply per connection (nil = a
	// legacy v1-style welcome with no session fields). The conn number
	// is 1-based in accept order.
	welcome func(h wire.Hello, connNo int64) wire.Welcome
	conns   atomic.Int64
}

// killConn, returned from a handler, makes the fake server drop the
// connection without answering — the ambiguous window.
var killConn = []byte{}

func newFakeServer(t *testing.T, handler func(f wire.Frame, c wire.Call) []byte) *fakeServer {
	return newFakeServerW(t, nil, handler)
}

func newFakeServerW(t *testing.T, welcome func(wire.Hello, int64) wire.Welcome, handler func(f wire.Frame, c wire.Call) []byte) *fakeServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fs := &fakeServer{t: t, l: l, handler: handler, welcome: welcome}
	go fs.acceptLoop()
	t.Cleanup(func() {
		if err := l.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("fake server close: %v", err)
		}
	})
	return fs
}

func (fs *fakeServer) addr() string { return fs.l.Addr().String() }

func (fs *fakeServer) acceptLoop() {
	for {
		nc, err := fs.l.Accept()
		if err != nil {
			return
		}
		go fs.serve(nc, fs.conns.Add(1))
	}
}

func (fs *fakeServer) serve(nc net.Conn, connNo int64) {
	defer func() {
		if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			fs.t.Logf("fake conn close: %v", err)
		}
	}()
	fr := wire.NewReader(nc, wire.DefaultMaxFrame)
	f, err := fr.Next()
	if err != nil || f.Op != wire.OpHello {
		return
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return
	}
	w := wire.Welcome{MaxFrame: wire.DefaultMaxFrame, MaxInFlight: 4, Server: "fake"}
	if fs.welcome != nil {
		w = fs.welcome(h, connNo)
	}
	if _, err := nc.Write(wire.AppendWelcome(nil, w)); err != nil {
		return
	}
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		c, err := wire.DecodeCall(f.Payload)
		if err != nil {
			return
		}
		if resp := fs.handler(f, c); resp != nil {
			if len(resp) == 0 {
				return // killConn: die without answering
			}
			if _, err := nc.Write(resp); err != nil {
				return
			}
		}
	}
}

// sessionWelcome is a welcome func granting dedup-capable sessions
// under one fixed incarnation.
func sessionWelcome(inc uint64) func(wire.Hello, int64) wire.Welcome {
	return func(h wire.Hello, _ int64) wire.Welcome {
		sess := h.Session
		if sess == 0 {
			sess = 0xAB
		}
		return wire.Welcome{
			MaxFrame: wire.DefaultMaxFrame, MaxInFlight: 4, Server: "fake",
			Session: sess, Incarnation: inc, DedupWindow: 64,
		}
	}
}

func resultFrame(id uint64, outs ...wire.Output) []byte {
	return wire.AppendResult(nil, id, outs)
}

// TestRetryOnShed: the server sheds twice with a backoff hint, then
// commits; Call must retry through both rejections and return the
// final result.
func TestRetryOnShed(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if calls.Add(1) <= 2 {
			return wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeShed, Backoff: time.Millisecond, Msg: "busy",
			})
		}
		return resultFrame(f.ID, wire.Output{Name: "x", Vals: []storage.Value{storage.Int(99)}})
	})
	cl, err := Dial(fs.addr(), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	res, err := cl.Call(context.Background(), "P")
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := res.Val("x").Int(); got != 99 {
		t.Fatalf("x = %d, want 99", got)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two shed + one commit)", got)
	}
}

// TestRetriesExhausted: permanent shedding must eventually surface
// the retryable error rather than spinning forever.
func TestRetriesExhausted(t *testing.T) {
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		return wire.AppendError(nil, f.ID, wire.RemoteError{Code: wire.CodeShed, Msg: "always busy"})
	})
	cl, err := Dial(fs.addr(), Options{RetryAttempts: 2, RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeShed {
		t.Fatalf("err = %v, want wrapped CodeShed", err)
	}
}

// TestNonRetryableError: an abort must not be retried.
func TestNonRetryableError(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		calls.Add(1)
		return wire.AppendError(nil, f.ID, wire.RemoteError{Code: wire.CodeAbort, Msg: "no"})
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeAbort {
		t.Fatalf("err = %v, want CodeAbort", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on abort)", got)
	}
}

// TestContextCancellation: a call parked on a silent server must
// return promptly when its context is cancelled, and the client must
// stay usable.
func TestContextCancellation(t *testing.T) {
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if c.Proc == "Hang" {
			return nil // never answer
		}
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Call(ctx, "Hang")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The abandoned slot must have been released: further calls work.
	if _, err := cl.Call(context.Background(), "Quick"); err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
}

// TestCallBatchOutOfOrder: a batch pipelined over one flush must
// match responses by id even when the server answers in reverse.
func TestCallBatchOutOfOrder(t *testing.T) {
	// Frame payloads alias the reader's buffer, so capture the decoded
	// call (stable) rather than the frame.
	type pendingCall struct {
		id  uint64
		arg storage.Value
	}
	var pending []pendingCall
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		pending = append(pending, pendingCall{f.ID, c.Args[0]}) // single conn: handler runs serially
		if len(pending) < 3 {
			return nil
		}
		// Answer in reverse arrival order, echoing the argument back.
		var buf []byte
		for i := len(pending) - 1; i >= 0; i-- {
			buf = wire.AppendResult(buf, pending[i].id, []wire.Output{
				{Name: "echo", Vals: []storage.Value{pending[i].arg}},
			})
		}
		pending = nil
		return buf
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	batch := []Invocation{
		{Proc: "Echo", Args: []storage.Value{storage.Int(10)}},
		{Proc: "Echo", Args: []storage.Value{storage.Int(20)}},
		{Proc: "Echo", Args: []storage.Value{storage.Int(30)}},
	}
	replies := cl.CallBatch(context.Background(), batch)
	for i, r := range replies {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		want := int64(10 * (i + 1))
		if got := r.Result.Val("echo").Int(); got != want {
			t.Fatalf("batch[%d] echo = %d, want %d", i, got, want)
		}
	}
}

// TestReconnect: a connection killed server-side is replaced on the
// next call.
func TestReconnect(t *testing.T) {
	var nth atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if nth.Add(1) == 1 {
			return nil // go silent; we kill the conn below via listener close? No — use a poison response
		}
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{RetryAttempts: -1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// First call: server never answers; cancel it, then break the
	// conn by dropping a garbage frame through it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = cl.Call(ctx, "Silent")
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Kill the underlying socket from the client side to simulate a
	// dropped connection, then verify the pool self-heals.
	cl.mu.Lock()
	for _, cc := range cl.pool {
		if cc != nil {
			if err := cc.close(errors.New("simulated drop")); err != nil && !errors.Is(err, net.ErrClosed) {
				t.Logf("drop: %v", err)
			}
		}
	}
	cl.mu.Unlock()
	if _, err := cl.Call(context.Background(), "Back"); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	if got := fs.conns.Load(); got < 2 {
		t.Fatalf("server saw %d connections, want ≥ 2 (reconnect)", got)
	}
}

// TestRetryDelayShape pins the backoff curve: exponential from base,
// jittered into [d/2, d], capped at RetryMax even when the shift
// overflows, and floored at the server's hint.
func TestRetryDelayShape(t *testing.T) {
	lowJitter := func(int64) int64 { return 0 }
	highJitter := func(n int64) int64 { return n - 1 }
	base, max := time.Millisecond, 100*time.Millisecond

	// Attempt 1 draws from [base/2, base].
	if d := retryDelay(base, max, 0, 1, lowJitter); d != base/2 {
		t.Fatalf("attempt 1 low jitter = %v, want %v", d, base/2)
	}
	if d := retryDelay(base, max, 0, 1, highJitter); d != base {
		t.Fatalf("attempt 1 high jitter = %v, want %v", d, base)
	}
	// Attempt 4 has tripled twice more: base<<3.
	if d := retryDelay(base, max, 0, 4, highJitter); d != base<<3 {
		t.Fatalf("attempt 4 high jitter = %v, want %v", d, base<<3)
	}
	// Attempt 10 would be 512ms: capped at max.
	if d := retryDelay(base, max, 0, 10, highJitter); d != max {
		t.Fatalf("attempt 10 = %v, want cap %v", d, max)
	}
	// Huge attempt counts must cap cleanly, not overflow the shift.
	for _, attempt := range []int{40, 62, 63, 64, 100} {
		if d := retryDelay(base, max, 0, attempt, highJitter); d != max {
			t.Fatalf("attempt %d high jitter = %v, want cap %v", attempt, d, max)
		}
		if d := retryDelay(base, max, 0, attempt, lowJitter); d != max/2 {
			t.Fatalf("attempt %d low jitter = %v, want %v", attempt, d, max/2)
		}
	}
	// The server hint floors the sleep; a small hint does not shrink it.
	if d := retryDelay(base, max, 50*time.Millisecond, 1, lowJitter); d != 50*time.Millisecond {
		t.Fatalf("hinted delay = %v, want the 50ms floor", d)
	}
	if d := retryDelay(base, max, time.Microsecond, 1, highJitter); d != base {
		t.Fatalf("small hint raised delay to %v, want %v", d, base)
	}
	// Real random draws stay inside the attempt's jitter band.
	lo, hi := (base<<2)/2, base<<2
	for i := 0; i < 1000; i++ {
		if d := retryDelay(base, max, 0, 3, rand.Int63n); d < lo || d > hi {
			t.Fatalf("attempt 3 draw %v outside [%v, %v]", d, lo, hi)
		}
	}
}

// TestTransparentRetrySameSeq: a connection dropped after the call was
// sent must be retried transparently on a fresh connection under the
// SAME sequence number — the client half of exactly-once.
func TestTransparentRetrySameSeq(t *testing.T) {
	var mu sync.Mutex
	var seen []uint64
	fs := newFakeServerW(t, sessionWelcome(0x1111), func(f wire.Frame, c wire.Call) []byte {
		mu.Lock()
		seen = append(seen, c.Seq)
		n := len(seen)
		mu.Unlock()
		if n == 1 {
			return killConn
		}
		return resultFrame(f.ID, wire.Output{Name: "x", Vals: []storage.Value{storage.Int(7)}})
	})
	cl, err := Dial(fs.addr(), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	res, err := cl.Call(context.Background(), "P")
	if err != nil {
		t.Fatalf("call through dropped conn: %v", err)
	}
	if got := res.Val("x").Int(); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("server saw %d sends, want 2 (original + retry)", len(seen))
	}
	if seen[0] == 0 || seen[0] != seen[1] {
		t.Fatalf("retry seq %d != original seq %d (or zero)", seen[1], seen[0])
	}
}

// TestIncarnationChangeSurfacesMaybeCommitted: when the server holding
// an unanswered attempt restarts (new incarnation), the client must
// NOT re-send — the dedup window is gone — and must surface the typed
// ambiguity instead.
func TestIncarnationChangeSurfacesMaybeCommitted(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServerW(t, func(h wire.Hello, connNo int64) wire.Welcome {
		sess := h.Session
		if sess == 0 {
			sess = 0xAB
		}
		return wire.Welcome{
			MaxFrame: wire.DefaultMaxFrame, MaxInFlight: 4, Server: "fake",
			Session: sess, Incarnation: uint64(connNo), DedupWindow: 64,
		}
	}, func(f wire.Frame, c wire.Call) []byte {
		calls.Add(1)
		return killConn
	})
	cl, err := Dial(fs.addr(), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	if !errors.Is(err, ErrMaybeCommitted) {
		t.Fatalf("err = %v, want ErrMaybeCommitted", err)
	}
	var mce *MaybeCommittedError
	if !errors.As(err, &mce) || mce.Cause == nil {
		t.Fatalf("err = %v, want *MaybeCommittedError with cause", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d sends, want 1 (no blind re-send across incarnations)", got)
	}
}

// TestDedupDisabledAmbiguityImmediate: with no session granted, a
// sent-but-unanswered call has no safe retry and must surface the
// ambiguity without re-dialing.
func TestDedupDisabledAmbiguityImmediate(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		calls.Add(1)
		return killConn
	})
	cl, err := Dial(fs.addr(), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	if !errors.Is(err, ErrMaybeCommitted) {
		t.Fatalf("err = %v, want ErrMaybeCommitted", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d sends, want 1", got)
	}
}

// TestBudgetPropagation: a context deadline rides the call frame as a
// microsecond budget; no deadline means budget 0.
func TestBudgetPropagation(t *testing.T) {
	var withDeadline, without atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if c.Proc == "Deadline" {
			withDeadline.Store(int64(c.BudgetUS))
		} else {
			without.Store(int64(c.BudgetUS))
		}
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := cl.Call(ctx, "Deadline"); err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := withDeadline.Load(); got <= 0 || got > 500_000 {
		t.Fatalf("budget = %dµs, want in (0, 500000]", got)
	}
	if _, err := cl.Call(context.Background(), "NoDeadline"); err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := without.Load(); got != 0 {
		t.Fatalf("budget without deadline = %dµs, want 0", got)
	}
}

// TestSessionReusedAcrossReconnect: every redial presents the token
// minted by the first handshake, so one client is one session.
func TestSessionReusedAcrossReconnect(t *testing.T) {
	var mu sync.Mutex
	var hellos []uint64
	fs := newFakeServerW(t, func(h wire.Hello, connNo int64) wire.Welcome {
		mu.Lock()
		hellos = append(hellos, h.Session)
		mu.Unlock()
		return sessionWelcome(0x2222)(h, connNo)
	}, func(f wire.Frame, c wire.Call) []byte {
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if _, err := cl.Call(context.Background(), "P"); err != nil {
		t.Fatalf("call: %v", err)
	}
	// Break the pooled conn; the next call redials.
	cl.mu.Lock()
	for _, cc := range cl.pool {
		if cc != nil {
			if err := cc.close(errors.New("simulated drop")); err != nil && !errors.Is(err, net.ErrClosed) {
				t.Logf("drop: %v", err)
			}
		}
	}
	cl.mu.Unlock()
	if _, err := cl.Call(context.Background(), "P"); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hellos) < 2 {
		t.Fatalf("server saw %d handshakes, want ≥ 2", len(hellos))
	}
	if hellos[0] != 0 {
		t.Fatalf("first hello presented session %#x, want 0 (mint)", hellos[0])
	}
	for _, h := range hellos[1:] {
		if h != 0xAB {
			t.Fatalf("redial presented session %#x, want the minted 0xAB", h)
		}
	}
}
