package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"thedb/internal/storage"
	"thedb/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to unit-test the
// client: handshake, then a caller-supplied handler per CALL frame.
// The handler returns the encoded response frame (nil = no response).
type fakeServer struct {
	t       *testing.T
	l       net.Listener
	handler func(f wire.Frame, c wire.Call) []byte
	conns   atomic.Int64
}

func newFakeServer(t *testing.T, handler func(f wire.Frame, c wire.Call) []byte) *fakeServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fs := &fakeServer{t: t, l: l, handler: handler}
	go fs.acceptLoop()
	t.Cleanup(func() {
		if err := l.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("fake server close: %v", err)
		}
	})
	return fs
}

func (fs *fakeServer) addr() string { return fs.l.Addr().String() }

func (fs *fakeServer) acceptLoop() {
	for {
		nc, err := fs.l.Accept()
		if err != nil {
			return
		}
		fs.conns.Add(1)
		go fs.serve(nc)
	}
}

func (fs *fakeServer) serve(nc net.Conn) {
	defer func() {
		if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			fs.t.Logf("fake conn close: %v", err)
		}
	}()
	fr := wire.NewReader(nc, wire.DefaultMaxFrame)
	f, err := fr.Next()
	if err != nil || f.Op != wire.OpHello {
		return
	}
	if _, err := nc.Write(wire.AppendWelcome(nil, wire.Welcome{
		MaxFrame: wire.DefaultMaxFrame, MaxInFlight: 4, Server: "fake",
	})); err != nil {
		return
	}
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		c, err := wire.DecodeCall(f.Payload)
		if err != nil {
			return
		}
		if resp := fs.handler(f, c); resp != nil {
			if _, err := nc.Write(resp); err != nil {
				return
			}
		}
	}
}

func resultFrame(id uint64, outs ...wire.Output) []byte {
	return wire.AppendResult(nil, id, outs)
}

// TestRetryOnShed: the server sheds twice with a backoff hint, then
// commits; Call must retry through both rejections and return the
// final result.
func TestRetryOnShed(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if calls.Add(1) <= 2 {
			return wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeShed, Backoff: time.Millisecond, Msg: "busy",
			})
		}
		return resultFrame(f.ID, wire.Output{Name: "x", Vals: []storage.Value{storage.Int(99)}})
	})
	cl, err := Dial(fs.addr(), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	res, err := cl.Call(context.Background(), "P")
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := res.Val("x").Int(); got != 99 {
		t.Fatalf("x = %d, want 99", got)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two shed + one commit)", got)
	}
}

// TestRetriesExhausted: permanent shedding must eventually surface
// the retryable error rather than spinning forever.
func TestRetriesExhausted(t *testing.T) {
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		return wire.AppendError(nil, f.ID, wire.RemoteError{Code: wire.CodeShed, Msg: "always busy"})
	})
	cl, err := Dial(fs.addr(), Options{RetryAttempts: 2, RetryBase: time.Microsecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeShed {
		t.Fatalf("err = %v, want wrapped CodeShed", err)
	}
}

// TestNonRetryableError: an abort must not be retried.
func TestNonRetryableError(t *testing.T) {
	var calls atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		calls.Add(1)
		return wire.AppendError(nil, f.ID, wire.RemoteError{Code: wire.CodeAbort, Msg: "no"})
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	_, err = cl.Call(context.Background(), "P")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeAbort {
		t.Fatalf("err = %v, want CodeAbort", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on abort)", got)
	}
}

// TestContextCancellation: a call parked on a silent server must
// return promptly when its context is cancelled, and the client must
// stay usable.
func TestContextCancellation(t *testing.T) {
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if c.Proc == "Hang" {
			return nil // never answer
		}
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Call(ctx, "Hang")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The abandoned slot must have been released: further calls work.
	if _, err := cl.Call(context.Background(), "Quick"); err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
}

// TestCallBatchOutOfOrder: a batch pipelined over one flush must
// match responses by id even when the server answers in reverse.
func TestCallBatchOutOfOrder(t *testing.T) {
	// Frame payloads alias the reader's buffer, so capture the decoded
	// call (stable) rather than the frame.
	type pendingCall struct {
		id  uint64
		arg storage.Value
	}
	var pending []pendingCall
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		pending = append(pending, pendingCall{f.ID, c.Args[0]}) // single conn: handler runs serially
		if len(pending) < 3 {
			return nil
		}
		// Answer in reverse arrival order, echoing the argument back.
		var buf []byte
		for i := len(pending) - 1; i >= 0; i-- {
			buf = wire.AppendResult(buf, pending[i].id, []wire.Output{
				{Name: "echo", Vals: []storage.Value{pending[i].arg}},
			})
		}
		pending = nil
		return buf
	})
	cl, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	batch := []Invocation{
		{Proc: "Echo", Args: []storage.Value{storage.Int(10)}},
		{Proc: "Echo", Args: []storage.Value{storage.Int(20)}},
		{Proc: "Echo", Args: []storage.Value{storage.Int(30)}},
	}
	replies := cl.CallBatch(context.Background(), batch)
	for i, r := range replies {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		want := int64(10 * (i + 1))
		if got := r.Result.Val("echo").Int(); got != want {
			t.Fatalf("batch[%d] echo = %d, want %d", i, got, want)
		}
	}
}

// TestReconnect: a connection killed server-side is replaced on the
// next call.
func TestReconnect(t *testing.T) {
	var nth atomic.Int64
	fs := newFakeServer(t, func(f wire.Frame, c wire.Call) []byte {
		if nth.Add(1) == 1 {
			return nil // go silent; we kill the conn below via listener close? No — use a poison response
		}
		return resultFrame(f.ID)
	})
	cl, err := Dial(fs.addr(), Options{RetryAttempts: -1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// First call: server never answers; cancel it, then break the
	// conn by dropping a garbage frame through it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = cl.Call(ctx, "Silent")
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Kill the underlying socket from the client side to simulate a
	// dropped connection, then verify the pool self-heals.
	cl.mu.Lock()
	for _, cc := range cl.pool {
		if cc != nil {
			if err := cc.close(errors.New("simulated drop")); err != nil && !errors.Is(err, net.ErrClosed) {
				t.Logf("drop: %v", err)
			}
		}
	}
	cl.mu.Unlock()
	if _, err := cl.Call(context.Background(), "Back"); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	if got := fs.conns.Load(); got < 2 {
		t.Fatalf("server saw %d connections, want ≥ 2 (reconnect)", got)
	}
}
