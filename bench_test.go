// Benchmarks regenerating the characteristic cell of every table and
// figure in the paper's evaluation. Each benchmark reports throughput
// (tps) and, where the paper's point is about aborts, the abort rate,
// as custom metrics alongside the usual ns/op.
//
// The full parameter sweeps (every warehouse count, every θ, every
// system) live in the CLI harness:
//
//	go run ./cmd/thedb-bench all
//
// These testing.B entry points pin one representative cell per
// experiment so `go test -bench .` exercises the entire matrix.
package thedb_test

import (
	"testing"

	"thedb"
	"thedb/internal/bench"
	"thedb/internal/workload/tpcc"
)

// benchTPCC runs b.N transactions of the mix on the given system.
func benchTPCC(b *testing.B, sys bench.System, workers, warehouses int, mix tpcc.Mix) {
	run, cleanup := bench.PrepareTPCC(sys, workers, warehouses, mix)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
	b.ReportMetric(agg.AbortRate(), "aborts/txn")
}

func benchSmallbank(b *testing.B, sys bench.System, workers int, theta float64) {
	run, cleanup := bench.PrepareSmallbank(sys, workers, theta)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
	b.ReportMetric(agg.AbortRate(), "aborts/txn")
}

// Figure 8: OCC and Silo against their no-validation peaks at high
// contention (WH=2).
func BenchmarkFig8_OCC_WH2(b *testing.B)      { benchTPCC(b, bench.OCC, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig8_OCCMinus_WH2(b *testing.B) { benchTPCC(b, bench.OCCMinus, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig8_Silo_WH2(b *testing.B)     { benchTPCC(b, bench.SILO, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig8_SiloMinus_WH2(b *testing.B) {
	benchTPCC(b, bench.SILOMinus, 8, 2, tpcc.StandardMix())
}

// Figure 9: the abort-rate metric of the OCC cell above is the
// figure's subject; this benchmark pins the low-contention contrast.
func BenchmarkFig9_OCC_WH48(b *testing.B) { benchTPCC(b, bench.OCC, 8, 48, tpcc.StandardMix()) }

// Figure 10: all systems at the paper's most contended point.
func BenchmarkFig10_THEDB_WH2(b *testing.B)  { benchTPCC(b, bench.THEDB, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig10_2PL_WH2(b *testing.B)    { benchTPCC(b, bench.TPL, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig10_Hybrid_WH2(b *testing.B) { benchTPCC(b, bench.HYBRID, 8, 2, tpcc.StandardMix()) }
func BenchmarkFig10_DT_WH2(b *testing.B)     { benchTPCC(b, bench.DT, 8, 2, tpcc.StandardMix()) }

// Figure 11: scaling in workers at WH=4 (one low, one high point).
func BenchmarkFig11_THEDB_W1_WH4(b *testing.B) { benchTPCC(b, bench.THEDB, 1, 4, tpcc.StandardMix()) }
func BenchmarkFig11_THEDB_W8_WH4(b *testing.B) { benchTPCC(b, bench.THEDB, 8, 4, tpcc.StandardMix()) }

// Figure 12: the deterministic engine with and without
// cross-partition transactions.
func BenchmarkFig12_DT_Cross0(b *testing.B) {
	mix := tpcc.StandardMix()
	mix.RemotePct = 0
	benchTPCC(b, bench.DT, 8, 8, mix)
}
func BenchmarkFig12_DT_Cross10(b *testing.B) {
	mix := tpcc.StandardMix()
	mix.RemotePct = 10
	benchTPCC(b, bench.DT, 8, 8, mix)
}

// Table 1 measures latency distributions; its throughput cell is the
// contended NewOrder-heavy mix at WH=4.
func BenchmarkTab1_THEDB_WH4(b *testing.B) { benchTPCC(b, bench.THEDB, 8, 4, tpcc.StandardMix()) }
func BenchmarkTab1_OCC_WH4(b *testing.B)   { benchTPCC(b, bench.OCC, 8, 4, tpcc.StandardMix()) }

// Figure 13: healing with a 50% ad-hoc share sits between THEDB and
// OCC; the pure NewOrder mix shows the contrast most clearly.
func BenchmarkFig13_THEDB_NewOrderOnly(b *testing.B) {
	benchTPCC(b, bench.THEDB, 8, 4, tpcc.Mix{NewOrderOnly: true})
}

// Table 2 / Figure 14 / Table 3: Smallbank across the θ axis.
func BenchmarkTab2_THEDB_Theta09(b *testing.B) { benchSmallbank(b, bench.THEDB, 8, 0.9) }
func BenchmarkTab2_OCC_Theta09(b *testing.B)   { benchSmallbank(b, bench.OCC, 8, 0.9) }
func BenchmarkFig14_Silo_Theta01(b *testing.B) { benchSmallbank(b, bench.SILO, 8, 0.1) }
func BenchmarkFig14_Silo_Theta09(b *testing.B) { benchSmallbank(b, bench.SILO, 8, 0.9) }
func BenchmarkTab3_THEDB_Theta05(b *testing.B) { benchSmallbank(b, bench.THEDB, 8, 0.5) }

// Table 4: the access-cache and read-copy maintenance overhead on a
// contention-free workload (WH = workers, NewOrder only).
func BenchmarkTab4_Normal(b *testing.B) {
	run, cleanup := bench.PrepareTPCCAblation(8, tpcc.Mix{NewOrderOnly: true}, true, true)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
}
func BenchmarkTab4_AccessCache(b *testing.B) {
	run, cleanup := bench.PrepareTPCCAblation(8, tpcc.Mix{NewOrderOnly: true}, false, true)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
}
func BenchmarkTab4_ReadCopy(b *testing.B) {
	run, cleanup := bench.PrepareTPCCAblation(8, tpcc.Mix{NewOrderOnly: true}, false, false)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
}

// Figure 16: logging modes (in-memory sink, as in the paper's
// Appendix C).
func BenchmarkFig16_ValueLogging(b *testing.B) {
	run, cleanup := bench.PrepareTPCCLogging(8, 12, bench.ValueLoggingMode)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
}
func BenchmarkFig16_CommandLogging(b *testing.B) {
	run, cleanup := bench.PrepareTPCCLogging(8, 12, bench.CommandLoggingMode)
	defer cleanup()
	b.ResetTimer()
	agg := run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(agg.TPS(), "tps")
}

// Figure 17 (substituted Silo sanity) and Figure 18 (DT linear
// scaling, perfectly partitionable).
func BenchmarkFig17_Silo_WH8(b *testing.B) { benchTPCC(b, bench.SILO, 8, 8, tpcc.StandardMix()) }
func BenchmarkFig18_DT_WH8_NoCross(b *testing.B) {
	mix := tpcc.StandardMix()
	mix.RemotePct = 0
	benchTPCC(b, bench.DT, 8, 8, mix)
}

// Table 5: low-contention latency cell (WH=24).
func BenchmarkTab5_THEDB_WH24(b *testing.B) { benchTPCC(b, bench.THEDB, 8, 24, tpcc.StandardMix()) }

// Figure 19's subject is the phase breakdown; its timing cell is
// THEDB vs OCC at WH=4 (see BenchmarkTab1_*). Table 6 / Figure 20:
// validation-order rearrangement.
func BenchmarkFig20_THEDBW_WH4(b *testing.B) { benchTPCC(b, bench.THEDBW, 8, 4, tpcc.StandardMix()) }
func BenchmarkTab6_THEDB_WH4(b *testing.B)   { benchTPCC(b, bench.THEDB, 8, 4, tpcc.StandardMix()) }

// benchFlightRecorder drives the same single-worker commit hot loop
// with the flight recorder off (EventBuffer 0: every event site is one
// nil check) and on, so the pair bounds the recorder's hot-loop
// overhead. The acceptance budget for the disabled path is ≤2% delta
// against the seed.
func benchFlightRecorder(b *testing.B, eventBuffer int) {
	db := counterDB(b, thedb.Config{Protocol: thedb.Healing, Workers: 1, EventBuffer: eventBuffer})
	db.Start()
	defer db.Close()
	s := db.Session(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run("Incr", thedb.Int(int64(i%8))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlightRecorderOff(b *testing.B) { benchFlightRecorder(b, 0) }
func BenchmarkFlightRecorderOn(b *testing.B)  { benchFlightRecorder(b, 4096) }
