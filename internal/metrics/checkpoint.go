package metrics

import "sync/atomic"

// Checkpoint holds the checkpoint subsystem's counters plus the boot
// restart measurements, exposed as the thedb_checkpoint_* and
// thedb_restart_* series on the obs plane. All fields are atomics:
// the background checkpointer writes them while scrapes read.
type Checkpoint struct {
	// Taken counts successfully published checkpoints.
	Taken atomic.Int64
	// Failed counts checkpoint rounds that aborted before publishing
	// (scan error, durability lost, injected crash point).
	Failed atomic.Int64
	// LastWatermark is the sealed-epoch watermark of the newest
	// published checkpoint: every transaction with commit epoch at or
	// below it is fully contained in the checkpoint image.
	LastWatermark atomic.Uint32
	// LastRows and LastBytes describe the newest published image.
	LastRows  atomic.Int64
	LastBytes atomic.Int64
	// LastDurationNS is the wall time of the newest successful round,
	// scan through publish and truncation.
	LastDurationNS atomic.Int64
	// WALGensRemoved counts WAL generation files deleted because the
	// checkpoint watermark covered them.
	WALGensRemoved atomic.Int64

	// Restart measurements, set once at boot by the server.
	RestartNS       atomic.Int64 // wall time of the whole boot recovery
	RestartReplayed atomic.Int64 // commit groups applied from the WAL tail
	RestartSkipped  atomic.Int64 // groups below the checkpoint watermark, not replayed
}

// SetRestart records the boot recovery measurements.
func (c *Checkpoint) SetRestart(wallNS, replayed, skipped int64) {
	c.RestartNS.Store(wallNS)
	c.RestartReplayed.Store(replayed)
	c.RestartSkipped.Store(skipped)
}
