// Package metrics collects the measurements the paper reports:
// per-phase time breakdown (Fig. 19), latency histograms with the
// paper's doubling bucket layout (Tables 1, 3, 5), throughput, abort
// and restart counts (Fig. 9, Tables 2, 6).
//
// Each worker owns a private Worker collector (no synchronization on
// the hot path); Aggregate folds workers together after a run.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Phase enumerates where transaction-processing time is spent.
type Phase int

// Phases, matching Fig. 19's breakdown.
const (
	PhaseRead Phase = iota
	PhaseValidate
	PhaseHeal
	PhaseWrite
	PhaseAbort // cleanup + wasted work of aborted attempts
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseRead:
		return "read"
	case PhaseValidate:
		return "validate"
	case PhaseHeal:
		return "heal"
	case PhaseWrite:
		return "write"
	case PhaseAbort:
		return "abort"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// numBuckets covers latencies from 1µs up to ~8.4s in doubling
// buckets, a superset of the paper's table rows.
const numBuckets = 24

// Worker is a single worker's private metrics collector.
type Worker struct {
	Committed  int64
	Aborted    int64 // transactions given up permanently (user abort, deadlock prevention)
	Restarts   int64 // abort-and-restart events (OCC/2PL retries)
	Heals      int64 // healing-phase invocations
	HealedOps  int64 // operations restored by healing
	FalseInval int64 // validation failures dismissed as false invalidations

	// Degradation-ladder and watchdog counters (DESIGN.md §10).
	HealingFallbacks int64 // escalations to a less optimistic rung (Healing→OCC, OCC→2PL)
	BudgetExhausted  int64 // transactions that ran out of retry budget (ErrContended)
	WatchdogTrips    int64 // stuck-epoch watchdog firings attributed to this worker

	PhaseNS [numPhases]int64

	latency [numBuckets]int64 // committed-transaction latency, bucket i: [2^i, 2^(i+1)) µs
	samples []float64         // raw latency samples (µs), capped, for percentiles
}

// maxSamples caps raw percentile samples per worker.
const maxSamples = 1 << 17

// AddPhase accrues d into the phase's total.
func (w *Worker) AddPhase(p Phase, d time.Duration) { w.PhaseNS[p] += int64(d) }

// ObserveLatency records one committed transaction's latency.
func (w *Worker) ObserveLatency(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	b := 0
	if us >= 1 {
		b = int(math.Log2(us))
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	w.latency[b]++
	if len(w.samples) < maxSamples {
		w.samples = append(w.samples, us)
	}
}

// Aggregate is the merged view over all workers plus the wall-clock
// duration of the run.
type Aggregate struct {
	Worker
	Wall    time.Duration
	Workers int

	// Durability state, filled by the engine (not per-worker; zero
	// when logging is off or on the deterministic engine).
	DurableEpoch    uint32 // highest epoch synced to stable storage on every stream
	DurabilityLost  bool   // a log sync exhausted its retries; recent epochs may not be durable
	LogSyncs        int64  // successful epoch log syncs
	LogSyncFailures int64  // failed sync attempts (includes retried ones)
}

// Merge folds per-worker collectors into one aggregate.
func Merge(wall time.Duration, workers []*Worker) *Aggregate {
	a := &Aggregate{Wall: wall, Workers: len(workers)}
	for _, w := range workers {
		a.Committed += w.Committed
		a.Aborted += w.Aborted
		a.Restarts += w.Restarts
		a.Heals += w.Heals
		a.HealedOps += w.HealedOps
		a.FalseInval += w.FalseInval
		a.HealingFallbacks += w.HealingFallbacks
		a.BudgetExhausted += w.BudgetExhausted
		a.WatchdogTrips += w.WatchdogTrips
		for p := range w.PhaseNS {
			a.PhaseNS[p] += w.PhaseNS[p]
		}
		for b := range w.latency {
			a.latency[b] += w.latency[b]
		}
		a.samples = append(a.samples, w.samples...)
	}
	return a
}

// TPS returns committed transactions per second of wall time.
func (a *Aggregate) TPS() float64 {
	if a.Wall <= 0 {
		return 0
	}
	return float64(a.Committed) / a.Wall.Seconds()
}

// AbortRate returns restarts per committed transaction, the paper's
// abort-rate definition (§5.1 footnote 6).
func (a *Aggregate) AbortRate() float64 {
	if a.Committed == 0 {
		return 0
	}
	return float64(a.Restarts) / float64(a.Committed)
}

// PermanentAbortRate returns permanently aborted transactions per
// committed transaction (deadlock prevention, Table 6).
func (a *Aggregate) PermanentAbortRate() float64 {
	if a.Committed == 0 {
		return 0
	}
	return float64(a.Aborted) / float64(a.Committed)
}

// PhaseFraction returns the share of total measured time spent in p.
func (a *Aggregate) PhaseFraction(p Phase) float64 {
	var total int64
	for _, ns := range a.PhaseNS {
		total += ns
	}
	if total == 0 {
		return 0
	}
	return float64(a.PhaseNS[p]) / float64(total)
}

// LatencyShare returns the fraction of committed transactions whose
// latency fell in [lo, hi) microseconds, computed from the raw
// samples (paper Tables 1 and 5 use irregular bucket edges).
func (a *Aggregate) LatencyShare(loUS, hiUS float64) float64 {
	if len(a.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range a.samples {
		if s >= loUS && s < hiUS {
			n++
		}
	}
	return float64(n) / float64(len(a.samples))
}

// Percentile returns the p-th latency percentile in microseconds
// (p in [0, 100]).
func (a *Aggregate) Percentile(p float64) float64 {
	if len(a.samples) == 0 {
		return 0
	}
	s := make([]float64, len(a.samples))
	copy(s, a.samples)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Samples returns the number of raw latency samples retained.
func (a *Aggregate) Samples() int { return len(a.samples) }

// BreakdownString renders the phase breakdown as percentages,
// followed by the degradation-ladder counters when any are nonzero.
func (a *Aggregate) BreakdownString() string {
	var parts []string
	for p := Phase(0); p < numPhases; p++ {
		parts = append(parts, fmt.Sprintf("%s=%.1f%%", p, 100*a.PhaseFraction(p)))
	}
	if a.HealingFallbacks != 0 || a.BudgetExhausted != 0 || a.WatchdogTrips != 0 {
		parts = append(parts,
			fmt.Sprintf("fallbacks=%d", a.HealingFallbacks),
			fmt.Sprintf("budget_exhausted=%d", a.BudgetExhausted),
			fmt.Sprintf("watchdog_trips=%d", a.WatchdogTrips))
	}
	return strings.Join(parts, " ")
}
