// Package metrics collects the measurements the paper reports:
// per-phase time breakdown (Fig. 19), latency histograms with the
// paper's doubling bucket layout (Tables 1, 3, 5), throughput, abort
// and restart counts (Fig. 9, Tables 2, 6).
//
// Each worker owns a private Worker collector; the counter fields are
// updated with atomic adds (no locks, no sharing of cachelines
// between workers) so a live snapshot can read them mid-run without
// stopping the worker — see Snapshot. Aggregate folds workers
// together after a run or at a snapshot instant.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Phase enumerates where transaction-processing time is spent.
type Phase int

// Phases, matching Fig. 19's breakdown.
const (
	PhaseRead Phase = iota
	PhaseValidate
	PhaseHeal
	PhaseWrite
	PhaseAbort // cleanup + wasted work of aborted attempts
	numPhases
)

// NumPhases is the phase count (exposition iterates all phases).
const NumPhases = int(numPhases)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseRead:
		return "read"
	case PhaseValidate:
		return "validate"
	case PhaseHeal:
		return "heal"
	case PhaseWrite:
		return "write"
	case PhaseAbort:
		return "abort"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// numBuckets covers latencies from 1µs up to ~8.4s in doubling
// buckets, a superset of the paper's table rows.
const numBuckets = 24

// Counters is a plain-field snapshot of one collector's counter
// state. It is the read side of the live/snapshot split: Worker's
// fields are written with atomic adds and must never be read plainly,
// while a Counters value is an ordinary struct — copy it, sum it,
// read it from any goroutine. Worker.Snapshot is the only bridge
// between the two.
type Counters struct {
	Committed  int64
	Aborted    int64 // transactions given up permanently (user abort, deadlock prevention)
	Restarts   int64 // abort-and-restart events (OCC/2PL retries)
	Heals      int64 // healing-phase invocations
	HealedOps  int64 // operations restored by healing
	FalseInval int64 // validation failures dismissed as false invalidations

	// Degradation-ladder and watchdog counters (DESIGN.md §10).
	HealingFallbacks int64 // escalations to a less optimistic rung (Healing→OCC, OCC→2PL)
	BudgetExhausted  int64 // transactions that ran out of retry budget (ErrContended)
	WatchdogTrips    int64 // stuck-epoch watchdog firings attributed to this worker

	// Snapshot-read counters (DESIGN.md §16). SnapshotReads counts
	// committed snapshot transactions (a subset of Committed);
	// VersionsInstalled counts version-chain nodes pushed by the commit
	// path on epoch-boundary crossings.
	SnapshotReads     int64
	VersionsInstalled int64

	// LatencySumNS totals committed-transaction latency, pairing with
	// the histogram buckets for exposition (_sum of the Prometheus
	// histogram).
	LatencySumNS int64

	PhaseNS [numPhases]int64

	latency [numBuckets]int64 // committed-transaction latency, bucket i: [2^i, 2^(i+1)) µs
}

// accumulate sums o into c field by field.
func (c *Counters) accumulate(o *Counters) {
	c.Committed += o.Committed
	c.Aborted += o.Aborted
	c.Restarts += o.Restarts
	c.Heals += o.Heals
	c.HealedOps += o.HealedOps
	c.FalseInval += o.FalseInval
	c.HealingFallbacks += o.HealingFallbacks
	c.BudgetExhausted += o.BudgetExhausted
	c.WatchdogTrips += o.WatchdogTrips
	c.SnapshotReads += o.SnapshotReads
	c.VersionsInstalled += o.VersionsInstalled
	c.LatencySumNS += o.LatencySumNS
	for p := range o.PhaseNS {
		c.PhaseNS[p] += o.PhaseNS[p]
	}
	for b := range o.latency {
		c.latency[b] += o.latency[b]
	}
}

// Worker is a single worker's private metrics collector.
//
// The int64 counter fields are written with atomic adds by the owning
// worker and read atomically by everyone, including the owner: use
// Snapshot, which returns a plain Counters value. The atomicdisc
// analyzer enforces the split — a plain read or write of any field
// below is a lint error everywhere in the module. The raw percentile
// samples are worker-private until the run ends and are never part of
// a live snapshot.
type Worker struct {
	Committed  int64
	Aborted    int64 // transactions given up permanently (user abort, deadlock prevention)
	Restarts   int64 // abort-and-restart events (OCC/2PL retries)
	Heals      int64 // healing-phase invocations
	HealedOps  int64 // operations restored by healing
	FalseInval int64 // validation failures dismissed as false invalidations

	// Degradation-ladder and watchdog counters (DESIGN.md §10).
	HealingFallbacks int64 // escalations to a less optimistic rung (Healing→OCC, OCC→2PL)
	BudgetExhausted  int64 // transactions that ran out of retry budget (ErrContended)
	WatchdogTrips    int64 // stuck-epoch watchdog firings attributed to this worker

	// Snapshot-read counters (DESIGN.md §16).
	SnapshotReads     int64
	VersionsInstalled int64

	// LatencySumNS totals committed-transaction latency, pairing with
	// the histogram buckets for exposition (_sum of the Prometheus
	// histogram).
	LatencySumNS int64

	PhaseNS [numPhases]int64

	latency [numBuckets]int64 // committed-transaction latency, bucket i: [2^i, 2^(i+1)) µs
	samples []float64         // raw latency samples (µs), capped, for percentiles
}

// maxSamples caps raw percentile samples per worker.
const maxSamples = 1 << 17

// MaxMergedSamples is the documented global bound on raw latency
// samples an Aggregate retains: Merge reservoir-downsamples past it,
// so many-worker runs never hold unbounded float64 slices (each
// worker alone may contribute up to maxSamples = 1<<17).
const MaxMergedSamples = 1 << 18

// Inc atomically adds 1 to a counter field of this collector; Add
// adds n. Callers pass a pointer to one of the exported int64 fields
// (e.g. w.Inc(&w.Committed)).
//
//thedb:noalloc
func (w *Worker) Inc(field *int64) { atomic.AddInt64(field, 1) }

// Add atomically adds n to a counter field of this collector.
//
//thedb:noalloc
func (w *Worker) Add(field *int64, n int64) { atomic.AddInt64(field, n) }

// AddPhase accrues d into the phase's total.
//
//thedb:noalloc
func (w *Worker) AddPhase(p Phase, d time.Duration) {
	atomic.AddInt64(&w.PhaseNS[p], int64(d))
}

// ObserveLatency records one committed transaction's latency.
func (w *Worker) ObserveLatency(d time.Duration) {
	atomic.AddInt64(&w.LatencySumNS, int64(d))
	us := float64(d) / float64(time.Microsecond)
	b := 0
	if us >= 1 {
		b = int(math.Log2(us))
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	atomic.AddInt64(&w.latency[b], 1)
	if len(w.samples) < maxSamples {
		w.samples = append(w.samples, us)
	}
}

// Snapshot returns an atomically-read copy of the worker's counters,
// safe to take while the worker keeps committing. The raw percentile
// samples are deliberately excluded (they are append-only
// worker-private state, merged only after a run); histogram buckets,
// phase times and all counters are included.
func (w *Worker) Snapshot() Counters {
	var s Counters
	s.Committed = atomic.LoadInt64(&w.Committed)
	s.Aborted = atomic.LoadInt64(&w.Aborted)
	s.Restarts = atomic.LoadInt64(&w.Restarts)
	s.Heals = atomic.LoadInt64(&w.Heals)
	s.HealedOps = atomic.LoadInt64(&w.HealedOps)
	s.FalseInval = atomic.LoadInt64(&w.FalseInval)
	s.HealingFallbacks = atomic.LoadInt64(&w.HealingFallbacks)
	s.BudgetExhausted = atomic.LoadInt64(&w.BudgetExhausted)
	s.WatchdogTrips = atomic.LoadInt64(&w.WatchdogTrips)
	s.SnapshotReads = atomic.LoadInt64(&w.SnapshotReads)
	s.VersionsInstalled = atomic.LoadInt64(&w.VersionsInstalled)
	s.LatencySumNS = atomic.LoadInt64(&w.LatencySumNS)
	for p := range s.PhaseNS {
		s.PhaseNS[p] = atomic.LoadInt64(&w.PhaseNS[p])
	}
	for b := range s.latency {
		s.latency[b] = atomic.LoadInt64(&w.latency[b])
	}
	return s
}

// Aggregate is the merged view over all workers plus the wall-clock
// duration of the run.
type Aggregate struct {
	Counters
	Wall    time.Duration
	Workers int

	samples []float64 // merged raw latency samples (µs), bounded by MaxMergedSamples

	// Epoch is the global epoch at snapshot time (live snapshots
	// only; zero on post-run merges).
	Epoch uint32

	// Durability state, filled by the engine (not per-worker; zero
	// when logging is off or on the deterministic engine).
	DurableEpoch    uint32 // highest epoch synced to stable storage on every stream
	DurabilityLost  bool   // a log sync exhausted its retries; recent epochs may not be durable
	LogSyncs        int64  // successful epoch log syncs
	LogSyncFailures int64  // failed sync attempts (includes retried ones)

	// WAL volume (engine-filled, zero when logging is off).
	WALFrames int64 // log frames written across all streams
	WALBytes  int64 // log bytes written across all streams

	// MVCC / snapshot-read state (engine-filled, DESIGN.md §16).
	MVCCVersionsReclaimed int64  // version-chain nodes reclaimed by the GC
	MVCCTrackedChains     int    // records currently queued for chain pruning
	SnapshotsPinned       int    // workers currently holding a pinned snapshot
	SnapshotEpochLag      uint32 // epochs the oldest pinned snapshot trails the current epoch
}

// Merge folds per-worker collectors into one aggregate. The
// concatenated raw-sample set is bounded by MaxMergedSamples via
// deterministic reservoir downsampling (algorithm R with a fixed-seed
// splitmix64 stream), so percentiles stay representative of the whole
// population without the aggregate holding every sample.
func Merge(wall time.Duration, workers []*Worker) *Aggregate {
	a := &Aggregate{Wall: wall, Workers: len(workers)}
	rng := uint64(0x9e3779b97f4a7c15) // fixed seed: merges are reproducible
	seen := 0
	for _, w := range workers {
		c := w.Snapshot()
		a.Counters.accumulate(&c)
		for _, s := range w.samples {
			if len(a.samples) < MaxMergedSamples {
				a.samples = append(a.samples, s)
			} else {
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				z ^= z >> 31
				if j := z % uint64(seen+1); j < MaxMergedSamples {
					a.samples[j] = s
				}
			}
			seen++
		}
	}
	return a
}

// MergeSnapshots folds already-taken Counters snapshots into an
// aggregate — the live-snapshot path, where the caller reads each
// worker under its own consistency protocol (epoch-stable scans) and
// no raw samples exist.
func MergeSnapshots(wall time.Duration, snaps []Counters) *Aggregate {
	a := &Aggregate{Wall: wall, Workers: len(snaps)}
	for i := range snaps {
		a.Counters.accumulate(&snaps[i])
	}
	return a
}

// TPS returns committed transactions per second of wall time.
func (a *Aggregate) TPS() float64 {
	if a.Wall <= 0 {
		return 0
	}
	return float64(a.Committed) / a.Wall.Seconds()
}

// AbortRate returns restarts per committed transaction, the paper's
// abort-rate definition (§5.1 footnote 6).
func (a *Aggregate) AbortRate() float64 {
	if a.Committed == 0 {
		return 0
	}
	return float64(a.Restarts) / float64(a.Committed)
}

// PermanentAbortRate returns permanently aborted transactions per
// committed transaction (deadlock prevention, Table 6).
func (a *Aggregate) PermanentAbortRate() float64 {
	if a.Committed == 0 {
		return 0
	}
	return float64(a.Aborted) / float64(a.Committed)
}

// PhaseFraction returns the share of total measured time spent in p.
func (a *Aggregate) PhaseFraction(p Phase) float64 {
	var total int64
	for _, ns := range a.PhaseNS {
		total += ns
	}
	if total == 0 {
		return 0
	}
	return float64(a.PhaseNS[p]) / float64(total)
}

// LatencyShare returns the fraction of committed transactions whose
// latency fell in [lo, hi) microseconds, computed from the raw
// samples (paper Tables 1 and 5 use irregular bucket edges).
func (a *Aggregate) LatencyShare(loUS, hiUS float64) float64 {
	if len(a.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range a.samples {
		if s >= loUS && s < hiUS {
			n++
		}
	}
	return float64(n) / float64(len(a.samples))
}

// Percentile returns the p-th latency percentile in microseconds
// (p in [0, 100]), linearly interpolating between adjacent order
// statistics: rank = p/100·(n−1), value = s[⌊rank⌋] weighted toward
// s[⌊rank⌋+1] by the fractional part. A truncating index would
// under-report high percentiles on small sample sets (p99 of 10
// samples must sit between the two largest, not on the second
// largest).
func (a *Aggregate) Percentile(p float64) float64 {
	if len(a.samples) == 0 {
		return 0
	}
	s := make([]float64, len(a.samples))
	copy(s, a.samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Samples returns the number of raw latency samples retained.
func (a *Aggregate) Samples() int { return len(a.samples) }

// LatencyBuckets returns the doubling-bucket latency histogram:
// uppers[i] is bucket i's exclusive upper edge in microseconds
// (2^(i+1), +Inf for the last) and counts[i] the committed
// transactions that landed in it. Used by the Prometheus exposition.
func (a *Aggregate) LatencyBuckets() (uppers []float64, counts []int64) {
	uppers = make([]float64, numBuckets)
	counts = make([]int64, numBuckets)
	for i := 0; i < numBuckets; i++ {
		if i == numBuckets-1 {
			uppers[i] = math.Inf(1)
		} else {
			uppers[i] = math.Pow(2, float64(i+1))
		}
		counts[i] = a.latency[i]
	}
	return uppers, counts
}

// BreakdownString renders the phase breakdown as percentages,
// followed by the degradation-ladder counters when any are nonzero.
func (a *Aggregate) BreakdownString() string {
	var parts []string
	for p := Phase(0); p < numPhases; p++ {
		parts = append(parts, fmt.Sprintf("%s=%.1f%%", p, 100*a.PhaseFraction(p)))
	}
	if a.HealingFallbacks != 0 || a.BudgetExhausted != 0 || a.WatchdogTrips != 0 {
		parts = append(parts,
			fmt.Sprintf("fallbacks=%d", a.HealingFallbacks),
			fmt.Sprintf("budget_exhausted=%d", a.BudgetExhausted),
			fmt.Sprintf("watchdog_trips=%d", a.WatchdogTrips))
	}
	return strings.Join(parts, " ")
}
