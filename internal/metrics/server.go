package metrics

import "sync/atomic"

// Server collects the network serving plane's counters. Like Worker,
// the int64 fields are written with atomic adds by the serving
// goroutines and may be read atomically mid-run (use Snapshot); a
// single Server instance is shared by all connections of one server.
type Server struct {
	// ConnsOpened / ConnsClosed count accepted and torn-down
	// connections; their difference is the currently-open gauge.
	ConnsOpened int64
	ConnsClosed int64

	// Requests counts admitted procedure invocations (shed requests
	// are not included).
	Requests int64

	// InFlight is the gauge of admitted-but-unanswered requests
	// across all connections.
	InFlight int64

	// Shed counts admission-control rejections: requests turned away
	// with a retryable contended/shed error because a per-connection
	// or global in-flight bound was hit. Shedding is visible by
	// design — never a silent drop.
	Shed int64

	// DrainRejected counts requests refused with the draining error
	// during graceful shutdown.
	DrainRejected int64

	// BadFrames counts protocol-violating frames (malformed payloads,
	// unexpected opcodes) answered with a bad-request error.
	BadFrames int64

	// BytesIn / BytesOut count raw connection bytes, frames included.
	BytesIn  int64
	BytesOut int64

	// DedupHits counts calls answered from a session's dedup window:
	// the retry of an already-completed (session, seq) was served the
	// cached response instead of executing again.
	DedupHits int64

	// DedupCoalesced counts retries that arrived while the original
	// attempt was still executing; they waited for its single execution
	// instead of starting another.
	DedupCoalesced int64

	// DedupEvicted counts completed entries pushed out of a session's
	// bounded dedup window. An evicted entry's retry would re-execute,
	// so sustained eviction under retry load is a sizing signal.
	DedupEvicted int64

	// DedupEntries is the gauge of completed responses currently held
	// across all sessions' dedup windows.
	DedupEntries int64

	// Sessions is the gauge of live client sessions; SessionsEvicted
	// counts idle sessions discarded to stay under the registry cap.
	Sessions        int64
	SessionsEvicted int64

	// DeadlineRejected counts calls refused because their deadline
	// budget was already exhausted when the server would have run them.
	DeadlineRejected int64
}

// Inc atomically adds 1 to a counter field of this collector; Add
// adds n. Callers pass a pointer to one of the exported fields,
// mirroring the Worker collector's idiom.
func (s *Server) Inc(field *int64) { atomic.AddInt64(field, 1) }

// Add atomically adds n to a counter field of this collector.
func (s *Server) Add(field *int64, n int64) { atomic.AddInt64(field, n) }

// Connections returns the currently-open connection gauge.
func (s *Server) Connections() int64 {
	return atomic.LoadInt64(&s.ConnsOpened) - atomic.LoadInt64(&s.ConnsClosed)
}

// ServerCounters is the plain-field snapshot of a Server collector,
// mirroring the Worker/Counters split: Server fields are atomic-only,
// a ServerCounters value is ordinary data.
type ServerCounters struct {
	ConnsOpened   int64
	ConnsClosed   int64
	Requests      int64
	InFlight      int64
	Shed          int64
	DrainRejected int64
	BadFrames     int64
	BytesIn       int64
	BytesOut      int64

	DedupHits        int64
	DedupCoalesced   int64
	DedupEvicted     int64
	DedupEntries     int64
	Sessions         int64
	SessionsEvicted  int64
	DeadlineRejected int64
}

// Snapshot returns an atomically-read copy, safe to take while the
// server keeps serving.
func (s *Server) Snapshot() ServerCounters {
	var c ServerCounters
	c.ConnsOpened = atomic.LoadInt64(&s.ConnsOpened)
	c.ConnsClosed = atomic.LoadInt64(&s.ConnsClosed)
	c.Requests = atomic.LoadInt64(&s.Requests)
	c.InFlight = atomic.LoadInt64(&s.InFlight)
	c.Shed = atomic.LoadInt64(&s.Shed)
	c.DrainRejected = atomic.LoadInt64(&s.DrainRejected)
	c.BadFrames = atomic.LoadInt64(&s.BadFrames)
	c.BytesIn = atomic.LoadInt64(&s.BytesIn)
	c.BytesOut = atomic.LoadInt64(&s.BytesOut)
	c.DedupHits = atomic.LoadInt64(&s.DedupHits)
	c.DedupCoalesced = atomic.LoadInt64(&s.DedupCoalesced)
	c.DedupEvicted = atomic.LoadInt64(&s.DedupEvicted)
	c.DedupEntries = atomic.LoadInt64(&s.DedupEntries)
	c.Sessions = atomic.LoadInt64(&s.Sessions)
	c.SessionsEvicted = atomic.LoadInt64(&s.SessionsEvicted)
	c.DeadlineRejected = atomic.LoadInt64(&s.DeadlineRejected)
	return c
}
