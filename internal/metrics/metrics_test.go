package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMergeAndTPS(t *testing.T) {
	w1 := &Worker{Committed: 100, Restarts: 10, Heals: 5}
	w2 := &Worker{Committed: 200, Restarts: 20, Aborted: 2, FalseInval: 3}
	a := Merge(2*time.Second, []*Worker{w1, w2})
	if a.Committed != 300 || a.Restarts != 30 || a.Aborted != 2 || a.Heals != 5 || a.FalseInval != 3 {
		t.Fatalf("merged = %+v", a.Worker)
	}
	if a.TPS() != 150 {
		t.Fatalf("tps = %f", a.TPS())
	}
	if a.AbortRate() != 0.1 {
		t.Fatalf("abort rate = %f", a.AbortRate())
	}
	if math.Abs(a.PermanentAbortRate()-2.0/300) > 1e-12 {
		t.Fatalf("permanent abort rate = %f", a.PermanentAbortRate())
	}
	if a.Workers != 2 {
		t.Fatalf("workers = %d", a.Workers)
	}
}

// The degradation-ladder counters must survive aggregation and show
// up in the breakdown only when nonzero.
func TestLadderCountersSurviveMerge(t *testing.T) {
	w1 := &Worker{Committed: 10, HealingFallbacks: 3, BudgetExhausted: 1}
	w2 := &Worker{Committed: 20, HealingFallbacks: 4, WatchdogTrips: 2}
	a := Merge(time.Second, []*Worker{w1, w2})
	if a.HealingFallbacks != 7 || a.BudgetExhausted != 1 || a.WatchdogTrips != 2 {
		t.Fatalf("ladder counters lost in merge: %+v", a.Worker)
	}
	s := a.BreakdownString()
	for _, want := range []string{"fallbacks=7", "budget_exhausted=1", "watchdog_trips=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("breakdown %q missing %q", s, want)
		}
	}
	quiet := Merge(time.Second, []*Worker{{Committed: 5}})
	if s := quiet.BreakdownString(); strings.Contains(s, "fallbacks") {
		t.Fatalf("breakdown shows ladder counters on a quiet run: %q", s)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	a := Merge(0, nil)
	if a.TPS() != 0 || a.AbortRate() != 0 || a.PermanentAbortRate() != 0 {
		t.Fatal("zero aggregate not safe")
	}
	if a.PhaseFraction(PhaseRead) != 0 {
		t.Fatal("phase fraction of empty aggregate")
	}
	if a.Percentile(95) != 0 || a.LatencyShare(0, 100) != 0 {
		t.Fatal("latency stats of empty aggregate")
	}
}

func TestPhaseAccounting(t *testing.T) {
	w := &Worker{}
	w.AddPhase(PhaseRead, 60*time.Millisecond)
	w.AddPhase(PhaseValidate, 20*time.Millisecond)
	w.AddPhase(PhaseHeal, 10*time.Millisecond)
	w.AddPhase(PhaseWrite, 10*time.Millisecond)
	a := Merge(time.Second, []*Worker{w})
	if f := a.PhaseFraction(PhaseRead); math.Abs(f-0.6) > 1e-9 {
		t.Fatalf("read fraction = %f", f)
	}
	if f := a.PhaseFraction(PhaseAbort); f != 0 {
		t.Fatalf("abort fraction = %f", f)
	}
	s := a.BreakdownString()
	if !strings.Contains(s, "read=60.0%") || !strings.Contains(s, "heal=10.0%") {
		t.Fatalf("breakdown = %q", s)
	}
}

func TestLatencyPercentilesAndShares(t *testing.T) {
	w := &Worker{}
	for i := 1; i <= 100; i++ {
		w.ObserveLatency(time.Duration(i) * time.Microsecond)
	}
	a := Merge(time.Second, []*Worker{w})
	if a.Samples() != 100 {
		t.Fatalf("samples = %d", a.Samples())
	}
	if p := a.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50 = %f", p)
	}
	if p := a.Percentile(100); p != 100 {
		t.Fatalf("p100 = %f", p)
	}
	if s := a.LatencyShare(1, 51); math.Abs(s-0.5) > 0.02 {
		t.Fatalf("share [1,51) = %f", s)
	}
	if s := a.LatencyShare(1000, 2000); s != 0 {
		t.Fatalf("share of empty range = %f", s)
	}
}

func TestPhaseNames(t *testing.T) {
	names := map[Phase]string{
		PhaseRead: "read", PhaseValidate: "validate", PhaseHeal: "heal",
		PhaseWrite: "write", PhaseAbort: "abort",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
