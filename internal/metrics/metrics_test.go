package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMergeAndTPS(t *testing.T) {
	w1 := &Worker{Committed: 100, Restarts: 10, Heals: 5}
	w2 := &Worker{Committed: 200, Restarts: 20, Aborted: 2, FalseInval: 3}
	a := Merge(2*time.Second, []*Worker{w1, w2})
	if a.Committed != 300 || a.Restarts != 30 || a.Aborted != 2 || a.Heals != 5 || a.FalseInval != 3 {
		t.Fatalf("merged = %+v", a.Counters)
	}
	if a.TPS() != 150 {
		t.Fatalf("tps = %f", a.TPS())
	}
	if a.AbortRate() != 0.1 {
		t.Fatalf("abort rate = %f", a.AbortRate())
	}
	if math.Abs(a.PermanentAbortRate()-2.0/300) > 1e-12 {
		t.Fatalf("permanent abort rate = %f", a.PermanentAbortRate())
	}
	if a.Workers != 2 {
		t.Fatalf("workers = %d", a.Workers)
	}
}

// The degradation-ladder counters must survive aggregation and show
// up in the breakdown only when nonzero.
func TestLadderCountersSurviveMerge(t *testing.T) {
	w1 := &Worker{Committed: 10, HealingFallbacks: 3, BudgetExhausted: 1}
	w2 := &Worker{Committed: 20, HealingFallbacks: 4, WatchdogTrips: 2}
	a := Merge(time.Second, []*Worker{w1, w2})
	if a.HealingFallbacks != 7 || a.BudgetExhausted != 1 || a.WatchdogTrips != 2 {
		t.Fatalf("ladder counters lost in merge: %+v", a.Counters)
	}
	s := a.BreakdownString()
	for _, want := range []string{"fallbacks=7", "budget_exhausted=1", "watchdog_trips=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("breakdown %q missing %q", s, want)
		}
	}
	quiet := Merge(time.Second, []*Worker{{Committed: 5}})
	if s := quiet.BreakdownString(); strings.Contains(s, "fallbacks") {
		t.Fatalf("breakdown shows ladder counters on a quiet run: %q", s)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	a := Merge(0, nil)
	if a.TPS() != 0 || a.AbortRate() != 0 || a.PermanentAbortRate() != 0 {
		t.Fatal("zero aggregate not safe")
	}
	if a.PhaseFraction(PhaseRead) != 0 {
		t.Fatal("phase fraction of empty aggregate")
	}
	if a.Percentile(95) != 0 || a.LatencyShare(0, 100) != 0 {
		t.Fatal("latency stats of empty aggregate")
	}
}

func TestPhaseAccounting(t *testing.T) {
	w := &Worker{}
	w.AddPhase(PhaseRead, 60*time.Millisecond)
	w.AddPhase(PhaseValidate, 20*time.Millisecond)
	w.AddPhase(PhaseHeal, 10*time.Millisecond)
	w.AddPhase(PhaseWrite, 10*time.Millisecond)
	a := Merge(time.Second, []*Worker{w})
	if f := a.PhaseFraction(PhaseRead); math.Abs(f-0.6) > 1e-9 {
		t.Fatalf("read fraction = %f", f)
	}
	if f := a.PhaseFraction(PhaseAbort); f != 0 {
		t.Fatalf("abort fraction = %f", f)
	}
	s := a.BreakdownString()
	if !strings.Contains(s, "read=60.0%") || !strings.Contains(s, "heal=10.0%") {
		t.Fatalf("breakdown = %q", s)
	}
}

func TestLatencyPercentilesAndShares(t *testing.T) {
	w := &Worker{}
	for i := 1; i <= 100; i++ {
		w.ObserveLatency(time.Duration(i) * time.Microsecond)
	}
	a := Merge(time.Second, []*Worker{w})
	if a.Samples() != 100 {
		t.Fatalf("samples = %d", a.Samples())
	}
	if p := a.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50 = %f", p)
	}
	if p := a.Percentile(100); p != 100 {
		t.Fatalf("p100 = %f", p)
	}
	if s := a.LatencyShare(1, 51); math.Abs(s-0.5) > 0.02 {
		t.Fatalf("share [1,51) = %f", s)
	}
	if s := a.LatencyShare(1000, 2000); s != 0 {
		t.Fatalf("share of empty range = %f", s)
	}
}

// TestPercentileInterpolation pins the linear-interpolation contract
// on a known distribution: ten samples 10,20,...,100µs. rank =
// p/100·(n−1), interpolating between adjacent order statistics — a
// truncating index would report p50=50 and p99=90 here.
func TestPercentileInterpolation(t *testing.T) {
	w := &Worker{}
	for i := 1; i <= 10; i++ {
		w.ObserveLatency(time.Duration(10*i) * time.Microsecond)
	}
	a := Merge(time.Second, []*Worker{w})
	cases := []struct{ p, want float64 }{
		{0, 10},    // floor clamp
		{100, 100}, // ceiling clamp
		{50, 55},   // rank 4.5: halfway between 50 and 60
		{25, 32.5}, // rank 2.25
		{99, 99.1}, // rank 8.91: between the two largest
		{90, 91},   // rank 8.1
	}
	for _, c := range cases {
		if got := a.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

// TestMergeCapsSamples: concatenating more than MaxMergedSamples raw
// samples must reservoir-downsample to exactly the cap, keep the
// result deterministic across merges, and retain samples from every
// contributing worker (representativeness, not truncation).
func TestMergeCapsSamples(t *testing.T) {
	mkWorker := func(v float64) *Worker {
		w := &Worker{}
		w.samples = make([]float64, maxSamples)
		for i := range w.samples {
			w.samples[i] = v
		}
		return w
	}
	workers := []*Worker{mkWorker(1), mkWorker(2), mkWorker(3)}
	a := Merge(time.Second, workers)
	if a.Samples() != MaxMergedSamples {
		t.Fatalf("merged samples = %d, want cap %d", a.Samples(), MaxMergedSamples)
	}
	counts := map[float64]int{}
	for _, s := range a.samples {
		counts[s]++
	}
	for v := 1.0; v <= 3; v++ {
		if counts[v] == 0 {
			t.Errorf("reservoir lost every sample of worker %g — truncation, not downsampling", v)
		}
	}
	// A tail-truncating cap would keep zero samples from the last
	// worker's overflow; algorithm R keeps roughly its fair share.
	if frac := float64(counts[3]) / float64(a.Samples()); frac < 0.15 {
		t.Errorf("last worker's share = %.3f, want ≈ 1/3", frac)
	}
	b := Merge(time.Second, workers)
	for i := range a.samples {
		if a.samples[i] != b.samples[i] {
			t.Fatalf("merge is nondeterministic at sample %d: %g vs %g", i, a.samples[i], b.samples[i])
		}
	}
}

// TestSnapshotCopiesCountersExcludesSamples: Snapshot must carry
// every counter, phase total and histogram bucket, but never the
// worker-private raw sample slice.
func TestSnapshotCopiesCountersExcludesSamples(t *testing.T) {
	w := &Worker{}
	w.Inc(&w.Committed)
	w.Add(&w.Restarts, 5)
	w.AddPhase(PhaseHeal, time.Millisecond)
	w.ObserveLatency(3 * time.Microsecond)
	s := w.Snapshot()
	if s.Committed != 1 || s.Restarts != 5 {
		t.Fatalf("snapshot counters = %+v", s)
	}
	if s.PhaseNS[PhaseHeal] != int64(time.Millisecond) {
		t.Fatalf("snapshot phase = %d", s.PhaseNS[PhaseHeal])
	}
	if s.latency[1] != 1 { // 3µs lands in bucket [2,4)
		t.Fatalf("snapshot histogram = %v", s.latency)
	}
	if s.LatencySumNS != int64(3*time.Microsecond) {
		t.Fatalf("snapshot latency sum = %d", s.LatencySumNS)
	}
	// Counters carries no sample slice by construction; merging one
	// snapshot must leave the aggregate without raw samples either.
	if MergeSnapshots(time.Second, []Counters{s}).Samples() != 0 {
		t.Fatal("snapshot must not carry raw samples into an aggregate")
	}
}

func TestPhaseNames(t *testing.T) {
	names := map[Phase]string{
		PhaseRead: "read", PhaseValidate: "validate", PhaseHeal: "heal",
		PhaseWrite: "write", PhaseAbort: "abort",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
