package fault

import "testing"

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d for same seed", i, av, bv)
		}
	}
	c := NewStream(43)
	same := 0
	d := NewStream(42)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for adjacent seeds collide on %d of 1000 draws", same)
	}
}

func TestStreamDerive(t *testing.T) {
	parent := NewStream(7)
	before := *parent
	c1, c2 := parent.Derive(1), parent.Derive(2)
	if *parent != before {
		t.Fatalf("Derive advanced the parent stream")
	}
	// Children are deterministic per (seed, index) and decorrelated
	// from each other.
	r1, r2 := parent.Derive(1), parent.Derive(2)
	same12 := 0
	for i := 0; i < 1000; i++ {
		v1, v2 := c1.Uint64(), c2.Uint64()
		if v1 != r1.Uint64() || v2 != r2.Uint64() {
			t.Fatalf("draw %d: derived stream not reproducible", i)
		}
		if v1 == v2 {
			same12++
		}
	}
	if same12 > 2 {
		t.Fatalf("sibling derived streams collide on %d of 1000 draws", same12)
	}
}

func TestStreamBounds(t *testing.T) {
	s := NewStream(99)
	for i := 0; i < 10000; i++ {
		if f := s.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of [0,1): %v", f)
		}
		if n := s.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) out of range: %d", n)
		}
	}
}
