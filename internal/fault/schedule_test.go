package fault

import (
	"testing"
	"time"
)

// Identical seeds must replay identical per-slot decision sequences;
// a different seed must diverge.
func TestScheduleDeterministic(t *testing.T) {
	run := func(seed uint64) []Action {
		s := NewSchedule(seed, 4)
		s.Inject(PreValidation, ActRestart, 0.3)
		s.Inject(PreValidation, ActYield, 0.3)
		s.Inject(CommitApply, ActDelay, 0.5)
		var got []Action
		for i := 0; i < 256; i++ {
			a, _ := s.At(i%4, PreValidation)
			got = append(got, a)
			a, _ = s.At(i%4, CommitApply)
			got = append(got, a)
		}
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 512-draw sequences")
	}
}

// Probability draws should land near their configured rates, and the
// counters should account for every visit.
func TestScheduleProbabilityAndCounts(t *testing.T) {
	s := NewSchedule(7, 2)
	s.Inject(MidHealing, ActRestart, 0.25)
	const n = 20000
	for i := 0; i < n; i++ {
		s.At(0, MidHealing)
	}
	restarts := s.Count(MidHealing, ActRestart)
	if restarts < n/5 || restarts > 3*n/10 {
		t.Fatalf("restart rate %d/%d far from configured 0.25", restarts, n)
	}
	if got := s.Count(MidHealing, ActNone) + restarts; got != n {
		t.Fatalf("counts do not cover all visits: %d != %d", got, n)
	}
	if s.Total(ActRestart) != restarts {
		t.Fatalf("Total(ActRestart)=%d != Count=%d", s.Total(ActRestart), restarts)
	}
}

// Scripted actions fire on the exact (slot, checkpoint, visit)
// coordinate, override the probabilistic draw, and do not perturb the
// surrounding stream.
func TestScheduleScriptedActions(t *testing.T) {
	s := NewSchedule(1, 3)
	s.SetStall(time.Second)
	s.StallAt(2, PreValidation, 1)
	s.ScriptAt(EpochSlot, PreEpochAdvance, 0, ActDelay)

	if a, _ := s.At(2, PreValidation); a != ActNone {
		t.Fatalf("visit 0 should be unscripted, got %v", a)
	}
	a, d := s.At(2, PreValidation)
	if a != ActStall || d != time.Second {
		t.Fatalf("visit 1 = (%v, %v), want (stall, 1s)", a, d)
	}
	if a, _ := s.At(2, PreValidation); a != ActNone {
		t.Fatalf("visit 2 should be unscripted, got %v", a)
	}
	// Other workers' streams are unaffected by worker 2's script.
	if a, _ := s.At(0, PreValidation); a != ActNone {
		t.Fatalf("worker 0 drew %v with no probabilities armed", a)
	}
	a, d = s.At(EpochSlot, PreEpochAdvance)
	if a != ActDelay || d != s.delay {
		t.Fatalf("epoch slot visit 0 = (%v, %v), want (delay, %v)", a, d, s.delay)
	}
}

// Scripting a visit must not shift the probabilistic draws of later
// visits: the RNG stream advances on every visit regardless.
func TestScheduleScriptDoesNotShiftStream(t *testing.T) {
	tail := func(script bool) []Action {
		s := NewSchedule(99, 1)
		s.Inject(CommitApply, ActYield, 0.5)
		if script {
			s.ScriptAt(0, CommitApply, 0, ActStall)
		}
		var got []Action
		for i := 0; i < 64; i++ {
			a, _ := s.At(0, CommitApply)
			got = append(got, a)
		}
		return got[1:]
	}
	plain, scripted := tail(false), tail(true)
	for i := range plain {
		if plain[i] != scripted[i] {
			t.Fatalf("scripting visit 0 shifted visit %d: %v vs %v", i+1, plain[i], scripted[i])
		}
	}
}

// The epoch slot and out-of-range worker ids map to the extra slot and
// never alias a real worker's stream.
func TestScheduleSlotMapping(t *testing.T) {
	s := NewSchedule(5, 2)
	if got := s.slotIndex(0); got != 0 {
		t.Fatalf("slotIndex(0)=%d", got)
	}
	if got := s.slotIndex(1); got != 1 {
		t.Fatalf("slotIndex(1)=%d", got)
	}
	if got := s.slotIndex(EpochSlot); got != 2 {
		t.Fatalf("slotIndex(EpochSlot)=%d, want 2", got)
	}
	if got := s.slotIndex(17); got != 2 {
		t.Fatalf("slotIndex(17)=%d, want epoch slot 2", got)
	}
}
