package fault

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Schedule is the protocol-level chaos injector: the engine consults
// it at named protocol checkpoints (pre-validation, mid-healing, the
// epoch advance, commit apply) and it answers with a scheduling
// perturbation — yield, delay, long stall, or a spurious restart of
// the attempt. It exists to force the adversarial interleavings that
// `go test`'s benign goroutine schedules never produce, so the
// validation, healing, and epoch-commit machinery is exercised under
// hostility rather than luck.
//
// Determinism: every decision stream is driven by a splitmix64
// generator seeded from (seed, slot), one independent slot per worker
// plus one for the epoch advancer. Re-running with the same seed
// replays the same per-slot decision sequences; the cross-slot
// interleaving still depends on the Go scheduler, but which visits of
// which checkpoint are perturbed does not. This seeded stream is the
// only sanctioned randomness on engine paths (enforced by the nondet
// analyzer).
//
// Concurrency: configure (Inject/ScriptAt/SetDelay/...) before
// handing the schedule to an engine. Afterwards each slot must be
// driven by a single goroutine — exactly the contract engine workers
// already obey — while the hit counters may be read from anywhere.
type Schedule struct {
	seed    uint64
	workers int
	delay   time.Duration
	stall   time.Duration

	// prob[cp][act] is the probability that a visit of cp draws act.
	prob [NumCheckpoints][NumActions]float64

	// script holds forced actions for exact (slot, checkpoint, visit)
	// coordinates; they take precedence over the probabilistic draw.
	script []scriptedAction

	slots  []scheduleSlot
	counts [NumCheckpoints][NumActions]atomic.Int64
}

// Checkpoint names a protocol point where the engine consults the
// schedule (the chaos hook points in internal/core).
type Checkpoint uint8

// The protocol checkpoints, each perturbing one piece of the paper's
// machinery (see DESIGN.md §10 for the mapping).
const (
	// PreValidation fires between the read phase and validation
	// (Alg. 1's entry): perturbations here stretch the window in
	// which concurrent commits invalidate the read set.
	PreValidation Checkpoint = iota
	// MidHealing fires between restorations of the healing queue
	// (Alg. 2): perturbations here let conflicting commits land while
	// a repair is in flight, forcing healing over healed state.
	MidHealing
	// PreEpochAdvance and PostEpochAdvance bracket the global epoch
	// bump (Alg. 3): delaying the advancer starves commit timestamps
	// of fresh epochs and batches group commits arbitrarily.
	PreEpochAdvance
	PostEpochAdvance
	// CommitApply fires at the head of the write phase (Alg. 3),
	// while every protocol lock is held: delays here maximize lock
	// hold times, restarts exercise the full-abort cleanup path.
	CommitApply
	// NumCheckpoints bounds the checkpoint space.
	NumCheckpoints
)

// String names the checkpoint.
func (c Checkpoint) String() string {
	switch c {
	case PreValidation:
		return "pre-validation"
	case MidHealing:
		return "mid-healing"
	case PreEpochAdvance:
		return "pre-epoch-advance"
	case PostEpochAdvance:
		return "post-epoch-advance"
	case CommitApply:
		return "commit-apply"
	default:
		return fmt.Sprintf("checkpoint(%d)", uint8(c))
	}
}

// Action is what the engine must do at a checkpoint.
type Action uint8

// Actions a checkpoint visit can draw.
const (
	// ActNone passes through unperturbed.
	ActNone Action = iota
	// ActYield yields the scheduler slice (runtime.Gosched).
	ActYield
	// ActDelay sleeps the short Delay duration.
	ActDelay
	// ActStall sleeps the long Stall duration — long enough to trip
	// the stuck-epoch watchdog.
	ActStall
	// ActRestart makes the attempt fail with a spurious restart (the
	// engine treats it exactly like a validation abort). Ignored by
	// the epoch advancer, where restarting is meaningless.
	ActRestart
	// NumActions bounds the action space.
	NumActions
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActYield:
		return "yield"
	case ActDelay:
		return "delay"
	case ActStall:
		return "stall"
	case ActRestart:
		return "restart"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// EpochSlot addresses the epoch advancer's decision stream in At.
const EpochSlot = -1

type scriptedAction struct {
	slot  int
	cp    Checkpoint
	visit int
	act   Action
}

type scheduleSlot struct {
	rng    uint64
	visits [NumCheckpoints]int
	// pad separates slots onto distinct cache lines; the decision
	// streams sit on every worker's hot path during chaos runs.
	_ [14]uint64
}

// NewSchedule builds an injector for the given worker count (plus the
// implicit epoch-advancer slot) with everything disarmed: every visit
// draws ActNone until probabilities or scripted actions are set.
func NewSchedule(seed uint64, workers int) *Schedule {
	if workers < 1 {
		workers = 1
	}
	s := &Schedule{
		seed:    seed,
		workers: workers,
		delay:   2 * time.Microsecond,
		stall:   10 * time.Millisecond,
		slots:   make([]scheduleSlot, workers+1),
	}
	for i := range s.slots {
		// splitmix64 of (seed, slot) decorrelates the per-slot streams.
		s.slots[i].rng = mix64(seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	return s
}

// Seed returns the schedule's seed (test labeling).
func (s *Schedule) Seed() uint64 { return s.seed }

// SetDelay sets the ActDelay sleep (default 2µs).
func (s *Schedule) SetDelay(d time.Duration) { s.delay = d }

// SetStall sets the ActStall sleep (default 10ms).
func (s *Schedule) SetStall(d time.Duration) { s.stall = d }

// Inject arms action act at checkpoint cp with probability p per
// visit. The per-checkpoint action probabilities must sum to ≤ 1.
func (s *Schedule) Inject(cp Checkpoint, act Action, p float64) {
	s.prob[cp][act] = p
}

// InjectAll arms act with probability p at every checkpoint.
func (s *Schedule) InjectAll(act Action, p float64) {
	for cp := Checkpoint(0); cp < NumCheckpoints; cp++ {
		s.prob[cp][act] = p
	}
}

// ScriptAt forces act on the visit-th consultation (0-based) of cp by
// the given worker slot (EpochSlot for the advancer), overriding the
// probabilistic draw. Scripted actions make single hostile schedules
// — a stalled worker, a restart storm — exactly reproducible.
func (s *Schedule) ScriptAt(worker int, cp Checkpoint, visit int, act Action) {
	s.script = append(s.script, scriptedAction{slot: s.slotIndex(worker), cp: cp, visit: visit, act: act})
}

// StallAt is ScriptAt with ActStall: stall the worker's visit-th pass
// through cp for the configured stall duration.
func (s *Schedule) StallAt(worker int, cp Checkpoint, visit int) {
	s.ScriptAt(worker, cp, visit, ActStall)
}

// At draws the action for one visit of cp by the given worker
// (EpochSlot for the epoch advancer) and returns it with the sleep
// duration that applies (zero for yield/restart/none). Each slot must
// be consulted by a single goroutine.
func (s *Schedule) At(worker int, cp Checkpoint) (Action, time.Duration) {
	sl := &s.slots[s.slotIndex(worker)]
	visit := sl.visits[cp]
	sl.visits[cp]++
	// Advance the stream even when a scripted action preempts the
	// draw, so scripting one visit does not shift every later one.
	u := sl.draw()
	act := ActNone
	if sc, ok := s.scripted(s.slotIndex(worker), cp, visit); ok {
		act = sc
	} else {
		acc := 0.0
		for a := ActYield; a < NumActions; a++ {
			acc += s.prob[cp][a]
			if u < acc {
				act = a
				break
			}
		}
	}
	s.counts[cp][act].Add(1)
	switch act {
	case ActDelay:
		return act, s.delay
	case ActStall:
		return act, s.stall
	default:
		return act, 0
	}
}

// Count returns how often act was drawn at cp.
func (s *Schedule) Count(cp Checkpoint, act Action) int64 {
	return s.counts[cp][act].Load()
}

// Total returns how often act was drawn across all checkpoints.
func (s *Schedule) Total(act Action) int64 {
	var n int64
	for cp := Checkpoint(0); cp < NumCheckpoints; cp++ {
		n += s.counts[cp][act].Load()
	}
	return n
}

func (s *Schedule) scripted(slot int, cp Checkpoint, visit int) (Action, bool) {
	for _, sc := range s.script {
		if sc.slot == slot && sc.cp == cp && sc.visit == visit {
			return sc.act, true
		}
	}
	return ActNone, false
}

// slotIndex maps a worker id to its slot: workers occupy [0, workers),
// the epoch advancer (and any out-of-range id, defensively) the last.
func (s *Schedule) slotIndex(worker int) int {
	if worker >= 0 && worker < s.workers {
		return worker
	}
	return s.workers
}

// draw advances the slot's splitmix64 stream and returns a value in
// [0, 1).
func (sl *scheduleSlot) draw() float64 {
	sl.rng += 0x9e3779b97f4a7c15
	return float64(mix64(sl.rng)>>11) / (1 << 53)
}

// mix64 is splitmix64's output permutation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
