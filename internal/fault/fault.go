// Package fault provides the repo's fault-injection machinery, in two
// halves. The sink wrappers below inject storage failures — short
// writes, write errors, and crash simulation (silently dropped bytes)
// triggered at a configured byte offset or per-write probability,
// plus scripted Sync failures — to prove the durability layer's crash
// tolerance: the crash-torture tests wrap the WAL sinks in a
// fault.Writer and assert that recovery restores an epoch-consistent
// committed prefix no matter where the fault lands. Schedule
// (schedule.go) is the protocol-level chaos injector: a seeded,
// deterministic source of scheduling perturbations the engine
// consults at protocol checkpoints to force adversarial
// interleavings (DESIGN.md §10).
package fault

import (
	"errors"
	"io"
	"sync"
)

// ErrInjected is the default error returned by a WriteError fault
// when no explicit error was configured.
var ErrInjected = errors.New("fault: injected error")

// Mode selects what an armed Writer does at its trigger point.
type Mode int

// Fault modes.
const (
	// ShortWrite delivers a prefix of the triggering write and
	// returns io.ErrShortWrite. The fault stays armed, so retries
	// keep failing at the same offset (a wedged sink).
	ShortWrite Mode = iota
	// WriteError delivers a prefix of the triggering write and
	// returns the configured error.
	WriteError
	// Crash delivers a prefix of the triggering write, then
	// silently swallows the rest and every later write while
	// reporting success — the bytes a crashed process believed it
	// wrote but that never reached the device.
	Crash
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ShortWrite:
		return "short-write"
	case WriteError:
		return "write-error"
	case Crash:
		return "crash"
	default:
		return "fault-mode(?)"
	}
}

// Writer wraps an io.Writer (a WAL sink) with injectable failures.
// It is safe for concurrent use: the epoch advancer and a worker's
// stream flush may hit the same sink.
//
// The zero fault set passes everything through; arm one with FailAt
// or FailProb, and script Sync results with ScriptSync.
type Writer struct {
	mu   sync.Mutex
	w    io.Writer
	mode Mode
	err  error

	failAt  int64 // cumulative byte offset of the trigger, -1 = off
	prob    float64
	rng     uint64
	off     int64 // bytes attempted so far (delivered + swallowed)
	tripped bool

	syncScript []error
	syncCalls  int
}

// NewWriter wraps w with no fault armed.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, failAt: -1}
}

// FailAt arms the writer to fail with the given mode once the
// cumulative byte offset reaches off. err is the error returned in
// WriteError mode (ErrInjected when nil).
func (f *Writer) FailAt(off int64, mode Mode, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.prob, f.mode, f.err, f.tripped = off, 0, mode, err, false
}

// FailProb arms a per-write probabilistic fault: each Write trips
// with probability p, drawn from a deterministic generator seeded
// with seed.
func (f *Writer) FailProb(p float64, seed uint64, mode Mode, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.prob, f.rng, f.mode, f.err, f.tripped = -1, p, seed|1, mode, err, false
}

// Disarm removes any armed fault; a tripped Crash stays in effect
// (crashed bytes do not come back).
func (f *Writer) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.prob = -1, 0
}

// ScriptSync queues results for upcoming Sync calls (nil entries
// mean success). Once the script drains, Sync succeeds.
func (f *Writer) ScriptSync(errs ...error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncScript = append(f.syncScript, errs...)
}

// Write implements io.Writer with the armed fault applied.
func (f *Writer) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped && f.mode == Crash {
		f.off += int64(len(p))
		return len(p), nil
	}
	trip := -1
	switch {
	case f.failAt >= 0 && f.failAt < f.off+int64(len(p)):
		trip = int(f.failAt - f.off)
		if trip < 0 {
			trip = 0
		}
	case f.prob > 0 && f.draw() < f.prob:
		trip = 0
	}
	if trip < 0 {
		n, err := f.w.Write(p)
		f.off += int64(n)
		return n, err
	}
	n := 0
	if trip > 0 {
		var err error
		n, err = f.w.Write(p[:trip])
		f.off += int64(n)
		if err != nil {
			return n, err
		}
	}
	f.tripped = true
	switch f.mode {
	case ShortWrite:
		return n, io.ErrShortWrite
	case WriteError:
		if f.err != nil {
			return n, f.err
		}
		return n, ErrInjected
	default: // Crash
		f.off += int64(len(p) - n)
		return len(p), nil
	}
}

// Sync implements the wal.Syncer contract, consuming the scripted
// results in order.
func (f *Writer) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncCalls++
	if len(f.syncScript) > 0 {
		err := f.syncScript[0]
		f.syncScript = f.syncScript[1:]
		return err
	}
	return nil
}

// draw advances the deterministic generator and returns a value in
// [0, 1). Caller holds f.mu.
func (f *Writer) draw() float64 {
	f.rng = f.rng*6364136223846793005 + 1442695040888963407
	return float64(f.rng>>11) / (1 << 53)
}

// Offset returns the cumulative bytes attempted (delivered plus
// swallowed-by-crash).
func (f *Writer) Offset() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.off
}

// Tripped reports whether the armed fault has fired.
func (f *Writer) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// SyncCalls returns how many times Sync has been invoked.
func (f *Writer) SyncCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncCalls
}
