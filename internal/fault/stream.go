package fault

// Stream is a standalone seeded splitmix64 decision stream — the same
// generator Schedule runs per worker slot, exported so other fault
// harnesses (notably internal/netfault's chaos proxy) draw their
// decisions from the sanctioned deterministic source instead of
// math/rand. Two streams built from the same seed produce identical
// sequences; Derive decorrelates sub-streams (one per proxied
// connection, say) without sharing state.
//
// A Stream is not safe for concurrent use; give each goroutine its
// own (Derive is cheap).
type Stream struct {
	state uint64
}

// NewStream seeds a fresh stream.
func NewStream(seed uint64) *Stream {
	// The same offset-by-golden-ratio trick NewSchedule uses keeps
	// seed 0 from producing the all-zero fixed point.
	return &Stream{state: seed + 1}
}

// Derive builds an independent stream decorrelated from this one by
// index i, without advancing the parent. Deterministic: the same
// (seed, i) pair always yields the same child sequence.
func (s *Stream) Derive(i uint64) *Stream {
	return NewStream(mix64(s.state + i*0x9e3779b97f4a7c15))
}

// Uint64 advances the stream and returns the next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Float returns the next draw as a float in [0, 1).
func (s *Stream) Float() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns the next draw reduced to [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("fault: Stream.Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}
