package fault

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestPassThrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		n, err := w.Write([]byte("abc"))
		if n != 3 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if buf.String() != "abcabcabc" || w.Offset() != 9 || w.Tripped() {
		t.Fatalf("buf=%q off=%d tripped=%v", buf.String(), w.Offset(), w.Tripped())
	}
}

func TestShortWriteAtOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.FailAt(5, ShortWrite, nil)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("pre-fault write: n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("defg")) // bytes 3..6, trigger at 5
	if n != 2 || err != io.ErrShortWrite {
		t.Fatalf("faulted write: n=%d err=%v", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("delivered %q, want prefix through byte 5", buf.String())
	}
	// Wedged: retries at the same offset keep failing.
	if _, err := w.Write([]byte("x")); err != io.ErrShortWrite {
		t.Fatalf("retry after short write: %v", err)
	}
	w.Disarm()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestWriteErrorMode(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	boom := errors.New("boom")
	w.FailAt(0, WriteError, boom)
	if _, err := w.Write([]byte("abc")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("bytes leaked through an immediate error: %q", buf.String())
	}
	w2 := NewWriter(&buf)
	w2.FailAt(0, WriteError, nil)
	if _, err := w2.Write([]byte("abc")); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error = %v", err)
	}
}

func TestCrashSwallowsSilently(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.FailAt(4, Crash, nil)
	if n, err := w.Write([]byte("abcdef")); n != 6 || err != nil {
		t.Fatalf("crash write must report success: n=%d err=%v", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("device got %q, want the pre-crash prefix \"abcd\"", buf.String())
	}
	if n, err := w.Write([]byte("ghi")); n != 3 || err != nil {
		t.Fatalf("post-crash write must still report success: n=%d err=%v", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatal("post-crash bytes reached the device")
	}
	if w.Offset() != 9 || !w.Tripped() {
		t.Fatalf("off=%d tripped=%v", w.Offset(), w.Tripped())
	}
}

func TestProbabilisticTripIsDeterministic(t *testing.T) {
	run := func() int {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.FailProb(0.2, 42, WriteError, nil)
		writes := 0
		for i := 0; i < 1000; i++ {
			if _, err := w.Write([]byte("x")); err != nil {
				break
			}
			writes++
		}
		return writes
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different trip points: %d vs %d", a, b)
	}
	if a == 1000 {
		t.Fatal("p=0.2 fault never tripped in 1000 writes")
	}
}

func TestScriptedSync(t *testing.T) {
	w := NewWriter(io.Discard)
	e1, e2 := errors.New("t1"), errors.New("t2")
	w.ScriptSync(e1, nil, e2)
	if err := w.Sync(); !errors.Is(err, e1) {
		t.Fatalf("sync 1: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, e2) {
		t.Fatalf("sync 3: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync after script drained: %v", err)
	}
	if w.SyncCalls() != 4 {
		t.Fatalf("sync calls = %d", w.SyncCalls())
	}
}
