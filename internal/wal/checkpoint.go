package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"thedb/internal/storage"
)

// checkpointMagic guards against feeding a log stream to the
// checkpoint loader.
const checkpointMagic = 0x7468656462637031 // "thedbcp1"

// Checkpoint serializes a transaction-consistent image of every
// visible record. The caller must ensure quiescence (THEDB pauses
// workers at an epoch boundary; tests simply stop the workers).
func Checkpoint(catalog *storage.Catalog, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	buf = binary.AppendUvarint(buf, checkpointMagic)
	buf = binary.AppendUvarint(buf, uint64(len(catalog.Tables())))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, tab := range catalog.Tables() {
		type row struct {
			key storage.Key
			ts  uint64
			t   storage.Tuple
		}
		var rows []row
		tab.ForEach(func(k storage.Key, r *storage.Record) bool {
			ts, _, visible := r.Meta()
			if visible {
				rows = append(rows, row{k, ts, r.Tuple()})
			}
			return true
		})
		// Sort for deterministic images (test equality, dedup runs).
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(tab.ID()))
		buf = binary.AppendUvarint(buf, uint64(len(rows)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		for _, r := range rows {
			buf = buf[:0]
			buf = binary.AppendUvarint(buf, uint64(r.key))
			buf = binary.AppendUvarint(buf, r.ts)
			buf = binary.AppendUvarint(buf, uint64(len(r.t)))
			for _, v := range r.t {
				buf = appendValue(buf, v)
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCheckpoint restores a checkpoint into an empty catalog whose
// tables were re-created with the original schemas.
func LoadCheckpoint(catalog *storage.Catalog, r io.Reader) error {
	rd := &reader{r: bufio.NewReader(r)}
	magic, err := rd.uvarint()
	if err != nil {
		return err
	}
	if magic != checkpointMagic {
		return errors.New("wal: not a checkpoint stream")
	}
	ntab, err := rd.uvarint()
	if err != nil {
		return err
	}
	if int(ntab) != len(catalog.Tables()) {
		return fmt.Errorf("wal: checkpoint has %d tables, catalog has %d", ntab, len(catalog.Tables()))
	}
	for i := uint64(0); i < ntab; i++ {
		tid, err := rd.uvarint()
		if err != nil {
			return err
		}
		nrow, err := rd.uvarint()
		if err != nil {
			return err
		}
		tab := catalog.TableByID(int(tid))
		for j := uint64(0); j < nrow; j++ {
			key, err := rd.uvarint()
			if err != nil {
				return err
			}
			ts, err := rd.uvarint()
			if err != nil {
				return err
			}
			ncol, err := rd.uvarint()
			if err != nil {
				return err
			}
			tuple := make(storage.Tuple, ncol)
			for c := range tuple {
				if tuple[c], err = rd.value(); err != nil {
					return err
				}
			}
			tab.Put(storage.Key(key), tuple, ts)
		}
	}
	return nil
}
