package wal

import (
	"bytes"
	"io"
	"testing"

	"thedb/internal/storage"
)

func newCatalog() *storage.Catalog {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name: "T",
		Columns: []storage.ColumnDef{
			{Name: "a", Kind: storage.KindInt},
			{Name: "b", Kind: storage.KindString},
		},
	})
	return cat
}

func TestValueLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)

	ts := storage.MakeTS(1, 5)
	if err := wl.BeginCommit(ts); err != nil {
		t.Fatal(err)
	}
	if err := wl.LogInsert(ts, 0, 7, storage.Tuple{storage.Int(10), storage.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := wl.LogWrite(ts, 0, 7, []int{0}, []storage.Value{storage.Int(11)}); err != nil {
		t.Fatal(err)
	}
	if err := wl.EndCommit(ts); err != nil {
		t.Fatal(err)
	}
	ts2 := storage.MakeTS(1, 9)
	if err := wl.BeginCommit(ts2); err != nil {
		t.Fatal(err)
	}
	if err := wl.LogDelete(ts2, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := wl.EndCommit(ts2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cat := newCatalog()
	tab, _ := cat.Table("T")
	tab.Put(3, storage.Tuple{storage.Int(1), storage.Str("gone")}, 0)
	cmds, err := Recover(cat, []io.Reader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 0 {
		t.Fatalf("value log produced %d commands", len(cmds))
	}
	rec, ok := tab.Peek(7)
	if !ok || !rec.Visible() {
		t.Fatal("inserted record missing after recovery")
	}
	if got := rec.Tuple()[0].Int(); got != 11 {
		t.Fatalf("a = %d, want 11 (write after insert)", got)
	}
	if got := rec.Tuple()[1].Str(); got != "x" {
		t.Fatalf("b = %q", got)
	}
	if drec, _ := tab.Peek(3); drec.Visible() {
		t.Fatal("deleted record still visible")
	}
}

func TestThomasWriteRule(t *testing.T) {
	mkStream := func(ts uint64, val int64) []byte {
		var buf bytes.Buffer
		l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
		wl := l.Worker(0)
		_ = wl.BeginCommit(ts)
		_ = wl.LogWrite(ts, 0, 1, []int{0}, []storage.Value{storage.Int(val)})
		_ = wl.EndCommit(ts)
		_ = l.Close()
		return buf.Bytes()
	}
	newer := mkStream(storage.MakeTS(2, 1), 222)
	older := mkStream(storage.MakeTS(1, 1), 111)

	// Replay newer first, then older: the older write must be
	// discarded, so stream replay order does not matter.
	cat := newCatalog()
	tab, _ := cat.Table("T")
	tab.Put(1, storage.Tuple{storage.Int(0), storage.Str("")}, 0)
	if _, err := Recover(cat, []io.Reader{bytes.NewReader(newer), bytes.NewReader(older)}); err != nil {
		t.Fatal(err)
	}
	rec, _ := tab.Peek(1)
	if got := rec.Tuple()[0].Int(); got != 222 {
		t.Fatalf("value = %d, want 222 (Thomas write rule)", got)
	}
	if rec.Timestamp() != storage.MakeTS(2, 1) {
		t.Fatal("timestamp not advanced to the newest writer")
	}
}

func TestRecoveryOrderIndependence(t *testing.T) {
	mk := func(order []uint64) storage.Tuple {
		streams := make([][]byte, len(order))
		for i, ts := range order {
			var buf bytes.Buffer
			l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
			wl := l.Worker(0)
			_ = wl.BeginCommit(ts)
			_ = wl.LogWrite(ts, 0, 1, []int{0}, []storage.Value{storage.Int(int64(ts))})
			_ = wl.EndCommit(ts)
			_ = l.Close()
			streams[i] = buf.Bytes()
		}
		cat := newCatalog()
		tab, _ := cat.Table("T")
		tab.Put(1, storage.Tuple{storage.Int(0), storage.Str("")}, 0)
		var readers []io.Reader
		for _, s := range streams {
			readers = append(readers, bytes.NewReader(s))
		}
		if _, err := Recover(cat, readers); err != nil {
			t.Fatal(err)
		}
		rec, _ := tab.Peek(1)
		return rec.Tuple()
	}
	a := mk([]uint64{5, 9, 3})
	b := mk([]uint64{3, 5, 9})
	c := mk([]uint64{9, 3, 5})
	if !a.Equal(b) || !b.Equal(c) {
		t.Fatalf("recovery depends on stream order: %v %v %v", a, b, c)
	}
	if a[0].Int() != 9 {
		t.Fatalf("final value = %d, want 9", a[0].Int())
	}
}

func TestCommandLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(CommandLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)
	ts := storage.MakeTS(1, 1)
	_ = wl.BeginCommit(ts)
	if err := wl.LogCommand(ts, "Transfer", []storage.Value{storage.Int(1), storage.Str("x"), storage.Float(2.5)}); err != nil {
		t.Fatal(err)
	}
	_ = wl.EndCommit(ts)
	_ = l.Close()

	cmds, err := Recover(newCatalog(), []io.Reader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 {
		t.Fatalf("commands = %d", len(cmds))
	}
	c := cmds[0]
	if c.TS != ts || c.Proc != "Transfer" || len(c.Args) != 3 {
		t.Fatalf("command = %+v", c)
	}
	if c.Args[0].Int() != 1 || c.Args[1].Str() != "x" || c.Args[2].Float() != 2.5 {
		t.Fatalf("args = %v", c.Args)
	}
}

func TestEpochGroupCommitFlushes(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)

	// Entries within one epoch stay buffered (nothing reaches the
	// sink before the group boundary or an explicit flush).
	ts1 := storage.MakeTS(1, 1)
	_ = wl.BeginCommit(ts1)
	_ = wl.LogWrite(ts1, 0, 1, []int{0}, []storage.Value{storage.Int(1)})
	_ = wl.EndCommit(ts1)
	if buf.Len() != 0 {
		t.Fatal("entries reached the sink before the epoch closed")
	}
	// Crossing into epoch 2 flushes the epoch-1 group.
	ts2 := storage.MakeTS(2, 1)
	_ = wl.BeginCommit(ts2)
	if buf.Len() == 0 {
		t.Fatal("epoch boundary did not flush the previous group")
	}
	_ = l.Close()
}

func TestCheckpointRoundTrip(t *testing.T) {
	cat := newCatalog()
	tab, _ := cat.Table("T")
	for i := int64(0); i < 100; i++ {
		tab.Put(storage.Key(i), storage.Tuple{storage.Int(i), storage.Str("r")}, storage.MakeTS(1, uint32(i)))
	}
	// Invisible records must not be checkpointed.
	rec, _ := tab.GetOrCreateDummy(999)
	rec.Unpin()

	var buf bytes.Buffer
	if err := Checkpoint(cat, &buf); err != nil {
		t.Fatal(err)
	}

	cat2 := newCatalog()
	if err := LoadCheckpoint(cat2, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	tab2, _ := cat2.Table("T")
	if tab2.Len() != 100 {
		t.Fatalf("restored %d records, want 100", tab2.Len())
	}
	for i := int64(0); i < 100; i++ {
		r, ok := tab2.Peek(storage.Key(i))
		if !ok {
			t.Fatalf("missing key %d", i)
		}
		if r.Tuple()[0].Int() != i || r.Timestamp() != storage.MakeTS(1, uint32(i)) {
			t.Fatalf("key %d corrupted", i)
		}
	}
	if _, ok := tab2.Peek(999); ok {
		t.Fatal("invisible record was checkpointed")
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	build := func() *storage.Catalog {
		cat := newCatalog()
		tab, _ := cat.Table("T")
		// Insert in different orders; images must match.
		for _, i := range []int64{5, 1, 9, 3} {
			tab.Put(storage.Key(i), storage.Tuple{storage.Int(i), storage.Str("s")}, uint64(i))
		}
		return cat
	}
	var a, b bytes.Buffer
	if err := Checkpoint(build(), &a); err != nil {
		t.Fatal(err)
	}
	if err := Checkpoint(build(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint image not deterministic")
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if err := LoadCheckpoint(newCatalog(), bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})); err == nil {
		t.Fatal("garbage accepted as checkpoint")
	}
}
