// Package wal implements THEDB's durability mechanisms (paper
// Appendix C): per-worker value logging or command logging with
// epoch-based group commit, full-database checkpoints, and parallel
// recovery applying the Thomas write rule.
//
// Each worker owns a private log stream; entries carry the commit
// timestamp whose high half is the global epoch, so all transactions
// of one epoch are persisted as a group. Recovery merges the streams
// in any order: a write is applied only if its timestamp exceeds the
// record's current timestamp (Thomas write rule), so replay
// parallelizes trivially.
//
// On the wire every entry is wrapped in a length-prefixed CRC32C
// frame (see frame.go), and streams carry seal entries: seal(E) in a
// stream promises that no entry with epoch ≤ E appears after it, so
// recovery can compute the durable epoch — the highest epoch every
// stream has sealed and synced — and salvage a crash-torn log back
// to an epoch-consistent committed prefix (see recover.go).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"thedb/internal/storage"
)

// Mode selects what gets logged.
type Mode int

// Logging modes (Fig. 16 compares them).
const (
	// ValueLogging logs each record write (after-image of the
	// written columns).
	ValueLogging Mode = iota
	// CommandLogging logs the procedure name and arguments.
	CommandLogging
)

// String names the mode.
func (m Mode) String() string {
	if m == CommandLogging {
		return "command"
	}
	return "value"
}

// Entry kinds on the wire (the first payload byte of each frame).
const (
	KindWrite   byte = 1
	KindInsert  byte = 2
	KindDelete  byte = 3
	KindCommand byte = 4
	KindCommit  byte = 5
	// KindSeal marks an epoch boundary: seal(E) promises that no
	// entry with epoch ≤ E follows it in this stream.
	KindSeal byte = 6
)

// Syncer is the optional sink extension for stable storage: sinks
// that implement it (os.File does) are synced when an epoch is
// hardened, and an epoch is only reported durable once every stream's
// sink has been synced past its seal.
type Syncer interface {
	Sync() error
}

// Logger coordinates per-worker log streams.
type Logger struct {
	mode    Mode
	workers []*WorkerLog

	// sinkMu guards sinks against concurrent rotation: the epoch
	// advancer holds it for the whole sync pass, and Rotate holds it
	// while swapping a sink and retiring the old one, so a sink is
	// never synced after its file has been handed back for closing.
	sinkMu sync.Mutex
	sinks  []io.Writer
}

// NewLogger builds a logger with one stream per worker; sink is
// called once per worker to obtain its output. Sinks must not be
// shared between workers: streams flush concurrently.
func NewLogger(mode Mode, workers int, sink func(worker int) io.Writer) *Logger {
	l := &Logger{mode: mode}
	for i := 0; i < workers; i++ {
		s := sink(i)
		l.sinks = append(l.sinks, s)
		l.workers = append(l.workers, &WorkerLog{
			mode: mode,
			w:    bufio.NewWriterSize(s, 1<<16),
		})
	}
	return l
}

// Mode returns the logging mode.
func (l *Logger) Mode() Mode { return l.mode }

// Stats holds cumulative frame-write counters across all streams.
type Stats struct {
	Frames int64 // frames appended (entries, commits, seals)
	Bytes  int64 // framed bytes appended (payload + frame overhead)
}

// Stats sums the per-stream counters. Safe to call while workers
// append: each stream's counters are read under its own mutex, so the
// totals are a per-stream-consistent (not cross-stream-atomic) view.
func (l *Logger) Stats() Stats {
	var s Stats
	for _, wl := range l.workers {
		wl.mu.Lock()
		s.Frames += wl.frames
		s.Bytes += wl.bytes
		wl.mu.Unlock()
	}
	return s
}

// Worker returns worker i's log stream.
func (l *Logger) Worker(i int) *WorkerLog { return l.workers[i] }

// SealAndSync seals every stream at the given epoch (clamped so an
// in-flight commit group is never covered by its own seal), flushes
// them, and syncs every sink that supports it. It is the epoch
// advancer's hardening step: once it returns nil, every transaction
// with commit epoch ≤ epoch is on stable storage in every stream.
// All per-stream and per-sink failures are aggregated with
// errors.Join rather than masked by the first one.
func (l *Logger) SealAndSync(epoch uint32) error {
	var errs []error
	for i, wl := range l.workers {
		if err := wl.sealAndFlush(epoch); err != nil {
			errs = append(errs, fmt.Errorf("wal: stream %d: %w", i, err))
		}
	}
	errs = append(errs, l.syncSinks())
	return errors.Join(errs...)
}

// syncSinks syncs every sink implementing Syncer, aggregating errors.
// It holds sinkMu across the whole pass so a concurrent Rotate cannot
// close a file out from under an in-flight fsync.
func (l *Logger) syncSinks() error {
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	var errs []error
	for i, s := range l.sinks {
		sy, ok := s.(Syncer)
		if !ok {
			continue
		}
		if err := sy.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("wal: sink %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Rotate redirects stream i to a fresh sink at a frame and commit
// group boundary: it waits for any in-flight commit group to close,
// flushes the stream's buffer into the old sink (so the old file ends
// on a complete frame — splitting a frame across generation files
// would destroy the logical stream when the earlier file is
// truncated), swaps the sink, and hands the old one to retire (called
// with the rotation locks held, so no concurrent sync can touch it).
// It returns the highest epoch the old sink may contain, which is the
// watermark comparison key for truncating it later. The stream's seal
// state carries over: generation files concatenate into one logical
// stream at recovery.
func (l *Logger) Rotate(i int, next io.Writer, retire func(prev io.Writer) error) (maxEpoch uint32, err error) {
	wl := l.workers[i]
	for {
		wl.mu.Lock()
		if !wl.inGroup {
			break
		}
		wl.mu.Unlock()
		runtime.Gosched()
	}
	defer wl.mu.Unlock()
	if err := wl.w.Flush(); err != nil {
		return 0, err
	}
	maxEpoch = wl.lastEpoch
	if wl.sealed > maxEpoch {
		maxEpoch = wl.sealed
	}
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	prev := l.sinks[i]
	l.sinks[i] = next
	wl.w = bufio.NewWriterSize(next, 1<<16)
	if retire != nil {
		if err := retire(prev); err != nil {
			return maxEpoch, err
		}
	}
	return maxEpoch, nil
}

// Close seals every stream at the highest epoch any stream has
// reached (the caller must have quiesced the workers), flushes them,
// and syncs the sinks. Per-stream failures are collected with
// errors.Join so a multi-stream failure isn't masked by the first.
func (l *Logger) Close() error {
	var maxE uint32
	for _, wl := range l.workers {
		wl.mu.Lock()
		if wl.lastEpoch > maxE {
			maxE = wl.lastEpoch
		}
		if wl.sealed > maxE {
			maxE = wl.sealed
		}
		wl.mu.Unlock()
	}
	var errs []error
	for i, wl := range l.workers {
		if err := wl.closeAt(maxE); err != nil {
			errs = append(errs, fmt.Errorf("wal: stream %d: %w", i, err))
		}
	}
	errs = append(errs, l.syncSinks())
	return errors.Join(errs...)
}

// WorkerLog is a single worker's private log stream. Entry writers
// are intended for the owning worker (one goroutine); the internal
// mutex exists so the epoch advancer can seal, flush and sync a
// stream concurrently with its owner's appends.
type WorkerLog struct {
	mode Mode

	mu         sync.Mutex
	w          *bufio.Writer
	buf        []byte // entry scratch
	frame      []byte // frame scratch
	lastEpoch  uint32 // epoch of the latest commit group
	sealed     uint32 // highest epoch sealed in this stream
	inGroup    bool   // between BeginCommit and EndCommit
	hasEntries bool   // stream has ever received a frame
	frames     int64  // frames appended to this stream
	bytes      int64  // framed bytes appended to this stream
}

// BeginCommit opens a transaction's log record group. In the epoch
// group-commit scheme, crossing into a new epoch first seals the
// prior epochs — per-worker commit timestamps are monotone, so once
// a commit of epoch E begins, no entry with epoch < E can ever
// follow in this stream — and flushes everything buffered for them.
func (wl *WorkerLog) BeginCommit(ts uint64) error {
	epoch, _ := storage.SplitTS(ts)
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if wl.hasEntries && epoch > wl.lastEpoch {
		if err := wl.sealLocked(epoch - 1); err != nil {
			return err
		}
		if err := wl.w.Flush(); err != nil {
			return err
		}
	}
	wl.lastEpoch = epoch
	wl.inGroup = true
	return nil
}

// LogWrite appends a value-log entry for an update of the given
// columns.
func (wl *WorkerLog) LogWrite(ts uint64, table int, key storage.Key, cols []int, vals []storage.Value) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindWrite)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(cols)))
	for i, c := range cols {
		wl.buf = binary.AppendUvarint(wl.buf, uint64(c))
		wl.buf = appendValue(wl.buf, vals[i])
	}
	return wl.writeFrameLocked(wl.buf)
}

// LogInsert appends a value-log entry creating a record.
func (wl *WorkerLog) LogInsert(ts uint64, table int, key storage.Key, tuple storage.Tuple) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindInsert)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(tuple)))
	for _, v := range tuple {
		wl.buf = appendValue(wl.buf, v)
	}
	return wl.writeFrameLocked(wl.buf)
}

// LogDelete appends a value-log entry removing a record.
func (wl *WorkerLog) LogDelete(ts uint64, table int, key storage.Key) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindDelete)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	return wl.writeFrameLocked(wl.buf)
}

// LogCommand appends a command-log entry: the stored procedure's name
// and argument vector.
func (wl *WorkerLog) LogCommand(ts uint64, procName string, args []storage.Value) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindCommand)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = appendString(wl.buf, procName)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(args)))
	for _, v := range args {
		wl.buf = appendValue(wl.buf, v)
	}
	return wl.writeFrameLocked(wl.buf)
}

// EndCommit closes the transaction's record group. Recovery only
// applies groups whose commit entry made it to the log; everything
// after the last commit entry of a stream is a torn group.
func (wl *WorkerLog) EndCommit(ts uint64) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindCommit)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	err := wl.writeFrameLocked(wl.buf)
	wl.inGroup = false
	return err
}

// Flush forces buffered entries to the sink (end of epoch group).
func (wl *WorkerLog) Flush() error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	return wl.w.Flush()
}

// writeFrameLocked wraps payload in a checksummed frame and appends
// it to the stream buffer. Caller holds wl.mu.
func (wl *WorkerLog) writeFrameLocked(payload []byte) error {
	wl.frame = appendFrame(wl.frame[:0], payload)
	wl.hasEntries = true
	wl.frames++
	wl.bytes += int64(len(wl.frame))
	_, err := wl.w.Write(wl.frame)
	return err
}

// sealLocked appends a seal entry for the given epoch if it advances
// the stream's seal. Caller holds wl.mu and guarantees that no entry
// with epoch ≤ the sealed epoch will be appended afterwards.
func (wl *WorkerLog) sealLocked(epoch uint32) error {
	if epoch == 0 || epoch <= wl.sealed {
		return nil
	}
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, KindSeal)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(epoch))
	if err := wl.writeFrameLocked(wl.buf); err != nil {
		return err
	}
	wl.sealed = epoch
	return nil
}

// sealAndFlush seals the stream at target — clamped below an
// in-flight commit group's epoch, since that group's entries are
// still being appended — and flushes it to the sink.
func (wl *WorkerLog) sealAndFlush(target uint32) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if wl.inGroup && wl.lastEpoch <= target {
		if wl.lastEpoch == 0 {
			target = 0
		} else {
			target = wl.lastEpoch - 1
		}
	}
	if err := wl.sealLocked(target); err != nil {
		return err
	}
	return wl.w.Flush()
}

// closeAt seals the quiesced stream at the given epoch and flushes.
func (wl *WorkerLog) closeAt(epoch uint32) error {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if wl.hasEntries {
		if err := wl.sealLocked(epoch); err != nil {
			return err
		}
	}
	return wl.w.Flush()
}

// appendValue and appendString delegate to the shared storage codec
// (the checkpoint slot format uses the same encoding).
func appendValue(b []byte, v storage.Value) []byte { return storage.AppendValue(b, v) }

func appendString(b []byte, s string) []byte { return storage.AppendString(b, s) }

type reader struct{ r storage.ByteReader }

func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }

func (rd *reader) value() (storage.Value, error) { return storage.ReadValue(rd.r) }

func (rd *reader) str() (string, error) { return storage.ReadString(rd.r) }
