// Package wal implements THEDB's durability mechanisms (paper
// Appendix C): per-worker value logging or command logging with
// epoch-based group commit, full-database checkpoints, and parallel
// recovery applying the Thomas write rule.
//
// Each worker owns a private log stream; entries carry the commit
// timestamp whose high half is the global epoch, so all transactions
// of one epoch are persisted as a group. Recovery merges the streams
// in any order: a write is applied only if its timestamp exceeds the
// record's current timestamp (Thomas write rule), so replay
// parallelizes trivially.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"thedb/internal/storage"
)

// Mode selects what gets logged.
type Mode int

// Logging modes (Fig. 16 compares them).
const (
	// ValueLogging logs each record write (after-image of the
	// written columns).
	ValueLogging Mode = iota
	// CommandLogging logs the procedure name and arguments.
	CommandLogging
)

// String names the mode.
func (m Mode) String() string {
	if m == CommandLogging {
		return "command"
	}
	return "value"
}

// entry kinds on the wire.
const (
	kindWrite   byte = 1
	kindInsert  byte = 2
	kindDelete  byte = 3
	kindCommand byte = 4
	kindCommit  byte = 5
)

// Logger coordinates per-worker log streams.
type Logger struct {
	mode    Mode
	workers []*WorkerLog
}

// NewLogger builds a logger with one stream per worker; sink is
// called once per worker to obtain its output.
func NewLogger(mode Mode, workers int, sink func(worker int) io.Writer) *Logger {
	l := &Logger{mode: mode}
	for i := 0; i < workers; i++ {
		l.workers = append(l.workers, &WorkerLog{
			mode: mode,
			w:    bufio.NewWriterSize(sink(i), 1<<16),
		})
	}
	return l
}

// Mode returns the logging mode.
func (l *Logger) Mode() Mode { return l.mode }

// Worker returns worker i's log stream.
func (l *Logger) Worker(i int) *WorkerLog { return l.workers[i] }

// Close flushes every stream.
func (l *Logger) Close() error {
	for _, w := range l.workers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WorkerLog is a single worker's private log stream. Not safe for
// concurrent use (by design: one worker, one stream).
type WorkerLog struct {
	mode       Mode
	w          *bufio.Writer
	buf        []byte
	lastEpoch  uint32
	hasPending bool
}

// BeginCommit opens a transaction's log record group. In the epoch
// group-commit scheme, crossing into a new epoch flushes everything
// buffered for prior epochs first.
func (wl *WorkerLog) BeginCommit(ts uint64) error {
	epoch, _ := storage.SplitTS(ts)
	if wl.hasPending && epoch != wl.lastEpoch {
		if err := wl.Flush(); err != nil {
			return err
		}
	}
	wl.lastEpoch = epoch
	wl.hasPending = true
	return nil
}

// LogWrite appends a value-log entry for an update of the given
// columns.
func (wl *WorkerLog) LogWrite(ts uint64, table int, key storage.Key, cols []int, vals []storage.Value) error {
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, kindWrite)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(cols)))
	for i, c := range cols {
		wl.buf = binary.AppendUvarint(wl.buf, uint64(c))
		wl.buf = appendValue(wl.buf, vals[i])
	}
	_, err := wl.w.Write(wl.buf)
	return err
}

// LogInsert appends a value-log entry creating a record.
func (wl *WorkerLog) LogInsert(ts uint64, table int, key storage.Key, tuple storage.Tuple) error {
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, kindInsert)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(tuple)))
	for _, v := range tuple {
		wl.buf = appendValue(wl.buf, v)
	}
	_, err := wl.w.Write(wl.buf)
	return err
}

// LogDelete appends a value-log entry removing a record.
func (wl *WorkerLog) LogDelete(ts uint64, table int, key storage.Key) error {
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, kindDelete)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(table))
	wl.buf = binary.AppendUvarint(wl.buf, uint64(key))
	_, err := wl.w.Write(wl.buf)
	return err
}

// LogCommand appends a command-log entry: the stored procedure's name
// and argument vector.
func (wl *WorkerLog) LogCommand(ts uint64, procName string, args []storage.Value) error {
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, kindCommand)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	wl.buf = appendString(wl.buf, procName)
	wl.buf = binary.AppendUvarint(wl.buf, uint64(len(args)))
	for _, v := range args {
		wl.buf = appendValue(wl.buf, v)
	}
	_, err := wl.w.Write(wl.buf)
	return err
}

// EndCommit closes the transaction's record group.
func (wl *WorkerLog) EndCommit(ts uint64) error {
	wl.buf = wl.buf[:0]
	wl.buf = append(wl.buf, kindCommit)
	wl.buf = binary.AppendUvarint(wl.buf, ts)
	_, err := wl.w.Write(wl.buf)
	return err
}

// Flush forces buffered entries to the sink (end of epoch group).
func (wl *WorkerLog) Flush() error {
	wl.hasPending = false
	return wl.w.Flush()
}

func appendValue(b []byte, v storage.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case storage.KindNull:
	case storage.KindInt:
		b = binary.AppendVarint(b, v.Int())
	case storage.KindFloat:
		b = binary.AppendUvarint(b, math.Float64bits(v.Float()))
	case storage.KindString:
		b = appendString(b, v.Str())
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type reader struct{ r *bufio.Reader }

func (rd *reader) uvarint() (uint64, error) { return binary.ReadUvarint(rd.r) }

func (rd *reader) value() (storage.Value, error) {
	k, err := rd.r.ReadByte()
	if err != nil {
		return storage.Null, err
	}
	switch storage.ValueKind(k) {
	case storage.KindNull:
		return storage.Null, nil
	case storage.KindInt:
		n, err := binary.ReadVarint(rd.r)
		return storage.Int(n), err
	case storage.KindFloat:
		n, err := binary.ReadUvarint(rd.r)
		return storage.Float(math.Float64frombits(n)), err
	case storage.KindString:
		s, err := rd.str()
		return storage.Str(s), err
	default:
		return storage.Null, fmt.Errorf("wal: bad value kind %d", k)
	}
}

func (rd *reader) str() (string, error) {
	n, err := binary.ReadUvarint(rd.r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Command is one decoded command-log entry.
type Command struct {
	TS   uint64
	Proc string
	Args []storage.Value
}

// Recover replays value-log streams into the catalog, applying the
// Thomas write rule: a logged write lands only if its timestamp
// exceeds the record's current one, so streams may be replayed in any
// order or in parallel (Appendix C.1). Command entries encountered in
// the streams are collected and returned for the caller to re-execute
// (command-logging recovery needs the procedure registry, which lives
// in the engine).
func Recover(catalog *storage.Catalog, streams []io.Reader) ([]Command, error) {
	var cmds []Command
	for _, s := range streams {
		rd := &reader{r: bufio.NewReader(s)}
		for {
			kind, err := rd.r.ReadByte()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return cmds, err
			}
			switch kind {
			case kindWrite:
				if err := recoverWrite(catalog, rd); err != nil {
					return cmds, err
				}
			case kindInsert:
				if err := recoverInsert(catalog, rd); err != nil {
					return cmds, err
				}
			case kindDelete:
				if err := recoverDelete(catalog, rd); err != nil {
					return cmds, err
				}
			case kindCommand:
				cmd, err := recoverCommand(rd)
				if err != nil {
					return cmds, err
				}
				cmds = append(cmds, cmd)
			case kindCommit:
				if _, err := rd.uvarint(); err != nil {
					return cmds, err
				}
			default:
				return cmds, fmt.Errorf("wal: bad entry kind %d", kind)
			}
		}
	}
	return cmds, nil
}

func recoverWrite(catalog *storage.Catalog, rd *reader) error {
	ts, err := rd.uvarint()
	if err != nil {
		return err
	}
	tid, err := rd.uvarint()
	if err != nil {
		return err
	}
	key, err := rd.uvarint()
	if err != nil {
		return err
	}
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	cols := make([]int, n)
	vals := make([]storage.Value, n)
	for i := range cols {
		c, err := rd.uvarint()
		if err != nil {
			return err
		}
		v, err := rd.value()
		if err != nil {
			return err
		}
		cols[i], vals[i] = int(c), v
	}
	tab := catalog.TableByID(int(tid))
	rec, ok := tab.Peek(storage.Key(key))
	if !ok {
		// Write to a record whose insert entry lives in another
		// stream not yet replayed: materialize it.
		rec = tab.Put(storage.Key(key), make(storage.Tuple, len(tab.Schema().Columns)), 0)
	}
	if rec.Timestamp() > ts {
		// Thomas write rule: discard strictly older writes. Entries
		// with equal timestamps belong to the same transaction's
		// record group and apply in log order.
		return nil
	}
	t := rec.Tuple().Clone()
	for i, c := range cols {
		t[c] = vals[i]
	}
	rec.SetTuple(t)
	rec.SetTimestamp(ts)
	rec.SetVisible(true)
	return nil
}

func recoverInsert(catalog *storage.Catalog, rd *reader) error {
	ts, err := rd.uvarint()
	if err != nil {
		return err
	}
	tid, err := rd.uvarint()
	if err != nil {
		return err
	}
	key, err := rd.uvarint()
	if err != nil {
		return err
	}
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	tuple := make(storage.Tuple, n)
	for i := range tuple {
		if tuple[i], err = rd.value(); err != nil {
			return err
		}
	}
	tab := catalog.TableByID(int(tid))
	if rec, ok := tab.Peek(storage.Key(key)); ok {
		if rec.Timestamp() > ts {
			return nil
		}
		rec.SetTuple(tuple)
		rec.SetTimestamp(ts)
		rec.SetVisible(true)
		return nil
	}
	tab.Put(storage.Key(key), tuple, ts)
	return nil
}

func recoverDelete(catalog *storage.Catalog, rd *reader) error {
	ts, err := rd.uvarint()
	if err != nil {
		return err
	}
	tid, err := rd.uvarint()
	if err != nil {
		return err
	}
	key, err := rd.uvarint()
	if err != nil {
		return err
	}
	tab := catalog.TableByID(int(tid))
	rec, ok := tab.Peek(storage.Key(key))
	if !ok {
		// Delete of a record inserted in a not-yet-replayed stream:
		// materialize an invisible tombstone carrying the timestamp.
		rec = tab.Put(storage.Key(key), make(storage.Tuple, len(tab.Schema().Columns)), 0)
	}
	if rec.Timestamp() > ts {
		return nil
	}
	rec.SetTimestamp(ts)
	rec.SetVisible(false)
	return nil
}

func recoverCommand(rd *reader) (Command, error) {
	ts, err := rd.uvarint()
	if err != nil {
		return Command{}, err
	}
	name, err := rd.str()
	if err != nil {
		return Command{}, err
	}
	n, err := rd.uvarint()
	if err != nil {
		return Command{}, err
	}
	args := make([]storage.Value, n)
	for i := range args {
		if args[i], err = rd.value(); err != nil {
			return Command{}, err
		}
	}
	return Command{TS: ts, Proc: name, Args: args}, nil
}
