package wal

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"thedb/internal/fault"
	"thedb/internal/storage"
)

// oneWorkerStream builds a single-worker value-log stream with one
// commit group per epoch in epochs, writing key base+epoch := epoch.
// closed selects Logger.Close (seals the final epoch) versus a bare
// flush (the final epoch stays unsealed, as after a crash).
func oneWorkerStream(t *testing.T, base int64, epochs []uint32, closed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)
	for _, e := range epochs {
		ts := storage.MakeTS(e, 1)
		if err := wl.BeginCommit(ts); err != nil {
			t.Fatal(err)
		}
		if err := wl.LogWrite(ts, 0, storage.Key(base+int64(e)), []int{0},
			[]storage.Value{storage.Int(int64(e))}); err != nil {
			t.Fatal(err)
		}
		if err := wl.EndCommit(ts); err != nil {
			t.Fatal(err)
		}
	}
	if closed {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	} else if err := wl.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameMap inspects a stream and fails the test on damage.
func frameMap(t *testing.T, stream []byte) []FrameInfo {
	t.Helper()
	frames, damage, err := InspectStream(bytes.NewReader(stream))
	if err != nil || damage != nil {
		t.Fatalf("inspect: err=%v damage=%v", err, damage)
	}
	return frames
}

func keyVisible(t *testing.T, cat *storage.Catalog, key int64) bool {
	t.Helper()
	tab, _ := cat.Table("T")
	rec, ok := tab.Peek(storage.Key(key))
	return ok && rec.Visible()
}

func TestSalvageTornTailCutsAtDurableEpoch(t *testing.T) {
	// Epoch-1 and epoch-2 groups; Close seals both. Tear the stream
	// inside its final frame (the epoch-2 seal): the epoch-2 group is
	// intact but no longer covered by a seal, so salvage must drop it.
	stream := oneWorkerStream(t, 100, []uint32{1, 2}, true)
	frames := frameMap(t, stream)
	last := frames[len(frames)-1]
	if last.Kind != KindSeal || last.SealEpoch != 2 {
		t.Fatalf("final frame = %+v, want seal(2)", last)
	}
	torn := stream[:last.Offset+3] // mid-header tear of the final seal

	cat := newCatalog()
	res, err := RecoverStreams(cat, []io.Reader{bytes.NewReader(torn)}, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurableEpoch != 1 {
		t.Fatalf("durable epoch = %d, want 1", res.DurableEpoch)
	}
	if res.AppliedGroups != 1 || res.DroppedGroups != 1 {
		t.Fatalf("applied=%d dropped=%d, want 1/1", res.AppliedGroups, res.DroppedGroups)
	}
	if len(res.Damage) != 1 || !res.Damage[0].Tail {
		t.Fatalf("damage = %+v, want one torn-tail report", res.Damage)
	}
	if !keyVisible(t, cat, 101) || keyVisible(t, cat, 102) {
		t.Fatal("salvage did not restore exactly the epoch-1 prefix")
	}
}

func TestStrictErrorLeavesCatalogUntouched(t *testing.T) {
	stream := oneWorkerStream(t, 100, []uint32{1, 2}, true)
	corrupt := append([]byte(nil), stream...)
	corrupt[frameHeaderSize] ^= 0x01 // first payload byte of frame 0

	cat := newCatalog()
	cmds, err := Recover(cat, []io.Reader{bytes.NewReader(corrupt)})
	if cmds != nil {
		t.Fatal("strict recovery returned commands alongside an error")
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
	if ce.Tail || ce.Stream != 0 || ce.Offset != 0 {
		t.Fatalf("corruption = %+v, want mid-stream at offset 0 of stream 0", ce)
	}
	tab, _ := cat.Table("T")
	if tab.Len() != 0 {
		t.Fatal("strict recovery mutated the catalog before failing")
	}

	// Salvage over the same damage: everything after the corrupt
	// frame is unreachable, so nothing applies — but it reports
	// rather than errors.
	res, err := RecoverStreams(cat, []io.Reader{bytes.NewReader(corrupt)}, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AppliedGroups != 0 || len(res.Damage) != 1 || res.Damage[0].Tail {
		t.Fatalf("salvage of head-corrupted stream: %+v", res)
	}
	if tab.Len() != 0 {
		t.Fatal("salvage applied groups past the corruption point")
	}
}

func TestTailVersusMidStreamClassification(t *testing.T) {
	stream := oneWorkerStream(t, 100, []uint32{1, 2, 3}, true)
	frames := frameMap(t, stream)
	mid := frames[1] // a frame with intact frames after it
	fin := frames[len(frames)-1]

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantTail bool
		wantOff  int64
	}{
		{"truncated header", func(b []byte) []byte { return b[:fin.Offset+3] }, true, fin.Offset},
		{"truncated body", func(b []byte) []byte { return b[:fin.Offset+frameHeaderSize+1] }, true, fin.Offset},
		{"payload flip mid-stream", func(b []byte) []byte {
			b[mid.Offset+frameHeaderSize] ^= 0x80
			return b
		}, false, mid.Offset},
		{"payload flip in final frame", func(b []byte) []byte {
			b[fin.Offset+frameHeaderSize] ^= 0x80
			return b
		}, true, fin.Offset},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			damaged := tc.mutate(append([]byte(nil), stream...))
			_, err := Recover(newCatalog(), []io.Reader{bytes.NewReader(damaged)})
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CorruptionError", err)
			}
			if ce.Tail != tc.wantTail || ce.Offset != tc.wantOff {
				t.Fatalf("got tail=%v offset=%d, want tail=%v offset=%d (%v)",
					ce.Tail, ce.Offset, tc.wantTail, tc.wantOff, ce)
			}
		})
	}
}

func TestDurableEpochIsMinimumAcrossStreams(t *testing.T) {
	// Stream A reached epoch 3 and was sealed there; stream B crashed
	// with only epoch 1 sealed (its epoch-2 group has no covering
	// seal). The cut is epoch 1: anything later may be missing from B,
	// so even A's intact epoch-2/3 groups must not apply.
	a := oneWorkerStream(t, 100, []uint32{1, 2, 3}, true)
	b := oneWorkerStream(t, 200, []uint32{1, 2}, false)

	cat := newCatalog()
	res, err := RecoverStreams(cat, []io.Reader{
		bytes.NewReader(a), bytes.NewReader(b), bytes.NewReader(nil), // plus an idle worker's empty stream
	}, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurableEpoch != 1 {
		t.Fatalf("durable epoch = %d, want min(3, 1) = 1", res.DurableEpoch)
	}
	if res.AppliedGroups != 2 || res.DroppedGroups != 3 {
		t.Fatalf("applied=%d dropped=%d, want 2/3", res.AppliedGroups, res.DroppedGroups)
	}
	for _, k := range []int64{101, 201} {
		if !keyVisible(t, cat, k) {
			t.Fatalf("epoch-1 key %d missing", k)
		}
	}
	for _, k := range []int64{102, 103, 202} {
		if keyVisible(t, cat, k) {
			t.Fatalf("key %d from beyond the durable epoch was applied", k)
		}
	}
}

func TestStrictRejectsIncompleteCommitGroup(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)
	ts := storage.MakeTS(1, 1)
	_ = wl.BeginCommit(ts)
	_ = wl.LogWrite(ts, 0, 1, []int{0}, []storage.Value{storage.Int(7)})
	_ = wl.Flush() // crash before EndCommit

	cat := newCatalog()
	_, err := Recover(cat, []io.Reader{bytes.NewReader(buf.Bytes())})
	var ce *CorruptionError
	if !errors.As(err, &ce) || !ce.Tail || !strings.Contains(ce.Reason, "incomplete commit group") {
		t.Fatalf("err = %v, want torn-tail incomplete-commit-group", err)
	}

	res, err := RecoverStreams(cat, []io.Reader{bytes.NewReader(buf.Bytes())}, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TornGroups != 1 || res.AppliedGroups != 0 {
		t.Fatalf("torn=%d applied=%d, want 1/0", res.TornGroups, res.AppliedGroups)
	}
	if tab, _ := cat.Table("T"); tab.Len() != 0 {
		t.Fatal("entries of a commit-less group were applied")
	}
}

func TestSchemaMismatchRejectedBeforeMutation(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)
	ts := storage.MakeTS(1, 1)
	_ = wl.BeginCommit(ts)
	_ = wl.LogWrite(ts, 0, 1, []int{0}, []storage.Value{storage.Int(7)})
	_ = wl.LogWrite(ts, 9, 1, []int{0}, []storage.Value{storage.Int(8)}) // table 9 does not exist
	_ = wl.EndCommit(ts)
	_ = l.Close()

	for _, salvage := range []bool{false, true} {
		cat := newCatalog()
		_, err := RecoverStreams(cat, []io.Reader{bytes.NewReader(buf.Bytes())}, RecoverOptions{Salvage: salvage})
		if err == nil || !strings.Contains(err.Error(), "table 9") {
			t.Fatalf("salvage=%v: err = %v, want schema mismatch", salvage, err)
		}
		if tab, _ := cat.Table("T"); tab.Len() != 0 {
			t.Fatalf("salvage=%v: catalog mutated despite schema mismatch", salvage)
		}
	}
}

func TestCloseAggregatesPerStreamErrors(t *testing.T) {
	errA, errB := errors.New("disk A gone"), errors.New("disk B gone")
	sinks := []*fault.Writer{
		fault.NewWriter(io.Discard),
		fault.NewWriter(io.Discard),
	}
	sinks[0].FailAt(0, fault.WriteError, errA)
	sinks[1].FailAt(0, fault.WriteError, errB)
	l := NewLogger(ValueLogging, 2, func(i int) io.Writer { return sinks[i] })
	for i := 0; i < 2; i++ {
		wl := l.Worker(i)
		ts := storage.MakeTS(1, uint32(1+i))
		_ = wl.BeginCommit(ts)
		_ = wl.LogWrite(ts, 0, storage.Key(i), []int{0}, []storage.Value{storage.Int(1)})
		_ = wl.EndCommit(ts) // buffered; nothing has hit the sinks yet
	}
	err := l.Close()
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("Close must aggregate both stream failures, got: %v", err)
	}
	if !strings.Contains(err.Error(), "stream 0") || !strings.Contains(err.Error(), "stream 1") {
		t.Fatalf("error does not name both streams: %v", err)
	}
}

func TestSealAndSyncAggregatesSinkErrors(t *testing.T) {
	errA, errB := errors.New("fsync A"), errors.New("fsync B")
	sinks := []*fault.Writer{
		fault.NewWriter(io.Discard),
		fault.NewWriter(io.Discard),
	}
	sinks[0].ScriptSync(errA)
	sinks[1].ScriptSync(errB)
	l := NewLogger(ValueLogging, 2, func(i int) io.Writer { return sinks[i] })
	for i := 0; i < 2; i++ {
		wl := l.Worker(i)
		ts := storage.MakeTS(1, uint32(1+i))
		_ = wl.BeginCommit(ts)
		_ = wl.LogWrite(ts, 0, storage.Key(i), []int{0}, []storage.Value{storage.Int(1)})
		_ = wl.EndCommit(ts)
	}
	err := l.SealAndSync(1)
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("SealAndSync must aggregate both sink failures, got: %v", err)
	}
	// The seals landed even though the syncs failed; a retry that
	// syncs cleanly completes the hardening.
	if err := l.SealAndSync(1); err != nil {
		t.Fatalf("retry after transient sync failure: %v", err)
	}
	if sinks[0].SyncCalls() != 2 || sinks[1].SyncCalls() != 2 {
		t.Fatalf("sync calls = %d/%d, want 2/2", sinks[0].SyncCalls(), sinks[1].SyncCalls())
	}
}

func TestSealAndSyncMakesEpochDurable(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(ValueLogging, 1, func(int) io.Writer { return &buf })
	wl := l.Worker(0)
	ts := storage.MakeTS(2, 1)
	_ = wl.BeginCommit(ts)
	_ = wl.LogWrite(ts, 0, 7, []int{0}, []storage.Value{storage.Int(42)})
	_ = wl.EndCommit(ts)
	if err := l.SealAndSync(2); err != nil {
		t.Fatal(err)
	}
	// What reached the sink so far must already salvage to epoch 2,
	// as if the process died right after the sync.
	cat := newCatalog()
	res, err := RecoverStreams(cat, []io.Reader{bytes.NewReader(buf.Bytes())}, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurableEpoch != 2 || res.AppliedGroups != 1 {
		t.Fatalf("durable=%d applied=%d, want 2/1", res.DurableEpoch, res.AppliedGroups)
	}
	if !keyVisible(t, cat, 7) {
		t.Fatal("synced group not recovered")
	}
}
