package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"thedb/internal/storage"
)

// Command is one decoded command-log entry.
type Command struct {
	TS   uint64
	Proc string
	Args []storage.Value
}

// RecoverOptions selects the recovery contract.
type RecoverOptions struct {
	// Salvage tolerates crash damage: each stream is truncated at
	// its first unreadable frame, trailing record groups without a
	// commit entry are dropped, and only groups whose commit epoch
	// is at or below the durable epoch — the minimum sealed epoch
	// across all non-empty streams — are applied, so the restored
	// state is an epoch-consistent committed prefix of the original
	// execution.
	//
	// Without Salvage (strict mode) recovery verifies every stream
	// end to end before touching the catalog: any torn tail,
	// checksum mismatch or incomplete commit group aborts with a
	// *CorruptionError carrying the stream index and byte offset,
	// and the catalog is guaranteed unmodified. Strict mode applies
	// every commit group of a verified log, seals or not — it is
	// the mode for logs that were closed cleanly.
	Salvage bool

	// FromEpoch skips commit groups with epoch ≤ FromEpoch instead
	// of applying them: their effects are already present in the
	// checkpoint the caller restored first (the checkpoint's sealed-
	// epoch watermark). For value logs the skip is an optimization —
	// the Thomas write rule would discard the stale writes anyway —
	// but for command logs it is a correctness requirement: replaying
	// a command whose effects a checkpoint already contains would
	// double-apply it. Zero (the default) skips nothing.
	FromEpoch uint32
}

// RecoveryResult reports what recovery did. In salvage mode it is
// the audit trail of how much of the log survived.
type RecoveryResult struct {
	// Commands holds decoded command-log entries for the caller to
	// re-execute in timestamp order (command logging only).
	Commands []Command

	// DurableEpoch is the epoch-consistent cut: the minimum sealed
	// epoch across all non-empty streams. Salvage mode applies
	// exactly the commit groups with epoch ≤ DurableEpoch.
	DurableEpoch uint32

	// AppliedGroups counts commit groups applied to the catalog
	// (plus command groups handed back via Commands).
	AppliedGroups int

	// DroppedGroups counts complete commit groups discarded in
	// salvage mode because their epoch exceeds DurableEpoch.
	DroppedGroups int

	// SkippedGroups counts commit groups below the FromEpoch
	// watermark, already covered by the caller's checkpoint.
	SkippedGroups int

	// MaxEpoch is the highest epoch observed anywhere in the intact
	// portion of the streams — commit groups (applied, dropped or
	// skipped), seals, and torn trailing entries. A new engine
	// serving the recovered state must seed its epoch above it so
	// commit timestamps stay monotone across process generations.
	MaxEpoch uint32

	// TornGroups counts streams that ended in a record group with
	// no commit entry (the group's entries are never applied).
	TornGroups int

	// Damage lists the per-stream corruption that truncated salvage
	// (empty when every stream read cleanly to EOF).
	Damage []CorruptionError
}

// logEntry is one decoded wire entry. For KindSeal, ts holds the
// sealed epoch.
type logEntry struct {
	kind  byte
	ts    uint64
	table int
	key   storage.Key
	cols  []int
	vals  []storage.Value
	tuple storage.Tuple
	proc  string
	args  []storage.Value
}

// commitGroup is one transaction's record group, terminated by its
// commit entry with timestamp ts.
type commitGroup struct {
	ts      uint64
	entries []logEntry
}

// streamScan is the verification pass over one stream.
type streamScan struct {
	groups   []commitGroup
	maxSeal  uint32
	maxEpoch uint32 // highest epoch in any intact frame (seals, groups, torn entries)
	damage   *CorruptionError
	torn     int   // entries in the trailing commit-less group
	tornOff  int64 // offset of that group's first entry
	empty    bool  // stream held no bytes at all
}

// scanStream decodes one stream up to its first unreadable frame.
// Only genuine I/O errors of the reader surface as errors; damage is
// recorded in the scan.
func scanStream(idx int, r io.Reader) (*streamScan, error) {
	fr := newFrameReader(r)
	sc := &streamScan{}
	var pending []logEntry
	pendingOff := int64(-1)
	sawFrame := false
	for {
		payload, off, err := fr.next()
		if err == io.EOF {
			break
		}
		var ce *CorruptionError
		if errors.As(err, &ce) {
			ce.Stream = idx
			sc.damage = ce
			break
		}
		if err != nil {
			return nil, fmt.Errorf("wal: reading stream %d: %w", idx, err)
		}
		sawFrame = true
		e, derr := decodeEntry(payload)
		if derr != nil {
			// A CRC-valid frame that fails to decode is a writer bug
			// or format mismatch, not crash damage — but for salvage
			// purposes it truncates the stream the same way.
			sc.damage = &CorruptionError{Stream: idx, Offset: off, Tail: fr.atEOF(), Reason: derr.Error()}
			break
		}
		switch e.kind {
		case KindSeal:
			if epoch := uint32(e.ts); epoch > sc.maxSeal {
				sc.maxSeal = epoch
			}
			if epoch := uint32(e.ts); epoch > sc.maxEpoch {
				sc.maxEpoch = epoch
			}
		case KindCommit:
			if epoch, _ := storage.SplitTS(e.ts); epoch > sc.maxEpoch {
				sc.maxEpoch = epoch
			}
			sc.groups = append(sc.groups, commitGroup{ts: e.ts, entries: pending})
			pending = nil
			pendingOff = -1
		default:
			if epoch, _ := storage.SplitTS(e.ts); epoch > sc.maxEpoch {
				sc.maxEpoch = epoch
			}
			if pendingOff < 0 {
				pendingOff = off
			}
			pending = append(pending, e)
		}
	}
	sc.torn = len(pending)
	sc.tornOff = pendingOff
	sc.empty = !sawFrame && sc.damage == nil
	return sc, nil
}

// decodeEntry parses one frame payload into a logEntry.
func decodeEntry(payload []byte) (logEntry, error) {
	if len(payload) == 0 {
		return logEntry{}, errors.New("empty frame payload")
	}
	rd := &reader{r: bytes.NewReader(payload[1:])}
	e := logEntry{kind: payload[0]}
	var err error
	switch e.kind {
	case KindWrite:
		if e.ts, err = rd.uvarint(); err != nil {
			return e, err
		}
		var tid, key, n uint64
		if tid, err = rd.uvarint(); err != nil {
			return e, err
		}
		if key, err = rd.uvarint(); err != nil {
			return e, err
		}
		if n, err = rd.uvarint(); err != nil {
			return e, err
		}
		e.table, e.key = int(tid), storage.Key(key)
		e.cols = make([]int, n)
		e.vals = make([]storage.Value, n)
		for i := range e.cols {
			c, err := rd.uvarint()
			if err != nil {
				return e, err
			}
			v, err := rd.value()
			if err != nil {
				return e, err
			}
			e.cols[i], e.vals[i] = int(c), v
		}
	case KindInsert:
		if e.ts, err = rd.uvarint(); err != nil {
			return e, err
		}
		var tid, key, n uint64
		if tid, err = rd.uvarint(); err != nil {
			return e, err
		}
		if key, err = rd.uvarint(); err != nil {
			return e, err
		}
		if n, err = rd.uvarint(); err != nil {
			return e, err
		}
		e.table, e.key = int(tid), storage.Key(key)
		e.tuple = make(storage.Tuple, n)
		for i := range e.tuple {
			if e.tuple[i], err = rd.value(); err != nil {
				return e, err
			}
		}
	case KindDelete:
		if e.ts, err = rd.uvarint(); err != nil {
			return e, err
		}
		var tid, key uint64
		if tid, err = rd.uvarint(); err != nil {
			return e, err
		}
		if key, err = rd.uvarint(); err != nil {
			return e, err
		}
		e.table, e.key = int(tid), storage.Key(key)
	case KindCommand:
		if e.ts, err = rd.uvarint(); err != nil {
			return e, err
		}
		if e.proc, err = rd.str(); err != nil {
			return e, err
		}
		var n uint64
		if n, err = rd.uvarint(); err != nil {
			return e, err
		}
		e.args = make([]storage.Value, n)
		for i := range e.args {
			if e.args[i], err = rd.value(); err != nil {
				return e, err
			}
		}
	case KindCommit, KindSeal:
		if e.ts, err = rd.uvarint(); err != nil {
			return e, err
		}
	default:
		return e, fmt.Errorf("bad entry kind %d", e.kind)
	}
	return e, nil
}

// validateAgainst checks decoded groups against the catalog's schema
// so a mismatched log errors out before any mutation, in both modes.
func validateAgainst(catalog *storage.Catalog, scans []*streamScan) error {
	ntab := len(catalog.Tables())
	for i, sc := range scans {
		for _, g := range sc.groups {
			for _, e := range g.entries {
				if e.kind == KindCommand {
					continue
				}
				if e.table < 0 || e.table >= ntab {
					return fmt.Errorf("wal: stream %d: entry references table %d, catalog has %d tables", i, e.table, ntab)
				}
				ncols := len(catalog.TableByID(e.table).Schema().Columns)
				for _, c := range e.cols {
					if c < 0 || c >= ncols {
						return fmt.Errorf("wal: stream %d: entry references column %d of table %d (%d columns)", i, c, e.table, ncols)
					}
				}
			}
		}
	}
	return nil
}

// RecoverStreams replays log streams into the catalog under the
// chosen recovery contract. See RecoverOptions for the strict and
// salvage semantics. The returned result is non-nil iff err is nil;
// on error the catalog has not been modified.
func RecoverStreams(catalog *storage.Catalog, streams []io.Reader, opts RecoverOptions) (*RecoveryResult, error) {
	scans := make([]*streamScan, len(streams))
	for i, s := range streams {
		sc, err := scanStream(i, s)
		if err != nil {
			return nil, err
		}
		scans[i] = sc
	}

	if !opts.Salvage {
		for i, sc := range scans {
			if sc.damage != nil {
				return nil, sc.damage
			}
			if sc.torn > 0 {
				return nil, &CorruptionError{Stream: i, Offset: sc.tornOff, Tail: true,
					Reason: fmt.Sprintf("incomplete commit group (%d entries without a commit entry)", sc.torn)}
			}
		}
	}
	if err := validateAgainst(catalog, scans); err != nil {
		return nil, err
	}

	res := &RecoveryResult{}
	// The durable epoch is the epoch-consistent cut: the minimum
	// sealed epoch across streams. Entirely empty streams carry no
	// information (an idle worker that never logged) and impose no
	// constraint.
	haveCut := false
	for _, sc := range scans {
		if sc.empty {
			continue
		}
		if !haveCut || sc.maxSeal < res.DurableEpoch {
			res.DurableEpoch = sc.maxSeal
			haveCut = true
		}
	}

	for _, sc := range scans {
		if sc.damage != nil {
			res.Damage = append(res.Damage, *sc.damage)
		}
		if sc.torn > 0 {
			res.TornGroups++
		}
		if sc.maxEpoch > res.MaxEpoch {
			res.MaxEpoch = sc.maxEpoch
		}
		for _, g := range sc.groups {
			epoch, _ := storage.SplitTS(g.ts)
			if opts.FromEpoch > 0 && epoch <= opts.FromEpoch {
				res.SkippedGroups++
				continue
			}
			if opts.Salvage && epoch > res.DurableEpoch {
				res.DroppedGroups++
				continue
			}
			res.AppliedGroups++
			for i := range g.entries {
				e := &g.entries[i]
				if e.kind == KindCommand {
					res.Commands = append(res.Commands, Command{TS: e.ts, Proc: e.proc, Args: e.args})
					continue
				}
				applyEntry(catalog, e)
			}
		}
	}
	return res, nil
}

// Recover is the strict-mode entry point: it replays value-log
// streams into the catalog, applying the Thomas write rule — a
// logged write lands only if its timestamp exceeds the record's
// current one, so streams may be replayed in any order or in
// parallel (Appendix C.1) — and returns command-log entries for the
// caller to re-execute (command-logging recovery needs the procedure
// registry, which lives in the engine).
//
// The contract is all-or-nothing: on any error — torn tail,
// checksum mismatch, incomplete commit group, schema mismatch — the
// catalog is untouched and the commands slice is nil. Use
// RecoverStreams with RecoverOptions.Salvage to recover a crash-torn
// log to its epoch-consistent committed prefix instead.
func Recover(catalog *storage.Catalog, streams []io.Reader) ([]Command, error) {
	res, err := RecoverStreams(catalog, streams, RecoverOptions{})
	if err != nil {
		return nil, err
	}
	return res.Commands, nil
}

// applyEntry installs one value-log entry under the Thomas write
// rule.
func applyEntry(catalog *storage.Catalog, e *logEntry) {
	tab := catalog.TableByID(e.table)
	switch e.kind {
	case KindWrite:
		rec, ok := tab.Peek(e.key)
		if !ok {
			// Write to a record whose insert entry lives in another
			// stream not yet replayed: materialize it.
			rec = tab.Put(e.key, make(storage.Tuple, len(tab.Schema().Columns)), 0)
		}
		if rec.Timestamp() > e.ts {
			// Thomas write rule: discard strictly older writes.
			// Entries with equal timestamps belong to the same
			// transaction's record group and apply in log order.
			return
		}
		t := rec.Tuple().Clone()
		for i, c := range e.cols {
			t[c] = e.vals[i]
		}
		rec.SetTuple(t)
		rec.SetTimestamp(e.ts)
		rec.SetVisible(true)
	case KindInsert:
		if rec, ok := tab.Peek(e.key); ok {
			if rec.Timestamp() > e.ts {
				return
			}
			rec.SetTuple(e.tuple)
			rec.SetTimestamp(e.ts)
			rec.SetVisible(true)
			return
		}
		tab.Put(e.key, e.tuple, e.ts)
	case KindDelete:
		rec, ok := tab.Peek(e.key)
		if !ok {
			// Delete of a record inserted in a not-yet-replayed
			// stream: materialize an invisible tombstone carrying
			// the timestamp.
			rec = tab.Put(e.key, make(storage.Tuple, len(tab.Schema().Columns)), 0)
		}
		if rec.Timestamp() > e.ts {
			return
		}
		rec.SetTimestamp(e.ts)
		rec.SetVisible(false)
	}
}
