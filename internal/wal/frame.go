package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Every log entry travels inside a checksummed frame so recovery can
// tell a torn tail (expected after a crash) from silent corruption:
//
//	[payload length: uint32 LE][CRC32C(payload): uint32 LE][payload]
//
// The payload is one wire entry (kind byte + body). Frames carry no
// sequence numbers: per-worker streams are strictly sequential, and
// the commit/seal entries inside the payloads provide the ordering
// recovery needs.
const frameHeaderSize = 8

// MaxFrameSize bounds a frame's payload. A length field above this is
// treated as corruption rather than an allocation request.
const MaxFrameSize = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptionError reports an unreadable region of a log stream.
// Offset is the byte offset of the frame that failed to parse. Tail
// distinguishes clean tail damage — a frame cut short by a crash,
// which salvage-mode recovery tolerates — from corruption in the
// middle of a stream with intact data after it.
type CorruptionError struct {
	Stream int   // index into the streams slice handed to recovery
	Offset int64 // byte offset of the frame that failed to parse
	Tail   bool  // torn tail (expected after a crash) vs mid-stream
	Reason string
}

// Error formats the damage report.
func (e *CorruptionError) Error() string {
	kind := "mid-stream corruption"
	if e.Tail {
		kind = "torn tail"
	}
	return fmt.Sprintf("wal: %s in stream %d at byte %d: %s", kind, e.Stream, e.Offset, e.Reason)
}

// appendFrame wraps payload in a length-prefixed CRC32C frame.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameReader pulls checksummed frames off a stream, tracking byte
// offsets. Parse failures come back as *CorruptionError (with Stream
// left for the caller to fill); only genuine I/O errors from the
// underlying reader surface as themselves.
type frameReader struct {
	br  *bufio.Reader
	off int64 // offset of the next unread byte
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// next returns the next frame's payload (valid until the following
// call) and the byte offset of its header. io.EOF means a clean end.
func (fr *frameReader) next() (payload []byte, frameOff int64, err error) {
	frameOff = fr.off
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, frameOff, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, frameOff, &CorruptionError{Offset: frameOff, Tail: true, Reason: "truncated frame header"}
		}
		return nil, frameOff, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxFrameSize {
		return nil, frameOff, &CorruptionError{Offset: frameOff, Tail: fr.atEOF(),
			Reason: fmt.Sprintf("implausible frame length %d", length)}
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	fr.buf = fr.buf[:length]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, frameOff, &CorruptionError{Offset: frameOff, Tail: true, Reason: "truncated frame body"}
		}
		return nil, frameOff, err
	}
	if got := crc32.Checksum(fr.buf, castagnoli); got != want {
		return nil, frameOff, &CorruptionError{Offset: frameOff, Tail: fr.atEOF(),
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	fr.off += frameHeaderSize + int64(length)
	return fr.buf, frameOff, nil
}

// atEOF reports whether no bytes follow the current read position —
// the discriminator between tail damage and mid-stream corruption.
func (fr *frameReader) atEOF() bool {
	_, err := fr.br.Peek(1)
	return err != nil
}

// FrameInfo describes one intact frame of a log stream. It backs
// offline inspection and the crash-torture tests, which need the
// exact frame boundaries to enumerate truncation points.
type FrameInfo struct {
	Offset    int64  // byte offset of the frame header
	End       int64  // byte offset just past the frame
	Kind      byte   // entry kind (KindWrite .. KindSeal)
	TS        uint64 // commit timestamp of entry frames (0 for seals)
	SealEpoch uint32 // sealed epoch for KindSeal frames (0 otherwise)
}

// InspectStream walks a stream's frames without applying anything.
// It returns the intact frames in order, plus the damage that
// terminated the walk (nil after a clean EOF). The error return is
// reserved for I/O failures of the reader itself.
func InspectStream(r io.Reader) ([]FrameInfo, *CorruptionError, error) {
	fr := newFrameReader(r)
	var frames []FrameInfo
	for {
		payload, off, err := fr.next()
		if err == io.EOF {
			return frames, nil, nil
		}
		var ce *CorruptionError
		if errors.As(err, &ce) {
			return frames, ce, nil
		}
		if err != nil {
			return frames, nil, err
		}
		fi := FrameInfo{Offset: off, End: fr.off}
		if len(payload) > 0 {
			fi.Kind = payload[0]
			if n, err := binary.ReadUvarint(bytes.NewReader(payload[1:])); err == nil {
				if fi.Kind == KindSeal {
					fi.SealEpoch = uint32(n)
				} else {
					fi.TS = n
				}
			}
		}
		frames = append(frames, fi)
	}
}
