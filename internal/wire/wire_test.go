package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"thedb/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	b := AppendFrame(nil, OpCall, 42, payload)
	if len(b) != HeaderSize+len(payload) {
		t.Fatalf("encoded length = %d, want %d", len(b), HeaderSize+len(payload))
	}
	f, n, err := DecodeFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if f.Op != OpCall || f.ID != 42 || f.Version != Version || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("decoded frame = %+v", f)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good := AppendFrame(nil, OpResult, 1, []byte("x"))

	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = Version + 1
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: err = %v", err)
	}

	// A length field past the limit must fail before allocating.
	bad = append([]byte(nil), good...)
	bad[12], bad[13], bad[14], bad[15] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize: err = %v", err)
	}

	if _, _, err := DecodeFrame(good[:HeaderSize-1], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: err = %v", err)
	}
	if _, _, err := DecodeFrame(good[:len(good)-1], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: err = %v", err)
	}
}

func TestReaderStream(t *testing.T) {
	var b []byte
	b = AppendFrame(b, OpCall, 1, []byte("one"))
	b = AppendFrame(b, OpResult, 2, nil)
	b = AppendFrame(b, OpError, 3, []byte("three"))

	r := NewReader(bytes.NewReader(b), 0)
	for i, want := range []struct {
		op uint8
		id uint64
	}{{OpCall, 1}, {OpResult, 2}, {OpError, 3}} {
		f, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Op != want.op || f.ID != want.id {
			t.Fatalf("frame %d = %+v, want op=%d id=%d", i, f, want.op, want.id)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after stream: err = %v, want io.EOF", err)
	}

	// A partial trailing frame is a torn read, not a clean EOF.
	r = NewReader(bytes.NewReader(b[:len(b)-2]), 0)
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReaderEnforcesLimit(t *testing.T) {
	big := AppendFrame(nil, OpCall, 1, make([]byte, 100))
	r := NewReader(bytes.NewReader(big), 50)
	if _, err := r.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	hb := AppendHello(nil, Hello{Client: "thedb-client/1", Session: 0x0102030405060708})
	f, _, err := DecodeFrame(hb, 0)
	if err != nil || f.Op != OpHello || f.ID != 0 {
		t.Fatalf("hello frame = %+v, err = %v", f, err)
	}
	h, err := DecodeHello(f.Payload)
	if err != nil || h.Client != "thedb-client/1" || h.Session != 0x0102030405060708 {
		t.Fatalf("hello = %+v, err = %v", h, err)
	}

	wb := AppendWelcome(nil, Welcome{
		MaxFrame: 1 << 20, MaxInFlight: 64, Server: "thedb/1",
		Session: 0x0102030405060708, Incarnation: 0xfeedface12345678, DedupWindow: 256,
	})
	f, _, err = DecodeFrame(wb, 0)
	if err != nil || f.Op != OpWelcome {
		t.Fatalf("welcome frame = %+v, err = %v", f, err)
	}
	w, err := DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxFrame != 1<<20 || w.MaxInFlight != 64 || w.Server != "thedb/1" {
		t.Fatalf("welcome = %+v", w)
	}
	if w.Session != 0x0102030405060708 || w.Incarnation != 0xfeedface12345678 || w.DedupWindow != 256 {
		t.Fatalf("welcome session fields = %+v", w)
	}
}

func TestCallRoundTrip(t *testing.T) {
	calls := []Call{
		{Proc: "YCSBRead", Args: []storage.Value{storage.Int(7)}},
		{Proc: "P", Args: []storage.Value{
			storage.Int(-1), storage.Float(3.25), storage.Str("s"), storage.Null,
			storage.Float(math.Inf(-1)), storage.Int(math.MaxInt64), storage.Str(""),
		}},
		{Proc: "NoArgs"},
		{Proc: "KVInc", Seq: 42, BudgetUS: 1_500_000, Args: []storage.Value{storage.Int(9)}},
		{Proc: "MaxSeq", Seq: math.MaxUint64},
	}
	for _, c := range calls {
		b := AppendCall(nil, 9, c)
		f, _, err := DecodeFrame(b, 0)
		if err != nil || f.Op != OpCall || f.ID != 9 {
			t.Fatalf("%q: frame = %+v, err = %v", c.Proc, f, err)
		}
		got, err := DecodeCall(f.Payload)
		if err != nil {
			t.Fatalf("%q: %v", c.Proc, err)
		}
		if got.Proc != c.Proc || got.Seq != c.Seq || got.BudgetUS != c.BudgetUS || len(got.Args) != len(c.Args) {
			t.Fatalf("%q: decoded %+v", c.Proc, got)
		}
		for i := range c.Args {
			if !got.Args[i].Equal(c.Args[i]) {
				t.Fatalf("%q arg %d: got %v, want %v", c.Proc, i, got.Args[i], c.Args[i])
			}
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	outs := []Output{
		{Name: "balance", Vals: []storage.Value{storage.Int(1234)}},
		{Name: "rows", List: true, Vals: []storage.Value{storage.Str("a"), storage.Str("b")}},
		{Name: "empty", List: true},
		{Name: "pi", Vals: []storage.Value{storage.Float(3.14159)}},
	}
	b := AppendResult(nil, 11, outs)
	f, _, err := DecodeFrame(b, 0)
	if err != nil || f.Op != OpResult || f.ID != 11 {
		t.Fatalf("frame = %+v, err = %v", f, err)
	}
	got, err := DecodeResult(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, outs) {
		t.Fatalf("decoded %+v, want %+v", got, outs)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	es := []RemoteError{
		{Code: CodeContended, Backoff: 2 * time.Millisecond, Msg: "retry budget spent"},
		{Code: CodeShed, Backoff: 500 * time.Microsecond, Msg: "in-flight bound hit"},
		{Code: CodeAbort, Msg: "insufficient funds"},
		{Code: CodeDraining, Backoff: 10 * time.Millisecond, Msg: "server draining"},
		{Code: CodeDeadline, Msg: "budget exhausted before execution"},
	}
	for _, e := range es {
		b := AppendError(nil, 13, e)
		f, _, err := DecodeFrame(b, 0)
		if err != nil || f.Op != OpError || f.ID != 13 {
			t.Fatalf("frame = %+v, err = %v", f, err)
		}
		got, err := DecodeError(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("decoded %+v, want %+v", got, e)
		}
		wantRetry := e.Code == CodeContended || e.Code == CodeShed || e.Code == CodeDraining
		if got.Retryable() != wantRetry {
			t.Fatalf("%s: Retryable = %v, want %v", CodeName(e.Code), got.Retryable(), wantRetry)
		}
	}
}

func TestDecodeCallRejectsHostileCounts(t *testing.T) {
	// A declared argument count far beyond the payload must fail
	// without allocating a huge slice.
	p := appendString(nil, "P")
	p = append(p, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // uvarint ~1<<63
	if _, err := DecodeCall(p); err == nil {
		t.Fatal("hostile argc decoded successfully")
	}

	// A string length beyond the payload must fail too.
	p = []byte{0xff, 0xff, 0x03} // name length 65535, no body
	if _, err := DecodeCall(p); err == nil {
		t.Fatal("hostile string length decoded successfully")
	}
}
