package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"thedb/internal/storage"
)

// maxArgs bounds the declared element count of an argument vector or
// result list, so a hostile count field cannot drive a huge
// allocation: counts beyond it fail decoding before any slice is
// sized. (Every element costs at least one payload byte, so the
// remaining-byte check would catch these too; the explicit cap keeps
// pre-allocation honest.)
const maxArgs = 1 << 16

// --- Handshake ---------------------------------------------------------

// Hello is the client's opening message.
type Hello struct {
	// Client names the client software (diagnostics only).
	Client string
	// Session is the client's session token from a previous Welcome,
	// binding this connection into that session's dedup window. Zero
	// asks the server to mint a fresh token.
	Session uint64
}

// Welcome is the server's handshake acknowledgement, carrying the
// limits the client must respect on this connection.
type Welcome struct {
	// MaxFrame is the largest frame payload the server accepts.
	MaxFrame uint32
	// MaxInFlight is the per-connection pipelining bound: requests
	// beyond it are shed, so a client gains nothing by exceeding it.
	MaxInFlight uint32
	// Session is the session token this connection is bound to — the
	// one presented in Hello, or a freshly minted one.
	Session uint64
	// Incarnation identifies this server process's boot. A client
	// that re-sent an unanswered (session, seq) call must compare
	// incarnations: the dedup window does not survive a restart, so a
	// changed incarnation turns a transparent retry into an honest
	// "may have committed" report.
	Incarnation uint64
	// DedupWindow is the per-session count of completed operations
	// the server retains for duplicate suppression. Zero means dedup
	// is disabled: every connection death is ambiguous.
	DedupWindow uint32
	// Server names the server software (diagnostics only).
	Server string
}

// AppendHello appends an encoded OpHello frame (request id 0).
func AppendHello(dst []byte, h Hello) []byte {
	p := make([]byte, 0, 12+len(h.Client))
	p = binary.LittleEndian.AppendUint64(p, h.Session)
	p = appendString(p, h.Client)
	return AppendFrame(dst, OpHello, 0, p)
}

// DecodeHello decodes an OpHello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) < 8 {
		return Hello{}, fmt.Errorf("wire: hello: %w: session token", ErrTruncated)
	}
	h := Hello{Session: binary.LittleEndian.Uint64(p[0:8])}
	client, rest, err := decodeString(p[8:])
	if err != nil {
		return Hello{}, fmt.Errorf("wire: hello: %w", err)
	}
	if len(rest) != 0 {
		return Hello{}, fmt.Errorf("wire: hello: %d trailing bytes", len(rest))
	}
	h.Client = client
	return h, nil
}

// AppendWelcome appends an encoded OpWelcome frame (request id 0).
func AppendWelcome(dst []byte, w Welcome) []byte {
	p := make([]byte, 0, 32+len(w.Server))
	p = binary.LittleEndian.AppendUint32(p, w.MaxFrame)
	p = binary.LittleEndian.AppendUint32(p, w.MaxInFlight)
	p = binary.LittleEndian.AppendUint64(p, w.Session)
	p = binary.LittleEndian.AppendUint64(p, w.Incarnation)
	p = binary.LittleEndian.AppendUint32(p, w.DedupWindow)
	p = appendString(p, w.Server)
	return AppendFrame(dst, OpWelcome, 0, p)
}

// DecodeWelcome decodes an OpWelcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	if len(p) < 28 {
		return Welcome{}, fmt.Errorf("wire: welcome: %w: limits", ErrTruncated)
	}
	var w Welcome
	w.MaxFrame = binary.LittleEndian.Uint32(p[0:4])
	w.MaxInFlight = binary.LittleEndian.Uint32(p[4:8])
	w.Session = binary.LittleEndian.Uint64(p[8:16])
	w.Incarnation = binary.LittleEndian.Uint64(p[16:24])
	w.DedupWindow = binary.LittleEndian.Uint32(p[24:28])
	server, rest, err := decodeString(p[28:])
	if err != nil {
		return Welcome{}, fmt.Errorf("wire: welcome: %w", err)
	}
	if len(rest) != 0 {
		return Welcome{}, fmt.Errorf("wire: welcome: %d trailing bytes", len(rest))
	}
	w.Server = server
	return w, nil
}

// --- Procedure invocation ---------------------------------------------

// Call is a procedure-invocation request.
type Call struct {
	Proc string
	Args []storage.Value
	// Seq is the per-session monotonic operation sequence number.
	// Re-sending a call with the same (session, seq) is safe: the
	// server's dedup window answers an already-completed sequence
	// with its original result instead of executing it again. Zero
	// opts out of dedup.
	Seq uint64
	// BudgetUS is the caller's remaining context deadline in
	// microseconds at send time (0 = no deadline). The server rejects
	// the call with CodeDeadline — at admission or just before
	// execution — once the budget has elapsed on its own clock.
	BudgetUS uint64
	// TraceID is the client-minted transaction trace ID (version 3).
	// Zero means the caller is untraced: a server with tracing enabled
	// mints an ID at admission instead, so every traced transaction
	// has exactly one nonzero ID end to end. The ID correlates the
	// retained trace, the flight-recorder events and the histogram
	// exemplars (DESIGN.md §15).
	TraceID uint64
	// ReadOnly marks the call a snapshot read (version 4): the server
	// executes it as a read-only snapshot transaction with zero
	// validation and skips the dedup window (re-executing a read is
	// safe). Wire flags word bit 0.
	ReadOnly bool
}

// Call flag bits (version 4).
const (
	// callFlagReadOnly marks a snapshot-read call.
	callFlagReadOnly uint64 = 1 << 0
	// callFlagsKnown masks the flag bits this implementation
	// understands; decoding rejects anything outside it.
	callFlagsKnown = callFlagReadOnly
)

// AppendCall appends an encoded OpCall frame.
func AppendCall(dst []byte, id uint64, c Call) []byte {
	p := binary.AppendUvarint(nil, c.Seq)
	p = binary.AppendUvarint(p, c.BudgetUS)
	p = binary.AppendUvarint(p, c.TraceID)
	flags := uint64(0)
	if c.ReadOnly {
		flags |= callFlagReadOnly
	}
	p = binary.AppendUvarint(p, flags)
	p = appendString(p, c.Proc)
	p = binary.AppendUvarint(p, uint64(len(c.Args)))
	for _, v := range c.Args {
		p = appendValue(p, v)
	}
	return AppendFrame(dst, OpCall, id, p)
}

// DecodeCall decodes an OpCall payload.
func DecodeCall(p []byte) (Call, error) {
	seq, rest, err := decodeUvarint(p)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: op sequence: %w", err)
	}
	budgetUS, rest, err := decodeUvarint(rest)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: deadline budget: %w", err)
	}
	if budgetUS > uint64(math.MaxInt64/int64(time.Microsecond)) {
		return Call{}, fmt.Errorf("wire: call: implausible deadline budget %dµs", budgetUS)
	}
	traceID, rest, err := decodeUvarint(rest)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: trace id: %w", err)
	}
	flags, rest, err := decodeUvarint(rest)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: flags: %w", err)
	}
	if flags&^callFlagsKnown != 0 {
		return Call{}, fmt.Errorf("wire: call: unknown flags %#x", flags&^callFlagsKnown)
	}
	name, rest, err := decodeString(rest)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: procedure name: %w", err)
	}
	argc, rest, err := decodeUvarint(rest)
	if err != nil {
		return Call{}, fmt.Errorf("wire: call: argument count: %w", err)
	}
	if argc > maxArgs {
		return Call{}, fmt.Errorf("wire: call: implausible argument count %d", argc)
	}
	c := Call{Proc: name, Seq: seq, BudgetUS: budgetUS, TraceID: traceID,
		ReadOnly: flags&callFlagReadOnly != 0}
	if argc > 0 {
		c.Args = make([]storage.Value, 0, argc)
	}
	for i := uint64(0); i < argc; i++ {
		var v storage.Value
		v, rest, err = decodeValue(rest)
		if err != nil {
			return Call{}, fmt.Errorf("wire: call: argument %d: %w", i, err)
		}
		c.Args = append(c.Args, v)
	}
	if len(rest) != 0 {
		return Call{}, fmt.Errorf("wire: call: %d trailing bytes", len(rest))
	}
	return c, nil
}

// --- Results -----------------------------------------------------------

// Output is one named result variable of a committed invocation:
// either a scalar (List false, Vals of length 1) or a value list
// (range-read outputs).
type Output struct {
	Name string
	List bool
	Vals []storage.Value
}

// AppendResultPayload appends the payload encoding of the named
// outputs (no frame header). The server's dedup window caches these
// payloads and re-frames them per retry with the retry's request id.
func AppendResultPayload(dst []byte, outs []Output) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(outs)))
	for _, o := range outs {
		dst = appendString(dst, o.Name)
		if o.List {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(o.Vals)))
			for _, v := range o.Vals {
				dst = appendValue(dst, v)
			}
		} else {
			dst = append(dst, 0)
			dst = appendValue(dst, o.Vals[0])
		}
	}
	return dst
}

// AppendResult appends an encoded OpResult frame carrying the named
// outputs in the given order.
func AppendResult(dst []byte, id uint64, outs []Output) []byte {
	return AppendFrame(dst, OpResult, id, AppendResultPayload(nil, outs))
}

// DecodeResult decodes an OpResult payload.
func DecodeResult(p []byte) ([]Output, error) {
	n, rest, err := decodeUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("wire: result: output count: %w", err)
	}
	if n > maxArgs {
		return nil, fmt.Errorf("wire: result: implausible output count %d", n)
	}
	outs := make([]Output, 0, n)
	for i := uint64(0); i < n; i++ {
		var o Output
		o.Name, rest, err = decodeString(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: result: output %d name: %w", i, err)
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("wire: result: output %q: %w: tag", o.Name, ErrTruncated)
		}
		tag := rest[0]
		rest = rest[1:]
		switch tag {
		case 0:
			var v storage.Value
			v, rest, err = decodeValue(rest)
			if err != nil {
				return nil, fmt.Errorf("wire: result: output %q: %w", o.Name, err)
			}
			o.Vals = []storage.Value{v}
		case 1:
			o.List = true
			var cnt uint64
			cnt, rest, err = decodeUvarint(rest)
			if err != nil {
				return nil, fmt.Errorf("wire: result: output %q length: %w", o.Name, err)
			}
			if cnt > maxArgs {
				return nil, fmt.Errorf("wire: result: output %q: implausible length %d", o.Name, cnt)
			}
			if cnt > 0 {
				o.Vals = make([]storage.Value, 0, cnt)
			}
			for j := uint64(0); j < cnt; j++ {
				var v storage.Value
				v, rest, err = decodeValue(rest)
				if err != nil {
					return nil, fmt.Errorf("wire: result: output %q[%d]: %w", o.Name, j, err)
				}
				o.Vals = append(o.Vals, v)
			}
		default:
			return nil, fmt.Errorf("wire: result: output %q: unknown tag %d", o.Name, tag)
		}
		outs = append(outs, o)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: result: %d trailing bytes", len(rest))
	}
	return outs, nil
}

// --- Errors ------------------------------------------------------------

// AppendErrorPayload appends the payload encoding of e (no frame
// header) — the cacheable form, like AppendResultPayload.
func AppendErrorPayload(dst []byte, e RemoteError) []byte {
	dst = append(dst, e.Code)
	flags := byte(0)
	if Retryable(e.Code) {
		flags |= 1
	}
	dst = append(dst, flags)
	backoffUS := uint64(0)
	if e.Backoff > 0 {
		backoffUS = uint64(e.Backoff / time.Microsecond)
	}
	dst = binary.AppendUvarint(dst, backoffUS)
	dst = appendString(dst, e.Msg)
	return dst
}

// AppendError appends an encoded OpError frame for e.
func AppendError(dst []byte, id uint64, e RemoteError) []byte {
	return AppendFrame(dst, OpError, id, AppendErrorPayload(nil, e))
}

// DecodeError decodes an OpError payload.
func DecodeError(p []byte) (RemoteError, error) {
	if len(p) < 2 {
		return RemoteError{}, fmt.Errorf("wire: error: %w: code", ErrTruncated)
	}
	e := RemoteError{Code: p[0]}
	backoffUS, rest, err := decodeUvarint(p[2:])
	if err != nil {
		return RemoteError{}, fmt.Errorf("wire: error: backoff: %w", err)
	}
	if backoffUS > uint64(math.MaxInt64/int64(time.Microsecond)) {
		return RemoteError{}, fmt.Errorf("wire: error: implausible backoff %dµs", backoffUS)
	}
	e.Backoff = time.Duration(backoffUS) * time.Microsecond
	e.Msg, rest, err = decodeString(rest)
	if err != nil {
		return RemoteError{}, fmt.Errorf("wire: error: message: %w", err)
	}
	if len(rest) != 0 {
		return RemoteError{}, fmt.Errorf("wire: error: %d trailing bytes", len(rest))
	}
	return e, nil
}

// --- Value codec -------------------------------------------------------

// appendValue appends one typed column value: a kind byte followed by
// the kind-specific body (nothing for null, zigzag varint for int,
// 8 IEEE-754 bytes for float, length-prefixed bytes for string).
func appendValue(dst []byte, v storage.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case storage.KindNull:
	case storage.KindInt:
		dst = binary.AppendVarint(dst, v.Int())
	case storage.KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case storage.KindString:
		dst = appendString(dst, v.Str())
	}
	return dst
}

// decodeValue decodes one typed value from the front of b.
func decodeValue(b []byte) (storage.Value, []byte, error) {
	if len(b) == 0 {
		return storage.Null, nil, fmt.Errorf("%w: value kind", ErrTruncated)
	}
	kind := storage.ValueKind(b[0])
	b = b[1:]
	switch kind {
	case storage.KindNull:
		return storage.Null, b, nil
	case storage.KindInt:
		n, sz := binary.Varint(b)
		if sz <= 0 {
			return storage.Null, nil, fmt.Errorf("%w: int value", ErrTruncated)
		}
		return storage.Int(n), b[sz:], nil
	case storage.KindFloat:
		if len(b) < 8 {
			return storage.Null, nil, fmt.Errorf("%w: float value", ErrTruncated)
		}
		return storage.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))), b[8:], nil
	case storage.KindString:
		s, rest, err := decodeString(b)
		if err != nil {
			return storage.Null, nil, err
		}
		return storage.Str(s), rest, nil
	default:
		return storage.Null, nil, fmt.Errorf("wire: unknown value kind %d", kind)
	}
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString decodes a length-prefixed string. The declared length
// is checked against the remaining bytes before the string is
// materialized, so a hostile length cannot over-allocate.
func decodeString(b []byte) (string, []byte, error) {
	n, rest, err := decodeUvarint(b)
	if err != nil {
		return "", nil, fmt.Errorf("%w: string length", ErrTruncated)
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string body (%d of %d bytes)", ErrTruncated, len(rest), n)
	}
	return string(rest[:n]), rest[n:], nil
}

// decodeUvarint decodes a uvarint from the front of b.
func decodeUvarint(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, ErrTruncated
	}
	return n, b[sz:], nil
}
