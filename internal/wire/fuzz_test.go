package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"thedb/internal/storage"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame and message
// decoders. Invariants:
//
//  1. no input panics or drives an allocation past the frame limit
//     (hostile length fields must fail before allocating);
//  2. a successfully decoded frame re-encodes to exactly the consumed
//     input prefix (frame-level identity);
//  3. a successfully decoded message re-encodes and re-decodes to the
//     same structure (message-level round trip — byte identity is not
//     required because varints accept non-minimal encodings).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	f.Add(AppendHello(nil, Hello{Client: "fuzz-client"}))
	f.Add(AppendHello(nil, Hello{Client: "rejoin", Session: 0xdeadbeef00000007}))
	f.Add(AppendWelcome(nil, Welcome{MaxFrame: DefaultMaxFrame, MaxInFlight: 64, Server: "fuzz-server"}))
	f.Add(AppendWelcome(nil, Welcome{
		MaxFrame: 1 << 16, MaxInFlight: 8, Server: "fuzz-server/2",
		Session: 0xdeadbeef00000007, Incarnation: 0x1122334455667788, DedupWindow: 256,
	}))
	f.Add(AppendCall(nil, 7, Call{Proc: "YCSBRead", Args: []storage.Value{storage.Int(42)}}))
	f.Add(AppendCall(nil, 8, Call{Proc: "Mixed", Args: []storage.Value{
		storage.Null, storage.Int(-5), storage.Float(2.5), storage.Str("str"),
	}}))
	// Exactly-once header fields: op sequence + deadline budget.
	f.Add(AppendCall(nil, 12, Call{Proc: "KVInc", Seq: 41, BudgetUS: 250_000,
		Args: []storage.Value{storage.Int(3), storage.Int(-7)}}))
	f.Add(AppendCall(nil, 13, Call{Proc: "Edge", Seq: ^uint64(0), BudgetUS: 1}))
	// Trace-context field (version 3): client-minted, max, and the
	// untraced zero that the server replaces at admission.
	f.Add(AppendCall(nil, 15, Call{Proc: "KVGet", Seq: 7, TraceID: 0x4f2ec1a900000001,
		Args: []storage.Value{storage.Int(9)}}))
	f.Add(AppendCall(nil, 16, Call{Proc: "Traced", Seq: 8, BudgetUS: 1_000, TraceID: ^uint64(0)}))
	f.Add(AppendCall(nil, 17, Call{Proc: "Untraced", TraceID: 0}))
	// Flags word (version 4): snapshot-read calls with and without the
	// other header fields populated.
	f.Add(AppendCall(nil, 18, Call{Proc: "SnapScan", ReadOnly: true,
		Args: []storage.Value{storage.Int(0), storage.Int(999)}}))
	f.Add(AppendCall(nil, 19, Call{Proc: "SnapTraced", ReadOnly: true, Seq: 9,
		BudgetUS: 2_000, TraceID: 0x4f2ec1a900000002}))
	f.Add(AppendResult(nil, 9, []Output{
		{Name: "v", Vals: []storage.Value{storage.Int(1)}},
		{Name: "rows", List: true, Vals: []storage.Value{storage.Str("a"), storage.Str("b")}},
	}))
	f.Add(AppendError(nil, 10, RemoteError{Code: CodeShed, Backoff: time.Millisecond, Msg: "shed"}))
	f.Add(AppendError(nil, 14, RemoteError{Code: CodeDeadline, Msg: "budget exhausted"}))
	// Truncations and corruptions of a valid frame.
	valid := AppendCall(nil, 11, Call{Proc: "P", Args: []storage.Value{storage.Str("x")}})
	f.Add(valid[:HeaderSize])
	f.Add(valid[:len(valid)-1])
	corrupt := append([]byte(nil), valid...)
	corrupt[12] = 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, DefaultMaxFrame)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Frame-level identity: canonical re-encoding reproduces the
		// consumed prefix bit for bit (the header has no redundant
		// representations and the payload is copied verbatim).
		if re := AppendFrame(nil, fr.Op, fr.ID, fr.Payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded frame differs from input prefix:\n got %x\nwant %x", re, data[:n])
		}
		switch fr.Op {
		case OpHello:
			h, err := DecodeHello(fr.Payload)
			if err != nil {
				return
			}
			rt, _, err := DecodeFrame(AppendHello(nil, h), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("re-encoded hello fails to decode: %v", err)
			}
			if h2, err := DecodeHello(rt.Payload); err != nil || h2 != h {
				t.Fatalf("hello round trip: %+v -> %+v (err %v)", h, h2, err)
			}
		case OpWelcome:
			w, err := DecodeWelcome(fr.Payload)
			if err != nil {
				return
			}
			rt, _, err := DecodeFrame(AppendWelcome(nil, w), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("re-encoded welcome fails to decode: %v", err)
			}
			if w2, err := DecodeWelcome(rt.Payload); err != nil || w2 != w {
				t.Fatalf("welcome round trip: %+v -> %+v (err %v)", w, w2, err)
			}
		case OpCall:
			c, err := DecodeCall(fr.Payload)
			if err != nil {
				return
			}
			rt, _, err := DecodeFrame(AppendCall(nil, fr.ID, c), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("re-encoded call fails to decode: %v", err)
			}
			c2, err := DecodeCall(rt.Payload)
			if err != nil {
				t.Fatalf("call round trip decode: %v", err)
			}
			if c2.Proc != c.Proc || c2.Seq != c.Seq || c2.BudgetUS != c.BudgetUS || c2.TraceID != c.TraceID || c2.ReadOnly != c.ReadOnly || len(c2.Args) != len(c.Args) {
				t.Fatalf("call round trip: %+v -> %+v", c, c2)
			}
			for i := range c.Args {
				if c2.Args[i] != c.Args[i] {
					t.Fatalf("call arg %d round trip: %v -> %v", i, c.Args[i], c2.Args[i])
				}
			}
		case OpResult:
			outs, err := DecodeResult(fr.Payload)
			if err != nil {
				return
			}
			rt, _, err := DecodeFrame(AppendResult(nil, fr.ID, outs), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("re-encoded result fails to decode: %v", err)
			}
			outs2, err := DecodeResult(rt.Payload)
			if err != nil {
				t.Fatalf("result round trip decode: %v", err)
			}
			if !reflect.DeepEqual(normalizeOutputs(outs2), normalizeOutputs(outs)) {
				t.Fatalf("result round trip: %+v -> %+v", outs, outs2)
			}
		case OpError:
			e, err := DecodeError(fr.Payload)
			if err != nil {
				return
			}
			rt, _, err := DecodeFrame(AppendError(nil, fr.ID, e), DefaultMaxFrame)
			if err != nil {
				t.Fatalf("re-encoded error fails to decode: %v", err)
			}
			e2, err := DecodeError(rt.Payload)
			if err != nil {
				t.Fatalf("error round trip decode: %v", err)
			}
			// Sub-microsecond backoff precision is quantized by the
			// encoding; decoded values are already whole microseconds.
			if e2 != e {
				t.Fatalf("error round trip: %+v -> %+v", e, e2)
			}
		}
	})
}

// normalizeOutputs maps empty and nil Vals slices together: both
// encode to a zero-length list.
func normalizeOutputs(outs []Output) []Output {
	n := make([]Output, len(outs))
	for i, o := range outs {
		if len(o.Vals) == 0 {
			o.Vals = nil
		}
		n[i] = o
	}
	return n
}
