// Package wire defines THEDB's client/server protocol: a
// length-prefixed binary framing layer plus the payload encodings for
// procedure-invocation requests and their responses.
//
// The protocol exists because the engine's transaction model — one-shot
// stored procedures whose dependency graphs are known up front (§3 of
// the healing paper) — is exactly what a network server can dispatch
// without holding client round-trips inside the critical section: a
// request carries the full procedure name and argument vector, so the
// server never waits on the client mid-transaction.
//
// # Framing
//
// Every message travels inside one frame:
//
//	offset 0  magic      uint16 LE (0x7DB1)
//	offset 2  version    uint8    (protocol version, pinned by the handshake)
//	offset 3  opcode     uint8
//	offset 4  request id uint64 LE
//	offset 12 length     uint32 LE (payload byte count)
//	offset 16 payload    [length]byte
//
// Request ids are chosen by the client and echoed verbatim in the
// matching response, which is what allows per-connection pipelining
// with out-of-order completion: the server may answer request 7 before
// request 3, and the client maps responses back by id. Id 0 is
// reserved for the handshake pair.
//
// A length field above the reader's configured maximum is treated as a
// protocol error, never as an allocation request.
//
// # Handshake and sessions
//
// The first frame on a connection must be OpHello from the client; the
// server answers OpWelcome (carrying its frame-size and pipelining
// limits) or OpError with CodeVersion and closes. Both directions pin
// the version byte for the rest of the connection.
//
// Version 2 adds exactly-once retry plumbing. Hello carries a client
// session token (0 asks the server to mint one); Welcome returns the
// bound token plus the server's boot incarnation and per-session
// dedup-window size. Each Call then carries a per-session monotonic
// operation sequence number: re-sending a call with the same
// (session, seq) after a connection death is safe, because the server
// answers an already-completed sequence from its dedup window instead
// of executing it again. Seq 0 opts out (no dedup). A Call also
// carries the client's remaining context deadline as a microsecond
// budget (0 = none), which the server enforces at admission and again
// before execution so work whose caller has given up is never run.
//
// Version 3 adds end-to-end transaction tracing. Each Call carries an
// optional trace ID (0 = untraced; the server mints one at admission
// when tracing is on), threaded through dispatch into the engine so
// the retained trace, the flight-recorder events and the histogram
// exemplars of one transaction all share the ID.
//
// Version 4 adds a per-call flags word (uvarint, after the trace ID).
// Bit 0 marks the call read-only: the server executes it as a snapshot
// transaction — an epoch-consistent read with zero validation
// (DESIGN.md §16) — and skips the dedup window, since a read-only call
// is safe to re-execute. Higher flag bits must be zero; the server
// rejects calls carrying flags it does not understand rather than
// silently dropping their semantics.
//
// # Errors and load shedding
//
// Failures travel as OpError payloads carrying a typed code, a
// retryable flag, an optional server-suggested backoff hint, and a
// message. Admission-control rejections (CodeShed, CodeDraining) and
// retry-budget exhaustion inside the engine (CodeContended) are
// retryable: a well-behaved client backs off — honoring the hint —
// and retries, rather than treating shedding as failure.
package wire

import (
	"fmt"
	"time"
)

// Magic is the frame preamble; a connection that sends anything else
// is not speaking this protocol.
const Magic uint16 = 0x7DB1

// Version is the protocol version this package speaks. The handshake
// pins it: both sides reject frames carrying any other version.
// Version 2 added session tokens, per-session op sequences and
// deadline budgets (exactly-once retries); version 3 added the
// per-call transaction trace ID; version 4 added the per-call flags
// word (read-only snapshot calls). The frame header is unchanged.
const Version uint8 = 4

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 16

// DefaultMaxFrame bounds a frame payload unless the transport
// negotiates otherwise. Large enough for any realistic argument
// vector or result set, small enough that a hostile length field
// cannot balloon allocation.
const DefaultMaxFrame = 1 << 20

// Opcodes.
const (
	// OpHello opens a connection (client → server, request id 0).
	OpHello uint8 = 1
	// OpWelcome acknowledges the handshake (server → client, id 0).
	OpWelcome uint8 = 2
	// OpCall invokes a stored procedure.
	OpCall uint8 = 3
	// OpResult carries a successful invocation's outputs.
	OpResult uint8 = 4
	// OpError carries a typed failure for one request.
	OpError uint8 = 5
)

// OpName names an opcode for diagnostics.
func OpName(op uint8) string {
	switch op {
	case OpHello:
		return "hello"
	case OpWelcome:
		return "welcome"
	case OpCall:
		return "call"
	case OpResult:
		return "result"
	case OpError:
		return "error"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// Frame is one decoded protocol frame. Payload aliases the decode
// buffer and is valid only until the next read on the same Reader.
type Frame struct {
	Version uint8
	Op      uint8
	ID      uint64
	Payload []byte
}

// Error codes carried by OpError payloads.
const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal uint8 = 1
	// CodeBadRequest is a malformed or protocol-violating frame.
	CodeBadRequest uint8 = 2
	// CodeUnknownProc names an unregistered procedure.
	CodeUnknownProc uint8 = 3
	// CodeAbort is an application abort (thedb.UserAbort): the
	// transaction ran and rolled back for business-logic reasons.
	CodeAbort uint8 = 4
	// CodeContended reports retry-budget exhaustion inside the
	// engine's degradation ladder (thedb.ErrContended). Retryable.
	CodeContended uint8 = 5
	// CodeShed reports an admission-control rejection: the request
	// was never admitted because a per-connection or global in-flight
	// bound was hit. Retryable.
	CodeShed uint8 = 6
	// CodeDraining reports that the server is shutting down and no
	// longer admits new transactions. Retryable (against a replica or
	// after a restart).
	CodeDraining uint8 = 7
	// CodeVersion reports a protocol-version mismatch in the
	// handshake.
	CodeVersion uint8 = 8
	// CodeDeadline reports that a call's deadline budget was
	// exhausted before the server executed it. The transaction never
	// ran, but the caller's context is dead anyway, so the code is
	// not retryable: the client surfaces it like a local deadline.
	CodeDeadline uint8 = 9
)

// CodeName names an error code.
func CodeName(c uint8) string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeUnknownProc:
		return "unknown-procedure"
	case CodeAbort:
		return "abort"
	case CodeContended:
		return "contended"
	case CodeShed:
		return "shed"
	case CodeDraining:
		return "draining"
	case CodeVersion:
		return "version-mismatch"
	case CodeDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("code(%d)", c)
	}
}

// Retryable reports whether an error code marks a transient condition
// the client should back off and retry.
func Retryable(c uint8) bool {
	return c == CodeContended || c == CodeShed || c == CodeDraining
}

// RemoteError is a server-reported failure decoded from an OpError
// payload. It is the error type the client package surfaces: shed
// requests arrive as typed contended/shed errors with backoff hints,
// never as silent drops.
type RemoteError struct {
	// Code is one of the Code constants.
	Code uint8
	// Backoff is the server's suggested wait before retrying (zero
	// when the server offers no hint). Only meaningful when
	// Retryable() is true.
	Backoff time.Duration
	// Msg is the human-readable detail.
	Msg string
}

// Error formats the failure.
func (e *RemoteError) Error() string {
	if e.Backoff > 0 {
		return fmt.Sprintf("thedb: remote %s: %s (retry after %v)", CodeName(e.Code), e.Msg, e.Backoff)
	}
	return fmt.Sprintf("thedb: remote %s: %s", CodeName(e.Code), e.Msg)
}

// Retryable reports whether the client should back off and retry.
func (e *RemoteError) Retryable() bool { return Retryable(e.Code) }
