package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge reports a frame whose length field exceeds the
// reader's maximum. The connection is unrecoverable past this point
// (the stream position is lost), so callers must close it.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrBadMagic reports a frame that does not start with Magic: the
// peer is not speaking this protocol.
var ErrBadMagic = errors.New("wire: bad frame magic")

// ErrBadVersion reports a frame carrying an unsupported protocol
// version.
var ErrBadVersion = errors.New("wire: unsupported protocol version")

// ErrTruncated reports a frame or payload cut short.
var ErrTruncated = errors.New("wire: truncated")

// AppendFrame appends one encoded frame to dst and returns the
// extended slice. It is the single encoding path: every message
// helper (AppendCall, AppendResult, ...) funnels through it.
// Growing dst is the caller's amortized cost; the frame itself adds
// no allocation.
//
//thedb:noalloc
func AppendFrame(dst []byte, op uint8, id uint64, payload []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = op
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the front of b without copying:
// the returned Frame's payload aliases b. n is the number of bytes
// consumed. maxPayload bounds the accepted payload length (<= 0 means
// DefaultMaxFrame); a length field beyond it fails with
// ErrFrameTooLarge before anything is allocated or sliced. The
// accepting path is zero-alloc; the rejecting paths build one
// detailed error and the connection dies.
//
//thedb:noalloc
func DecodeFrame(b []byte, maxPayload int) (f Frame, n int, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFrame
	}
	if len(b) < HeaderSize {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, 0, fmt.Errorf("%w: frame header (%d of %d bytes)", ErrTruncated, len(b), HeaderSize)
	}
	if got := binary.LittleEndian.Uint16(b[0:2]); got != Magic {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, 0, fmt.Errorf("%w: %#04x", ErrBadMagic, got)
	}
	f.Version = b[2]
	if f.Version != Version {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, 0, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, f.Version, Version)
	}
	f.Op = b[3]
	f.ID = binary.LittleEndian.Uint64(b[4:12])
	length := binary.LittleEndian.Uint32(b[12:16])
	if uint64(length) > uint64(maxPayload) {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, maxPayload)
	}
	if uint64(len(b)-HeaderSize) < uint64(length) {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, 0, fmt.Errorf("%w: frame body (%d of %d bytes)", ErrTruncated, len(b)-HeaderSize, length)
	}
	f.Payload = b[HeaderSize : HeaderSize+int(length)]
	return f, HeaderSize + int(length), nil
}

// Reader pulls frames off a byte stream. It owns a reusable payload
// buffer: the returned Frame's payload is valid only until the next
// call to Next.
type Reader struct {
	br  *bufio.Reader
	max int
	buf []byte
}

// NewReader wraps r. maxPayload bounds accepted frame payloads
// (<= 0 means DefaultMaxFrame); the buffer grows to the largest frame
// actually seen, never to a hostile length field.
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), max: maxPayload}
}

// Next reads one frame. io.EOF means the peer closed cleanly between
// frames; a partial frame surfaces as io.ErrUnexpectedEOF. The
// steady-state path reads into the reused payload buffer without
// allocating.
//
//thedb:noalloc
func (r *Reader) Next() (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	var f Frame
	if got := binary.LittleEndian.Uint16(hdr[0:2]); got != Magic {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, fmt.Errorf("%w: %#04x", ErrBadMagic, got)
	}
	f.Version = hdr[2]
	if f.Version != Version {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, f.Version, Version)
	}
	f.Op = hdr[3]
	f.ID = binary.LittleEndian.Uint64(hdr[4:12])
	length := binary.LittleEndian.Uint32(hdr[12:16])
	if uint64(length) > uint64(r.max) {
		//thedb:nolint:noalloc cold reject path: a malformed frame tears down the connection, never the commit path
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, r.max)
	}
	if cap(r.buf) < int(length) {
		//thedb:nolint:noalloc amortized growth: the buffer grows to the largest frame actually seen, then is reused for every later frame
		r.buf = make([]byte, length)
	}
	r.buf = r.buf[:length]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f.Payload = r.buf
	return f, nil
}
