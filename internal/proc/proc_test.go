package proc

import (
	"strings"
	"testing"
	"testing/quick"

	"thedb/internal/storage"
)

// nopBody satisfies the Validate requirement for structural tests.
func nopBody(OpCtx) error { return nil }

func mkSpec(ops ...Op) *Spec {
	return &Spec{
		Name:   "T",
		Params: []string{"a"},
		Plan: func(b *Builder, _ *Env) {
			for _, o := range ops {
				o.Body = nopBody
				b.Op(o)
			}
		},
	}
}

func TestKeyAndValueDependencies(t *testing.T) {
	spec := mkSpec(
		Op{Name: "p", KeyReads: []string{"a"}, Writes: []string{"x", "y"}},
		Op{Name: "kchild", KeyReads: []string{"x"}},
		Op{Name: "vchild", ValReads: []string{"y"}},
		Op{Name: "both", KeyReads: []string{"x"}, ValReads: []string{"y"}},
	)
	prog := spec.Instantiate(NewEnv())
	p := prog.Op(0)
	if got := ids(p.KeyChildren()); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("key children = %v", got)
	}
	// Op 3 reads x as key and y as value from the same parent: the
	// key dependency subsumes the value one (re-execution covers
	// both), so it must appear once, as a key child.
	if got := ids(p.ValChildren()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("val children = %v", got)
	}
	if prog.Independent {
		t.Fatal("program with key deps classified independent")
	}
}

func TestLastDefinitionWins(t *testing.T) {
	spec := mkSpec(
		Op{Name: "def1", Writes: []string{"x"}},
		Op{Name: "def2", Writes: []string{"x"}},
		Op{Name: "use", ValReads: []string{"x"}},
	)
	prog := spec.Instantiate(NewEnv())
	if n := len(prog.Op(0).ValChildren()); n != 0 {
		t.Fatalf("stale definition has %d children", n)
	}
	if got := ids(prog.Op(1).ValChildren()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("latest definition children = %v", got)
	}
}

func TestIndependentClassification(t *testing.T) {
	indep := mkSpec(
		Op{Name: "r", KeyReads: []string{"a"}, Writes: []string{"v"}},
		Op{Name: "w", KeyReads: []string{"a"}, ValReads: []string{"v"}},
	)
	if !indep.Instantiate(NewEnv()).Independent {
		t.Fatal("RMW on argument keys must be independent")
	}
	dep := mkSpec(
		Op{Name: "r", KeyReads: []string{"a"}, Writes: []string{"v"}},
		Op{Name: "w", KeyReads: []string{"v"}},
	)
	if dep.Instantiate(NewEnv()).Independent {
		t.Fatal("derived key must make the program dependent")
	}
}

func TestGraphRendering(t *testing.T) {
	spec := mkSpec(
		Op{Name: "read", KeyReads: []string{"a"}, Writes: []string{"x"}},
		Op{Name: "use", KeyReads: []string{"x"}},
	)
	g := spec.Instantiate(NewEnv()).Graph()
	if !strings.Contains(g, "0 read: K->1") {
		t.Fatalf("graph rendering:\n%s", g)
	}
}

func TestValidate(t *testing.T) {
	ok := mkSpec(Op{Name: "a"}, Op{Name: "b"})
	if err := ok.Instantiate(NewEnv()).Validate(); err != nil {
		t.Fatal(err)
	}
	noBody := &Spec{
		Name: "NB",
		Plan: func(b *Builder, _ *Env) { b.Op(Op{Name: "x"}) },
	}
	if err := noBody.Instantiate(NewEnv()).Validate(); err == nil {
		t.Fatal("missing body not rejected")
	}
	writesParam := &Spec{
		Name:   "WP",
		Params: []string{"a"},
		Plan: func(b *Builder, _ *Env) {
			b.Op(Op{Name: "x", Writes: []string{"a"}, Body: nopBody})
		},
	}
	if err := writesParam.Instantiate(NewEnv()).Validate(); err == nil {
		t.Fatal("parameter write not rejected")
	}
}

func TestEnvTypedAccess(t *testing.T) {
	e := NewEnv()
	e.SetInt("i", 42)
	e.SetStr("s", "hi")
	e.SetFloat("f", 2.5)
	e.SetVals("vs", []storage.Value{storage.Int(1), storage.Int(2)})
	if e.Int("i") != 42 || e.Str("s") != "hi" || e.Float("f") != 2.5 {
		t.Fatal("scalar round trips failed")
	}
	if len(e.Vals("vs")) != 2 {
		t.Fatal("slice round trip failed")
	}
	if !e.Has("i") || e.Has("nope") {
		t.Fatal("Has broken")
	}
	c := e.Clone()
	c.SetInt("i", 1)
	if e.Int("i") != 42 {
		t.Fatal("clone aliases parent")
	}
}

func TestEnvPanicsOnUndefined(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic reading undefined variable")
		}
	}()
	NewEnv().Int("missing")
}

// TestCheckedModeCatchesUndeclaredAccess verifies the honesty checker
// the analyzer's soundness rests on: an op body touching variables
// outside its declared sets is reported.
func TestCheckedModeCatchesUndeclaredAccess(t *testing.T) {
	e := NewEnv()
	e.SetInt("declared", 1)
	e.SetInt("hidden", 2)
	op := &Op{Name: "x", ValReads: []string{"declared"}, Writes: []string{"out"}}

	err := e.CheckOp(op, func() error {
		e.SetInt("out", e.Int("declared"))
		return nil
	})
	if err != nil {
		t.Fatalf("compliant body flagged: %v", err)
	}

	err = e.CheckOp(op, func() error {
		e.SetInt("out", e.Int("hidden")) // undeclared read
		return nil
	})
	if err == nil {
		t.Fatal("undeclared read not caught")
	}

	err = e.CheckOp(op, func() error {
		e.SetInt("sneaky", 1) // undeclared write
		return nil
	})
	if err == nil {
		t.Fatal("undeclared write not caught")
	}
}

// TestDependencyEdgesAlwaysForward is the property drainHealQueue's
// correctness rests on: every dependency edge points from a lower op
// ID to a higher one.
func TestDependencyEdgesAlwaysForward(t *testing.T) {
	vars := []string{"a", "b", "c", "d"}
	check := func(shape []uint8) bool {
		var ops []Op
		for i, s := range shape {
			if i > 8 {
				break
			}
			op := Op{Name: "op"}
			op.KeyReads = []string{vars[int(s)%len(vars)]}
			op.ValReads = []string{vars[int(s>>2)%len(vars)]}
			op.Writes = []string{vars[int(s>>4)%len(vars)]}
			ops = append(ops, op)
		}
		prog := mkSpec(ops...).Instantiate(NewEnv())
		for _, op := range prog.Ops {
			for _, c := range op.KeyChildren() {
				if c.ID <= op.ID {
					return false
				}
			}
			for _, c := range op.ValChildren() {
				if c.ID <= op.ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func ids(ops []*Op) []int {
	var out []int
	for _, o := range ops {
		out = append(out, o.ID)
	}
	return out
}

func TestDOTRendering(t *testing.T) {
	spec := mkSpec(
		Op{Name: "read", KeyReads: []string{"a"}, Writes: []string{"x", "y"}},
		Op{Name: "kchild", KeyReads: []string{"x"}},
		Op{Name: "vchild", ValReads: []string{"y"}},
	)
	dot := spec.Instantiate(NewEnv()).Graph()
	_ = dot
	d := spec.Instantiate(NewEnv()).DOT()
	for _, want := range []string{
		`digraph "T"`,
		`op0 -> op1 [style=solid]`,
		`op0 -> op2 [style=dashed]`,
	} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}
