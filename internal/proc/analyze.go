package proc

import (
	"fmt"
	"sort"
	"strings"
)

// Program is one instantiated procedure invocation: its operations in
// program order plus the program dependency graph (§3).
type Program struct {
	Spec *Spec
	Ops  []*Op

	// Independent reports whether the invocation's read/write set is
	// determined by its arguments alone: no operation's accessing key
	// depends on another operation's output and no operation scans a
	// key range whose extent depends on database state. Independent
	// transactions take the merged validate+write fast path and can
	// never abort under healing (§4.6).
	Independent bool
}

// analyze infers key and value dependencies from variable flow.
// Variable definitions follow program order: an operation reading
// variable v depends on the latest preceding operation that writes v
// (static single-assignment is not required; procedures in practice
// assign each variable once).
func (p *Program) analyze() {
	lastDef := make(map[string]*Op)
	p.Independent = true
	for _, op := range p.Ops {
		// De-duplicate edges per (parent, kind).
		keyParents := make(map[*Op]bool)
		valParents := make(map[*Op]bool)
		for _, v := range op.KeyReads {
			if def := lastDef[v]; def != nil && !keyParents[def] {
				keyParents[def] = true
				def.keyChildren = append(def.keyChildren, op)
				op.parents++
				p.Independent = false
			}
		}
		for _, v := range op.ValReads {
			if def := lastDef[v]; def != nil && !valParents[def] && !keyParents[def] {
				valParents[def] = true
				def.valChildren = append(def.valChildren, op)
				op.parents++
			}
		}
		for _, v := range op.Writes {
			lastDef[v] = op
		}
	}
}

// Op returns the operation with the given bookmark.
func (p *Program) Op(id int) *Op { return p.Ops[id] }

// Graph renders the program dependency graph in a stable textual form
// mirroring the paper's Figure 3: one line per edge, "K" for key
// dependencies and "V" for value dependencies.
func (p *Program) Graph() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", p.Spec.Name)
	for _, op := range p.Ops {
		edges := make([]string, 0, len(op.keyChildren)+len(op.valChildren))
		for _, c := range op.keyChildren {
			edges = append(edges, fmt.Sprintf("K->%d", c.ID))
		}
		for _, c := range op.valChildren {
			edges = append(edges, fmt.Sprintf("V->%d", c.ID))
		}
		sort.Strings(edges)
		fmt.Fprintf(&sb, "  %d %s: %s\n", op.ID, op.Name, strings.Join(edges, " "))
	}
	return sb.String()
}

// Validate checks structural well-formedness: forward-only variable
// flow (guaranteed by construction), unique op IDs, and that every
// declared write set is disjoint from the procedure parameters.
func (p *Program) Validate() error {
	seen := make(map[int]bool)
	params := make(map[string]bool)
	for _, a := range p.Spec.Params {
		params[a] = true
	}
	for i, op := range p.Ops {
		if op.ID != i {
			return fmt.Errorf("proc %s: op %q has id %d at position %d", p.Spec.Name, op.Name, op.ID, i)
		}
		if seen[op.ID] {
			return fmt.Errorf("proc %s: duplicate op id %d", p.Spec.Name, op.ID)
		}
		seen[op.ID] = true
		if op.Body == nil {
			return fmt.Errorf("proc %s: op %d %q has no body", p.Spec.Name, op.ID, op.Name)
		}
		for _, w := range op.Writes {
			if params[w] {
				return fmt.Errorf("proc %s: op %d writes parameter %q", p.Spec.Name, op.ID, w)
			}
		}
	}
	return nil
}

// DOT renders the program dependency graph in Graphviz format: solid
// edges are key dependencies, dashed edges are value dependencies —
// the visual convention of the paper's Figures 3 and 15.
func (p *Program) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", p.Spec.Name)
	for _, op := range p.Ops {
		fmt.Fprintf(&sb, "  op%d [label=\"%d %s\"];\n", op.ID, op.ID, op.Name)
	}
	for _, op := range p.Ops {
		for _, c := range op.keyChildren {
			fmt.Fprintf(&sb, "  op%d -> op%d [style=solid];\n", op.ID, c.ID)
		}
		for _, c := range op.valChildren {
			fmt.Fprintf(&sb, "  op%d -> op%d [style=dashed];\n", op.ID, c.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
