package proc

import (
	"fmt"
	"sort"

	"thedb/internal/storage"
)

// Env is a transaction's variable environment: procedure arguments
// plus every variable produced by its operations. Values are scalars
// (storage.Value) or small collections (slices) for range-read
// results.
//
// In checked mode the environment verifies that each operation only
// touches the variables it declared, which is how tests guarantee the
// honesty of the declared dependency information the analyzer relies
// on.
type Env struct {
	vals map[string]any

	// checked-mode state
	checking  bool
	mayRead   map[string]bool
	mayWrite  map[string]bool
	violation error
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{vals: make(map[string]any)} }

// Clone returns a deep-enough copy: the map is copied, values are
// shared (they are treated as immutable).
func (e *Env) Clone() *Env {
	c := NewEnv()
	for k, v := range e.vals {
		c.vals[k] = v
	}
	return c
}

// Set stores v under name.
func (e *Env) Set(name string, v any) {
	if e.checking && !e.mayWrite[name] {
		e.violate("write", name)
	}
	e.vals[name] = v
}

// Get returns the raw value stored under name, which must exist.
func (e *Env) Get(name string) any {
	if e.checking && !e.mayRead[name] {
		e.violate("read", name)
	}
	v, ok := e.vals[name]
	if !ok {
		panic(fmt.Sprintf("proc: undefined variable %q", name))
	}
	return v
}

// Has reports whether name is defined.
func (e *Env) Has(name string) bool {
	_, ok := e.vals[name]
	return ok
}

// Val returns the storage.Value stored under name.
func (e *Env) Val(name string) storage.Value {
	v, ok := e.Get(name).(storage.Value)
	if !ok {
		panic(fmt.Sprintf("proc: variable %q is not a Value", name))
	}
	return v
}

// Int returns the integer stored under name.
func (e *Env) Int(name string) int64 { return e.Val(name).Int() }

// Float returns the float stored under name.
func (e *Env) Float(name string) float64 { return e.Val(name).Float() }

// Str returns the string stored under name.
func (e *Env) Str(name string) string { return e.Val(name).Str() }

// SetVal stores a scalar value.
func (e *Env) SetVal(name string, v storage.Value) { e.Set(name, v) }

// SetInt stores an integer scalar.
func (e *Env) SetInt(name string, v int64) { e.Set(name, storage.Int(v)) }

// SetFloat stores a float scalar.
func (e *Env) SetFloat(name string, v float64) { e.Set(name, storage.Float(v)) }

// SetStr stores a string scalar.
func (e *Env) SetStr(name string, v string) { e.Set(name, storage.Str(v)) }

// Vals returns the slice of values stored under name (range-read
// outputs).
func (e *Env) Vals(name string) []storage.Value {
	v, ok := e.Get(name).([]storage.Value)
	if !ok {
		panic(fmt.Sprintf("proc: variable %q is not a []Value", name))
	}
	return v
}

// SetVals stores a slice of values.
func (e *Env) SetVals(name string, v []storage.Value) { e.Set(name, v) }

// Each calls fn for every defined variable in sorted name order — the
// deterministic enumeration the network result encoding relies on. It
// bypasses checked mode: enumeration happens after the transaction
// has run, when the declared-access discipline no longer applies.
func (e *Env) Each(fn func(name string, v any)) {
	names := make([]string, 0, len(e.vals))
	for k := range e.vals {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, e.vals[n])
	}
}

// beginOp enters checked mode for one operation; endOp leaves it.
// Arguments and already-defined variables outside the declared sets
// stay inaccessible, so an undeclared dependency is caught the first
// time a body sneaks a read.
func (e *Env) beginOp(op *Op, params []string) {
	e.checking = true
	e.mayRead = make(map[string]bool, len(op.KeyReads)+len(op.ValReads)+len(op.Writes))
	e.mayWrite = make(map[string]bool, len(op.Writes))
	for _, v := range op.KeyReads {
		e.mayRead[v] = true
	}
	for _, v := range op.ValReads {
		e.mayRead[v] = true
	}
	for _, v := range op.Writes {
		// An op may read back what it wrote within its own body.
		e.mayRead[v] = true
		e.mayWrite[v] = true
	}
	e.violation = nil
	_ = params
}

func (e *Env) endOp() error {
	e.checking = false
	v := e.violation
	e.violation = nil
	return v
}

func (e *Env) violate(kind, name string) {
	if e.violation == nil {
		e.violation = fmt.Errorf("proc: undeclared %s of variable %q", kind, name)
	}
}

// CheckOp runs fn with access checking restricted to op's declared
// variable sets, returning an error on any undeclared access. Used by
// the analyzer's verification mode and by tests.
func (e *Env) CheckOp(op *Op, fn func() error) error {
	e.beginOp(op, nil)
	err := fn()
	if verr := e.endOp(); verr != nil {
		return verr
	}
	return err
}
