// Package proc defines THEDB's stored-procedure intermediate
// representation and the static dependency analyzer.
//
// The paper extracts a program dependency graph from each stored
// procedure with an LLVM pass (§3). Here procedures are written
// against a small declarative IR instead: a procedure is a sequence
// of operations, each declaring the environment variables it consumes
// (split into key inputs and value inputs) and the variables it
// produces. The analyzer infers exactly the paper's two dependency
// classes from variable flow:
//
//   - op B is key-dependent on op A when A produces a variable that B
//     uses to compute an accessing key;
//   - op B is value-dependent on op A when A produces a variable that
//     B uses as a non-key input.
//
// The engine (package core) executes operation bodies through the
// OpCtx interface, recording every record access in the thread-local
// access cache so that the healing phase can re-run an individual
// operation either in cached mode (value-dependent restoration: reuse
// the recorded record addresses, skip index lookups) or in
// re-execution mode (key-dependent restoration: fresh index lookups,
// read/write-set membership update).
package proc

import (
	"fmt"

	"thedb/internal/storage"
)

// Op is one operation instance of a procedure invocation. IDs are
// assigned in program order and serve as the paper's bookmarks.
type Op struct {
	// ID is the operation's bookmark: its position in program order.
	ID int

	// Name labels the operation for diagnostics and graph dumps
	// (the paper uses source line numbers).
	Name string

	// KeyReads lists environment variables this operation uses to
	// compute accessing keys (or scan bounds).
	KeyReads []string

	// ValReads lists environment variables used as non-key inputs
	// (update values, predicates, arithmetic).
	ValReads []string

	// Writes lists environment variables this operation produces.
	Writes []string

	// Body performs the operation's record accesses and computation
	// through ctx. It must be deterministic given the environment
	// variables it declared, and must not touch undeclared variables
	// (enforced when the environment runs in checked mode).
	Body func(ctx OpCtx) error

	// keyChildren/valChildren are filled by the analyzer.
	keyChildren []*Op
	valChildren []*Op
	parents     int // number of incoming dependency edges
}

// KeyChildren returns the operations key-dependent on op.
func (o *Op) KeyChildren() []*Op { return o.keyChildren }

// ValChildren returns the operations value-dependent on op.
func (o *Op) ValChildren() []*Op { return o.valChildren }

// OpCtx is the execution context the engine hands to operation
// bodies. Every record access made through it is registered in the
// calling transaction's read/write set and in the operation's access
// cache entry.
type OpCtx interface {
	// Env returns the transaction's variable environment.
	Env() *Env

	// Read fetches the record stored under key, returning its row
	// image and whether the record exists (is visible). Reading a
	// non-existent key registers a dummy record in the read set so
	// that a later insert by a concurrent transaction is detected
	// (§4.7.1). cols lists the columns the caller will consume; nil
	// means all columns. Column tracking drives false-invalidation
	// elimination (§4.5).
	Read(table string, key storage.Key, cols []int) (storage.Tuple, bool, error)

	// Write buffers an update of the listed columns. The write is
	// installed only at commit.
	Write(table string, key storage.Key, cols []int, vals []storage.Value) error

	// Insert buffers creation of a new record. It fails the
	// transaction if a visible record already exists under key.
	Insert(table string, key storage.Key, tuple storage.Tuple) error

	// Delete buffers removal of the record under key.
	Delete(table string, key storage.Key) error

	// Scan visits visible records with lo <= key <= hi in key order;
	// fn returning false stops early. limit > 0 caps the rows
	// visited. The scanned leaf versions are recorded for phantom
	// validation (§4.7.2).
	Scan(table string, lo, hi storage.Key, limit int, fn func(key storage.Key, row storage.Tuple) bool) error

	// ScanMin returns the first visible record in [lo, hi], the
	// phantom-safe "oldest entry" probe.
	ScanMin(table string, lo, hi storage.Key) (storage.Key, storage.Tuple, bool, error)

	// ScanSec visits visible records via a secondary index in
	// secondary-key order over [lo, hi].
	ScanSec(table, index string, lo, hi string, limit int, fn func(pk storage.Key, row storage.Tuple) bool) error
}

// AbortError is returned (or wrapped) by operation bodies to abort
// the transaction for application reasons (user rollback, integrity
// violation). The engine does not retry user aborts.
type AbortError struct{ Reason string }

func (e *AbortError) Error() string { return "transaction aborted: " + e.Reason }

// UserAbort builds an application-initiated abort error.
func UserAbort(reason string) error { return &AbortError{Reason: reason} }

// Spec is a stored procedure definition. Plan expands the procedure
// into its operation list for a given argument vector; the expansion
// may depend on argument values (loop bounds), never on database
// state, which keeps the dependency graph static per invocation as
// required by §3.
type Spec struct {
	Name   string
	Params []string
	Plan   func(b *Builder, args *Env)
}

// Builder collects the operations of one invocation in program order.
type Builder struct {
	ops []*Op
}

// Op appends an operation. Returns the operation for tests that want
// to inspect it.
func (b *Builder) Op(op Op) *Op {
	o := op
	o.ID = len(b.ops)
	if o.Name == "" {
		o.Name = fmt.Sprintf("op%d", o.ID)
	}
	b.ops = append(b.ops, &o)
	return b.ops[len(b.ops)-1]
}

// Instantiate expands the procedure for args and runs the dependency
// analyzer. The returned Program carries the operations and the
// program dependency graph.
func (s *Spec) Instantiate(args *Env) *Program {
	b := &Builder{}
	s.Plan(b, args)
	p := &Program{Spec: s, Ops: b.ops}
	p.analyze()
	return p
}
