package bench

import (
	"fmt"

	"thedb/internal/metrics"
	"thedb/internal/workload/tpcc"
	"thedb/internal/workload/zipf"
)

// Experiment is one reproducible paper result.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Opts)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig8", "OCC/Silo throughput vs warehouses, with and without validation", Fig8},
		{"fig9", "abort-and-restart overhead and abort rate vs warehouses", Fig9},
		{"fig10", "all systems: throughput vs warehouses", Fig10},
		{"fig11", "throughput vs workers at WH=4/16/48", Fig11},
		{"fig12", "throughput vs % cross-partition transactions", Fig12},
		{"tab1", "TPC-C NewOrder/Delivery latency histograms (WH=4)", Table1},
		{"fig13", "throughput vs % ad-hoc transactions (WH=4)", Fig13},
		{"tab2", "Zipf key popularity and Smallbank abort rates vs theta", Table2},
		{"fig14", "Smallbank throughput vs theta", Fig14},
		{"fig15", "program dependency graphs of NewOrder and Delivery", Fig15},
		{"tab3", "Smallbank latency percentiles vs theta", Table3},
		{"tab4", "runtime overhead: access cache and read copies", Table4},
		{"fig16", "value vs command logging throughput (WH=12)", Fig16},
		{"fig17", "THEDB-SILO sanity: throughput vs warehouses", Fig17},
		{"fig18", "THEDB-DT linear scaling in partitions (0% cross)", Fig18},
		{"tab5", "TPC-C latency histograms at low contention (WH=24)", Table5},
		{"fig19", "runtime phase breakdown: THEDB vs THEDB-OCC", Fig19},
		{"fig20", "validation-order rearrangement: THEDB vs THEDB-W", Fig20},
		{"tab6", "deadlock-prevention abort rate: THEDB vs THEDB-W", Table6},
		{"xlock", "ablation: bounded no-wait lock attempts during healing", AblLockAttempts},
		{"xinterleave", "ablation: multicore-interleaving emulation on/off", AblInterleave},
	}
}

// warehouseSweep returns the paper's contention axis.
func warehouseSweep(o Opts) []int {
	if o.Quick {
		return []int{2, 8, 48}
	}
	return []int{2, 4, 8, 16, 32, 48}
}

func workerSweep(o Opts) []int {
	ws := []int{1, 2, 4, 8}
	if o.Workers > 8 {
		ws = append(ws, o.Workers)
	}
	if o.Quick {
		return []int{1, o.Workers}
	}
	return ws
}

// Fig8 reproduces Figure 8: THEDB-OCC and THEDB-SILO throughput vs
// warehouse count, plus their validation-disabled peaks.
func Fig8(o Opts) {
	o.Defaults()
	systems := []System{OCC, OCCMinus, SILO, SILOMinus}
	t := &Table{
		ID:     "fig8",
		Title:  "TPC-C throughput (K tps) vs #warehouses, " + fmt.Sprint(o.Workers) + " workers",
		Header: append([]string{"#warehouses"}, systemNames(systems)...),
		Notes: []string{
			"paper: both OCC variants collapse at low warehouse counts; disabling validation recovers 3-12x (peak without aborts)",
		},
	}
	for _, wh := range warehouseSweep(o) {
		row := []string{fmt.Sprint(wh)}
		for _, sys := range systems {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
				mix: tpcc.StandardMix(), duration: o.Duration})
			row = append(row, ktps(res.agg.TPS()))
		}
		t.AddRow(row...)
	}
	t.Print(o.Out)
}

// Fig9 reproduces Figure 9: share of execution time wasted in
// abort-and-restart (a) and the abort rate (b).
func Fig9(o Opts) {
	o.Defaults()
	systems := []System{OCC, SILO}
	t := &Table{
		ID:     "fig9",
		Title:  "abort-and-restart overhead vs #warehouses",
		Header: []string{"#warehouses", "OCC %time-abort", "SILO %time-abort", "OCC abort-rate", "SILO abort-rate"},
		Notes: []string{
			"paper at WH=2: OCC 69% / SILO 91% of time in abort-restart; abort rate grows as contention rises",
		},
	}
	for _, wh := range warehouseSweep(o) {
		row := []string{fmt.Sprint(wh)}
		var rates []string
		for _, sys := range systems {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
				mix: tpcc.StandardMix(), duration: o.Duration, detailed: true})
			row = append(row, pct(res.agg.PhaseFraction(metrics.PhaseAbort)))
			rates = append(rates, f(res.agg.AbortRate()))
		}
		row = append(row, rates...)
		t.AddRow(row...)
	}
	t.Print(o.Out)
}

// Fig10 reproduces Figure 10: all systems vs warehouse count.
func Fig10(o Opts) {
	o.Defaults()
	systems := append(append([]System{}, AllSystems...), OCCMinus)
	t := &Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("TPC-C throughput (K tps) vs #warehouses, %d workers", o.Workers),
		Header: append([]string{"#warehouses"}, systemNames(systems)...),
		Notes: []string{
			"paper: THEDB stays near THEDB-OCC-'s no-abort peak as contention rises; all baselines drop sharply at WH=2",
		},
	}
	for _, wh := range warehouseSweep(o) {
		row := []string{fmt.Sprint(wh)}
		for _, sys := range systems {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
				mix: tpcc.StandardMix(), duration: o.Duration})
			row = append(row, ktps(res.agg.TPS()))
		}
		t.AddRow(row...)
	}
	t.Print(o.Out)
}

// Fig11 reproduces Figure 11: throughput vs worker count at three
// contention levels.
func Fig11(o Opts) {
	o.Defaults()
	for _, wh := range []int{4, 16, 48} {
		t := &Table{
			ID:     "fig11",
			Title:  fmt.Sprintf("TPC-C throughput (K tps) vs workers, WH=%d", wh),
			Header: append([]string{"workers"}, systemNames(AllSystems)...),
			Notes: []string{
				"paper (WH=4): THEDB 2.3x over 2PL and 6.2x over SILO at full scale; DT capped by warehouse count",
			},
		}
		for _, wk := range workerSweep(o) {
			row := []string{fmt.Sprint(wk)}
			for _, sys := range AllSystems {
				res := runTPCC(tpccRun{system: sys, workers: wk, warehouses: wh,
					mix: tpcc.StandardMix(), duration: o.Duration})
				row = append(row, ktps(res.agg.TPS()))
			}
			t.AddRow(row...)
		}
		t.Print(o.Out)
		if o.Quick {
			break
		}
	}
}

// Fig12 reproduces Figure 12: throughput vs the share of
// cross-partition transactions; THEDB-DT collapses, everyone else is
// flat.
func Fig12(o Opts) {
	o.Defaults()
	systems := []System{THEDB, OCC, SILO, TPL, DT}
	whs := []int{4, 16, 48}
	if o.Quick {
		whs = []int{4}
	}
	for _, wh := range whs {
		t := &Table{
			ID:     "fig12",
			Title:  fmt.Sprintf("TPC-C throughput (K tps) vs %% cross-partition, WH=%d", wh),
			Header: append([]string{"%cross"}, systemNames(systems)...),
			Notes: []string{
				"paper: only THEDB-DT degrades with cross-partition share (coarse partition locks)",
			},
		}
		for _, cross := range []int{0, 1, 5, 10, 20} {
			mix := tpcc.StandardMix()
			mix.RemotePct = cross
			row := []string{fmt.Sprint(cross)}
			for _, sys := range systems {
				res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
					mix: mix, duration: o.Duration})
				row = append(row, ktps(res.agg.TPS()))
			}
			t.AddRow(row...)
		}
		t.Print(o.Out)
	}
}

// latencyBuckets are the paper's Table 1/5 bucket edges in µs. On
// this emulated-multicore substrate absolute latencies run roughly
// latencyScale times the paper's testbed (one physical core,
// per-operation scheduler yields), so the edges are scaled up by that
// factor; the *distribution shape* across buckets is the reproduction
// target.
const latencyScale = 32

var newOrderBuckets = [][2]float64{
	{10, 20}, {20, 40}, {40, 80}, {80, 160}, {160, 320}, {320, 640}, {640, 1e15},
}
var deliveryBuckets = [][2]float64{
	{10, 80}, {80, 160}, {160, 320}, {320, 640}, {640, 1280}, {1280, 2560}, {2560, 5120}, {5120, 1e15},
}

// latencyTable renders a Table 1/5-style histogram at the given
// warehouse count.
func latencyTable(o Opts, id string, wh int) {
	systems := []System{THEDB, OCC, SILO, TPL, OCCMinus, SILOMinus}
	for _, procName := range []string{tpcc.ProcNewOrder, tpcc.ProcDelivery} {
		buckets := newOrderBuckets
		if procName == tpcc.ProcDelivery {
			buckets = deliveryBuckets
		}
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("%s latency distribution (bucket edges = paper us x%d), WH=%d, %d workers", procName, latencyScale, wh, o.Workers),
			Header: append([]string{"latency(us)"}, systemNames(systems)...),
			Notes: []string{
				"paper: THEDB's distribution is tight (no restarts); OCC/SILO/2PL spread into the long buckets under contention",
			},
		}
		shares := make([]*Sampler, len(systems))
		for i, sys := range systems {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
				mix: tpcc.StandardMix(), duration: o.Duration, procOnly: procName})
			s := res.perProc[procName]
			if s == nil {
				s = &Sampler{}
			}
			shares[i] = s
		}
		for _, b := range buckets {
			label := fmt.Sprintf("%.0fx-%.0fx", b[0], b[1])
			if b[1] > 1e14 {
				label = fmt.Sprintf("%.0fx-INF", b[0])
			}
			row := []string{label}
			for i := range systems {
				row = append(row, pct(shares[i].Share(b[0]*latencyScale, b[1]*latencyScale)))
			}
			t.AddRow(row...)
		}
		t.Print(o.Out)
	}
}

// Table1 reproduces Table 1 (WH=4, high contention).
func Table1(o Opts) {
	o.Defaults()
	latencyTable(o, "tab1", 4)
}

// Table5 reproduces Table 5 (WH=24, low contention).
func Table5(o Opts) {
	o.Defaults()
	latencyTable(o, "tab5", 24)
}

// Fig13 reproduces Figure 13: THEDB degrades smoothly to plain OCC as
// the ad-hoc share grows (§4.8).
func Fig13(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("THEDB throughput (K tps) vs %% ad-hoc transactions, WH=4, %d workers", o.Workers),
		Header: []string{"%adhoc", "THEDB", "THEDB-OCC (floor)"},
		Notes: []string{
			"paper: smooth degradation from full healing to conventional OCC at 100% ad-hoc",
		},
	}
	occFloor := runTPCC(tpccRun{system: OCC, workers: o.Workers, warehouses: 4,
		mix: tpcc.StandardMix(), duration: o.Duration})
	for _, adhoc := range []int{0, 25, 50, 75, 100} {
		res := runTPCC(tpccRun{system: THEDB, workers: o.Workers, warehouses: 4,
			mix: tpcc.StandardMix(), duration: o.Duration, adhocPct: adhoc})
		t.AddRow(fmt.Sprint(adhoc), ktps(res.agg.TPS()), ktps(occFloor.agg.TPS()))
	}
	t.Print(o.Out)
}

// thetaSweep is the Smallbank contention axis.
func thetaSweep(o Opts) []float64 {
	if o.Quick {
		return []float64{0.1, 0.5, 0.9}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Table2 reproduces Table 2: analytic Zipf key popularity plus
// measured abort rates of THEDB / THEDB-OCC / THEDB-SILO.
func Table2(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "tab2",
		Title:  "Zipf access shares (1000 keys) and Smallbank abort rates",
		Header: []string{"theta", "1st", "2nd", "10th", "100th", "abort THEDB/OCC/SILO"},
		Notes: []string{
			"paper: THEDB aborts nothing at any theta; OCC/SILO climb to 0.32/0.40 at theta=0.9",
		},
	}
	for _, theta := range thetaSweep(o) {
		g := zipf.New(1000, theta)
		var rates []string
		for _, sys := range []System{THEDB, OCC, SILO} {
			res := runSmallbank(smallbankRun{system: sys, workers: o.Workers,
				theta: theta, duration: o.Duration})
			rates = append(rates, f(res.agg.AbortRate()))
		}
		t.AddRow(
			fmt.Sprintf("%.1f", theta),
			pct(g.Probability(0)), pct(g.Probability(1)), pct(g.Probability(9)), pct(g.Probability(99)),
			rates[0]+" / "+rates[1]+" / "+rates[2],
		)
	}
	t.Print(o.Out)
}

// Fig14 reproduces Figure 14: Smallbank throughput vs theta.
func Fig14(o Opts) {
	o.Defaults()
	systems := []System{THEDB, OCC, SILO, TPL, OCCMinus}
	t := &Table{
		ID:     "fig14",
		Title:  fmt.Sprintf("Smallbank throughput (K tps) vs theta, %d workers", o.Workers),
		Header: append([]string{"theta"}, systemNames(systems)...),
		Notes: []string{
			"paper: SILO slightly ahead at theta=0.1, worst at 0.9; THEDB stable, ~4.5x over baselines at high skew",
		},
	}
	for _, theta := range thetaSweep(o) {
		row := []string{fmt.Sprintf("%.1f", theta)}
		for _, sys := range systems {
			res := runSmallbank(smallbankRun{system: sys, workers: o.Workers,
				theta: theta, duration: o.Duration})
			row = append(row, ktps(res.agg.TPS()))
		}
		t.AddRow(row...)
	}
	t.Print(o.Out)
}

// Fig15 reproduces Appendix B's Figure 15: the program dependency
// graphs the static analyzer extracts for NewOrder and Delivery.
// Solid edges in the paper are key dependencies (K here), dashed are
// value dependencies (V).
func Fig15(o Opts) {
	o.Defaults()
	fmt.Fprintln(o.Out, "== fig15: program dependency graphs (K = key dep, V = value dep) ==")
	for _, g := range tpcc.DependencyGraphs() {
		fmt.Fprintln(o.Out, g)
	}
	fmt.Fprintln(o.Out, "note: paper Fig. 15: Delivery's graphs chain oldest->order->lines->customer per district; NewOrder fans out from the district read")
	fmt.Fprintln(o.Out)
}

// Table3 reproduces Table 3: Smallbank latency percentiles.
func Table3(o Opts) {
	o.Defaults()
	systems := []System{THEDB, OCC, SILO}
	t := &Table{
		ID:     "tab3",
		Title:  fmt.Sprintf("Smallbank latency percentiles (us), %d workers", o.Workers),
		Header: []string{"theta", "pctile", "THEDB", "THEDB-OCC", "THEDB-SILO"},
		Notes: []string{
			"paper: similar at theta=0.5; at 0.9 the baselines' p95 blows up (36-43us vs THEDB's 11us scale)",
		},
	}
	for _, theta := range []float64{0.5, 0.7, 0.9} {
		lat := make([]*Sampler, len(systems))
		for i, sys := range systems {
			res := runSmallbank(smallbankRun{system: sys, workers: o.Workers,
				theta: theta, duration: o.Duration})
			lat[i] = res.latency
		}
		for _, p := range []float64{25, 80, 95} {
			row := []string{fmt.Sprintf("%.1f", theta), fmt.Sprintf("p%.0f", p)}
			for i := range systems {
				row = append(row, f(lat[i].Percentile(p)))
			}
			t.AddRow(row...)
		}
	}
	t.Print(o.Out)
}

// Table4 reproduces Table 4: the maintenance cost of the access cache
// and read copies on a contention-free workload (WH = workers, each
// worker pinned to its own warehouse).
func Table4(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "tab4",
		Title:  "THEDB throughput (K tps), contention-free (WH=workers): structure-maintenance overhead",
		Header: []string{"workers", "Normal", "+AccessCache", "+ReadCopy"},
		Notes: []string{
			"paper: access cache costs ~4%, read copies ~2% more — both negligible",
		},
	}
	for _, wk := range workerSweep(o) {
		mix := tpcc.Mix{NewOrderOnly: true}
		base := tpccRun{system: THEDB, workers: wk, warehouses: wk, mix: mix, duration: o.Duration}
		normal := base
		normal.noAccessCache, normal.noReadCopies = true, true
		cacheOnly := base
		cacheOnly.noReadCopies = true
		full := base
		r1 := runTPCC(normal)
		r2 := runTPCC(cacheOnly)
		r3 := runTPCC(full)
		t.AddRow(fmt.Sprint(wk), ktps(r1.agg.TPS()), ktps(r2.agg.TPS()), ktps(r3.agg.TPS()))
	}
	t.Print(o.Out)
}

// Fig16 reproduces Appendix C's logging experiment: value vs command
// logging against an in-memory sink (exactly the paper's setup).
func Fig16(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "fig16",
		Title:  fmt.Sprintf("THEDB throughput (K tps) with logging, WH=12, %d workers", o.Workers),
		Header: []string{"workers", "no-logging", "value-logging", "command-logging"},
		Notes: []string{
			"paper: value logging tracks command logging closely; the commit protocol is not the bottleneck",
		},
	}
	for _, wk := range workerSweep(o) {
		none := runTPCC(tpccRun{system: THEDB, workers: wk, warehouses: 12,
			mix: tpcc.StandardMix(), duration: o.Duration})
		value := runTPCC(tpccRun{system: THEDB, workers: wk, warehouses: 12,
			mix: tpcc.StandardMix(), duration: o.Duration, logging: true, logMode: 0})
		command := runTPCC(tpccRun{system: THEDB, workers: wk, warehouses: 12,
			mix: tpcc.StandardMix(), duration: o.Duration, logging: true, logMode: 1})
		t.AddRow(fmt.Sprint(wk), ktps(none.agg.TPS()), ktps(value.agg.TPS()), ktps(command.agg.TPS()))
	}
	t.Print(o.Out)
}

// Fig17 reproduces Appendix D's Silo sanity check, substituted per
// DESIGN.md §3: our THEDB-SILO swept over the contention axis must
// scale smoothly with warehouse count.
func Fig17(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "fig17",
		Title:  fmt.Sprintf("THEDB-SILO throughput (K tps) vs #warehouses, %d workers", o.Workers),
		Header: []string{"#warehouses", "THEDB-SILO"},
		Notes: []string{
			"substitution: the paper compares against the external Silo binary; we verify the reimplementation's contention profile",
		},
	}
	for _, wh := range warehouseSweep(o) {
		res := runTPCC(tpccRun{system: SILO, workers: o.Workers, warehouses: wh,
			mix: tpcc.StandardMix(), duration: o.Duration})
		t.AddRow(fmt.Sprint(wh), ktps(res.agg.TPS()))
	}
	t.Print(o.Out)
}

// Fig18 reproduces Appendix D's H-Store comparison, substituted:
// THEDB-DT throughput must grow with the partition count when the
// workload is perfectly partitionable.
func Fig18(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "fig18",
		Title:  fmt.Sprintf("THEDB-DT throughput (K tps) vs #warehouses (=partitions), 0%% cross, %d workers", o.Workers),
		Header: []string{"#warehouses", "THEDB-DT"},
		Notes: []string{
			"paper: linear growth in partitions (the open-source H-Store plateaued at 4.8K tps on its network stack)",
		},
	}
	whs := []int{1, 2, 4, 8}
	if !o.Quick {
		whs = append(whs, 16, 32, 48)
	}
	for _, wh := range whs {
		mix := tpcc.StandardMix()
		mix.RemotePct = 0
		res := runTPCC(tpccRun{system: DT, workers: o.Workers, warehouses: wh,
			mix: mix, duration: o.Duration})
		t.AddRow(fmt.Sprint(wh), ktps(res.agg.TPS()))
	}
	t.Print(o.Out)
}

// Fig19 reproduces Appendix F: the phase breakdown of THEDB vs
// THEDB-OCC at WH=4.
func Fig19(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "fig19",
		Title:  "runtime breakdown (%) at WH=4",
		Header: []string{"system", "workers", "read", "validate", "heal", "write", "abort"},
		Notes: []string{
			"paper: OCC's abort share explodes with workers; THEDB trades it for a modest heal share, write stays ~20%",
		},
	}
	for _, sys := range []System{OCC, THEDB} {
		for _, wk := range workerSweep(o) {
			res := runTPCC(tpccRun{system: sys, workers: wk, warehouses: 4,
				mix: tpcc.StandardMix(), duration: o.Duration, detailed: true})
			t.AddRow(sys.String(), fmt.Sprint(wk),
				pct(res.agg.PhaseFraction(metrics.PhaseRead)),
				pct(res.agg.PhaseFraction(metrics.PhaseValidate)),
				pct(res.agg.PhaseFraction(metrics.PhaseHeal)),
				pct(res.agg.PhaseFraction(metrics.PhaseWrite)),
				pct(res.agg.PhaseFraction(metrics.PhaseAbort)))
		}
	}
	t.Print(o.Out)
}

// Fig20 reproduces Appendix G: the throughput effect of
// validation-order rearrangement (THEDB vs the reversed-order
// THEDB-W worst case vs THEDB-OCC).
func Fig20(o Opts) {
	o.Defaults()
	systems := []System{THEDB, THEDBW, OCC}
	t := &Table{
		ID:     "fig20",
		Title:  fmt.Sprintf("TPC-C throughput (K tps) vs #warehouses: order rearrangement, %d workers", o.Workers),
		Header: append([]string{"#warehouses"}, systemNames(systems)...),
		Notes: []string{
			"paper: even worst-case THEDB-W beats OCC ~2x under contention; rearrangement adds ~25% on top",
		},
	}
	for _, wh := range warehouseSweep(o) {
		row := []string{fmt.Sprint(wh)}
		for _, sys := range systems {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: wh,
				mix: tpcc.StandardMix(), duration: o.Duration})
			row = append(row, ktps(res.agg.TPS()))
		}
		t.AddRow(row...)
	}
	t.Print(o.Out)
}

// Table6 reproduces Appendix G's abort-rate table: deadlock-prevention
// aborts of THEDB vs THEDB-W as workers scale (WH=4).
func Table6(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "tab6",
		Title:  "deadlock-prevention abort rate (restarts/committed), WH=4",
		Header: []string{"workers", "THEDB", "THEDB-W"},
		Notes: []string{
			"paper: rearrangement keeps the rate under 0.01; the reversed order reaches 0.16 at full scale",
		},
	}
	for _, wk := range workerSweep(o) {
		a := runTPCC(tpccRun{system: THEDB, workers: wk, warehouses: 4,
			mix: tpcc.StandardMix(), duration: o.Duration})
		b := runTPCC(tpccRun{system: THEDBW, workers: wk, warehouses: 4,
			mix: tpcc.StandardMix(), duration: o.Duration})
		t.AddRow(fmt.Sprint(wk), f(a.agg.AbortRate()), f(b.agg.AbortRate()))
	}
	t.Print(o.Out)
}

// RunAll executes every experiment in paper order.
func RunAll(o Opts) {
	for _, e := range Registry() {
		e.Run(o)
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

func systemNames(ss []System) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.String()
	}
	return out
}

// AblLockAttempts is an ablation beyond the paper: §4.2.2 notes the
// no-wait membership-update policy "can be further optimized by
// setting an upper bound controlling the maximum number of times the
// lock request is attempted". This sweeps that bound under address
// order (where membership updates actually collide) and reports
// throughput and restart rate.
func AblLockAttempts(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "xlock",
		Title:  fmt.Sprintf("THEDB (address order): bounded no-wait lock attempts, WH=4, %d workers", o.Workers),
		Header: []string{"max-attempts", "K tps", "restart-rate"},
		Notes: []string{
			"extension of §4.2.2: a few retries absorb transient lock holds; large bounds approach spinning",
		},
	}
	for _, attempts := range []int{1, 2, 4, 16, 64} {
		res := runTPCC(tpccRun{system: THEDB, workers: o.Workers, warehouses: 4,
			mix: tpcc.StandardMix(), duration: o.Duration, maxLockAttempts: attempts,
			addrOrder: true})
		t.AddRow(fmt.Sprint(attempts), ktps(res.agg.TPS()), f(res.agg.AbortRate()))
	}
	t.Print(o.Out)
}

// AblInterleave reports the effect of the multicore-interleaving
// emulation itself (methodology transparency, DESIGN.md §3): with
// yields off, whole transactions run inside single scheduler slices
// and conflicts almost disappear on a host with fewer cores than
// workers.
func AblInterleave(o Opts) {
	o.Defaults()
	t := &Table{
		ID:     "xinterleave",
		Title:  fmt.Sprintf("interleaving emulation on/off, WH=2, %d workers", o.Workers),
		Header: []string{"system", "interleave", "K tps", "abort-rate"},
		Notes: []string{
			"without yields this host serializes transactions within scheduler slices; contention vanishes artificially",
		},
	}
	for _, sys := range []System{THEDB, OCC} {
		for _, off := range []bool{false, true} {
			res := runTPCC(tpccRun{system: sys, workers: o.Workers, warehouses: 2,
				mix: tpcc.StandardMix(), duration: o.Duration, noInterleave: off})
			t.AddRow(sys.String(), fmt.Sprint(!off), ktps(res.agg.TPS()), f(res.agg.AbortRate()))
		}
	}
	t.Print(o.Out)
}
