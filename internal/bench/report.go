// Package bench regenerates every table and figure of the paper's
// evaluation (§5 and the appendices). Each experiment builds the
// database fresh, drives the configured workers in closed loops for a
// fixed duration, and prints the same rows or series the paper
// reports. The "cores" axis of the paper maps to concurrent workers
// here (see DESIGN.md §3), so shapes — who wins, by what factor,
// where crossovers fall — are the reproduction target, not absolute
// numbers.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Table is one printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ktps formats a throughput in K transactions per second.
func ktps(tps float64) string { return fmt.Sprintf("%.1f", tps/1000) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Sampler collects latency samples (µs) for percentile and
// bucket-share reporting, as the paper's Tables 1, 3 and 5 do.
type Sampler struct {
	vals []float64
}

// Observe records one latency in microseconds.
func (s *Sampler) Observe(us float64) { s.vals = append(s.vals, us) }

// Merge folds another sampler in.
func (s *Sampler) Merge(o *Sampler) { s.vals = append(s.vals, o.vals...) }

// Len returns the sample count.
func (s *Sampler) Len() int { return len(s.vals) }

// Percentile returns the p-th percentile (p in [0,100]).
func (s *Sampler) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	v := append([]float64(nil), s.vals...)
	sort.Float64s(v)
	return v[int(p/100*float64(len(v)-1))]
}

// Share returns the fraction of samples in [lo, hi) µs.
func (s *Sampler) Share(lo, hi float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return float64(n) / float64(len(s.vals))
}
