package bench

import (
	"thedb/internal/metrics"
	"thedb/internal/wal"
	"thedb/internal/workload/tpcc"
)

// Logging modes re-exported for the root benchmark package (which
// cannot name internal/wal types in its own API surface cleanly).
const (
	ValueLoggingMode   = wal.ValueLogging
	CommandLoggingMode = wal.CommandLogging
)

// PrepareTPCCAblation is PrepareTPCC for the Table 4 ablation: the
// healing engine with the access cache and/or read copies disabled,
// on the contention-free WH=workers layout.
func PrepareTPCCAblation(workers int, mix tpcc.Mix, noAccessCache, noReadCopies bool) (run func(n int64) *metrics.Aggregate, cleanup func()) {
	base := tpccRun{
		system:        THEDB,
		workers:       workers,
		warehouses:    workers,
		mix:           mix,
		noAccessCache: noAccessCache,
		noReadCopies:  noReadCopies,
	}
	inner, cleanup := prepareTPCC(base)
	return func(n int64) *metrics.Aggregate {
		r := base
		r.txnLimit = n
		return inner(r).agg
	}, cleanup
}

// PrepareTPCCLogging is PrepareTPCC with durability enabled against
// an in-memory sink (the paper's Appendix C setup).
func PrepareTPCCLogging(workers, warehouses int, mode wal.Mode) (run func(n int64) *metrics.Aggregate, cleanup func()) {
	base := tpccRun{
		system:     THEDB,
		workers:    workers,
		warehouses: warehouses,
		mix:        tpcc.StandardMix(),
		logging:    true,
		logMode:    mode,
	}
	inner, cleanup := prepareTPCC(base)
	return func(n int64) *metrics.Aggregate {
		r := base
		r.txnLimit = n
		return inner(r).agg
	}, cleanup
}
