package bench

import (
	"testing"
	"time"

	"thedb/internal/workload/tpcc"
)

// TestRunTPCCAllSystems smoke-tests every engine configuration the
// experiments use: each must commit transactions and stay silent.
func TestRunTPCCAllSystems(t *testing.T) {
	systems := []System{THEDB, THEDBW, OCC, SILO, TPL, HYBRID, DT, OCCMinus, SILOMinus}
	for _, sys := range systems {
		t.Run(sys.String(), func(t *testing.T) {
			res := runTPCC(tpccRun{
				system:     sys,
				workers:    2,
				warehouses: 2,
				mix:        tpcc.StandardMix(),
				duration:   80 * time.Millisecond,
			})
			if res.agg.Committed == 0 {
				t.Fatalf("%s committed nothing", sys)
			}
		})
	}
}

func TestRunTPCCOptionsPaths(t *testing.T) {
	base := tpccRun{workers: 2, warehouses: 2, mix: tpcc.StandardMix(), duration: 60 * time.Millisecond}

	t.Run("detailed", func(t *testing.T) {
		r := base
		r.system, r.detailed = OCC, true
		res := runTPCC(r)
		var total int64
		for p := range res.agg.PhaseNS {
			total += res.agg.PhaseNS[p]
		}
		if total == 0 {
			t.Fatal("detailed metrics recorded no phase time")
		}
	})
	t.Run("adhoc", func(t *testing.T) {
		r := base
		r.system, r.adhocPct = THEDB, 100
		if res := runTPCC(r); res.agg.Committed == 0 {
			t.Fatal("no commits with 100% ad-hoc")
		}
	})
	t.Run("ablation", func(t *testing.T) {
		r := base
		r.system, r.noAccessCache, r.noReadCopies = THEDB, true, true
		if res := runTPCC(r); res.agg.Committed == 0 {
			t.Fatal("no commits under ablation")
		}
	})
	t.Run("logging", func(t *testing.T) {
		r := base
		r.system, r.logging = THEDB, true
		if res := runTPCC(r); res.agg.Committed == 0 {
			t.Fatal("no commits with logging")
		}
	})
	t.Run("txnLimit", func(t *testing.T) {
		r := base
		r.system, r.txnLimit = THEDB, 50
		res := runTPCC(r)
		if res.agg.Committed+res.agg.Aborted != 50 {
			t.Fatalf("txn-limited run finished %d txns, want 50",
				res.agg.Committed+res.agg.Aborted)
		}
	})
	t.Run("procOnly", func(t *testing.T) {
		r := base
		r.system, r.procOnly = THEDB, tpcc.ProcNewOrder
		res := runTPCC(r)
		for p := range res.perProc {
			if p != tpcc.ProcNewOrder {
				t.Fatalf("sampled %s despite procOnly", p)
			}
		}
	})
}

func TestRunSmallbank(t *testing.T) {
	for _, sys := range []System{THEDB, OCC, SILO} {
		res := runSmallbank(smallbankRun{
			system:   sys,
			workers:  2,
			theta:    0.9,
			duration: 60 * time.Millisecond,
		})
		if res.agg.Committed == 0 {
			t.Fatalf("%s committed nothing", sys)
		}
		if res.latency.Len() == 0 {
			t.Fatalf("%s recorded no latencies", sys)
		}
	}
	// Count-limited path (the one the fixed shadowing bug broke).
	run, cleanup := PrepareSmallbank(THEDB, 2, 0.5)
	defer cleanup()
	agg := run(40)
	if agg.Committed+agg.Aborted != 40 {
		t.Fatalf("count-limited smallbank ran %d", agg.Committed+agg.Aborted)
	}
}

func TestSamplerStats(t *testing.T) {
	s := &Sampler{}
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if p := s.Percentile(95); p < 90 || p > 100 {
		t.Fatalf("p95 = %f", p)
	}
	if sh := s.Share(1, 51); sh < 0.45 || sh > 0.55 {
		t.Fatalf("share = %f", sh)
	}
	o := &Sampler{}
	o.Merge(s)
	if o.Len() != 100 {
		t.Fatalf("merged len = %d", o.Len())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig8", "fig9", "fig10", "fig11", "fig12", "tab1", "fig13",
		"tab2", "fig14", "fig15", "tab3", "tab4", "fig16", "fig17", "fig18",
		"tab5", "fig19", "fig20", "tab6", "xlock", "xinterleave",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, ok := Lookup("fig10"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}
