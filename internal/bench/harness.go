package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/core"
	"thedb/internal/det"
	"thedb/internal/metrics"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
	"thedb/internal/workload/smallbank"
	"thedb/internal/workload/tpcc"
	"thedb/internal/workload/zipf"
)

// System identifies one of the compared engines (paper §5).
type System int

// The systems of the evaluation.
const (
	THEDB System = iota
	THEDBW
	OCC
	SILO
	TPL
	HYBRID
	DT
	OCCMinus
	SILOMinus
)

// String names the system as the paper does.
func (s System) String() string {
	switch s {
	case THEDB:
		return "THEDB"
	case THEDBW:
		return "THEDB-W"
	case OCC:
		return "THEDB-OCC"
	case SILO:
		return "THEDB-SILO"
	case TPL:
		return "THEDB-2PL"
	case HYBRID:
		return "THEDB-HYBRID"
	case DT:
		return "THEDB-DT"
	case OCCMinus:
		return "THEDB-OCC-"
	case SILOMinus:
		return "THEDB-SILO-"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// AllSystems is the Fig. 10 lineup.
var AllSystems = []System{THEDB, OCC, SILO, TPL, HYBRID, DT}

func (s System) protocol() core.Protocol {
	switch s {
	case THEDB, THEDBW:
		return core.Healing
	case OCC:
		return core.OCC
	case SILO:
		return core.Silo
	case TPL:
		return core.TPL
	case HYBRID:
		return core.Hybrid
	case OCCMinus:
		return core.OCCNoValidate
	case SILOMinus:
		return core.SiloNoValidate
	default:
		panic("bench: system has no core protocol")
	}
}

// Opts are the global experiment knobs shared by all runners.
type Opts struct {
	// Workers stands in for the paper's core count.
	Workers int
	// Duration is the measured window per cell.
	Duration time.Duration
	// Out receives the printed tables.
	Out io.Writer
	// Quick shrinks sweeps for smoke runs.
	Quick bool
}

// Defaults fills unset fields.
func (o *Opts) Defaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = 400 * time.Millisecond
	}
}

// obsPlane, when installed, is re-pointed at each engine the harness
// creates, so one exposition endpoint keeps serving live metrics
// while runners build and tear down engines per measurement cell.
var obsPlane *obs.Plane

// SetObsPlane installs the exposition hub (nil uninstalls). Call
// before running experiments; the harness is otherwise single-driver.
func SetObsPlane(p *obs.Plane) { obsPlane = p }

// attachObs points the installed hub (if any) at the live engine.
func attachObs(live func() *metrics.Aggregate) {
	if obsPlane != nil {
		obsPlane.SetSource(live)
	}
}

// detachObs disconnects the hub when a cell's engine is torn down.
func detachObs() {
	if obsPlane != nil {
		obsPlane.SetSource(nil)
	}
}

// tpccRun configures one TPC-C measurement cell.
type tpccRun struct {
	system     System
	workers    int
	warehouses int
	mix        tpcc.Mix
	duration   time.Duration
	// txnLimit, when positive, runs a fixed transaction count
	// instead of a fixed duration (testing.B integration).
	txnLimit int64
	adhocPct int
	detailed bool
	// ablation / ordering flags
	noAccessCache   bool
	noReadCopies    bool
	maxLockAttempts int
	noInterleave    bool
	addrOrder       bool // force address order (xlock ablation)
	// logging
	logMode  wal.Mode
	logging  bool
	procOnly string // restrict latency sampling to one procedure ("" = all)
}

// tpccResult is one cell's outcome.
type tpccResult struct {
	agg     *metrics.Aggregate
	perProc map[string]*Sampler
	cross   int64 // cross-partition transactions issued
}

// runTPCC populates a fresh TPC-C database at laptop scale and drives
// the workers in closed loops for the cell duration.
func runTPCC(r tpccRun) tpccResult {
	run, cleanup := prepareTPCC(r)
	defer cleanup()
	return run(r)
}

// PrepareTPCC builds a populated TPC-C database and engine for the
// given system and returns a function executing n transactions of the
// mix across the workers, plus a cleanup. It exists for testing.B
// integration: population stays outside the timed region.
func PrepareTPCC(system System, workers, warehouses int, mix tpcc.Mix) (run func(n int64) *metrics.Aggregate, cleanup func()) {
	base := tpccRun{system: system, workers: workers, warehouses: warehouses, mix: mix}
	inner, cleanup := prepareTPCC(base)
	return func(n int64) *metrics.Aggregate {
		r := base
		r.txnLimit = n
		return inner(r).agg
	}, cleanup
}

// prepareTPCC performs setup once; the returned closure can run
// multiple measurement cells against the same database.
func prepareTPCC(r tpccRun) (func(tpccRun) tpccResult, func()) {
	cfg := tpcc.Scaled(r.warehouses)
	partitions := 0
	if r.system == DT {
		partitions = r.warehouses
	}
	cat := storage.NewCatalog()
	for _, s := range tpcc.Schemas(partitions) {
		cat.MustCreateTable(s)
	}
	if err := tpcc.Populate(cat, cfg); err != nil {
		panic(err)
	}

	var (
		workers []runner
		stopEng func()
		agg     func(time.Duration) *metrics.Aggregate
	)
	if r.system == DT {
		eng := det.NewEngine(cat, partitions, r.workers)
		eng.SetInterleave(true)
		for _, p := range tpcc.DetProcs(partitions) {
			eng.MustRegister(p)
		}
		for i := 0; i < r.workers; i++ {
			workers = append(workers, eng.Worker(i))
		}
		stopEng = func() {}
		agg = eng.Metrics
	} else {
		opts := core.Options{
			Protocol:        r.system.protocol(),
			Workers:         r.workers,
			NoAccessCache:   r.noAccessCache,
			NoReadCopies:    r.noReadCopies,
			DetailedMetrics: r.detailed,
			Interleave:      !r.noInterleave,
			MaxLockAttempts: r.maxLockAttempts,
		}
		if r.system == THEDBW {
			opts.Order = core.ReverseTreeOrder
			opts.OrderSet = true
		}
		if r.addrOrder {
			opts.Order = core.AddrOrder
			opts.OrderSet = true
		}
		if r.logging {
			opts.Logger = wal.NewLogger(r.logMode, r.workers, func(int) io.Writer { return io.Discard })
		}
		eng := core.NewEngine(cat, opts)
		for _, s := range tpcc.Specs() {
			eng.MustRegister(s)
		}
		eng.Start()
		attachObs(eng.LiveMetrics)
		for i := 0; i < r.workers; i++ {
			workers = append(workers, eng.Worker(i))
		}
		stopEng = func() { detachObs(); _ = eng.Stop() }
		agg = eng.Metrics
	}

	run := func(r tpccRun) tpccResult {
		for _, w := range workers {
			if cw, ok := w.(*core.Worker); ok {
				*cw.Metrics() = metrics.Worker{}
			}
			if dw, ok := w.(*det.Worker); ok {
				*dw.Metrics() = metrics.Worker{}
			}
		}
		res := tpccResult{perProc: map[string]*Sampler{}}
		samplers := make([]map[string]*Sampler, r.workers)
		var crossCount atomic.Int64
		var remaining atomic.Int64
		remaining.Store(r.txnLimit)
		var stop atomic.Bool
		var wg sync.WaitGroup
		start := time.Now()
		for wi := 0; wi < r.workers; wi++ {
			wg.Add(1)
			samplers[wi] = map[string]*Sampler{}
			go func(wi int) {
				defer wg.Done()
				// The pprof label makes per-worker samples separable
				// in profiles taken through the exposition endpoint.
				obs.DoWorker(wi, func() {
					gen := tpcc.NewGen(cfg, r.mix, wi)
					rng := rand.New(rand.NewSource(int64(wi)*31 + 17))
					w := workers[wi]
					mine := samplers[wi]
					for !stop.Load() {
						if r.txnLimit > 0 && remaining.Add(-1) < 0 {
							return
						}
						req := gen.Next()
						if req.CrossPartition {
							crossCount.Add(1)
						}
						adhoc := r.adhocPct > 0 && rng.Intn(100) < r.adhocPct
						t0 := time.Now()
						var err error
						if adhoc {
							err = runAdhoc(w, req.Proc, req.Args)
						} else {
							_, err = w.Run(req.Proc, req.Args...)
						}
						dt := time.Since(t0)
						if err == nil && (r.procOnly == "" || r.procOnly == req.Proc) {
							s := mine[req.Proc]
							if s == nil {
								s = &Sampler{}
								mine[req.Proc] = s
							}
							s.Observe(float64(dt) / float64(time.Microsecond))
						}
					}
				})
			}(wi)
		}
		if r.txnLimit > 0 {
			wg.Wait()
		} else {
			time.Sleep(r.duration)
			stop.Store(true)
			wg.Wait()
		}
		wall := time.Since(start)

		res.agg = agg(wall)
		res.cross = crossCount.Load()
		for _, m := range samplers {
			for p, s := range m {
				dst := res.perProc[p]
				if dst == nil {
					dst = &Sampler{}
					res.perProc[p] = dst
				}
				dst.Merge(s)
			}
		}
		return res
	}
	return run, stopEng
}

// runner is the common surface of core and det workers.
type runner interface {
	Run(proc string, args ...storage.Value) (*proc.Env, error)
}

// runAdhoc dispatches RunAdhoc when available (core workers only).
func runAdhoc(w runner, procName string, args []storage.Value) error {
	if cw, ok := w.(*core.Worker); ok {
		_, err := cw.RunAdhoc(procName, args...)
		return err
	}
	_, err := w.Run(procName, args...)
	return err
}

// smallbankRun configures one Smallbank cell.
type smallbankRun struct {
	system   System
	workers  int
	theta    float64
	accounts int
	duration time.Duration
	txnLimit int64
}

type smallbankResult struct {
	agg     *metrics.Aggregate
	latency *Sampler
}

// runSmallbank drives the six-procedure Smallbank mix with
// Zipfian-skewed account selection (θ controls contention, Table 2).
func runSmallbank(r smallbankRun) smallbankResult {
	run, cleanup := prepareSmallbank(r)
	defer cleanup()
	return run(r)
}

// PrepareSmallbank is the testing.B entry point: setup outside the
// timed region, the returned closure runs n transactions.
func PrepareSmallbank(system System, workers int, theta float64) (run func(n int64) *metrics.Aggregate, cleanup func()) {
	base := smallbankRun{system: system, workers: workers, theta: theta}
	inner, cleanup := prepareSmallbank(base)
	return func(n int64) *metrics.Aggregate {
		r := base
		r.txnLimit = n
		return inner(r).agg
	}, cleanup
}

func prepareSmallbank(r smallbankRun) (func(smallbankRun) smallbankResult, func()) {
	if r.accounts <= 0 {
		r.accounts = 1000
	}
	accounts := r.accounts // the run closure must see the defaulted value
	cat := storage.NewCatalog()
	for _, s := range smallbank.Schemas(0) {
		cat.MustCreateTable(s)
	}
	if err := smallbank.Populate(cat, r.accounts, 10000, 10000); err != nil {
		panic(err)
	}
	eng := core.NewEngine(cat, core.Options{Protocol: r.system.protocol(), Workers: r.workers, Interleave: true})
	for _, s := range smallbank.Specs() {
		eng.MustRegister(s)
	}
	eng.Start()
	attachObs(eng.LiveMetrics)

	run := func(r smallbankRun) smallbankResult {
		eng.ResetMetrics()
		var stop atomic.Bool
		var remaining atomic.Int64
		remaining.Store(r.txnLimit)
		var wg sync.WaitGroup
		samplers := make([]*Sampler, r.workers)
		start := time.Now()
		for wi := 0; wi < r.workers; wi++ {
			wg.Add(1)
			samplers[wi] = &Sampler{}
			go func(wi int) {
				defer wg.Done()
				obs.DoWorker(wi, func() {
					rng := rand.New(rand.NewSource(int64(wi)*13 + 7))
					zg := zipf.New(uint64(accounts), r.theta)
					w := eng.Worker(wi)
					mine := samplers[wi]
					for !stop.Load() {
						if r.txnLimit > 0 && remaining.Add(-1) < 0 {
							return
						}
						procName, args := smallbankRequest(rng, zg)
						t0 := time.Now()
						_, err := w.Run(procName, args...)
						if err == nil {
							mine.Observe(float64(time.Since(t0)) / float64(time.Microsecond))
						}
					}
				})
			}(wi)
		}
		if r.txnLimit > 0 {
			wg.Wait()
		} else {
			time.Sleep(r.duration)
			stop.Store(true)
			wg.Wait()
		}
		wall := time.Since(start)

		all := &Sampler{}
		for _, s := range samplers {
			all.Merge(s)
		}
		return smallbankResult{agg: eng.Metrics(wall), latency: all}
	}
	return run, func() { detachObs(); _ = eng.Stop() }
}

// smallbankRequest draws one transaction of the uniform six-way mix
// with Zipf-skewed account choice.
func smallbankRequest(rng *rand.Rand, zg *zipf.Generator) (string, []storage.Value) {
	acct := func() storage.Value { return storage.Int(int64(zg.Next(rng.Float64()))) }
	// Two-account procedures need distinct accounts (amalgamating an
	// account into itself would double money).
	pair := func() (storage.Value, storage.Value) {
		a := acct()
		for {
			b := acct()
			if b != a {
				return a, b
			}
		}
	}
	amt := storage.Int(int64(1 + rng.Intn(100)))
	switch rng.Intn(6) {
	case 0:
		return smallbank.ProcBalance, []storage.Value{acct()}
	case 1:
		return smallbank.ProcDepositChecking, []storage.Value{acct(), amt}
	case 2:
		return smallbank.ProcTransactSavings, []storage.Value{acct(), amt}
	case 3:
		a, b := pair()
		return smallbank.ProcAmalgamate, []storage.Value{a, b}
	case 4:
		return smallbank.ProcWriteCheck, []storage.Value{acct(), amt}
	default:
		a, b := pair()
		return smallbank.ProcSendPayment, []storage.Value{a, b, amt}
	}
}
