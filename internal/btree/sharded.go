package btree

import "sync"

// Sharded partitions a uint64-keyed tree by key prefix: all keys
// sharing their top (64-shift) bits live in one sub-tree. Because the
// shards cover contiguous key ranges, ordered scans across shards
// remain ordered. TPC-C packs (warehouse, district) into the key
// prefix, so per-district scans touch exactly one shard and workers
// operating on different districts never contend on index locks.
type Sharded[V any] struct {
	shift  uint
	mu     sync.RWMutex
	shards map[uint64]*Tree[uint64, V]
}

// NewSharded returns a sharded tree that groups keys by their top
// (64-shift) bits. shift == 64 degenerates to a single tree.
func NewSharded[V any](shift uint) *Sharded[V] {
	if shift > 64 {
		panic("btree: shard shift out of range")
	}
	return &Sharded[V]{shift: shift, shards: make(map[uint64]*Tree[uint64, V])}
}

func (s *Sharded[V]) prefix(k uint64) uint64 {
	if s.shift == 64 {
		return 0
	}
	return k >> s.shift
}

func (s *Sharded[V]) shard(p uint64, create bool) *Tree[uint64, V] {
	s.mu.RLock()
	t := s.shards[p]
	s.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.shards[p]; t == nil {
		t = New[uint64, V]()
		s.shards[p] = t
	}
	return t
}

// Insert stores v under k, reporting whether a new key was added.
func (s *Sharded[V]) Insert(k uint64, v V) bool {
	return s.shard(s.prefix(k), true).Insert(k, v)
}

// Delete removes k, reporting whether it was present.
func (s *Sharded[V]) Delete(k uint64) bool {
	t := s.shard(s.prefix(k), false)
	return t != nil && t.Delete(k)
}

// DeleteIf removes k only when pred(v) holds for the stored value.
func (s *Sharded[V]) DeleteIf(k uint64, pred func(V) bool) bool {
	t := s.shard(s.prefix(k), false)
	return t != nil && t.DeleteIf(k, pred)
}

// Get returns the value stored under k.
func (s *Sharded[V]) Get(k uint64) (V, bool) {
	t := s.shard(s.prefix(k), false)
	if t == nil {
		var zero V
		return zero, false
	}
	return t.Get(k)
}

// Scan visits all pairs with lo <= key <= hi in ascending order and
// returns the leaf observations for phantom validation. Shards that
// do not exist yet contribute no observations; a subsequent insert
// creates keys in a fresh leaf whose version starts above zero only
// after modification, so the caller must also guard creation races at
// a higher level (THEDB does so with dummy records, §4.7.1).
func (s *Sharded[V]) Scan(lo, hi uint64, fn func(k uint64, v V) bool) []ScanRef[uint64, V] {
	var refs []ScanRef[uint64, V]
	stop := false
	for p := s.prefix(lo); p <= s.prefix(hi) && !stop; p++ {
		if t := s.shard(p, false); t != nil {
			r := t.Scan(lo, hi, func(k uint64, v V) bool {
				ok := fn(k, v)
				stop = !ok
				return ok
			})
			refs = append(refs, r...)
		}
		if p == s.prefix(hi) { // avoid wraparound when prefix(hi) is MaxUint
			break
		}
	}
	return refs
}

// Min returns the smallest pair within [lo, hi], plus the leaf
// observations examined.
func (s *Sharded[V]) Min(lo, hi uint64) (k uint64, v V, ok bool, refs []ScanRef[uint64, V]) {
	refs = s.Scan(lo, hi, func(fk uint64, fv V) bool {
		k, v, ok = fk, fv, true
		return false
	})
	return k, v, ok, refs
}

// Len returns the total number of keys across shards.
func (s *Sharded[V]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.shards {
		n += t.Len()
	}
	return n
}
