package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertGetDelete(t *testing.T) {
	tr := New[uint64, int]()
	const n = 5000
	for i := 0; i < n; i++ {
		if !tr.Insert(uint64(i*7%n), i) {
			t.Fatalf("insert %d reported existing", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(uint64(i))
		if !ok {
			t.Fatalf("missing key %d", i)
		}
		if uint64(v*7%n) != uint64(i) {
			t.Fatalf("key %d has value %d", i, v)
		}
	}
	if _, ok := tr.Get(n + 1); ok {
		t.Fatal("found key that was never inserted")
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("len after deletes = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(uint64(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v, want %v", i, ok, want)
		}
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := New[uint64, string]()
	tr.Insert(1, "a")
	if tr.Insert(1, "b") {
		t.Fatal("second insert of same key reported new")
	}
	if v, _ := tr.Get(1); v != "b" {
		t.Fatalf("value = %q, want b", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	tr := New[uint64, int]()
	keys := rand.New(rand.NewSource(1)).Perm(2000)
	for _, k := range keys {
		tr.Insert(uint64(k*3), k)
	}
	var got []uint64
	tr.Scan(300, 2400, func(k uint64, _ int) bool {
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	for _, k := range got {
		if k < 300 || k > 2400 || k%3 != 0 {
			t.Fatalf("scan returned out-of-range key %d", k)
		}
	}
	want := 0
	for _, k := range keys {
		if u := uint64(k * 3); u >= 300 && u <= 2400 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("scan returned %d keys, want %d", len(got), want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), i)
	}
	n := 0
	tr.Scan(0, 99, func(uint64, int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestLeafVersionBumpsOnInsert(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 10; i++ {
		tr.Insert(uint64(i*10), i)
	}
	refs := tr.Scan(0, 1000, func(uint64, int) bool { return true })
	if len(refs) == 0 {
		t.Fatal("no leaf refs")
	}
	for _, r := range refs {
		if r.Changed() {
			t.Fatal("leaf changed before any modification")
		}
	}
	tr.Insert(55, 55) // lands inside the scanned range
	changed := false
	for _, r := range refs {
		if r.Changed() {
			changed = true
		}
	}
	if !changed {
		t.Fatal("insert into scanned range not detected by leaf versions (phantom!)")
	}
}

func TestLeafVersionBumpsOnDelete(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 10; i++ {
		tr.Insert(uint64(i), i)
	}
	refs := tr.Scan(0, 9, func(uint64, int) bool { return true })
	tr.Delete(5)
	changed := false
	for _, r := range refs {
		if r.Changed() {
			changed = true
		}
	}
	if !changed {
		t.Fatal("delete inside scanned range not detected")
	}
}

func TestVersionStableOutsideRange(t *testing.T) {
	tr := New[uint64, int]()
	// Two far-apart clusters so they land in different leaves.
	for i := 0; i < 200; i++ {
		tr.Insert(uint64(i), i)
		tr.Insert(uint64(100000+i), i)
	}
	refs := tr.Scan(0, 199, func(uint64, int) bool { return true })
	tr.Insert(150000, 1) // far outside the scanned range
	for _, r := range refs {
		if r.Changed() {
			t.Fatal("insert far outside range bumped a scanned leaf")
		}
	}
}

func TestDeleteIf(t *testing.T) {
	tr := New[uint64, int]()
	tr.Insert(1, 10)
	if tr.DeleteIf(1, func(v int) bool { return v == 99 }) {
		t.Fatal("DeleteIf removed despite failing predicate")
	}
	if _, ok := tr.Get(1); !ok {
		t.Fatal("key vanished")
	}
	if !tr.DeleteIf(1, func(v int) bool { return v == 10 }) {
		t.Fatal("DeleteIf refused matching predicate")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("key survived DeleteIf")
	}
}

func TestMin(t *testing.T) {
	tr := New[uint64, int]()
	for _, k := range []uint64{50, 10, 90, 30} {
		tr.Insert(k, int(k))
	}
	k, v, ok, _ := tr.Min(20, 80)
	if !ok || k != 30 || v != 30 {
		t.Fatalf("Min(20,80) = %d,%d,%v", k, v, ok)
	}
	_, _, ok, _ = tr.Min(91, 100)
	if ok {
		t.Fatal("Min found a key in an empty range")
	}
}

// TestQuickAgainstMap drives random operation sequences against a
// reference map (property-based, testing/quick).
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  int
	}
	check := func(ops []op) bool {
		tr := New[uint64, int]()
		ref := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0:
				tr.Insert(k, o.Val)
				ref[k] = o.Val
			case 1:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := tr.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full scan must enumerate exactly the reference contents in
		// order.
		var keys []uint64
		tr.Scan(0, 1<<63, func(k uint64, v int) bool {
			if rv, ok := ref[k]; !ok || rv != v {
				t.Logf("scan mismatch at %d", k)
				return false
			}
			keys = append(keys, k)
			return true
		})
		return len(keys) == len(ref) && sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(i*2), i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := uint64(rng.Intn(1500))
				prev := uint64(0)
				tr.Scan(lo, lo+100, func(k uint64, _ int) bool {
					if k < prev {
						t.Error("scan went backwards under concurrency")
						return false
					}
					prev = k
					return true
				})
			}
		}(int64(r))
	}
	for i := 0; i < 2000; i++ {
		tr.Insert(uint64(i*2+1), i)
		if i%3 == 0 {
			tr.Delete(uint64(i * 2))
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardedOrderedAcrossShards(t *testing.T) {
	s := NewSharded[int](8) // shards cover 256-key ranges
	keys := rand.New(rand.NewSource(2)).Perm(4096)
	for _, k := range keys {
		s.Insert(uint64(k), k)
	}
	if s.Len() != 4096 {
		t.Fatalf("len = %d", s.Len())
	}
	var got []uint64
	s.Scan(100, 3000, func(k uint64, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2901 {
		t.Fatalf("scan count = %d, want 2901", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("cross-shard scan out of order")
	}
}

func TestShardedMinAndDelete(t *testing.T) {
	s := NewSharded[int](4)
	for _, k := range []uint64{100, 17, 63, 900} {
		s.Insert(k, int(k))
	}
	k, _, ok, _ := s.Min(18, 1000)
	if !ok || k != 63 {
		t.Fatalf("Min = %d, %v", k, ok)
	}
	if !s.Delete(63) {
		t.Fatal("delete failed")
	}
	k, _, ok, _ = s.Min(18, 1000)
	if !ok || k != 100 {
		t.Fatalf("Min after delete = %d, %v", k, ok)
	}
	if v, ok := s.Get(17); !ok || v != 17 {
		t.Fatal("Get(17) failed")
	}
}
