// Package btree implements an ordered B+-tree with per-leaf version
// counters, the structure THEDB uses for range-scanned indexes.
//
// Phantom protection (paper §4.7.2, following Silo): every structural
// modification of a leaf — key insertion, key removal, or a split
// that redistributes keys — increments that leaf's version counter.
// A range scan reports the set of leaves it visited together with the
// versions observed; the validation phase re-reads the versions and
// treats any mismatch as a possible phantom, which the healing phase
// resolves by re-executing the scan.
package btree

import (
	"cmp"
	"sort"
	"sync"
	"sync/atomic"
)

// maxKeys is the fan-out of both leaf and inner nodes.
const maxKeys = 64

// Leaf is an opaque handle to a leaf node, exposed so callers can
// re-check its version during validation.
type Leaf[K cmp.Ordered, V any] struct {
	version atomic.Uint64
	keys    []K
	vals    []V
	next    *Leaf[K, V]
}

// Version returns the leaf's current structural version. It may be
// called without holding any tree lock.
func (l *Leaf[K, V]) Version() uint64 { return l.version.Load() }

type inner[K cmp.Ordered, V any] struct {
	// keys[i] is the smallest key reachable via children[i+1].
	keys     []K
	children []any // *inner or *Leaf
}

// Tree is a concurrency-safe ordered map. Mutations take the tree
// write lock; lookups and scans take the read lock. Leaf versions may
// be re-read lock-free afterwards.
type Tree[K cmp.Ordered, V any] struct {
	mu   sync.RWMutex
	root any // *inner or *Leaf
	size int
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	return &Tree[K, V]{root: &Leaf[K, V]{}}
}

// Len returns the number of stored keys.
func (t *Tree[K, V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Get returns the value stored under k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l := t.leafFor(k)
	i, ok := search(l.keys, k)
	if !ok {
		var zero V
		return zero, false
	}
	return l.vals[i], true
}

// GetWithLeaf returns the value stored under k along with the leaf
// that holds (or would hold) k and the leaf version observed, for
// callers that need phantom protection on point misses.
func (t *Tree[K, V]) GetWithLeaf(k K) (v V, ok bool, leaf *Leaf[K, V], version uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l := t.leafFor(k)
	ver := l.version.Load()
	i, found := search(l.keys, k)
	if !found {
		var zero V
		return zero, false, l, ver
	}
	return l.vals[i], true, l, ver
}

// Insert stores v under k, replacing any existing value. It reports
// whether a new key was added.
func (t *Tree[K, V]) Insert(k K, v V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	splitKey, splitNode, added := t.insert(t.root, k, v)
	if splitNode != nil {
		t.root = &inner[K, V]{
			keys:     []K{splitKey},
			children: []any{t.root, splitNode},
		}
	}
	if added {
		t.size++
	}
	return added
}

// Delete removes k, reporting whether it was present. Leaves are not
// merged; an emptied leaf stays in place (its version is bumped so
// concurrent scans revalidate), which keeps deletion simple and safe.
func (t *Tree[K, V]) Delete(k K) bool {
	return t.DeleteIf(k, nil)
}

// DeleteIf removes k only when pred(v) holds for the stored value
// (nil pred always removes), evaluated under the tree lock. Garbage
// collection uses this to avoid evicting an index entry that a
// concurrent insert re-created for the same key.
func (t *Tree[K, V]) DeleteIf(k K, pred func(V) bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leafFor(k)
	i, ok := search(l.keys, k)
	if !ok || (pred != nil && !pred(l.vals[i])) {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	l.version.Add(1)
	t.size--
	return true
}

// ScanRef is one (leaf, version) observation made by a range scan,
// recorded in the caller's read set for phantom validation.
type ScanRef[K cmp.Ordered, V any] struct {
	Leaf    *Leaf[K, V]
	Version uint64
}

// Changed reports whether the leaf has been structurally modified
// since the scan observed it.
func (r ScanRef[K, V]) Changed() bool { return r.Leaf.Version() != r.Version }

// Scan visits all pairs with lo <= key <= hi in ascending order,
// calling fn for each; fn returning false stops the scan. It returns
// the leaf/version observations covering the scanned range, including
// boundary leaves, so a later insert into the range is detectable.
func (t *Tree[K, V]) Scan(lo, hi K, fn func(k K, v V) bool) []ScanRef[K, V] {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var refs []ScanRef[K, V]
	l := t.leafFor(lo)
	for l != nil {
		refs = append(refs, ScanRef[K, V]{Leaf: l, Version: l.version.Load()})
		for i, k := range l.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return refs
			}
			if !fn(k, l.vals[i]) {
				return refs
			}
		}
		if n := len(l.keys); n > 0 && l.keys[n-1] > hi {
			return refs
		}
		l = l.next
	}
	return refs
}

// Min returns the smallest key/value at or above lo, if any, plus the
// observation of the leaf examined (for phantom-safe "oldest entry"
// lookups such as TPC-C Delivery's NEW-ORDER probe).
func (t *Tree[K, V]) Min(lo, hi K) (k K, v V, ok bool, refs []ScanRef[K, V]) {
	refs = t.Scan(lo, hi, func(fk K, fv V) bool {
		k, v, ok = fk, fv, true
		return false
	})
	return k, v, ok, refs
}

func (t *Tree[K, V]) leafFor(k K) *Leaf[K, V] {
	n := t.root
	for {
		switch x := n.(type) {
		case *Leaf[K, V]:
			return x
		case *inner[K, V]:
			i := sort.Search(len(x.keys), func(i int) bool { return k < x.keys[i] })
			n = x.children[i]
		}
	}
}

// insert descends recursively; when a child splits it returns the
// separator key and new right sibling for the parent to absorb.
func (t *Tree[K, V]) insert(n any, k K, v V) (splitKey K, splitNode any, added bool) {
	switch x := n.(type) {
	case *Leaf[K, V]:
		i, ok := search(x.keys, k)
		if ok {
			x.vals[i] = v
			x.version.Add(1)
			return splitKey, nil, false
		}
		x.keys = append(x.keys, k)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = k
		var zero V
		x.vals = append(x.vals, zero)
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = v
		x.version.Add(1)
		if len(x.keys) > maxKeys {
			mid := len(x.keys) / 2
			right := &Leaf[K, V]{next: x.next}
			right.keys = append(right.keys, x.keys[mid:]...)
			right.vals = append(right.vals, x.vals[mid:]...)
			x.keys = x.keys[:mid:mid]
			x.vals = x.vals[:mid:mid]
			x.next = right
			x.version.Add(1)
			right.version.Add(1)
			return right.keys[0], right, true
		}
		return splitKey, nil, true
	case *inner[K, V]:
		i := sort.Search(len(x.keys), func(i int) bool { return k < x.keys[i] })
		sk, sn, add := t.insert(x.children[i], k, v)
		if sn != nil {
			x.keys = append(x.keys, sk)
			copy(x.keys[i+1:], x.keys[i:])
			x.keys[i] = sk
			x.children = append(x.children, nil)
			copy(x.children[i+2:], x.children[i+1:])
			x.children[i+1] = sn
			if len(x.keys) > maxKeys {
				mid := len(x.keys) / 2
				sepKey := x.keys[mid]
				right := &inner[K, V]{}
				right.keys = append(right.keys, x.keys[mid+1:]...)
				right.children = append(right.children, x.children[mid+1:]...)
				x.keys = x.keys[:mid:mid]
				x.children = x.children[: mid+1 : mid+1]
				return sepKey, right, add
			}
		}
		return splitKey, nil, add
	}
	panic("btree: unknown node type")
}

// search returns the position of k in keys (found) or its insertion
// point (not found).
func search[K cmp.Ordered](keys []K, k K) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i, i < len(keys) && keys[i] == k
}
