package storage

import (
	"sync"
	"sync/atomic"
)

// GC reclaims records deleted by committed transactions. Following
// §4.7.1, a deleted record (visibility bit off) is unlinked from its
// table's indexes only once its reference counter drops to zero,
// i.e. no in-flight transaction still holds it in a read/write set —
// and, when a snapshot watermark is wired in, only once every snapshot
// that could still observe the record's pre-delete state has drained
// (the record's delete stamp is at or below the watermark), since
// snapshot readers reach version chains through the indexes without
// pinning (DESIGN.md §16).
//
// The collector additionally prunes version chains: records gain a
// chain node when a commit crosses an epoch boundary (TrackVersions
// registers them, deduplicated by a per-record flag) and
// CollectVersions cuts every chain suffix below the snapshot
// low-watermark.
//
// Retire is called by the commit path; Collect runs either from a
// background goroutine (Start/Stop) or synchronously from tests.
type GC struct {
	catalog *Catalog

	mu      sync.Mutex
	retired []*Record

	// Version-chain state: chained queues records with non-empty
	// chains; watermark (when non-nil) supplies the snapshot
	// low-watermark — the highest timestamp no live or future snapshot
	// can be at or below.
	vmu       sync.Mutex
	chained   []*Record
	watermark func() uint64

	versionsReclaimed atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// NewGC returns a collector over the catalog's tables.
func NewGC(catalog *Catalog) *GC {
	return &GC{catalog: catalog}
}

// Retire queues a deleted record for reclamation.
func (g *GC) Retire(rec *Record) {
	g.mu.Lock()
	g.retired = append(g.retired, rec)
	g.mu.Unlock()
}

// Collect attempts to unlink every retired record, requeueing those
// still pinned or still visible to a live snapshot. It returns the
// number of records reclaimed.
func (g *GC) Collect() int {
	g.mu.Lock()
	batch := g.retired
	g.retired = nil
	g.mu.Unlock()

	// Snapshot safety: a deleted record must stay reachable through the
	// indexes while any snapshot below its delete stamp could still
	// resolve its pre-delete version — snapshot readers do not pin.
	wm := MaxTimestamp
	if g.watermark != nil {
		wm = g.watermark()
	}

	reclaimed := 0
	var remaining []*Record
	for _, rec := range batch {
		if rec.Visible() {
			// Resurrected: a later transaction reused the slot as its
			// insert target and committed. Drop it from the queue.
			continue
		}
		if rec.Timestamp() > wm && rec.VersionLen() > 0 {
			// Still carries history a snapshot could resolve: the head
			// node's end stamp is the delete stamp, so the chain empties
			// (CollectVersions) exactly when the watermark passes it.
			// With an empty chain every snapshot resolves the record to
			// absent — the current image is invisible and there is no
			// older image to fall back to — so unlinking loses nothing.
			remaining = append(remaining, rec)
			continue
		}
		if g.catalog.TableByID(rec.Table()).unlink(rec) {
			reclaimed++
		} else {
			remaining = append(remaining, rec)
		}
	}
	if len(remaining) > 0 {
		g.mu.Lock()
		g.retired = append(g.retired, remaining...)
		g.mu.Unlock()
	}
	return reclaimed
}

// SetWatermark wires in the snapshot low-watermark supplier. Must be
// set before the collector starts; nil (the default) disables both
// version pruning and the snapshot gate on record unlinking.
func (g *GC) SetWatermark(f func() uint64) { g.watermark = f }

// TrackVersions registers a record whose version chain became
// non-empty. Deduplicated through the record's chain flag, so the
// commit path can call it after every push without growing the queue
// beyond the set of chained records.
func (g *GC) TrackVersions(rec *Record) {
	if !rec.markChained() {
		return
	}
	g.vmu.Lock()
	g.chained = append(g.chained, rec)
	g.vmu.Unlock()
}

// CollectVersions prunes every tracked record's chain below the
// snapshot low-watermark, dropping fully-pruned records from the
// queue. Returns the number of version nodes reclaimed.
func (g *GC) CollectVersions() int {
	if g.watermark == nil {
		return 0
	}
	wm := g.watermark()

	g.vmu.Lock()
	batch := g.chained
	g.chained = nil
	g.vmu.Unlock()

	reclaimed := 0
	var remaining []*Record
	for _, rec := range batch {
		n, empty := rec.PruneVersions(wm)
		reclaimed += n
		if !empty {
			remaining = append(remaining, rec)
			continue
		}
		rec.clearChained()
		// Re-check after re-arming the flag: a push that raced between
		// the prune and the clear saw the flag still set and skipped
		// enqueueing; without this the record would leak its chain
		// until the next push.
		if rec.VersionLen() > 0 && rec.markChained() {
			remaining = append(remaining, rec)
		}
	}
	if len(remaining) > 0 {
		g.vmu.Lock()
		g.chained = append(g.chained, remaining...)
		g.vmu.Unlock()
	}
	g.versionsReclaimed.Add(int64(reclaimed))
	return reclaimed
}

// VersionsReclaimed returns the lifetime count of version nodes
// reclaimed by CollectVersions.
func (g *GC) VersionsReclaimed() int64 { return g.versionsReclaimed.Load() }

// TrackedChains returns the number of records currently queued for
// version pruning.
func (g *GC) TrackedChains() int {
	g.vmu.Lock()
	defer g.vmu.Unlock()
	return len(g.chained)
}

// Pending returns the number of retired-but-unreclaimed records.
func (g *GC) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.retired)
}

// Start launches a background goroutine that collects whenever poked
// via the returned kick function; Stop shuts it down. The engine
// kicks the collector once per epoch advance.
func (g *GC) Start() (kick func()) {
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	kickCh := make(chan struct{}, 1)
	go func() {
		defer close(g.done)
		for {
			select {
			case <-g.stop:
				g.Collect()
				g.CollectVersions()
				return
			case <-kickCh:
				g.Collect()
				g.CollectVersions()
			}
		}
	}()
	return func() {
		select {
		case kickCh <- struct{}{}:
		default:
		}
	}
}

// Stop terminates the background collector after a final pass.
func (g *GC) Stop() {
	if g.stop == nil {
		return
	}
	close(g.stop)
	<-g.done
	g.stop = nil
}
