package storage

import "sync"

// GC reclaims records deleted by committed transactions. Following
// §4.7.1, a deleted record (visibility bit off) is unlinked from its
// table's indexes only once its reference counter drops to zero,
// i.e. no in-flight transaction still holds it in a read/write set.
//
// Retire is called by the commit path; Collect runs either from a
// background goroutine (Start/Stop) or synchronously from tests.
type GC struct {
	catalog *Catalog

	mu      sync.Mutex
	retired []*Record

	stop chan struct{}
	done chan struct{}
}

// NewGC returns a collector over the catalog's tables.
func NewGC(catalog *Catalog) *GC {
	return &GC{catalog: catalog}
}

// Retire queues a deleted record for reclamation.
func (g *GC) Retire(rec *Record) {
	g.mu.Lock()
	g.retired = append(g.retired, rec)
	g.mu.Unlock()
}

// Collect attempts to unlink every retired record, requeueing those
// still pinned. It returns the number of records reclaimed.
func (g *GC) Collect() int {
	g.mu.Lock()
	batch := g.retired
	g.retired = nil
	g.mu.Unlock()

	reclaimed := 0
	var remaining []*Record
	for _, rec := range batch {
		if rec.Visible() {
			// Resurrected: a later transaction reused the slot as its
			// insert target and committed. Drop it from the queue.
			continue
		}
		if g.catalog.TableByID(rec.Table()).unlink(rec) {
			reclaimed++
		} else {
			remaining = append(remaining, rec)
		}
	}
	if len(remaining) > 0 {
		g.mu.Lock()
		g.retired = append(g.retired, remaining...)
		g.mu.Unlock()
	}
	return reclaimed
}

// Pending returns the number of retired-but-unreclaimed records.
func (g *GC) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.retired)
}

// Start launches a background goroutine that collects whenever poked
// via the returned kick function; Stop shuts it down. The engine
// kicks the collector once per epoch advance.
func (g *GC) Start() (kick func()) {
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	kickCh := make(chan struct{}, 1)
	go func() {
		defer close(g.done)
		for {
			select {
			case <-g.stop:
				g.Collect()
				return
			case <-kickCh:
				g.Collect()
			}
		}
	}()
	return func() {
		select {
		case kickCh <- struct{}{}:
		default:
		}
	}
}

// Stop terminates the background collector after a final pass.
func (g *GC) Stop() {
	if g.stop == nil {
		return
	}
	close(g.stop)
	<-g.done
	g.stop = nil
}
