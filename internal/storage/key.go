package storage

// Key is a 64-bit primary key. Composite keys (for example TPC-C's
// (warehouse, district, order) triples) are packed into the word with
// the most significant component first so that numeric order equals
// lexicographic component order and range scans over a prefix are
// contiguous.
type Key uint64

// PackKey packs the given components into a Key. widths gives the bit
// width of each component; the sum must not exceed 64. Components are
// laid out most-significant-first.
func PackKey(parts []uint64, widths []uint8) Key {
	if len(parts) != len(widths) {
		panic("storage: PackKey parts/widths length mismatch")
	}
	var k uint64
	var used uint
	for i, p := range parts {
		w := uint(widths[i])
		used += w
		if used > 64 {
			panic("storage: PackKey exceeds 64 bits")
		}
		if w < 64 && p >= uint64(1)<<w {
			panic("storage: PackKey component overflows its width")
		}
		k = k<<w | p
	}
	return Key(k << (64 - used))
}

// Component extracts the i-th component previously packed with the
// given widths.
func (k Key) Component(i int, widths []uint8) uint64 {
	var off uint = 64
	for j := 0; j <= i; j++ {
		off -= uint(widths[j])
	}
	w := uint(widths[i])
	if w == 64 {
		return uint64(k)
	}
	return (uint64(k) >> off) & ((uint64(1) << w) - 1)
}
