// Package storage implements THEDB's in-memory record store: typed
// tuples, records carrying a packed atomic metadata word
// (lock | visibility | commit timestamp), schemas, tables, and a
// reference-counted garbage collector for deleted records.
//
// The layout follows §2 and §4 of "Transaction Healing: Scaling
// Optimistic Concurrency Control on Multicores" (SIGMOD 2016): each
// record keeps (1) the commit timestamp of its last writer, (2) a
// visibility bit, and (3) a lock bit. All three live in one atomic
// 64-bit word so that optimistic readers observe lock state and
// timestamp together, and tuples are immutable slices swapped by
// atomic pointer so unprotected reads are memory-safe.
package storage

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the runtime type of a column Value.
type ValueKind uint8

// Supported column kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
)

// Value is a single column value. It is a small immutable sum type:
// integers and floats share the numeric slot, strings use the string
// slot. Value is copied freely; it must never be mutated in place
// once published in a tuple.
type Value struct {
	kind ValueKind
	num  int64
	str  string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point Value. The bit pattern is stored in
// the numeric slot.
func Float(v float64) Value { return Value{kind: KindFloat, num: int64(floatBits(v))} }

// Str returns a string Value.
func Str(v string) Value { return Value{kind: KindString, str: v} }

// Null is the zero Value.
var Null = Value{}

// Kind reports the value's runtime kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is the SQL-style null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is valid only for KindInt
// values; other kinds return the raw numeric slot coerced to int64.
func (v Value) Int() int64 {
	if v.kind == KindFloat {
		return int64(floatFromBits(uint64(v.num)))
	}
	return v.num
}

// Float returns the floating-point payload, coercing integers.
func (v Value) Float() float64 {
	if v.kind == KindFloat {
		return floatFromBits(uint64(v.num))
	}
	return float64(v.num)
}

// Str returns the string payload ("" for non-strings).
func (v Value) Str() string { return v.str }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for debugging and logging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindString:
		return v.str
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Tuple is one row: a fixed-width slice of column values. Tuples are
// immutable once installed in a Record; writers build a fresh copy.
type Tuple []Value

// Clone returns a copy of the tuple that the caller may mutate.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports column-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}
