package storage

import (
	"strings"
	"testing"
)

func TestRWLockBasics(t *testing.T) {
	var l RWLock
	if !l.TryRLock() || !l.TryRLock() {
		t.Fatal("two concurrent readers must both acquire")
	}
	if l.TryWLock() {
		t.Fatal("writer must not acquire while readers hold")
	}
	l.RUnlock()
	if l.TryUpgrade() != true {
		t.Fatal("sole reader must upgrade")
	}
	if l.TryRLock() {
		t.Fatal("reader must not acquire while writer holds")
	}
	l.WUnlock()
	if !l.TryWLock() {
		t.Fatal("writer must acquire a free lock")
	}
	if l.TryUpgrade() {
		t.Fatal("upgrade must fail when not sole reader")
	}
	l.WUnlock()
}

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", wantSubstr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %v does not contain %q", r, wantSubstr)
		}
	}()
	f()
}

func TestRUnlockUnderflowPanics(t *testing.T) {
	var l RWLock
	mustPanic(t, "RUnlock of RWLock not read-held", l.RUnlock)
}

func TestRUnlockOfWriterHeldPanics(t *testing.T) {
	var l RWLock
	if !l.TryWLock() {
		t.Fatal("TryWLock on free lock")
	}
	mustPanic(t, "RUnlock of RWLock not read-held", l.RUnlock)
}

func TestWUnlockOfFreePanics(t *testing.T) {
	var l RWLock
	mustPanic(t, "WUnlock of RWLock not writer-held", l.WUnlock)
}

func TestWUnlockOfReadHeldPanics(t *testing.T) {
	var l RWLock
	if !l.TryRLock() {
		t.Fatal("TryRLock on free lock")
	}
	mustPanic(t, "WUnlock of RWLock not writer-held", l.WUnlock)
	l.RUnlock() // the misuse must not have dropped the shared hold
}
