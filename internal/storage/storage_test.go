package storage

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMetaWordPacking(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(1)}, MakeTS(3, 7), true)
	ts, locked, visible := r.Meta()
	if ts != MakeTS(3, 7) || locked || !visible {
		t.Fatalf("meta = (%d, %v, %v)", ts, locked, visible)
	}
	e, s := SplitTS(ts)
	if e != 3 || s != 7 {
		t.Fatalf("split = (%d, %d)", e, s)
	}
	if !r.TryLock() {
		t.Fatal("TryLock failed on unlocked record")
	}
	if r.TryLock() {
		t.Fatal("TryLock succeeded on locked record")
	}
	ts2, locked2, visible2 := r.Meta()
	if ts2 != ts || !locked2 || !visible2 {
		t.Fatal("lock bit clobbered timestamp or visibility")
	}
	r.SetTimestamp(MakeTS(4, 9))
	r.SetVisible(false)
	ts3, locked3, visible3 := r.Meta()
	if ts3 != MakeTS(4, 9) || !locked3 || visible3 {
		t.Fatalf("after updates: (%d, %v, %v)", ts3, locked3, visible3)
	}
	r.Unlock()
	if r.Locked() {
		t.Fatal("still locked after Unlock")
	}
}

func TestMakeSplitTSQuick(t *testing.T) {
	check := func(e uint32, s uint32) bool {
		e &= (1 << 30) - 1 // epoch half is 30 bits
		ge, gs := SplitTS(MakeTS(e, s))
		return ge == e && gs == s
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampOrderPreserved(t *testing.T) {
	// Timestamps must order first by epoch, then by sequence.
	if MakeTS(1, 0xFFFFFFFF) >= MakeTS(2, 0) {
		t.Fatal("epoch boundary breaks ordering")
	}
	if MakeTS(5, 10) >= MakeTS(5, 11) {
		t.Fatal("sequence ordering broken")
	}
}

func TestTupleSwapIsAtomicish(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(0), Str("a")}, 0, true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tu := r.Tuple()
				// A reader must always see a consistent pair.
				if tu[0].Int() >= 0 && tu[1].Str() == "" {
					t.Error("torn tuple read")
					return
				}
			}
		}()
	}
	for i := int64(1); i < 5000; i++ {
		r.SetTuple(Tuple{Int(i), Str("b")})
	}
	close(stop)
	wg.Wait()
}

func TestPackKeyComponents(t *testing.T) {
	widths := []uint8{16, 8, 24}
	k := PackKey([]uint64{513, 7, 99999}, widths)
	if got := k.Component(0, widths); got != 513 {
		t.Errorf("component 0 = %d", got)
	}
	if got := k.Component(1, widths); got != 7 {
		t.Errorf("component 1 = %d", got)
	}
	if got := k.Component(2, widths); got != 99999 {
		t.Errorf("component 2 = %d", got)
	}
	// Lexicographic component order must match numeric key order.
	k2 := PackKey([]uint64{513, 8, 0}, widths)
	if k >= k2 {
		t.Fatal("component order not preserved by packing")
	}
}

func TestPackKeyRoundTripQuick(t *testing.T) {
	widths := []uint8{16, 8, 24, 8}
	check := func(a uint16, b uint8, c uint32, d uint8) bool {
		c &= (1 << 24) - 1
		k := PackKey([]uint64{uint64(a), uint64(b), uint64(c), uint64(d)}, widths)
		return k.Component(0, widths) == uint64(a) &&
			k.Component(1, widths) == uint64(b) &&
			k.Component(2, widths) == uint64(c) &&
			k.Component(3, widths) == uint64(d)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on component overflow")
		}
	}()
	PackKey([]uint64{256}, []uint8{8})
}

func TestValueKindsAndEquality(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Fatal("int equality broken")
	}
	if !Str("x").Equal(Str("x")) || Str("x").Equal(Str("y")) {
		t.Fatal("string equality broken")
	}
	if Int(1).Equal(Str("1")) {
		t.Fatal("cross-kind equality")
	}
	if Float(2.5).Float() != 2.5 {
		t.Fatal("float round trip")
	}
	if Float(2.5).Int() != 2 {
		t.Fatal("float->int coercion")
	}
	if Int(3).Float() != 3.0 {
		t.Fatal("int->float coercion")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Fatal("null detection")
	}
	if Null.String() != "NULL" || Int(7).String() != "7" || Str("hi").String() != "hi" {
		t.Fatal("String() rendering")
	}
}

func TestTableGetOrCreateDummy(t *testing.T) {
	tab := NewTable(0, Schema{
		Name:    "T",
		Columns: []ColumnDef{{Name: "v", Kind: KindInt}},
		Ordered: true,
	})
	rec, created := tab.GetOrCreateDummy(42)
	if !created {
		t.Fatal("first call did not create")
	}
	if rec.Visible() {
		t.Fatal("dummy is visible")
	}
	if rec.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (pinned)", rec.Refs())
	}
	rec2, created2 := tab.GetOrCreateDummy(42)
	if created2 || rec2 != rec {
		t.Fatal("second call did not return the same record")
	}
	// The dummy must be in the ordered index so later scans can
	// observe its visibility flip.
	found := false
	tab.RangeScan(0, 100, func(k Key, r *Record) bool {
		if k == 42 && r == rec {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("dummy not in ordered index")
	}
}

func TestGCReclaimsUnpinnedInvisible(t *testing.T) {
	cat := NewCatalog()
	tab := cat.MustCreateTable(Schema{
		Name:    "T",
		Columns: []ColumnDef{{Name: "v", Kind: KindInt}},
		Ordered: true,
	})
	gc := NewGC(cat)

	rec, _ := tab.GetOrCreateDummy(1) // pinned
	gc.Retire(rec)
	if n := gc.Collect(); n != 0 {
		t.Fatalf("reclaimed %d pinned records", n)
	}
	rec.Unpin()
	if n := gc.Collect(); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if _, ok := tab.Peek(1); ok {
		t.Fatal("record still reachable after reclaim")
	}
	if tab.Len() != 0 {
		t.Fatalf("table len = %d", tab.Len())
	}
}

func TestGCSkipsResurrected(t *testing.T) {
	cat := NewCatalog()
	tab := cat.MustCreateTable(Schema{
		Name:    "T",
		Columns: []ColumnDef{{Name: "v", Kind: KindInt}},
	})
	gc := NewGC(cat)
	rec, _ := tab.GetOrCreateDummy(1)
	rec.Unpin()
	gc.Retire(rec)
	// A later transaction committed an insert into the dummy slot.
	rec.SetVisible(true)
	if n := gc.Collect(); n != 0 {
		t.Fatalf("reclaimed %d resurrected records", n)
	}
	if _, ok := tab.Peek(1); !ok {
		t.Fatal("resurrected record vanished")
	}
	if gc.Pending() != 0 {
		t.Fatal("resurrected record still queued")
	}
}

func TestSecondaryReindexOnUpdate(t *testing.T) {
	tab := NewTable(0, Schema{
		Name:    "T",
		Columns: []ColumnDef{{Name: "name", Kind: KindString}},
		Secondaries: []SecondaryDef{{
			Name: "by_name",
			Key:  func(pk Key, tu Tuple) string { return tu[0].Str() },
		}},
	})
	rec := tab.Put(1, Tuple{Str("alice")}, 0)
	old := rec.Tuple()
	newT := Tuple{Str("bob")}
	rec.SetTuple(newT)
	tab.ReindexSecondaries(rec, old, newT)

	var hits []string
	tab.SecondaryScan(0, "", "\xff", func(sk string, _ *Record) bool {
		hits = append(hits, sk)
		return true
	})
	if len(hits) != 1 || hits[0] != "bob" {
		t.Fatalf("secondary entries = %v", hits)
	}
}

func TestRWLock(t *testing.T) {
	var l RWLock
	if !l.TryRLock() || !l.TryRLock() {
		t.Fatal("shared locks failed")
	}
	if l.TryWLock() {
		t.Fatal("writer acquired over readers")
	}
	if l.TryUpgrade() {
		t.Fatal("upgrade with two readers succeeded")
	}
	l.RUnlock()
	if !l.TryUpgrade() {
		t.Fatal("sole-reader upgrade failed")
	}
	if l.TryRLock() {
		t.Fatal("reader acquired over writer")
	}
	l.WUnlock()
	if !l.TryWLock() {
		t.Fatal("writer after release failed")
	}
	l.WUnlock()
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	a := cat.MustCreateTable(Schema{Name: "A", Columns: []ColumnDef{{Name: "x", Kind: KindInt}}})
	if _, err := cat.CreateTable(Schema{Name: "A"}); err == nil {
		t.Fatal("duplicate table name accepted")
	}
	b := cat.MustCreateTable(Schema{Name: "B", Columns: []ColumnDef{{Name: "y", Kind: KindInt}}})
	if got, _ := cat.Table("A"); got != a {
		t.Fatal("lookup by name failed")
	}
	if cat.TableByID(1) != b {
		t.Fatal("lookup by id failed")
	}
	if len(cat.Tables()) != 2 {
		t.Fatal("table list wrong")
	}
	if a.Schema().ColumnIndex("x") != 0 || a.Schema().ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
}
