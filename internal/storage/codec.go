package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire codec for Values, shared by the WAL entry format and the
// checkpoint slot format: one kind byte followed by the payload
// (varint for ints, uvarint float bits for floats, length-prefixed
// bytes for strings). The encoding is stable — both on-disk formats
// depend on it.

// ByteReader is what the value decoder needs: checkpoint slots read
// from a bytes.Reader, WAL frame payloads too.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// AppendValue appends v's wire encoding to b.
func AppendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case KindNull:
	case KindInt:
		b = binary.AppendVarint(b, v.Int())
	case KindFloat:
		b = binary.AppendUvarint(b, math.Float64bits(v.Float()))
	case KindString:
		b = AppendString(b, v.Str())
	}
	return b
}

// AppendString appends a length-prefixed string to b.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// ReadValue decodes one Value from r.
func ReadValue(r ByteReader) (Value, error) {
	k, err := r.ReadByte()
	if err != nil {
		return Null, err
	}
	switch ValueKind(k) {
	case KindNull:
		return Null, nil
	case KindInt:
		n, err := binary.ReadVarint(r)
		return Int(n), err
	case KindFloat:
		n, err := binary.ReadUvarint(r)
		return Float(math.Float64frombits(n)), err
	case KindString:
		s, err := ReadString(r)
		return Str(s), err
	default:
		return Null, fmt.Errorf("storage: bad value kind %d", k)
	}
}

// ReadString decodes one length-prefixed string from r.
func ReadString(r ByteReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
