package storage

import "fmt"

// Catalog holds all tables of a database instance.
type Catalog struct {
	tables []*Table
	byName map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Table)}
}

// CreateTable registers a new table and returns it. Table names must
// be unique.
func (c *Catalog) CreateTable(schema Schema) (*Table, error) {
	if _, dup := c.byName[schema.Name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewTable(len(c.tables), schema)
	c.tables = append(c.tables, t)
	c.byName[schema.Name] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on duplicates (setup
// code paths where a duplicate is a programming error).
func (c *Catalog) MustCreateTable(schema Schema) *Table {
	t, err := c.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the table with the given name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.byName[name]
	return t, ok
}

// TableByID returns the table with the given catalog id.
func (c *Catalog) TableByID(id int) *Table {
	return c.tables[id]
}

// Tables returns all tables in creation order. The returned slice
// must not be modified.
func (c *Catalog) Tables() []*Table { return c.tables }
