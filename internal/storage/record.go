package storage

import (
	"runtime"
	"sync/atomic"
)

// Meta word layout (one atomic uint64 per record):
//
//	bit  63     lock bit
//	bit  62     visibility bit
//	bits 61..32 epoch half of the commit timestamp (30 bits)
//	bits 31..0  per-thread sequence half of the commit timestamp
//
// Packing lock state and timestamp into a single word lets the
// validation phase read both atomically, exactly as Silo's TID word
// does and as required by the paper's Algorithm 1.
const (
	metaLockBit    = uint64(1) << 63
	metaVisibleBit = uint64(1) << 62
	metaTSMask     = metaVisibleBit - 1 // low 62 bits

	// MaxTimestamp is the largest commit timestamp a record can carry.
	MaxTimestamp = metaTSMask
)

// MakeTS composes a 62-bit commit timestamp from its epoch (high,
// 30 bits) and sequence (low, 32 bits) halves.
func MakeTS(epoch uint32, seq uint32) uint64 {
	return (uint64(epoch)<<32 | uint64(seq)) & metaTSMask
}

// SplitTS decomposes a commit timestamp into epoch and sequence halves.
func SplitTS(ts uint64) (epoch uint32, seq uint32) {
	return uint32(ts >> 32), uint32(ts)
}

// addrCounter hands out the global total order used in place of raw
// memory addresses for deadlock-free lock acquisition. Creation order
// is as good as address order for the protocol (any global total
// order works, §4.2.1) and is deterministic for tests.
var addrCounter atomic.Uint64

// Record is one database row plus its concurrency-control metadata.
// The tuple is an immutable slice replaced wholesale by writers while
// they hold the record lock, so optimistic readers never observe a
// torn row.
type Record struct {
	meta  atomic.Uint64
	tuple atomic.Pointer[Tuple]
	refs  atomic.Int32 // transactions currently pinning the record (GC)
	rw    RWLock       // reader/writer lock for the 2PL baseline only
	addr  uint64       // global lock-order position, fixed at creation
	key   Key          // primary key, for logging and recovery
	table int          // owning table id, for logging and recovery

	// older heads the version chain of superseded row images
	// (version.go); chained marks membership in the version GC's
	// tracking queue.
	older   atomic.Pointer[Version]
	chained atomic.Bool
}

// NewRecord allocates a record holding tuple with the given initial
// commit timestamp. Visible controls the initial visibility bit:
// records inserted by an uncommitted transaction start invisible
// (§4.7.1).
func NewRecord(table int, key Key, tuple Tuple, ts uint64, visible bool) *Record {
	r := &Record{addr: addrCounter.Add(1), key: key, table: table}
	m := ts & metaTSMask
	if visible {
		m |= metaVisibleBit
	}
	r.meta.Store(m)
	t := tuple
	r.tuple.Store(&t)
	return r
}

// Addr returns the record's position in the global lock order.
func (r *Record) Addr() uint64 { return r.addr }

// Key returns the record's primary key.
func (r *Record) Key() Key { return r.key }

// Table returns the owning table id.
func (r *Record) Table() int { return r.table }

// Meta atomically reads the record's timestamp, lock bit and
// visibility bit together.
//
//thedb:noalloc
func (r *Record) Meta() (ts uint64, locked, visible bool) {
	m := r.meta.Load()
	return m & metaTSMask, m&metaLockBit != 0, m&metaVisibleBit != 0
}

// Timestamp returns the commit timestamp of the record's last writer.
//
//thedb:noalloc
func (r *Record) Timestamp() uint64 { return r.meta.Load() & metaTSMask }

// Visible reports the visibility bit (§2: off for deleted records and
// for records inserted by yet-to-be-committed transactions).
//
//thedb:noalloc
func (r *Record) Visible() bool { return r.meta.Load()&metaVisibleBit != 0 }

// Locked reports whether some transaction holds the record lock.
//
//thedb:noalloc
func (r *Record) Locked() bool { return r.meta.Load()&metaLockBit != 0 }

// TryLock attempts to set the lock bit, returning false if the record
// is already locked. It never blocks; this is the primitive behind
// the no-wait deadlock-prevention policy (§4.2.2).
//
//thedb:noalloc
func (r *Record) TryLock() bool {
	for {
		m := r.meta.Load()
		if m&metaLockBit != 0 {
			return false
		}
		if r.meta.CompareAndSwap(m, m|metaLockBit) {
			return true
		}
	}
}

// Lock spins until the record lock is acquired. Safe only when all
// transactions acquire locks in the global order, which rules out
// deadlock (§4.2.1).
//
//thedb:noalloc
func (r *Record) Lock() {
	for i := 0; ; i++ {
		if r.TryLock() {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock clears the lock bit. The caller must hold the lock.
//
//thedb:noalloc
func (r *Record) Unlock() {
	for {
		m := r.meta.Load()
		if r.meta.CompareAndSwap(m, m&^metaLockBit) {
			return
		}
	}
}

// SetTimestamp overwrites the commit timestamp. The caller must hold
// the record lock (Algorithm 3 installs writes before stamping).
//
//thedb:noalloc
func (r *Record) SetTimestamp(ts uint64) {
	for {
		m := r.meta.Load()
		if r.meta.CompareAndSwap(m, (m&^metaTSMask)|(ts&metaTSMask)) {
			return
		}
	}
}

// SetVisible sets or clears the visibility bit. The caller must hold
// the record lock.
//
//thedb:noalloc
func (r *Record) SetVisible(v bool) {
	for {
		m := r.meta.Load()
		n := m &^ metaVisibleBit
		if v {
			n |= metaVisibleBit
		}
		if r.meta.CompareAndSwap(m, n) {
			return
		}
	}
}

// Tuple returns the current row image. The returned slice is
// immutable and remains valid after concurrent writes (writers swap
// in a fresh copy).
//
//thedb:noalloc
func (r *Record) Tuple() Tuple { return *r.tuple.Load() }

// StableSnapshot reads the record's timestamp, visibility and tuple
// as one consistent pair without blocking writers: a seqlock-style
// loop reads the meta word, then the tuple pointer, then the meta
// word again, and accepts only when the record was unlocked and the
// meta word did not move. Writers install the tuple before stamping
// the timestamp (both under the record lock), so an accepted pair is
// exactly some committed version — never a new timestamp over an old
// tuple. The online checkpointer depends on that: pairing a stale
// tuple with a fresh timestamp would survive the Thomas write rule
// at replay and corrupt the restored state.
//
//thedb:noalloc
func (r *Record) StableSnapshot() (ts uint64, t Tuple, visible bool) {
	for i := 0; ; i++ {
		m1 := r.meta.Load()
		if m1&metaLockBit == 0 {
			tp := r.tuple.Load()
			if r.meta.Load() == m1 {
				return m1 & metaTSMask, *tp, m1&metaVisibleBit != 0
			}
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
}

// SetTuple installs a new row image. The caller must hold the record
// lock and must not mutate t afterwards.
func (r *Record) SetTuple(t Tuple) { r.tuple.Store(&t) }

// Pin increments the reference counter: the calling transaction holds
// the record in its read/write set, so the garbage collector must not
// reclaim it (§4.7.1).
func (r *Record) Pin() { r.refs.Add(1) }

// Unpin releases one reference taken by Pin.
func (r *Record) Unpin() { r.refs.Add(-1) }

// Refs returns the current reference count (for the GC and tests).
func (r *Record) Refs() int32 { return r.refs.Load() }
