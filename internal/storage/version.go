package storage

import (
	"runtime"
	"sync/atomic"
)

// Version chains (DESIGN.md §16): every record can carry a short
// singly-linked chain of superseded row images, newest first. A node
// covers the commit-timestamp interval [begin, end): begin is the
// commit that produced the image, end the commit that replaced it.
// Nodes are immutable after publication except for the next pointer,
// which only ever moves toward nil (pruning).
//
// Snapshot timestamps always have the boundary form MakeTS(F,0)-1 —
// the largest timestamp below epoch F — chosen so that every commit
// stamped at or below the snapshot is fully installed and every
// in-flight commit is stamped strictly above it (core.Engine takes
// care of both). Two consequences shape the code here:
//
//   - An image overwritten within one epoch can never be the visible
//     version of any snapshot (no boundary falls between its begin and
//     end), so the install path only allocates a chain node when the
//     overwrite crosses an epoch boundary. Same-epoch overwrites — the
//     common case, epochs are ~10ms and record overwrites often
//     microseconds apart — keep the read-write fast path allocation
//     free.
//   - A reader that finds the record's own stamp at or below its
//     snapshot can return the in-record image directly; it never has
//     to wait out a concurrent writer, because a writer mid-install is
//     stamped above every valid snapshot.
type Version struct {
	begin uint64 // commit TS at which this image became current
	end   uint64 // commit TS of the write that superseded it
	tuple Tuple  // the immutable row image

	next atomic.Pointer[Version] // next-older node; only ever re-stored as nil after publish
}

// Begin returns the commit timestamp that produced this image.
func (v *Version) Begin() uint64 { return v.begin }

// End returns the commit timestamp that superseded this image.
func (v *Version) End() uint64 { return v.end }

// Tuple returns the immutable row image.
func (v *Version) Tuple() Tuple { return v.tuple }

// NeedsVersion reports whether a commit at newTS superseding an image
// stamped oldTS must preserve that image on the version chain: true
// exactly when a snapshot boundary (a timestamp of the form
// MakeTS(epoch,0)-1) lies in [oldTS, newTS), i.e. when the overwrite
// crosses an epoch boundary. Same-epoch overwrites need no version —
// no snapshot can ever land between the two stamps.
//
//thedb:noalloc
func NeedsVersion(oldTS, newTS uint64) bool {
	return uint32(oldTS>>32) != uint32(newTS>>32)
}

// InstallVersion preserves the record's current image on its version
// chain when a commit at newTS is about to supersede it and a snapshot
// may still need it (NeedsVersion). The caller must hold the record's
// write serialization (the meta lock for the optimistic protocols, the
// RW write lock for 2PL) and must call it BEFORE mutating the record
// (SetTuple / SetVisible / SetTimestamp): readers detect a pushed-but-
// not-yet-stamped install by the head's begin matching the record's
// stamp. Invisible states (dummies, deleted records) are never pushed;
// their absence is represented by chain gaps.
//
// Returns true when a node was pushed — the caller then registers the
// record with the version GC.
//
//thedb:noalloc
func (r *Record) InstallVersion(newTS uint64) bool {
	ts, _, visible := r.Meta()
	if !visible {
		return false // invisible images are never snapshot-visible
	}
	if !NeedsVersion(ts, newTS) {
		return false
	}
	v := &Version{begin: ts, end: newTS, tuple: *r.tuple.Load()} //thedb:nolint:noalloc cold branch: at most one node per record per crossed epoch boundary (~EpochInterval apart), not one per write
	v.next.Store(r.older.Load())
	r.older.Store(v)
	return true
}

// SnapshotAt resolves the record's row image and existence as of
// snapshot timestamp s, without blocking and without being blocked by
// concurrent writers. s must be a snapshot boundary obtained from the
// engine (MakeTS(F,0)-1, below every in-flight commit); arbitrary
// timestamps get no consistency guarantee.
//
// Fast path: the record's own stamp is at or below s and no install is
// in flight — the in-record image is the visible version. The head
// pointer is re-checked alongside the meta word because a writer that
// skips the version push (same-epoch overwrite) swaps the tuple before
// restamping; both checks passing proves the tuple load paired with
// m1, or that the replacement is itself at or below s (in which case
// returning it is equally correct — see DESIGN.md §16 for the
// argument).
//
//thedb:noalloc
func (r *Record) SnapshotAt(s uint64) (Tuple, bool) {
	for i := 0; ; i++ {
		ts1, lk1, vis1 := r.Meta()
		if ts1 > s {
			// Current image is too new: the visible version, if any,
			// is on the chain.
			return r.versionAt(s)
		}
		h1 := r.older.Load()
		if h1 != nil && h1.begin == ts1 {
			// A writer pushed the current image but has not
			// restamped yet: the chain head IS version ts1, and its
			// end (the in-flight commit) is above s by construction.
			return r.versionAt(s)
		}
		tp := r.tuple.Load()
		// Meta() decomposes the whole meta word, so component equality
		// is word equality: the tuple load paired with the first read.
		ts2, lk2, vis2 := r.Meta()
		if r.older.Load() == h1 && ts2 == ts1 && lk2 == lk1 && vis2 == vis1 {
			if !vis1 {
				return nil, false // deleted (or never inserted) as of s
			}
			return *tp, true
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
}

// versionAt walks the chain (newest first) for the node covering s:
// the first node with begin <= s. Its end decides existence — a dead
// interval (end <= s) means the record did not exist at s (it was
// deleted and later re-inserted, or the covering image was skipped as
// same-epoch and s provably postdates its replacement). No node with
// begin <= s means the record did not exist yet.
//
//thedb:noalloc
func (r *Record) versionAt(s uint64) (Tuple, bool) {
	for v := r.older.Load(); v != nil; v = v.next.Load() {
		if v.begin <= s {
			if v.end <= s {
				return nil, false
			}
			return v.tuple, true
		}
	}
	return nil, false
}

// PruneVersions drops every chain node no snapshot at or above
// watermark can reach: the suffix starting at the first node whose end
// is at or below the watermark (ends strictly decrease down the
// chain). Safe concurrently with readers (nodes only become
// unreachable, never mutate) and with writers (a concurrent push wins
// the head CAS and the chain is retried next cycle; a push that
// resurrects an already-counted suffix is harmless — the suffix stays
// invisible to every live snapshot and the next pass cuts it again).
//
// Returns the number of nodes dropped and whether the chain is empty
// afterwards.
func (r *Record) PruneVersions(watermark uint64) (dropped int, empty bool) {
	h := r.older.Load()
	if h == nil {
		return 0, true
	}
	if h.end <= watermark {
		if r.older.CompareAndSwap(h, nil) {
			return chainLen(h), true
		}
		return 0, false
	}
	prev := h
	for v := prev.next.Load(); v != nil; v = prev.next.Load() {
		if v.end <= watermark {
			prev.next.Store(nil)
			return chainLen(v), false
		}
		prev = v
	}
	return 0, false
}

// VersionLen returns the number of chain nodes (superseded images)
// currently reachable. The full chain length as seen by a snapshot
// reader is VersionLen()+1: the in-record image is always version 0.
func (r *Record) VersionLen() int { return chainLen(r.older.Load()) }

// OldestVersion returns the tail of the chain, or nil when empty
// (tests, diagnostics).
func (r *Record) OldestVersion() *Version {
	v := r.older.Load()
	if v == nil {
		return nil
	}
	for n := v.next.Load(); n != nil; n = v.next.Load() {
		v = n
	}
	return v
}

func chainLen(v *Version) int {
	n := 0
	for ; v != nil; v = v.next.Load() {
		n++
	}
	return n
}

// markChained flips the record's membership flag for the version GC's
// tracking queue, returning true when this caller won the transition
// (and must enqueue the record). clearChained re-arms it once the
// chain has been fully pruned.
func (r *Record) markChained() bool { return r.chained.CompareAndSwap(false, true) }

func (r *Record) clearChained() { r.chained.Store(false) }
