package storage

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Kind ValueKind
}

// SecondaryDef declares a string-keyed ordered secondary index. The
// Key function must produce a unique string per record; non-unique
// logical keys (such as TPC-C's customer last name) append the primary
// key as a suffix so that prefix scans enumerate all matches in order.
type SecondaryDef struct {
	Name string
	Key  func(pk Key, t Tuple) string
}

// Schema describes a table: its columns, indexing strategy, its rank
// in the application's tree schema (used for validation-order
// rearrangement, §4.5), and its partitioning rule (used by the
// deterministic engine, §5).
type Schema struct {
	Name    string
	Columns []ColumnDef

	// Ordered requests an ordered primary index (B+-tree) in
	// addition to the hash index, enabling range scans with phantom
	// protection.
	Ordered bool

	// ShardShift shards the ordered index by the top (64-ShardShift)
	// key bits; 64 means a single unsharded tree.
	ShardShift uint

	// Secondaries lists ordered secondary indexes.
	Secondaries []SecondaryDef

	// Rank is the table's topological position in the schema tree
	// (smaller = closer to the root; TPC-C: Warehouse=0, District=1,
	// ...). Tables default to rank 0; the engine falls back to pure
	// address order among equal ranks.
	Rank int

	// Partition maps a primary key to its partition for the
	// deterministic engine. Nil marks a replicated read-only table.
	Partition func(Key) int
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}
