package storage

import "sync/atomic"

// RWLock is a non-blocking reader/writer lock used by the THEDB-2PL
// baseline (§5: per-record two-phase locking with no-wait deadlock
// prevention). It is kept separate from the record meta word: the
// OCC-family protocols use the meta lock bit, 2PL uses this word, and
// an engine instance runs exactly one protocol, so the two never mix.
//
// State: 0 free, -1 held by a writer, n>0 held by n readers.
type RWLock struct {
	state atomic.Int32
}

// TryRLock attempts to take a shared lock without blocking.
func (l *RWLock) TryRLock() bool {
	for {
		s := l.state.Load()
		if s < 0 {
			return false
		}
		if l.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// RUnlock releases one shared lock.
func (l *RWLock) RUnlock() { l.state.Add(-1) }

// TryWLock attempts to take the exclusive lock without blocking.
func (l *RWLock) TryWLock() bool { return l.state.CompareAndSwap(0, -1) }

// WUnlock releases the exclusive lock.
func (l *RWLock) WUnlock() { l.state.Store(0) }

// TryUpgrade promotes a shared lock to exclusive. It succeeds only
// when the caller is the sole reader.
func (l *RWLock) TryUpgrade() bool { return l.state.CompareAndSwap(1, -1) }

// RW returns the record's 2PL lock.
func (r *Record) RW() *RWLock { return &r.rw }
