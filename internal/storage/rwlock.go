package storage

import (
	"fmt"
	"sync/atomic"
)

// RWLock is a non-blocking reader/writer lock used by the THEDB-2PL
// baseline (§5: per-record two-phase locking with no-wait deadlock
// prevention). It is kept separate from the record meta word: the
// OCC-family protocols use the meta lock bit, 2PL uses this word, and
// an engine instance runs exactly one protocol, so the two never mix.
//
// State: 0 free, -1 held by a writer, n>0 held by n readers.
type RWLock struct {
	state atomic.Int32
}

// TryRLock attempts to take a shared lock without blocking.
//
//thedb:noalloc
func (l *RWLock) TryRLock() bool {
	for {
		s := l.state.Load()
		if s < 0 {
			return false
		}
		if l.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// RUnlock releases one shared lock. Releasing a lock that is not
// read-held panics: silently driving the state negative would make a
// later TryRLock spin on garbage and corrupt the 2PL baseline's
// bookkeeping, which every THEDB-2PL and THEDB-HYBRID run depends on.
//
//thedb:noalloc
func (l *RWLock) RUnlock() {
	for {
		s := l.state.Load()
		if s <= 0 {
			//thedb:nolint:noalloc panic message on lock-protocol misuse; unreachable in a correct engine and immediately fatal when not
			panic(fmt.Sprintf("storage: RUnlock of RWLock not read-held (state %d)", s))
		}
		if l.state.CompareAndSwap(s, s-1) {
			return
		}
	}
}

// TryWLock attempts to take the exclusive lock without blocking.
//
//thedb:noalloc
func (l *RWLock) TryWLock() bool { return l.state.CompareAndSwap(0, -1) }

// WUnlock releases the exclusive lock. Releasing a lock that is not
// writer-held panics rather than silently zeroing the state (which
// would drop other readers' shared holds on a misuse).
//
//thedb:noalloc
func (l *RWLock) WUnlock() {
	if !l.state.CompareAndSwap(-1, 0) {
		//thedb:nolint:noalloc panic message on lock-protocol misuse; unreachable in a correct engine and immediately fatal when not
		panic(fmt.Sprintf("storage: WUnlock of RWLock not writer-held (state %d)", l.state.Load()))
	}
}

// TryUpgrade promotes a shared lock to exclusive. It succeeds only
// when the caller is the sole reader.
//
//thedb:noalloc
func (l *RWLock) TryUpgrade() bool { return l.state.CompareAndSwap(1, -1) }

// RW returns the record's 2PL lock.
func (r *Record) RW() *RWLock { return &r.rw }
