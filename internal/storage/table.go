package storage

import (
	"fmt"

	"thedb/internal/btree"
	"thedb/internal/hashidx"
)

// Table is one relation: a primary hash index for point access, an
// optional ordered B+-tree for range scans (with per-leaf versions
// for phantom protection), and zero or more string-keyed secondary
// indexes.
type Table struct {
	id          int
	schema      Schema
	primary     *hashidx.Map[*Record]
	ordered     *btree.Sharded[*Record]
	secondaries []*btree.Tree[string, *Record]
}

// ScanRefs is the set of leaf observations returned by a range scan,
// stored in the read set for validation.
type ScanRefs = []btree.ScanRef[uint64, *Record]

// NewTable builds a table from its schema. id must be unique within
// the catalog.
func NewTable(id int, schema Schema) *Table {
	t := &Table{id: id, schema: schema, primary: hashidx.New[*Record]()}
	if schema.Ordered {
		shift := schema.ShardShift
		if shift == 0 {
			shift = 64
		}
		t.ordered = btree.NewSharded[*Record](shift)
	}
	for range schema.Secondaries {
		t.secondaries = append(t.secondaries, btree.New[string, *Record]())
	}
	return t
}

// ID returns the table's catalog id.
func (t *Table) ID() int { return t.id }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Rank returns the table's tree-schema rank (§4.5).
func (t *Table) Rank() int { return t.schema.Rank }

// Len returns the number of records reachable through the primary
// index, including invisible ones.
func (t *Table) Len() int { return t.primary.Len() }

// Get returns the record stored under key, pinning it against garbage
// collection. Callers must Unpin when done (the engine does so when
// the transaction finishes). The returned record may be invisible.
func (t *Table) Get(key Key) (*Record, bool) {
	return t.primary.GetWith(uint64(key), (*Record).Pin)
}

// Peek returns the record without pinning (bulk inspection, tests).
func (t *Table) Peek(key Key) (*Record, bool) {
	return t.primary.Get(uint64(key))
}

// GetOrCreateDummy returns the record under key, creating an
// invisible dummy record if none exists — the mechanism of §4.7.1 for
// reads of non-existent keys and for inserts. The result is pinned.
func (t *Table) GetOrCreateDummy(key Key) (rec *Record, created bool) {
	rec, loaded := t.primary.LoadOrStoreWith(uint64(key), func() *Record {
		r := NewRecord(t.id, key, make(Tuple, len(t.schema.Columns)), 0, false)
		return r
	}, (*Record).Pin)
	if !loaded && t.ordered != nil {
		t.ordered.Insert(uint64(key), rec)
	}
	return rec, !loaded
}

// Put bulk-loads a visible record (population and recovery only; it
// bypasses concurrency control). It replaces any existing record.
func (t *Table) Put(key Key, tuple Tuple, ts uint64) *Record {
	if len(tuple) != len(t.schema.Columns) {
		panic(fmt.Sprintf("storage: table %s: tuple width %d != schema width %d",
			t.schema.Name, len(tuple), len(t.schema.Columns)))
	}
	rec := NewRecord(t.id, key, tuple, ts, true)
	t.primary.Store(uint64(key), rec)
	if t.ordered != nil {
		t.ordered.Insert(uint64(key), rec)
	}
	t.IndexSecondaries(rec, tuple)
	return rec
}

// IndexSecondaries adds the record to every secondary index using the
// given tuple image. Called at commit time for inserts.
func (t *Table) IndexSecondaries(rec *Record, tuple Tuple) {
	for i, def := range t.schema.Secondaries {
		t.secondaries[i].Insert(def.Key(rec.Key(), tuple), rec)
	}
}

// ReindexSecondaries moves the record between secondary entries when
// an update changed an indexed column.
func (t *Table) ReindexSecondaries(rec *Record, old, new_ Tuple) {
	for i, def := range t.schema.Secondaries {
		ok, nk := def.Key(rec.Key(), old), def.Key(rec.Key(), new_)
		if ok != nk {
			t.secondaries[i].Delete(ok)
			t.secondaries[i].Insert(nk, rec)
		}
	}
}

// RangeScan visits records with lo <= key <= hi in key order,
// including invisible records (callers filter on visibility), and
// returns the leaf observations for phantom validation. The table
// must have an ordered index.
func (t *Table) RangeScan(lo, hi Key, fn func(k Key, r *Record) bool) ScanRefs {
	return t.ordered.Scan(uint64(lo), uint64(hi), func(k uint64, r *Record) bool {
		return fn(Key(k), r)
	})
}

// SecondaryScan visits records whose secondary key is in [lo, hi] on
// the named index, in secondary-key order.
func (t *Table) SecondaryScan(idx int, lo, hi string, fn func(sk string, r *Record) bool) []btree.ScanRef[string, *Record] {
	return t.secondaries[idx].Scan(lo, hi, fn)
}

// SecondaryIndexID returns the position of the named secondary index,
// or -1.
func (t *Table) SecondaryIndexID(name string) int {
	for i, def := range t.schema.Secondaries {
		if def.Name == name {
			return i
		}
	}
	return -1
}

// unlink removes a record from all indexes if it is unreferenced.
// Returns false when the record is still pinned. GC only.
func (t *Table) unlink(rec *Record) bool {
	removed := t.primary.DeleteIf(uint64(rec.Key()), func(cur *Record) bool {
		return cur == rec && cur.Refs() == 0 && !cur.Visible()
	})
	if !removed {
		return false
	}
	// Conditional removals: a concurrent insert may have re-created
	// the key with a fresh record between the primary removal and
	// these cleanups; evicting the newcomer's entries would make a
	// committed row invisible to scans.
	same := func(cur *Record) bool { return cur == rec }
	if t.ordered != nil {
		t.ordered.DeleteIf(uint64(rec.Key()), same)
	}
	tuple := rec.Tuple()
	for i, def := range t.schema.Secondaries {
		t.secondaries[i].DeleteIf(def.Key(rec.Key(), tuple), same)
	}
	return true
}

// ForEach visits every record in the primary index (checkpointing,
// consistency checks). Iteration order is unspecified.
func (t *Table) ForEach(fn func(k Key, r *Record) bool) {
	t.primary.Range(func(k uint64, r *Record) bool { return fn(Key(k), r) })
}
