package storage

import (
	"testing"
)

// boundary returns the snapshot timestamp just below epoch f — the
// only form the engine ever hands to SnapshotAt.
func boundary(f uint32) uint64 { return MakeTS(f, 0) - 1 }

func TestNeedsVersion(t *testing.T) {
	cases := []struct {
		old, new uint64
		want     bool
	}{
		{MakeTS(3, 1), MakeTS(3, 2), false},  // same epoch: no boundary between
		{MakeTS(3, 1), MakeTS(4, 0), true},   // adjacent epochs
		{MakeTS(3, 9), MakeTS(100, 0), true}, // distant epochs
		{MakeTS(3, 0), MakeTS(3, 1<<20), false},
	}
	for _, c := range cases {
		if got := NeedsVersion(c.old, c.new); got != c.want {
			t.Errorf("NeedsVersion(%#x, %#x) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

// overwrite mimics the commit path's install discipline: push the
// outgoing image if a snapshot may need it, then mutate and restamp.
func overwrite(r *Record, tuple Tuple, ts uint64) {
	r.InstallVersion(ts)
	r.SetTuple(tuple)
	r.SetTimestamp(ts)
}

func TestSnapshotAtResolvesHistoricalImages(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(10)}, MakeTS(2, 1), true)
	overwrite(r, Tuple{Int(20)}, MakeTS(4, 1)) // crosses 2→4: pushes image 10
	overwrite(r, Tuple{Int(30)}, MakeTS(4, 9)) // same epoch: no push
	overwrite(r, Tuple{Int(40)}, MakeTS(7, 2)) // crosses 4→7: pushes image 30

	if n := r.VersionLen(); n != 2 {
		t.Fatalf("VersionLen = %d, want 2 (same-epoch overwrite must not push)", n)
	}
	cases := []struct {
		s       uint64
		want    int64
		present bool
	}{
		{boundary(2), 0, false}, // before first insert
		{boundary(3), 10, true}, // between MakeTS(2,1) and MakeTS(4,1)
		{boundary(4), 10, true},
		{boundary(5), 30, true}, // image 20 was superseded same-epoch: 30 covers [4,1)-(7,2)
		{boundary(7), 30, true},
		{boundary(8), 40, true}, // current image
	}
	for _, c := range cases {
		tuple, ok := r.SnapshotAt(c.s)
		if ok != c.present {
			t.Fatalf("SnapshotAt(%#x) present = %v, want %v", c.s, ok, c.present)
		}
		if ok && tuple[0].Int() != c.want {
			t.Errorf("SnapshotAt(%#x) = %d, want %d", c.s, tuple[0].Int(), c.want)
		}
	}
}

func TestSnapshotAtDeleteGap(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(10)}, MakeTS(2, 1), true)
	// Delete in epoch 4: push the pre-delete image, then go invisible.
	r.InstallVersion(MakeTS(4, 3))
	r.SetVisible(false)
	r.SetTimestamp(MakeTS(4, 3))
	// Re-insert in epoch 6: the record is invisible, so no push — the
	// gap [4,3)..(6,5) is represented by the chain head's end stamp.
	r.InstallVersion(MakeTS(6, 5))
	r.SetTuple(Tuple{Int(99)})
	r.SetVisible(true)
	r.SetTimestamp(MakeTS(6, 5))

	if tuple, ok := r.SnapshotAt(boundary(4)); !ok || tuple[0].Int() != 10 {
		t.Fatalf("snapshot before delete: (%v, %v), want (10, true)", tuple, ok)
	}
	if _, ok := r.SnapshotAt(boundary(5)); ok {
		t.Fatal("snapshot in the delete gap sees the record as present")
	}
	if _, ok := r.SnapshotAt(boundary(6)); ok {
		t.Fatal("snapshot at the re-insert epoch's floor sees the record as present")
	}
	if tuple, ok := r.SnapshotAt(boundary(7)); !ok || tuple[0].Int() != 99 {
		t.Fatalf("snapshot after re-insert: (%v, %v), want (99, true)", tuple, ok)
	}
}

// Mid-install detection: a pushed-but-not-restamped head (begin equals
// the record's stamp) must route the reader to the chain, never to the
// half-installed in-record state.
func TestSnapshotAtMidInstall(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(10)}, MakeTS(2, 1), true)
	r.InstallVersion(MakeTS(4, 1)) // push, but do NOT SetTuple/SetTimestamp yet
	if tuple, ok := r.SnapshotAt(boundary(3)); !ok || tuple[0].Int() != 10 {
		t.Fatalf("mid-install snapshot = (%v, %v), want (10, true)", tuple, ok)
	}
	// The in-flight commit (epoch 4) is above every valid snapshot, so
	// no boundary can observe the new image yet; boundary(4) still
	// resolves to the old image through the chain.
	if tuple, ok := r.SnapshotAt(boundary(4)); !ok || tuple[0].Int() != 10 {
		t.Fatalf("mid-install snapshot at boundary(4) = (%v, %v), want (10, true)", tuple, ok)
	}
}

func TestPruneVersions(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(1)}, MakeTS(2, 1), true)
	overwrite(r, Tuple{Int(2)}, MakeTS(3, 1))
	overwrite(r, Tuple{Int(3)}, MakeTS(4, 1))
	overwrite(r, Tuple{Int(4)}, MakeTS(5, 1))
	if n := r.VersionLen(); n != 3 {
		t.Fatalf("VersionLen = %d, want 3", n)
	}

	// Watermark below every end: nothing reclaimable.
	if n, empty := r.PruneVersions(boundary(3)); n != 0 || empty {
		t.Fatalf("prune(boundary 3) = (%d, %v), want (0, false)", n, empty)
	}
	// Watermark passes the two older nodes (ends MakeTS(3,1), MakeTS(4,1)).
	if n, empty := r.PruneVersions(boundary(5)); n != 2 || empty {
		t.Fatalf("prune(boundary 5) = (%d, %v), want (2, false)", n, empty)
	}
	if n := r.VersionLen(); n != 1 {
		t.Fatalf("VersionLen after partial prune = %d, want 1", n)
	}
	// Watermark passes the head too: chain empties.
	if n, empty := r.PruneVersions(boundary(6)); n != 1 || !empty {
		t.Fatalf("prune(boundary 6) = (%d, %v), want (1, true)", n, empty)
	}
	if tuple, ok := r.SnapshotAt(boundary(6)); !ok || tuple[0].Int() != 4 {
		t.Fatalf("current image after full prune = (%v, %v), want (4, true)", tuple, ok)
	}
}

// The version-install path must stay allocation free in the
// same-epoch common case (ISSUE 10 satellite: the read-write fast
// path pays nothing for MVCC until a commit crosses an epoch
// boundary). The snapshot read fast path is pinned alongside it.
func TestVersionHotPathZeroAlloc(t *testing.T) {
	r := NewRecord(0, 1, Tuple{Int(10)}, MakeTS(3, 1), true)
	seq := uint32(2)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.InstallVersion(MakeTS(3, seq)) // same epoch: skip the push
		r.SetTimestamp(MakeTS(3, seq))
		seq++
	}); allocs != 0 {
		t.Errorf("same-epoch InstallVersion allocates %.1f per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := r.SnapshotAt(boundary(4)); !ok {
			t.Fatal("record invisible")
		}
	}); allocs != 0 {
		t.Errorf("SnapshotAt fast path allocates %.1f per op, want 0", allocs)
	}
}
