// Package netfault is the network counterpart of internal/fault: a
// fault-injecting TCP proxy that sits between a thedb client and
// server and misbehaves at wire-frame boundaries, deterministically,
// from a seed.
//
// The engine-level chaos harness (fault.Schedule) proves the protocol
// survives adversity inside the process; this proxy proves the
// serving plane survives adversity on the wire — the failure the
// healing argument meets at the network layer. A connection cut after
// a CALL frame is written leaves the client unable to distinguish
// "never executed" from "committed but un-acked"; the proxy
// manufactures exactly those cuts (plus delays, blackholes and
// duplicate deliveries) so the (session, seq) dedup machinery can be
// tortured end to end.
//
// # Fault model
//
// The client→server pump parses frame boundaries and draws one
// decision per CALL frame from a splitmix64 stream derived from
// (Config.Seed, connection index) — the same sanctioned randomness
// Schedule uses, so a failing seed replays. Handshake frames pass
// clean: faults land on operations, where retry semantics live. The
// server→client leg is a plain byte pump; response loss is covered by
// FaultResetPostWrite, which delivers the call and then kills the
// connection before the response can travel back.
//
// Anything that stops looking like the protocol (bad magic, an
// over-large length field) demotes the connection to raw passthrough:
// the proxy never eats bytes it cannot frame.
package netfault

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/fault"
	"thedb/internal/wire"
)

// Fault enumerates the proxy's per-frame actions.
type Fault int

// Faults, in decision order.
const (
	// FaultNone forwards the frame untouched.
	FaultNone Fault = iota
	// FaultResetPreWrite cuts the connection before the frame reaches
	// the server: the call never executed, the client sees a broken
	// conn. Unambiguously retryable — if the client can tell.
	FaultResetPreWrite
	// FaultResetMidWrite forwards a strict prefix of the frame, then
	// cuts: the server sees a torn frame and drops the connection too.
	FaultResetMidWrite
	// FaultResetPostWrite forwards the whole frame, then cuts: the
	// server executes the call but the response never travels back.
	// This is the ambiguous case exactly-once retries exist for.
	FaultResetPostWrite
	// FaultDelay holds the frame for Config.Delay, then forwards it.
	FaultDelay
	// FaultBlackhole stops forwarding entirely — the connection stays
	// open and silent for Config.Stall, then is cut, the way a dead
	// middlebox drops traffic until someone times out.
	FaultBlackhole
	// FaultDuplicate forwards the frame twice back to back, as a
	// retransmitting network path would.
	FaultDuplicate

	numFaults
)

// String names a fault for diagnostics.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultResetPreWrite:
		return "reset-pre-write"
	case FaultResetMidWrite:
		return "reset-mid-write"
	case FaultResetPostWrite:
		return "reset-post-write"
	case FaultDelay:
		return "delay"
	case FaultBlackhole:
		return "blackhole"
	case FaultDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Config tunes a Proxy. Probabilities are per CALL frame and are
// evaluated in declaration order against one draw, so their sum must
// stay at or below 1.
type Config struct {
	// Seed drives every decision stream; the same seed against the
	// same traffic order replays the same faults.
	Seed uint64

	// Per-frame fault probabilities (all default 0: a transparent
	// proxy).
	PResetPre  float64
	PResetMid  float64
	PResetPost float64
	PDelay     float64
	PBlackhole float64
	PDuplicate float64

	// Delay is the FaultDelay hold time (default 1ms).
	Delay time.Duration

	// Stall is how long a blackholed connection stays open and silent
	// before the proxy cuts it (default 100ms). Bounded so a client
	// with no per-attempt timeout still gets unwedged.
	Stall time.Duration

	// DialTimeout bounds the proxy's dial to the target (default 2s).
	DialTimeout time.Duration

	// MaxFrame bounds the frame lengths the proxy will parse (default
	// wire.DefaultMaxFrame); larger length fields demote the
	// connection to raw passthrough rather than buffering.
	MaxFrame int
}

func (c *Config) fill() {
	if c.Delay <= 0 {
		c.Delay = time.Millisecond
	}
	if c.Stall <= 0 {
		c.Stall = 100 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
}

// Proxy is a fault-injecting TCP forwarder. Point clients at Addr;
// traffic flows to the current target (Retarget swaps it, e.g. after
// a server restart on a new port).
type Proxy struct {
	cfg    Config
	l      net.Listener
	target atomic.Value // string

	mu    sync.Mutex
	links map[*link]struct{}

	closed  atomic.Bool
	connSeq atomic.Uint64
	counts  [numFaults]atomic.Int64
	wg      sync.WaitGroup
}

// link is one proxied connection pair. mute flips when a fault has
// decided the client must never hear back (post-write reset,
// blackhole); the downstream pump then swallows server bytes instead
// of forwarding them, so response suppression is deterministic rather
// than a race between the server's write and the cut.
type link struct {
	client net.Conn
	server net.Conn
	mute   atomic.Bool
	once   sync.Once
}

// cut severs both legs exactly once. Close errors are ignored by
// design: the whole point of the proxy is to kill sockets that may
// already be dying.
func (ln *link) cut() {
	ln.once.Do(func() {
		_ = ln.client.Close()
		_ = ln.server.Close()
	})
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	cfg.fill()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: listen: %w", err)
	}
	p := &Proxy{cfg: cfg, l: l, links: map[*link]struct{}{}}
	p.target.Store(target)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what clients should dial.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Retarget points future connections at a new backend address.
// Existing links keep flowing to the old one; CutAll kills them.
func (p *Proxy) Retarget(addr string) { p.target.Store(addr) }

// CutAll severs every live proxied connection — the client-visible
// shape of a server crash (every socket dies at once), usable
// independently of how the backend actually goes down.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for ln := range p.links {
		links = append(links, ln)
	}
	p.mu.Unlock()
	for _, ln := range links {
		ln.cut()
	}
}

// Count returns how many times fault f fired.
func (p *Proxy) Count(f Fault) int64 {
	if f < 0 || f >= numFaults {
		return 0
	}
	return p.counts[f].Load()
}

// Injected totals every non-none fault fired.
func (p *Proxy) Injected() int64 {
	var n int64
	for f := FaultResetPreWrite; f < numFaults; f++ {
		n += p.counts[f].Load()
	}
	return n
}

// Close stops accepting, severs every link, and waits for the pump
// goroutines to drain.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.l.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.l.Accept()
		if err != nil {
			return
		}
		idx := p.connSeq.Add(1)
		p.wg.Add(1)
		go p.serve(nc, idx)
	}
}

// serve dials the target and runs the two pumps for one client
// connection.
func (p *Proxy) serve(client net.Conn, idx uint64) {
	defer p.wg.Done()
	target, _ := p.target.Load().(string)
	server, err := net.DialTimeout("tcp", target, p.cfg.DialTimeout)
	if err != nil {
		// Backend unreachable (restarting, retargeted to a dead
		// address): the client sees its connection refused-by-cut,
		// which is the honest translation.
		_ = client.Close()
		return
	}
	ln := &link{client: client, server: server}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		ln.cut()
		return
	}
	p.links[ln] = struct{}{}
	p.mu.Unlock()

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pumpUp(ln, fault.NewStream(p.cfg.Seed).Derive(idx))
		ln.cut()
	}()
	go func() {
		defer pumps.Done()
		p.pumpDown(ln)
		ln.cut()
	}()
	pumps.Wait()
	p.mu.Lock()
	delete(p.links, ln)
	p.mu.Unlock()
}

// pumpUp forwards client→server frame by frame, injecting faults at
// CALL boundaries.
func (p *Proxy) pumpUp(ln *link, stream *fault.Stream) {
	hdr := make([]byte, wire.HeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(ln.client, hdr); err != nil {
			return
		}
		if binary.LittleEndian.Uint16(hdr[0:2]) != wire.Magic {
			p.passthrough(ln, hdr)
			return
		}
		length := binary.LittleEndian.Uint32(hdr[12:16])
		if uint64(length) > uint64(p.cfg.MaxFrame) {
			p.passthrough(ln, hdr)
			return
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(ln.client, payload); err != nil {
			return
		}
		frame := append(append(make([]byte, 0, len(hdr)+len(payload)), hdr...), payload...)

		act := FaultNone
		if hdr[3] == wire.OpCall {
			act = p.decide(stream)
		}
		if act != FaultNone {
			p.counts[act].Add(1)
		}
		switch act {
		case FaultResetPreWrite:
			return
		case FaultResetMidWrite:
			n := 1 + stream.Intn(len(frame)-1)
			_, _ = ln.server.Write(frame[:n])
			return
		case FaultResetPostWrite:
			// Mute before forwarding: the call reaches the server,
			// its response never reaches the client — the ambiguous
			// window, deterministically.
			ln.mute.Store(true)
			_, _ = ln.server.Write(frame)
			return
		case FaultDelay:
			time.Sleep(p.cfg.Delay)
		case FaultBlackhole:
			// Hold the connection open and silent — both directions —
			// then cut. The bounded stall is what lets clients without
			// per-attempt timeouts escape (their conn dies and they
			// re-dial).
			ln.mute.Store(true)
			time.Sleep(p.cfg.Stall)
			return
		case FaultDuplicate:
			if _, err := ln.server.Write(frame); err != nil {
				return
			}
		}
		if _, err := ln.server.Write(frame); err != nil {
			return
		}
	}
}

// pumpDown forwards server→client byte-wise, honoring mute: once a
// fault has condemned the connection, response bytes are swallowed
// rather than raced against the cut.
func (p *Proxy) pumpDown(ln *link) {
	buf := make([]byte, 32<<10)
	for {
		n, err := ln.server.Read(buf)
		if n > 0 && !ln.mute.Load() {
			if _, werr := ln.client.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// passthrough abandons frame parsing: forward the already-read bytes
// and then copy raw until the connection dies. Non-protocol traffic
// flows unharmed (and unfaulted).
func (p *Proxy) passthrough(ln *link, buf []byte) {
	if _, err := ln.server.Write(buf); err != nil {
		return
	}
	_, _ = io.Copy(ln.server, ln.client)
}

// decide draws one fault decision. The probability bands are walked
// in declaration order against a single uniform draw.
func (p *Proxy) decide(stream *fault.Stream) Fault {
	r := stream.Float()
	for _, band := range []struct {
		prob float64
		act  Fault
	}{
		{p.cfg.PResetPre, FaultResetPreWrite},
		{p.cfg.PResetMid, FaultResetMidWrite},
		{p.cfg.PResetPost, FaultResetPostWrite},
		{p.cfg.PDelay, FaultDelay},
		{p.cfg.PBlackhole, FaultBlackhole},
		{p.cfg.PDuplicate, FaultDuplicate},
	} {
		if r < band.prob {
			return band.act
		}
		r -= band.prob
	}
	return FaultNone
}
