package netfault

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"thedb/internal/wire"
)

// echoServer is a minimal frame server: welcome on hello, an empty
// result echoing the request id on every call. It counts calls, which
// is how the tests observe what actually crossed the proxy.
type echoServer struct {
	l     net.Listener
	calls atomic.Int64
}

func startEcho(t *testing.T) *echoServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	es := &echoServer{l: l}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go es.handle(nc)
		}
	}()
	return es
}

func (es *echoServer) handle(nc net.Conn) {
	defer func() { _ = nc.Close() }()
	fr := wire.NewReader(nc, 0)
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		switch f.Op {
		case wire.OpHello:
			if _, err := nc.Write(wire.AppendWelcome(nil, wire.Welcome{
				MaxFrame: wire.DefaultMaxFrame, MaxInFlight: 64, Server: "echo",
			})); err != nil {
				return
			}
		case wire.OpCall:
			es.calls.Add(1)
			if _, err := nc.Write(wire.AppendResult(nil, f.ID, nil)); err != nil {
				return
			}
		}
	}
}

// dialVia dials the proxy and completes the handshake.
func dialVia(t *testing.T, p *Proxy) (net.Conn, *wire.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	if err := nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Client: "netfault-test"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	fr := wire.NewReader(nc, 0)
	f, err := fr.Next()
	if err != nil || f.Op != wire.OpWelcome {
		t.Fatalf("welcome: op=%d err=%v", f.Op, err)
	}
	return nc, fr
}

func newProxy(t *testing.T, target string, cfg Config) *Proxy {
	t.Helper()
	p, err := New(target, cfg)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestProxyPassthrough(t *testing.T) {
	es := startEcho(t)
	p := newProxy(t, es.l.Addr().String(), Config{Seed: 1})
	nc, fr := dialVia(t, p)
	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := nc.Write(wire.AppendCall(nil, uint64(i), wire.Call{Proc: "x"})); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		f, err := fr.Next()
		if err != nil || f.Op != wire.OpResult || f.ID != uint64(i) {
			t.Fatalf("result %d: op=%d id=%d err=%v", i, f.Op, f.ID, err)
		}
	}
	if got := es.calls.Load(); got != n {
		t.Fatalf("server saw %d calls, want %d", got, n)
	}
	if p.Injected() != 0 {
		t.Fatalf("transparent proxy injected %d faults", p.Injected())
	}
}

func TestProxyDuplicate(t *testing.T) {
	es := startEcho(t)
	p := newProxy(t, es.l.Addr().String(), Config{Seed: 2, PDuplicate: 1})
	nc, fr := dialVia(t, p)
	if _, err := nc.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call: %v", err)
	}
	// Both copies reach the server (same request id), so two results
	// come back.
	for i := 0; i < 2; i++ {
		f, err := fr.Next()
		if err != nil || f.Op != wire.OpResult || f.ID != 1 {
			t.Fatalf("response %d: op=%d id=%d err=%v", i, f.Op, f.ID, err)
		}
	}
	if got := es.calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (duplicate delivery)", got)
	}
	if p.Count(FaultDuplicate) != 1 {
		t.Fatalf("duplicate count = %d, want 1", p.Count(FaultDuplicate))
	}
}

func TestProxyResetPreWrite(t *testing.T) {
	es := startEcho(t)
	p := newProxy(t, es.l.Addr().String(), Config{Seed: 3, PResetPre: 1})
	nc, fr := dialVia(t, p)
	if _, err := nc.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call: %v", err)
	}
	if _, err := fr.Next(); err == nil {
		t.Fatalf("got a response through a pre-write reset")
	}
	// The frame never reached the server. (Poll briefly: the cut is
	// asynchronous with the server's read loop.)
	time.Sleep(50 * time.Millisecond)
	if got := es.calls.Load(); got != 0 {
		t.Fatalf("server saw %d calls through a pre-write reset", got)
	}
	if p.Count(FaultResetPreWrite) != 1 {
		t.Fatalf("reset-pre count = %d, want 1", p.Count(FaultResetPreWrite))
	}
}

func TestProxyResetPostWrite(t *testing.T) {
	es := startEcho(t)
	p := newProxy(t, es.l.Addr().String(), Config{Seed: 4, PResetPost: 1})
	nc, fr := dialVia(t, p)
	if _, err := nc.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call: %v", err)
	}
	// The call executes on the server; the response never arrives —
	// the ambiguous window exactly-once retries exist for.
	if _, err := fr.Next(); err == nil {
		t.Fatalf("got a response through a post-write reset")
	}
	deadline := time.Now().Add(5 * time.Second)
	for es.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server never saw the post-write-reset call")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProxyBlackholeBounded(t *testing.T) {
	es := startEcho(t)
	p := newProxy(t, es.l.Addr().String(), Config{Seed: 5, PBlackhole: 1, Stall: 30 * time.Millisecond})
	nc, fr := dialVia(t, p)
	start := time.Now()
	if _, err := nc.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call: %v", err)
	}
	if _, err := fr.Next(); err == nil {
		t.Fatalf("got a response through a blackhole")
	}
	// The stall is bounded: the connection died in roughly Stall, not
	// at the 5s test deadline.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blackholed connection took %v to die; stall bound not honored", elapsed)
	}
	if got := es.calls.Load(); got != 0 {
		t.Fatalf("server saw %d calls through a blackhole", got)
	}
}

func TestProxyRetargetAndCutAll(t *testing.T) {
	es1 := startEcho(t)
	es2 := startEcho(t)
	p := newProxy(t, es1.l.Addr().String(), Config{Seed: 6})
	nc1, fr1 := dialVia(t, p)
	if _, err := nc1.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call: %v", err)
	}
	if f, err := fr1.Next(); err != nil || f.Op != wire.OpResult {
		t.Fatalf("result via backend 1: %v", err)
	}

	// Simulate a restart: kill live links, point new ones elsewhere.
	p.Retarget(es2.l.Addr().String())
	p.CutAll()
	if _, err := fr1.Next(); err == nil {
		t.Fatalf("old connection survived CutAll")
	}

	nc2, fr2 := dialVia(t, p)
	if _, err := nc2.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "x"})); err != nil {
		t.Fatalf("call after retarget: %v", err)
	}
	if f, err := fr2.Next(); err != nil || f.Op != wire.OpResult {
		t.Fatalf("result via backend 2: %v", err)
	}
	if es2.calls.Load() != 1 || es1.calls.Load() != 1 {
		t.Fatalf("calls landed wrong: backend1=%d backend2=%d", es1.calls.Load(), es2.calls.Load())
	}
}

func TestProxyDeterministicDecisions(t *testing.T) {
	// Same seed, same per-connection traffic → identical fault
	// counts, independent of wall-clock.
	run := func(seed uint64) [3]int64 {
		es := startEcho(t)
		p := newProxy(t, es.l.Addr().String(), Config{
			Seed: seed, PResetPost: 0.2, PDelay: 0.2, PDuplicate: 0.2,
			Delay: time.Microsecond,
		})
		// One connection at a time, so connection indices are stable.
		for c := 0; c < 4; c++ {
			nc, fr := dialVia(t, p)
			for i := 1; i <= 25; i++ {
				if _, err := nc.Write(wire.AppendCall(nil, uint64(i), wire.Call{Proc: "x"})); err != nil {
					break // a reset fault killed this conn; move on
				}
				if f, err := fr.Next(); err != nil || f.Op != wire.OpResult {
					break
				}
			}
			_ = nc.Close()
		}
		return [3]int64{p.Count(FaultResetPostWrite), p.Count(FaultDelay), p.Count(FaultDuplicate)}
	}
	a, b := run(77), run(77)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[0]+a[1]+a[2] == 0 {
		t.Fatalf("no faults fired at 60%% aggregate probability; decision stream broken")
	}
}
