// Package mvcc holds the snapshot-side policy of THEDB's multi-version
// read path (DESIGN.md §16): which snapshot timestamps are pinned, and
// how the garbage-collection low-watermark is derived from them.
//
// The mechanism lives in internal/storage (version chains on records,
// chain pruning in the GC); the engine glues the two together. This
// package deliberately knows nothing about records or epochs beyond
// the timestamp encoding:
//
//   - Every snapshot timestamp has the boundary form MakeTS(F,0)-1 —
//     the largest timestamp below epoch F. The engine guarantees that
//     all commits at or below such a boundary are fully installed and
//     all in-flight commits are stamped above it.
//   - The Floor ratchet keeps snapshot timestamps monotone: a worker
//     whose epoch registration went stale could otherwise compute a
//     floor below one the GC already reclaimed against.
//   - The PinSet publishes each worker's active snapshot; the
//     low-watermark handed to the GC is the oldest pin, or the current
//     ratcheted floor when nothing is pinned.
package mvcc

import "sync/atomic"

// PinSet tracks one pinned snapshot timestamp per worker (0 = none).
// Slots follow the worker single-goroutine contract: Pin/Unpin on slot
// i are only called by worker i, while Oldest may scan concurrently.
type PinSet struct {
	pins []atomic.Uint64
}

// NewPinSet sizes the set for n workers.
func NewPinSet(n int) *PinSet {
	return &PinSet{pins: make([]atomic.Uint64, n)}
}

// Pin publishes worker's active snapshot timestamp. Boundary-form
// timestamps are never zero, so zero doubles as the empty marker.
func (p *PinSet) Pin(worker int, s uint64) { p.pins[worker].Store(s) }

// Unpin clears worker's slot.
func (p *PinSet) Unpin(worker int) { p.pins[worker].Store(0) }

// Oldest returns the lowest pinned snapshot timestamp, if any.
func (p *PinSet) Oldest() (uint64, bool) {
	var min uint64
	found := false
	for i := range p.pins {
		s := p.pins[i].Load()
		if s == 0 {
			continue
		}
		if !found || s < min {
			min = s
			found = true
		}
	}
	return min, found
}

// Active returns the number of pinned snapshots.
func (p *PinSet) Active() int {
	n := 0
	for i := range p.pins {
		if p.pins[i].Load() != 0 {
			n++
		}
	}
	return n
}

// Floor is the monotone snapshot-floor ratchet. Candidate floors
// derived from worker epoch registrations are not monotone on their
// own (a registration stored from a stale epoch read can drag the
// candidate backwards); ratcheting through Floor makes every snapshot
// timestamp and every GC watermark non-decreasing, which is what makes
// "reclaim below the watermark" safe against snapshots taken later.
type Floor struct {
	v atomic.Uint64
}

// Raise ratchets the floor up to candidate and returns the ratcheted
// value (candidate itself, or the higher floor some other thread
// already published). Both outcomes are valid snapshot points:
// validity — "every commit at or below is fully installed" — only ever
// grows over time, and the returned value was computed as valid by
// whoever stored it.
func (f *Floor) Raise(candidate uint64) uint64 {
	for {
		cur := f.v.Load()
		if cur >= candidate {
			return cur
		}
		if f.v.CompareAndSwap(cur, candidate) {
			return candidate
		}
	}
}

// Load returns the current floor (0 before the first Raise).
func (f *Floor) Load() uint64 { return f.v.Load() }

// Watermark derives the GC low-watermark from the ratcheted floor and
// the pin set: the oldest pinned snapshot when one is below the floor,
// the floor otherwise. Callers must Raise the floor BEFORE reading the
// pins — a pin published concurrently is then either observed here or
// its owner observes the raised floor and re-pins at or above it
// (sequentially consistent atomics give one order or the other).
func Watermark(f *Floor, p *PinSet, candidate uint64) uint64 {
	wm := f.Raise(candidate)
	if oldest, ok := p.Oldest(); ok && oldest < wm {
		wm = oldest
	}
	return wm
}
