package mvcc

import (
	"sync"
	"testing"
)

func TestPinSetOldest(t *testing.T) {
	p := NewPinSet(4)
	if _, ok := p.Oldest(); ok {
		t.Fatal("empty set reports a pin")
	}
	if n := p.Active(); n != 0 {
		t.Fatalf("Active = %d, want 0", n)
	}
	p.Pin(1, 300)
	p.Pin(3, 100)
	p.Pin(0, 200)
	if s, ok := p.Oldest(); !ok || s != 100 {
		t.Fatalf("Oldest = (%d, %v), want (100, true)", s, ok)
	}
	if n := p.Active(); n != 3 {
		t.Fatalf("Active = %d, want 3", n)
	}
	p.Unpin(3)
	if s, ok := p.Oldest(); !ok || s != 200 {
		t.Fatalf("Oldest after unpin = (%d, %v), want (200, true)", s, ok)
	}
	p.Unpin(0)
	p.Unpin(1)
	if _, ok := p.Oldest(); ok {
		t.Fatal("drained set still reports a pin")
	}
}

func TestFloorRatchet(t *testing.T) {
	var f Floor
	if got := f.Raise(10); got != 10 {
		t.Fatalf("Raise(10) = %d", got)
	}
	// A stale (lower) candidate must not drag the floor back.
	if got := f.Raise(5); got != 10 {
		t.Fatalf("Raise(5) after 10 = %d, want 10", got)
	}
	if got := f.Raise(20); got != 20 {
		t.Fatalf("Raise(20) = %d", got)
	}
	if got := f.Load(); got != 20 {
		t.Fatalf("Load = %d, want 20", got)
	}
}

func TestFloorRaiseConcurrentMonotone(t *testing.T) {
	var f Floor
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := uint64(0)
			for i := 1; i <= 1000; i++ {
				got := f.Raise(uint64(i))
				if got < last {
					t.Errorf("Raise went backwards: %d after %d", got, last)
					return
				}
				last = got
			}
		}(g)
	}
	wg.Wait()
	if got := f.Load(); got != 1000 {
		t.Fatalf("final floor = %d, want 1000", got)
	}
}

func TestWatermark(t *testing.T) {
	var f Floor
	p := NewPinSet(2)

	// No pins: the watermark is the ratcheted candidate.
	if wm := Watermark(&f, p, 50); wm != 50 {
		t.Fatalf("Watermark(no pins) = %d, want 50", wm)
	}
	// A pin below the floor holds the watermark down.
	p.Pin(0, 30)
	if wm := Watermark(&f, p, 60); wm != 30 {
		t.Fatalf("Watermark(pin 30) = %d, want 30", wm)
	}
	// The floor itself must still have ratcheted past the pin: new
	// snapshots start at or above it.
	if got := f.Load(); got != 60 {
		t.Fatalf("floor after Watermark = %d, want 60", got)
	}
	// A pin above the floor does not raise the watermark past it.
	p.Pin(0, 100)
	if wm := Watermark(&f, p, 60); wm != 60 {
		t.Fatalf("Watermark(pin 100) = %d, want 60", wm)
	}
	p.Unpin(0)
	if wm := Watermark(&f, p, 55); wm != 60 {
		t.Fatalf("Watermark(stale candidate) = %d, want 60 (ratchet)", wm)
	}
}
