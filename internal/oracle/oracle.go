// Package oracle checks that a committed transaction history is
// serializable: equivalent to some serial execution of the same
// transactions. The engine (when Options.Oracle is set) reports each
// commit's read and write footprint together with its commit
// timestamp; Check then reconstructs per-key version chains in
// timestamp order and verifies that the direct serialization graph —
// write-write, write-read, and read-write (anti-dependency) edges —
// is acyclic.
//
// Why graph acyclicity rather than literally replaying the
// timestamp-ordered serial schedule: commit timestamps order writes
// (validation guarantees a writer's timestamp exceeds every version
// it overwrites, and the epoch scheme keeps them unique) but do NOT
// order anti-dependencies. A reader may commit with a higher
// timestamp than a writer serialized after it, because validation
// only requires the read versions to still be current at commit time,
// not that the reader's timestamp precede all future writers. The
// history is still serializable — in the order "reader before writer"
// — so the oracle must accept it. Acyclicity of the DSG is exactly
// the textbook conflict-serializability condition and handles both
// directions.
//
// The recorder is a sharded append-only log: workers append to
// per-worker shards with no synchronization beyond an atomic length,
// so recording barely perturbs the interleavings chaos runs are
// trying to produce.
package oracle

import (
	"fmt"
	"sort"
)

// Key identifies a record: table id plus primary key.
type Key struct {
	Table int
	Key   uint64
}

// Read is one read-set entry of a committed transaction: the version
// timestamp it observed on key K and whether that version was
// visible (a deleted/dummy record reads as not visible).
type Read struct {
	K       Key
	Version uint64
	Visible bool
}

// Write is one write-set entry: after the transaction, key K holds a
// version stamped with the transaction's commit timestamp; Visible is
// false for deletes.
type Write struct {
	K       Key
	Visible bool
}

// Commit is one committed transaction's footprint.
type Commit struct {
	TS     uint64 // commit timestamp (unique per committed txn)
	Worker int
	Reads  []Read
	Writes []Write
}

// Recorder collects committed footprints from concurrently running
// workers. Each worker appends only to its own shard; Check must only
// be called after the engine has stopped.
type Recorder struct {
	shards []shard
}

type shard struct {
	commits []Commit
	_       [8]uint64 // keep shards off each other's cache lines
}

// NewRecorder builds a recorder with one shard per worker.
func NewRecorder(workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{shards: make([]shard, workers)}
}

// Record appends a committed footprint to the worker's shard. It is
// safe for each worker to call concurrently with other workers, but a
// single worker must not call it concurrently with itself.
func (r *Recorder) Record(c Commit) {
	if c.Worker < 0 || c.Worker >= len(r.shards) {
		c.Worker = 0
	}
	sh := &r.shards[c.Worker]
	sh.commits = append(sh.commits, c)
}

// Commits returns all recorded commits sorted by timestamp. Call only
// after the engine has stopped.
func (r *Recorder) Commits() []Commit {
	var all []Commit
	for i := range r.shards {
		all = append(all, r.shards[i].commits...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	return all
}

// Violation describes one way the history fails the serializability
// check.
type Violation struct {
	TS     uint64 // timestamp of the offending transaction (0 if a cycle)
	Reason string
}

func (v Violation) String() string {
	if v.TS == 0 {
		return v.Reason
	}
	return fmt.Sprintf("txn ts=%d: %s", v.TS, v.Reason)
}

// version is one entry of a key's reconstructed version chain.
type version struct {
	ts      uint64 // writer's commit timestamp (0 = initial load)
	writer  int    // index into the sorted commit slice, -1 for initial
	visible bool
}

// Check validates the recorded history and returns every violation
// found (nil means the history is serializable). The rules:
//
//  1. Commit timestamps are unique.
//  2. Every read observed either the initial version (ts 0) or a
//     version some commit actually wrote — and with the recorded
//     visibility. The exception is an invisible ts-0 read (the key
//     looked absent): garbage collection re-materializes deleted
//     records as fresh ts-0 dummies, erasing the delete version the
//     reader really observed, so such reads are anchored in the
//     latest absence gap of the chain below the reader's own commit
//     timestamp instead of requiring an exact version match.
//  3. The direct serialization graph over WW, WR, and RW conflicts
//     is acyclic.
func (r *Recorder) Check() []Violation {
	commits := r.Commits()
	var viols []Violation

	// Rule 1: unique timestamps; also reject ts 0, which is reserved
	// for load-time versions.
	for i := range commits {
		if commits[i].TS == 0 {
			viols = append(viols, Violation{Reason: "commit with reserved timestamp 0"})
		}
		if i > 0 && commits[i].TS == commits[i-1].TS {
			viols = append(viols, Violation{TS: commits[i].TS, Reason: "duplicate commit timestamp"})
		}
	}
	if viols != nil {
		return viols
	}

	// Reconstruct per-key version chains in timestamp order. The
	// implicit initial version ts=0 is visible: the chaos harness only
	// records keys that exist at load time or are created by recorded
	// transactions, and reads of never-loaded keys surface as
	// invisible reads handled by the lenient rule below.
	chains := make(map[Key][]version)
	ver := func(k Key) []version {
		c, ok := chains[k]
		if !ok {
			c = []version{{ts: 0, writer: -1, visible: true}}
			chains[k] = c
		}
		return c
	}
	for ci := range commits {
		for _, w := range commits[ci].Writes {
			chains[w.K] = append(ver(w.K), version{ts: commits[ci].TS, writer: ci, visible: w.Visible})
		}
	}

	// Edges of the direct serialization graph; adj is built lazily.
	n := len(commits)
	adj := make([][]int, n)
	indeg := make([]int, n)
	addEdge := func(from, to int) {
		if from == to || from < 0 || to < 0 {
			return
		}
		adj[from] = append(adj[from], to)
		indeg[to]++
	}

	// WW edges: chain order is timestamp order.
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			addEdge(chain[i-1].writer, chain[i].writer)
		}
	}

	// WR and RW edges from each read.
	for ci := range commits {
		c := &commits[ci]
		for _, rd := range c.Reads {
			chain := ver(rd.K)
			if rd.Version == 0 && !rd.Visible {
				// Invisible read of version 0: the reader found the key
				// absent — either it was never created, or a deleted
				// record was garbage-collected and re-materialized as a
				// fresh ts-0 dummy, erasing the version the reader
				// "really" observed. Anchor the read in the latest
				// absence gap below the reader's commit timestamp: walk
				// back from there past visible versions to the nearest
				// delete (or the initial absent state). Epoch-based
				// reclamation guarantees a collected delete committed
				// epochs before the reader, so the gap exists below
				// the reader's timestamp whenever a dummy was involved.
				vi := sort.Search(len(chain), func(i int) bool { return chain[i].ts >= c.TS }) - 1
				for vi > 0 && chain[vi].visible {
					vi--
				}
				addEdge(chain[vi].writer, ci) // WR: the deleter before the reader
				if vi+1 < len(chain) {
					addEdge(ci, chain[vi+1].writer) // RW: reader before the re-creator
				}
				continue
			}
			// Locate the exact observed version by timestamp.
			vi := sort.Search(len(chain), func(i int) bool { return chain[i].ts >= rd.Version })
			if vi == len(chain) || chain[vi].ts != rd.Version {
				viols = append(viols, Violation{TS: c.TS, Reason: fmt.Sprintf("read of key %+v observed version ts=%d that no commit wrote", rd.K, rd.Version)})
				continue
			}
			v := chain[vi]
			if v.visible != rd.Visible {
				viols = append(viols, Violation{TS: c.TS, Reason: fmt.Sprintf("read of key %+v version ts=%d saw visible=%v, version is visible=%v", rd.K, rd.Version, rd.Visible, v.visible)})
				continue
			}
			addEdge(v.writer, ci) // WR: version's writer before reader
			if vi+1 < len(chain) {
				addEdge(ci, chain[vi+1].writer) // RW: reader before next writer
			}
		}
	}
	if viols != nil {
		return viols
	}

	// Rule 3: Kahn's algorithm; leftovers form a cycle.
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, v := range adj[u] {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if done != n {
		var stuck []uint64
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, commits[i].TS)
				if len(stuck) == 8 {
					break
				}
			}
		}
		viols = append(viols, Violation{Reason: fmt.Sprintf("serialization graph has a cycle involving %d transactions (e.g. ts %v)", n-done, stuck)})
	}
	return viols
}
