package oracle

import (
	"strings"
	"testing"
)

func key(t int, k uint64) Key { return Key{Table: t, Key: k} }

// A straightforward timestamp-ordered history passes.
func TestCheckCleanHistory(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Commit{TS: 10, Worker: 0,
		Reads:  []Read{{K: key(0, 1), Version: 0, Visible: true}},
		Writes: []Write{{K: key(0, 1), Visible: true}}})
	r.Record(Commit{TS: 20, Worker: 1,
		Reads:  []Read{{K: key(0, 1), Version: 10, Visible: true}},
		Writes: []Write{{K: key(0, 2), Visible: true}}})
	if v := r.Check(); v != nil {
		t.Fatalf("clean history flagged: %v", v)
	}
}

// An anti-dependency may point backwards in timestamp order: a reader
// that committed with a HIGHER timestamp than the writer it must be
// serialized before. Validation allows this (the read version was
// still current at the reader's commit), so the oracle must accept it.
func TestCheckAcceptsBackwardAntiDependency(t *testing.T) {
	r := NewRecorder(2)
	// Writer of key 1 at ts 10; reader at ts 30 still saw version 0 of
	// key 2, which writer ts 40 later overwrote. Serial order is
	// 10, 30, 40 — valid despite the reader "straddling" nothing.
	r.Record(Commit{TS: 10, Worker: 0, Writes: []Write{{K: key(0, 1), Visible: true}}})
	r.Record(Commit{TS: 40, Worker: 0, Writes: []Write{{K: key(0, 2), Visible: true}}})
	r.Record(Commit{TS: 30, Worker: 1,
		Reads: []Read{
			{K: key(0, 1), Version: 10, Visible: true},
			{K: key(0, 2), Version: 0, Visible: true},
		}})
	if v := r.Check(); v != nil {
		t.Fatalf("backward anti-dependency flagged: %v", v)
	}
}

// A lost update — two transactions both read version 0 and both
// overwrite it — forms an RW/WW cycle and must be reported.
func TestCheckDetectsLostUpdate(t *testing.T) {
	r := NewRecorder(2)
	k := key(0, 7)
	r.Record(Commit{TS: 10, Worker: 0,
		Reads:  []Read{{K: k, Version: 0, Visible: true}},
		Writes: []Write{{K: k, Visible: true}}})
	r.Record(Commit{TS: 20, Worker: 1,
		Reads:  []Read{{K: k, Version: 0, Visible: true}},
		Writes: []Write{{K: k, Visible: true}}})
	v := r.Check()
	if len(v) == 0 {
		t.Fatalf("lost update not detected")
	}
	if !strings.Contains(v[0].String(), "cycle") {
		t.Fatalf("expected cycle violation, got %v", v)
	}
}

// A write skew — each transaction reads the key the other writes —
// is a pure RW/RW cycle with disjoint write sets and must be reported.
func TestCheckDetectsWriteSkew(t *testing.T) {
	r := NewRecorder(2)
	a, b := key(0, 1), key(0, 2)
	r.Record(Commit{TS: 10, Worker: 0,
		Reads:  []Read{{K: b, Version: 0, Visible: true}},
		Writes: []Write{{K: a, Visible: true}}})
	r.Record(Commit{TS: 20, Worker: 1,
		Reads:  []Read{{K: a, Version: 0, Visible: true}},
		Writes: []Write{{K: b, Visible: true}}})
	if v := r.Check(); len(v) == 0 {
		t.Fatalf("write skew not detected")
	}
}

// Reading a version no commit ever wrote is a violation.
func TestCheckDetectsUnknownVersion(t *testing.T) {
	r := NewRecorder(1)
	r.Record(Commit{TS: 10, Worker: 0,
		Reads: []Read{{K: key(0, 1), Version: 5, Visible: true}}})
	v := r.Check()
	if len(v) != 1 || !strings.Contains(v[0].Reason, "no commit wrote") {
		t.Fatalf("unknown version not detected: %v", v)
	}
}

// Observing the wrong visibility for a real version is a violation:
// here the version at ts 10 is a delete, but the reader claims it saw
// live data.
func TestCheckDetectsVisibilityMismatch(t *testing.T) {
	r := NewRecorder(1)
	k := key(0, 3)
	r.Record(Commit{TS: 10, Worker: 0, Writes: []Write{{K: k, Visible: false}}})
	r.Record(Commit{TS: 20, Worker: 0,
		Reads: []Read{{K: k, Version: 10, Visible: true}}})
	v := r.Check()
	if len(v) != 1 || !strings.Contains(v[0].Reason, "visible") {
		t.Fatalf("visibility mismatch not detected: %v", v)
	}
}

// A fresh-dummy read after garbage collection observes ts 0 invisible
// on a key whose chain has later versions; the lenient rule accepts it
// but still orders the reader before the key's first writer.
func TestCheckLenientInvisibleReadStillOrders(t *testing.T) {
	r := NewRecorder(2)
	k := key(0, 9)
	// Reader saw the key as absent (fresh dummy), writer creates it.
	r.Record(Commit{TS: 20, Worker: 0,
		Reads:  []Read{{K: k, Version: 0, Visible: false}},
		Writes: []Write{{K: key(0, 10), Visible: true}}})
	r.Record(Commit{TS: 10, Worker: 1, Writes: []Write{{K: k, Visible: true}}})
	// Reader (ts 20) must serialize before writer (ts 10) via RW; that
	// is fine on its own...
	if v := r.Check(); v != nil {
		t.Fatalf("lenient invisible read flagged: %v", v)
	}
	// ...but if the reader ALSO read the writer's output on another
	// key, the cycle must be caught.
	r2 := NewRecorder(2)
	r2.Record(Commit{TS: 10, Worker: 1, Writes: []Write{
		{K: k, Visible: true}, {K: key(0, 11), Visible: true}}})
	r2.Record(Commit{TS: 20, Worker: 0,
		Reads: []Read{
			{K: k, Version: 0, Visible: false},          // reader before writer (RW)
			{K: key(0, 11), Version: 10, Visible: true}, // writer before reader (WR)
		}})
	if v := r2.Check(); len(v) == 0 {
		t.Fatalf("invisible-read cycle not detected")
	}
}

// The insert → delete → GC → re-insert churn pattern: the re-creating
// transaction reads the key as a fresh ts-0 dummy even though the
// chain holds real versions. The gap anchor must land on the delete,
// not the initial state — anchoring at the initial version would
// fabricate an RW edge back to the first writer and a false cycle
// with the WW chain.
func TestCheckFreshDummyReadAfterChurn(t *testing.T) {
	r := NewRecorder(1)
	k := key(0, 5)
	r.Record(Commit{TS: 10, Worker: 0, Writes: []Write{{K: k, Visible: true}}})  // insert
	r.Record(Commit{TS: 20, Worker: 0, Writes: []Write{{K: k, Visible: false}}}) // delete
	r.Record(Commit{TS: 30, Worker: 0,                                           // re-insert after GC reclaimed the record
		Reads:  []Read{{K: k, Version: 0, Visible: false}},
		Writes: []Write{{K: k, Visible: true}}})
	if v := r.Check(); v != nil {
		t.Fatalf("churn re-insert flagged: %v", v)
	}
}

// Duplicate and reserved timestamps are rejected up front.
func TestCheckTimestampHygiene(t *testing.T) {
	r := NewRecorder(1)
	r.Record(Commit{TS: 10, Worker: 0})
	r.Record(Commit{TS: 10, Worker: 0})
	v := r.Check()
	if len(v) == 0 || !strings.Contains(v[0].Reason, "duplicate") {
		t.Fatalf("duplicate ts not detected: %v", v)
	}
	r2 := NewRecorder(1)
	r2.Record(Commit{TS: 0, Worker: 0})
	v = r2.Check()
	if len(v) == 0 || !strings.Contains(v[0].Reason, "reserved") {
		t.Fatalf("reserved ts 0 not detected: %v", v)
	}
}

// Commits() interleaves shards into global timestamp order.
func TestCommitsSorted(t *testing.T) {
	r := NewRecorder(3)
	r.Record(Commit{TS: 30, Worker: 2})
	r.Record(Commit{TS: 10, Worker: 0})
	r.Record(Commit{TS: 20, Worker: 1})
	got := r.Commits()
	if len(got) != 3 || got[0].TS != 10 || got[1].TS != 20 || got[2].TS != 30 {
		t.Fatalf("commits not sorted: %+v", got)
	}
}
