package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"thedb/internal/metrics"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 16)
	r.Record(0, KValidationFail, 3, 42, 7)
	r.Record(1, KCommit, 3, 99, 120)
	r.Record(EpochActor, KEpochAdvance, 4, 4, 0)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	// Global sequence gives one total order across rings.
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if e := evs[0]; e.Worker != 0 || e.Kind != KValidationFail || e.Epoch != 3 || e.A != 42 || e.B != 7 {
		t.Fatalf("event 0 = %+v", e)
	}
	if e := evs[1]; e.Worker != 1 || e.Kind != KCommit {
		t.Fatalf("event 1 = %+v", e)
	}
	if e := evs[2]; e.Worker != EpochActor || e.Kind != KEpochAdvance || e.Epoch != 4 {
		t.Fatalf("event 2 = %+v", e)
	}
	if r.Recorded() != 3 || r.Dropped() != 0 {
		t.Fatalf("recorded=%d dropped=%d", r.Recorded(), r.Dropped())
	}
}

func TestRecorderWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(1, 8)
	if r.RingSize() != 8 {
		t.Fatalf("ring size = %d, want 8", r.RingSize())
	}
	for i := 0; i < 20; i++ {
		r.Record(0, KCommit, 1, uint64(i), 0)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	// The survivors must be the newest 8 (A payloads 12..19).
	for i, ev := range evs {
		if want := uint64(12 + i); ev.A != want {
			t.Fatalf("survivor %d has payload %d, want %d", i, ev.A, want)
		}
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", r.Dropped())
	}
}

func TestRecorderSizeRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 8}, {8, 8}, {9, 16}, {1000, 1024}} {
		if got := NewRecorder(1, c.in).RingSize(); got != c.want {
			t.Errorf("NewRecorder(1, %d).RingSize() = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRecorderConcurrentDump hammers the rings from one writer per
// worker while another goroutine repeatedly dumps: under -race this
// proves the seqlock publication protocol, and every event that is
// observed must be internally consistent (payload equals its ring's
// writer pattern).
func TestRecorderConcurrentDump(t *testing.T) {
	const workers = 4
	r := NewRecorder(workers, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Payload pattern: A = worker, B = iteration.
				r.Record(w, KCommit, uint32(i), uint64(w), uint64(i))
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ev := range r.Events() {
			if ev.Worker < 0 || ev.Worker >= workers {
				t.Errorf("impossible worker %d", ev.Worker)
			}
			if ev.A != uint64(ev.Worker) {
				t.Errorf("torn event: worker %d ring holds payload A=%d", ev.Worker, ev.A)
			}
			if uint32(ev.B) != ev.Epoch {
				t.Errorf("torn event: B=%d but epoch=%d", ev.B, ev.Epoch)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDumpNamesActorsEpochsAndCheckpoints(t *testing.T) {
	r := NewRecorder(2, 8)
	r.Record(0, KValidationFail, 5, 42, 1)
	r.Record(0, KHealStart, 5, 42, 1)
	r.Record(0, KHealEnd, 5, 3, 2)
	r.Record(1, KLadderEscalate, 6, 0, 1)
	r.Record(EpochActor, KEpochSeal, 6, 5, 0)
	r.Record(1, KAbort, 6, uint64(AbortContended), 12)

	var sb strings.Builder
	r.DumpWith(&sb, func(id int) string {
		if id == 1 {
			return "BALANCE"
		}
		return ""
	})
	out := sb.String()
	for _, want := range []string{
		"w0", "w1", "advancer", // actors
		"epoch=5", "epoch=6", // epochs
		"validation-fail BALANCE[42]",
		"heal-start BALANCE[42]",
		"heal-end ops-restored=3 frontier=2",
		"ladder-escalate proto 0 -> 1",
		"epoch-seal to=5",
		"abort reason=contended attempts=12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// The interleaving must come out in global sequence order.
	if strings.Index(out, "validation-fail") > strings.Index(out, "abort reason") {
		t.Errorf("dump not in recording order:\n%s", out)
	}
}

func TestEventDetailPhantomAndWALSync(t *testing.T) {
	if d := (Event{Kind: KHealStart}).Detail(nil); !strings.Contains(d, "phantom-scan") {
		t.Errorf("phantom heal detail = %q", d)
	}
	if d := (Event{Kind: KWALSync, A: 0, B: 2}).Detail(nil); !strings.Contains(d, "FAILED") || !strings.Contains(d, "attempt=2") {
		t.Errorf("failed sync detail = %q", d)
	}
	if d := (Event{Kind: KWatchdogTrip, A: 3, B: 17}).Detail(nil); !strings.Contains(d, "stalled-worker=w3") {
		t.Errorf("watchdog detail = %q", d)
	}
}

// promLine matches one Prometheus text-format sample line:
// name{labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// checkPromText validates Prometheus text exposition format 0.0.4:
// every sample line parses, every series has a preceding TYPE, and
// histogram bucket counts are cumulative.
func checkPromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]string{}
	values := map[string]float64{}
	var lastBucket float64
	var inHist string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			typed[f[2]] = f[3]
			if f[3] == "histogram" {
				inHist, lastBucket = f[2], 0
			}
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			t.Fatalf("line %d: series %q has no TYPE", ln+1, name)
		}
		v := 0.0
		switch m[3] {
		case "NaN":
		case "+Inf", "-Inf":
		default:
			var err error
			v, err = strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q", ln+1, m[3])
			}
		}
		if inHist != "" && name == inHist+"_bucket" {
			if v < lastBucket {
				t.Fatalf("line %d: histogram bucket not cumulative (%g < %g)", ln+1, v, lastBucket)
			}
			lastBucket = v
		}
		values[name+m[2]] = v
	}
	return values
}

func TestWritePromNilAggregate(t *testing.T) {
	var sb strings.Builder
	WriteProm(&sb, nil)
	vals := checkPromText(t, sb.String())
	if vals["thedb_up"] != 1 {
		t.Fatalf("thedb_up = %v, want 1 even with no aggregate", vals["thedb_up"])
	}
}

func TestWritePromFormat(t *testing.T) {
	w := &metrics.Worker{}
	for i := 0; i < 10; i++ {
		w.Inc(&w.Committed)
		w.ObserveLatency(time.Duration(1+i) * time.Microsecond)
	}
	w.Inc(&w.Restarts)
	w.AddPhase(metrics.PhaseHeal, 5*time.Millisecond)
	a := metrics.Merge(2*time.Second, []*metrics.Worker{w})
	a.Epoch = 9
	a.WALFrames = 4
	a.WALBytes = 512

	var sb strings.Builder
	WriteProm(&sb, a)
	vals := checkPromText(t, sb.String())
	checks := map[string]float64{
		"thedb_up":                        1,
		"thedb_committed_total":           10,
		"thedb_restarts_total":            1,
		"thedb_epoch":                     9,
		"thedb_wal_frames_total":          4,
		"thedb_wal_bytes_total":           512,
		"thedb_tps":                       5,
		"thedb_txn_latency_seconds_count": 10,
	}
	for name, want := range checks {
		if got, ok := vals[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	if _, ok := vals[`thedb_phase_seconds_total{phase="heal"}`]; !ok {
		t.Errorf("missing heal phase series in:\n%s", sb.String())
	}
}

func TestWritePromServerFormat(t *testing.T) {
	s := &metrics.Server{}
	s.Add(&s.ConnsOpened, 5)
	s.Add(&s.ConnsClosed, 2)
	s.Add(&s.Requests, 100)
	s.Add(&s.InFlight, 7)
	s.Add(&s.Shed, 3)
	s.Inc(&s.DrainRejected)
	s.Add(&s.BytesIn, 4096)
	s.Add(&s.BytesOut, 8192)
	s.Add(&s.DedupHits, 11)
	s.Add(&s.DedupCoalesced, 4)
	s.Add(&s.DedupEvicted, 2)
	s.Add(&s.DedupEntries, 9)
	s.Add(&s.Sessions, 6)
	s.Inc(&s.SessionsEvicted)
	s.Add(&s.DeadlineRejected, 5)

	var sb strings.Builder
	WritePromServer(&sb, s.Snapshot())
	vals := checkPromText(t, sb.String())
	checks := map[string]float64{
		"thedb_server_connections":            3,
		"thedb_server_connections_total":      5,
		"thedb_server_in_flight":              7,
		"thedb_server_requests_total":         100,
		"thedb_server_shed_total":             3,
		"thedb_server_draining_rejects_total": 1,
		"thedb_server_bytes_in_total":         4096,
		"thedb_server_bytes_out_total":        8192,
		"thedb_server_dedup_hits_total":       11,
		"thedb_server_dedup_coalesced_total":  4,
		"thedb_server_dedup_evicted_total":    2,
		"thedb_server_dedup_entries":          9,
		"thedb_server_sessions":               6,
		"thedb_server_sessions_evicted_total": 1,
		"thedb_server_deadline_rejects_total": 5,
	}
	for name, want := range checks {
		if got, ok := vals[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}

func TestPlaneServesServerStats(t *testing.T) {
	p := NewPlane()
	s := &metrics.Server{}
	s.Inc(&s.ConnsOpened)
	p.SetServerStats(s)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	vals := checkPromText(t, string(b))
	if vals["thedb_server_connections"] != 1 {
		t.Fatalf("thedb_server_connections = %v, want 1\n%s", vals["thedb_server_connections"], b)
	}
	if vals["thedb_up"] != 1 {
		t.Fatal("thedb_up missing from combined scrape")
	}
}

func TestPlaneHandler(t *testing.T) {
	p := NewPlane()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	// Detached plane: /metrics still serves thedb_up, /debug/events 404s.
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "thedb_up 1") {
		t.Fatalf("/metrics detached: code=%d body=%q", code, body)
	}
	checkPromText(t, body)
	if code, _ := get("/debug/events"); code != 404 {
		t.Fatalf("/debug/events without recorder: code=%d, want 404", code)
	}

	// Attach a source and recorder; both endpoints go live.
	w := &metrics.Worker{}
	w.Inc(&w.Committed)
	p.SetSource(func() *metrics.Aggregate {
		return metrics.Merge(time.Second, []*metrics.Worker{w})
	})
	rec := NewRecorder(1, 8)
	rec.Record(0, KCommit, 2, 77, 5)
	p.SetRecorder(rec, func(int) string { return "T" })

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics live: code=%d", code)
	}
	if vals := checkPromText(t, body); vals["thedb_committed_total"] != 1 {
		t.Fatalf("live committed = %v, want 1", vals["thedb_committed_total"])
	}
	code, body = get("/debug/events")
	if code != 200 || !strings.Contains(body, "commit ts=77") {
		t.Fatalf("/debug/events live: code=%d body=%q", code, body)
	}
}

func TestDoWorkerRunsInline(t *testing.T) {
	ran := false
	DoWorker(3, func() { ran = true })
	if !ran {
		t.Fatal("DoWorker did not run fn")
	}
}

// BenchmarkRecord measures the per-event cost with the recorder
// enabled (the disabled path is benchmarked where it is gated, in the
// engine's bench suite).
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder(1, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(0, KCommit, 1, uint64(i), 0)
	}
}
