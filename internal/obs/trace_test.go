package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thedb/internal/metrics"
)

// TestTracerTailRetention pins the tail-sampling policy: boring fast
// commits are counted but dropped; aborted, contended, dedup-hit,
// healed, and slow traces are retained.
func TestTracerTailRetention(t *testing.T) {
	tr := NewTracer(8, 100*time.Microsecond)
	cases := []struct {
		name string
		tr   Trace
		keep bool
	}{
		{"fast commit", Trace{ID: 1, Outcome: TraceCommitted, TotalUS: 10}, false},
		{"slow commit", Trace{ID: 2, Outcome: TraceCommitted, TotalUS: 100}, true},
		{"aborted", Trace{ID: 3, Outcome: TraceAborted, TotalUS: 1}, true},
		{"contended", Trace{ID: 4, Outcome: TraceContended, TotalUS: 1}, true},
		{"dedup hit", Trace{ID: 5, Outcome: TraceDedupHit, TotalUS: 1}, true},
		{"healed commit", Trace{ID: 6, Outcome: TraceCommitted, TotalUS: 1, NPasses: 1}, true},
	}
	for _, c := range cases {
		slot := tr.Keep(&c.tr)
		if kept := slot >= 0; kept != c.keep {
			t.Errorf("%s: kept=%v, want %v", c.name, kept, c.keep)
		}
	}
	total, kept := tr.Stats()
	if total != 6 || kept != 5 {
		t.Errorf("stats = (%d, %d), want (6, 5)", total, kept)
	}
	snap := tr.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d traces, want 5", len(snap))
	}
	// Newest first.
	for i, want := range []uint64{6, 5, 4, 3, 2} {
		if snap[i].ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (newest first)", i, snap[i].ID, want)
		}
	}
}

// TestTracerWrapKeepsNewest: the ring holds the most recent retained
// traces once it wraps.
func TestTracerWrapKeepsNewest(t *testing.T) {
	tr := NewTracer(8, 0)
	for i := 1; i <= 20; i++ {
		tr.Keep(&Trace{ID: uint64(i), Outcome: TraceAborted})
	}
	snap := tr.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d traces, want 8 (capacity)", len(snap))
	}
	for i, trc := range snap {
		if want := uint64(20 - i); trc.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, trc.ID, want)
		}
	}
}

// TestTracerAmendResp: the slot+ID pair amends the response-write
// duration after the fact; a stale amend (slot since overwritten) is a
// no-op.
func TestTracerAmendResp(t *testing.T) {
	tr := NewTracer(8, 0)
	slot := tr.Keep(&Trace{ID: 7, Outcome: TraceAborted})
	tr.AmendResp(slot, 7, 42)
	if snap := tr.Snapshot(); snap[0].RespUS != 42 {
		t.Errorf("resp_us = %d, want 42", snap[0].RespUS)
	}
	tr.AmendResp(slot, 999, 77) // wrong ID: must not clobber
	if snap := tr.Snapshot(); snap[0].RespUS != 42 {
		t.Errorf("stale amend clobbered resp_us: %d, want 42", snap[0].RespUS)
	}
	tr.AmendResp(-1, 7, 99) // dropped trace: no-op
}

// TestTracerLastSlow: the exemplar feed tracks the most recent slow
// trace only.
func TestTracerLastSlow(t *testing.T) {
	tr := NewTracer(8, 50*time.Microsecond)
	if _, _, ok := tr.LastSlow(); ok {
		t.Fatal("LastSlow ok before any slow trace")
	}
	tr.Keep(&Trace{ID: 1, Outcome: TraceAborted, TotalUS: 10}) // interesting, not slow
	if _, _, ok := tr.LastSlow(); ok {
		t.Fatal("an aborted-but-fast trace must not become the exemplar")
	}
	tr.Keep(&Trace{ID: 2, Outcome: TraceCommitted, TotalUS: 60})
	tr.Keep(&Trace{ID: 3, Outcome: TraceCommitted, TotalUS: 70})
	id, us, ok := tr.LastSlow()
	if !ok || id != 3 || us != 70 {
		t.Errorf("LastSlow = (%d, %d, %v), want (3, 70, true)", id, us, ok)
	}
}

// TestContentionSpaceSaving pins the sketch semantics: tracked keys
// count exactly while there is room; a new key when full evicts the
// minimum and inherits its count as the error bound; the snapshot is
// ranked by count and splits touch kinds.
func TestContentionSpaceSaving(t *testing.T) {
	c := NewContention(8) // minimum capacity
	for i := 0; i < 10; i++ {
		c.Touch(1, 100, TouchValidationFail)
	}
	for i := 0; i < 4; i++ {
		c.Touch(1, 100, TouchHealStart)
	}
	for k := uint64(0); k < 7; k++ {
		c.Touch(2, k, TouchValidationFail)
	}
	// Sketch is now full (8 keys). A fresh key evicts one of the
	// count-1 entries and adopts count 2 with error bound 1.
	c.Touch(3, 999, TouchValidationFail)

	snap := c.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d entries, want 8", len(snap))
	}
	top := snap[0]
	if top.Table != 1 || top.Key != 100 || top.Count != 14 || top.Err != 0 {
		t.Errorf("top entry = %+v, want table 1 key 100 count 14 err 0", top)
	}
	if top.Fails != 10 || top.Heals != 4 {
		t.Errorf("top entry split = fails %d heals %d, want 10/4", top.Fails, top.Heals)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Count > snap[i-1].Count {
			t.Fatalf("snapshot not ranked: entry %d count %d > entry %d count %d",
				i, snap[i].Count, i-1, snap[i-1].Count)
		}
	}
	var adopted *ContEntry
	for i := range snap {
		if snap[i].Table == 3 && snap[i].Key == 999 {
			adopted = &snap[i]
		}
	}
	if adopted == nil {
		t.Fatal("fresh key not adopted after eviction")
	}
	if adopted.Count != 2 || adopted.Err != 1 {
		t.Errorf("adopted entry count/err = (%d, %d), want (2, 1): inherited minimum + 1",
			adopted.Count, adopted.Err)
	}
	if got := c.Total(); got != 22 {
		t.Errorf("total touches = %d, want 22", got)
	}
}

// TestPromExemplarFormat pins the OpenMetrics exemplar syntax on the
// latency histogram: exactly one bucket line carries the trailing
// `# {trace_id="<16 hex>"} <seconds>` annotation, and without an
// exemplar the exposition stays plain 0.0.4 text.
func TestPromExemplarFormat(t *testing.T) {
	w := &metrics.Worker{}
	for i := 0; i < 5; i++ {
		w.Inc(&w.Committed)
		w.ObserveLatency(time.Duration(1+i) * time.Microsecond)
	}
	a := metrics.Merge(time.Second, []*metrics.Worker{w})

	var plain strings.Builder
	WritePromWith(&plain, a, nil)
	if strings.Contains(plain.String(), "# {") {
		t.Fatal("plain exposition contains an exemplar annotation")
	}

	var sb strings.Builder
	WritePromWith(&sb, a, &Exemplar{TraceID: 0x2a, ValueUS: 1500})
	out := sb.String()
	const want = `# {trace_id="000000000000002a"} 0.0015`
	hits := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "# {") {
			continue
		}
		hits++
		if !strings.HasPrefix(line, "thedb_txn_latency_seconds_bucket{le=") {
			t.Errorf("exemplar attached to a non-bucket line: %q", line)
		}
		if !strings.HasSuffix(line, want) {
			t.Errorf("exemplar suffix = %q, want suffix %q", line, want)
		}
	}
	if hits != 1 {
		t.Errorf("%d bucket lines carry the exemplar, want exactly 1:\n%s", hits, out)
	}
}

// TestPlaneTraceEndpoints: /debug/trace and /debug/contention are 404
// until attached and serve decodable JSON afterwards, with table names
// resolved in the contention snapshot.
func TestPlaneTraceEndpoints(t *testing.T) {
	p := NewPlane()
	h := p.Handler()

	for _, path := range []string{"/debug/trace", "/debug/contention"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 404 {
			t.Errorf("%s before attach: status %d, want 404", path, rr.Code)
		}
	}

	tr := NewTracer(8, 250*time.Microsecond)
	tr.Keep(&Trace{ID: 0xbeef, Proc: "Pay", Outcome: TraceContended, TotalUS: 9,
		NPasses: 1, Passes: [MaxHealPasses]HealPass{{StartUS: 3, EndUS: 5, Restored: 2}}})
	cont := NewContention(8)
	cont.Touch(4, 17, TouchValidationFail)
	p.SetTracer(tr, false)
	p.SetContention(cont)
	p.SetRecorder(NewRecorder(1, 64), func(id int) string {
		if id == 4 {
			return "ACCOUNT"
		}
		return ""
	})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/trace status %d", rr.Code)
	}
	var tresp struct {
		SlowThresholdUS int64   `json:"slow_threshold_us"`
		Total           uint64  `json:"total"`
		Kept            uint64  `json:"kept"`
		Traces          []Trace `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &tresp); err != nil {
		t.Fatalf("/debug/trace JSON: %v", err)
	}
	if tresp.SlowThresholdUS != 250 || tresp.Total != 1 || tresp.Kept != 1 {
		t.Errorf("trace header = %+v, want threshold 250 total 1 kept 1", tresp)
	}
	if len(tresp.Traces) != 1 || tresp.Traces[0].ID != 0xbeef ||
		tresp.Traces[0].Passes[0].Restored != 2 {
		t.Errorf("trace payload = %+v", tresp.Traces)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contention", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/contention status %d", rr.Code)
	}
	var cresp struct {
		K       int    `json:"k"`
		Total   uint64 `json:"total"`
		Entries []struct {
			ContEntry
			TableName string `json:"table_name"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &cresp); err != nil {
		t.Fatalf("/debug/contention JSON: %v", err)
	}
	if cresp.K != 8 || cresp.Total != 1 || len(cresp.Entries) != 1 {
		t.Fatalf("contention payload = %+v", cresp)
	}
	if e := cresp.Entries[0]; e.Key != 17 || e.TableName != "ACCOUNT" {
		t.Errorf("entry = %+v, want key 17 table ACCOUNT", e)
	}
}

// TestDumpMergeOrderStableSameEpoch pins the dump's merge order when
// two workers log on the same epoch tick: events sort by the
// recorder-global sequence word, which is a total order, so repeated
// dumps render the identical interleaving — no wall-clock ties, no
// worker-index bias.
func TestDumpMergeOrderStableSameEpoch(t *testing.T) {
	rec := NewRecorder(2, 64)
	// Interleave the two workers' events by hand; all share epoch 5 and
	// land within the same nanosecond-resolution clock tick on fast
	// machines (the adversarial case for a time-keyed merge).
	for i := uint64(0); i < 10; i++ {
		rec.RecordT(int(i%2), KCommit, 5, i, 0, 0xf00+i)
	}
	dump := func() string {
		var sb strings.Builder
		rec.DumpWith(&sb, nil)
		return sb.String()
	}
	first := dump()
	for i := 0; i < 5; i++ {
		if again := dump(); again != first {
			t.Fatalf("dump order unstable across reads:\n--- first\n%s--- again\n%s", first, again)
		}
	}
	// The record order (payload word A = 0..9) must be preserved even
	// though worker indices alternate 0,1,0,1,...
	evs := rec.Events()
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.A != uint64(i) {
			t.Errorf("event %d has payload %d, want %d (global seq order)", i, ev.A, i)
		}
		if ev.Epoch != 5 || ev.Trace != 0xf00+uint64(i) {
			t.Errorf("event %d epoch/trace = (%d, %#x)", i, ev.Epoch, ev.Trace)
		}
	}
	// And the rendered lines follow the same order.
	var lastIdx = -1
	for i := uint64(0); i < 10; i++ {
		idx := strings.Index(first, "trace=0000000000000f0"+string(rune('0'+i)))
		if i >= 10 {
			break
		}
		if idx < 0 || idx < lastIdx {
			t.Fatalf("dump line for event %d out of order (idx %d, prev %d):\n%s", i, idx, lastIdx, first)
		}
		lastIdx = idx
	}
}
