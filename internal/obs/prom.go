package obs

import (
	"fmt"
	"io"
	"math"
	"time"

	"thedb/internal/metrics"
)

// WriteProm renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comment pairs followed
// by one sample line per series. Counters carry the _total suffix;
// the latency histogram uses the engine's doubling buckets converted
// to seconds with cumulative le edges, _sum and _count.
//
// thedb_up is always rendered, even from a zero snapshot, so scrapers
// (and the CI smoke) have one guaranteed gauge to assert on.
func WriteProm(w io.Writer, a *metrics.Aggregate) {
	WritePromWith(w, a, nil)
}

// Exemplar is the latency-histogram exemplar payload: the most recent
// slow trace, attached to the bucket its latency falls in so a
// dashboard can jump from a latency spike straight to /debug/trace.
type Exemplar struct {
	// TraceID is the slow trace's ID (rendered as 16 hex digits, the
	// same form \trace and the recorder dump print).
	TraceID uint64
	// ValueUS is the trace's total latency in microseconds.
	ValueUS int64
}

// WritePromWith is WriteProm with an optional histogram exemplar
// (OpenMetrics exemplar syntax; nil renders plain 0.0.4 text). Gated
// behind a flag upstream because strict text-format parsers may
// reject the `# {...}` suffix.
func WritePromWith(w io.Writer, a *metrics.Aggregate, ex *Exemplar) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("thedb_up", "1 while the exposition plane is serving.", 1)
	if a == nil {
		return
	}

	counter("thedb_committed_total", "Committed transactions.", a.Committed)
	counter("thedb_aborted_total", "Permanently aborted transactions.", a.Aborted)
	counter("thedb_restarts_total", "Abort-and-restart events.", a.Restarts)
	counter("thedb_heals_total", "Healing-phase invocations.", a.Heals)
	counter("thedb_healed_ops_total", "Operations restored by healing.", a.HealedOps)
	counter("thedb_false_invalidations_total", "Validation failures dismissed as false invalidations.", a.FalseInval)
	counter("thedb_ladder_fallbacks_total", "Degradation-ladder escalations to a less optimistic rung.", a.HealingFallbacks)
	counter("thedb_budget_exhausted_total", "Transactions that spent their retry budget (ErrContended).", a.BudgetExhausted)
	counter("thedb_watchdog_trips_total", "Stuck-epoch watchdog firings.", a.WatchdogTrips)
	counter("thedb_log_syncs_total", "Successful epoch log syncs.", a.LogSyncs)
	counter("thedb_log_sync_failures_total", "Failed epoch log sync attempts.", a.LogSyncFailures)
	counter("thedb_wal_frames_total", "WAL frames written across all streams.", a.WALFrames)
	counter("thedb_wal_bytes_total", "WAL bytes written across all streams.", a.WALBytes)
	counter("thedb_snapshot_reads_total", "Committed snapshot (read-only, zero-validation) transactions.", a.SnapshotReads)
	counter("thedb_mvcc_versions_installed_total", "Version-chain nodes pushed by the commit path on epoch-boundary crossings.", a.VersionsInstalled)
	counter("thedb_mvcc_versions_reclaimed_total", "Version-chain nodes reclaimed by the GC past the snapshot watermark.", a.MVCCVersionsReclaimed)

	gauge("thedb_workers", "Execution workers configured.", float64(a.Workers))
	gauge("thedb_epoch", "Global epoch at snapshot time.", float64(a.Epoch))
	gauge("thedb_durable_epoch", "Highest epoch on stable storage in every log stream.", float64(a.DurableEpoch))
	lost := 0.0
	if a.DurabilityLost {
		lost = 1
	}
	gauge("thedb_durability_lost", "1 after a log sync exhausted its retries.", lost)
	gauge("thedb_tps", "Committed transactions per second of wall time.", a.TPS())
	gauge("thedb_abort_rate", "Restarts per committed transaction.", a.AbortRate())
	gauge("thedb_mvcc_tracked_chains", "Records currently queued for version-chain pruning.", float64(a.MVCCTrackedChains))
	gauge("thedb_snapshots_pinned", "Workers currently holding a pinned snapshot.", float64(a.SnapshotsPinned))
	gauge("thedb_snapshot_epoch_lag", "Epochs the oldest pinned snapshot trails the current epoch.", float64(a.SnapshotEpochLag))

	name := "thedb_phase_seconds_total"
	fmt.Fprintf(w, "# HELP %s Cumulative transaction-processing time by phase (Fig. 19 breakdown).\n# TYPE %s counter\n", name, name)
	for p := 0; p < metrics.NumPhases; p++ {
		ph := metrics.Phase(p)
		fmt.Fprintf(w, "%s{phase=%q} %s\n", name, ph.String(), formatFloat(float64(a.PhaseNS[ph])/float64(time.Second)))
	}

	writeLatencyHistogram(w, a, ex)
}

// WritePromServer renders the network serving plane's counters in the
// Prometheus text format. s is a Snapshot (plain loads are safe).
// Emitted after the engine series when a Plane has server stats
// attached, so one scrape covers engine and serving plane together.
func WritePromServer(w io.Writer, s metrics.ServerCounters) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("thedb_server_connections", "Currently open client connections.", float64(s.ConnsOpened-s.ConnsClosed))
	counter("thedb_server_connections_total", "Client connections accepted since start.", s.ConnsOpened)
	gauge("thedb_server_in_flight", "Admitted requests not yet answered.", float64(s.InFlight))
	counter("thedb_server_requests_total", "Procedure invocations admitted.", s.Requests)
	counter("thedb_server_shed_total", "Requests shed by admission control (typed retryable errors, never silent drops).", s.Shed)
	counter("thedb_server_draining_rejects_total", "Requests refused with the draining error during shutdown.", s.DrainRejected)
	counter("thedb_server_bad_frames_total", "Protocol-violating frames answered with a bad-request error.", s.BadFrames)
	counter("thedb_server_bytes_in_total", "Raw bytes read from client connections.", s.BytesIn)
	counter("thedb_server_bytes_out_total", "Raw bytes written to client connections.", s.BytesOut)
	counter("thedb_server_dedup_hits_total", "Retried calls answered from a session dedup window without re-executing.", s.DedupHits)
	counter("thedb_server_dedup_coalesced_total", "Retried calls that joined an in-flight original instead of re-executing.", s.DedupCoalesced)
	counter("thedb_server_dedup_evicted_total", "Completed responses evicted from bounded dedup windows.", s.DedupEvicted)
	gauge("thedb_server_dedup_entries", "Completed responses currently cached across all session dedup windows.", float64(s.DedupEntries))
	gauge("thedb_server_sessions", "Live client sessions in the registry.", float64(s.Sessions))
	counter("thedb_server_sessions_evicted_total", "Idle sessions discarded to stay under the registry cap.", s.SessionsEvicted)
	counter("thedb_server_deadline_rejects_total", "Calls refused because their deadline budget was exhausted before execution.", s.DeadlineRejected)
}

// WritePromCheckpoint renders the checkpoint subsystem's counters and
// the boot restart measurements. Emitted when a Plane has checkpoint
// stats attached.
func WritePromCheckpoint(w io.Writer, c *metrics.Checkpoint) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("thedb_checkpoint_taken_total", "Checkpoints published.", c.Taken.Load())
	counter("thedb_checkpoint_failed_total", "Checkpoint rounds aborted before publishing.", c.Failed.Load())
	counter("thedb_checkpoint_wal_gens_removed_total", "WAL generation files deleted under the checkpoint watermark.", c.WALGensRemoved.Load())
	gauge("thedb_checkpoint_watermark_epoch", "Sealed-epoch watermark of the newest published checkpoint.", float64(c.LastWatermark.Load()))
	gauge("thedb_checkpoint_last_rows", "Rows in the newest published checkpoint image.", float64(c.LastRows.Load()))
	gauge("thedb_checkpoint_last_bytes", "Bytes of the newest published checkpoint image.", float64(c.LastBytes.Load()))
	gauge("thedb_checkpoint_last_duration_seconds", "Wall time of the newest successful checkpoint round.", float64(c.LastDurationNS.Load())/float64(time.Second))

	gauge("thedb_restart_seconds", "Wall time of boot recovery (checkpoint load plus WAL tail replay).", float64(c.RestartNS.Load())/float64(time.Second))
	gauge("thedb_restart_replayed_groups", "Commit groups replayed from the WAL tail at boot.", float64(c.RestartReplayed.Load()))
	gauge("thedb_restart_skipped_groups", "Commit groups below the checkpoint watermark, skipped at boot.", float64(c.RestartSkipped.Load()))
}

// WritePromContention renders the hot-key sketch as the
// thedb_contention_topk series: one sample per tracked key, labeled
// with table, key, feeding site split and the entry's overestimate
// bound, ranked by the rank label (1 = hottest).
func WritePromContention(w io.Writer, c *Contention) {
	name := "thedb_contention_topk"
	fmt.Fprintf(w, "# HELP %s Space-saving top-K contention counters: touches of a key at validation-failure and heal-start sites. The count overestimates the truth by at most err.\n# TYPE %s gauge\n", name, name)
	for i, e := range c.Snapshot() {
		fmt.Fprintf(w, "%s{rank=\"%d\",table=\"%d\",key=\"%d\",err=\"%d\",fails=\"%d\",heals=\"%d\"} %d\n",
			name, i+1, e.Table, e.Key, e.Err, e.Fails, e.Heals, e.Count)
	}
	fmt.Fprintf(w, "# HELP thedb_contention_touches_total Contention observations fed to the sketch.\n# TYPE thedb_contention_touches_total counter\nthedb_contention_touches_total %d\n", c.Total())
}

// writeLatencyHistogram emits the committed-latency doubling buckets
// as a Prometheus histogram in seconds. With a non-nil exemplar, the
// bucket the exemplar's latency falls in gets an OpenMetrics exemplar
// suffix: `# {trace_id="<16 hex>"} <latency seconds>`.
func writeLatencyHistogram(w io.Writer, a *metrics.Aggregate, ex *Exemplar) {
	name := "thedb_txn_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Committed-transaction latency (doubling buckets).\n# TYPE %s histogram\n", name, name)
	uppers, counts := a.LatencyBuckets()
	var cum int64
	exDone := false
	for i, upperUS := range uppers {
		cum += counts[i]
		le := "+Inf"
		if !math.IsInf(upperUS, 1) {
			le = formatFloat(upperUS / 1e6)
		}
		suffix := ""
		if ex != nil && !exDone && (math.IsInf(upperUS, 1) || float64(ex.ValueUS) <= upperUS) {
			suffix = fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex.TraceID, formatFloat(float64(ex.ValueUS)/1e6))
			exDone = true
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, le, cum, suffix)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(a.LatencySumNS)/float64(time.Second)))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// formatFloat renders a float the way Prometheus expects: plain
// decimal or scientific, never fmt's default %v oddities for ±Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}
