// Package obs is THEDB's observability plane: a per-worker flight
// recorder of typed protocol events, Prometheus-text rendering of
// live metric snapshots, and an HTTP exposition endpoint.
//
// The flight recorder answers the question end-of-run aggregates
// cannot: *why* did the engine make a protocol decision — which key
// invalidated a read set, how much work a healing pass restored,
// when the degradation ladder escalated, whether a WAL sync failed
// before the watchdog tripped. Each worker owns a fixed-size ring of
// events; recording is wait-free for the (single) writer and costs
// nothing when disabled (callers gate every site on a nil *Recorder,
// mirroring how Options.Chaos keeps unchaosed hot paths at a single
// pointer check).
//
// Readers (the event dump, the /debug/events endpoint) run while
// workers keep recording: every slot is a tiny seqlock of atomic
// words, so a dump observes each event either fully or not at all
// and the race detector stays quiet.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Kind is a protocol event type.
type Kind uint8

// The event taxonomy (DESIGN.md §11). The A and B payload words are
// kind-specific and documented per constant.
const (
	// KNone marks an empty slot; never recorded.
	KNone Kind = iota
	// KValidationFail is an inconsistent read discovered during
	// validation. A = record key, B = table ID.
	KValidationFail
	// KFalseInval is a validation mismatch dismissed as a false
	// invalidation (§4.5). A = record key, B = table ID.
	KFalseInval
	// KHealStart begins a healing pass. A = record key of the
	// inconsistent element (0 for phantom repair), B = table ID.
	KHealStart
	// KHealEnd completes a healing pass. A = operations restored by
	// the pass, B = validation-frontier index where it ran.
	KHealEnd
	// KLadderEscalate is a degradation-ladder escalation.
	// A = protocol escaped from, B = protocol escalated to
	// (core.Protocol values).
	KLadderEscalate
	// KEpochAdvance is a global epoch bump. A = new epoch.
	KEpochAdvance
	// KEpochSeal is the log-hardening seal of an epoch (group
	// commit). A = sealed epoch.
	KEpochSeal
	// KWALSync is one epoch log-sync attempt. A = 1 on success and 0
	// on failure, B = attempt ordinal (0 = first try).
	KWALSync
	// KWatchdogTrip is a stuck-epoch watchdog firing. A = the stalled
	// worker's ID, B = that worker's registered epoch.
	KWatchdogTrip
	// KCommit is a transaction commit. A = commit timestamp,
	// B = latency in microseconds.
	KCommit
	// KAbort is a permanent transaction failure. A = an AbortReason,
	// B = failed attempts consumed.
	KAbort
	numKinds
)

// String names the kind as it appears in dumps.
func (k Kind) String() string {
	switch k {
	case KValidationFail:
		return "validation-fail"
	case KFalseInval:
		return "false-invalidation"
	case KHealStart:
		return "heal-start"
	case KHealEnd:
		return "heal-end"
	case KLadderEscalate:
		return "ladder-escalate"
	case KEpochAdvance:
		return "epoch-advance"
	case KEpochSeal:
		return "epoch-seal"
	case KWALSync:
		return "wal-sync"
	case KWatchdogTrip:
		return "watchdog-trip"
	case KCommit:
		return "commit"
	case KAbort:
		return "abort"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AbortReason is the A payload of a KAbort event.
type AbortReason uint64

// Abort reasons.
const (
	// AbortUser is an application-initiated abort.
	AbortUser AbortReason = iota
	// AbortContended is retry-budget exhaustion (ErrContended).
	AbortContended
)

// String names the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortUser:
		return "user"
	case AbortContended:
		return "contended"
	default:
		return fmt.Sprintf("reason(%d)", uint64(r))
	}
}

// EpochActor is the Record worker index for events originated by the
// epoch advancer rather than an execution worker (mirrors
// fault.EpochSlot).
const EpochActor = -1

// Event is one recorded protocol event, decoded for consumers.
type Event struct {
	// Seq is the recorder-global sequence number: events across all
	// workers sort into one total order by Seq.
	Seq uint64
	// Time is the wall-clock instant of the event.
	Time time.Time
	// Worker is the recording worker, or EpochActor for the advancer.
	Worker int
	// Kind is the event type.
	Kind Kind
	// Epoch is the global epoch observed at the event.
	Epoch uint32
	// A and B are the kind-specific payload words.
	A, B uint64
	// Trace is the transaction trace ID active when the event was
	// recorded (0 when untraced): the correlation key between the
	// flight recorder and the trace ring (DESIGN.md §15).
	Trace uint64
}

// slotWords is the per-slot word count: version/seq, unix-nano time,
// kind|epoch, A, B, trace.
const slotWords = 6

// slot is one seqlock-protected event cell. The writer publishes by
// storing 0 into w[0], then the payload, then the (nonzero) global
// sequence number back into w[0]; a reader that observes the same
// nonzero w[0] before and after reading the payload got a consistent
// event.
type slot struct {
	w [slotWords]atomic.Uint64
}

// ring is one worker's fixed-size event buffer. Exactly one goroutine
// records into a ring at a time (the worker contract), so writes need
// no CAS; n counts events ever recorded for overwrite accounting.
type ring struct {
	slots []slot
	mask  uint64
	n     atomic.Uint64
}

func (r *ring) record(seq uint64, ts int64, kindEpoch, a, b, trace uint64) {
	s := &r.slots[r.n.Load()&r.mask]
	s.w[0].Store(0) // invalidate: readers mid-slot will retry
	s.w[1].Store(uint64(ts))
	s.w[2].Store(kindEpoch)
	s.w[3].Store(a)
	s.w[4].Store(b)
	s.w[5].Store(trace)
	s.w[0].Store(seq) // publish
	r.n.Add(1)
}

// load reads slot i consistently; ok is false while the writer is
// mid-publish (the event is simply skipped — it will be complete on
// the next dump).
func (s *slot) load() (ev [slotWords]uint64, ok bool) {
	v := s.w[0].Load()
	if v == 0 {
		return ev, false
	}
	ev[0] = v
	for i := 1; i < slotWords; i++ {
		ev[i] = s.w[i].Load()
	}
	return ev, s.w[0].Load() == v
}

// Recorder is the engine-wide flight recorder: one ring per worker
// plus one for the epoch advancer. Recording never blocks, never
// allocates, and overwrites the oldest events when a ring wraps.
type Recorder struct {
	rings []ring
	seq   atomic.Uint64
	start time.Time
	size  int
}

// NewRecorder builds a recorder for the given worker count with
// perWorker slots per ring (rounded up to a power of two, minimum 8).
func NewRecorder(workers, perWorker int) *Recorder {
	size := 8
	for size < perWorker {
		size <<= 1
	}
	r := &Recorder{
		rings: make([]ring, workers+1), // +1: the epoch advancer's ring
		start: time.Now(),
		size:  size,
	}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].mask = uint64(size - 1)
	}
	return r
}

// RingSize returns the per-worker slot count.
func (r *Recorder) RingSize() int { return r.size }

// Record appends one event to the worker's ring (EpochActor for the
// advancer). It is wait-free and allocation-free; each worker slot
// must be recorded into by at most one goroutine at a time.
//
//thedb:noalloc
func (r *Recorder) Record(worker int, k Kind, epoch uint32, a, b uint64) {
	r.RecordT(worker, k, epoch, a, b, 0)
}

// RecordT is Record with a transaction trace ID attached: every event
// a traced transaction emits carries its trace ID, which is how
// /debug/trace correlates a retained trace with the exact recorder
// events of its heal passes and escalations. Same contract as Record:
// wait-free, allocation-free, single recording goroutine per slot.
//
//thedb:noalloc
func (r *Recorder) RecordT(worker int, k Kind, epoch uint32, a, b, trace uint64) {
	ring := &r.rings[r.slotIndex(worker)]
	seq := r.seq.Add(1)
	ring.record(seq, time.Now().UnixNano(), uint64(k)|uint64(epoch)<<8, a, b, trace)
}

func (r *Recorder) slotIndex(worker int) int {
	if worker < 0 || worker >= len(r.rings)-1 {
		return len(r.rings) - 1
	}
	return worker
}

// Recorded returns how many events have ever been recorded (including
// ones since overwritten).
func (r *Recorder) Recorded() uint64 { return r.seq.Load() }

// Dropped returns how many events have been overwritten by ring
// wrap-around and are no longer dumpable.
func (r *Recorder) Dropped() uint64 {
	var d uint64
	for i := range r.rings {
		if n := r.rings[i].n.Load(); n > uint64(r.size) {
			d += n - uint64(r.size)
		}
	}
	return d
}

// Events returns a merged snapshot of every ring, ordered by global
// sequence number (which is also causal order across workers). Safe
// to call while workers keep recording: events mid-publish or
// overwritten mid-read are skipped, never torn.
func (r *Recorder) Events() []Event {
	var out []Event
	for ri := range r.rings {
		ring := &r.rings[ri]
		worker := ri
		if ri == len(r.rings)-1 {
			worker = EpochActor
		}
		for si := range ring.slots {
			ev, ok := ring.slots[si].load()
			if !ok {
				continue
			}
			out = append(out, Event{
				Seq:    ev[0],
				Time:   time.Unix(0, int64(ev[1])),
				Worker: worker,
				Kind:   Kind(ev[2] & 0xff),
				Epoch:  uint32(ev[2] >> 8),
				A:      ev[3],
				B:      ev[4],
				Trace:  ev[5],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the merged, time-ordered event interleaving in a
// human-readable form. Table IDs are printed raw; use DumpWith to
// resolve them to names.
func (r *Recorder) Dump(w io.Writer) {
	r.DumpWith(w, nil)
}

// DumpWith is Dump with a table-name resolver for the events that
// carry a table ID (validation failures, heal starts).
func (r *Recorder) DumpWith(w io.Writer, tableName func(id int) string) {
	events := r.Events()
	fmt.Fprintf(w, "flight recorder: %d events retained (%d recorded, %d overwritten)\n",
		len(events), r.Recorded(), r.Dropped())
	for _, ev := range events {
		trace := ""
		if ev.Trace != 0 {
			trace = fmt.Sprintf(" trace=%016x", ev.Trace)
		}
		fmt.Fprintf(w, "  [%6d] %-12s %-7s epoch=%-4d %s%s\n",
			ev.Seq, ev.Time.Sub(r.start).Round(time.Microsecond), actorName(ev.Worker), ev.Epoch, ev.Detail(tableName), trace)
	}
}

func actorName(worker int) string {
	if worker == EpochActor {
		return "advancer"
	}
	return fmt.Sprintf("w%d", worker)
}

// Detail renders the kind-specific payload of the event.
func (ev Event) Detail(tableName func(id int) string) string {
	tbl := func(id uint64) string {
		if tableName != nil {
			if n := tableName(int(id)); n != "" {
				return n
			}
		}
		return fmt.Sprintf("table(%d)", id)
	}
	switch ev.Kind {
	case KValidationFail, KFalseInval:
		return fmt.Sprintf("%s %s[%d]", ev.Kind, tbl(ev.B), ev.A)
	case KHealStart:
		if ev.A == 0 && ev.B == 0 {
			return fmt.Sprintf("%s phantom-scan", ev.Kind)
		}
		return fmt.Sprintf("%s %s[%d]", ev.Kind, tbl(ev.B), ev.A)
	case KHealEnd:
		return fmt.Sprintf("%s ops-restored=%d frontier=%d", ev.Kind, ev.A, ev.B)
	case KLadderEscalate:
		// A and B are core.Protocol values (0=Healing, 1=OCC, 3=2PL).
		return fmt.Sprintf("%s proto %d -> %d", ev.Kind, ev.A, ev.B)
	case KEpochAdvance, KEpochSeal:
		return fmt.Sprintf("%s to=%d", ev.Kind, ev.A)
	case KWALSync:
		outcome := "ok"
		if ev.A == 0 {
			outcome = "FAILED"
		}
		return fmt.Sprintf("%s %s attempt=%d", ev.Kind, outcome, ev.B)
	case KWatchdogTrip:
		return fmt.Sprintf("%s stalled-worker=w%d stuck-epoch=%d", ev.Kind, ev.A, ev.B)
	case KCommit:
		return fmt.Sprintf("%s ts=%d latency=%dµs", ev.Kind, ev.A, ev.B)
	case KAbort:
		return fmt.Sprintf("%s reason=%s attempts=%d", ev.Kind, AbortReason(ev.A), ev.B)
	default:
		return fmt.Sprintf("%s a=%d b=%d", ev.Kind, ev.A, ev.B)
	}
}
