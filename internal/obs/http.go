package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"thedb/internal/metrics"
)

// Plane is a process-wide exposition hub: an HTTP handler whose
// live-metrics source and flight recorder can be swapped at runtime,
// so a benchmark harness that creates and destroys engines per cell
// keeps serving /metrics from whichever engine is currently live.
type Plane struct {
	src       atomic.Pointer[source]
	rec       atomic.Pointer[Recorder]
	tableName atomic.Pointer[func(int) string]
	srvStats  atomic.Pointer[metrics.Server]
	ckStats   atomic.Pointer[metrics.Checkpoint]
	bootRep   atomic.Pointer[bootReport]
}

// bootReport boxes the boot recovery report for atomic swap; the
// payload is pre-rendered JSON so the plane needs no knowledge of the
// reporting type.
type bootReport struct{ json []byte }

// source boxes the snapshot closure (atomic.Pointer needs a concrete
// pointee type).
type source struct {
	live func() *metrics.Aggregate
}

// NewPlane builds an empty hub; it serves thedb_up until a source is
// attached.
func NewPlane() *Plane { return &Plane{} }

// SetSource attaches the live-snapshot closure (nil detaches).
func (p *Plane) SetSource(live func() *metrics.Aggregate) {
	if live == nil {
		p.src.Store(nil)
		return
	}
	p.src.Store(&source{live: live})
}

// SetRecorder attaches the flight recorder served at /debug/events
// (nil detaches). tableName, optional, resolves table IDs in dumps.
func (p *Plane) SetRecorder(rec *Recorder, tableName func(int) string) {
	p.rec.Store(rec)
	if tableName == nil {
		p.tableName.Store(nil)
	} else {
		p.tableName.Store(&tableName)
	}
}

// SetServerStats attaches the network serving plane's counters (nil
// detaches): /metrics then appends the thedb_server_* series to every
// scrape.
func (p *Plane) SetServerStats(s *metrics.Server) {
	p.srvStats.Store(s)
}

// SetCheckpointStats attaches the checkpoint subsystem's counters
// (nil detaches): /metrics then appends the thedb_checkpoint_* and
// thedb_restart_* series.
func (p *Plane) SetCheckpointStats(c *metrics.Checkpoint) {
	p.ckStats.Store(c)
}

// SetBootReport attaches the boot recovery report served at
// /debug/recovery. rep must be JSON-marshalable; a marshal failure is
// reported by the endpoint, never at set time.
func (p *Plane) SetBootReport(rep any) {
	if rep == nil {
		p.bootRep.Store(nil)
		return
	}
	b, err := json.Marshal(rep)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	p.bootRep.Store(&bootReport{json: b})
}

// Handler returns the exposition mux:
//
//	/metrics         Prometheus text format of the live snapshot
//	/debug/events    flight-recorder dump (merged, time-ordered)
//	/debug/recovery  boot recovery report (JSON), 404 until set
//	/debug/pprof/    the standard pprof index (worker goroutines carry
//	                 a thedb_worker label when driven via DoWorker)
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var agg *metrics.Aggregate
		if s := p.src.Load(); s != nil {
			agg = s.live()
		}
		WriteProm(w, agg)
		if s := p.srvStats.Load(); s != nil {
			WritePromServer(w, s.Snapshot())
		}
		if c := p.ckStats.Load(); c != nil {
			WritePromCheckpoint(w, c)
		}
	})
	mux.HandleFunc("/debug/recovery", func(w http.ResponseWriter, r *http.Request) {
		rep := p.bootRep.Load()
		if rep == nil {
			http.Error(w, "no recovery report (fresh start or report not attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep.json)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		rec := p.rec.Load()
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var tn func(int) string
		if f := p.tableName.Load(); f != nil {
			tn = *f
		}
		rec.DumpWith(w, tn)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	l net.Listener
	s *http.Server
}

// StartServer listens on addr (host:port; :0 picks a free port) and
// serves h in the background. The caller owns Close.
func StartServer(addr string, h http.Handler) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Shutdown; nothing to do
		// either way — the endpoint is best-effort by design.
		_ = s.Serve(l)
	}()
	return &Server{l: l, s: s}, nil
}

// Addr returns the bound address (useful with :0).
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down, waiting briefly for in-flight
// scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.s.Shutdown(ctx)
}

// DoWorker runs fn on the calling goroutine with a pprof label
// identifying the worker, so CPU and goroutine profiles taken through
// the exposition endpoint attribute samples per worker
// (runtime/pprof.Do label propagation).
func DoWorker(id int, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("thedb_worker", strconv.Itoa(id)),
		func(context.Context) { fn() })
}
