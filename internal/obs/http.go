package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"thedb/internal/metrics"
)

// Plane is a process-wide exposition hub: an HTTP handler whose
// live-metrics source and flight recorder can be swapped at runtime,
// so a benchmark harness that creates and destroys engines per cell
// keeps serving /metrics from whichever engine is currently live.
type Plane struct {
	src       atomic.Pointer[source]
	rec       atomic.Pointer[Recorder]
	tableName atomic.Pointer[func(int) string]
	srvStats  atomic.Pointer[metrics.Server]
	ckStats   atomic.Pointer[metrics.Checkpoint]
	bootRep   atomic.Pointer[bootReport]
	tracer    atomic.Pointer[Tracer]
	cont      atomic.Pointer[Contention]
	exemplars atomic.Bool
}

// bootReport boxes the boot recovery report for atomic swap; the
// payload is pre-rendered JSON so the plane needs no knowledge of the
// reporting type.
type bootReport struct{ json []byte }

// source boxes the snapshot closure (atomic.Pointer needs a concrete
// pointee type).
type source struct {
	live func() *metrics.Aggregate
}

// NewPlane builds an empty hub; it serves thedb_up until a source is
// attached.
func NewPlane() *Plane { return &Plane{} }

// SetSource attaches the live-snapshot closure (nil detaches).
func (p *Plane) SetSource(live func() *metrics.Aggregate) {
	if live == nil {
		p.src.Store(nil)
		return
	}
	p.src.Store(&source{live: live})
}

// SetRecorder attaches the flight recorder served at /debug/events
// (nil detaches). tableName, optional, resolves table IDs in dumps.
func (p *Plane) SetRecorder(rec *Recorder, tableName func(int) string) {
	p.rec.Store(rec)
	if tableName == nil {
		p.tableName.Store(nil)
	} else {
		p.tableName.Store(&tableName)
	}
}

// SetServerStats attaches the network serving plane's counters (nil
// detaches): /metrics then appends the thedb_server_* series to every
// scrape.
func (p *Plane) SetServerStats(s *metrics.Server) {
	p.srvStats.Store(s)
}

// SetCheckpointStats attaches the checkpoint subsystem's counters
// (nil detaches): /metrics then appends the thedb_checkpoint_* and
// thedb_restart_* series.
func (p *Plane) SetCheckpointStats(c *metrics.Checkpoint) {
	p.ckStats.Store(c)
}

// SetTracer attaches the transaction trace ring served at
// /debug/trace (nil detaches). With exemplars true, /metrics decorates
// the latency histogram buckets with the most recent slow trace ID in
// OpenMetrics exemplar syntax (DESIGN.md §15.5) — off by default
// because strict text-format 0.0.4 parsers may reject the suffix.
func (p *Plane) SetTracer(t *Tracer, exemplars bool) {
	p.tracer.Store(t)
	p.exemplars.Store(exemplars && t != nil)
}

// SetContention attaches the hot-key sketch served at
// /debug/contention and exported as thedb_contention_topk (nil
// detaches).
func (p *Plane) SetContention(c *Contention) {
	p.cont.Store(c)
}

// SetBootReport attaches the boot recovery report served at
// /debug/recovery. rep must be JSON-marshalable; a marshal failure is
// reported by the endpoint, never at set time.
func (p *Plane) SetBootReport(rep any) {
	if rep == nil {
		p.bootRep.Store(nil)
		return
	}
	b, err := json.Marshal(rep)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	p.bootRep.Store(&bootReport{json: b})
}

// Handler returns the exposition mux:
//
//	/metrics           Prometheus text format of the live snapshot
//	/debug/events      flight-recorder dump (merged, time-ordered)
//	/debug/trace       retained transaction traces (JSON), 404 until set
//	/debug/contention  hot-key sketch snapshot (JSON), 404 until set
//	/debug/recovery    boot recovery report (JSON), 404 until set
//	/debug/pprof/      the standard pprof index (worker goroutines carry
//	                   a thedb_worker label when driven via DoWorker)
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var agg *metrics.Aggregate
		if s := p.src.Load(); s != nil {
			agg = s.live()
		}
		var ex *Exemplar
		if t := p.tracer.Load(); t != nil && p.exemplars.Load() {
			if id, us, ok := t.LastSlow(); ok {
				ex = &Exemplar{TraceID: id, ValueUS: us}
			}
		}
		WritePromWith(w, agg, ex)
		if s := p.srvStats.Load(); s != nil {
			WritePromServer(w, s.Snapshot())
		}
		if c := p.ckStats.Load(); c != nil {
			WritePromCheckpoint(w, c)
		}
		if c := p.cont.Load(); c != nil {
			WritePromContention(w, c)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		t := p.tracer.Load()
		if t == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		total, kept := t.Stats()
		resp := struct {
			SlowThresholdUS int64   `json:"slow_threshold_us"`
			Total           uint64  `json:"total"`
			Kept            uint64  `json:"kept"`
			Traces          []Trace `json:"traces"`
		}{
			SlowThresholdUS: t.SlowThreshold().Microseconds(),
			Total:           total,
			Kept:            kept,
			Traces:          t.Snapshot(),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/contention", func(w http.ResponseWriter, r *http.Request) {
		c := p.cont.Load()
		if c == nil {
			http.Error(w, "contention profiling not enabled", http.StatusNotFound)
			return
		}
		var tn func(int) string
		if f := p.tableName.Load(); f != nil {
			tn = *f
		}
		entries := c.Snapshot()
		type namedEntry struct {
			ContEntry
			TableName string `json:"table_name,omitempty"`
		}
		named := make([]namedEntry, len(entries))
		for i, e := range entries {
			named[i] = namedEntry{ContEntry: e}
			if tn != nil {
				named[i].TableName = tn(e.Table)
			}
		}
		resp := struct {
			K       int          `json:"k"`
			Total   uint64       `json:"total"`
			Entries []namedEntry `json:"entries"`
		}{K: c.K(), Total: c.Total(), Entries: named}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/recovery", func(w http.ResponseWriter, r *http.Request) {
		rep := p.bootRep.Load()
		if rep == nil {
			http.Error(w, "no recovery report (fresh start or report not attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep.json)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		rec := p.rec.Load()
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var tn func(int) string
		if f := p.tableName.Load(); f != nil {
			tn = *f
		}
		rec.DumpWith(w, tn)
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	l net.Listener
	s *http.Server
}

// StartServer listens on addr (host:port; :0 picks a free port) and
// serves h in the background. The caller owns Close.
func StartServer(addr string, h http.Handler) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Shutdown; nothing to do
		// either way — the endpoint is best-effort by design.
		_ = s.Serve(l)
	}()
	return &Server{l: l, s: s}, nil
}

// Addr returns the bound address (useful with :0).
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down, waiting briefly for in-flight
// scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.s.Shutdown(ctx)
}

// DoWorker runs fn on the calling goroutine with a pprof label
// identifying the worker, so CPU and goroutine profiles taken through
// the exposition endpoint attribute samples per worker
// (runtime/pprof.Do label propagation).
func DoWorker(id int, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("thedb_worker", strconv.Itoa(id)),
		func(context.Context) { fn() })
}
