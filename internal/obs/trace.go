// Transaction tracing (DESIGN.md §15): each transaction accumulates
// monotonic per-phase timings while it runs, and at completion the
// worker offers the finished trace to a Tracer — a bounded ring with
// tail-based retention that always keeps the interesting traces
// (slow, aborted, contended, healed, dedup-answered) and lets the
// boring fast commits fall through. The ring is the backing store for
// /debug/trace, the shell's \trace view, and the histogram exemplars.
//
// The recording contract mirrors the flight recorder's: Tracer nil
// costs one pointer check per transaction, and the commit fast path
// (Tracer.Keep) is //thedb:noalloc — the per-transaction scratch
// Trace lives in the Worker and Keep copies it into a preallocated
// slot under a mutex, so tracing never allocates per transaction.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceOutcome classifies how a traced transaction ended.
type TraceOutcome uint8

// Trace outcomes.
const (
	// TraceCommitted: the transaction committed.
	TraceCommitted TraceOutcome = iota
	// TraceAborted: an application (user) abort.
	TraceAborted
	// TraceContended: the degradation ladder exhausted its retry
	// budget (ErrContended).
	TraceContended
	// TraceDedupHit: the server answered the call from its per-session
	// dedup window; the transaction did not run again.
	TraceDedupHit
)

// String names the outcome as it appears in /debug/trace and \trace.
func (o TraceOutcome) String() string {
	switch o {
	case TraceCommitted:
		return "committed"
	case TraceAborted:
		return "aborted"
	case TraceContended:
		return "contended"
	case TraceDedupHit:
		return "dedup-hit"
	default:
		return "outcome(?)"
	}
}

// MaxHealPasses bounds the per-trace heal-pass detail. Passes beyond
// the bound still count in NPasses and HealUS; only their per-pass
// rows are dropped (the flight recorder retains them all, correlated
// by trace ID).
const MaxHealPasses = 8

// HealPass is one healing pass inside a traced transaction. Offsets
// are microseconds from the transaction's start on the worker's
// monotonic clock, so StartUS <= EndUS and passes are ordered.
type HealPass struct {
	// StartUS and EndUS are the pass boundaries as microsecond
	// offsets from transaction start.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Restored is the number of operations the pass re-executed.
	Restored uint32 `json:"restored"`
	// Frontier is the validation-frontier index where the pass ran.
	Frontier uint32 `json:"frontier"`
}

// Trace is one transaction's accumulated phase record. It is a plain
// value: workers reuse one as per-transaction scratch and Keep copies
// it into the ring, so the type must stay free of pointers into
// worker state (Proc, a string header, is the only reference and the
// catalog keeps it alive).
type Trace struct {
	// ID is the trace ID: minted by the client, by the server at
	// admission for untraced callers, or by the worker for local runs.
	// Nonzero for every traced transaction.
	ID uint64 `json:"id"`
	// Proc is the stored-procedure name ("" for ad-hoc closures).
	Proc string `json:"proc"`
	// Worker is the engine worker that ran the transaction.
	Worker int32 `json:"worker"`
	// Outcome classifies the ending.
	Outcome TraceOutcome `json:"outcome"`
	// Proto is the protocol rung the final attempt ran under
	// (core.Protocol values: 0=Healing, 1=OCC, 2=Silo, 3=2PL).
	Proto uint8 `json:"proto"`
	// Attempts counts executions, 1 = no restart.
	Attempts uint32 `json:"attempts"`
	// Escalations counts degradation-ladder rung changes.
	Escalations uint32 `json:"escalations"`
	// Epoch is the global epoch at completion.
	Epoch uint32 `json:"epoch"`
	// StartNS is the wall-clock start (unix nanoseconds): admission
	// time for server calls, first-execution time for local runs.
	StartNS int64 `json:"start_ns"`
	// QueueUS is admission-to-dispatch wait (server calls; 0 local).
	QueueUS int64 `json:"queue_us"`
	// ExecUS is the execute (read) phase, summed over attempts.
	ExecUS int64 `json:"exec_us"`
	// ValidateUS is validation time excluding healing, summed over
	// attempts.
	ValidateUS int64 `json:"validate_us"`
	// HealUS is total healing time across all passes.
	HealUS int64 `json:"heal_us"`
	// CommitUS is the commit apply (write-back + logging), of which
	// WALUS was spent appending to the WAL. Commits never wait for
	// fsync (group commit hardens epochs ~2 behind; DESIGN.md §8), so
	// sync waits appear as KEpochSeal/KWALSync recorder events, not as
	// a transaction phase.
	CommitUS int64 `json:"commit_us"`
	// WALUS is the WAL-append portion of CommitUS.
	WALUS int64 `json:"wal_us"`
	// RespUS is the response hand-off to the connection writer
	// (includes outbound backpressure), amended by the server after
	// the trace is kept; 0 for local runs.
	RespUS int64 `json:"resp_us"`
	// TotalUS is dispatch-to-completion on the worker (excludes
	// QueueUS and RespUS).
	TotalUS int64 `json:"total_us"`
	// NPasses counts healing passes; may exceed len(Passes).
	NPasses uint32 `json:"n_passes"`
	// Passes holds the first NPasses (capped) heal passes.
	Passes [MaxHealPasses]HealPass `json:"passes"`
}

// Healed reports whether the transaction went through at least one
// healing pass.
func (t *Trace) Healed() bool { return t.NPasses > 0 }

// Tracer is the bounded completed-trace ring with tail-based
// retention. One per engine; all workers share it (Keep serializes on
// a mutex, which is off the contended path: most transactions are
// fast clean commits that return after two comparisons).
type Tracer struct {
	slowNS int64 // retention threshold, nanoseconds

	// total counts completed traced transactions. It sits outside the
	// mutex because the overwhelmingly common case — a fast clean
	// commit — must not serialize workers on a shared lock: Keep's
	// boring path is two comparisons and this one atomic add.
	total atomic.Uint64

	mu       sync.Mutex
	ring     []Trace // preallocated; len == cap == capacity
	next     int     // ring cursor
	filled   int     // slots ever written, caps at len(ring)
	kept     uint64  // traces retained (incl. since-overwritten)
	lastSlow Trace   // most recent slow trace (exemplar source)
	haveSlow bool
}

// NewTracer builds a tracer retaining up to capacity traces and
// treating transactions at or above slow as slow (slow <= 0 disables
// the latency criterion; aborted/contended/healed/dedup traces are
// kept regardless).
func NewTracer(capacity int, slow time.Duration) *Tracer {
	if capacity < 8 {
		capacity = 8
	}
	return &Tracer{ring: make([]Trace, capacity), slowNS: slow.Nanoseconds()}
}

// SlowThreshold returns the configured slow cutoff.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNS) }

// Keep offers a completed trace. Tail-based retention: the trace is
// copied into the ring iff it is interesting — any non-committed
// outcome (abort, contended, dedup-hit), any healing pass, or total
// latency at or past the slow threshold. Returns the ring slot the
// trace landed in, or -1 when it was dropped as boring. The slot plus
// tr.ID lets the server amend RespUS after the response goes out.
//
// Keep is on the commit fast path and must not allocate: the caller
// owns tr (worker scratch), and retention is a struct copy into a
// preallocated slot under the mutex.
//
//thedb:noalloc
func (t *Tracer) Keep(tr *Trace) int {
	slow := t.slowNS > 0 && tr.TotalUS*1000 >= t.slowNS
	interesting := tr.Outcome != TraceCommitted || tr.NPasses > 0 || slow
	t.total.Add(1)
	if !interesting {
		return -1
	}
	t.mu.Lock()
	slot := t.next
	t.ring[slot] = *tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.filled < len(t.ring) {
		t.filled++
	}
	t.kept++
	if slow {
		t.lastSlow = *tr
		t.haveSlow = true
	}
	t.mu.Unlock()
	return slot
}

// AmendResp stamps the response-write duration onto a kept trace,
// identified by the slot Keep returned plus the trace ID (the ID
// guard makes a late amend of an already-overwritten slot a no-op).
func (t *Tracer) AmendResp(slot int, id uint64, respUS int64) {
	if slot < 0 || id == 0 {
		return
	}
	t.mu.Lock()
	if slot < len(t.ring) && t.ring[slot].ID == id {
		t.ring[slot].RespUS = respUS
	}
	if t.haveSlow && t.lastSlow.ID == id {
		t.lastSlow.RespUS = respUS
	}
	t.mu.Unlock()
}

// Snapshot returns the retained traces, newest first. Safe while
// workers keep tracing.
func (t *Tracer) Snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		// Walk backwards from the most recently written slot.
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Stats returns (completed traced transactions seen, traces kept).
func (t *Tracer) Stats() (total, kept uint64) {
	t.mu.Lock()
	kept = t.kept
	t.mu.Unlock()
	return t.total.Load(), kept
}

// LastSlow returns the most recent slow trace's ID and total latency
// in microseconds; ok is false until a slow trace has been kept. This
// is the exemplar feed for the latency histogram.
func (t *Tracer) LastSlow() (id uint64, totalUS int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.haveSlow {
		return 0, 0, false
	}
	return t.lastSlow.ID, t.lastSlow.TotalUS, true
}
