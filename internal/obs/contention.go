// Hot-key contention profiling (DESIGN.md §15.4): a fixed-size
// space-saving top-K sketch fed from the protocol sites that already
// know which record invalidated whom — validation failures and heal
// starts carry (table, key) into the flight recorder, and the same
// pair feeds the sketch. The result names the keys behind the
// degradation story: /debug/contention and the thedb_contention_topk
// metric rank them with per-entry overestimate bounds.
//
// The sketch is Metwally et al.'s space-saving algorithm: K counters
// total. A touch of a tracked key increments it; a touch of an
// untracked key when full evicts the minimum counter and adopts its
// count + 1, recording the evicted count as the new entry's error
// bound. Guarantees: every key with true frequency above N/K is
// tracked, and a tracked entry's true count lies in
// [Count-Err, Count]. K is small (default 32), so the eviction scan
// is a cache-friendly linear pass.
//
// Touch sites sit on failure paths (a validation just failed, a heal
// pass is starting), never on the clean commit fast path, so the
// map lookup and mutex here do not tax uncontended transactions;
// Contention nil costs one pointer check, same as the recorder.
package obs

import (
	"sort"
	"sync"
)

// TouchKind says which protocol site fed the sketch.
type TouchKind uint8

// Touch kinds.
const (
	// TouchValidationFail: the key invalidated a read set.
	TouchValidationFail TouchKind = iota
	// TouchHealStart: a healing pass started at the key.
	TouchHealStart
)

type contKey struct {
	table int
	key   uint64
}

// ContEntry is one ranked hot key in a sketch snapshot.
type ContEntry struct {
	// Table and Key identify the record.
	Table int    `json:"table"`
	Key   uint64 `json:"key"`
	// Count is the space-saving counter: an overestimate of the true
	// touch count by at most Err.
	Count uint64 `json:"count"`
	// Err is the entry's overestimate bound (the evicted minimum the
	// entry inherited when adopted; 0 for entries tracked since the
	// sketch had room).
	Err uint64 `json:"err"`
	// Fails and Heals split the touches observed while tracked:
	// validation failures vs heal starts.
	Fails uint64 `json:"fails"`
	Heals uint64 `json:"heals"`
}

// Contention is the engine-wide hot-key sketch. All workers share it.
type Contention struct {
	mu      sync.Mutex
	k       int
	entries []ContEntry
	index   map[contKey]int // (table,key) -> entries slot
	total   uint64          // touches ever observed
}

// NewContention builds a sketch tracking up to k keys (minimum 8).
func NewContention(k int) *Contention {
	if k < 8 {
		k = 8
	}
	return &Contention{
		k:       k,
		entries: make([]ContEntry, 0, k),
		index:   make(map[contKey]int, k),
	}
}

// K returns the sketch width.
func (c *Contention) K() int { return c.k }

// Touch feeds one contention observation.
func (c *Contention) Touch(table int, key uint64, kind TouchKind) {
	ck := contKey{table, key}
	c.mu.Lock()
	c.total++
	i, ok := c.index[ck]
	if !ok {
		if len(c.entries) < c.k {
			// Room left: track exactly.
			i = len(c.entries)
			c.entries = append(c.entries, ContEntry{Table: table, Key: key})
			c.index[ck] = i
		} else {
			// Full: evict the minimum counter, adopt its count as the
			// new entry's base and error bound.
			i = 0
			for j := 1; j < len(c.entries); j++ {
				if c.entries[j].Count < c.entries[i].Count {
					i = j
				}
			}
			old := c.entries[i]
			delete(c.index, contKey{old.Table, old.Key})
			c.entries[i] = ContEntry{Table: table, Key: key, Count: old.Count, Err: old.Count}
			c.index[ck] = i
		}
	}
	c.entries[i].Count++
	switch kind {
	case TouchValidationFail:
		c.entries[i].Fails++
	case TouchHealStart:
		c.entries[i].Heals++
	}
	c.mu.Unlock()
}

// Snapshot returns the tracked entries ranked by Count descending
// (ties broken by table then key for a deterministic order).
func (c *Contention) Snapshot() []ContEntry {
	c.mu.Lock()
	out := make([]ContEntry, len(c.entries))
	copy(out, c.entries)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Total returns how many touches the sketch has ever observed.
func (c *Contention) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
