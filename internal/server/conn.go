package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/metrics"
	"thedb/internal/obs"
	"thedb/internal/wire"
)

// conn is one client connection. Two goroutines drive it: a read loop
// (handshake, frame decode, admission) and a writer draining out.
// Responses arrive on out from dispatch goroutines in completion
// order, which is what gives the protocol out-of-order pipelining.
//
// Teardown order is load-bearing: the read loop exits first, waits
// for every admitted request it let in (reqs), then closes out; the
// writer drains the channel, flushes, and closes the socket. Senders
// therefore never race close(out) — a dispatch goroutine's send
// happens strictly before its reqs.Done, which happens before
// reqs.Wait returns.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan []byte

	// sess is the exactly-once session bound in the handshake (nil
	// when dedup is disabled). Written once before the first call is
	// admitted, read by the same read loop thereafter.
	sess *session

	reqs     sync.WaitGroup // this connection's admitted, unanswered requests
	inflight atomic.Int64

	// dead flips when a write fails or shutdown forces the socket
	// closed; the writer then discards instead of writing, so senders
	// drain without blocking on a broken peer.
	dead      atomic.Bool
	closeOnce sync.Once
}

// countConn wraps a net.Conn, feeding byte counts into the server
// stats.
type countConn struct {
	net.Conn
	stats *metrics.Server
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.stats.Add(&c.stats.BytesIn, int64(n))
	}
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.stats.Add(&c.stats.BytesOut, int64(n))
	}
	return n, err
}

// startConn registers a new connection and launches its goroutine
// pair.
func (s *Server) startConn(raw net.Conn) {
	s.stats.Inc(&s.stats.ConnsOpened)
	nc := countConn{Conn: raw, stats: s.stats}
	c := &conn{
		srv: s,
		nc:  nc,
		// Capacity covers the admission bound plus reader-side
		// rejections so dispatchers almost never block on a slow peer.
		out: make(chan []byte, s.cfg.PerConnInFlight+16),
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.connWG.Add(2)
	go c.readLoop()
	go c.writeLoop()
}

// send enqueues an encoded frame for the writer. Callers must hold an
// admission slot (reqs) or be the read loop itself; see the teardown
// comment on conn.
func (c *conn) send(frame []byte) {
	c.out <- frame
}

// wake unblocks a read loop parked in a blocking read (used by
// Shutdown). The expired deadline makes the pending read return
// immediately with a timeout error.
func (c *conn) wake() {
	if err := c.nc.SetReadDeadline(time.Now()); err != nil {
		c.fail()
	}
}

// fail marks the connection broken and closes the socket immediately,
// unblocking both goroutines. Pending output is discarded — the peer
// is gone — but accounting still drains normally.
func (c *conn) fail() {
	c.dead.Store(true)
	c.closeNC()
}

// closeNC closes the socket exactly once. The close error is reported
// through the server stats rather than dropped: a failed close on an
// already-broken conn is noise, but on a healthy conn it can mask
// lost response bytes.
func (c *conn) closeNC() {
	c.closeOnce.Do(func() {
		if err := c.nc.Close(); err != nil && !c.dead.Load() {
			c.srv.stats.Inc(&c.srv.stats.BadFrames)
		}
	})
}

// readLoop performs the handshake then decodes and admits call frames
// until the peer hangs up, a protocol violation occurs, or shutdown
// wakes it.
func (c *conn) readLoop() {
	s := c.srv
	defer s.connWG.Done()
	defer func() {
		// All admitted requests answered, then hand the channel to
		// the writer for final flush + socket close.
		c.reqs.Wait()
		close(c.out)
		if c.sess != nil {
			c.sess.release()
		}
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(c.nc, 64<<10)
	fr := wire.NewReader(br, s.cfg.MaxFrame)

	if !c.handshake(fr) {
		return
	}

	for {
		if s.cfg.ReadTimeout > 0 {
			if err := c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
				return
			}
		}
		f, err := fr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.stats.Inc(&s.stats.BadFrames)
			}
			return
		}
		if s.draining.Load() {
			s.stats.Inc(&s.stats.DrainRejected)
			c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeDraining, Backoff: s.cfg.DrainHint, Msg: "server draining",
			}))
			continue
		}
		if f.Op != wire.OpCall {
			s.stats.Inc(&s.stats.BadFrames)
			c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeBadRequest, Msg: "expected CALL frame, got " + wire.OpName(f.Op),
			}))
			continue
		}
		call, err := wire.DecodeCall(f.Payload)
		if err != nil {
			s.stats.Inc(&s.stats.BadFrames)
			c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeBadRequest, Msg: "malformed CALL: " + err.Error(),
			}))
			continue
		}
		if !s.db.HasProcedure(call.Proc) {
			c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
				Code: wire.CodeUnknownProc, Msg: "no such procedure " + call.Proc,
			}))
			continue
		}
		c.admit(f.ID, call)
	}
}

// admit applies the admission policy to one decoded call: shed past
// the per-connection bound, refuse a dead deadline budget, dedup a
// retried sequence number, shed when the global queue is full,
// otherwise hand it to the dispatchers. Shedding always answers with
// a retryable typed error plus backoff hint — never a silent drop.
func (c *conn) admit(id uint64, call wire.Call) {
	s := c.srv
	if c.inflight.Load() >= int64(s.cfg.PerConnInFlight) {
		s.stats.Inc(&s.stats.Shed)
		c.send(wire.AppendError(nil, id, wire.RemoteError{
			Code: wire.CodeShed, Backoff: s.cfg.ShedHint, Msg: "connection pipeline full",
		}))
		return
	}
	req := &request{
		c: c, id: id, proc: call.Proc, args: call.Args,
		sess: c.sess, seq: call.Seq, readOnly: call.ReadOnly,
		arrival: time.Now(), budget: time.Duration(call.BudgetUS) * time.Microsecond,
	}
	if s.tracer != nil {
		req.trace = call.TraceID
		if req.trace == 0 {
			// Untraced caller: mint the end-to-end ID at admission.
			req.trace = s.mintTrace()
		}
	}
	if req.budget > 0 && time.Since(req.arrival) >= req.budget {
		// The caller's context died in transit; nothing was admitted,
		// so answer plainly without touching the accounting or window.
		s.stats.Inc(&s.stats.DeadlineRejected)
		c.send(wire.AppendError(nil, id, wire.RemoteError{
			Code: wire.CodeDeadline, Msg: "deadline budget exhausted at admission",
		}))
		return
	}
	// Account before offering: a dispatcher may pick the request up
	// and finish it the instant it lands in the channel.
	s.pending.Add(1)
	c.reqs.Add(1)
	c.inflight.Add(1)
	s.stats.Add(&s.stats.InFlight, 1)
	if s.draining.Load() {
		// Shutdown flipped the flag between the read loop's check and
		// the increment above. Back out so the drain never waits on —
		// or worse, misses — a request admitted behind its back. No
		// dedup entry exists yet, so a plain finish balances.
		s.finish(c)
		s.stats.Inc(&s.stats.DrainRejected)
		c.send(wire.AppendError(nil, id, wire.RemoteError{
			Code: wire.CodeDraining, Backoff: s.cfg.DrainHint, Msg: "server draining",
		}))
		return
	}
	// Read-only snapshot calls skip the dedup window: they write
	// nothing, so re-executing a retry is safe and cheaper than
	// caching response payloads for it.
	if c.sess != nil && req.seq != 0 && !req.readOnly {
		switch verdict, e := c.sess.register(req); verdict {
		case dedupHit:
			// Already executed: replay the cached response under the
			// retry's request id. The transaction does not run again.
			s.stats.Inc(&s.stats.DedupHits)
			if tr := s.tracer; tr != nil {
				// A cached replay never reaches the engine, so record
				// its trace here (always retained: outcome ≠ committed).
				t := obs.Trace{
					ID: req.trace, Proc: req.proc, Worker: -1,
					Outcome: obs.TraceDedupHit,
					StartNS: req.arrival.UnixNano(),
					TotalUS: time.Since(req.arrival).Microseconds(),
				}
				tr.Keep(&t)
			}
			c.send(wire.AppendFrame(nil, e.op, id, e.payload))
			s.finish(c)
			return
		case dedupJoined:
			// The original attempt is still executing; this retry is
			// parked on its entry and answered by respond when the one
			// execution completes. Accounting stays held until then.
			s.stats.Inc(&s.stats.DedupCoalesced)
			return
		case dedupNew:
			req.entry = e
		}
	}
	select {
	case s.work <- req:
		s.stats.Inc(&s.stats.Requests)
	default:
		s.stats.Inc(&s.stats.Shed)
		s.respond(req, wire.OpError, wire.AppendErrorPayload(nil, wire.RemoteError{
			Code: wire.CodeShed, Backoff: s.cfg.ShedHint, Msg: "server at capacity",
		}), false)
	}
}

// handshake reads the client hello and answers with the server's
// limits. Returns false when the connection should be torn down.
func (c *conn) handshake(fr *wire.Reader) bool {
	s := c.srv
	if err := c.nc.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout)); err != nil {
		return false
	}
	f, err := fr.Next()
	if err != nil {
		if errors.Is(err, wire.ErrBadVersion) {
			// The header parsed; tell the peer why before hanging up.
			c.send(wire.AppendError(nil, 0, wire.RemoteError{
				Code: wire.CodeVersion, Msg: "unsupported protocol version",
			}))
		} else if !errors.Is(err, io.EOF) {
			s.stats.Inc(&s.stats.BadFrames)
		}
		return false
	}
	if f.Op != wire.OpHello {
		s.stats.Inc(&s.stats.BadFrames)
		c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
			Code: wire.CodeBadRequest, Msg: "expected HELLO, got " + wire.OpName(f.Op),
		}))
		return false
	}
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		s.stats.Inc(&s.stats.BadFrames)
		c.send(wire.AppendError(nil, f.ID, wire.RemoteError{
			Code: wire.CodeBadRequest, Msg: "malformed HELLO: " + err.Error(),
		}))
		return false
	}
	if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
		return false
	}
	w := wire.Welcome{
		MaxFrame:    uint32(s.cfg.MaxFrame),
		MaxInFlight: uint32(s.cfg.PerConnInFlight),
		Server:      s.cfg.Banner,
		Incarnation: s.incarnation,
	}
	if s.cfg.DedupWindow > 0 {
		c.sess = s.bindSession(h.Session)
		w.Session = c.sess.token
		w.DedupWindow = uint32(s.cfg.DedupWindow)
	}
	c.send(wire.AppendWelcome(nil, w))
	return true
}

// writeLoop drains out onto the socket, coalescing flushes: it only
// flushes when the channel momentarily empties, so a burst of
// pipelined responses shares one syscall.
func (c *conn) writeLoop() {
	s := c.srv
	defer s.connWG.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for buf := range c.out {
		if c.dead.Load() {
			continue // peer is gone; drain so senders never block
		}
		if err := c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			c.fail()
			continue
		}
		if _, err := bw.Write(buf); err != nil {
			c.fail()
			continue
		}
		// Flush when the queue momentarily empties (burst over) or
		// once enough has accumulated: without the byte cap, a
		// steadily-fed queue would defer responses until bufio's own
		// buffer fills, adding seconds of latency under load.
		if len(c.out) == 0 || bw.Buffered() >= 16<<10 {
			if err := bw.Flush(); err != nil {
				c.fail()
			}
		}
	}
	if !c.dead.Load() {
		if err := bw.Flush(); err != nil {
			c.fail()
		}
	}
	c.closeNC()
	s.stats.Inc(&s.stats.ConnsClosed)
}

// isTimeout reports whether err is a network timeout (a shutdown wake
// or an idle ReadTimeout expiry — expected teardown, not a protocol
// fault).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
