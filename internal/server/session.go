package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// This file is the server half of exactly-once retries. A client binds
// a session token in the handshake and stamps every call with a
// per-session monotonic sequence number; the session keeps a bounded
// window of completed responses so a retry of an already-executed
// (session, seq) — sent after an ambiguous connection death — is
// answered from cache instead of running the transaction twice. A
// retry that arrives while the original is still executing parks as a
// waiter and shares the single execution's response.
//
// Lock order: registry.mu before session.mu. Connection sends never
// happen under either lock.

// waiter is a parked retry of an in-flight operation: the connection
// and request id to answer when the original execution completes.
type waiter struct {
	c  *conn
	id uint64
}

// dedupEntry tracks one (session, seq) operation. It is created
// executing (done=false, retries park in waiters) and either
// transitions to done with the response payload cached, or is removed
// when the outcome must not be replayed (retryable rejections, which a
// retry should re-attempt for real).
type dedupEntry struct {
	seq     uint64
	done    bool
	op      uint8  // response opcode once done
	payload []byte // response payload once done; immutable after
	waiters []waiter
}

// session is one client's exactly-once scope: the dedup window shared
// by every connection presenting the same token.
type session struct {
	token uint64

	refs     atomic.Int64 // connections currently bound to this session
	inflight atomic.Int64 // dedup-tracked operations currently executing

	mu      sync.Mutex
	entries map[uint64]*dedupEntry
	order   *list.List // completed entries, oldest first (eviction order)
}

// release drops one connection's binding (readLoop teardown).
func (ss *session) release() { ss.refs.Add(-1) }

// dedupVerdict is register's answer for an incoming (session, seq).
type dedupVerdict int

const (
	// dedupNew: first sighting; the caller owns the execution.
	dedupNew dedupVerdict = iota
	// dedupJoined: the original is still executing; the caller was
	// parked as a waiter and must not execute or answer.
	dedupJoined
	// dedupHit: already completed; answer from the entry's cached
	// response.
	dedupHit
)

// register classifies req's sequence number against the window. For
// dedupHit the returned entry's op/payload are safe to read without
// the lock: completed entries are immutable.
func (ss *session) register(req *request) (dedupVerdict, *dedupEntry) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if e, ok := ss.entries[req.seq]; ok {
		if e.done {
			return dedupHit, e
		}
		e.waiters = append(e.waiters, waiter{c: req.c, id: req.id})
		return dedupJoined, e
	}
	e := &dedupEntry{seq: req.seq}
	ss.entries[req.seq] = e
	ss.inflight.Add(1)
	return dedupNew, e
}

// complete finishes an executing entry, returning the parked retries
// the caller must answer (outside the lock). With cache=true the
// response is kept for future retries, evicting the oldest completed
// entries past the window bound; with cache=false the entry is
// removed so a retry re-executes — used for retryable rejections and
// deadline kills, where replaying the verdict would be wrong.
func (ss *session) complete(s *Server, e *dedupEntry, op uint8, payload []byte, cache bool, window int) []waiter {
	ss.mu.Lock()
	w := e.waiters
	e.waiters = nil
	if cache {
		e.done = true
		e.op = op
		e.payload = payload
		ss.order.PushBack(e)
		s.stats.Add(&s.stats.DedupEntries, 1)
		for ss.order.Len() > window {
			old := ss.order.Remove(ss.order.Front()).(*dedupEntry)
			delete(ss.entries, old.seq)
			s.stats.Inc(&s.stats.DedupEvicted)
			s.stats.Add(&s.stats.DedupEntries, -1)
		}
	} else {
		delete(ss.entries, e.seq)
	}
	ss.mu.Unlock()
	ss.inflight.Add(-1)
	return w
}

// registry maps session tokens to live sessions.
type registry struct {
	mu      sync.Mutex
	m       map[uint64]*session
	counter uint64
}

// bindSession resolves a handshake token to a session, minting a fresh
// token when the client presents 0. A non-zero token unknown to this
// registry (minted by a previous server incarnation, or evicted) gets
// a fresh session under the presented token, so a rejoining client
// keeps one identity; its pre-restart sequences are not replayable,
// which the client detects through the incarnation change.
func (s *Server) bindSession(token uint64) *session {
	r := &s.sessions
	r.mu.Lock()
	defer r.mu.Unlock()
	if token == 0 {
		r.counter++
		token = (s.incarnation&0xFFFFFFFF)<<32 | r.counter&0xFFFFFFFF
	}
	if ss, ok := r.m[token]; ok {
		ss.refs.Add(1)
		return ss
	}
	if len(r.m) >= s.cfg.MaxSessions {
		s.evictSessionLocked()
	}
	ss := &session{token: token, entries: map[uint64]*dedupEntry{}, order: list.New()}
	ss.refs.Add(1)
	r.m[token] = ss
	s.stats.Add(&s.stats.Sessions, 1)
	return ss
}

// evictSessionLocked discards one idle session — no bound connections,
// nothing executing — to make room under the registry cap. When every
// session is busy the cap is exceeded rather than breaking a live
// client: correctness over the bound, and the gauge makes it visible.
func (s *Server) evictSessionLocked() {
	for tok, ss := range s.sessions.m {
		if ss.refs.Load() == 0 && ss.inflight.Load() == 0 {
			ss.mu.Lock()
			n := ss.order.Len()
			ss.mu.Unlock()
			delete(s.sessions.m, tok)
			s.stats.Add(&s.stats.DedupEntries, -int64(n))
			s.stats.Add(&s.stats.DedupEvicted, int64(n))
			s.stats.Add(&s.stats.Sessions, -1)
			s.stats.Inc(&s.stats.SessionsEvicted)
			return
		}
	}
}
