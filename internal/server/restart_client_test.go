package server_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"thedb/client"
	"thedb/internal/server"
	"thedb/internal/storage"
)

// TestPooledClientRedialsAfterRestart: a pooled client whose server
// fully restarts (new process incarnation, same address) must lazily
// re-dial on the next call and succeed — with no ambiguity error,
// because no call was in flight when the server went down.
func TestPooledClientRedialsAfterRestart(t *testing.T) {
	db1 := newKVDB(t, 2, nil)
	db1.Start()
	srv1 := server.New(db1, server.Config{})
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l1.Addr().String()
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(l1) }()

	cl, err := client.Dial(addr, client.Options{Conns: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ctx := context.Background()
	if _, err := cl.Call(ctx, "KVPut", storage.Int(1), storage.Int(10)); err != nil {
		t.Fatalf("put before restart: %v", err)
	}
	// Warm both pooled connections.
	if _, err := cl.Call(ctx, "KVGet", storage.Int(1)); err != nil {
		t.Fatalf("get before restart: %v", err)
	}

	// Full restart: stop the first server, then bring a fresh database
	// and server up on the very same address.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	if err := <-done1; err != nil {
		t.Fatalf("serve: %v", err)
	}

	db2 := newKVDB(t, 2, nil)
	db2.Start()
	srv2 := server.New(db2, server.Config{})
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 50 {
			t.Fatalf("re-listen on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(l2) }()
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Shutdown(sctx); err != nil {
			t.Errorf("shutdown 2: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("serve 2: %v", err)
		}
	})

	// Let the idle pooled conns observe the server's FIN. Without
	// this, a call can race the read loop, write into a dying socket
	// and legitimately surface ambiguity — the scenario under test is
	// a client that was idle across the restart.
	time.Sleep(200 * time.Millisecond)

	// Both pooled conns are dead; every call must transparently
	// re-dial. No MaybeCommittedError may surface — nothing was in
	// flight across the restart.
	for i := 0; i < 4; i++ {
		if _, err := cl.Call(ctx, "KVPut", storage.Int(int64(100+i)), storage.Int(int64(i))); err != nil {
			if errors.Is(err, client.ErrMaybeCommitted) {
				t.Fatalf("call %d surfaced ambiguity with no in-flight attempt: %v", i, err)
			}
			t.Fatalf("call %d after restart: %v", i, err)
		}
	}
	res, err := cl.Call(ctx, "KVGet", storage.Int(101))
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if got := res.Val("val").Int(); got != 1 {
		t.Fatalf("val = %d, want 1", got)
	}
}
