package server_test

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"thedb"
	"thedb/client"
	"thedb/internal/server"
	"thedb/internal/wire"
)

// newKVDB builds a database with a KV table and the procedure set the
// network tests exercise: KVPut (upsert), KVGet, Slow (sleeps, for
// pipelining tests) and Nope (always aborts).
func newKVDB(t *testing.T, workers int, sink func(int) io.Writer) *thedb.DB {
	t.Helper()
	db, err := thedb.Open(thedb.Config{
		Protocol: thedb.Healing,
		Workers:  workers,
		LogSink:  sink,
		LogMode:  thedb.ValueLogging,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.MustCreateTable(thedb.Schema{
		Name:    "KV",
		Columns: []thedb.ColumnDef{{Name: "val", Kind: thedb.KindInt}},
	})
	db.MustRegister(&thedb.Spec{
		Name:   "KVPut",
		Params: []string{"key", "val"},
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name:     "upsert",
				KeyReads: []string{"key"},
				ValReads: []string{"val"},
				Body: func(ctx thedb.OpCtx) error {
					e := ctx.Env()
					k := thedb.Key(e.Int("key"))
					_, ok, err := ctx.Read("KV", k, nil)
					if err != nil {
						return err
					}
					if ok {
						return ctx.Write("KV", k, []int{0}, []thedb.Value{e.Val("val")})
					}
					return ctx.Insert("KV", k, thedb.Tuple{e.Val("val")})
				},
			})
		},
	})
	db.MustRegister(&thedb.Spec{
		Name:   "KVGet",
		Params: []string{"key"},
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name:     "get",
				KeyReads: []string{"key"},
				Writes:   []string{"found", "val"},
				Body: func(ctx thedb.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read("KV", thedb.Key(e.Int("key")), nil)
					if err != nil {
						return err
					}
					if !ok {
						e.SetInt("found", 0)
						e.SetInt("val", 0)
						return nil
					}
					e.SetInt("found", 1)
					e.SetVal("val", row[0])
					return nil
				},
			})
		},
	})
	db.MustRegister(&thedb.Spec{
		Name:   "Slow",
		Params: []string{"ms"},
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name:     "sleep",
				ValReads: []string{"ms"},
				Body: func(ctx thedb.OpCtx) error {
					time.Sleep(time.Duration(ctx.Env().Int("ms")) * time.Millisecond)
					return nil
				},
			})
		},
	})
	db.MustRegister(&thedb.Spec{
		Name: "Nope",
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name: "abort",
				Body: func(ctx thedb.OpCtx) error {
					return thedb.UserAbort("nope says no")
				},
			})
		},
	})
	return db
}

// startServer starts srv on a loopback listener and returns its
// address. Cleanup shuts the server (and so the database) down.
func startServer(t *testing.T, db *thedb.DB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	db.Start()
	srv := server.New(db, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

// rawDial opens a raw wire connection and completes the handshake,
// returning the socket, a frame reader and the server's welcome.
func rawDial(t *testing.T, addr string) (net.Conn, *wire.Reader, wire.Welcome) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("close: %v", err)
		}
	})
	if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Client: "test"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	fr := wire.NewReader(nc, wire.DefaultMaxFrame)
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if f.Op != wire.OpWelcome {
		t.Fatalf("handshake reply op = %s, want WELCOME", wire.OpName(f.Op))
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatalf("decode welcome: %v", err)
	}
	return nc, fr, w
}

func TestCallRoundTrip(t *testing.T) {
	db := newKVDB(t, 2, nil)
	_, addr := startServer(t, db, server.Config{})

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("client dial: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()
	ctx := context.Background()

	if _, err := cl.Call(ctx, "KVPut", thedb.Int(7), thedb.Int(42)); err != nil {
		t.Fatalf("KVPut: %v", err)
	}
	res, err := cl.Call(ctx, "KVGet", thedb.Int(7))
	if err != nil {
		t.Fatalf("KVGet: %v", err)
	}
	if got := res.Val("found").Int(); got != 1 {
		t.Fatalf("found = %d, want 1", got)
	}
	if got := res.Val("val").Int(); got != 42 {
		t.Fatalf("val = %d, want 42", got)
	}

	// Unknown procedure: typed, non-retryable.
	_, err = cl.Call(ctx, "NoSuchProc")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeUnknownProc {
		t.Fatalf("unknown proc error = %v, want CodeUnknownProc", err)
	}

	// User abort: typed, non-retryable, carries the reason.
	_, err = cl.Call(ctx, "Nope")
	if !errors.As(err, &re) || re.Code != wire.CodeAbort {
		t.Fatalf("abort error = %v, want CodeAbort", err)
	}
	if re.Retryable() {
		t.Fatalf("abort marked retryable")
	}
}

// TestOutOfOrderPipelining proves responses complete out of order: a
// slow call issued first is answered after a fast call issued second
// on the same connection.
func TestOutOfOrderPipelining(t *testing.T) {
	db := newKVDB(t, 2, nil)
	_, addr := startServer(t, db, server.Config{})

	nc, fr, _ := rawDial(t, addr)
	var buf []byte
	buf = wire.AppendCall(buf, 1, wire.Call{Proc: "Slow", Args: []thedb.Value{thedb.Int(300)}})
	buf = wire.AppendCall(buf, 2, wire.Call{Proc: "KVGet", Args: []thedb.Value{thedb.Int(1)}})
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}

	first, err := fr.Next()
	if err != nil {
		t.Fatalf("first response: %v", err)
	}
	if first.ID != 2 {
		t.Fatalf("first completed id = %d, want 2 (fast call overtakes slow)", first.ID)
	}
	second, err := fr.Next()
	if err != nil {
		t.Fatalf("second response: %v", err)
	}
	if second.ID != 1 {
		t.Fatalf("second completed id = %d, want 1", second.ID)
	}
}

// TestShedding drives more requests than the admission bounds allow
// and checks the overflow is answered with typed retryable errors
// carrying backoff hints — not queued, not dropped.
func TestShedding(t *testing.T) {
	db := newKVDB(t, 1, nil)
	srv, addr := startServer(t, db, server.Config{
		PerConnInFlight: 2,
		GlobalInFlight:  2,
	})

	nc, fr, w := rawDial(t, addr)
	if w.MaxInFlight != 2 {
		t.Fatalf("advertised window = %d, want 2", w.MaxInFlight)
	}
	var buf []byte
	const total = 8
	for id := uint64(1); id <= total; id++ {
		buf = wire.AppendCall(buf, id, wire.Call{Proc: "Slow", Args: []thedb.Value{thedb.Int(50)}})
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}

	shed, ok := 0, 0
	for i := 0; i < total; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		switch f.Op {
		case wire.OpResult:
			ok++
		case wire.OpError:
			re, err := wire.DecodeError(f.Payload)
			if err != nil {
				t.Fatalf("decode error frame: %v", err)
			}
			if re.Code != wire.CodeShed {
				t.Fatalf("error code = %d (%s), want CodeShed", re.Code, re.Msg)
			}
			if !re.Retryable() {
				t.Fatalf("shed error not retryable")
			}
			if re.Backoff <= 0 {
				t.Fatalf("shed error has no backoff hint")
			}
			shed++
		default:
			t.Fatalf("unexpected op %s", wire.OpName(f.Op))
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatalf("every request shed")
	}
	if got := srv.Stats().Snapshot().Shed; got != int64(shed) {
		t.Fatalf("stats.Shed = %d, observed %d shed responses", got, shed)
	}
}

// TestBadFrameHandling checks protocol violations get typed errors
// and the connection accounting stays balanced.
func TestBadFrameHandling(t *testing.T) {
	db := newKVDB(t, 1, nil)
	_, addr := startServer(t, db, server.Config{})

	nc, fr, _ := rawDial(t, addr)
	// A HELLO after the handshake is a protocol violation.
	if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Client: "again"})); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	re, err := wire.DecodeError(f.Payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if re.Code != wire.CodeBadRequest {
		t.Fatalf("code = %d, want CodeBadRequest", re.Code)
	}
	// The connection survives: a normal call still works.
	if _, err := nc.Write(wire.AppendCall(nil, 9, wire.Call{Proc: "KVGet", Args: []thedb.Value{thedb.Int(0)}})); err != nil {
		t.Fatalf("write call: %v", err)
	}
	f, err = fr.Next()
	if err != nil {
		t.Fatalf("call response: %v", err)
	}
	if f.Op != wire.OpResult || f.ID != 9 {
		t.Fatalf("got op=%s id=%d, want RESULT id=9", wire.OpName(f.Op), f.ID)
	}
}
