package server_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"thedb"
	"thedb/internal/obs"
	"thedb/internal/server"
	"thedb/internal/wire"
)

// registerKVInc adds a non-idempotent read-modify-write procedure: the
// one whose double execution the dedup window exists to prevent. KVPut
// cannot tell the story — replaying an upsert is invisible.
func registerKVInc(db *thedb.DB) {
	db.MustRegister(&thedb.Spec{
		Name:   "KVInc",
		Params: []string{"key", "delta"},
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name:     "inc",
				KeyReads: []string{"key"},
				ValReads: []string{"delta"},
				Writes:   []string{"val"},
				Body: func(ctx thedb.OpCtx) error {
					e := ctx.Env()
					k := thedb.Key(e.Int("key"))
					row, ok, err := ctx.Read("KV", k, nil)
					if err != nil {
						return err
					}
					var cur int64
					if ok {
						cur = row[0].Int()
					}
					nv := cur + e.Int("delta")
					e.SetInt("val", nv)
					if ok {
						return ctx.Write("KV", k, []int{0}, []thedb.Value{thedb.Int(nv)})
					}
					return ctx.Insert("KV", k, thedb.Tuple{thedb.Int(nv)})
				},
			})
		},
	})
}

// rawDialSession is rawDial presenting an existing session token, the
// reconnect path of an exactly-once retry.
func rawDialSession(t *testing.T, addr string, session uint64) (net.Conn, *wire.Reader, wire.Welcome) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	if err := nc.SetDeadline(time.Now().Add(15 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Client: "dedup-test", Session: session})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	fr := wire.NewReader(nc, wire.DefaultMaxFrame)
	f, err := fr.Next()
	if err != nil || f.Op != wire.OpWelcome {
		t.Fatalf("welcome: op=%d err=%v", f.Op, err)
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatalf("decode welcome: %v", err)
	}
	return nc, fr, w
}

func writeFrames(t *testing.T, nc net.Conn, buf []byte) {
	t.Helper()
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func nextFrame(t *testing.T, fr *wire.Reader) wire.Frame {
	t.Helper()
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return f
}

func resultInt(t *testing.T, f wire.Frame, name string) int64 {
	t.Helper()
	if f.Op != wire.OpResult {
		if f.Op == wire.OpError {
			re, _ := wire.DecodeError(f.Payload)
			t.Fatalf("id %d: error %+v, want result", f.ID, re)
		}
		t.Fatalf("id %d: op %s, want result", f.ID, wire.OpName(f.Op))
	}
	outs, err := wire.DecodeResult(f.Payload)
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}
	for _, o := range outs {
		if o.Name == name && len(o.Vals) == 1 {
			return o.Vals[0].Int()
		}
	}
	t.Fatalf("output %q missing from %+v", name, outs)
	return 0
}

// TestDedupReplaysCachedResponse proves the exactly-once core: a
// retried (session, seq) is answered from the window under the new
// request id and the transaction does not run twice. The cached
// counters must also surface in the Prometheus rendering.
func TestDedupReplaysCachedResponse(t *testing.T) {
	db := newKVDB(t, 2, nil)
	registerKVInc(db)
	srv, addr := startServer(t, db, server.Config{})

	nc, fr, w := rawDialSession(t, addr, 0)
	if w.Session == 0 || w.Incarnation == 0 || w.DedupWindow == 0 {
		t.Fatalf("welcome missing session fields: %+v", w)
	}

	writeFrames(t, nc, wire.AppendCall(nil, 1, wire.Call{
		Proc: "KVInc", Seq: 1, Args: []thedb.Value{thedb.Int(5), thedb.Int(10)},
	}))
	if v := resultInt(t, nextFrame(t, fr), "val"); v != 10 {
		t.Fatalf("first execution val = %d, want 10", v)
	}

	// Retry the same seq under a fresh request id.
	writeFrames(t, nc, wire.AppendCall(nil, 2, wire.Call{
		Proc: "KVInc", Seq: 1, Args: []thedb.Value{thedb.Int(5), thedb.Int(10)},
	}))
	f := nextFrame(t, fr)
	if f.ID != 2 {
		t.Fatalf("replay answered id %d, want 2", f.ID)
	}
	if v := resultInt(t, f, "val"); v != 10 {
		t.Fatalf("replayed val = %d, want 10 (cached response)", v)
	}

	// The increment applied once: the row still reads 10.
	writeFrames(t, nc, wire.AppendCall(nil, 3, wire.Call{
		Proc: "KVGet", Seq: 2, Args: []thedb.Value{thedb.Int(5)},
	}))
	if v := resultInt(t, nextFrame(t, fr), "val"); v != 10 {
		t.Fatalf("row = %d after replayed retry, want 10 (double apply!)", v)
	}

	snap := srv.Stats().Snapshot()
	if snap.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", snap.DedupHits)
	}
	if snap.DedupEntries != 2 || snap.Sessions != 1 {
		t.Fatalf("DedupEntries = %d Sessions = %d, want 2 and 1", snap.DedupEntries, snap.Sessions)
	}

	var sb strings.Builder
	obs.WritePromServer(&sb, snap)
	out := sb.String()
	for _, want := range []string{
		"thedb_server_dedup_hits_total 1",
		"thedb_server_dedup_entries 2",
		"thedb_server_sessions 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestDedupSurvivesReconnect retries an answered call over a brand-new
// connection presenting the old session token — the actual shape of an
// ambiguous-failure retry after a connection reset.
func TestDedupSurvivesReconnect(t *testing.T) {
	db := newKVDB(t, 2, nil)
	registerKVInc(db)
	srv, addr := startServer(t, db, server.Config{})

	nc1, fr1, w := rawDialSession(t, addr, 0)
	writeFrames(t, nc1, wire.AppendCall(nil, 1, wire.Call{
		Proc: "KVInc", Seq: 1, Args: []thedb.Value{thedb.Int(7), thedb.Int(3)},
	}))
	if v := resultInt(t, nextFrame(t, fr1), "val"); v != 3 {
		t.Fatalf("val = %d, want 3", v)
	}
	_ = nc1.Close()

	nc2, fr2, w2 := rawDialSession(t, addr, w.Session)
	if w2.Session != w.Session {
		t.Fatalf("rejoin bound session %#x, presented %#x", w2.Session, w.Session)
	}
	writeFrames(t, nc2, wire.AppendCall(nil, 9, wire.Call{
		Proc: "KVInc", Seq: 1, Args: []thedb.Value{thedb.Int(7), thedb.Int(3)},
	}))
	if v := resultInt(t, nextFrame(t, fr2), "val"); v != 3 {
		t.Fatalf("replayed val = %d, want 3", v)
	}
	writeFrames(t, nc2, wire.AppendCall(nil, 10, wire.Call{
		Proc: "KVGet", Seq: 2, Args: []thedb.Value{thedb.Int(7)},
	}))
	if v := resultInt(t, nextFrame(t, fr2), "val"); v != 3 {
		t.Fatalf("row = %d after cross-connection retry, want 3 (double apply!)", v)
	}
	if got := srv.Stats().Snapshot().DedupHits; got != 1 {
		t.Fatalf("DedupHits = %d, want 1", got)
	}
}

// TestDedupCoalescesConcurrentRetry parks a retry that arrives while
// the original attempt is still executing: both get the answer of the
// single execution.
func TestDedupCoalescesConcurrentRetry(t *testing.T) {
	db := newKVDB(t, 2, nil)
	db.MustRegister(&thedb.Spec{
		Name:   "SlowInc",
		Params: []string{"key", "ms"},
		Plan: func(b *thedb.Builder, _ *thedb.Env) {
			b.Op(thedb.Op{
				Name:     "slowinc",
				KeyReads: []string{"key"},
				ValReads: []string{"ms"},
				Writes:   []string{"val"},
				Body: func(ctx thedb.OpCtx) error {
					e := ctx.Env()
					time.Sleep(time.Duration(e.Int("ms")) * time.Millisecond)
					k := thedb.Key(e.Int("key"))
					row, ok, err := ctx.Read("KV", k, nil)
					if err != nil {
						return err
					}
					var cur int64
					if ok {
						cur = row[0].Int()
					}
					e.SetInt("val", cur+1)
					if ok {
						return ctx.Write("KV", k, []int{0}, []thedb.Value{thedb.Int(cur + 1)})
					}
					return ctx.Insert("KV", k, thedb.Tuple{thedb.Int(cur + 1)})
				},
			})
		},
	})
	srv, addr := startServer(t, db, server.Config{})

	ncA, frA, w := rawDialSession(t, addr, 0)
	ncB, frB, _ := rawDialSession(t, addr, w.Session)

	writeFrames(t, ncA, wire.AppendCall(nil, 1, wire.Call{
		Proc: "SlowInc", Seq: 4, Args: []thedb.Value{thedb.Int(1), thedb.Int(200)},
	}))
	time.Sleep(50 * time.Millisecond) // let the original start executing
	writeFrames(t, ncB, wire.AppendCall(nil, 2, wire.Call{
		Proc: "SlowInc", Seq: 4, Args: []thedb.Value{thedb.Int(1), thedb.Int(200)},
	}))

	if v := resultInt(t, nextFrame(t, frA), "val"); v != 1 {
		t.Fatalf("original val = %d, want 1", v)
	}
	if v := resultInt(t, nextFrame(t, frB), "val"); v != 1 {
		t.Fatalf("joined retry val = %d, want 1", v)
	}
	writeFrames(t, ncB, wire.AppendCall(nil, 3, wire.Call{
		Proc: "KVGet", Seq: 5, Args: []thedb.Value{thedb.Int(1)},
	}))
	if v := resultInt(t, nextFrame(t, frB), "val"); v != 1 {
		t.Fatalf("row = %d, want 1 (coalesced retry executed twice)", v)
	}
	if got := srv.Stats().Snapshot().DedupCoalesced; got != 1 {
		t.Fatalf("DedupCoalesced = %d, want 1", got)
	}
}

// TestDedupWindowEviction bounds the window: old completions fall out,
// and a retry of an evicted seq re-executes — the documented limit of
// the exactly-once guarantee.
func TestDedupWindowEviction(t *testing.T) {
	db := newKVDB(t, 2, nil)
	registerKVInc(db)
	srv, addr := startServer(t, db, server.Config{DedupWindow: 4})

	nc, fr, w := rawDialSession(t, addr, 0)
	if w.DedupWindow != 4 {
		t.Fatalf("advertised window = %d, want 4", w.DedupWindow)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		writeFrames(t, nc, wire.AppendCall(nil, seq, wire.Call{
			Proc: "KVInc", Seq: seq, Args: []thedb.Value{thedb.Int(int64(seq)), thedb.Int(1)},
		}))
		if v := resultInt(t, nextFrame(t, fr), "val"); v != 1 {
			t.Fatalf("seq %d val = %d, want 1", seq, v)
		}
	}
	snap := srv.Stats().Snapshot()
	if snap.DedupEvicted != 2 || snap.DedupEntries != 4 {
		t.Fatalf("DedupEvicted = %d DedupEntries = %d, want 2 and 4", snap.DedupEvicted, snap.DedupEntries)
	}

	// Seq 1 was evicted: its retry re-executes and the row shows it.
	writeFrames(t, nc, wire.AppendCall(nil, 7, wire.Call{
		Proc: "KVInc", Seq: 1, Args: []thedb.Value{thedb.Int(1), thedb.Int(1)},
	}))
	if v := resultInt(t, nextFrame(t, fr), "val"); v != 2 {
		t.Fatalf("evicted-seq retry val = %d, want 2 (re-execution)", v)
	}
}

// TestDeadlineBudgetRejectsQueuedCall queues a call with a tiny budget
// behind a slow transaction on a single dispatcher: by pickup time the
// budget is dead and the server must refuse to execute it.
func TestDeadlineBudgetRejectsQueuedCall(t *testing.T) {
	db := newKVDB(t, 1, nil)
	srv, addr := startServer(t, db, server.Config{})

	nc, fr, _ := rawDialSession(t, addr, 0)
	var buf []byte
	buf = wire.AppendCall(buf, 1, wire.Call{Proc: "Slow", Args: []thedb.Value{thedb.Int(150)}})
	buf = wire.AppendCall(buf, 2, wire.Call{Proc: "KVGet", BudgetUS: 2000, Args: []thedb.Value{thedb.Int(1)}})
	writeFrames(t, nc, buf)

	var sawDeadline bool
	for i := 0; i < 2; i++ {
		f := nextFrame(t, fr)
		switch f.ID {
		case 1:
			if f.Op != wire.OpResult {
				t.Fatalf("slow call op = %s, want result", wire.OpName(f.Op))
			}
		case 2:
			re, err := wire.DecodeError(f.Payload)
			if err != nil {
				t.Fatalf("id 2: op=%s err=%v, want deadline error", wire.OpName(f.Op), err)
			}
			if re.Code != wire.CodeDeadline {
				t.Fatalf("id 2 code = %s, want deadline", wire.CodeName(re.Code))
			}
			if re.Retryable() {
				t.Fatalf("deadline error marked retryable")
			}
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatalf("budgeted call was not deadline-rejected")
	}
	if got := srv.Stats().Snapshot().DeadlineRejected; got != 1 {
		t.Fatalf("DeadlineRejected = %d, want 1", got)
	}
}
