package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"thedb"
	"thedb/client"
	"thedb/internal/server"
	"thedb/internal/storage"
	"thedb/internal/wire"
)

// walDir manages one log file per worker in a temp directory, so a
// drained server's state can be replayed into a fresh database.
type walDir struct {
	dir   string
	files []*os.File
}

func newWALDir(t *testing.T, workers int) *walDir {
	t.Helper()
	w := &walDir{dir: t.TempDir(), files: make([]*os.File, workers)}
	for i := range w.files {
		f, err := os.Create(filepath.Join(w.dir, fmt.Sprintf("worker-%d.wal", i)))
		if err != nil {
			t.Fatalf("create wal: %v", err)
		}
		w.files[i] = f
	}
	return w
}

func (w *walDir) sink(i int) io.Writer { return w.files[i] }

func (w *walDir) streams(t *testing.T) []io.Reader {
	t.Helper()
	rs := make([]io.Reader, len(w.files))
	for i, f := range w.files {
		r, err := os.Open(f.Name())
		if err != nil {
			t.Fatalf("reopen wal: %v", err)
		}
		t.Cleanup(func() {
			if err := r.Close(); err != nil {
				t.Errorf("close wal stream: %v", err)
			}
		})
		rs[i] = r
	}
	return rs
}

// TestGracefulDrain is the ISSUE's shutdown acceptance test: several
// clients stream writes mid-pipeline when Shutdown fires. Every
// acknowledged commit must survive into the replayed WAL state; new
// work must be rejected with the typed draining error; and the
// replayed state must contain nothing beyond what was acknowledged or
// legitimately in flight.
func TestGracefulDrain(t *testing.T) {
	const workers = 3
	const clients = 4

	wal := newWALDir(t, workers)
	db := newKVDB(t, workers, wal.sink)
	db.Start()
	srv := server.New(db, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	addr := l.Addr().String()

	// Each client upserts distinct keys (client c owns keys ≡ c mod
	// clients) and records every acknowledged value.
	type ack struct {
		key, val int64
	}
	acked := make([][]ack, clients)
	inflight := make([][]ack, clients) // sent, outcome unknown at stop
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer func() {
				if err := cl.Close(); err != nil && !errors.Is(err, client.ErrClosed) {
					t.Logf("client %d close: %v", c, err)
				}
			}()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := int64(c + i*clients)
				val := int64(1000*c + i)
				inflight[c] = append(inflight[c], ack{key, val})
				_, err := cl.Call(ctx, "KVPut", thedb.Int(key), thedb.Int(val))
				if err != nil {
					// Draining or connection teardown ends the run;
					// anything else is a real failure.
					var re *wire.RemoteError
					if errors.As(err, &re) && re.Code != wire.CodeDraining {
						t.Errorf("client %d: unexpected remote error %v", c, re)
					}
					return
				}
				acked[c] = append(acked[c], ack{key, val})
			}
		}(c)
	}

	// Let the pipeline fill, then drain mid-flight.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	close(stop)
	wg.Wait()
	if shutdownErr != nil {
		t.Fatalf("shutdown: %v", shutdownErr)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// New connections must be refused outright (listener closed).
	if _, err := client.Dial(addr, client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatalf("dial succeeded after shutdown")
	}

	// Replay the WAL into a fresh database and check: every
	// acknowledged write is present with its last acked value, and
	// nothing outside the sent set exists.
	fresh := newKVDB(t, workers, nil)
	if _, err := fresh.Recover(wal.streams(t)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	tab, okTab := fresh.Table("KV")
	if !okTab {
		t.Fatalf("recovered db has no KV table")
	}

	totalAcked := 0
	for c := 0; c < clients; c++ {
		totalAcked += len(acked[c])
		// The last acked value per key wins (keys are written once
		// here, but keep it general).
		want := map[int64]int64{}
		for _, a := range acked[c] {
			want[a.key] = a.val
		}
		for k, v := range want {
			rec, ok := tab.Peek(thedb.Key(k))
			if !ok || !rec.Visible() {
				t.Fatalf("acked key %d missing after replay", k)
			}
			if got := rec.Tuple()[0].Int(); got != v {
				t.Fatalf("key %d = %d after replay, want %d", k, got, v)
			}
		}
	}
	if totalAcked == 0 {
		t.Fatalf("no transactions acknowledged before shutdown; test proves nothing")
	}

	// Nothing beyond the sent set: every visible key must have been
	// sent by its owning client (acked or in flight at the cut).
	sent := map[int64]int64{}
	for c := 0; c < clients; c++ {
		for _, a := range inflight[c] {
			sent[a.key] = a.val
		}
	}
	visible := 0
	tab.ForEach(func(k thedb.Key, rec *storage.Record) bool {
		if !rec.Visible() {
			return true
		}
		visible++
		want, wasSent := sent[int64(k)]
		if !wasSent {
			t.Errorf("replayed key %d was never sent", k)
		} else if got := rec.Tuple()[0].Int(); got != want {
			t.Errorf("replayed key %d = %d, want %d", k, got, want)
		}
		return true
	})
	if visible < totalAcked {
		t.Fatalf("replayed state has %d rows, fewer than %d acked", visible, totalAcked)
	}
}

// TestDrainingRejection checks an established connection's new calls
// during drain get the typed draining error with a backoff hint.
func TestDrainingRejection(t *testing.T) {
	db := newKVDB(t, 1, nil)
	db.Start()
	srv := server.New(db, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	nc, fr, _ := rawDial(t, l.Addr().String())

	// Park a slow call so the drain overlaps an established, active
	// connection.
	if _, err := nc.Write(wire.AppendCall(nil, 1, wire.Call{Proc: "Slow", Args: []thedb.Value{thedb.Int(400)}})); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Wait until the slow call is admitted so the drain genuinely
	// overlaps an in-flight transaction.
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().Snapshot().Requests == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("slow call never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to flip the draining flag, then try new
	// work on the live connection.
	time.Sleep(50 * time.Millisecond)
	if _, err := nc.Write(wire.AppendCall(nil, 2, wire.Call{Proc: "KVGet", Args: []thedb.Value{thedb.Int(0)}})); err != nil {
		t.Fatalf("write during drain: %v", err)
	}

	sawDraining, sawSlowResult := false, false
	for i := 0; i < 2; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		switch {
		case f.Op == wire.OpResult && f.ID == 1:
			sawSlowResult = true
		case f.Op == wire.OpError && f.ID == 2:
			re, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				t.Fatalf("decode: %v", derr)
			}
			if re.Code != wire.CodeDraining {
				t.Fatalf("code = %d, want CodeDraining", re.Code)
			}
			if !re.Retryable() || re.Backoff <= 0 {
				t.Fatalf("draining error must be retryable with a hint, got %+v", re)
			}
			sawDraining = true
		default:
			t.Fatalf("unexpected frame op=%s id=%d", wire.OpName(f.Op), f.ID)
		}
	}
	if !sawDraining || !sawSlowResult {
		t.Fatalf("sawDraining=%v sawSlowResult=%v, want both", sawDraining, sawSlowResult)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
