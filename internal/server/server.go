// Package server is THEDB's network serving plane: a net.Listener
// based RPC server that dispatches the engine's stored-procedure
// catalog to remote clients over the wire protocol.
//
// The design exploits the engine's transaction model: because every
// transaction is a one-shot stored procedure whose dependency graph
// is known up front (healing paper §3), a request frame carries
// everything the engine needs and the server never holds a client
// round-trip inside the critical section. Each engine session is
// owned by exactly one dispatch goroutine; connections feed a bounded
// global work queue and collect responses out of order by request id.
//
// Admission control is load shedding, not queueing: a request beyond
// the per-connection or global in-flight bound is answered immediately
// with a typed retryable error carrying a backoff hint (wire.CodeShed),
// so overload degrades into client-side backoff instead of unbounded
// server-side memory growth. Engine-level contention surfaces the
// same way (wire.CodeContended, from the degradation ladder's
// ErrContended).
//
// Shutdown drains: stop accepting, answer new calls with
// wire.CodeDraining, finish every admitted transaction, flush every
// response, then close the database — which seals the final epoch and
// syncs the WAL — before returning.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"thedb"
	"thedb/internal/metrics"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wire"
)

// Config tunes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxFrame bounds accepted request-frame payloads (default
	// wire.DefaultMaxFrame). Advertised to clients in the handshake.
	MaxFrame int

	// PerConnInFlight bounds admitted-but-unanswered requests per
	// connection (default 64). Advertised in the handshake; requests
	// beyond it are shed.
	PerConnInFlight int

	// GlobalInFlight bounds admitted requests across all connections
	// (default 128 × workers). This is the work-queue capacity:
	// requests beyond it are shed, never queued unboundedly.
	GlobalInFlight int

	// ReadTimeout, when positive, is the per-connection idle bound:
	// a connection that sends nothing for this long is closed.
	ReadTimeout time.Duration

	// WriteTimeout bounds each network write (default 10s): a client
	// that stops reading is disconnected rather than wedging a
	// dispatch goroutine.
	WriteTimeout time.Duration

	// HandshakeTimeout bounds the wait for the client's hello
	// (default 5s).
	HandshakeTimeout time.Duration

	// ContendedHint, ShedHint and DrainHint are the backoff hints
	// attached to the three retryable error codes (defaults 2ms, 1ms,
	// 10ms). Clients treat them as a floor for their own jittered
	// backoff.
	ContendedHint time.Duration
	ShedHint      time.Duration
	DrainHint     time.Duration

	// DedupWindow bounds each session's cache of completed responses,
	// used to answer retried calls without re-executing them (default
	// 256; negative disables exactly-once dedup entirely). Advertised
	// to clients in the handshake.
	DedupWindow int

	// MaxSessions caps the session registry (default 1024). At the
	// cap, an idle session — no bound connections, nothing executing —
	// is evicted to make room for a new one.
	MaxSessions int

	// Stats receives the serving plane's counters; New allocates one
	// when nil. Share it with an obs.Plane via SetServerStats to get
	// the thedb_server_* Prometheus series.
	Stats *metrics.Server

	// Banner names the server in the handshake (default "thedb").
	Banner string
}

// request is one admitted procedure invocation traveling from a
// connection's read loop to a dispatch goroutine.
type request struct {
	c    *conn
	id   uint64
	proc string
	args []storage.Value

	// Exactly-once plumbing: the connection's session, the call's
	// per-session sequence number (0 = dedup opted out), and the dedup
	// entry when this request owns the execution of a tracked seq.
	sess  *session
	seq   uint64
	entry *dedupEntry

	// arrival anchors the deadline budget: the call is refused once
	// arrival+budget passes without the transaction having run.
	arrival time.Time
	budget  time.Duration

	// trace is the call's end-to-end trace ID: the client's when it
	// sent one, otherwise minted at admission when tracing is on
	// (0 = tracing off).
	trace uint64

	// readOnly marks a snapshot-read call (wire v4 flag): dispatched
	// via Session.RunSnapshot, bypassing the dedup window — re-reading
	// a snapshot is idempotent, so retries simply re-execute.
	readOnly bool
}

// Server serves a database's stored-procedure catalog over the wire
// protocol.
type Server struct {
	db    *thedb.DB
	cfg   Config
	stats *metrics.Server

	work chan *request
	quit chan struct{}

	// pending counts admitted, unanswered requests. It is an atomic
	// counter rather than a WaitGroup because admission races drain:
	// admit increments then re-checks the draining flag, Shutdown sets
	// the flag then reads the counter, and seq-cst atomics guarantee
	// one side sees the other (Dekker) — whereas WaitGroup.Add from a
	// zero counter concurrent with Wait is documented misuse. finish
	// pokes drainSig when the count returns to zero while draining.
	pending  atomic.Int64
	drainSig chan struct{}

	connWG sync.WaitGroup // connection reader/writer goroutines

	mu        sync.Mutex
	conns     map[*conn]struct{}
	listeners map[net.Listener]struct{}

	// incarnation identifies this server boot in the handshake; a
	// client that re-sends an unanswered call and sees a different
	// incarnation knows its dedup window is gone and must surface the
	// ambiguity instead of retrying transparently.
	incarnation uint64
	sessions    registry

	// tracer is the database's trace ring (nil when tracing is off);
	// traceCtr feeds admission-minted trace IDs for untraced callers.
	tracer   *obs.Tracer
	traceCtr atomic.Uint64

	draining    atomic.Bool
	dispatchers sync.Once
	quitOnce    sync.Once
}

// New builds a server over db. The database must have its tables
// created, procedures registered and Start called before Serve;
// Shutdown closes it (sealing the epoch and syncing the WAL).
func New(db *thedb.DB, cfg Config) *Server {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.PerConnInFlight <= 0 {
		cfg.PerConnInFlight = 64
	}
	if cfg.GlobalInFlight <= 0 {
		cfg.GlobalInFlight = 128 * db.Workers()
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.ContendedHint <= 0 {
		cfg.ContendedHint = 2 * time.Millisecond
	}
	if cfg.ShedHint <= 0 {
		cfg.ShedHint = time.Millisecond
	}
	if cfg.DrainHint <= 0 {
		cfg.DrainHint = 10 * time.Millisecond
	}
	if cfg.Banner == "" {
		cfg.Banner = "thedb"
	}
	switch {
	case cfg.DedupWindow == 0:
		cfg.DedupWindow = 256
	case cfg.DedupWindow < 0:
		cfg.DedupWindow = 0 // dedup disabled
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Stats == nil {
		cfg.Stats = &metrics.Server{}
	}
	return &Server{
		db:          db,
		cfg:         cfg,
		stats:       cfg.Stats,
		work:        make(chan *request, cfg.GlobalInFlight),
		quit:        make(chan struct{}),
		drainSig:    make(chan struct{}, 1),
		conns:       map[*conn]struct{}{},
		listeners:   map[net.Listener]struct{}{},
		incarnation: uint64(time.Now().UnixNano()),
		sessions:    registry{m: map[uint64]*session{}},
		tracer:      db.Tracer(),
	}
}

// mintTrace mints a nonzero trace ID for a call that arrived without
// one (splitmix64 over a boot-salted counter, so IDs stay unique
// across restarts with high probability).
func (s *Server) mintTrace() uint64 {
	x := s.traceCtr.Add(1) + s.incarnation
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x | 1
}

// Stats returns the serving plane's counters (live; read with
// Snapshot).
func (s *Server) Stats() *metrics.Server { return s.stats }

// ListenAndServe listens on addr ("host:port"; ":0" picks a free
// port) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Shutdown (or a listener
// error). It blocks; run it in a goroutine to serve several
// listeners. A nil return means the listener was closed by Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.startDispatchers()
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		lerr := l.Close()
		_ = lerr // the listener never served; nothing durable rides on it
		return errors.New("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.startConn(nc)
	}
}

// startDispatchers launches one dispatch goroutine per engine
// session: session i is driven only by goroutine i, satisfying the
// one-goroutine-per-session contract.
func (s *Server) startDispatchers() {
	s.dispatchers.Do(func() {
		for i := 0; i < s.db.Workers(); i++ {
			sess := s.db.Session(i)
			go s.dispatch(sess)
		}
	})
}

// dispatch serves queued requests on one engine session until quit.
func (s *Server) dispatch(sess *thedb.Session) {
	for {
		select {
		case <-s.quit:
			return
		case req := <-s.work:
			s.serveOne(sess, req)
		}
	}
}

// serveOne runs one admitted request to completion and enqueues its
// response frame. A request whose deadline budget expired while queued
// is refused without executing: the caller's context is already dead,
// so running the transaction would burn engine time on an answer
// nobody reads.
func (s *Server) serveOne(sess *thedb.Session, req *request) {
	if req.budget > 0 && time.Since(req.arrival) >= req.budget {
		s.stats.Inc(&s.stats.DeadlineRejected)
		s.respond(req, wire.OpError, wire.AppendErrorPayload(nil, wire.RemoteError{
			Code: wire.CodeDeadline, Msg: "deadline budget exhausted before execution",
		}), false)
		return
	}
	// Hand the wire trace context to the engine session: queue wait is
	// everything between admission and this dispatch slot.
	traced := s.tracer != nil
	if traced {
		sess.SetTraceContext(req.trace, time.Since(req.arrival).Microseconds(), req.arrival.UnixNano())
	}
	var env *thedb.Env
	var err error
	if req.readOnly {
		env, err = sess.RunSnapshot(req.proc, req.args...)
	} else {
		env, err = sess.Run(req.proc, req.args...)
	}
	respStart := time.Now()
	if err != nil {
		re := s.mapError(err)
		// Cache only settled outcomes. A retryable rejection (shed,
		// contended, draining) must re-execute on retry, not replay
		// the rejection from the window.
		s.respond(req, wire.OpError, wire.AppendErrorPayload(nil, re), !re.Retryable())
	} else {
		s.respond(req, wire.OpResult, wire.AppendResultPayload(nil, outputsOf(env)), true)
	}
	if traced {
		// Amend the retained trace (if tail sampling kept it) with the
		// response-write cost, outbound backpressure included.
		slot, id := sess.LastTrace()
		s.tracer.AmendResp(slot, id, time.Since(respStart).Microseconds())
	}
}

// respond answers an admitted request and any retries parked on its
// dedup entry, releasing each one's accounting. cache controls whether
// the response joins the session's dedup window for future retries.
// Every completion path for a request that may own a dedup entry must
// come through here — answering around it would strand parked waiters.
func (s *Server) respond(req *request, op uint8, payload []byte, cache bool) {
	if req.entry != nil {
		for _, w := range req.sess.complete(s, req.entry, op, payload, cache, s.cfg.DedupWindow) {
			w.c.send(wire.AppendFrame(nil, op, w.id, payload))
			s.finish(w.c)
		}
	}
	req.c.send(wire.AppendFrame(nil, op, req.id, payload))
	s.finish(req.c)
}

// finish releases one admitted request's accounting on connection c
// after its response (or rejection) has been enqueued.
func (s *Server) finish(c *conn) {
	s.stats.Add(&s.stats.InFlight, -1)
	c.inflight.Add(-1)
	c.reqs.Done()
	if s.pending.Add(-1) == 0 && s.draining.Load() {
		select {
		case s.drainSig <- struct{}{}:
		default: // a wakeup is already queued
		}
	}
}

// mapError classifies an engine failure into a wire error. Every
// retryable condition carries a backoff hint; nothing is dropped
// silently.
func (s *Server) mapError(err error) wire.RemoteError {
	switch {
	case errors.Is(err, thedb.ErrContended):
		return wire.RemoteError{Code: wire.CodeContended, Backoff: s.cfg.ContendedHint, Msg: err.Error()}
	case errors.Is(err, thedb.ErrNoSuchProc):
		return wire.RemoteError{Code: wire.CodeUnknownProc, Msg: err.Error()}
	}
	var abort *proc.AbortError
	if errors.As(err, &abort) {
		return wire.RemoteError{Code: wire.CodeAbort, Msg: abort.Reason}
	}
	return wire.RemoteError{Code: wire.CodeInternal, Msg: err.Error()}
}

// outputsOf flattens a committed transaction's variable environment
// into named wire outputs, in deterministic (sorted) order.
func outputsOf(env *proc.Env) []wire.Output {
	var outs []wire.Output
	env.Each(func(name string, v any) {
		switch val := v.(type) {
		case storage.Value:
			outs = append(outs, wire.Output{Name: name, Vals: []storage.Value{val}})
		case []storage.Value:
			outs = append(outs, wire.Output{Name: name, List: true, Vals: val})
		}
	})
	return outs
}

// Shutdown drains the server: stop accepting, reject new calls with
// the draining error, finish every admitted transaction and flush its
// response, then close the database — sealing the final commit epoch
// and syncing every WAL stream to stable storage. ctx bounds the
// wait for in-flight transactions; on expiry remaining queued work is
// answered with draining errors and connections are closed forcibly,
// but the database is still closed cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	var errs []error
	s.draining.Store(true)

	s.mu.Lock()
	for l := range s.listeners {
		if err := l.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing listener: %w", err))
		}
		delete(s.listeners, l)
	}
	s.mu.Unlock()

	// Wait for admitted transactions (ctx-bounded). finish pokes
	// drainSig whenever the pending count returns to zero while
	// draining, so a non-zero read here always has a wakeup coming.
waiting:
	for s.pending.Load() != 0 {
		select {
		case <-s.drainSig:
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("server: shutdown: %w while draining in-flight requests", ctx.Err()))
			break waiting
		}
	}

	// Stop the dispatchers, then answer anything left in the queue
	// (only non-empty when ctx expired) with draining errors so no
	// request vanishes silently and the per-connection accounting
	// still balances.
	s.quitOnce.Do(func() { close(s.quit) })
	for {
		select {
		case req := <-s.work:
			s.stats.Inc(&s.stats.DrainRejected)
			s.respond(req, wire.OpError, wire.AppendErrorPayload(nil, wire.RemoteError{
				Code: wire.CodeDraining, Backoff: s.cfg.DrainHint, Msg: "server draining",
			}), false)
		default:
			goto queueEmpty
		}
	}
queueEmpty:

	// Wake every connection's read loop; teardown then flushes
	// pending responses and closes the socket.
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.wake()
	}

	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	select {
	case <-connsDone:
	case <-ctx.Done():
		// Force: kill the sockets; writers error out and drain.
		for _, c := range conns {
			c.fail()
		}
		<-connsDone
	}

	if err := s.db.Close(); err != nil {
		errs = append(errs, fmt.Errorf("server: closing database: %w", err))
	}
	return errors.Join(errs...)
}
