package smallbank

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"thedb/internal/core"
	"thedb/internal/det"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/workload/zipf"
)

func build(t *testing.T, n int, opts core.Options) *core.Engine {
	t.Helper()
	cat := storage.NewCatalog()
	for _, s := range Schemas(0) {
		cat.MustCreateTable(s)
	}
	if err := Populate(cat, n, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat, opts)
	for _, s := range Specs() {
		e.MustRegister(s)
	}
	return e
}

func TestAllProceduresIndependent(t *testing.T) {
	// Every Smallbank procedure's read/write set is determined by its
	// arguments (§4.6), the property behind Table 2's zero abort rate
	// for THEDB.
	args := map[string][]storage.Value{
		ProcBalance:         {storage.Int(1)},
		ProcDepositChecking: {storage.Int(1), storage.Int(5)},
		ProcTransactSavings: {storage.Int(1), storage.Int(5)},
		ProcAmalgamate:      {storage.Int(1), storage.Int(2)},
		ProcWriteCheck:      {storage.Int(1), storage.Int(5)},
		ProcSendPayment:     {storage.Int(1), storage.Int(2), storage.Int(5)},
	}
	for _, s := range Specs() {
		env := proc.NewEnv()
		for i, a := range args[s.Name] {
			env.SetVal(s.Params[i], a)
		}
		prog := s.Instantiate(env)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !prog.Independent {
			t.Errorf("%s is classified dependent", s.Name)
		}
	}
}

func TestProcedureSemantics(t *testing.T) {
	e := build(t, 4, core.Options{Protocol: core.Healing, Workers: 1})
	w := e.Worker(0)
	sav, _ := e.Catalog().Table(TabSavings)
	chk, _ := e.Catalog().Table(TabChecking)
	savOf := func(k int64) int64 { r, _ := sav.Peek(storage.Key(k)); return r.Tuple()[0].Int() }
	chkOf := func(k int64) int64 { r, _ := chk.Peek(storage.Key(k)); return r.Tuple()[0].Int() }

	env, err := w.Run(ProcBalance, storage.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("total") != 2000 {
		t.Fatalf("Balance = %d", env.Int("total"))
	}

	if _, err := w.Run(ProcDepositChecking, storage.Int(0), storage.Int(100)); err != nil {
		t.Fatal(err)
	}
	if chkOf(0) != 1100 {
		t.Fatalf("checking = %d after deposit", chkOf(0))
	}

	if _, err := w.Run(ProcTransactSavings, storage.Int(0), storage.Int(-200)); err != nil {
		t.Fatal(err)
	}
	if savOf(0) != 800 {
		t.Fatalf("savings = %d after withdrawal", savOf(0))
	}
	// Overdraft aborts and leaves state untouched.
	if _, err := w.Run(ProcTransactSavings, storage.Int(0), storage.Int(-10000)); err == nil ||
		!strings.Contains(err.Error(), "overdraft") {
		t.Fatalf("overdraft: %v", err)
	}
	if savOf(0) != 800 {
		t.Fatal("failed withdrawal changed the balance")
	}

	if _, err := w.Run(ProcAmalgamate, storage.Int(0), storage.Int(1)); err != nil {
		t.Fatal(err)
	}
	if savOf(0) != 0 || chkOf(0) != 0 {
		t.Fatalf("amalgamate left src with %d/%d", savOf(0), chkOf(0))
	}
	if chkOf(1) != 1000+800+1100 {
		t.Fatalf("amalgamate target checking = %d", chkOf(1))
	}

	if _, err := w.Run(ProcWriteCheck, storage.Int(2), storage.Int(500)); err != nil {
		t.Fatal(err)
	}
	if chkOf(2) != 500 {
		t.Fatalf("checking = %d after covered check", chkOf(2))
	}
	// Overdraft check: $1 penalty.
	if _, err := w.Run(ProcWriteCheck, storage.Int(2), storage.Int(2000)); err != nil {
		t.Fatal(err)
	}
	if chkOf(2) != 500-2001 {
		t.Fatalf("checking = %d after bounced check", chkOf(2))
	}

	if _, err := w.Run(ProcSendPayment, storage.Int(3), storage.Int(1), storage.Int(250)); err != nil {
		t.Fatal(err)
	}
	if chkOf(3) != 750 {
		t.Fatalf("payment source = %d", chkOf(3))
	}
	if _, err := w.Run(ProcSendPayment, storage.Int(3), storage.Int(1), storage.Int(10000)); err == nil {
		t.Fatal("insufficient payment accepted")
	}
}

// TestConcurrentHotAccountsNeverAbortUnderHealing is Table 2's claim:
// even with every worker on the same few accounts, healing never
// restarts Smallbank transactions.
func TestConcurrentHotAccountsNeverAbortUnderHealing(t *testing.T) {
	const (
		workers = 4
		txns    = 400
	)
	e := build(t, 10, core.Options{Protocol: core.Healing, Workers: workers, Interleave: true})
	e.Start()
	defer e.Stop()

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi)))
			w := e.Worker(wi)
			for i := 0; i < txns; i++ {
				a := storage.Int(rng.Int63n(3)) // only 3 hot accounts
				amt := storage.Int(1 + rng.Int63n(5))
				var err error
				if i%2 == 0 {
					_, err = w.Run(ProcDepositChecking, a, amt)
				} else {
					_, err = w.Run(ProcBalance, a)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for wi := 0; wi < workers; wi++ {
		if r := e.Worker(wi).Metrics().Restarts; r != 0 {
			t.Errorf("worker %d restarted %d times", wi, r)
		}
	}
	// Deposits must all land: initial total + sum of deposits.
	total := TotalAssets(e.Catalog())
	if total <= 10*2000 {
		t.Fatalf("total assets %d: deposits lost", total)
	}
}

// TestMoneyConservedUnderTransfers: with only pure transfers running
// (SendPayment, Amalgamate), total assets are invariant under every
// protocol.
func TestMoneyConservedUnderTransfers(t *testing.T) {
	const (
		workers  = 4
		accounts = 12
		txns     = 300
	)
	for _, p := range []core.Protocol{core.Healing, core.OCC, core.Silo, core.TPL} {
		t.Run(p.String(), func(t *testing.T) {
			e := build(t, accounts, core.Options{Protocol: p, Workers: workers, Interleave: true})
			e.Start()
			defer e.Stop()
			before := TotalAssets(e.Catalog())

			var wg sync.WaitGroup
			for wi := 0; wi < workers; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(wi) * 3))
					zg := zipf.New(accounts, 0.9)
					w := e.Worker(wi)
					for i := 0; i < txns; i++ {
						a := int64(zg.Next(rng.Float64()))
						b := (a + 1 + rng.Int63n(accounts-1)) % accounts
						var err error
						if i%3 == 0 {
							_, err = w.Run(ProcAmalgamate, storage.Int(a), storage.Int(b))
						} else {
							_, err = w.Run(ProcSendPayment, storage.Int(a), storage.Int(b), storage.Int(rng.Int63n(20)))
						}
						if err != nil && !strings.Contains(err.Error(), "transaction aborted") {
							t.Error(err)
							return
						}
					}
				}(wi)
			}
			wg.Wait()
			if after := TotalAssets(e.Catalog()); after != before {
				t.Fatalf("assets %d -> %d: money not conserved", before, after)
			}
		})
	}
}

func TestDeterministicEngine(t *testing.T) {
	const partitions = 2
	cat := storage.NewCatalog()
	for _, s := range Schemas(partitions) {
		cat.MustCreateTable(s)
	}
	if err := Populate(cat, 8, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	e := det.NewEngine(cat, partitions, 2)
	for _, p := range DetProcs(partitions) {
		e.MustRegister(p)
	}
	before := TotalAssets(cat)
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi)))
			w := e.Worker(wi)
			for i := 0; i < 300; i++ {
				a := rng.Int63n(8)
				b := (a + 1 + rng.Int63n(7)) % 8
				if _, err := w.Run(ProcSendPayment, storage.Int(a), storage.Int(b), storage.Int(3)); err != nil &&
					!strings.Contains(err.Error(), "transaction aborted") {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	if after := TotalAssets(cat); after != before {
		t.Fatalf("assets %d -> %d under THEDB-DT", before, after)
	}
}
