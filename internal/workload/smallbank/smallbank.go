// Package smallbank implements the Smallbank benchmark (§5, [6]):
// three tables (ACCOUNTS, SAVINGS, CHECKING) and six short
// single-row-ish stored procedures over customer accounts. Workload
// contention is controlled by the Zipfian skew θ of the account
// picker. Every procedure's read/write set is determined by its
// arguments, so all Smallbank transactions are independent (§4.6):
// under transaction healing they can never abort, which is exactly
// what Table 2 reports.
package smallbank

import (
	"fmt"

	"thedb/internal/det"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// Table names.
const (
	TabAccounts = "ACCOUNTS"
	TabSavings  = "SAVINGS"
	TabChecking = "CHECKING"
)

// Column indexes.
const (
	AccName = 0 // ACCOUNTS.name
	BalCol  = 0 // SAVINGS.bal / CHECKING.bal (cents)
)

// Procedure names.
const (
	ProcBalance         = "Balance"
	ProcDepositChecking = "DepositChecking"
	ProcTransactSavings = "TransactSavings"
	ProcAmalgamate      = "Amalgamate"
	ProcWriteCheck      = "WriteCheck"
	ProcSendPayment     = "SendPayment"
)

// Schemas returns the three table schemas. partitions > 0 assigns a
// modulo partitioning for the deterministic engine.
func Schemas(partitions int) []storage.Schema {
	part := func(k storage.Key) int { return int(uint64(k) % uint64(partitions)) }
	var pf func(storage.Key) int
	if partitions > 0 {
		pf = part
	}
	return []storage.Schema{
		{
			Name:      TabAccounts,
			Columns:   []storage.ColumnDef{{Name: "name", Kind: storage.KindString}},
			Rank:      0,
			Partition: pf,
		},
		{
			Name:      TabSavings,
			Columns:   []storage.ColumnDef{{Name: "bal", Kind: storage.KindInt}},
			Rank:      1,
			Partition: pf,
		},
		{
			Name:      TabChecking,
			Columns:   []storage.ColumnDef{{Name: "bal", Kind: storage.KindInt}},
			Rank:      2,
			Partition: pf,
		},
	}
}

// Populate creates n customer accounts with the given initial
// balances (cents).
func Populate(cat *storage.Catalog, n int, initSavings, initChecking int64) error {
	acc, ok := cat.Table(TabAccounts)
	if !ok {
		return fmt.Errorf("smallbank: catalog missing %s", TabAccounts)
	}
	sav, _ := cat.Table(TabSavings)
	chk, _ := cat.Table(TabChecking)
	for i := 0; i < n; i++ {
		k := storage.Key(i)
		acc.Put(k, storage.Tuple{storage.Str(fmt.Sprintf("cust%08d", i))}, 0)
		sav.Put(k, storage.Tuple{storage.Int(initSavings)}, 0)
		chk.Put(k, storage.Tuple{storage.Int(initChecking)}, 0)
	}
	return nil
}

// readBalanceOp builds an op reading one balance column into outVar.
func readBalanceOp(name, table, keyVar, outVar string) proc.Op {
	return proc.Op{
		Name:     name,
		KeyReads: []string{keyVar},
		Writes:   []string{outVar},
		Body: func(ctx proc.OpCtx) error {
			row, ok, err := ctx.Read(table, storage.Key(ctx.Env().Int(keyVar)), []int{BalCol})
			if err != nil {
				return err
			}
			if !ok {
				return proc.UserAbort("no such account")
			}
			ctx.Env().SetVal(outVar, row[BalCol])
			return nil
		},
	}
}

// writeBalanceOp builds an op writing exprVar into one balance column.
func writeBalanceOp(name, table, keyVar string, valReads []string, compute func(e *proc.Env) int64) proc.Op {
	return proc.Op{
		Name:     name,
		KeyReads: []string{keyVar},
		ValReads: valReads,
		Body: func(ctx proc.OpCtx) error {
			e := ctx.Env()
			return ctx.Write(table, storage.Key(e.Int(keyVar)), []int{BalCol},
				[]storage.Value{storage.Int(compute(e))})
		},
	}
}

// Specs returns the six stored procedures.
func Specs() []*proc.Spec {
	return []*proc.Spec{
		balanceSpec(),
		depositCheckingSpec(),
		transactSavingsSpec(),
		amalgamateSpec(),
		writeCheckSpec(),
		sendPaymentSpec(),
	}
}

// balanceSpec: return savings + checking of one customer.
func balanceSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcBalance,
		Params: []string{"cust"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readSav", TabSavings, "cust", "sav"))
			b.Op(readBalanceOp("readChk", TabChecking, "cust", "chk"))
			b.Op(proc.Op{
				Name:     "sum",
				ValReads: []string{"sav", "chk"},
				Writes:   []string{"total"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					e.SetInt("total", e.Int("sav")+e.Int("chk"))
					return nil
				},
			})
		},
	}
}

// depositCheckingSpec: checking += amount.
func depositCheckingSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcDepositChecking,
		Params: []string{"cust", "amount"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readChk", TabChecking, "cust", "chk"))
			b.Op(writeBalanceOp("writeChk", TabChecking, "cust", []string{"chk", "amount"},
				func(e *proc.Env) int64 { return e.Int("chk") + e.Int("amount") }))
		},
	}
}

// transactSavingsSpec: savings += amount, abort on overdraft.
func transactSavingsSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcTransactSavings,
		Params: []string{"cust", "amount"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readSav", TabSavings, "cust", "sav"))
			b.Op(proc.Op{
				Name:     "check",
				ValReads: []string{"sav", "amount"},
				Writes:   []string{"newSav"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					n := e.Int("sav") + e.Int("amount")
					if n < 0 {
						return proc.UserAbort("savings overdraft")
					}
					e.SetInt("newSav", n)
					return nil
				},
			})
			b.Op(writeBalanceOp("writeSav", TabSavings, "cust", []string{"newSav"},
				func(e *proc.Env) int64 { return e.Int("newSav") }))
		},
	}
}

// amalgamateSpec: move all funds of cust1 into cust2's checking.
func amalgamateSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcAmalgamate,
		Params: []string{"cust1", "cust2"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readSav1", TabSavings, "cust1", "sav1"))
			b.Op(readBalanceOp("readChk1", TabChecking, "cust1", "chk1"))
			b.Op(readBalanceOp("readChk2", TabChecking, "cust2", "chk2"))
			b.Op(writeBalanceOp("zeroSav1", TabSavings, "cust1", nil,
				func(*proc.Env) int64 { return 0 }))
			b.Op(writeBalanceOp("zeroChk1", TabChecking, "cust1", nil,
				func(*proc.Env) int64 { return 0 }))
			b.Op(writeBalanceOp("creditChk2", TabChecking, "cust2", []string{"sav1", "chk1", "chk2"},
				func(e *proc.Env) int64 { return e.Int("chk2") + e.Int("sav1") + e.Int("chk1") }))
		},
	}
}

// writeCheckSpec: deduct a check from checking, with a $1 overdraft
// penalty when total funds are insufficient.
func writeCheckSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcWriteCheck,
		Params: []string{"cust", "amount"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readSav", TabSavings, "cust", "sav"))
			b.Op(readBalanceOp("readChk", TabChecking, "cust", "chk"))
			b.Op(proc.Op{
				Name:     "decide",
				ValReads: []string{"sav", "chk", "amount"},
				Writes:   []string{"newChk"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					amt := e.Int("amount")
					if e.Int("sav")+e.Int("chk") < amt {
						amt++ // overdraft penalty
					}
					e.SetInt("newChk", e.Int("chk")-amt)
					return nil
				},
			})
			b.Op(writeBalanceOp("writeChk", TabChecking, "cust", []string{"newChk"},
				func(e *proc.Env) int64 { return e.Int("newChk") }))
		},
	}
}

// sendPaymentSpec: move amount between two checking accounts, abort
// on insufficient funds.
func sendPaymentSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcSendPayment,
		Params: []string{"cust1", "cust2", "amount"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(readBalanceOp("readChk1", TabChecking, "cust1", "chk1"))
			b.Op(readBalanceOp("readChk2", TabChecking, "cust2", "chk2"))
			b.Op(proc.Op{
				Name:     "check",
				ValReads: []string{"chk1", "amount"},
				Writes:   []string{"newChk1"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					n := e.Int("chk1") - e.Int("amount")
					if n < 0 {
						return proc.UserAbort("insufficient funds")
					}
					e.SetInt("newChk1", n)
					return nil
				},
			})
			b.Op(writeBalanceOp("writeChk1", TabChecking, "cust1", []string{"newChk1"},
				func(e *proc.Env) int64 { return e.Int("newChk1") }))
			b.Op(writeBalanceOp("writeChk2", TabChecking, "cust2", []string{"chk2", "amount"},
				func(e *proc.Env) int64 { return e.Int("chk2") + e.Int("amount") }))
		},
	}
}

// DetProcs wraps the specs with partition-set functions for the
// deterministic engine: a customer's partition is cust % partitions.
func DetProcs(partitions int) []*det.Proc {
	home1 := func(args []storage.Value) []int {
		return []int{int(args[0].Int() % int64(partitions))}
	}
	home2 := func(args []storage.Value) []int {
		return []int{
			int(args[0].Int() % int64(partitions)),
			int(args[1].Int() % int64(partitions)),
		}
	}
	var out []*det.Proc
	for _, s := range Specs() {
		home := home1
		if s.Name == ProcAmalgamate || s.Name == ProcSendPayment {
			home = home2
		}
		out = append(out, &det.Proc{Spec: s, Home: home})
	}
	return out
}

// TotalAssets sums all balances; transfers preserve it, deposits and
// checks change it by their amounts (tests track the delta).
func TotalAssets(cat *storage.Catalog) int64 {
	var total int64
	for _, name := range []string{TabSavings, TabChecking} {
		tab, _ := cat.Table(name)
		tab.ForEach(func(_ storage.Key, r *storage.Record) bool {
			if r.Visible() {
				total += r.Tuple()[BalCol].Int()
			}
			return true
		})
	}
	return total
}
