// Package zipf implements the Zipfian key-popularity generator used
// by the Smallbank benchmark (§5, Table 2). The skew parameter θ
// matches the paper's (and YCSB's) convention: P(rank k) ∝ 1/k^θ,
// so θ=0 is uniform and larger θ concentrates accesses on the
// hottest keys. The implementation uses Gray et al.'s closed-form
// method, O(1) per draw after O(n) setup.
package zipf

import "math"

// Generator draws keys in [0, n) with Zipfian skew θ. It is not safe
// for concurrent use; give each worker its own (with its own rng).
type Generator struct {
	n     uint64
	theta float64

	alpha, zetan, eta, half float64
}

// New builds a generator over n items with skew theta. theta must be
// in [0, 1); 0 degenerates to uniform.
func New(n uint64, theta float64) *Generator {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	g := &Generator{n: n, theta: theta}
	if theta > 0 {
		g.zetan = zeta(n, theta)
		g.alpha = 1 / (1 - theta)
		g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/g.zetan)
		g.half = 1 + math.Pow(0.5, theta)
	}
	return g
}

// N returns the key-space size.
func (g *Generator) N() uint64 { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }

// Next maps a uniform sample u in [0, 1) to a key rank in [0, n),
// rank 0 being the most popular key.
func (g *Generator) Next(u float64) uint64 {
	if g.theta == 0 {
		return uint64(u * float64(g.n))
	}
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < g.half {
		return 1
	}
	k := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if k >= g.n {
		k = g.n - 1
	}
	return k
}

// Probability returns the exact probability of drawing rank k
// (0-based), used to verify the access-share table the paper reports
// (Table 2).
func (g *Generator) Probability(k uint64) float64 {
	if g.theta == 0 {
		return 1 / float64(g.n)
	}
	return 1 / (math.Pow(float64(k+1), g.theta) * g.zetan)
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}
