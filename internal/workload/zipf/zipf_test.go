package zipf

import (
	"math"
	"math/rand"
	"testing"
)

// TestProbabilityRatiosMatchPaperTable2 checks the rank-popularity
// ratios of Table 2. The paper's *absolute* percentages sum to more
// than 1 across 1000 keys (e.g. 0.1301 * H(1000, 0.9) ≈ 1.37), so
// they cannot be an exact Zipf pmf — they were presumably measured as
// the share of *transactions* touching each key (transactions touch
// several keys). The ratios between ranks, however, pin down the
// exponent exactly: P(1)/P(2) = 2^θ and P(1)/P(100) = 100^θ, and
// those the paper's numbers satisfy (13.01/7.06 ≈ 2^0.9,
// 13.01/0.21 ≈ 100^0.9). We verify our generator against the ratios.
func TestProbabilityRatiosMatchPaperTable2(t *testing.T) {
	for _, theta := range []float64{0.1, 0.5, 0.9} {
		g := New(1000, theta)
		if r, want := g.Probability(0)/g.Probability(1), math.Pow(2, theta); math.Abs(r-want) > 1e-9 {
			t.Errorf("theta=%.1f: P1/P2 = %.4f, want 2^theta = %.4f", theta, r, want)
		}
		if r, want := g.Probability(0)/g.Probability(99), math.Pow(100, theta); math.Abs(r-want) > 1e-9 {
			t.Errorf("theta=%.1f: P1/P100 = %.4f, want 100^theta = %.4f", theta, r, want)
		}
	}
	// Paper ratio spot checks (θ=0.9 row of Table 2).
	if r := 13.01 / 7.06; math.Abs(r-math.Pow(2, 0.9)) > 0.03 {
		t.Errorf("paper's own ratio %f deviates from 2^0.9", r)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 0.7, 0.99} {
		g := New(500, theta)
		sum := 0.0
		for k := uint64(0); k < 500; k++ {
			sum += g.Probability(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%.2f: probabilities sum to %f", theta, sum)
		}
	}
}

// TestDrawFrequencies draws a large sample and compares empirical
// frequencies of the hottest keys against the analytic values.
func TestDrawFrequencies(t *testing.T) {
	const n = 1000
	const draws = 400000
	for _, theta := range []float64{0.5, 0.9} {
		g := New(n, theta)
		rng := rand.New(rand.NewSource(99))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			k := g.Next(rng.Float64())
			if k >= n {
				t.Fatalf("draw out of range: %d", k)
			}
			counts[k]++
		}
		for _, rank := range []uint64{0, 1, 9} {
			got := float64(counts[rank]) / draws
			want := g.Probability(rank)
			if math.Abs(got-want) > want*0.15+0.0005 {
				t.Errorf("theta=%.1f rank %d: empirical %.4f vs analytic %.4f", theta, rank, got, want)
			}
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	g := New(100, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[g.Next(rng.Float64())]++
	}
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform draw skewed: key %d count %d", k, c)
		}
	}
}

func TestMonotoneSkew(t *testing.T) {
	// Higher theta must strictly increase the hottest key's share.
	prev := 0.0
	for _, theta := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := New(1000, theta).Probability(0)
		if p <= prev {
			t.Fatalf("P(hottest) not increasing at theta=%.1f", theta)
		}
		prev = p
	}
}

func TestPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	New(0, 0.5)
}
