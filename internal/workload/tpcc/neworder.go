package tpcc

import (
	"fmt"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// Procedure names.
const (
	ProcNewOrder    = "NewOrder"
	ProcPayment     = "Payment"
	ProcOrderStatus = "OrderStatus"
	ProcDelivery    = "Delivery"
	ProcStockLevel  = "StockLevel"
)

// NewOrder argument layout:
//
//	0: w, 1: d, 2: c, 3: ol_cnt, 4: entry (date stand-in), 5: rbk
//	then per line j (0-based): 6+3j: i_id, 7+3j: supply_w, 8+3j: qty
//
// rbk=1 makes the last line's item id invalid, triggering the 1%
// user rollback the spec mandates.
//
// NewOrder is the paper's canonical dependent transaction: the order
// id comes from DISTRICT.next_o_id, so the ORDERS/NEW_ORDER/
// ORDER_LINE inserts are all key-dependent on the district read.
// When two NewOrders race on one district, the loser heals the
// district read and re-executes the inserts with the fresh order id —
// a read/write-set membership update (§4.2.2) — instead of aborting.
func newOrderSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcNewOrder,
		Params: []string{"w", "d", "c", "ol_cnt", "entry", "rbk"},
		Plan: func(b *proc.Builder, args *proc.Env) {
			olCnt := int(args.Int("ol_cnt"))

			b.Op(proc.Op{
				Name:     "readWarehouse",
				KeyReads: []string{"w"},
				Writes:   []string{"wtax"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read(TabWarehouse, WarehouseKey(e.Int("w")), []int{WTaxBps})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such warehouse")
					}
					e.SetVal("wtax", row[WTaxBps])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "readDistrict",
				KeyReads: []string{"w", "d"},
				Writes:   []string{"dtax", "oid"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read(TabDistrict, DistrictKey(e.Int("w"), e.Int("d")), []int{DTaxBps, DNextOID})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such district")
					}
					e.SetVal("dtax", row[DTaxBps])
					e.SetVal("oid", row[DNextOID])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "advanceDistrict",
				KeyReads: []string{"w", "d"},
				ValReads: []string{"oid"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write(TabDistrict, DistrictKey(e.Int("w"), e.Int("d")),
						[]int{DNextOID}, []storage.Value{storage.Int(e.Int("oid") + 1)})
				},
			})
			b.Op(proc.Op{
				Name:     "readCustomer",
				KeyReads: []string{"w", "d", "c"},
				Writes:   []string{"cdisc"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read(TabCustomer, CustomerKey(e.Int("w"), e.Int("d"), e.Int("c")),
						[]int{CDiscountBps, CLast, CCredit})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such customer")
					}
					e.SetVal("cdisc", row[CDiscountBps])
					return nil
				},
			})

			allLocal := int64(1)
			for j := 0; j < olCnt; j++ {
				if args.Int(fmt.Sprintf("$%d", 7+3*j)) != args.Int("w") {
					allLocal = 0
					break
				}
			}
			b.Op(proc.Op{
				Name:     "insertOrder",
				KeyReads: []string{"w", "d", "oid"},
				ValReads: []string{"c", "entry", "ol_cnt"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Insert(TabOrders, OrderKey(e.Int("w"), e.Int("d"), e.Int("oid")), storage.Tuple{
						storage.Int(e.Int("c")),
						storage.Int(e.Int("entry")),
						storage.Int(0), // carrier: null until delivered
						storage.Int(e.Int("ol_cnt")),
						storage.Int(allLocal),
					})
				},
			})
			b.Op(proc.Op{
				Name:     "insertNewOrder",
				KeyReads: []string{"w", "d", "oid"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Insert(TabNewOrder, NewOrderKey(e.Int("w"), e.Int("d"), e.Int("oid")), storage.Tuple{
						storage.Int(e.Int("oid")),
					})
				},
			})

			for j := 0; j < olCnt; j++ {
				j := j
				iidVar := fmt.Sprintf("$%d", 6+3*j)
				supVar := fmt.Sprintf("$%d", 7+3*j)
				qtyVar := fmt.Sprintf("$%d", 8+3*j)
				priceVar := fmt.Sprintf("price%d", j)
				amtVar := fmt.Sprintf("amt%d", j)

				b.Op(proc.Op{
					Name:     fmt.Sprintf("readItem%d", j),
					KeyReads: []string{iidVar},
					Writes:   []string{priceVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						row, ok, err := ctx.Read(TabItem, ItemKey(e.Int(iidVar)), []int{IPriceCents})
						if err != nil {
							return err
						}
						if !ok {
							// Unused item id: the spec's 1% rollback.
							return proc.UserAbort("item not found")
						}
						e.SetVal(priceVar, row[IPriceCents])
						return nil
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("updateStock%d", j),
					KeyReads: []string{"w", supVar, iidVar},
					ValReads: []string{qtyVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						key := StockKey(e.Int(supVar), e.Int(iidVar))
						row, ok, err := ctx.Read(TabStock, key,
							[]int{SQuantity, SYTD, SOrderCnt, SRemoteCnt})
						if err != nil {
							return err
						}
						if !ok {
							return proc.UserAbort("no such stock")
						}
						qty := e.Int(qtyVar)
						sq := row[SQuantity].Int() - qty
						if sq < 10 {
							sq += 91
						}
						remote := int64(0)
						if e.Int(supVar) != e.Int("w") {
							remote = 1
						}
						return ctx.Write(TabStock, key,
							[]int{SQuantity, SYTD, SOrderCnt, SRemoteCnt},
							[]storage.Value{
								storage.Int(sq),
								storage.Int(row[SYTD].Int() + qty),
								storage.Int(row[SOrderCnt].Int() + 1),
								storage.Int(row[SRemoteCnt].Int() + remote),
							})
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("insertOrderLine%d", j),
					KeyReads: []string{"w", "d", "oid"},
					ValReads: []string{iidVar, supVar, qtyVar, priceVar, "wtax", "dtax", "cdisc"},
					Writes:   []string{amtVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						qty := e.Int(qtyVar)
						// amount = qty * price * (1 + w_tax + d_tax) * (1 - discount)
						amt := qty * e.Int(priceVar) * (10000 + e.Int("wtax") + e.Int("dtax")) / 10000
						amt = amt * (10000 - e.Int("cdisc")) / 10000
						e.SetInt(amtVar, amt)
						return ctx.Insert(TabOrderLine,
							OrderLineKey(e.Int("w"), e.Int("d"), e.Int("oid"), int64(j+1)),
							storage.Tuple{
								storage.Int(e.Int(iidVar)),
								storage.Int(e.Int(supVar)),
								storage.Int(0), // delivery_d: null until delivered
								storage.Int(qty),
								storage.Int(amt),
								storage.Str("dist-info-placeholder-24b"),
							})
					},
				})
			}

			amtVars := make([]string, olCnt)
			for j := range amtVars {
				amtVars[j] = fmt.Sprintf("amt%d", j)
			}
			b.Op(proc.Op{
				Name:     "total",
				ValReads: amtVars,
				Writes:   []string{"total"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					var total int64
					for _, v := range amtVars {
						total += e.Int(v)
					}
					e.SetInt("total", total)
					return nil
				},
			})
		},
	}
}
