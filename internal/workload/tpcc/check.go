package tpcc

import (
	"fmt"

	"thedb/internal/storage"
)

// CheckConsistency verifies the TPC-C consistency conditions that
// hold after any number of committed transactions (TPC-C §3.3.2):
//
//  1. W_YTD = Σ D_YTD over the warehouse's districts;
//  2. D_NEXT_O_ID - 1 = max(O_ID) in ORDERS and NEW_ORDER per
//     district;
//  3. NEW_ORDER ids per district form a contiguous range;
//  4. Σ O_OL_CNT = number of ORDER_LINE rows per district.
//
// A serializability violation under contention (lost update on
// next_o_id, double delivery, torn order insert) breaks one of these.
func CheckConsistency(cat *storage.Catalog, cfg Config) error {
	cfg.defaults()
	warehouse, _ := cat.Table(TabWarehouse)
	district, _ := cat.Table(TabDistrict)
	orders, _ := cat.Table(TabOrders)
	newOrder, _ := cat.Table(TabNewOrder)
	orderLine, _ := cat.Table(TabOrderLine)

	for w := int64(1); w <= int64(cfg.Warehouses); w++ {
		wrec, ok := warehouse.Peek(WarehouseKey(w))
		if !ok {
			return fmt.Errorf("tpcc: missing warehouse %d", w)
		}
		var dYTDSum int64
		for d := int64(1); d <= int64(cfg.DistrictsPerW); d++ {
			drec, ok := district.Peek(DistrictKey(w, d))
			if !ok {
				return fmt.Errorf("tpcc: missing district (%d,%d)", w, d)
			}
			dtuple := drec.Tuple()
			dYTDSum += dtuple[DYTDCents].Int()
			nextOID := dtuple[DNextOID].Int()

			// Condition 2 & 4: scan this district's orders.
			var maxOID, olCntSum, orderCount int64
			orders.RangeScan(OrderKey(w, d, 0), OrderKey(w, d, (1<<24)-1),
				func(k storage.Key, r *storage.Record) bool {
					if !r.Visible() {
						return true
					}
					_, _, o := SplitOrderKey(k)
					if o > maxOID {
						maxOID = o
					}
					olCntSum += r.Tuple()[OOLCnt].Int()
					orderCount++
					return true
				})
			if orderCount > 0 && maxOID != nextOID-1 {
				return fmt.Errorf("tpcc: (%d,%d) max order id %d != next_o_id-1 %d", w, d, maxOID, nextOID-1)
			}

			// Condition 3: NEW_ORDER ids contiguous, max matches.
			var noCount, noMin, noMax int64
			noMin = 1 << 62
			newOrder.RangeScan(NewOrderKey(w, d, 0), NewOrderKey(w, d, (1<<24)-1),
				func(k storage.Key, r *storage.Record) bool {
					if !r.Visible() {
						return true
					}
					_, _, o := SplitOrderKey(k)
					if o < noMin {
						noMin = o
					}
					if o > noMax {
						noMax = o
					}
					noCount++
					return true
				})
			if noCount > 0 {
				if noMax-noMin+1 != noCount {
					return fmt.Errorf("tpcc: (%d,%d) NEW_ORDER ids not contiguous: [%d,%d] has %d rows",
						w, d, noMin, noMax, noCount)
				}
				if noMax != maxOID {
					return fmt.Errorf("tpcc: (%d,%d) max NEW_ORDER id %d != max order id %d", w, d, noMax, maxOID)
				}
			}

			var olCount int64
			orderLine.RangeScan(OrderLineKey(w, d, 0, 0), OrderLineKey(w, d, (1<<24)-1, 255),
				func(_ storage.Key, r *storage.Record) bool {
					if r.Visible() {
						olCount++
					}
					return true
				})
			if olCntSum != olCount {
				return fmt.Errorf("tpcc: (%d,%d) sum(ol_cnt)=%d != order-line rows %d", w, d, olCntSum, olCount)
			}
		}
		if got := wrec.Tuple()[WYTDCents].Int(); got != dYTDSum {
			return fmt.Errorf("tpcc: warehouse %d ytd %d != sum of district ytd %d", w, got, dYTDSum)
		}
	}
	return nil
}
