package tpcc

import "thedb/internal/storage"

// Key packing. Warehouse and district ids occupy the top 24 bits of
// every warehouse-scoped key, so the ordered indexes sharded at
// ShardShift 40 keep each district's entries in a private sub-tree
// and range scans never cross districts.
//
//	WAREHOUSE   [w:16]
//	DISTRICT    [w:16][d:8]
//	CUSTOMER    [w:16][d:8][c:24]
//	HISTORY     [w:16][d:8][h:40]   (client-generated unique id)
//	NEW_ORDER   [w:16][d:8][o:24]
//	ORDERS      [w:16][d:8][o:24]
//	ORDER_LINE  [w:16][d:8][o:24][ol:8]
//	ITEM        [i:32]
//	STOCK       [w:16][i:32]

var (
	wWidths  = []uint8{16}
	wdWidths = []uint8{16, 8}
	cWidths  = []uint8{16, 8, 24}
	hWidths  = []uint8{16, 8, 40}
	oWidths  = []uint8{16, 8, 24}
	olWidths = []uint8{16, 8, 24, 8}
	iWidths  = []uint8{32}
	sWidths  = []uint8{16, 32}
)

// WarehouseKey builds a WAREHOUSE primary key.
func WarehouseKey(w int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w)}, wWidths)
}

// DistrictKey builds a DISTRICT primary key.
func DistrictKey(w, d int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d)}, wdWidths)
}

// CustomerKey builds a CUSTOMER primary key.
func CustomerKey(w, d, c int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d), uint64(c)}, cWidths)
}

// SplitCustomerKey decomposes a CUSTOMER key.
func SplitCustomerKey(k storage.Key) (w, d, c int64) {
	return int64(k.Component(0, cWidths)), int64(k.Component(1, cWidths)), int64(k.Component(2, cWidths))
}

// HistoryKey builds a HISTORY primary key from a client-generated
// unique id.
func HistoryKey(w, d, h int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d), uint64(h)}, hWidths)
}

// NewOrderKey builds a NEW_ORDER primary key.
func NewOrderKey(w, d, o int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d), uint64(o)}, oWidths)
}

// OrderKey builds an ORDERS primary key.
func OrderKey(w, d, o int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d), uint64(o)}, oWidths)
}

// SplitOrderKey decomposes an ORDERS or NEW_ORDER key.
func SplitOrderKey(k storage.Key) (w, d, o int64) {
	return int64(k.Component(0, oWidths)), int64(k.Component(1, oWidths)), int64(k.Component(2, oWidths))
}

// OrderLineKey builds an ORDER_LINE primary key.
func OrderLineKey(w, d, o, ol int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(d), uint64(o), uint64(ol)}, olWidths)
}

// SplitOrderLineKey decomposes an ORDER_LINE key.
func SplitOrderLineKey(k storage.Key) (w, d, o, ol int64) {
	return int64(k.Component(0, olWidths)), int64(k.Component(1, olWidths)),
		int64(k.Component(2, olWidths)), int64(k.Component(3, olWidths))
}

// ItemKey builds an ITEM primary key.
func ItemKey(i int64) storage.Key {
	return storage.PackKey([]uint64{uint64(i)}, iWidths)
}

// StockKey builds a STOCK primary key.
func StockKey(w, i int64) storage.Key {
	return storage.PackKey([]uint64{uint64(w), uint64(i)}, sWidths)
}
