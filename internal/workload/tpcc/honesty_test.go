package tpcc

import (
	"strings"
	"testing"

	"thedb/internal/det"
)

// TestDeclaredVariableHonesty runs the full transaction mix with
// Env.CheckOp enforcement: every operation body must touch only the
// environment variables it declared in KeyReads/ValReads/Writes. The
// dependency analyzer — and with it the healing engine's correctness —
// rests on these declarations, so a violation here is a soundness bug,
// not a style issue.
func TestDeclaredVariableHonesty(t *testing.T) {
	cfg := testConfig(2)
	cat := buildCatalog(t, cfg, 2)
	e := det.NewEngine(cat, 2, 1)
	e.SetChecked(true)
	for _, p := range DetProcs(2) {
		e.MustRegister(p)
	}
	w := e.Worker(0)
	mix := StandardMix()
	mix.RemotePct = 20 // exercise the remote branches too
	gen := NewGen(cfg, mix, 0)
	for i := 0; i < 600; i++ {
		req := gen.Next()
		_, err := w.Run(req.Proc, req.Args...)
		if err == nil {
			continue
		}
		if strings.Contains(err.Error(), "undeclared") {
			t.Fatalf("%s: %v", req.Proc, err)
		}
		if !isUserAbort(err) {
			t.Fatalf("%s: %v", req.Proc, err)
		}
	}
}
