package tpcc

import (
	"thedb/internal/det"
	"thedb/internal/storage"
)

// DetProcs wraps the five procedures with partition-set functions for
// the deterministic engine. Partitioning is by warehouse
// (partition = (w-1) % partitions); ITEM is replicated. A NewOrder
// with a remote supply warehouse or a Payment for a remote customer
// locks both partitions — the cross-partition cost Figure 12
// measures.
func DetProcs(partitions int) []*det.Proc {
	part := func(w int64) int { return int((w - 1) % int64(partitions)) }
	return []*det.Proc{
		{
			Spec: newOrderSpec(),
			Home: func(args []storage.Value) []int {
				w := args[0].Int()
				home := []int{part(w)}
				olCnt := int(args[3].Int())
				for j := 0; j < olCnt; j++ {
					if sup := args[7+3*j].Int(); sup != w {
						home = append(home, part(sup))
					}
				}
				return home
			},
		},
		{
			Spec: paymentSpec(),
			Home: func(args []storage.Value) []int {
				w, cw := args[0].Int(), args[2].Int()
				if cw != w {
					return []int{part(w), part(cw)}
				}
				return []int{part(w)}
			},
		},
		{
			Spec: orderStatusSpec(),
			Home: func(args []storage.Value) []int { return []int{part(args[0].Int())} },
		},
		{
			Spec: deliverySpec(),
			Home: func(args []storage.Value) []int { return []int{part(args[0].Int())} },
		},
		{
			Spec: stockLevelSpec(),
			Home: func(args []storage.Value) []int { return []int{part(args[0].Int())} },
		},
	}
}
