package tpcc

import (
	"strings"
	"testing"

	"thedb/internal/core"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

func singleEngine(t *testing.T, cfg Config) *core.Engine {
	t.Helper()
	cat := buildCatalog(t, cfg, 0)
	e := core.NewEngine(cat, core.Options{Protocol: core.Healing, Workers: 1})
	for _, s := range Specs() {
		e.MustRegister(s)
	}
	return e
}

func TestNewOrderEffects(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)

	district, _ := e.Catalog().Table(TabDistrict)
	drec, _ := district.Peek(DistrictKey(1, 1))
	nextBefore := drec.Tuple()[DNextOID].Int()

	stock, _ := e.Catalog().Table(TabStock)
	srec, _ := stock.Peek(StockKey(1, 10))
	qtyBefore := srec.Tuple()[SQuantity].Int()

	args := []storage.Value{
		storage.Int(1), storage.Int(1), storage.Int(3), // w, d, c
		storage.Int(2), storage.Int(777), storage.Int(0), // ol_cnt, entry, rbk
		storage.Int(10), storage.Int(1), storage.Int(4), // item 10, local, qty 4
		storage.Int(20), storage.Int(1), storage.Int(2), // item 20, local, qty 2
	}
	env, err := w.Run(ProcNewOrder, args...)
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("total") <= 0 {
		t.Error("order total not computed")
	}

	drec, _ = district.Peek(DistrictKey(1, 1))
	if got := drec.Tuple()[DNextOID].Int(); got != nextBefore+1 {
		t.Errorf("next_o_id = %d, want %d", got, nextBefore+1)
	}

	oid := nextBefore
	orders, _ := e.Catalog().Table(TabOrders)
	orec, ok := orders.Peek(OrderKey(1, 1, oid))
	if !ok || !orec.Visible() {
		t.Fatal("order row missing")
	}
	if orec.Tuple()[OCID].Int() != 3 || orec.Tuple()[OOLCnt].Int() != 2 {
		t.Errorf("order tuple = %v", orec.Tuple())
	}
	newOrder, _ := e.Catalog().Table(TabNewOrder)
	if norec, ok := newOrder.Peek(NewOrderKey(1, 1, oid)); !ok || !norec.Visible() {
		t.Fatal("NEW_ORDER row missing")
	}
	orderLine, _ := e.Catalog().Table(TabOrderLine)
	for ol := int64(1); ol <= 2; ol++ {
		olrec, ok := orderLine.Peek(OrderLineKey(1, 1, oid, ol))
		if !ok || !olrec.Visible() {
			t.Fatalf("order line %d missing", ol)
		}
		if olrec.Tuple()[OLDeliveryD].Int() != 0 {
			t.Error("fresh order line already delivered")
		}
	}

	srec, _ = stock.Peek(StockKey(1, 10))
	gotQty := srec.Tuple()[SQuantity].Int()
	wantQty := qtyBefore - 4
	if wantQty < 10 {
		wantQty += 91
	}
	if gotQty != wantQty {
		t.Errorf("stock qty = %d, want %d", gotQty, wantQty)
	}
	if srec.Tuple()[SOrderCnt].Int() != 1 || srec.Tuple()[SYTD].Int() != 4 {
		t.Errorf("stock counters = %v", srec.Tuple())
	}
}

func TestNewOrderRollback(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)
	district, _ := e.Catalog().Table(TabDistrict)
	drec, _ := district.Peek(DistrictKey(1, 1))
	nextBefore := drec.Tuple()[DNextOID].Int()

	args := []storage.Value{
		storage.Int(1), storage.Int(1), storage.Int(3),
		storage.Int(1), storage.Int(777), storage.Int(1), // rbk=1
		storage.Int(int64(cfg.Items) + 1000), storage.Int(1), storage.Int(4),
	}
	if _, err := w.Run(ProcNewOrder, args...); err == nil ||
		!strings.Contains(err.Error(), "item not found") {
		t.Fatalf("rollback NewOrder: %v", err)
	}
	// Nothing must have leaked.
	drec, _ = district.Peek(DistrictKey(1, 1))
	if got := drec.Tuple()[DNextOID].Int(); got != nextBefore {
		t.Errorf("aborted NewOrder advanced next_o_id: %d", got)
	}
	orders, _ := e.Catalog().Table(TabOrders)
	if rec, ok := orders.Peek(OrderKey(1, 1, nextBefore)); ok && rec.Visible() {
		t.Error("aborted NewOrder committed an order row")
	}
	if err := CheckConsistency(e.Catalog(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentByIDAndByName(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)
	customer, _ := e.Catalog().Table(TabCustomer)
	warehouse, _ := e.Catalog().Table(TabWarehouse)
	wrec, _ := warehouse.Peek(WarehouseKey(1))
	wytdBefore := wrec.Tuple()[WYTDCents].Int()

	crec, _ := customer.Peek(CustomerKey(1, 1, 5))
	balBefore := crec.Tuple()[CBalanceCents].Int()

	// By id.
	_, err := w.Run(ProcPayment,
		storage.Int(1), storage.Int(1), storage.Int(1), storage.Int(1),
		storage.Int(5), storage.Str(""), storage.Int(1234),
		storage.Int(1), storage.Int(777))
	if err != nil {
		t.Fatal(err)
	}
	crec, _ = customer.Peek(CustomerKey(1, 1, 5))
	if got := crec.Tuple()[CBalanceCents].Int(); got != balBefore-1234 {
		t.Errorf("balance = %d, want %d", got, balBefore-1234)
	}
	if got := crec.Tuple()[CPaymentCnt].Int(); got != 2 { // population starts at 1
		t.Errorf("payment_cnt = %d", got)
	}
	wrec, _ = warehouse.Peek(WarehouseKey(1))
	if got := wrec.Tuple()[WYTDCents].Int(); got != wytdBefore+1234 {
		t.Errorf("warehouse ytd = %d", got)
	}
	history, _ := e.Catalog().Table(TabHistory)
	if history.Len() != 1 {
		t.Errorf("history rows = %d", history.Len())
	}

	// By last name: customer 2's load-time name is LastName(1).
	last := LastName(1)
	env, err := w.Run(ProcPayment,
		storage.Int(1), storage.Int(1), storage.Int(1), storage.Int(1),
		storage.Int(0), storage.Str(last), storage.Int(100),
		storage.Int(2), storage.Int(778))
	if err != nil {
		t.Fatal(err)
	}
	cid := env.Int("cid")
	crec, _ = customer.Peek(CustomerKey(1, 1, cid))
	if got := crec.Tuple()[CLast].Str(); got != last {
		t.Errorf("resolved customer %d has last name %q, want %q", cid, got, last)
	}

	// Unknown name aborts.
	if _, err := w.Run(ProcPayment,
		storage.Int(1), storage.Int(1), storage.Int(1), storage.Int(1),
		storage.Int(0), storage.Str("NOSUCHNAME"), storage.Int(100),
		storage.Int(3), storage.Int(779)); err == nil {
		t.Fatal("payment to unknown name accepted")
	}
}

func TestDeliveryEffects(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)

	newOrder, _ := e.Catalog().Table(TabNewOrder)
	// Find the oldest undelivered order of district 1 before.
	var oldest int64 = -1
	newOrder.RangeScan(NewOrderKey(1, 1, 0), NewOrderKey(1, 1, (1<<24)-1),
		func(k storage.Key, r *storage.Record) bool {
			if r.Visible() {
				_, _, oldest = SplitOrderKey(k)
				return false
			}
			return true
		})
	if oldest < 0 {
		t.Fatal("population left no undelivered orders")
	}
	orders, _ := e.Catalog().Table(TabOrders)
	orec, _ := orders.Peek(OrderKey(1, 1, oldest))
	cid := orec.Tuple()[OCID].Int()
	olCnt := orec.Tuple()[OOLCnt].Int()
	customer, _ := e.Catalog().Table(TabCustomer)
	crec, _ := customer.Peek(CustomerKey(1, 1, cid))
	balBefore := crec.Tuple()[CBalanceCents].Int()
	dcntBefore := crec.Tuple()[CDeliveryCnt].Int()

	if _, err := w.Run(ProcDelivery,
		storage.Int(1), storage.Int(7), storage.Int(9999),
		storage.Int(int64(cfg.DistrictsPerW))); err != nil {
		t.Fatal(err)
	}

	// NEW_ORDER entry gone.
	if rec, ok := newOrder.Peek(NewOrderKey(1, 1, oldest)); ok && rec.Visible() {
		t.Error("delivered NEW_ORDER entry still visible")
	}
	// Carrier stamped.
	orec, _ = orders.Peek(OrderKey(1, 1, oldest))
	if got := orec.Tuple()[OCarrierID].Int(); got != 7 {
		t.Errorf("carrier = %d", got)
	}
	// Lines stamped, amounts summed into the customer's balance.
	orderLine, _ := e.Catalog().Table(TabOrderLine)
	var sum int64
	for ol := int64(1); ol <= olCnt; ol++ {
		olrec, _ := orderLine.Peek(OrderLineKey(1, 1, oldest, ol))
		if got := olrec.Tuple()[OLDeliveryD].Int(); got != 9999 {
			t.Errorf("line %d delivery_d = %d", ol, got)
		}
		sum += olrec.Tuple()[OLAmountCents].Int()
	}
	crec, _ = customer.Peek(CustomerKey(1, 1, cid))
	if got := crec.Tuple()[CBalanceCents].Int(); got != balBefore+sum {
		t.Errorf("customer balance = %d, want %d", got, balBefore+sum)
	}
	if got := crec.Tuple()[CDeliveryCnt].Int(); got != dcntBefore+1 {
		t.Errorf("delivery_cnt = %d", got)
	}
	if err := CheckConsistency(e.Catalog(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)
	// Threshold above the maximum stock (100) counts every distinct
	// item in the window; threshold 0 counts none.
	envAll, err := w.Run(ProcStockLevel, storage.Int(1), storage.Int(1), storage.Int(101), storage.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	envNone, err := w.Run(ProcStockLevel, storage.Int(1), storage.Int(1), storage.Int(0), storage.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	if envNone.Int("low") != 0 {
		t.Errorf("low with threshold 0 = %d", envNone.Int("low"))
	}
	if envAll.Int("low") == 0 {
		t.Error("low with threshold 101 = 0; expected every scanned item")
	}
}

func TestOrderStatusFindsLastOrder(t *testing.T) {
	cfg := testConfig(1)
	e := singleEngine(t, cfg)
	w := e.Worker(0)

	// Give customer 3 a fresh order so their latest is known.
	args := []storage.Value{
		storage.Int(1), storage.Int(1), storage.Int(3),
		storage.Int(1), storage.Int(777), storage.Int(0),
		storage.Int(10), storage.Int(1), storage.Int(4),
	}
	envNO, err := w.Run(ProcNewOrder, args...)
	if err != nil {
		t.Fatal(err)
	}
	env, err := w.Run(ProcOrderStatus, storage.Int(1), storage.Int(1), storage.Int(3), storage.Str(""))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("found") != 1 {
		t.Fatal("no order found for customer with fresh order")
	}
	if env.Int("oid") != envNO.Int("oid") {
		t.Errorf("last order id = %d, want %d", env.Int("oid"), envNO.Int("oid"))
	}
	if env.Int("lines") != 1 {
		t.Errorf("lines = %d", env.Int("lines"))
	}
}

// TestNewOrderGraphMatchesFig15a spot-checks the NewOrder program
// dependency graph against the paper's Figure 15a: the district read
// produces the order id that keys the ORDERS/NEW_ORDER/ORDER_LINE
// inserts (key dependencies) and feeds the next_o_id bump (value
// dependency).
func TestNewOrderGraphMatchesFig15a(t *testing.T) {
	env := proc.NewEnv()
	args := []storage.Value{
		storage.Int(1), storage.Int(1), storage.Int(3),
		storage.Int(2), storage.Int(777), storage.Int(0),
		storage.Int(10), storage.Int(1), storage.Int(4),
		storage.Int(20), storage.Int(1), storage.Int(2),
	}
	spec := newOrderSpec()
	for i, a := range args {
		if i < len(spec.Params) {
			env.SetVal(spec.Params[i], a)
		}
		env.SetVal(posVar(i), a)
	}
	prog := spec.Instantiate(env)
	if prog.Independent {
		t.Fatal("NewOrder classified independent")
	}
	// Op 1 is readDistrict (produces oid).
	readDistrict := prog.Op(1)
	if readDistrict.Name != "readDistrict" {
		t.Fatalf("op 1 is %q", readDistrict.Name)
	}
	var keyKids, valKids []string
	for _, c := range readDistrict.KeyChildren() {
		keyKids = append(keyKids, c.Name)
	}
	for _, c := range readDistrict.ValChildren() {
		valKids = append(valKids, c.Name)
	}
	wantKey := map[string]bool{
		"insertOrder": true, "insertNewOrder": true,
		"insertOrderLine0": true, "insertOrderLine1": true,
	}
	for _, k := range keyKids {
		if !wantKey[k] {
			t.Errorf("unexpected key child %q", k)
		}
		delete(wantKey, k)
	}
	if len(wantKey) != 0 {
		t.Errorf("missing key children: %v (got %v)", wantKey, keyKids)
	}
	foundAdvance := false
	for _, v := range valKids {
		if v == "advanceDistrict" {
			foundAdvance = true
		}
	}
	if !foundAdvance {
		t.Errorf("advanceDistrict not value-dependent on readDistrict: %v", valKids)
	}
}

// TestDeliveryGraphChains verifies Figure 15b's per-district
// dependency chain: oldest -> delete/read/stamp -> lines -> customer.
func TestDeliveryGraphChains(t *testing.T) {
	env := proc.NewEnv()
	spec := deliverySpec()
	args := []storage.Value{storage.Int(1), storage.Int(7), storage.Int(9), storage.Int(2)}
	for i, a := range args {
		env.SetVal(spec.Params[i], a)
		env.SetVal(posVar(i), a)
	}
	prog := spec.Instantiate(env)
	if prog.Independent {
		t.Fatal("Delivery classified independent")
	}
	// Per district: 6 ops. District 1's oldestNO is op 0.
	oldest := prog.Op(0)
	if !strings.HasPrefix(oldest.Name, "oldestNO") {
		t.Fatalf("op 0 is %q", oldest.Name)
	}
	if len(oldest.KeyChildren()) < 4 {
		t.Errorf("oldestNO has %d key children, want >=4 (delete, read, stamp, lines)",
			len(oldest.KeyChildren()))
	}
	// readOrder produces cid/olcnt, keying stampLines and
	// creditCustomer.
	readOrder := prog.Op(2)
	if !strings.HasPrefix(readOrder.Name, "readOrder") {
		t.Fatalf("op 2 is %q", readOrder.Name)
	}
	names := map[string]bool{}
	for _, c := range readOrder.KeyChildren() {
		names[c.Name] = true
	}
	if !names["stampLines1"] || !names["creditCustomer1"] {
		t.Errorf("readOrder key children = %v", names)
	}
}
