package tpcc

import (
	"fmt"
	"math/rand"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// Mix controls the transaction generator.
type Mix struct {
	// NewOrderPct etc. are cumulative percentages of the standard
	// mix; the zero Mix gets the TPC-C full mix (45/43/4/4/4).
	NewOrderPct    int
	PaymentPct     int
	OrderStatusPct int
	DeliveryPct    int
	// RemotePct is the probability (percent) that a NewOrder touches
	// a remote warehouse, i.e. is cross-partition (Fig. 12). The
	// TPC-C default is 1%.
	RemotePct int
	// PaymentByNamePct selects customers by last name (the spec's
	// 60%).
	PaymentByNamePct int
	// RollbackPct is NewOrder's user-abort share (the spec's 1%).
	RollbackPct int
	// NewOrderOnly restricts the mix to NewOrder transactions
	// (used by several single-procedure experiments).
	NewOrderOnly bool
}

// StandardMix returns the TPC-C default transaction mix.
func StandardMix() Mix {
	return Mix{
		NewOrderPct:      45,
		PaymentPct:       43,
		OrderStatusPct:   4,
		DeliveryPct:      4,
		RemotePct:        1,
		PaymentByNamePct: 60,
		RollbackPct:      1,
	}
}

func (m *Mix) defaults() {
	if m.NewOrderPct == 0 && m.PaymentPct == 0 && m.OrderStatusPct == 0 && m.DeliveryPct == 0 {
		std := StandardMix()
		std.RemotePct = m.RemotePct
		std.RollbackPct = m.RollbackPct
		std.PaymentByNamePct = m.PaymentByNamePct
		if std.PaymentByNamePct == 0 {
			std.PaymentByNamePct = 60
		}
		*m = std
	}
}

// Gen produces transaction requests for one worker. Not safe for
// concurrent use: one Gen per worker, each with a distinct id.
type Gen struct {
	cfg      Config
	mix      Mix
	rng      *rand.Rand
	workerID int64
	hSeq     int64
	dateSeq  int64
	cLoad    int64 // NURand C constant for customer ids
	cRun     int64
	iC       int64 // NURand C constant for item ids

	// homeW pins the worker to a home warehouse (round-robin), the
	// standard terminal model.
	homeW int64
}

// NewGen builds a generator for worker id over the given scale.
func NewGen(cfg Config, mix Mix, workerID int) *Gen {
	cfg.defaults()
	mix.defaults()
	g := &Gen{
		cfg:      cfg,
		mix:      mix,
		rng:      rand.New(rand.NewSource(cfg.Seed + int64(workerID)*7919 + 1)),
		workerID: int64(workerID),
		cLoad:    223, // spec-compliant constants
		cRun:     259,
		iC:       7911 % 8192,
		homeW:    int64(workerID%cfg.Warehouses) + 1,
	}
	return g
}

// nuRand is the TPC-C non-uniform random function.
func nuRand(rng *rand.Rand, a, x, y int64) int64 {
	c := (a + 1) / 2 // any constant in [0, A]; fixed per generator class
	return (((rng.Int63n(a+1) | (x + rng.Int63n(y-x+1))) + c) % (y - x + 1)) + x
}

// Request is one generated transaction.
type Request struct {
	Proc string
	Args []storage.Value
	// CrossPartition marks requests touching more than one
	// warehouse.
	CrossPartition bool
}

// Next draws the next request following the mix.
func (g *Gen) Next() Request {
	p := g.rng.Intn(100)
	m := g.mix
	if m.NewOrderOnly {
		return g.NewOrder()
	}
	switch {
	case p < m.NewOrderPct:
		return g.NewOrder()
	case p < m.NewOrderPct+m.PaymentPct:
		return g.Payment()
	case p < m.NewOrderPct+m.PaymentPct+m.OrderStatusPct:
		return g.OrderStatus()
	case p < m.NewOrderPct+m.PaymentPct+m.OrderStatusPct+m.DeliveryPct:
		return g.Delivery()
	default:
		return g.StockLevel()
	}
}

func (g *Gen) customerID() int64 {
	return nuRand(g.rng, 1023, 1, int64(g.cfg.CustomersPerDistrict))
}

func (g *Gen) itemID() int64 {
	return nuRand(g.rng, 8191, 1, int64(g.cfg.Items))
}

func (g *Gen) otherWarehouse(w int64) int64 {
	if g.cfg.Warehouses == 1 {
		return w
	}
	for {
		o := int64(g.rng.Intn(g.cfg.Warehouses)) + 1
		if o != w {
			return o
		}
	}
}

// NewOrder generates a NewOrder request.
func (g *Gen) NewOrder() Request {
	w := g.homeW
	d := int64(g.rng.Intn(g.cfg.DistrictsPerW)) + 1
	c := g.customerID()
	olCnt := int64(5 + g.rng.Intn(11))
	g.dateSeq++
	rbk := int64(0)
	if g.mix.RollbackPct > 0 && g.rng.Intn(100) < g.mix.RollbackPct {
		rbk = 1
	}
	cross := g.mix.RemotePct > 0 && g.rng.Intn(100) < g.mix.RemotePct

	args := []storage.Value{
		storage.Int(w), storage.Int(d), storage.Int(c),
		storage.Int(olCnt), storage.Int(g.dateSeq), storage.Int(rbk),
	}
	remoteLine := -1
	if cross {
		remoteLine = g.rng.Intn(int(olCnt))
	}
	for j := 0; j < int(olCnt); j++ {
		iid := g.itemID()
		if rbk == 1 && j == int(olCnt)-1 {
			iid = int64(g.cfg.Items) + 1000 // unused item: triggers rollback
		}
		sup := w
		if j == remoteLine {
			sup = g.otherWarehouse(w)
		}
		qty := int64(1 + g.rng.Intn(10))
		args = append(args, storage.Int(iid), storage.Int(sup), storage.Int(qty))
	}
	return Request{Proc: ProcNewOrder, Args: args, CrossPartition: cross}
}

// Payment generates a Payment request.
func (g *Gen) Payment() Request {
	w := g.homeW
	d := int64(g.rng.Intn(g.cfg.DistrictsPerW)) + 1
	cw, cd := w, d
	cross := false
	// The spec pays remote customers 15% of the time; the paper's
	// partition experiments drive cross-partition share through
	// NewOrder only, so remote Payment follows RemotePct here too.
	if g.mix.RemotePct > 0 && g.cfg.Warehouses > 1 && g.rng.Intn(100) < g.mix.RemotePct {
		cw = g.otherWarehouse(w)
		cd = int64(g.rng.Intn(g.cfg.DistrictsPerW)) + 1
		cross = true
	}
	c := int64(0)
	last := ""
	if g.rng.Intn(100) < g.mix.PaymentByNamePct {
		last = LastName(int(nuRand(g.rng, 255, 0, 999)))
	} else {
		c = g.customerID()
	}
	amount := int64(100 + g.rng.Intn(500000)) // $1.00 - $5000.00
	g.hSeq++
	hid := g.workerID<<28 | g.hSeq
	g.dateSeq++
	return Request{
		Proc: ProcPayment,
		Args: []storage.Value{
			storage.Int(w), storage.Int(d), storage.Int(cw), storage.Int(cd),
			storage.Int(c), storage.Str(last), storage.Int(amount),
			storage.Int(hid), storage.Int(g.dateSeq),
		},
		CrossPartition: cross,
	}
}

// OrderStatus generates an OrderStatus request.
func (g *Gen) OrderStatus() Request {
	w := g.homeW
	d := int64(g.rng.Intn(g.cfg.DistrictsPerW)) + 1
	c := int64(0)
	last := ""
	if g.rng.Intn(100) < 60 {
		last = LastName(int(nuRand(g.rng, 255, 0, 999)))
	} else {
		c = g.customerID()
	}
	return Request{
		Proc: ProcOrderStatus,
		Args: []storage.Value{storage.Int(w), storage.Int(d), storage.Int(c), storage.Str(last)},
	}
}

// Delivery generates a Delivery request.
func (g *Gen) Delivery() Request {
	g.dateSeq++
	return Request{
		Proc: ProcDelivery,
		Args: []storage.Value{
			storage.Int(g.homeW),
			storage.Int(int64(1 + g.rng.Intn(10))),
			storage.Int(g.dateSeq),
			storage.Int(int64(g.cfg.DistrictsPerW)),
		},
	}
}

// StockLevel generates a StockLevel request.
func (g *Gen) StockLevel() Request {
	return Request{
		Proc: ProcStockLevel,
		Args: []storage.Value{
			storage.Int(g.homeW),
			storage.Int(int64(g.rng.Intn(g.cfg.DistrictsPerW)) + 1),
			storage.Int(int64(10 + g.rng.Intn(11))),
			storage.Int(20),
		},
	}
}

// DependencyGraphs renders the program dependency graphs of NewOrder
// and Delivery for representative arguments — the paper's Figure 15.
func DependencyGraphs() []string {
	var out []string
	{
		spec := newOrderSpec()
		env := proc.NewEnv()
		args := []storage.Value{
			storage.Int(1), storage.Int(1), storage.Int(1),
			storage.Int(2), storage.Int(1), storage.Int(0),
			storage.Int(1), storage.Int(1), storage.Int(5),
			storage.Int(2), storage.Int(1), storage.Int(5),
		}
		for i, a := range args {
			if i < len(spec.Params) {
				env.SetVal(spec.Params[i], a)
			}
			env.SetVal(fmt.Sprintf("$%d", i), a)
		}
		out = append(out, spec.Instantiate(env).Graph())
	}
	{
		spec := deliverySpec()
		env := proc.NewEnv()
		args := []storage.Value{storage.Int(1), storage.Int(1), storage.Int(1), storage.Int(2)}
		for i, a := range args {
			env.SetVal(spec.Params[i], a)
			env.SetVal(fmt.Sprintf("$%d", i), a)
		}
		out = append(out, spec.Instantiate(env).Graph())
	}
	return out
}
