package tpcc

import (
	"fmt"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// Payment argument layout:
//
//	0: w, 1: d, 2: c_w, 3: c_d, 4: c (0 when selecting by name),
//	5: last (name, "" when selecting by id), 6: amount, 7: h_id,
//	8: h_date
//
// Selecting by last name makes Payment a dependent transaction: the
// secondary-index scan produces the customer id that keys the
// customer update.
func paymentSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcPayment,
		Params: []string{"w", "d", "c_w", "c_d", "c", "last", "amount", "h_id", "h_date"},
		Plan: func(b *proc.Builder, args *proc.Env) {
			byName := args.Str("last") != ""

			b.Op(proc.Op{
				Name:     "payWarehouse",
				KeyReads: []string{"w"},
				ValReads: []string{"amount"},
				Writes:   []string{"wname"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					key := WarehouseKey(e.Int("w"))
					row, ok, err := ctx.Read(TabWarehouse, key, []int{WName, WYTDCents})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such warehouse")
					}
					e.SetVal("wname", row[WName])
					return ctx.Write(TabWarehouse, key, []int{WYTDCents},
						[]storage.Value{storage.Int(row[WYTDCents].Int() + e.Int("amount"))})
				},
			})
			b.Op(proc.Op{
				Name:     "payDistrict",
				KeyReads: []string{"w", "d"},
				ValReads: []string{"amount"},
				Writes:   []string{"dname"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					key := DistrictKey(e.Int("w"), e.Int("d"))
					row, ok, err := ctx.Read(TabDistrict, key, []int{DName, DYTDCents})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such district")
					}
					e.SetVal("dname", row[DName])
					return ctx.Write(TabDistrict, key, []int{DYTDCents},
						[]storage.Value{storage.Int(row[DYTDCents].Int() + e.Int("amount"))})
				},
			})

			if byName {
				b.Op(proc.Op{
					Name:     "resolveByName",
					KeyReads: []string{"c_w", "c_d", "last"},
					Writes:   []string{"cid"},
					Body:     resolveCustomerByName("c_w", "c_d"),
				})
			} else {
				b.Op(proc.Op{
					Name:     "resolveById",
					ValReads: []string{"c"},
					Writes:   []string{"cid"},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						e.SetInt("cid", e.Int("c"))
						return nil
					},
				})
			}

			b.Op(proc.Op{
				Name:     "payCustomer",
				KeyReads: []string{"c_w", "c_d", "cid"},
				ValReads: []string{"amount", "w", "d"},
				Writes:   []string{"cbal"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					key := CustomerKey(e.Int("c_w"), e.Int("c_d"), e.Int("cid"))
					row, ok, err := ctx.Read(TabCustomer, key,
						[]int{CBalanceCents, CYTDPaymentCents, CPaymentCnt, CCredit, CData})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such customer")
					}
					amount := e.Int("amount")
					bal := row[CBalanceCents].Int() - amount
					e.SetInt("cbal", bal)
					cols := []int{CBalanceCents, CYTDPaymentCents, CPaymentCnt}
					vals := []storage.Value{
						storage.Int(bal),
						storage.Int(row[CYTDPaymentCents].Int() + amount),
						storage.Int(row[CPaymentCnt].Int() + 1),
					}
					if row[CCredit].Str() == "BC" {
						// Bad credit: prepend payment info to c_data,
						// truncated to 500 bytes.
						data := fmt.Sprintf("%d|%d|%d|%d|%d;%s",
							e.Int("cid"), e.Int("c_d"), e.Int("c_w"), e.Int("d"), amount, row[CData].Str())
						if len(data) > 500 {
							data = data[:500]
						}
						cols = append(cols, CData)
						vals = append(vals, storage.Str(data))
					}
					return ctx.Write(TabCustomer, key, cols, vals)
				},
			})
			b.Op(proc.Op{
				Name:     "insertHistory",
				KeyReads: []string{"w", "d", "h_id"},
				ValReads: []string{"cid", "c_w", "c_d", "amount", "h_date", "wname", "dname"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Insert(TabHistory, HistoryKey(e.Int("w"), e.Int("d"), e.Int("h_id")),
						storage.Tuple{
							storage.Int(e.Int("cid")),
							storage.Int(e.Int("c_d")),
							storage.Int(e.Int("c_w")),
							storage.Int(e.Int("d")),
							storage.Int(e.Int("w")),
							storage.Int(e.Int("h_date")),
							storage.Int(e.Int("amount")),
							storage.Str(e.Str("wname") + "    " + e.Str("dname")),
						})
				},
			})
		},
	}
}

// resolveCustomerByName builds a body that finds the customer with
// the given last name in (wVar, dVar), picking the spec's "middle"
// match (position n/2) in first-name order.
func resolveCustomerByName(wVar, dVar string) func(proc.OpCtx) error {
	return func(ctx proc.OpCtx) error {
		e := ctx.Env()
		prefix := fmt.Sprintf("%05d|%03d|%s|", e.Int(wVar), e.Int(dVar), e.Str("last"))
		var pks []storage.Key
		err := ctx.ScanSec(TabCustomer, IdxCustomerName, prefix, prefix+"\xff", 0,
			func(pk storage.Key, _ storage.Tuple) bool {
				pks = append(pks, pk)
				return true
			})
		if err != nil {
			return err
		}
		if len(pks) == 0 {
			return proc.UserAbort("no customer with last name " + e.Str("last"))
		}
		_, _, cid := SplitCustomerKey(pks[len(pks)/2])
		e.SetInt("cid", cid)
		return nil
	}
}
