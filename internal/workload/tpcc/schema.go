// Package tpcc implements the TPC-C benchmark [4] as used in the
// paper's evaluation: nine tables, the five standard stored
// procedures, population, a transaction-mix generator, and the
// consistency checks used by the test suite.
//
// Contention is controlled by the warehouse count (fewer warehouses =
// hotter DISTRICT/WAREHOUSE rows); the share of cross-partition
// transactions is controlled by the remote-warehouse probability of
// NewOrder (Fig. 12). Monetary amounts are stored as integer cents
// and rates as basis points so the consistency checks are exact.
//
// The schema ranks encode the paper's Figure 7 tree order: Warehouse
// and District validate before every other table, which is what makes
// validation-order rearrangement (§4.5) effective for NewOrder's
// order-id dependency.
package tpcc

import (
	"fmt"

	"thedb/internal/storage"
)

// Table names.
const (
	TabWarehouse = "WAREHOUSE"
	TabDistrict  = "DISTRICT"
	TabCustomer  = "CUSTOMER"
	TabHistory   = "HISTORY"
	TabNewOrder  = "NEW_ORDER"
	TabOrders    = "ORDERS"
	TabOrderLine = "ORDER_LINE"
	TabItem      = "ITEM"
	TabStock     = "STOCK"
)

// WAREHOUSE columns.
const (
	WName = iota
	WStreet
	WCity
	WState
	WZip
	WTaxBps
	WYTDCents
)

// DISTRICT columns.
const (
	DName = iota
	DStreet
	DCity
	DState
	DZip
	DTaxBps
	DYTDCents
	DNextOID
)

// CUSTOMER columns.
const (
	CFirst = iota
	CMiddle
	CLast
	CStreet
	CCity
	CState
	CZip
	CPhone
	CSince
	CCredit
	CCreditLimCents
	CDiscountBps
	CBalanceCents
	CYTDPaymentCents
	CPaymentCnt
	CDeliveryCnt
	CData
)

// HISTORY columns.
const (
	HCID = iota
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmountCents
	HData
)

// NEW_ORDER columns.
const (
	NOOID = iota
)

// ORDERS columns.
const (
	OCID = iota
	OEntryD
	OCarrierID
	OOLCnt
	OAllLocal
)

// ORDER_LINE columns.
const (
	OLIID = iota
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmountCents
	OLDistInfo
)

// ITEM columns.
const (
	IImID = iota
	IName
	IPriceCents
	IData
)

// STOCK columns.
const (
	SQuantity = iota
	SYTD
	SOrderCnt
	SRemoteCnt
	SDistAll
	SData
)

// IdxCustomerName is the secondary index on CUSTOMER(last, first).
const IdxCustomerName = "customer_name"

// IdxOrderCustomer is the secondary index on ORDERS(c_w, c_d, c_id,
// o_id) used to find a customer's most recent order.
const IdxOrderCustomer = "order_customer"

// Schemas returns the nine table schemas. partitions > 0 enables
// warehouse partitioning for the deterministic engine (partition =
// (w-1) % partitions); ITEM is read-only and replicated.
func Schemas(partitions int) []storage.Schema {
	var wpart func(storage.Key) int
	if partitions > 0 {
		wpart = func(k storage.Key) int {
			w := k.Component(0, []uint8{16}) // warehouse id is always the top 16 bits
			return int((w - 1) % uint64(partitions))
		}
	}
	str := storage.KindString
	num := storage.KindInt
	cols := func(defs ...storage.ColumnDef) []storage.ColumnDef { return defs }
	c := func(name string, k storage.ValueKind) storage.ColumnDef {
		return storage.ColumnDef{Name: name, Kind: k}
	}
	return []storage.Schema{
		{
			Name: TabWarehouse, Rank: 0, Partition: wpart,
			Columns: cols(c("name", str), c("street", str), c("city", str), c("state", str),
				c("zip", str), c("tax_bps", num), c("ytd_cents", num)),
		},
		{
			Name: TabDistrict, Rank: 1, Partition: wpart,
			Columns: cols(c("name", str), c("street", str), c("city", str), c("state", str),
				c("zip", str), c("tax_bps", num), c("ytd_cents", num), c("next_o_id", num)),
		},
		{
			Name: TabCustomer, Rank: 2, Partition: wpart,
			Columns: cols(c("first", str), c("middle", str), c("last", str), c("street", str),
				c("city", str), c("state", str), c("zip", str), c("phone", str), c("since", num),
				c("credit", str), c("credit_lim_cents", num), c("discount_bps", num),
				c("balance_cents", num), c("ytd_payment_cents", num), c("payment_cnt", num),
				c("delivery_cnt", num), c("data", str)),
			Secondaries: []storage.SecondaryDef{{
				Name: IdxCustomerName,
				Key: func(pk storage.Key, t storage.Tuple) string {
					w, d, _ := SplitCustomerKey(pk)
					return fmt.Sprintf("%05d|%03d|%s|%s|%016x", w, d, t[CLast].Str(), t[CFirst].Str(), uint64(pk))
				},
			}},
		},
		{
			Name: TabHistory, Rank: 5, Partition: wpart,
			Columns: cols(c("c_id", num), c("c_d_id", num), c("c_w_id", num), c("d_id", num),
				c("w_id", num), c("date", num), c("amount_cents", num), c("data", str)),
		},
		{
			Name: TabNewOrder, Rank: 3, Partition: wpart, Ordered: true, ShardShift: 40,
			Columns: cols(c("o_id", num)),
		},
		{
			Name: TabOrders, Rank: 4, Partition: wpart, Ordered: true, ShardShift: 40,
			Columns: cols(c("c_id", num), c("entry_d", num), c("carrier_id", num),
				c("ol_cnt", num), c("all_local", num)),
			Secondaries: []storage.SecondaryDef{{
				Name: IdxOrderCustomer,
				Key: func(pk storage.Key, t storage.Tuple) string {
					w, d, o := SplitOrderKey(pk)
					return fmt.Sprintf("%05d|%03d|%06d|%010d", w, d, t[OCID].Int(), o)
				},
			}},
		},
		{
			Name: TabOrderLine, Rank: 6, Partition: wpart, Ordered: true, ShardShift: 40,
			Columns: cols(c("i_id", num), c("supply_w_id", num), c("delivery_d", num),
				c("quantity", num), c("amount_cents", num), c("dist_info", str)),
		},
		{
			Name: TabItem, Rank: 7, Partition: nil, // read-only, replicated
			Columns: cols(c("im_id", num), c("name", str), c("price_cents", num), c("data", str)),
		},
		{
			Name: TabStock, Rank: 8, Partition: wpart,
			Columns: cols(c("quantity", num), c("ytd", num), c("order_cnt", num),
				c("remote_cnt", num), c("dist_all", str), c("data", str)),
		},
	}
}
