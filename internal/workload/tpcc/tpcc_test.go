package tpcc

import (
	"fmt"
	"sync"
	"testing"

	"thedb/internal/core"
	"thedb/internal/det"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

func testConfig(warehouses int) Config {
	return Config{
		Warehouses:           warehouses,
		DistrictsPerW:        4,
		CustomersPerDistrict: 40,
		Items:                100,
		InitOrdersPerDist:    20,
		Seed:                 7,
	}
}

func buildCatalog(t *testing.T, cfg Config, partitions int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	for _, s := range Schemas(partitions) {
		cat.MustCreateTable(s)
	}
	if err := Populate(cat, cfg); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPopulateConsistent(t *testing.T) {
	cfg := testConfig(2)
	cat := buildCatalog(t, cfg, 0)
	if err := CheckConsistency(cat, cfg); err != nil {
		t.Fatal(err)
	}
	item, _ := cat.Table(TabItem)
	if item.Len() != cfg.Items {
		t.Errorf("items = %d, want %d", item.Len(), cfg.Items)
	}
	customer, _ := cat.Table(TabCustomer)
	want := cfg.Warehouses * cfg.DistrictsPerW * cfg.CustomersPerDistrict
	if customer.Len() != want {
		t.Errorf("customers = %d, want %d", customer.Len(), want)
	}
}

func TestProgramsValidate(t *testing.T) {
	cfg := testConfig(1)
	gen := NewGen(cfg, StandardMix(), 0)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		req := gen.Next()
		seen[req.Proc] = true
		spec := specByName(t, req.Proc)
		env := proc.NewEnv()
		for j, a := range req.Args {
			if j < len(spec.Params) {
				env.SetVal(spec.Params[j], a)
			}
			env.SetVal(posVar(j), a)
		}
		prog := spec.Instantiate(env)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", req.Proc, err)
		}
	}
	for _, p := range []string{ProcNewOrder, ProcPayment, ProcOrderStatus, ProcDelivery, ProcStockLevel} {
		if !seen[p] {
			t.Errorf("mix never produced %s in 200 draws", p)
		}
	}
}

func posVar(i int) string {
	return fmt.Sprintf("$%d", i)
}

func specByName(t *testing.T, name string) *proc.Spec {
	t.Helper()
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no spec %q", name)
	return nil
}

// TestMixedWorkloadConsistency is the workhorse: several workers run
// the full TPC-C mix concurrently on a small contended database under
// every serializable protocol, then the TPC-C consistency conditions
// must hold exactly.
func TestMixedWorkloadConsistency(t *testing.T) {
	const (
		workers = 4
		txnsPer = 150
	)
	for _, p := range []core.Protocol{core.Healing, core.OCC, core.Silo, core.TPL, core.Hybrid} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(1) // single warehouse: maximum contention
			cat := buildCatalog(t, cfg, 0)
			e := core.NewEngine(cat, core.Options{Protocol: p, Workers: workers})
			for _, s := range Specs() {
				e.MustRegister(s)
			}
			e.Start()
			defer e.Stop()

			var wg sync.WaitGroup
			for wi := 0; wi < workers; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					gen := NewGen(cfg, StandardMix(), wi)
					w := e.Worker(wi)
					for i := 0; i < txnsPer; i++ {
						req := gen.Next()
						_, err := w.Run(req.Proc, req.Args...)
						if err != nil && !isUserAbort(err) {
							t.Errorf("worker %d %s: %v", wi, req.Proc, err)
							return
						}
					}
				}(wi)
			}
			wg.Wait()

			if err := CheckConsistency(cat, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func isUserAbort(err error) bool {
	var ua *proc.AbortError
	return errorsAs(err, &ua)
}

func errorsAs(err error, target any) bool {
	type causer interface{ Unwrap() error }
	for err != nil {
		if ae, ok := err.(*proc.AbortError); ok {
			*(target.(**proc.AbortError)) = ae
			return true
		}
		if c, ok := err.(causer); ok {
			err = c.Unwrap()
			continue
		}
		return false
	}
	return false
}

// TestDeterministicEngineConsistency runs the same mixed workload on
// THEDB-DT.
func TestDeterministicEngineConsistency(t *testing.T) {
	const (
		workers    = 4
		partitions = 2
		txnsPer    = 150
	)
	cfg := testConfig(2)
	cat := buildCatalog(t, cfg, partitions)
	e := det.NewEngine(cat, partitions, workers)
	for _, p := range DetProcs(partitions) {
		e.MustRegister(p)
	}

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			mix := StandardMix()
			mix.RemotePct = 10
			gen := NewGen(cfg, mix, wi)
			w := e.Worker(wi)
			for i := 0; i < txnsPer; i++ {
				req := gen.Next()
				if _, err := w.Run(req.Proc, req.Args...); err != nil && !isUserAbort(err) {
					t.Errorf("worker %d %s: %v", wi, req.Proc, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	if err := CheckConsistency(cat, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHealingRacingNewOrders drives the paper's marquee scenario
// directly: many concurrent NewOrders on one district. Under healing
// the district read heals and the order inserts re-execute with fresh
// ids (membership update); order ids must come out dense and unique.
func TestHealingRacingNewOrders(t *testing.T) {
	const (
		workers = 4
		txnsPer = 100
	)
	cfg := testConfig(1)
	cfg.DistrictsPerW = 1 // one district: every NewOrder collides
	cat := buildCatalog(t, cfg, 0)
	e := core.NewEngine(cat, core.Options{Protocol: core.Healing, Workers: workers})
	for _, s := range Specs() {
		e.MustRegister(s)
	}
	e.Start()
	defer e.Stop()

	var wg sync.WaitGroup
	committed := make([]int64, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			mix := Mix{NewOrderOnly: true, RollbackPct: 0}
			gen := NewGen(cfg, mix, wi)
			w := e.Worker(wi)
			for i := 0; i < txnsPer; i++ {
				req := gen.NewOrder()
				if _, err := w.Run(req.Proc, req.Args...); err != nil {
					t.Errorf("worker %d: %v", wi, err)
					return
				}
				committed[wi]++
			}
		}(wi)
	}
	wg.Wait()

	if err := CheckConsistency(cat, cfg); err != nil {
		t.Fatal(err)
	}
	district, _ := cat.Table(TabDistrict)
	drec, _ := district.Peek(DistrictKey(1, 1))
	var total int64
	for _, c := range committed {
		total += c
	}
	wantNext := int64(cfg.InitOrdersPerDist) + total + 1
	if got := drec.Tuple()[DNextOID].Int(); got != wantNext {
		t.Errorf("next_o_id = %d, want %d (every committed NewOrder advances it exactly once)", got, wantNext)
	}
}
