package tpcc

import (
	"fmt"
	"math/rand"

	"thedb/internal/storage"
)

// Config scales the database. The standard TPC-C scale (10 districts,
// 3000 customers per district, 100k items) can be reduced for test
// and laptop-scale runs; the contention behaviour the paper measures
// depends on the warehouse count, not the absolute table sizes.
type Config struct {
	Warehouses           int
	DistrictsPerW        int
	CustomersPerDistrict int
	Items                int
	InitOrdersPerDist    int // initially loaded orders per district
	Seed                 int64
}

// Standard returns the full TPC-C scale for w warehouses.
func Standard(w int) Config {
	return Config{
		Warehouses:           w,
		DistrictsPerW:        10,
		CustomersPerDistrict: 3000,
		Items:                100000,
		InitOrdersPerDist:    3000,
		Seed:                 42,
	}
}

// Scaled returns a laptop-scale configuration preserving the
// contention structure: full district count, reduced customers,
// items and preloaded orders.
func Scaled(w int) Config {
	return Config{
		Warehouses:           w,
		DistrictsPerW:        10,
		CustomersPerDistrict: 120,
		Items:                2000,
		InitOrdersPerDist:    60,
		Seed:                 42,
	}
}

// defaults fills zero fields.
func (c *Config) defaults() {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.DistrictsPerW <= 0 {
		c.DistrictsPerW = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 3000
	}
	if c.Items <= 0 {
		c.Items = 100000
	}
	if c.InitOrdersPerDist < 0 {
		c.InitOrdersPerDist = 0
	}
}

// lastNames are the TPC-C syllables for customer last names.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the TPC-C last name for a number in [0, 999].
func LastName(num int) string {
	return lastNameSyllables[num/100] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}

// lastNameFor picks the name number used at population time: per
// spec, customer i (1-based) with i <= 1000 uses i-1, otherwise
// NURand(255, 0, 999).
func lastNameFor(rng *rand.Rand, c int) string {
	if c <= 1000 {
		return LastName(c - 1)
	}
	return LastName(int(nuRand(rng, 255, 0, 999)))
}

func randStr(rng *rand.Rand, minLen, maxLen int) string {
	n := minLen + rng.Intn(maxLen-minLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// Populate loads the database at the given scale. It must run before
// the engine starts processing transactions.
func Populate(cat *storage.Catalog, cfg Config) error {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := func(name string) *storage.Table {
		t, ok := cat.Table(name)
		if !ok {
			panic(fmt.Sprintf("tpcc: catalog missing table %s", name))
		}
		return t
	}
	warehouse := tab(TabWarehouse)
	district := tab(TabDistrict)
	customer := tab(TabCustomer)
	orders := tab(TabOrders)
	newOrder := tab(TabNewOrder)
	orderLine := tab(TabOrderLine)
	item := tab(TabItem)
	stock := tab(TabStock)

	// ITEM (shared across warehouses).
	for i := 1; i <= cfg.Items; i++ {
		item.Put(ItemKey(int64(i)), storage.Tuple{
			storage.Int(int64(1 + rng.Intn(10000))),  // im_id
			storage.Str(fmt.Sprintf("item-%06d", i)), // name
			storage.Int(int64(100 + rng.Intn(9901))), // price: $1.00-$100.00
			storage.Str(randStr(rng, 26, 50)),        // data
		}, 0)
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		warehouse.Put(WarehouseKey(int64(w)), storage.Tuple{
			storage.Str(fmt.Sprintf("wh-%03d", w)),
			storage.Str(randStr(rng, 10, 20)),
			storage.Str(randStr(rng, 10, 20)),
			storage.Str("ST"),
			storage.Str("123456789"),
			storage.Int(int64(rng.Intn(2001))), // tax: 0-20.00%
			// ytd: $30,000 per district so W_YTD = Σ D_YTD holds at
			// load time (consistency condition 1).
			storage.Int(3000000 * int64(cfg.DistrictsPerW)),
		}, 0)

		for i := 1; i <= cfg.Items; i++ {
			stock.Put(StockKey(int64(w), int64(i)), storage.Tuple{
				storage.Int(int64(10 + rng.Intn(91))), // quantity 10-100
				storage.Int(0),                        // ytd
				storage.Int(0),                        // order_cnt
				storage.Int(0),                        // remote_cnt
				storage.Str(randStr(rng, 24, 24)),     // dist_all
				storage.Str(randStr(rng, 26, 50)),     // data
			}, 0)
		}

		for d := 1; d <= cfg.DistrictsPerW; d++ {
			nextOID := int64(cfg.InitOrdersPerDist + 1)
			district.Put(DistrictKey(int64(w), int64(d)), storage.Tuple{
				storage.Str(fmt.Sprintf("dist-%03d-%02d", w, d)),
				storage.Str(randStr(rng, 10, 20)),
				storage.Str(randStr(rng, 10, 20)),
				storage.Str("ST"),
				storage.Str("123456789"),
				storage.Int(int64(rng.Intn(2001))),
				storage.Int(3000000), // ytd: $30,000
				storage.Int(nextOID),
			}, 0)

			for c := 1; c <= cfg.CustomersPerDistrict; c++ {
				credit := "GC"
				if rng.Intn(10) == 0 {
					credit = "BC"
				}
				customer.Put(CustomerKey(int64(w), int64(d), int64(c)), storage.Tuple{
					storage.Str(randStr(rng, 8, 16)),   // first
					storage.Str("OE"),                  // middle
					storage.Str(lastNameFor(rng, c)),   // last
					storage.Str(randStr(rng, 10, 20)),  // street
					storage.Str(randStr(rng, 10, 20)),  // city
					storage.Str("ST"),                  // state
					storage.Str("123456789"),           // zip
					storage.Str("0123456789012345"),    // phone
					storage.Int(0),                     // since
					storage.Str(credit),                // credit
					storage.Int(5000000),               // credit_lim: $50,000
					storage.Int(int64(rng.Intn(5001))), // discount: 0-50.00%
					storage.Int(-1000),                 // balance: -$10.00
					storage.Int(1000),                  // ytd_payment: $10.00
					storage.Int(1),                     // payment_cnt
					storage.Int(0),                     // delivery_cnt
					storage.Str(randStr(rng, 30, 60)),  // data
				}, 0)
			}

			// Initial orders: the most recent 30% stay undelivered
			// (present in NEW_ORDER), matching the spec's 2101-3000
			// window proportionally.
			undeliveredFrom := cfg.InitOrdersPerDist - cfg.InitOrdersPerDist*3/10 + 1
			perm := rng.Perm(cfg.CustomersPerDistrict)
			for o := 1; o <= cfg.InitOrdersPerDist; o++ {
				cid := int64(perm[(o-1)%cfg.CustomersPerDistrict] + 1)
				olCnt := int64(5 + rng.Intn(11))
				carrier := int64(1 + rng.Intn(10))
				delivered := o < undeliveredFrom
				if !delivered {
					carrier = 0
				}
				orders.Put(OrderKey(int64(w), int64(d), int64(o)), storage.Tuple{
					storage.Int(cid),
					storage.Int(int64(o)), // entry_d
					storage.Int(carrier),
					storage.Int(olCnt),
					storage.Int(1),
				}, 0)
				if !delivered {
					newOrder.Put(NewOrderKey(int64(w), int64(d), int64(o)), storage.Tuple{
						storage.Int(int64(o)),
					}, 0)
				}
				for ol := int64(1); ol <= olCnt; ol++ {
					amount := int64(0)
					deliveryD := int64(o)
					if !delivered {
						amount = int64(1 + rng.Intn(999999))
						deliveryD = 0
					}
					orderLine.Put(OrderLineKey(int64(w), int64(d), int64(o), ol), storage.Tuple{
						storage.Int(int64(1 + rng.Intn(cfg.Items))),
						storage.Int(int64(w)),
						storage.Int(deliveryD),
						storage.Int(5),
						storage.Int(amount),
						storage.Str(randStr(rng, 24, 24)),
					}, 0)
				}
			}
		}
	}
	return nil
}
