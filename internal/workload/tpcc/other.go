package tpcc

import (
	"fmt"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// OrderStatus argument layout:
//
//	0: w, 1: d, 2: c (0 when by name), 3: last ("" when by id)
func orderStatusSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcOrderStatus,
		Params: []string{"w", "d", "c", "last"},
		Plan: func(b *proc.Builder, args *proc.Env) {
			if args.Str("last") != "" {
				b.Op(proc.Op{
					Name:     "resolveByName",
					KeyReads: []string{"w", "d", "last"},
					Writes:   []string{"cid"},
					Body:     resolveCustomerByName("w", "d"),
				})
			} else {
				b.Op(proc.Op{
					Name:     "resolveById",
					ValReads: []string{"c"},
					Writes:   []string{"cid"},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						e.SetInt("cid", e.Int("c"))
						return nil
					},
				})
			}
			b.Op(proc.Op{
				Name:     "readCustomer",
				KeyReads: []string{"w", "d", "cid"},
				Writes:   []string{"cbal"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read(TabCustomer, CustomerKey(e.Int("w"), e.Int("d"), e.Int("cid")),
						[]int{CFirst, CMiddle, CLast, CBalanceCents})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such customer")
					}
					e.SetVal("cbal", row[CBalanceCents])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "lastOrder",
				KeyReads: []string{"w", "d", "cid"},
				Writes:   []string{"oid", "found"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					prefix := fmt.Sprintf("%05d|%03d|%06d|", e.Int("w"), e.Int("d"), e.Int("cid"))
					var last storage.Key
					found := int64(0)
					err := ctx.ScanSec(TabOrders, IdxOrderCustomer, prefix, prefix+"\xff", 0,
						func(pk storage.Key, _ storage.Tuple) bool {
							last, found = pk, 1
							return true
						})
					if err != nil {
						return err
					}
					oid := int64(0)
					if found == 1 {
						_, _, oid = SplitOrderKey(last)
					}
					e.SetInt("oid", oid)
					e.SetInt("found", found)
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "readOrder",
				KeyReads: []string{"w", "d", "oid", "found"},
				Writes:   []string{"carrier"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					if e.Int("found") == 0 {
						e.SetInt("carrier", 0)
						return nil
					}
					row, ok, err := ctx.Read(TabOrders, OrderKey(e.Int("w"), e.Int("d"), e.Int("oid")),
						[]int{OCarrierID, OEntryD})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("order vanished")
					}
					e.SetVal("carrier", row[OCarrierID])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "readLines",
				KeyReads: []string{"w", "d", "oid", "found"},
				Writes:   []string{"lines"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					if e.Int("found") == 0 {
						e.SetInt("lines", 0)
						return nil
					}
					lines := int64(0)
					err := ctx.Scan(TabOrderLine,
						OrderLineKey(e.Int("w"), e.Int("d"), e.Int("oid"), 0),
						OrderLineKey(e.Int("w"), e.Int("d"), e.Int("oid"), 255), 0,
						func(_ storage.Key, _ storage.Tuple) bool {
							lines++
							return true
						})
					if err != nil {
						return err
					}
					e.SetInt("lines", lines)
					return nil
				},
			})
		},
	}
}

// Delivery argument layout:
//
//	0: w, 1: carrier, 2: delivery_d, 3: districts
//
// Delivery processes every district of the warehouse in one
// transaction: pop the oldest undelivered order, mark it delivered,
// stamp its lines, and credit the customer. It is the paper's most
// dependency-heavy procedure (Fig. 15b): each district forms a chain
// oldest→order→lines→customer of key dependencies.
func deliverySpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcDelivery,
		Params: []string{"w", "carrier", "delivery_d", "districts"},
		Plan: func(b *proc.Builder, args *proc.Env) {
			districts := int(args.Int("districts"))
			for d := 1; d <= districts; d++ {
				d := int64(d)
				oidVar := fmt.Sprintf("oid%d", d)
				foundVar := fmt.Sprintf("found%d", d)
				cidVar := fmt.Sprintf("cid%d", d)
				cntVar := fmt.Sprintf("olcnt%d", d)
				sumVar := fmt.Sprintf("sum%d", d)

				b.Op(proc.Op{
					Name:     fmt.Sprintf("oldestNO%d", d),
					KeyReads: []string{"w"},
					Writes:   []string{oidVar, foundVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						k, _, ok, err := ctx.ScanMin(TabNewOrder,
							NewOrderKey(e.Int("w"), d, 0),
							NewOrderKey(e.Int("w"), d, (1<<24)-1))
						if err != nil {
							return err
						}
						oid := int64(0)
						found := int64(0)
						if ok {
							_, _, oid = SplitOrderKey(k)
							found = 1
						}
						e.SetInt(oidVar, oid)
						e.SetInt(foundVar, found)
						return nil
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("deleteNO%d", d),
					KeyReads: []string{"w", oidVar, foundVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						if e.Int(foundVar) == 0 {
							return nil
						}
						return ctx.Delete(TabNewOrder, NewOrderKey(e.Int("w"), d, e.Int(oidVar)))
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("readOrder%d", d),
					KeyReads: []string{"w", oidVar, foundVar},
					Writes:   []string{cidVar, cntVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						if e.Int(foundVar) == 0 {
							e.SetInt(cidVar, 0)
							e.SetInt(cntVar, 0)
							return nil
						}
						row, ok, err := ctx.Read(TabOrders, OrderKey(e.Int("w"), d, e.Int(oidVar)),
							[]int{OCID, OOLCnt})
						if err != nil {
							return err
						}
						if !ok {
							return proc.UserAbort("order vanished during delivery")
						}
						e.SetVal(cidVar, row[OCID])
						e.SetVal(cntVar, row[OOLCnt])
						return nil
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("stampOrder%d", d),
					KeyReads: []string{"w", oidVar, foundVar},
					ValReads: []string{"carrier"},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						if e.Int(foundVar) == 0 {
							return nil
						}
						return ctx.Write(TabOrders, OrderKey(e.Int("w"), d, e.Int(oidVar)),
							[]int{OCarrierID}, []storage.Value{storage.Int(e.Int("carrier"))})
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("stampLines%d", d),
					KeyReads: []string{"w", oidVar, foundVar, cntVar},
					ValReads: []string{"delivery_d"},
					Writes:   []string{sumVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						var sum int64
						if e.Int(foundVar) == 1 {
							for ol := int64(1); ol <= e.Int(cntVar); ol++ {
								key := OrderLineKey(e.Int("w"), d, e.Int(oidVar), ol)
								row, ok, err := ctx.Read(TabOrderLine, key, []int{OLAmountCents})
								if err != nil {
									return err
								}
								if !ok {
									return proc.UserAbort("order line vanished during delivery")
								}
								sum += row[OLAmountCents].Int()
								if err := ctx.Write(TabOrderLine, key,
									[]int{OLDeliveryD}, []storage.Value{storage.Int(e.Int("delivery_d"))}); err != nil {
									return err
								}
							}
						}
						e.SetInt(sumVar, sum)
						return nil
					},
				})
				b.Op(proc.Op{
					Name:     fmt.Sprintf("creditCustomer%d", d),
					KeyReads: []string{"w", cidVar, foundVar},
					ValReads: []string{sumVar},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						if e.Int(foundVar) == 0 {
							return nil
						}
						key := CustomerKey(e.Int("w"), d, e.Int(cidVar))
						row, ok, err := ctx.Read(TabCustomer, key, []int{CBalanceCents, CDeliveryCnt})
						if err != nil {
							return err
						}
						if !ok {
							return proc.UserAbort("no such customer")
						}
						return ctx.Write(TabCustomer, key,
							[]int{CBalanceCents, CDeliveryCnt},
							[]storage.Value{
								storage.Int(row[CBalanceCents].Int() + e.Int(sumVar)),
								storage.Int(row[CDeliveryCnt].Int() + 1),
							})
					},
				})
			}
		},
	}
}

// StockLevel argument layout:
//
//	0: w, 1: d, 2: threshold, 3: orders (how many recent orders to
//	examine; the spec uses 20)
func stockLevelSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcStockLevel,
		Params: []string{"w", "d", "threshold", "orders"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "readDistrict",
				KeyReads: []string{"w", "d"},
				Writes:   []string{"oid"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read(TabDistrict, DistrictKey(e.Int("w"), e.Int("d")), []int{DNextOID})
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such district")
					}
					e.SetVal("oid", row[DNextOID])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "recentLines",
				KeyReads: []string{"w", "d", "oid", "orders"},
				Writes:   []string{"items"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					lo := e.Int("oid") - e.Int("orders")
					if lo < 0 {
						lo = 0
					}
					var items []storage.Value
					err := ctx.Scan(TabOrderLine,
						OrderLineKey(e.Int("w"), e.Int("d"), lo, 0),
						OrderLineKey(e.Int("w"), e.Int("d"), e.Int("oid")-1, 255), 0,
						func(_ storage.Key, row storage.Tuple) bool {
							items = append(items, row[OLIID])
							return true
						})
					if err != nil {
						return err
					}
					e.SetVals("items", items)
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "countLow",
				KeyReads: []string{"w", "items"},
				ValReads: []string{"threshold"},
				Writes:   []string{"low"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					seen := map[int64]bool{}
					low := int64(0)
					for _, it := range e.Vals("items") {
						iid := it.Int()
						if seen[iid] {
							continue
						}
						seen[iid] = true
						row, ok, err := ctx.Read(TabStock, StockKey(e.Int("w"), iid), []int{SQuantity})
						if err != nil {
							return err
						}
						if ok && row[SQuantity].Int() < e.Int("threshold") {
							low++
						}
					}
					e.SetInt("low", low)
					return nil
				},
			})
		},
	}
}

// Specs returns all five TPC-C stored procedures.
func Specs() []*proc.Spec {
	return []*proc.Spec{
		newOrderSpec(),
		paymentSpec(),
		orderStatusSpec(),
		deliverySpec(),
		stockLevelSpec(),
	}
}
