package ycsb

import (
	"strings"
	"sync"
	"testing"

	"thedb/internal/core"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

func build(t *testing.T, n int, p core.Protocol) *core.Engine {
	t.Helper()
	cat := storage.NewCatalog()
	cat.MustCreateTable(Schema())
	if err := Populate(cat, n, 8); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat, core.Options{Protocol: p, Workers: 4, Interleave: true})
	for _, s := range Specs() {
		e.MustRegister(s)
	}
	return e
}

func TestAllProceduresIndependent(t *testing.T) {
	args := map[string][]storage.Value{
		ProcRead:   {storage.Int(1)},
		ProcUpdate: {storage.Int(1), storage.Int(0), storage.Str("x")},
		ProcInsert: {storage.Int(99), storage.Str("x")},
		ProcScan:   {storage.Int(0), storage.Int(5)},
		ProcRMW:    {storage.Int(1), storage.Int(0), storage.Str("x")},
	}
	for _, s := range Specs() {
		env := proc.NewEnv()
		for i, a := range args[s.Name] {
			env.SetVal(s.Params[i], a)
		}
		prog := s.Instantiate(env)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !prog.Independent {
			t.Errorf("%s classified dependent", s.Name)
		}
	}
}

func TestBasicOps(t *testing.T) {
	e := build(t, 50, core.Healing)
	w := e.Worker(0)

	env, err := w.Run(ProcRead, storage.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if env.Str("f0") == "" {
		t.Fatal("read returned empty field")
	}
	if _, err := w.Run(ProcUpdate, storage.Int(3), storage.Int(0), storage.Str("updated")); err != nil {
		t.Fatal(err)
	}
	env, _ = w.Run(ProcRead, storage.Int(3))
	if env.Str("f0") != "updated" {
		t.Fatalf("f0 = %q after update", env.Str("f0"))
	}
	if _, err := w.Run(ProcInsert, storage.Int(1000), storage.Str("new")); err != nil {
		t.Fatal(err)
	}
	env, err = w.Run(ProcScan, storage.Int(0), storage.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("rows") != 10 {
		t.Fatalf("scan rows = %d", env.Int("rows"))
	}
	if _, err := w.Run(ProcRMW, storage.Int(3), storage.Int(1), storage.Str("chained")); err != nil {
		t.Fatal(err)
	}
	env, _ = w.Run(ProcRead, storage.Int(3))
	_ = env
}

// TestRMWNoLostUpdates hammers one hot record with chained RMWs from
// all workers under every protocol; the chain depth in the final
// value must equal the committed RMW count (a lost update breaks the
// chain).
func TestRMWNoLostUpdates(t *testing.T) {
	for _, p := range []core.Protocol{core.Healing, core.OCC, core.Silo, core.TPL} {
		t.Run(p.String(), func(t *testing.T) {
			const perWorker = 150
			e := build(t, 10, p)
			e.Start()
			defer e.Stop()
			cat := e.Catalog()
			tab, _ := cat.Table(TabUser)
			// Reset field 0 to a marker.
			rec, _ := tab.Peek(0)
			tup := rec.Tuple().Clone()
			tup[0] = storage.Str("base")
			rec.SetTuple(tup)

			// Count commits via a counter-style chain: every RMW on
			// field 0 of key 0 prepends its tag.
			var wg sync.WaitGroup
			for wi := 0; wi < 4; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					w := e.Worker(wi)
					for i := 0; i < perWorker; i++ {
						if _, err := w.Run(ProcRMW, storage.Int(0), storage.Int(0), storage.Str("t")); err != nil {
							t.Error(err)
							return
						}
					}
				}(wi)
			}
			wg.Wait()
			rec, _ = tab.Peek(0)
			v := rec.Tuple()[0].Str()
			// Value is "t|t|t|...t|<truncated old>"; with truncation at
			// 64 chars we cannot count the whole chain, but each commit
			// must have observed the previous value: verify the prefix
			// structure and that at least the last writes chained.
			if !strings.HasPrefix(v, "t|") {
				t.Fatalf("final value %q lacks the chain structure", v)
			}
			m := e.Metrics(0)
			if m.Committed != 4*perWorker {
				t.Fatalf("committed = %d, want %d", m.Committed, 4*perWorker)
			}
		})
	}
}

func TestGenMixes(t *testing.T) {
	counts := map[string]int{}
	g := NewGen(WorkloadA, 100, 0.5, 0)
	for i := 0; i < 2000; i++ {
		p, args := g.Next()
		counts[p]++
		if len(args) == 0 {
			t.Fatal("empty args")
		}
	}
	if counts[ProcRead] < 800 || counts[ProcUpdate] < 800 {
		t.Fatalf("workload A mix skewed: %v", counts)
	}
	if counts[ProcInsert]+counts[ProcScan]+counts[ProcRMW] != 0 {
		t.Fatalf("workload A produced foreign ops: %v", counts)
	}

	counts = map[string]int{}
	g = NewGen(WorkloadE, 100, 0.5, 1)
	seenKeys := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		p, args := g.Next()
		counts[p]++
		if p == ProcInsert {
			k := args[0].Int()
			if seenKeys[k] {
				t.Fatalf("insert key %d repeated", k)
			}
			seenKeys[k] = true
		}
	}
	if counts[ProcScan] < 1700 {
		t.Fatalf("workload E mix skewed: %v", counts)
	}
}

// TestConcurrentWorkloadARunsCleanUnderHealing: update-heavy skewed
// traffic must never restart under healing (independent txns).
func TestConcurrentWorkloadARunsCleanUnderHealing(t *testing.T) {
	e := build(t, 100, core.Healing)
	e.Start()
	defer e.Stop()
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			g := NewGen(WorkloadA, 100, 0.9, wi)
			w := e.Worker(wi)
			for i := 0; i < 300; i++ {
				p, args := g.Next()
				if _, err := w.Run(p, args...); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	m := e.Metrics(0)
	if m.Restarts != 0 {
		t.Fatalf("healing restarted %d independent YCSB transactions", m.Restarts)
	}
	if m.Committed != 4*300 {
		t.Fatalf("committed = %d", m.Committed)
	}
}
