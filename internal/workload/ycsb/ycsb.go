// Package ycsb implements the YCSB core workloads over THEDB's
// stored-procedure IR: one USERTABLE with F value fields, point
// reads, field updates, inserts, short scans and read-modify-writes,
// with Zipfian-skewed key choice.
//
// The healing paper evaluates on TPC-C and Smallbank; YCSB is the
// third standard benchmark of this literature (Silo's evaluation uses
// it) and rounds out the workload suite for downstream users. All
// YCSB procedures are independent transactions (§4.6) — their keys
// come straight from the arguments — so like Smallbank they can never
// abort under transaction healing.
package ycsb

import (
	"fmt"
	"math/rand"

	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/workload/zipf"
)

// Table and layout.
const (
	TabUser = "USERTABLE"
	// Fields is the number of value columns (YCSB default is 10).
	Fields = 10
)

// Procedure names.
const (
	ProcRead   = "YCSBRead"
	ProcUpdate = "YCSBUpdate"
	ProcInsert = "YCSBInsert"
	ProcScan   = "YCSBScan"
	ProcRMW    = "YCSBReadModifyWrite"
	// ProcSnapScan is the analytics long scan: it reads a large key
	// range and aggregates without writing. Dispatchers run it on the
	// snapshot path (Session.RunSnapshot / Client.CallSnapshot), where
	// it commits with zero validation and cannot invalidate writers no
	// matter how many records it touches.
	ProcSnapScan = "YCSBSnapshotScan"
)

// IsReadOnly reports whether a procedure belongs on the snapshot
// (read-only, zero-validation) dispatch path rather than the
// healing-validated read-write path.
func IsReadOnly(name string) bool { return name == ProcSnapScan }

// Schema returns the USERTABLE schema.
func Schema() storage.Schema {
	cols := make([]storage.ColumnDef, Fields)
	for i := range cols {
		cols[i] = storage.ColumnDef{Name: fmt.Sprintf("field%d", i), Kind: storage.KindString}
	}
	return storage.Schema{
		Name:    TabUser,
		Columns: cols,
		Ordered: true,
	}
}

// Populate loads n records with deterministic field payloads.
func Populate(cat *storage.Catalog, n int, fieldLen int) error {
	tab, ok := cat.Table(TabUser)
	if !ok {
		return fmt.Errorf("ycsb: catalog missing %s", TabUser)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < n; k++ {
		tab.Put(storage.Key(k), randomRow(rng, fieldLen), 0)
	}
	return nil
}

func randomRow(rng *rand.Rand, fieldLen int) storage.Tuple {
	t := make(storage.Tuple, Fields)
	for i := range t {
		b := make([]byte, fieldLen)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		t[i] = storage.Str(string(b))
	}
	return t
}

// Specs returns the six YCSB stored procedures.
func Specs() []*proc.Spec {
	return []*proc.Spec{readSpec(), updateSpec(), insertSpec(), scanSpec(), rmwSpec(), snapScanSpec()}
}

// readSpec: read all fields of one record.
func readSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcRead,
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "read",
				KeyReads: []string{"k"},
				Writes:   []string{"f0"},
				Body: func(ctx proc.OpCtx) error {
					row, ok, err := ctx.Read(TabUser, storage.Key(ctx.Env().Int("k")), nil)
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such record")
					}
					ctx.Env().SetVal("f0", row[0])
					return nil
				},
			})
		},
	}
}

// updateSpec: overwrite one field of one record.
func updateSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcUpdate,
		Params: []string{"k", "field", "value"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "update",
				KeyReads: []string{"k"},
				ValReads: []string{"field", "value"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write(TabUser, storage.Key(e.Int("k")),
						[]int{int(e.Int("field")) % Fields},
						[]storage.Value{storage.Str(e.Str("value"))})
				},
			})
		},
	}
}

// insertSpec: create a record whose fields all carry value.
func insertSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcInsert,
		Params: []string{"k", "value"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "insert",
				KeyReads: []string{"k"},
				ValReads: []string{"value"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					t := make(storage.Tuple, Fields)
					for i := range t {
						t[i] = storage.Str(e.Str("value"))
					}
					return ctx.Insert(TabUser, storage.Key(e.Int("k")), t)
				},
			})
		},
	}
}

// scanSpec: scan up to count records starting at k, counting rows.
func scanSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcScan,
		Params: []string{"k", "count"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "scan",
				KeyReads: []string{"k", "count"},
				Writes:   []string{"rows"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					var rows int64
					err := ctx.Scan(TabUser, storage.Key(e.Int("k")), ^storage.Key(0),
						int(e.Int("count")), func(storage.Key, storage.Tuple) bool {
							rows++
							return true
						})
					if err != nil {
						return err
					}
					e.SetInt("rows", rows)
					return nil
				},
			})
		},
	}
}

// snapScanSpec: aggregate over up to count records starting at k —
// row count plus total bytes in field0. Read-only by construction
// (snapshot OpCtx rejects writes), sized for analytics: callers pass
// counts in the hundreds or thousands where an OCC scan's read set
// would make it a near-certain validation victim under write churn.
func snapScanSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcSnapScan,
		Params: []string{"k", "count"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "snapscan",
				KeyReads: []string{"k", "count"},
				Writes:   []string{"rows", "bytes"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					var rows, bytes int64
					err := ctx.Scan(TabUser, storage.Key(e.Int("k")), ^storage.Key(0),
						int(e.Int("count")), func(_ storage.Key, t storage.Tuple) bool {
							rows++
							bytes += int64(len(t[0].Str()))
							return true
						})
					if err != nil {
						return err
					}
					e.SetInt("rows", rows)
					e.SetInt("bytes", bytes)
					return nil
				},
			})
		},
	}
}

// rmwSpec: read all fields, then overwrite one (YCSB workload F).
func rmwSpec() *proc.Spec {
	return &proc.Spec{
		Name:   ProcRMW,
		Params: []string{"k", "field", "value"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "read",
				KeyReads: []string{"k"},
				Writes:   []string{"old"},
				Body: func(ctx proc.OpCtx) error {
					row, ok, err := ctx.Read(TabUser, storage.Key(ctx.Env().Int("k")), nil)
					if err != nil {
						return err
					}
					if !ok {
						return proc.UserAbort("no such record")
					}
					ctx.Env().SetVal("old", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "write",
				KeyReads: []string{"k"},
				ValReads: []string{"field", "value", "old"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					// Append semantics make lost updates detectable:
					// the new value chains onto the one read.
					v := e.Str("old")
					if len(v) > 64 {
						v = v[:64]
					}
					return ctx.Write(TabUser, storage.Key(e.Int("k")),
						[]int{int(e.Int("field")) % Fields},
						[]storage.Value{storage.Str(e.Str("value") + "|" + v)})
				},
			})
		},
	}
}

// Workload mixes, as YCSB letters: proportions of read/update/insert/
// scan/rmw in percent.
type Mix struct {
	ReadPct, UpdatePct, InsertPct, ScanPct, RMWPct int
	// SnapScanPct is the share of snapshot long scans (ProcSnapScan),
	// dispatched on the read-only snapshot path.
	SnapScanPct int
}

// Standard mixes.
var (
	// WorkloadA is update-heavy: 50/50 read/update.
	WorkloadA = Mix{ReadPct: 50, UpdatePct: 50}
	// WorkloadB is read-mostly: 95/5.
	WorkloadB = Mix{ReadPct: 95, UpdatePct: 5}
	// WorkloadC is read-only.
	WorkloadC = Mix{ReadPct: 100}
	// WorkloadE is scan-heavy: 95 scan / 5 insert.
	WorkloadE = Mix{ScanPct: 95, InsertPct: 5}
	// WorkloadF is read-modify-write: 50 read / 50 RMW.
	WorkloadF = Mix{ReadPct: 50, RMWPct: 50}
	// WorkloadSnap is read-mostly OLTP with analytics riding along:
	// 70 point reads / 25 updates keep the write churn real while 5%
	// snapshot long scans sweep hundreds of records each. The scans
	// run on the zero-validation snapshot path, so unlike an OCC scan
	// mix (workload E) they neither abort nor invalidate the writers.
	WorkloadSnap = Mix{ReadPct: 70, UpdatePct: 25, SnapScanPct: 5}
)

// Gen draws requests for one worker.
type Gen struct {
	mix     Mix
	rng     *rand.Rand
	zg      *zipf.Generator
	n       int
	nextIns int64
	worker  int64
}

// NewGen builds a generator over n records with the given skew.
func NewGen(mix Mix, n int, theta float64, worker int) *Gen {
	return &Gen{
		mix:     mix,
		rng:     rand.New(rand.NewSource(int64(worker)*104729 + 3)),
		zg:      zipf.New(uint64(n), theta),
		n:       n,
		worker:  int64(worker),
		nextIns: 1,
	}
}

// Next draws one request: procedure name plus arguments.
func (g *Gen) Next() (string, []storage.Value) {
	key := storage.Int(int64(g.zg.Next(g.rng.Float64())))
	field := storage.Int(int64(g.rng.Intn(Fields)))
	val := storage.Str(fmt.Sprintf("w%d-%d", g.worker, g.rng.Int31()))
	p := g.rng.Intn(100)
	m := g.mix
	switch {
	case p < m.ReadPct:
		return ProcRead, []storage.Value{key}
	case p < m.ReadPct+m.UpdatePct:
		return ProcUpdate, []storage.Value{key, field, val}
	case p < m.ReadPct+m.UpdatePct+m.InsertPct:
		// Unique keys above the populated range, per worker.
		g.nextIns++
		k := int64(g.n) + g.worker<<32 + g.nextIns
		return ProcInsert, []storage.Value{storage.Int(k), val}
	case p < m.ReadPct+m.UpdatePct+m.InsertPct+m.ScanPct:
		return ProcScan, []storage.Value{key, storage.Int(int64(1 + g.rng.Intn(20)))}
	case p < m.ReadPct+m.UpdatePct+m.InsertPct+m.ScanPct+m.SnapScanPct:
		// Long scans start at a uniform key so they sweep cold and hot
		// ranges alike; length 200-1000 rows dwarfs the OCC scan cap.
		start := storage.Int(int64(g.rng.Intn(g.n)))
		return ProcSnapScan, []storage.Value{start, storage.Int(int64(200 + g.rng.Intn(801)))}
	default:
		return ProcRMW, []storage.Value{key, field, val}
	}
}
