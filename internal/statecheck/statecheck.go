// Package statecheck supplies the model side of the crash-recovery
// torture harness: a deterministic sequential workload model whose
// state after any prefix of operations is computable by a trivially
// correct map fold, plus a crashing sink wrapper that kills all WAL
// streams at one byte-budget instant the way a power failure does.
//
// The harness (recovery_torture_test.go at the repo root) runs the
// same operations through the real engine with durability on, crashes
// it at an arbitrary point — mid WAL write, mid checkpoint publish,
// mid truncation — recovers from disk, reads back how many operations
// survived, and diffs the recovered tables against the model's state
// after exactly that prefix. Any partial transaction, lost acked
// commit or resurrected dropped group shows up as a divergence.
package statecheck

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// OpKind discriminates model operations.
type OpKind uint8

// Operations: blind put and read-modify-write increment — the two
// shapes whose interleaving detects both lost writes (a missing Put
// leaves a stale value) and partial replay (an Inc applied twice or
// half is arithmetically visible forever after).
const (
	OpPut OpKind = iota
	OpInc
)

// Op is one model operation against an integer key space.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  int64
}

// GenOps derives n operations over keys distinct keys from seed,
// deterministically: the same seed always yields the same workload,
// so a failing torture seed replays exactly.
func GenOps(seed int64, n, keys int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Kind: OpKind(rng.Intn(2)),
			Key:  uint64(rng.Intn(keys)),
			Val:  int64(rng.Intn(100)) - 20,
		}
	}
	return ops
}

// StateAfter folds the first k operations into the reference state:
// exactly what the database must hold if (and only if) operations
// [0, k) committed and nothing else.
func StateAfter(ops []Op, k int) map[uint64]int64 {
	st := make(map[uint64]int64)
	if k > len(ops) {
		k = len(ops)
	}
	for _, op := range ops[:k] {
		switch op.Kind {
		case OpPut:
			st[op.Key] = op.Val
		case OpInc:
			st[op.Key] += op.Val
		}
	}
	return st
}

// ErrCrashed is what a tripped sink's Sync returns: the device is
// gone, and no amount of retrying brings it back.
var ErrCrashed = errors.New("statecheck: simulated disk crash")

// Crasher models a whole-machine power failure for a set of log
// sinks: every wrapped stream shares one byte budget, and the moment
// it is exhausted (or TripNow is called) all streams die at once.
//
// Semantics after the trip mirror a dead disk behind a live page
// cache: Write swallows the bytes and reports success — exactly the
// lie the kernel tells about buffered writes that will never reach
// the platter — while Sync fails hard, so the engine's durability
// frontier freezes at what actually hit "disk" and the durability-
// lost latch engages. The write that crosses the budget boundary
// forwards only the bytes that fit, leaving the torn frame a real
// crash leaves.
type Crasher struct {
	mu      sync.Mutex
	budget  int64 // bytes until auto-trip; 0 = only TripNow trips
	tripped bool
}

// NewCrasher builds a crasher that trips after budget bytes across
// all wrapped sinks (budget 0: never auto-trips; use TripNow).
func NewCrasher(budget int64) *Crasher {
	return &Crasher{budget: budget}
}

// TripNow kills the device immediately.
func (c *Crasher) TripNow() {
	c.mu.Lock()
	c.tripped = true
	c.mu.Unlock()
}

// Tripped reports whether the device has died.
func (c *Crasher) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// Wrap interposes the crasher on one underlying sink (a file).
func (c *Crasher) Wrap(w io.Writer) io.Writer {
	return &crashSink{c: c, w: w}
}

type crashSink struct {
	c *Crasher
	w io.Writer
}

func (s *crashSink) Write(p []byte) (int, error) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.tripped {
		return len(p), nil
	}
	if s.c.budget > 0 {
		if int64(len(p)) >= s.c.budget {
			fit := s.c.budget
			s.c.tripped = true
			s.c.budget = 0
			if _, err := s.w.Write(p[:fit]); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		s.c.budget -= int64(len(p))
	}
	if _, err := s.w.Write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Sync forwards to the underlying sink until the trip, then fails
// with ErrCrashed forever.
func (s *crashSink) Sync() error {
	s.c.mu.Lock()
	tripped := s.c.tripped
	s.c.mu.Unlock()
	if tripped {
		return ErrCrashed
	}
	if sy, ok := s.w.(interface{ Sync() error }); ok {
		return sy.Sync()
	}
	return nil
}
