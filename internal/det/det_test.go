package det

import (
	"strings"
	"sync"
	"testing"
	"time"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

func counterEngine(t *testing.T, partitions, workers, keysPerPart int) (*Engine, *storage.Table) {
	t.Helper()
	cat := storage.NewCatalog()
	tab := cat.MustCreateTable(storage.Schema{
		Name:    "C",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	for k := 0; k < partitions*keysPerPart; k++ {
		tab.Put(storage.Key(k), storage.Tuple{storage.Int(0)}, 0)
	}
	e := NewEngine(cat, partitions, workers)
	e.MustRegister(&Proc{
		Spec: &proc.Spec{
			Name:   "Incr",
			Params: []string{"k"},
			Plan: func(b *proc.Builder, _ *proc.Env) {
				b.Op(proc.Op{
					Name:     "rmw",
					KeyReads: []string{"k"},
					Body: func(ctx proc.OpCtx) error {
						e := ctx.Env()
						row, ok, err := ctx.Read("C", storage.Key(e.Int("k")), nil)
						if err != nil {
							return err
						}
						if !ok {
							return proc.UserAbort("no such counter")
						}
						return ctx.Write("C", storage.Key(e.Int("k")), []int{0},
							[]storage.Value{storage.Int(row[0].Int() + 1)})
					},
				})
			},
		},
		Home: func(args []storage.Value) []int {
			return []int{int(args[0].Int()) % partitions}
		},
	})
	e.MustRegister(&Proc{
		Spec: &proc.Spec{
			Name:   "IncrBoth",
			Params: []string{"a", "b"},
			Plan: func(b *proc.Builder, _ *proc.Env) {
				for _, name := range []string{"a", "b"} {
					name := name
					b.Op(proc.Op{
						Name:     "rmw" + name,
						KeyReads: []string{name},
						Body: func(ctx proc.OpCtx) error {
							e := ctx.Env()
							row, _, err := ctx.Read("C", storage.Key(e.Int(name)), nil)
							if err != nil {
								return err
							}
							return ctx.Write("C", storage.Key(e.Int(name)), []int{0},
								[]storage.Value{storage.Int(row[0].Int() + 1)})
						},
					})
				}
			},
		},
		Home: func(args []storage.Value) []int {
			return []int{int(args[0].Int()) % partitions, int(args[1].Int()) % partitions}
		},
	})
	e.MustRegister(&Proc{
		Spec: &proc.Spec{
			Name:   "FailAfterWrite",
			Params: []string{"k"},
			Plan: func(b *proc.Builder, _ *proc.Env) {
				b.Op(proc.Op{
					Name:     "write",
					KeyReads: []string{"k"},
					Body: func(ctx proc.OpCtx) error {
						return ctx.Write("C", storage.Key(ctx.Env().Int("k")), []int{0},
							[]storage.Value{storage.Int(999)})
					},
				})
				b.Op(proc.Op{
					Name: "boom",
					Body: func(proc.OpCtx) error { return proc.UserAbort("boom") },
				})
			},
		},
		Home: func(args []storage.Value) []int {
			return []int{int(args[0].Int()) % partitions}
		},
	})
	return e, tab
}

func TestSerialPerPartition(t *testing.T) {
	const (
		partitions = 4
		workers    = 4
		txns       = 500
	)
	e, tab := counterEngine(t, partitions, workers, 1)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			for i := 0; i < txns; i++ {
				// Everyone increments every partition's counter.
				if _, err := w.Run("Incr", storage.Int(int64(i%partitions))); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for k := 0; k < partitions; k++ {
		rec, _ := tab.Peek(storage.Key(k))
		want := int64(workers * txns / partitions)
		if got := rec.Tuple()[0].Int(); got != want {
			t.Errorf("counter %d = %d, want %d (partition serialization broken)", k, got, want)
		}
	}
}

func TestCrossPartitionAtomicity(t *testing.T) {
	const (
		partitions = 2
		workers    = 4
		txns       = 400
	)
	e, tab := counterEngine(t, partitions, workers, 1)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			for i := 0; i < txns; i++ {
				if _, err := w.Run("IncrBoth", storage.Int(0), storage.Int(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	r0, _ := tab.Peek(0)
	r1, _ := tab.Peek(1)
	if r0.Tuple()[0].Int() != r1.Tuple()[0].Int() {
		t.Fatalf("cross-partition counters diverged: %d vs %d",
			r0.Tuple()[0].Int(), r1.Tuple()[0].Int())
	}
	if got := r0.Tuple()[0].Int(); got != workers*txns {
		t.Fatalf("counter = %d, want %d", got, workers*txns)
	}
}

func TestRollbackRestoresPreImages(t *testing.T) {
	e, tab := counterEngine(t, 1, 1, 1)
	w := e.Worker(0)
	if _, err := w.Run("Incr", storage.Int(0)); err != nil {
		t.Fatal(err)
	}
	_, err := w.Run("FailAfterWrite", storage.Int(0))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected user abort, got %v", err)
	}
	rec, _ := tab.Peek(0)
	if got := rec.Tuple()[0].Int(); got != 1 {
		t.Fatalf("counter = %d after rollback, want 1", got)
	}
	m := w.Metrics()
	if m.Committed != 1 || m.Aborted != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestUnknownProcedure(t *testing.T) {
	e, _ := counterEngine(t, 1, 1, 1)
	if _, err := e.Worker(0).Run("Nope"); err == nil {
		t.Fatal("unknown procedure accepted")
	}
}

func TestPartitionCount(t *testing.T) {
	e, _ := counterEngine(t, 3, 1, 1)
	if e.Partitions() != 3 {
		t.Fatalf("partitions = %d", e.Partitions())
	}
}

func TestDedupHome(t *testing.T) {
	// A Home returning duplicates must not double-lock (deadlock).
	e, tab := counterEngine(t, 2, 1, 1)
	e.MustRegister(&Proc{
		Spec: &proc.Spec{
			Name: "DupHome",
			Plan: func(b *proc.Builder, _ *proc.Env) {
				b.Op(proc.Op{
					Name: "noop",
					Body: func(ctx proc.OpCtx) error {
						_, _, err := ctx.Read("C", 0, nil)
						return err
					},
				})
			},
		},
		Home: func([]storage.Value) []int { return []int{0, 0, 0} },
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Worker(0).Run("DupHome")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate partition set deadlocked")
	}
	_ = tab
}
