// Package det implements THEDB-DT, the deterministic partitioned
// baseline of the paper's evaluation (§5, following H-Store [32],
// Hyper [33] and Calvin [53, 54]): storage is divided into
// partitions, each protected by one coarse-grained lock and executed
// without any record-level concurrency control. A transaction locks
// every partition it touches for its entire duration, so
// single-partition transactions on different partitions run in
// parallel while any cross-partition transaction serializes all its
// partitions — the behaviour Figure 12 measures.
//
// Read-only tables (schema.Partition == nil) are replicated in the
// paper's design; in shared memory that replication is free — they
// are readable from any partition without locking, matching the
// "replication of read-only tables" optimization [19, 45].
package det

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"thedb/internal/metrics"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// Proc couples a stored procedure with its partition-set function:
// Home returns the partitions the invocation touches, computable from
// the arguments alone (the deterministic execution model requires
// this).
type Proc struct {
	Spec *proc.Spec
	Home func(args []storage.Value) []int
}

// Engine is the deterministic partitioned engine.
type Engine struct {
	catalog    *storage.Catalog
	partitions []sync.Mutex
	specs      map[string]*Proc
	workers    []*Worker
	tsCounter  []uint64 // per-partition commit counter (first partition stamps)
	interleave bool
	checked    bool
}

// SetChecked makes every operation body run under Env.CheckOp, which
// reports reads or writes of variables outside the op's declared
// sets. The dependency analyzer's soundness rests on those
// declarations, so the workload test suites run their full mixes in
// this mode.
func (e *Engine) SetChecked(v bool) { e.checked = v }

// SetInterleave makes workers yield between operations, matching the
// core engine's multicore-interleaving emulation (see DESIGN.md §3).
func (e *Engine) SetInterleave(v bool) { e.interleave = v }

// NewEngine builds a deterministic engine with n partitions.
func NewEngine(catalog *storage.Catalog, partitions, workers int) *Engine {
	e := &Engine{
		catalog:    catalog,
		partitions: make([]sync.Mutex, partitions),
		specs:      make(map[string]*Proc),
		tsCounter:  make([]uint64, partitions),
	}
	for i := 0; i < workers; i++ {
		e.workers = append(e.workers, &Worker{e: e, id: i})
	}
	return e
}

// Register adds a procedure with its partition-set function.
func (e *Engine) Register(p *Proc) error {
	if _, dup := e.specs[p.Spec.Name]; dup {
		return fmt.Errorf("det: procedure %q already registered", p.Spec.Name)
	}
	e.specs[p.Spec.Name] = p
	return nil
}

// MustRegister is Register panicking on duplicates.
func (e *Engine) MustRegister(p *Proc) {
	if err := e.Register(p); err != nil {
		panic(err)
	}
}

// Has reports whether a procedure is registered under name.
func (e *Engine) Has(name string) bool {
	_, ok := e.specs[name]
	return ok
}

// Partitions returns the partition count.
func (e *Engine) Partitions() int { return len(e.partitions) }

// Worker returns execution context i.
func (e *Engine) Worker(i int) *Worker { return e.workers[i] }

// Metrics merges all workers' collectors.
func (e *Engine) Metrics(wall time.Duration) *metrics.Aggregate {
	ws := make([]*metrics.Worker, len(e.workers))
	for i, w := range e.workers {
		ws[i] = &w.m
	}
	return metrics.Merge(wall, ws)
}

// ResetMetrics clears all workers' collectors.
func (e *Engine) ResetMetrics() {
	for _, w := range e.workers {
		w.m = metrics.Worker{}
	}
}

// Worker is one client execution context.
type Worker struct {
	e  *Engine
	id int
	m  metrics.Worker
}

// Metrics returns the worker's collector.
func (w *Worker) Metrics() *metrics.Worker { return &w.m }

// Run executes the procedure, locking its partition set for the
// duration (coarse-grained locking, the behaviour that makes
// cross-partition transactions expensive).
func (w *Worker) Run(procName string, args ...storage.Value) (*proc.Env, error) {
	p, ok := w.e.specs[procName]
	if !ok {
		return nil, fmt.Errorf("det: no such procedure %q", procName)
	}
	start := time.Now() //thedb:nolint:nondet latency metrics only; never feeds transaction logic
	parts := append([]int(nil), p.Home(args)...)
	sort.Ints(parts)
	parts = dedupInts(parts)
	for _, pi := range parts {
		//thedb:nolint:lockorder safe by construction: parts was sorted and deduplicated above, so all workers acquire partitions in ascending index order
		w.e.partitions[pi].Lock()
	}
	defer func() {
		for i := len(parts) - 1; i >= 0; i-- {
			w.e.partitions[parts[i]].Unlock()
		}
	}()

	env := proc.NewEnv()
	for i, a := range args {
		if i < len(p.Spec.Params) {
			env.SetVal(p.Spec.Params[i], a)
		}
		env.SetVal(fmt.Sprintf("$%d", i), a)
	}
	prog := p.Spec.Instantiate(env)

	t := &txn{e: w.e, env: env, home: parts}
	for _, op := range prog.Ops {
		t.cur = op
		var err error
		if w.e.checked {
			op := op
			err = env.CheckOp(op, func() error { return op.Body(t) })
		} else {
			err = op.Body(t)
		}
		if err != nil {
			t.rollback()
			w.m.Inc(&w.m.Aborted)
			return env, err
		}
		if w.e.interleave {
			runtime.Gosched()
		}
	}
	// Stamp updated records with a per-first-partition counter so
	// consistency checks and checkpoints see monotone timestamps.
	if len(parts) > 0 {
		w.e.tsCounter[parts[0]]++
		ts := storage.MakeTS(uint32(parts[0]+1), uint32(w.e.tsCounter[parts[0]]))
		for _, u := range t.undo {
			u.rec.SetTimestamp(ts)
		}
	}
	w.m.Inc(&w.m.Committed)
	w.m.ObserveLatency(time.Since(start)) //thedb:nolint:nondet latency metrics only; never feeds transaction logic
	return env, nil
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// undoRec captures a record's pre-image for rollback on user abort.
type undoRec struct {
	rec     *storage.Record
	tuple   storage.Tuple
	visible bool
	created bool // record materialized by this transaction
	tab     *storage.Table
}

// txn applies effects immediately (the partition locks make that
// safe) and keeps an undo log for user aborts. It implements
// proc.OpCtx.
type txn struct {
	e    *Engine
	env  *proc.Env
	cur  *proc.Op
	home []int
	undo []undoRec
}

var errNoTable = errors.New("det: no such table")

func (t *txn) table(name string) (*storage.Table, error) {
	tab, ok := t.e.catalog.Table(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNoTable, name)
	}
	return tab, nil
}

// Env implements proc.OpCtx.
func (t *txn) Env() *proc.Env { return t.env }

// Read implements proc.OpCtx.
func (t *txn) Read(table string, key storage.Key, _ []int) (storage.Tuple, bool, error) {
	tab, err := t.table(table)
	if err != nil {
		return nil, false, err
	}
	rec, ok := tab.Peek(key)
	if !ok || !rec.Visible() {
		return nil, false, nil
	}
	return rec.Tuple(), true, nil
}

func (t *txn) snapshot(tab *storage.Table, rec *storage.Record, created bool) {
	t.undo = append(t.undo, undoRec{
		rec:     rec,
		tuple:   rec.Tuple(),
		visible: rec.Visible(),
		created: created,
		tab:     tab,
	})
}

// Write implements proc.OpCtx.
func (t *txn) Write(table string, key storage.Key, cols []int, vals []storage.Value) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	rec, ok := tab.Peek(key)
	if !ok || !rec.Visible() {
		return proc.UserAbort(fmt.Sprintf("write to non-existent record %s[%d]", table, key))
	}
	t.snapshot(tab, rec, false)
	old := rec.Tuple()
	tuple := old.Clone()
	for i, c := range cols {
		tuple[c] = vals[i]
	}
	rec.SetTuple(tuple)
	tab.ReindexSecondaries(rec, old, tuple)
	return nil
}

// Insert implements proc.OpCtx.
func (t *txn) Insert(table string, key storage.Key, tuple storage.Tuple) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	if rec, ok := tab.Peek(key); ok && rec.Visible() {
		return proc.UserAbort(fmt.Sprintf("duplicate key %s[%d]", table, key))
	}
	rec := tab.Put(key, tuple, 0)
	t.snapshot(tab, rec, true)
	return nil
}

// Delete implements proc.OpCtx.
func (t *txn) Delete(table string, key storage.Key) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	rec, ok := tab.Peek(key)
	if !ok || !rec.Visible() {
		return proc.UserAbort(fmt.Sprintf("delete of non-existent record %s[%d]", table, key))
	}
	t.snapshot(tab, rec, false)
	rec.SetVisible(false)
	return nil
}

// Scan implements proc.OpCtx.
func (t *txn) Scan(table string, lo, hi storage.Key, limit int, fn func(key storage.Key, row storage.Tuple) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	seen := 0
	tab.RangeScan(lo, hi, func(k storage.Key, rec *storage.Record) bool {
		if !rec.Visible() {
			return true
		}
		seen++
		if !fn(k, rec.Tuple()) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	return nil
}

// ScanMin implements proc.OpCtx.
func (t *txn) ScanMin(table string, lo, hi storage.Key) (storage.Key, storage.Tuple, bool, error) {
	var (
		rk  storage.Key
		rt  storage.Tuple
		got bool
	)
	err := t.Scan(table, lo, hi, 1, func(k storage.Key, row storage.Tuple) bool {
		rk, rt, got = k, row, true
		return false
	})
	return rk, rt, got, err
}

// ScanSec implements proc.OpCtx.
func (t *txn) ScanSec(table, index string, lo, hi string, limit int, fn func(pk storage.Key, row storage.Tuple) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	idx := tab.SecondaryIndexID(index)
	if idx < 0 {
		return fmt.Errorf("det: table %s has no index %q", table, index)
	}
	seen := 0
	tab.SecondaryScan(idx, lo, hi, func(_ string, rec *storage.Record) bool {
		if !rec.Visible() {
			return true
		}
		seen++
		if !fn(rec.Key(), rec.Tuple()) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	return nil
}

// rollback restores pre-images in reverse order.
func (t *txn) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.created {
			u.rec.SetVisible(false)
			continue
		}
		old := u.rec.Tuple()
		u.rec.SetTuple(u.tuple)
		u.tab.ReindexSecondaries(u.rec, old, u.tuple)
		u.rec.SetVisible(u.visible)
	}
	t.undo = nil
}
