// Package hashidx provides a sharded hash map keyed by uint64,
// THEDB's primary point-access index. Shards are protected by
// read/write mutexes so point lookups from concurrent workers contend
// only when they hash to the same shard, standing in for the paper's
// Masstree for point access (see DESIGN.md §3).
package hashidx

import "sync"

const numShards = 128

// Map is a concurrency-safe hash index from uint64 keys to values of
// type V. The zero Map is not usable; construct with New.
type Map[V any] struct {
	shards [numShards]shard[V]
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
}

// New returns an empty index.
func New[V any]() *Map[V] {
	idx := &Map[V]{}
	for i := range idx.shards {
		idx.shards[i].m = make(map[uint64]V)
	}
	return idx
}

// fib mixes the key bits so that structured keys (packed composites)
// spread across shards.
func fib(k uint64) uint64 { return (k * 0x9E3779B97F4A7C15) >> 32 }

func (idx *Map[V]) shardFor(k uint64) *shard[V] {
	return &idx.shards[fib(k)%numShards]
}

// Get returns the value stored under k.
func (idx *Map[V]) Get(k uint64) (V, bool) {
	s := idx.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Store unconditionally maps k to v.
func (idx *Map[V]) Store(k uint64, v V) {
	s := idx.shardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// LoadOrStore returns the existing value for k if present. Otherwise
// it calls mk once under the shard lock, stores the result, and
// returns it with loaded=false. The constructor runs at most once
// per miss, which the insert protocol of §4.7.1 relies on to create
// exactly one dummy record per key.
func (idx *Map[V]) LoadOrStore(k uint64, mk func() V) (v V, loaded bool) {
	s := idx.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return v, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok = s.m[k]; ok {
		return v, true
	}
	v = mk()
	s.m[k] = v
	return v, false
}

// GetWith looks up k and, if present, calls fn(v) while still
// holding the shard read lock. THEDB uses this to pin a record's
// reference counter atomically with the lookup, closing the race
// between a reader acquiring a record and the garbage collector
// unlinking it (§4.7.1).
func (idx *Map[V]) GetWith(k uint64, fn func(V)) (V, bool) {
	s := idx.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	if ok && fn != nil {
		fn(v)
	}
	s.mu.RUnlock()
	return v, ok
}

// LoadOrStoreWith is LoadOrStore with an additional callback invoked
// on the resulting value while the shard lock is held (read lock on
// the fast path, write lock on the slow path).
func (idx *Map[V]) LoadOrStoreWith(k uint64, mk func() V, fn func(V)) (v V, loaded bool) {
	s := idx.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	if ok {
		if fn != nil {
			fn(v)
		}
		s.mu.RUnlock()
		return v, true
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok = s.m[k]; ok {
		if fn != nil {
			fn(v)
		}
		return v, true
	}
	v = mk()
	s.m[k] = v
	if fn != nil {
		fn(v)
	}
	return v, false
}

// DeleteIf removes k only if pred(v) holds for the stored value,
// evaluated under the shard write lock. It returns whether a removal
// happened. The garbage collector uses this to reclaim a deleted
// record only while no transaction pins it.
func (idx *Map[V]) DeleteIf(k uint64, pred func(V) bool) bool {
	s := idx.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	if !ok || !pred(v) {
		return false
	}
	delete(s.m, k)
	return true
}

// Delete removes k.
func (idx *Map[V]) Delete(k uint64) {
	s := idx.shardFor(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of stored keys. It is O(shards) and intended
// for tests and reporting, not hot paths.
func (idx *Map[V]) Len() int {
	n := 0
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every key/value pair until fn returns false.
// The iteration order is unspecified. fn must not call back into the
// same shard.
func (idx *Map[V]) Range(fn func(k uint64, v V) bool) {
	for i := range idx.shards {
		s := &idx.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
