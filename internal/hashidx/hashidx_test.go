package hashidx

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	m := New[int]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map found a key")
	}
	m.Store(1, 10)
	m.Store(2, 20)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	m.Delete(1)
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestLoadOrStoreSingleConstruction(t *testing.T) {
	m := New[*int]()
	calls := 0
	mk := func() *int { calls++; v := 7; return &v }
	v1, loaded1 := m.LoadOrStore(5, mk)
	v2, loaded2 := m.LoadOrStore(5, mk)
	if loaded1 || !loaded2 {
		t.Fatalf("loaded flags = %v, %v", loaded1, loaded2)
	}
	if v1 != v2 || calls != 1 {
		t.Fatalf("constructor ran %d times", calls)
	}
}

func TestLoadOrStoreWithCallbackUnderLock(t *testing.T) {
	m := New[*int]()
	pins := 0
	mk := func() *int { v := 1; return &v }
	pin := func(*int) { pins++ }
	m.LoadOrStoreWith(9, mk, pin)
	m.LoadOrStoreWith(9, mk, pin)
	m.GetWith(9, pin)
	if pins != 3 {
		t.Fatalf("pins = %d, want 3", pins)
	}
}

func TestDeleteIf(t *testing.T) {
	m := New[int]()
	m.Store(1, 10)
	if m.DeleteIf(1, func(v int) bool { return v == 99 }) {
		t.Fatal("removed despite failing predicate")
	}
	if m.DeleteIf(2, func(int) bool { return true }) {
		t.Fatal("removed absent key")
	}
	if !m.DeleteIf(1, func(v int) bool { return v == 10 }) {
		t.Fatal("refused matching predicate")
	}
	if m.Len() != 0 {
		t.Fatal("key survived")
	}
}

func TestRange(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Store(uint64(i), i)
	}
	sum := 0
	m.Range(func(_ uint64, v int) bool {
		sum += v
		return true
	})
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
	n := 0
	m.Range(func(uint64, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  int
	}
	check := func(ops []op) bool {
		m := New[int]()
		ref := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 3 {
			case 0:
				m.Store(k, o.Val)
				ref[k] = o.Val
			case 1:
				m.Delete(k)
				delete(ref, k)
			case 2:
				v, ok := m.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	m := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 32
			for i := uint64(0); i < 2000; i++ {
				m.Store(base|i, int(i))
				if v, ok := m.Get(base | i); !ok || v != int(i) {
					t.Errorf("goroutine %d lost its own write", g)
					return
				}
				if i%2 == 0 {
					m.Delete(base | i)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 8*1000 {
		t.Fatalf("len = %d, want %d", m.Len(), 8*1000)
	}
}
