package core

import (
	"time"

	"thedb/internal/fault"
	"thedb/internal/oracle"
	"thedb/internal/wal"
)

// commit is Algorithm 3: compute the commit timestamp, install the
// buffered writes, stamp and log them, then release locks and pins.
// The caller must hold the locks required by its protocol (all
// elements for healing/OCC, the write set for Silo, 2PL locks for
// TPL).
func (t *Txn) commit(procName string) error {
	// Chaos checkpoint: the write phase is where lock hold times are
	// longest, so perturbations here hurt most; a restart drawn here
	// exercises the full-abort cleanup before anything is installed.
	if err := t.w.chaosPoint(fault.CommitApply); err != nil {
		return err
	}
	// (a) the commit timestamp must exceed the timestamp of every
	// record read or written; (b) it must exceed the worker's last;
	// (c) its high half carries at least the current global epoch.
	var maxSeen uint64
	for _, el := range t.rw.elems {
		if el.removed {
			continue
		}
		if ts := el.rec.Timestamp(); ts > maxSeen {
			maxSeen = ts
		}
	}
	w := t.w
	ts := nextCommitTS(w.id, len(t.e.workers), w.lastTS, maxSeen, t.e.epoch.Current())
	w.lastTS = ts

	logging := w.wlog != nil
	// WAL-append time is the only trace phase measured below commit
	// granularity: commits never wait for fsync (group commit syncs a
	// sealed epoch two behind), so the appends are all the log costs a
	// transaction pays inline. Clock reads bracket each wlog call only
	// while the transaction is traced.
	timeWAL := logging && t.w.traceOn
	var walDur time.Duration
	var walT time.Time
	if timeWAL {
		walT = time.Now()
	}
	if logging {
		if err := w.wlog.BeginCommit(ts); err != nil {
			return err
		}
	}
	if timeWAL {
		walDur += time.Since(walT)
	}
	valueLog := logging && t.e.opts.Logger.Mode() == wal.ValueLogging

	for _, el := range t.rw.elems {
		if el.removed || !el.hasWrites() {
			continue
		}
		rec := el.rec
		switch {
		case el.isDelete:
			if rec.InstallVersion(ts) {
				t.e.gc.TrackVersions(rec)
				w.m.Inc(&w.m.VersionsInstalled)
			}
			rec.SetVisible(false)
			rec.SetTimestamp(ts)
			t.e.gc.Retire(rec)
			if valueLog {
				if timeWAL {
					walT = time.Now()
				}
				if err := w.wlog.LogDelete(ts, el.tab.ID(), rec.Key()); err != nil {
					return err
				}
				if timeWAL {
					walDur += time.Since(walT)
				}
			}
		case el.isInsert:
			tuple := el.applyWrites(el.insertTuple)
			rec.SetTuple(tuple)
			rec.SetTimestamp(ts)
			rec.SetVisible(true)
			el.tab.IndexSecondaries(rec, tuple)
			if valueLog {
				if timeWAL {
					walT = time.Now()
				}
				if err := w.wlog.LogInsert(ts, el.tab.ID(), rec.Key(), tuple); err != nil {
					return err
				}
				if timeWAL {
					walDur += time.Since(walT)
				}
			}
		default:
			// Version-chain push (DESIGN.md §16): preserve the outgoing
			// image before SetTuple when the stamp crosses an epoch
			// boundary, so snapshot reads at the boundary still resolve
			// it. InstallVersion no-ops in the same-epoch common case.
			if rec.InstallVersion(ts) {
				t.e.gc.TrackVersions(rec)
				w.m.Inc(&w.m.VersionsInstalled)
			}
			old := rec.Tuple()
			tuple := el.applyWrites(old)
			rec.SetTuple(tuple)
			rec.SetTimestamp(ts)
			el.tab.ReindexSecondaries(rec, old, tuple)
			if valueLog {
				cols, vals := el.writeColumns()
				if timeWAL {
					walT = time.Now()
				}
				if err := w.wlog.LogWrite(ts, el.tab.ID(), rec.Key(), cols, vals); err != nil {
					return err
				}
				if timeWAL {
					walDur += time.Since(walT)
				}
			}
		}
	}
	if logging {
		if timeWAL {
			walT = time.Now()
		}
		if !valueLog {
			if err := w.wlog.LogCommand(ts, procName, w.curArgs); err != nil {
				return err
			}
		}
		if err := w.wlog.EndCommit(ts); err != nil {
			return err
		}
		if timeWAL {
			walDur += time.Since(walT)
			w.trace.WALUS += int64(walDur / time.Microsecond)
		}
	}
	if orc := t.e.opts.Oracle; orc != nil {
		t.recordFootprint(orc, ts)
	}
	t.finish(true)
	return nil
}

// recordFootprint reports the committed transaction's read and write
// sets to the serializability oracle. Reads carry the version
// timestamp and visibility the transaction observed (an insert's
// implicit absence check included); writes carry the post-commit
// visibility. Called before finish so element state is still intact.
func (t *Txn) recordFootprint(orc *oracle.Recorder, ts uint64) {
	c := oracle.Commit{TS: ts, Worker: t.w.id}
	for _, el := range t.rw.elems {
		if el.removed {
			continue
		}
		k := oracle.Key{Table: el.tab.ID(), Key: uint64(el.rec.Key())}
		if el.mode&ModeRead != 0 || el.isInsert {
			c.Reads = append(c.Reads, oracle.Read{K: k, Version: el.rts, Visible: el.seenVisible})
		}
		if el.hasWrites() {
			c.Writes = append(c.Writes, oracle.Write{K: k, Visible: !el.isDelete})
		}
	}
	orc.Record(c)
}
