package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"thedb/internal/metrics"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// Worker is one execution thread's context: its metrics collector,
// its commit-timestamp state, and its private log stream. A worker
// must be driven by at most one goroutine at a time.
type Worker struct {
	e        *Engine
	id       int
	m        metrics.Worker
	lastTS   uint64
	wlog     *wal.WorkerLog
	rngState uint64

	// curArgs holds the running procedure's argument vector for
	// command logging.
	curArgs []storage.Value
}

func newWorker(e *Engine, id int) *Worker {
	w := &Worker{e: e, id: id, rngState: uint64(id)*2685821657736338717 + 88172645463325252}
	if e.opts.Logger != nil {
		w.wlog = e.opts.Logger.Worker(id)
	}
	return w
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// Metrics returns the worker's collector.
func (w *Worker) Metrics() *metrics.Worker { return &w.m }

// Run executes the named stored procedure to completion under the
// engine's protocol, retrying aborted attempts. It returns the final
// variable environment (query results) or the application abort
// error.
func (w *Worker) Run(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, false)
}

// RunAdhoc executes the procedure as an ad-hoc transaction (§4.8):
// no access cache is maintained and validation failures abort and
// restart under plain OCC, regardless of the engine protocol.
func (w *Worker) RunAdhoc(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, true)
}

// Transact executes fn as an anonymous ad-hoc transaction: fn's reads
// and writes go through the usual OpCtx primitives and the
// transaction commits under plain OCC with abort-and-restart (§4.8 —
// ad-hoc transactions carry no dependency information, so they cannot
// be healed). fn may run multiple times; it must be idempotent apart
// from its OpCtx effects.
func (w *Worker) Transact(fn func(ctx proc.OpCtx) error) error {
	spec := &proc.Spec{
		Name: "adhoc",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "adhoc", Body: fn})
		},
	}
	w.curArgs = nil
	start := time.Now()
	for attempt := 0; ; attempt++ {
		env := proc.NewEnv()
		prog := spec.Instantiate(env)
		err := w.attempt(prog, env, "adhoc", true, attempt)
		if err == nil {
			w.m.Committed++
			w.m.ObserveLatency(time.Since(start))
			return nil
		}
		if errors.Is(err, errRestart) {
			w.m.Restarts++
			w.backoff(attempt)
			continue
		}
		w.m.Aborted++
		return err
	}
}

func (w *Worker) run(procName string, args []storage.Value, adhoc bool) (*proc.Env, error) {
	spec, ok := w.e.specs[procName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchProc, procName)
	}
	w.curArgs = args
	start := time.Now()
	for attempt := 0; ; attempt++ {
		env := buildEnv(spec, args)
		prog := spec.Instantiate(env)
		err := w.attempt(prog, env, procName, adhoc, attempt)
		if err == nil {
			w.m.Committed++
			w.m.ObserveLatency(time.Since(start))
			return env, nil
		}
		if errors.Is(err, errRestart) {
			w.m.Restarts++
			w.backoff(attempt)
			continue
		}
		// Application abort: permanent.
		w.m.Aborted++
		return env, err
	}
}

// backoff sleeps after a restart with capped exponential jitter. It
// breaks restart livelocks between symmetric transactions — the same
// role randomized backoff plays in production OCC and no-wait 2PL
// engines. The first couple of retries are free (short conflicts
// resolve on their own).
func (w *Worker) backoff(attempt int) {
	if attempt < 2 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 8 {
		shift = 8
	}
	// 1-2^shift µs of jitter from a cheap worker-local xorshift.
	w.rngState = w.rngState*6364136223846793005 + 1442695040888963407
	jitter := (w.rngState >> 33) % (uint64(1) << shift)
	time.Sleep(time.Duration(1+jitter) * time.Microsecond)
}

// attempt executes one try of the transaction under the engine's
// protocol. It returns nil on commit, errRestart when the attempt
// must be retried, or a permanent application error.
func (w *Worker) attempt(prog *proc.Program, env *proc.Env, procName string, adhoc bool, attempt int) error {
	proto := w.e.opts.Protocol
	if adhoc && (proto == Healing || proto == Hybrid) {
		proto = OCC
	}
	if proto == Hybrid {
		// OCC first; after any OCC validation abort rerun under 2PL
		// (references [28, 52, 60]).
		if attempt == 0 {
			proto = OCC
		} else {
			proto = TPL
		}
	}

	t := newTxn(w, prog, env, adhoc)
	t.useTPL = proto == TPL
	t.tplMeta = t.useTPL && w.e.opts.Protocol == Hybrid
	// Liveness guard for the multicore-interleaving emulation: after
	// repeated restarts, run an attempt without yielding so its
	// conflict window collapses and it commits (a long transaction
	// such as TPC-C Delivery could otherwise starve forever under
	// stretched windows; real multicores do not stretch windows by
	// the worker count).
	t.noYield = attempt > 8

	detailed := w.e.opts.DetailedMetrics
	var tRead, tValidate, tHeal, tWrite time.Duration
	attemptStart := time.Now()

	fail := func(err error) error {
		t.finish(false)
		if detailed {
			w.m.AddPhase(metrics.PhaseAbort, time.Since(attemptStart))
		}
		return err
	}

	readStart := attemptStart
	if err := t.readPhase(); err != nil {
		if errors.Is(err, errRestart) {
			return fail(errRestart) // 2PL no-wait conflict
		}
		return fail(err) // application abort
	}
	if detailed {
		tRead = time.Since(readStart)
	}

	valStart := time.Now()
	switch proto {
	case Healing:
		if err := t.validateHealing(); err != nil {
			return fail(err)
		}
		if detailed {
			tHeal = t.healDur
			tValidate = time.Since(valStart) - tHeal
		}
		writeStart := time.Now()
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(writeStart)
		}
	case OCC, OCCNoValidate, Silo, SiloNoValidate:
		var err error
		if proto == OCC || proto == OCCNoValidate {
			err = t.validateOCC(proto == OCCNoValidate)
		} else {
			err = t.validateSilo(proto == SiloNoValidate)
		}
		if err != nil {
			return fail(err)
		}
		if detailed {
			tValidate = time.Since(valStart)
		}
		writeStart := time.Now()
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(writeStart)
		}
	case TPL:
		// Locks were taken during the read phase; no validation, so
		// install directly.
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(valStart)
		}
	default:
		return fail(fmt.Errorf("core: unsupported protocol %v", proto))
	}

	if detailed {
		w.m.AddPhase(metrics.PhaseRead, tRead)
		w.m.AddPhase(metrics.PhaseValidate, tValidate)
		w.m.AddPhase(metrics.PhaseHeal, tHeal)
		w.m.AddPhase(metrics.PhaseWrite, tWrite)
	}
	return nil
}

// buildEnv seeds the environment with named parameters and positional
// aliases ($0, $1, ...) so variadic procedures can address argument
// tails beyond their named prefix.
func buildEnv(spec *proc.Spec, args []storage.Value) *proc.Env {
	env := proc.NewEnv()
	for i, a := range args {
		if i < len(spec.Params) {
			env.SetVal(spec.Params[i], a)
		}
		env.SetVal(fmt.Sprintf("$%d", i), a)
	}
	return env
}
