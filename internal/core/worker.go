package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"thedb/internal/fault"
	"thedb/internal/metrics"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// Worker is one execution thread's context: its metrics collector,
// its commit-timestamp state, and its private log stream. A worker
// must be driven by at most one goroutine at a time.
type Worker struct {
	e        *Engine
	id       int
	m        metrics.Worker
	lastTS   uint64
	wlog     *wal.WorkerLog
	rngState uint64

	// curArgs holds the running procedure's argument vector for
	// command logging.
	curArgs []storage.Value
}

func newWorker(e *Engine, id int) *Worker {
	w := &Worker{e: e, id: id, rngState: uint64(id)*2685821657736338717 + 88172645463325252}
	if e.opts.Logger != nil {
		w.wlog = e.opts.Logger.Worker(id)
	}
	return w
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// Metrics returns the worker's collector.
func (w *Worker) Metrics() *metrics.Worker { return &w.m }

// event records a flight-recorder event on this worker's ring,
// stamped with the current global epoch. With tracing disabled
// (Options.Recorder nil, the default) the entire call is one pointer
// check and must stay allocation-free — the hot paths call it
// unconditionally.
//
//thedb:noalloc
func (w *Worker) event(k obs.Kind, a, b uint64) {
	if r := w.e.rec; r != nil {
		r.Record(w.id, k, w.e.epoch.Current(), a, b)
	}
}

// Run executes the named stored procedure to completion under the
// engine's protocol, retrying aborted attempts (down the degradation
// ladder when Options.RetryBudget is set). It returns the final
// variable environment (query results) or the application abort
// error.
func (w *Worker) Run(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, false)
}

// RunAdhoc executes the procedure as an ad-hoc transaction (§4.8):
// no access cache is maintained and validation failures abort and
// restart under plain OCC, regardless of the engine protocol.
func (w *Worker) RunAdhoc(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, true)
}

// Transact executes fn as an anonymous ad-hoc transaction: fn's reads
// and writes go through the usual OpCtx primitives and the
// transaction commits under plain OCC with abort-and-restart (§4.8 —
// ad-hoc transactions carry no dependency information, so they cannot
// be healed). fn may run multiple times; it must be idempotent apart
// from its OpCtx effects.
func (w *Worker) Transact(fn func(ctx proc.OpCtx) error) error {
	spec := &proc.Spec{
		Name: "adhoc",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "adhoc", Body: fn})
		},
	}
	w.curArgs = nil
	_, err := w.runLoop(spec, "adhoc", true, proc.NewEnv)
	return err
}

func (w *Worker) run(procName string, args []storage.Value, adhoc bool) (*proc.Env, error) {
	spec, ok := w.e.specs[procName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchProc, procName)
	}
	w.curArgs = args
	return w.runLoop(spec, procName, adhoc, func() *proc.Env { return buildEnv(spec, args) })
}

// runLoop drives one transaction to commit or permanent failure down
// the degradation ladder: each rung retries under one protocol until
// its budget is spent, then the ladder escalates to a less optimistic
// rung; past the last rung the transaction fails with ErrContended.
// The loop also keeps the worker's epoch registration fresh, so the
// stuck-epoch watchdog can tell a worker wedged inside an attempt
// from one that is merely between transactions.
func (w *Worker) runLoop(spec *proc.Spec, procName string, adhoc bool, mkEnv func() *proc.Env) (*proc.Env, error) {
	start := time.Now()
	lad := newLadder(&w.e.opts, adhoc)
	defer w.e.epoch.Idle(w.id)
	for {
		w.e.epoch.Refresh(w.id)
		env := mkEnv()
		prog := spec.Instantiate(env)
		err := w.attempt(prog, env, procName, adhoc, lad)
		if err == nil {
			lat := time.Since(start)
			w.m.Inc(&w.m.Committed)
			w.m.ObserveLatency(lat)
			w.event(obs.KCommit, w.lastTS, uint64(lat/time.Microsecond))
			return env, nil
		}
		if errors.Is(err, errRestart) {
			w.m.Inc(&w.m.Restarts)
			prevRung := lad.idx
			if !lad.next(&w.m) {
				w.m.Inc(&w.m.BudgetExhausted)
				w.m.Inc(&w.m.Aborted)
				w.event(obs.KAbort, uint64(obs.AbortContended), uint64(lad.total))
				return env, fmt.Errorf("%w: %q gave up after %d attempts", ErrContended, procName, lad.total)
			}
			if lad.idx != prevRung {
				w.event(obs.KLadderEscalate, uint64(lad.rungs[prevRung].proto), uint64(lad.proto()))
			}
			w.backoff(lad.spent)
			continue
		}
		// Application abort: permanent.
		w.m.Inc(&w.m.Aborted)
		w.event(obs.KAbort, uint64(obs.AbortUser), uint64(lad.total))
		return env, err
	}
}

// rung is one step of the degradation ladder: a protocol and how many
// failed attempts it absorbs before the ladder escalates (0 = no
// bound).
type rung struct {
	proto  Protocol
	budget int
}

// ladder tracks a transaction's descent from optimistic to
// pessimistic execution (DESIGN.md §10): healing stops paying off
// once the same transaction keeps invalidating, plain OCC restarts
// stop paying off under sustained conflict, and 2PL is the rung that
// cannot livelock. With no retry budget configured the ladder reduces
// to the legacy policies — a single unbounded rung, or OCC-then-2PL
// for THEDB-HYBRID.
type ladder struct {
	rungs []rung
	idx   int
	spent int // failed attempts on the current rung
	total int // failed attempts overall
}

func newLadder(opts *Options, adhoc bool) *ladder {
	base := opts.Protocol
	if adhoc && (base == Healing || base == Hybrid) {
		// Ad-hoc transactions carry no dependency information (§4.8):
		// they run under plain OCC.
		base = OCC
	}
	budget := opts.RetryBudget
	if budget <= 0 {
		if base == Hybrid {
			// OCC first; after any OCC validation abort rerun under
			// 2PL (references [28, 52, 60]).
			return &ladder{rungs: []rung{{OCC, 1}, {TPL, 0}}}
		}
		return &ladder{rungs: []rung{{base, 0}}}
	}
	switch base {
	case Healing:
		return &ladder{rungs: []rung{{Healing, budget}, {OCC, budget}, {TPL, budget}}}
	case Hybrid:
		return &ladder{rungs: []rung{{OCC, budget}, {TPL, budget}}}
	case OCC, Silo:
		return &ladder{rungs: []rung{{base, budget}, {TPL, budget}}}
	case TPL:
		return &ladder{rungs: []rung{{TPL, budget}}}
	default:
		// The no-validate protocols never restart; a budget is moot.
		return &ladder{rungs: []rung{{base, 0}}}
	}
}

// proto returns the current rung's protocol.
func (l *ladder) proto() Protocol { return l.rungs[l.idx].proto }

// next consumes one failed attempt and reports whether another may
// run, escalating to the next rung — and resetting the per-rung
// attempt counter, so backoff jitter restarts from its shortest
// window — when the current budget is spent.
func (l *ladder) next(m *metrics.Worker) bool {
	l.total++
	l.spent++
	if b := l.rungs[l.idx].budget; b > 0 && l.spent >= b {
		l.idx++
		l.spent = 0
		if l.idx >= len(l.rungs) {
			return false
		}
		m.Inc(&m.HealingFallbacks)
	}
	return true
}

// backoff sleeps after a restart with capped exponential jitter. It
// breaks restart livelocks between symmetric transactions — the same
// role randomized backoff plays in production OCC and no-wait 2PL
// engines. The first couple of retries are free (short conflicts
// resolve on their own), and the sleep is cut short when the engine
// stops so shutdown is never held up by sleeping retriers.
func (w *Worker) backoff(attempt int) {
	if attempt < 2 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 8 {
		shift = 8
	}
	// 1-2^shift µs of jitter from a cheap worker-local xorshift.
	w.rngState = w.rngState*6364136223846793005 + 1442695040888963407
	jitter := (w.rngState >> 33) % (uint64(1) << shift)
	w.sleepOrStop(time.Duration(1+jitter) * time.Microsecond)
}

// sleepOrStop sleeps for d or until the engine stops, whichever comes
// first.
func (w *Worker) sleepOrStop(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.e.stopC:
	}
}

// chaosPoint consults the chaos schedule (when configured) at a
// protocol checkpoint and obeys the drawn perturbation. ActRestart
// surfaces as errRestart, which the caller handles exactly like a
// validation abort.
func (w *Worker) chaosPoint(cp fault.Checkpoint) error {
	s := w.e.opts.Chaos
	if s == nil {
		return nil
	}
	act, d := s.At(w.id, cp)
	switch act {
	case fault.ActYield:
		runtime.Gosched()
	case fault.ActDelay, fault.ActStall:
		w.sleepOrStop(d)
	case fault.ActRestart:
		return errRestart
	}
	return nil
}

// attempt executes one try of the transaction under the ladder's
// current protocol. It returns nil on commit, errRestart when the
// attempt must be retried, or a permanent application error.
func (w *Worker) attempt(prog *proc.Program, env *proc.Env, procName string, adhoc bool, lad *ladder) error {
	proto := lad.proto()

	t := newTxn(w, prog, env, adhoc)
	t.useTPL = proto == TPL
	// A 2PL rung running under an optimistic engine protocol must
	// serialize with concurrent optimistic transactions, which only
	// respect the record meta lock — so it locks through that word.
	t.tplMeta = t.useTPL && w.e.opts.Protocol != TPL
	// Fallback rungs run a different protocol than the engine's: skip
	// the healing bookkeeping their validation will never consume.
	t.noTrack = proto != Healing
	// Liveness guard for the multicore-interleaving emulation: after
	// repeated restarts, run an attempt without yielding so its
	// conflict window collapses and it commits (a long transaction
	// such as TPC-C Delivery could otherwise starve forever under
	// stretched windows; real multicores do not stretch windows by
	// the worker count).
	t.noYield = lad.total > 8

	detailed := w.e.opts.DetailedMetrics
	var tRead, tValidate, tHeal, tWrite time.Duration
	attemptStart := time.Now()

	fail := func(err error) error {
		t.finish(false)
		if detailed {
			w.m.AddPhase(metrics.PhaseAbort, time.Since(attemptStart))
		}
		return err
	}

	readStart := attemptStart
	if err := t.readPhase(); err != nil {
		if errors.Is(err, errRestart) {
			return fail(errRestart) // 2PL no-wait conflict
		}
		return fail(err) // application abort
	}
	if detailed {
		tRead = time.Since(readStart)
	}
	if err := w.chaosPoint(fault.PreValidation); err != nil {
		return fail(err)
	}

	valStart := time.Now()
	switch proto {
	case Healing:
		if err := t.validateHealing(); err != nil {
			return fail(err)
		}
		if detailed {
			tHeal = t.healDur
			tValidate = time.Since(valStart) - tHeal
		}
		writeStart := time.Now()
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(writeStart)
		}
	case OCC, OCCNoValidate, Silo, SiloNoValidate:
		var err error
		if proto == OCC || proto == OCCNoValidate {
			err = t.validateOCC(proto == OCCNoValidate)
		} else {
			err = t.validateSilo(proto == SiloNoValidate)
		}
		if err != nil {
			return fail(err)
		}
		if detailed {
			tValidate = time.Since(valStart)
		}
		writeStart := time.Now()
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(writeStart)
		}
	case TPL:
		// Locks were taken during the read phase; no validation, so
		// install directly.
		if err := t.commit(procName); err != nil {
			return fail(err)
		}
		if detailed {
			tWrite = time.Since(valStart)
		}
	default:
		return fail(fmt.Errorf("core: unsupported protocol %v", proto))
	}

	if detailed {
		w.m.AddPhase(metrics.PhaseRead, tRead)
		w.m.AddPhase(metrics.PhaseValidate, tValidate)
		w.m.AddPhase(metrics.PhaseHeal, tHeal)
		w.m.AddPhase(metrics.PhaseWrite, tWrite)
	}
	return nil
}

// buildEnv seeds the environment with named parameters and positional
// aliases ($0, $1, ...) so variadic procedures can address argument
// tails beyond their named prefix.
func buildEnv(spec *proc.Spec, args []storage.Value) *proc.Env {
	env := proc.NewEnv()
	for i, a := range args {
		if i < len(spec.Params) {
			env.SetVal(spec.Params[i], a)
		}
		env.SetVal(fmt.Sprintf("$%d", i), a)
	}
	return env
}
