package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"thedb/internal/fault"
	"thedb/internal/metrics"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// Worker is one execution thread's context: its metrics collector,
// its commit-timestamp state, and its private log stream. A worker
// must be driven by at most one goroutine at a time.
type Worker struct {
	e        *Engine
	id       int
	m        metrics.Worker
	lastTS   uint64
	wlog     *wal.WorkerLog
	rngState uint64

	// curArgs holds the running procedure's argument vector for
	// command logging.
	curArgs []storage.Value

	// trace is the per-transaction scratch trace record; traceOn marks
	// it active for the transaction currently in runLoop. traceStart is
	// the monotonic instant phase offsets are measured from. The
	// scratch lives in the worker so the commit fast path records a
	// trace without allocating.
	trace      obs.Trace
	traceOn    bool
	traceStart time.Time

	// pendingTrace* carry caller-supplied trace context (a wire trace
	// ID, queue wait, admission wall clock) into the next runLoop;
	// consumed once by beginTrace.
	pendingTraceID uint64
	pendingQueueUS int64
	pendingStartNS int64

	// lastTraceSlot/lastTraceID report where the previous transaction's
	// trace landed in the tracer ring (slot -1 = dropped or tracing
	// off), so the serving plane can amend response-write time after
	// the fact.
	lastTraceSlot int
	lastTraceID   uint64
}

func newWorker(e *Engine, id int) *Worker {
	w := &Worker{e: e, id: id, rngState: uint64(id)*2685821657736338717 + 88172645463325252,
		lastTraceSlot: -1}
	if e.opts.Logger != nil {
		w.wlog = e.opts.Logger.Worker(id)
	}
	return w
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// Metrics returns the worker's collector.
func (w *Worker) Metrics() *metrics.Worker { return &w.m }

// event records a flight-recorder event on this worker's ring,
// stamped with the current global epoch. With tracing disabled
// (Options.Recorder nil, the default) the entire call is one pointer
// check and must stay allocation-free — the hot paths call it
// unconditionally.
//
//thedb:noalloc
func (w *Worker) event(k obs.Kind, a, b uint64) {
	if r := w.e.rec; r != nil {
		var tid uint64
		if w.traceOn {
			tid = w.trace.ID
		}
		r.RecordT(w.id, k, w.e.epoch.Current(), a, b, tid)
	}
}

// SetTraceContext primes the next transaction with caller-supplied
// trace context: the wire trace ID (0 = mint one locally), queue wait
// in microseconds, and the wall-clock admission instant in
// nanoseconds (0 = stamp at first execution). The context is consumed
// by the next Run/RunAdhoc/Transact and has no effect when tracing is
// off. Same single-goroutine contract as the run methods.
func (w *Worker) SetTraceContext(id uint64, queueUS, startNS int64) {
	w.pendingTraceID = id
	w.pendingQueueUS = queueUS
	w.pendingStartNS = startNS
}

// LastTrace reports where the previous transaction's trace landed:
// the tracer ring slot (-1 when it was dropped by tail sampling or
// tracing is off) and its trace ID, for post-response amendment via
// Tracer.AmendResp.
func (w *Worker) LastTrace() (slot int, id uint64) {
	return w.lastTraceSlot, w.lastTraceID
}

// beginTrace arms the worker's scratch trace for one transaction,
// consuming any pending caller context. Untraced callers get an ID
// minted from the worker-local xorshift (nonzero, so recorder events
// still correlate).
func (w *Worker) beginTrace(start time.Time, procName string) {
	id := w.pendingTraceID
	queueUS := w.pendingQueueUS
	startNS := w.pendingStartNS
	w.pendingTraceID, w.pendingQueueUS, w.pendingStartNS = 0, 0, 0
	if id == 0 {
		w.rngState = w.rngState*6364136223846793005 + 1442695040888963407
		id = w.rngState | 1
	}
	if startNS == 0 {
		startNS = start.UnixNano()
	}
	w.trace = obs.Trace{
		ID:      id,
		Proc:    procName,
		Worker:  int32(w.id),
		StartNS: startNS,
		QueueUS: queueUS,
	}
	w.traceStart = start
	w.traceOn = true
}

// finishTrace completes the scratch trace and offers it to the
// tracer's tail-retention ring. This sits on the commit fast path:
// with tracing off it is never reached (one nil check in runLoop);
// with tracing on it must not allocate.
//
//thedb:noalloc
func (w *Worker) finishTrace(outcome obs.TraceOutcome, lat time.Duration, attempts int) {
	w.trace.Outcome = outcome
	w.trace.TotalUS = int64(lat / time.Microsecond)
	w.trace.Attempts = uint32(attempts)
	w.trace.Epoch = w.e.epoch.Current()
	w.lastTraceSlot = w.e.tracer.Keep(&w.trace)
	w.lastTraceID = w.trace.ID
	w.traceOn = false
}

// tracePass records one completed healing pass in the scratch trace.
// Passes beyond MaxHealPasses are counted but lose their detail row.
func (w *Worker) tracePass(start, end time.Duration, restored, frontier int) {
	if n := w.trace.NPasses; n < obs.MaxHealPasses {
		w.trace.Passes[n] = obs.HealPass{
			StartUS:  int64(start / time.Microsecond),
			EndUS:    int64(end / time.Microsecond),
			Restored: uint32(restored),
			Frontier: uint32(frontier),
		}
	}
	w.trace.NPasses++
}

// Run executes the named stored procedure to completion under the
// engine's protocol, retrying aborted attempts (down the degradation
// ladder when Options.RetryBudget is set). It returns the final
// variable environment (query results) or the application abort
// error.
func (w *Worker) Run(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, false)
}

// RunAdhoc executes the procedure as an ad-hoc transaction (§4.8):
// no access cache is maintained and validation failures abort and
// restart under plain OCC, regardless of the engine protocol.
func (w *Worker) RunAdhoc(procName string, args ...storage.Value) (*proc.Env, error) {
	return w.run(procName, args, true)
}

// Transact executes fn as an anonymous ad-hoc transaction: fn's reads
// and writes go through the usual OpCtx primitives and the
// transaction commits under plain OCC with abort-and-restart (§4.8 —
// ad-hoc transactions carry no dependency information, so they cannot
// be healed). fn may run multiple times; it must be idempotent apart
// from its OpCtx effects.
func (w *Worker) Transact(fn func(ctx proc.OpCtx) error) error {
	spec := &proc.Spec{
		Name: "adhoc",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "adhoc", Body: fn})
		},
	}
	w.curArgs = nil
	_, err := w.runLoop(spec, "adhoc", true, proc.NewEnv)
	return err
}

func (w *Worker) run(procName string, args []storage.Value, adhoc bool) (*proc.Env, error) {
	spec, ok := w.e.specs[procName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchProc, procName)
	}
	w.curArgs = args
	return w.runLoop(spec, procName, adhoc, func() *proc.Env { return buildEnv(spec, args) })
}

// runLoop drives one transaction to commit or permanent failure down
// the degradation ladder: each rung retries under one protocol until
// its budget is spent, then the ladder escalates to a less optimistic
// rung; past the last rung the transaction fails with ErrContended.
// The loop also keeps the worker's epoch registration fresh, so the
// stuck-epoch watchdog can tell a worker wedged inside an attempt
// from one that is merely between transactions.
func (w *Worker) runLoop(spec *proc.Spec, procName string, adhoc bool, mkEnv func() *proc.Env) (*proc.Env, error) {
	start := time.Now()
	lad := newLadder(&w.e.opts, adhoc)
	if w.e.tracer != nil {
		w.beginTrace(start, procName)
	}
	defer w.e.epoch.Idle(w.id)
	for {
		w.e.epoch.Refresh(w.id)
		env := mkEnv()
		prog := spec.Instantiate(env)
		err := w.attempt(prog, env, procName, adhoc, lad)
		if err == nil {
			lat := time.Since(start)
			w.m.Inc(&w.m.Committed)
			w.m.ObserveLatency(lat)
			w.event(obs.KCommit, w.lastTS, uint64(lat/time.Microsecond))
			if w.traceOn {
				w.finishTrace(obs.TraceCommitted, lat, lad.total+1)
			}
			return env, nil
		}
		if errors.Is(err, errRestart) {
			w.m.Inc(&w.m.Restarts)
			prevRung := lad.idx
			if !lad.next(&w.m) {
				w.m.Inc(&w.m.BudgetExhausted)
				w.m.Inc(&w.m.Aborted)
				w.event(obs.KAbort, uint64(obs.AbortContended), uint64(lad.total))
				if w.traceOn {
					w.finishTrace(obs.TraceContended, time.Since(start), lad.total)
				}
				return env, fmt.Errorf("%w: %q gave up after %d attempts", ErrContended, procName, lad.total)
			}
			if lad.idx != prevRung {
				w.event(obs.KLadderEscalate, uint64(lad.rungs[prevRung].proto), uint64(lad.proto()))
				if w.traceOn {
					w.trace.Escalations++
				}
			}
			w.backoff(lad.spent)
			continue
		}
		// Application abort: permanent.
		w.m.Inc(&w.m.Aborted)
		w.event(obs.KAbort, uint64(obs.AbortUser), uint64(lad.total))
		if w.traceOn {
			w.finishTrace(obs.TraceAborted, time.Since(start), lad.total+1)
		}
		return env, err
	}
}

// rung is one step of the degradation ladder: a protocol and how many
// failed attempts it absorbs before the ladder escalates (0 = no
// bound).
type rung struct {
	proto  Protocol
	budget int
}

// ladder tracks a transaction's descent from optimistic to
// pessimistic execution (DESIGN.md §10): healing stops paying off
// once the same transaction keeps invalidating, plain OCC restarts
// stop paying off under sustained conflict, and 2PL is the rung that
// cannot livelock. With no retry budget configured the ladder reduces
// to the legacy policies — a single unbounded rung, or OCC-then-2PL
// for THEDB-HYBRID.
type ladder struct {
	rungs []rung
	idx   int
	spent int // failed attempts on the current rung
	total int // failed attempts overall
}

func newLadder(opts *Options, adhoc bool) *ladder {
	base := opts.Protocol
	if adhoc && (base == Healing || base == Hybrid) {
		// Ad-hoc transactions carry no dependency information (§4.8):
		// they run under plain OCC.
		base = OCC
	}
	budget := opts.RetryBudget
	if budget <= 0 {
		if base == Hybrid {
			// OCC first; after any OCC validation abort rerun under
			// 2PL (references [28, 52, 60]).
			return &ladder{rungs: []rung{{OCC, 1}, {TPL, 0}}}
		}
		return &ladder{rungs: []rung{{base, 0}}}
	}
	switch base {
	case Healing:
		return &ladder{rungs: []rung{{Healing, budget}, {OCC, budget}, {TPL, budget}}}
	case Hybrid:
		return &ladder{rungs: []rung{{OCC, budget}, {TPL, budget}}}
	case OCC, Silo:
		return &ladder{rungs: []rung{{base, budget}, {TPL, budget}}}
	case TPL:
		return &ladder{rungs: []rung{{TPL, budget}}}
	default:
		// The no-validate protocols never restart; a budget is moot.
		return &ladder{rungs: []rung{{base, 0}}}
	}
}

// proto returns the current rung's protocol.
func (l *ladder) proto() Protocol { return l.rungs[l.idx].proto }

// next consumes one failed attempt and reports whether another may
// run, escalating to the next rung — and resetting the per-rung
// attempt counter, so backoff jitter restarts from its shortest
// window — when the current budget is spent.
func (l *ladder) next(m *metrics.Worker) bool {
	l.total++
	l.spent++
	if b := l.rungs[l.idx].budget; b > 0 && l.spent >= b {
		l.idx++
		l.spent = 0
		if l.idx >= len(l.rungs) {
			return false
		}
		m.Inc(&m.HealingFallbacks)
	}
	return true
}

// backoff sleeps after a restart with capped exponential jitter. It
// breaks restart livelocks between symmetric transactions — the same
// role randomized backoff plays in production OCC and no-wait 2PL
// engines. The first couple of retries are free (short conflicts
// resolve on their own), and the sleep is cut short when the engine
// stops so shutdown is never held up by sleeping retriers.
func (w *Worker) backoff(attempt int) {
	if attempt < 2 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 8 {
		shift = 8
	}
	// 1-2^shift µs of jitter from a cheap worker-local xorshift.
	w.rngState = w.rngState*6364136223846793005 + 1442695040888963407
	jitter := (w.rngState >> 33) % (uint64(1) << shift)
	w.sleepOrStop(time.Duration(1+jitter) * time.Microsecond)
}

// sleepOrStop sleeps for d or until the engine stops, whichever comes
// first.
func (w *Worker) sleepOrStop(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.e.stopC:
	}
}

// chaosPoint consults the chaos schedule (when configured) at a
// protocol checkpoint and obeys the drawn perturbation. ActRestart
// surfaces as errRestart, which the caller handles exactly like a
// validation abort.
func (w *Worker) chaosPoint(cp fault.Checkpoint) error {
	s := w.e.opts.Chaos
	if s == nil {
		return nil
	}
	act, d := s.At(w.id, cp)
	switch act {
	case fault.ActYield:
		runtime.Gosched()
	case fault.ActDelay, fault.ActStall:
		w.sleepOrStop(d)
	case fault.ActRestart:
		return errRestart
	}
	return nil
}

// attempt executes one try of the transaction under the ladder's
// current protocol. It returns nil on commit, errRestart when the
// attempt must be retried, or a permanent application error.
func (w *Worker) attempt(prog *proc.Program, env *proc.Env, procName string, adhoc bool, lad *ladder) error {
	proto := lad.proto()

	t := newTxn(w, prog, env, adhoc)
	t.useTPL = proto == TPL
	// A 2PL rung running under an optimistic engine protocol must
	// serialize with concurrent optimistic transactions, which only
	// respect the record meta lock — so it locks through that word.
	t.tplMeta = t.useTPL && w.e.opts.Protocol != TPL
	// Fallback rungs run a different protocol than the engine's: skip
	// the healing bookkeeping their validation will never consume.
	t.noTrack = proto != Healing
	// Liveness guard for the multicore-interleaving emulation: after
	// repeated restarts, run an attempt without yielding so its
	// conflict window collapses and it commits (a long transaction
	// such as TPC-C Delivery could otherwise starve forever under
	// stretched windows; real multicores do not stretch windows by
	// the worker count).
	t.noYield = lad.total > 8

	// Tracing needs the same phase clocks as detailed metrics; the
	// trace accumulates across attempts (a restarted attempt's work is
	// real latency), while the per-phase counters stay gated on
	// DetailedMetrics alone.
	detailed := w.e.opts.DetailedMetrics
	traced := w.traceOn
	timed := detailed || traced
	var tRead, tValidate, tHeal, tWrite time.Duration
	attemptStart := time.Now()

	fail := func(err error) error {
		t.finish(false)
		if detailed {
			w.m.AddPhase(metrics.PhaseAbort, time.Since(attemptStart))
		}
		return err
	}

	// Phase clocks are boundary timestamps: each phase ends where the
	// next begins, so a fully timed commit costs four clock reads per
	// attempt, not a start/stop pair per phase. A chaos stall drawn at
	// the pre-validation checkpoint lands in the validate phase, which
	// is exactly the window it stretches.
	err := t.readPhase()
	valStart := attemptStart
	if timed {
		valStart = time.Now()
		tRead = valStart.Sub(attemptStart)
	}
	if traced {
		w.trace.ExecUS += int64(tRead / time.Microsecond)
		w.trace.Proto = uint8(proto)
	}
	if err != nil {
		if errors.Is(err, errRestart) {
			return fail(errRestart) // 2PL no-wait conflict
		}
		return fail(err) // application abort
	}
	if err := w.chaosPoint(fault.PreValidation); err != nil {
		return fail(err)
	}

	switch proto {
	case Healing:
		err := t.validateHealing()
		writeStart := valStart
		if timed {
			writeStart = time.Now()
			tHeal = t.healDur
			tValidate = writeStart.Sub(valStart) - tHeal
		}
		if traced {
			w.trace.ValidateUS += int64(tValidate / time.Microsecond)
			w.trace.HealUS += int64(tHeal / time.Microsecond)
		}
		if err != nil {
			return fail(err)
		}
		err = t.commit(procName)
		if timed {
			tWrite = time.Since(writeStart)
		}
		if traced {
			w.trace.CommitUS += int64(tWrite / time.Microsecond)
		}
		if err != nil {
			return fail(err)
		}
	case OCC, OCCNoValidate, Silo, SiloNoValidate:
		var err error
		if proto == OCC || proto == OCCNoValidate {
			err = t.validateOCC(proto == OCCNoValidate)
		} else {
			err = t.validateSilo(proto == SiloNoValidate)
		}
		writeStart := valStart
		if timed {
			writeStart = time.Now()
			tValidate = writeStart.Sub(valStart)
		}
		if traced {
			w.trace.ValidateUS += int64(tValidate / time.Microsecond)
		}
		if err != nil {
			return fail(err)
		}
		err = t.commit(procName)
		if timed {
			tWrite = time.Since(writeStart)
		}
		if traced {
			w.trace.CommitUS += int64(tWrite / time.Microsecond)
		}
		if err != nil {
			return fail(err)
		}
	case TPL:
		// Locks were taken during the read phase; no validation, so
		// install directly.
		err := t.commit(procName)
		if timed {
			tWrite = time.Since(valStart)
		}
		if traced {
			w.trace.CommitUS += int64(tWrite / time.Microsecond)
		}
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("core: unsupported protocol %v", proto))
	}

	if detailed {
		w.m.AddPhase(metrics.PhaseRead, tRead)
		w.m.AddPhase(metrics.PhaseValidate, tValidate)
		w.m.AddPhase(metrics.PhaseHeal, tHeal)
		w.m.AddPhase(metrics.PhaseWrite, tWrite)
	}
	return nil
}

// buildEnv seeds the environment with named parameters and positional
// aliases ($0, $1, ...) so variadic procedures can address argument
// tails beyond their named prefix.
func buildEnv(spec *proc.Spec, args []storage.Value) *proc.Env {
	env := proc.NewEnv()
	for i, a := range args {
		if i < len(spec.Params) {
			env.SetVal(spec.Params[i], a)
		}
		env.SetVal(fmt.Sprintf("$%d", i), a)
	}
	return env
}
