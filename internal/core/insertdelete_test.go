package core

import (
	"strings"
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// kvEngine builds a single ordered table KV(v) engine for the §4.7
// scenarios.
func kvEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "KV",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		Ordered: true,
	})
	e := NewEngine(cat, opts)
	e.MustRegister(&proc.Spec{
		Name:   "Put",
		Params: []string{"k", "v"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "insert",
				KeyReads: []string{"k"},
				ValReads: []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Insert("KV", storage.Key(e.Int("k")), storage.Tuple{storage.Int(e.Int("v"))})
				},
			})
		},
	})
	e.MustRegister(&proc.Spec{
		Name:   "GetSum",
		Params: []string{"lo", "hi"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "scan",
				KeyReads: []string{"lo", "hi"},
				Writes:   []string{"sum", "count"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					var sum, count int64
					err := ctx.Scan("KV", storage.Key(e.Int("lo")), storage.Key(e.Int("hi")), 0,
						func(_ storage.Key, row storage.Tuple) bool {
							sum += row[0].Int()
							count++
							return true
						})
					if err != nil {
						return err
					}
					e.SetInt("sum", sum)
					e.SetInt("count", count)
					return nil
				},
			})
		},
	})
	e.MustRegister(&proc.Spec{
		Name:   "Del",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "delete",
				KeyReads: []string{"k"},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Delete("KV", storage.Key(ctx.Env().Int("k")))
				},
			})
		},
	})
	e.MustRegister(&proc.Spec{
		Name:   "Get",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "get",
				KeyReads: []string{"k"},
				Writes:   []string{"v", "ok"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					row, ok, err := ctx.Read("KV", storage.Key(e.Int("k")), nil)
					if err != nil {
						return err
					}
					if ok {
						e.SetVal("v", row[0])
						e.SetInt("ok", 1)
					} else {
						e.SetInt("v", 0)
						e.SetInt("ok", 0)
					}
					return nil
				},
			})
		},
	})
	return e
}

func TestInsertThenReadDeleteLifecycle(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	if _, err := w.Run("Put", storage.Int(5), storage.Int(50)); err != nil {
		t.Fatal(err)
	}
	env, err := w.Run("Get", storage.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("ok") != 1 || env.Int("v") != 50 {
		t.Fatalf("get after insert: ok=%d v=%d", env.Int("ok"), env.Int("v"))
	}
	// Duplicate insert must abort with a duplicate-key error.
	if _, err := w.Run("Put", storage.Int(5), storage.Int(51)); err == nil ||
		!strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := w.Run("Del", storage.Int(5)); err != nil {
		t.Fatal(err)
	}
	env, err = w.Run("Get", storage.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("ok") != 0 {
		t.Fatal("record visible after delete")
	}
	// Re-insert after delete reuses the slot.
	if _, err := w.Run("Put", storage.Int(5), storage.Int(52)); err != nil {
		t.Fatal(err)
	}
	env, _ = w.Run("Get", storage.Int(5))
	if env.Int("v") != 52 {
		t.Fatalf("v = %d after re-insert", env.Int("v"))
	}
}

// TestInsertScenario1 is §4.7.1's first scenario: T2 reads a record
// that T1 inserted but has not yet committed — the dummy is invisible,
// so T2 sees nothing; when T1 commits first, T2's validation heals.
func TestInsertScenario1(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)

	// T1: read phase only (buffered insert, invisible dummy).
	spec, _ := e.Spec("Put")
	env1 := buildEnv(spec, []storage.Value{storage.Int(7), storage.Int(70)})
	t1 := newTxn(w1, spec.Instantiate(env1), env1, false)
	if err := t1.readPhase(); err != nil {
		t.Fatal(err)
	}

	// T2 reads key 7 concurrently: must not see the uncommitted row.
	getSpec, _ := e.Spec("Get")
	env2 := buildEnv(getSpec, []storage.Value{storage.Int(7)})
	t2 := newTxn(w2, getSpec.Instantiate(env2), env2, false)
	if err := t2.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env2.Int("ok") != 0 {
		t.Fatal("uncommitted insert visible to concurrent reader")
	}

	// T1 commits; T2's validation detects the visibility flip and
	// heals the read — the healed query result now sees the row.
	if err := t1.validateAndCommitHealing("Put"); err != nil {
		t.Fatal(err)
	}
	if err := t2.validateAndCommitHealing("Get"); err != nil {
		t.Fatal(err)
	}
	if env2.Int("ok") != 1 || env2.Int("v") != 70 {
		t.Fatalf("healed read: ok=%d v=%d, want the committed insert", env2.Int("ok"), env2.Int("v"))
	}
	if w2.m.Heals != 1 {
		t.Errorf("heals = %d, want 1", w2.m.Heals)
	}
}

// TestInsertScenario2 is §4.7.1's second scenario: T1 reads a
// non-existent key (creating the dummy), then T2 inserts and commits
// it. T1 committing after must heal.
func TestInsertScenario2(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)

	getSpec, _ := e.Spec("Get")
	env1 := buildEnv(getSpec, []storage.Value{storage.Int(9)})
	t1 := newTxn(w1, getSpec.Instantiate(env1), env1, false)
	if err := t1.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env1.Int("ok") != 0 {
		t.Fatal("non-existent key read as present")
	}

	if _, err := w2.Run("Put", storage.Int(9), storage.Int(90)); err != nil {
		t.Fatal(err)
	}

	if err := t1.validateAndCommitHealing("Get"); err != nil {
		t.Fatal(err)
	}
	if env1.Int("ok") != 1 || env1.Int("v") != 90 {
		t.Fatalf("healed read missed concurrent insert: ok=%d v=%d", env1.Int("ok"), env1.Int("v"))
	}
}

// TestInsertScenario3 is §4.7.1's third scenario: two concurrent
// transactions insert the same key; the slower one must not commit a
// second version.
func TestInsertScenario3(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)

	spec, _ := e.Spec("Put")
	env1 := buildEnv(spec, []storage.Value{storage.Int(11), storage.Int(1)})
	t1 := newTxn(w1, spec.Instantiate(env1), env1, false)
	if err := t1.readPhase(); err != nil {
		t.Fatal(err)
	}
	env2 := buildEnv(spec, []storage.Value{storage.Int(11), storage.Int(2)})
	t2 := newTxn(w2, spec.Instantiate(env2), env2, false)
	if err := t2.readPhase(); err != nil {
		t.Fatal(err)
	}

	if err := t2.validateAndCommitHealing("Put"); err != nil {
		t.Fatal(err)
	}
	// T1 must not commit: its insert element's timestamp/visibility
	// changed, which signals a restart; the retry then sees a genuine
	// duplicate.
	err := t1.validateAndCommitHealing("Put")
	if err == nil {
		t.Fatal("second inserter committed over the first")
	}
	t1.finish(false)

	tab, _ := e.Catalog().Table("KV")
	rec, _ := tab.Peek(11)
	if got := rec.Tuple()[0].Int(); got != 2 {
		t.Fatalf("value = %d, want the first committer's 2", got)
	}
}

// TestPhantomHealing is §4.7.2: a range scan's leaf version changes
// when a concurrent insert lands in the scanned range; healing
// re-executes the scan and the aggregate reflects the phantom row.
func TestPhantomHealing(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)
	for k := int64(1); k <= 5; k++ {
		if _, err := w1.Run("Put", storage.Int(k), storage.Int(k*10)); err != nil {
			t.Fatal(err)
		}
	}

	spec, _ := e.Spec("GetSum")
	env := buildEnv(spec, []storage.Value{storage.Int(1), storage.Int(100)})
	txn := newTxn(w1, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env.Int("sum") != 150 || env.Int("count") != 5 {
		t.Fatalf("initial scan: sum=%d count=%d", env.Int("sum"), env.Int("count"))
	}

	// Concurrent committed insert into the scanned range.
	if _, err := w2.Run("Put", storage.Int(6), storage.Int(60)); err != nil {
		t.Fatal(err)
	}

	if err := txn.validateAndCommitHealing("GetSum"); err != nil {
		t.Fatal(err)
	}
	if env.Int("sum") != 210 || env.Int("count") != 6 {
		t.Fatalf("healed scan: sum=%d count=%d, want 210/6 (phantom healed)", env.Int("sum"), env.Int("count"))
	}
	if w1.m.Heals == 0 {
		t.Error("no healing recorded for the phantom")
	}
}

// TestPhantomAbortsOCC: the same phantom under conventional OCC must
// restart instead.
func TestPhantomAbortsOCC(t *testing.T) {
	e := kvEngine(t, Options{Protocol: OCC, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)
	for k := int64(1); k <= 3; k++ {
		if _, err := w1.Run("Put", storage.Int(k), storage.Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	spec, _ := e.Spec("GetSum")
	env := buildEnv(spec, []storage.Value{storage.Int(1), storage.Int(100)})
	txn := newTxn(w1, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Run("Put", storage.Int(4), storage.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.validateOCC(false); err != errRestart {
		t.Fatalf("validateOCC = %v, want errRestart", err)
	}
	txn.finish(false)
}

// TestDeleteDetectedByConcurrentReader: a committed delete bumps the
// record timestamp, so a concurrent reader's validation heals and the
// healed read sees the record as gone.
func TestDeleteDetectedByConcurrentReader(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)
	if _, err := w1.Run("Put", storage.Int(3), storage.Int(30)); err != nil {
		t.Fatal(err)
	}

	getSpec, _ := e.Spec("Get")
	env := buildEnv(getSpec, []storage.Value{storage.Int(3)})
	txn := newTxn(w1, getSpec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env.Int("ok") != 1 {
		t.Fatal("read missed existing record")
	}

	if _, err := w2.Run("Del", storage.Int(3)); err != nil {
		t.Fatal(err)
	}

	if err := txn.validateAndCommitHealing("Get"); err != nil {
		t.Fatal(err)
	}
	if env.Int("ok") != 0 {
		t.Fatal("healed read still sees the deleted record")
	}
}

// TestGCReclaimsDeletedThroughEngine: after a committed delete and
// transaction completion, the collector unlinks the record.
func TestGCReclaimsDeletedThroughEngine(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	if _, err := w.Run("Put", storage.Int(1), storage.Int(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run("Del", storage.Int(1)); err != nil {
		t.Fatal(err)
	}
	e.GC().Collect()
	tab, _ := e.Catalog().Table("KV")
	if _, ok := tab.Peek(1); ok {
		t.Fatal("deleted record not reclaimed")
	}
	// Reads of missing keys leave retired dummies too.
	if _, err := w.Run("Get", storage.Int(77)); err != nil {
		t.Fatal(err)
	}
	e.GC().Collect()
	if _, ok := tab.Peek(77); ok {
		t.Fatal("read-miss dummy not reclaimed")
	}
}
