package core

import (
	"fmt"

	"thedb/internal/obs"
	"thedb/internal/proc"
)

// validateOCC is the conventional OCC validation phase (THEDB-OCC,
// §5): lock every read/write-set element in the global address order,
// compare each read element's current timestamp against its
// R-timestamp, and signal abort-and-restart on any mismatch. With
// novalidate (THEDB-OCC⁻) the consistency checks are skipped, which
// measures the peak throughput attainable without aborts (Fig. 8) at
// the cost of serializability.
func (t *Txn) validateOCC(novalidate bool) error {
	t.rw.sortFor(AddrOrder)
	for _, el := range t.rw.elems {
		t.lockElement(el)
		if novalidate {
			continue
		}
		if el.isInsert {
			if err := t.checkInsertElement(el); err != nil {
				return err
			}
			continue
		}
		if el.mode&ModeRead == 0 {
			continue
		}
		if ts, _, _ := el.rec.Meta(); ts != el.rts {
			t.w.event(obs.KValidationFail, uint64(el.rec.Key()), uint64(el.tab.ID()))
			if c := t.e.cont; c != nil {
				c.Touch(el.tab.ID(), uint64(el.rec.Key()), obs.TouchValidationFail)
			}
			return errRestart
		}
	}
	if novalidate {
		return nil
	}
	for _, sa := range t.rw.scans {
		if sa.changed() {
			t.w.event(obs.KValidationFail, 0, 0) // 0,0: structural (phantom)
			return errRestart
		}
	}
	return nil
}

// checkInsertElement validates an insert element under its lock
// (§4.7.1 scenario 3 plus the stale-key refinement documented at
// Txn.Insert).
func (t *Txn) checkInsertElement(el *Element) error {
	ts, _, vis := el.rec.Meta()
	if el.insertConflict && vis && ts == el.rts {
		return proc.UserAbort(fmt.Sprintf("duplicate key %s[%d]", el.tab.Schema().Name, el.rec.Key()))
	}
	if vis || ts != el.rts {
		return errRestart
	}
	return nil
}

// validateSilo is Silo's commit protocol (THEDB-SILO): lock only the
// write set (in address order), then validate the read set without
// locking — a read is consistent when its timestamp is unchanged and
// the record is not locked by another transaction. This avoids
// tracking anti-dependencies and locks less, but a transaction
// discovers conflicts only after buying all its write locks, which is
// why it wastes more work under contention (§5.1).
func (t *Txn) validateSilo(novalidate bool) error {
	t.rw.sortFor(AddrOrder)
	for _, el := range t.rw.elems {
		if el.mode&ModeWrite != 0 {
			t.lockElement(el)
		}
	}
	if novalidate {
		return nil
	}
	for _, el := range t.rw.elems {
		if el.isInsert {
			if err := t.checkInsertElement(el); err != nil {
				return err
			}
			continue
		}
		if el.mode&ModeRead == 0 {
			continue
		}
		ts, locked, _ := el.rec.Meta()
		if ts != el.rts || (locked && !el.locked) {
			t.w.event(obs.KValidationFail, uint64(el.rec.Key()), uint64(el.tab.ID()))
			if c := t.e.cont; c != nil {
				c.Touch(el.tab.ID(), uint64(el.rec.Key()), obs.TouchValidationFail)
			}
			return errRestart
		}
	}
	for _, sa := range t.rw.scans {
		if sa.changed() {
			t.w.event(obs.KValidationFail, 0, 0) // 0,0: structural (phantom)
			return errRestart
		}
	}
	return nil
}
