package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"thedb/internal/mvcc"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// ErrReadOnlyTxn reports a write attempted inside a snapshot
// transaction. Snapshot transactions resolve every read against the
// version chains and commit with zero validation, which is only sound
// because they cannot have written anything.
var ErrReadOnlyTxn = errors.New("core: snapshot transaction is read-only")

// snapshotTS computes a snapshot timestamp: the boundary MakeTS(F,0)-1
// under the worker-registration epoch floor, ratcheted through the
// monotone snapshot floor. Every commit stamped at or below the result
// is fully installed; every in-flight commit is stamped above it
// (EpochManager.VisibleFloor); and the result never falls below a
// watermark the version GC has already reclaimed against (the
// ratchet). See DESIGN.md §16.
func (e *Engine) snapshotTS() uint64 {
	return e.snapFloor.Raise(storage.MakeTS(e.epoch.VisibleFloor(), 0) - 1)
}

// versionWatermark supplies the GC's reclamation bound: no live or
// future snapshot can read at or below it. Raising the floor before
// scanning the pins orders this against concurrent pinners — see
// mvcc.Watermark.
func (e *Engine) versionWatermark() uint64 {
	return mvcc.Watermark(&e.snapFloor, e.snap, storage.MakeTS(e.epoch.VisibleFloor(), 0)-1)
}

// snapshotEpochLag measures how far the oldest pinned snapshot trails
// the current epoch — the /metrics gauge that surfaces a stuck reader
// blocking version GC. Zero when nothing is pinned or the oldest pin
// is current.
func (e *Engine) snapshotEpochLag() uint32 {
	s, ok := e.snap.Oldest()
	if !ok {
		return 0
	}
	// A boundary MakeTS(F,0)-1 splits as epoch F-1 with an all-ones
	// sequence half; the snapshot logically belongs to floor F.
	pe, _ := storage.SplitTS(s)
	cur := e.epoch.Current()
	if pe+1 >= cur {
		return 0
	}
	return cur - (pe + 1)
}

// RunSnapshot executes the named stored procedure as a read-only
// snapshot transaction: it pins an epoch-consistent snapshot at start,
// resolves every read against the record version visible at that
// snapshot, and commits without validation — no read-set tracking, no
// healing, no aborts, and no interference with concurrent writers.
// Write primitives fail with ErrReadOnlyTxn. Same single-goroutine
// contract as Run.
func (w *Worker) RunSnapshot(procName string, args ...storage.Value) (*proc.Env, error) {
	spec, ok := w.e.specs[procName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchProc, procName)
	}
	w.curArgs = args
	return w.runSnapshot(spec, procName, func() *proc.Env { return buildEnv(spec, args) })
}

// TransactSnapshot runs fn as an anonymous read-only snapshot
// transaction through the usual OpCtx primitives. Unlike Transact, fn
// runs exactly once — snapshot transactions never restart.
func (w *Worker) TransactSnapshot(fn func(ctx proc.OpCtx) error) error {
	spec := &proc.Spec{
		Name: "snapshot",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "snapshot", Body: fn})
		},
	}
	w.curArgs = nil
	_, err := w.runSnapshot(spec, "snapshot", proc.NewEnv)
	return err
}

// runSnapshot drives one snapshot transaction: pin, execute every
// operation against the snapshot, unpin. There is no retry loop and no
// epoch registration — a snapshot transaction cannot invalidate, and
// registering it would drag the visible floor (and with it writer GC)
// behind a long scan for no benefit; the SnapshotEpochLag gauge tracks
// long readers instead.
func (w *Worker) runSnapshot(spec *proc.Spec, procName string, mkEnv func() *proc.Env) (*proc.Env, error) {
	start := time.Now()
	if w.e.tracer != nil {
		w.beginTrace(start, procName)
	}
	s := w.e.snapshotTS()
	// Publish the pin, then re-read the ratchet: if the floor moved
	// above s, a GC pass that missed this pin may have reclaimed up to
	// the new floor, so adopt it (raising a snapshot to a newer valid
	// boundary is always sound; the stale pin only under-reported,
	// which is conservative).
	for {
		w.e.snap.Pin(w.id, s)
		if r := w.e.snapFloor.Load(); r > s {
			s = r
			continue
		}
		break
	}
	defer w.e.snap.Unpin(w.id)

	env := mkEnv()
	prog := spec.Instantiate(env)
	st := &snapTxn{e: w.e, w: w, env: env, at: s}
	interleave := w.e.opts.Interleave
	for _, op := range prog.Ops {
		if err := op.Body(st); err != nil {
			w.m.Inc(&w.m.Aborted)
			w.event(obs.KAbort, uint64(obs.AbortUser), 0)
			if w.traceOn {
				w.finishTrace(obs.TraceAborted, time.Since(start), 1)
			}
			return env, err
		}
		if interleave {
			runtime.Gosched()
		}
	}
	lat := time.Since(start)
	w.m.Inc(&w.m.Committed)
	w.m.Inc(&w.m.SnapshotReads)
	w.m.ObserveLatency(lat)
	w.event(obs.KCommit, s, uint64(lat/time.Microsecond))
	if w.traceOn {
		w.finishTrace(obs.TraceCommitted, lat, 1)
	}
	return env, nil
}

// snapTxn implements proc.OpCtx for snapshot transactions. Reads
// resolve through Record.SnapshotAt at the pinned timestamp; nothing
// is registered, copied, pinned or locked, and the write primitives
// are rejected. Long scans therefore cost writers nothing: they touch
// no record metadata and hold no locks a writer could conflict with.
type snapTxn struct {
	e   *Engine
	w   *Worker
	env *proc.Env
	at  uint64
}

// Env implements proc.OpCtx.
func (t *snapTxn) Env() *proc.Env { return t.env }

func (t *snapTxn) table(name string) (*storage.Table, error) {
	tab, ok := t.e.catalog.Table(name)
	if !ok {
		return nil, fmt.Errorf("core: no such table %q", name)
	}
	return tab, nil
}

// Read implements proc.OpCtx against the snapshot.
func (t *snapTxn) Read(table string, key storage.Key, cols []int) (storage.Tuple, bool, error) {
	tab, err := t.table(table)
	if err != nil {
		return nil, false, err
	}
	rec, ok := tab.Peek(key)
	if !ok {
		// Never indexed, or unlinked by the GC — the latter only once
		// the delete stamp passed the watermark, which is at or below
		// this snapshot, so "absent" is the snapshot-correct answer.
		return nil, false, nil
	}
	img, vis := rec.SnapshotAt(t.at)
	return img, vis, nil
}

// Write implements proc.OpCtx; snapshot transactions reject it.
func (t *snapTxn) Write(table string, key storage.Key, cols []int, vals []storage.Value) error {
	return fmt.Errorf("%w: write to %s[%d]", ErrReadOnlyTxn, table, key)
}

// Insert implements proc.OpCtx; snapshot transactions reject it.
func (t *snapTxn) Insert(table string, key storage.Key, tuple storage.Tuple) error {
	return fmt.Errorf("%w: insert into %s[%d]", ErrReadOnlyTxn, table, key)
}

// Delete implements proc.OpCtx; snapshot transactions reject it.
func (t *snapTxn) Delete(table string, key storage.Key) error {
	return fmt.Errorf("%w: delete from %s[%d]", ErrReadOnlyTxn, table, key)
}

// Scan implements proc.OpCtx: it walks the current ordered index and
// resolves each record against the snapshot. Records inserted after
// the snapshot resolve to absent and are skipped; records deleted
// since stay reachable (the GC's unlink gate) and resolve to their
// pre-delete image. No leaf versions are recorded — snapshot scans
// need no phantom validation because they never validate.
func (t *snapTxn) Scan(table string, lo, hi storage.Key, limit int, fn func(key storage.Key, row storage.Tuple) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	if tab.Schema() == nil || !tab.Schema().Ordered {
		return fmt.Errorf("core: table %s has no ordered index", table)
	}
	seen := 0
	tab.RangeScan(lo, hi, func(k storage.Key, rec *storage.Record) bool {
		img, vis := rec.SnapshotAt(t.at)
		if !vis {
			return true
		}
		seen++
		if !fn(k, img) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	return nil
}

// ScanMin implements proc.OpCtx.
func (t *snapTxn) ScanMin(table string, lo, hi storage.Key) (storage.Key, storage.Tuple, bool, error) {
	var (
		rk  storage.Key
		rt  storage.Tuple
		got bool
	)
	err := t.Scan(table, lo, hi, 1, func(k storage.Key, row storage.Tuple) bool {
		rk, rt, got = k, row, true
		return false
	})
	return rk, rt, got, err
}

// ScanSec implements proc.OpCtx. Secondary entries track the CURRENT
// tuple image (updates re-key them at commit), so the index is walked
// as of now and each hit is re-checked against the snapshot image's
// secondary key: rows whose snapshot image keys outside [lo, hi] are
// suppressed. A row whose old image was in range but whose current one
// is not has been re-keyed out of the walk and is missed — snapshot
// secondary scans are as-of-now on index membership, as-of-snapshot on
// row contents (documented in DESIGN.md §16).
func (t *snapTxn) ScanSec(table, index string, lo, hi string, limit int, fn func(pk storage.Key, row storage.Tuple) bool) error {
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	idx := tab.SecondaryIndexID(index)
	if idx < 0 {
		return fmt.Errorf("core: table %s has no index %q", table, index)
	}
	def := tab.Schema().Secondaries[idx]
	seen := 0
	tab.SecondaryScan(idx, lo, hi, func(_ string, rec *storage.Record) bool {
		img, vis := rec.SnapshotAt(t.at)
		if !vis {
			return true
		}
		if sk := def.Key(rec.Key(), img); sk < lo || sk > hi {
			return true
		}
		seen++
		if !fn(rec.Key(), img) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	return nil
}
