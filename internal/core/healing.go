package core

import (
	"container/heap"
	"errors"
	"time"

	"thedb/internal/fault"
	"thedb/internal/obs"
)

// validateAndCommitHealing runs the paper's Algorithm 1: lock the
// read/write set in the global validation order, validate each
// read-accessed element, and invoke the healing phase on any
// inconsistency instead of aborting. Afterwards it validates the node
// set (phantoms, §4.7.2) and commits.
//
// For independent transactions (§4.6) the effect is the merged
// validate+write fast path: with no key dependencies the membership
// never changes, healing cannot abort, and the transaction is
// guaranteed to commit.
func (t *Txn) validateAndCommitHealing(procName string) error {
	if err := t.validateHealing(); err != nil {
		return err
	}
	return t.commit(procName)
}

// validateHealing is Algorithm 1 without the write phase, so the
// caller can account validation/healing and write time separately.
func (t *Txn) validateHealing() error {
	t.rw.sortFor(t.e.opts.Order)
	for t.frontier = 0; t.frontier < len(t.rw.elems); t.frontier++ {
		el := t.rw.elems[t.frontier]
		if el.locked {
			// Locked during a membership update; its content was
			// (re)read under the lock, hence consistent.
			continue
		}
		if el.removed {
			continue
		}
		//thedb:nolint:lockorder safe by construction: sortFor imposed the global Addr/tree order above, so every thread stacks record locks in the same sequence (§4.2.1)
		t.lockElement(el)
		if el.isInsert {
			// §4.7.1 scenario 3: another transaction committed into
			// our dummy slot first; genuine duplicates abort, stale
			// keys restart (the stale source heals first under tree
			// order, replacing this element before we reach it).
			if err := t.checkInsertElement(el); err != nil {
				return err
			}
			continue
		}
		if el.mode&ModeRead == 0 {
			continue
		}
		ts, _, vis := el.rec.Meta()
		if ts == el.rts {
			continue
		}
		// Inconsistent read. First dismiss false invalidations
		// (§4.5): a concurrent write that did not touch the columns
		// we read.
		if vis == el.seenVisible && el.falseInvalidation(el.rec.Tuple()) {
			el.rts = ts
			t.w.m.Inc(&t.w.m.FalseInval)
			t.w.event(obs.KFalseInval, uint64(el.rec.Key()), uint64(el.tab.ID()))
			continue
		}
		t.w.event(obs.KValidationFail, uint64(el.rec.Key()), uint64(el.tab.ID()))
		if c := t.e.cont; c != nil {
			c.Touch(el.tab.ID(), uint64(el.rec.Key()), obs.TouchValidationFail)
		}
		if !t.canHeal() {
			return errRestart
		}
		if err := t.heal(el); err != nil {
			return err
		}
	}
	t.frontier = len(t.rw.elems)

	// Node-set validation: structural index changes in scanned
	// ranges are healed by re-executing the scan operation. Healing
	// may add scans, so iterate to a fixpoint (bounded; beyond the
	// bound abort-and-restart is always safe).
	for round := 0; ; round++ {
		if round > 64 {
			return errRestart
		}
		changed := false
		for i := 0; i < len(t.rw.scans); i++ {
			sa := t.rw.scans[i]
			if sa.removed || !sa.changed() {
				continue
			}
			changed = true
			if !t.canHeal() {
				return errRestart
			}
			if err := t.healFromOp(sa.op); err != nil {
				return err
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// canHeal reports whether the healing machinery is available: the
// access cache must be maintained (Table 4 ablation turns it off) and
// the transaction must not be ad-hoc (§4.8).
func (t *Txn) canHeal() bool { return t.trackAccesses() }

// restoreKind says how an operation must be restored.
type restoreKind uint8

const (
	restoreReplay restoreKind = iota // value-dependent: cached access set
	restoreReexec                    // key-dependent: fresh index lookups
)

// healQueue is a min-heap of operations ordered by bookmark (program
// order). Because dependency edges always point forward in program
// order, popping in ID order guarantees every parent is restored
// before any of its children, so each operation is restored exactly
// once per healing pass (§4.2.2).
type healQueue struct {
	runs []*OpRun
	kind map[*OpRun]restoreKind
}

func (h *healQueue) Len() int           { return len(h.runs) }
func (h *healQueue) Less(i, j int) bool { return h.runs[i].op.ID < h.runs[j].op.ID }
func (h *healQueue) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *healQueue) Push(x any)         { h.runs = append(h.runs, x.(*OpRun)) }
func (h *healQueue) Pop() (x any)       { n := len(h.runs); x, h.runs = h.runs[n-1], h.runs[:n-1]; return x }
func (h *healQueue) push(r *OpRun, k restoreKind) {
	if prev, queued := h.kind[r]; queued {
		if k > prev {
			h.kind[r] = k
		}
		return
	}
	h.kind[r] = k
	heap.Push(h, r)
}

// heal is Algorithm 2: restore the non-serializable operations
// reachable from the inconsistent element el through the program
// dependency graph. The caller holds el's record lock.
func (t *Txn) heal(el *Element) error {
	traced := t.w.traceOn
	if t.e.opts.DetailedMetrics || traced {
		defer t.timeHeal()()
	}
	var passStart time.Duration
	if traced {
		passStart = time.Since(t.w.traceStart)
	}
	t.w.m.Inc(&t.w.m.Heals)
	t.w.event(obs.KHealStart, uint64(el.rec.Key()), uint64(el.tab.ID()))
	if c := t.e.cont; c != nil {
		c.Touch(el.tab.ID(), uint64(el.rec.Key()), obs.TouchHealStart)
	}
	// Reload the inconsistent element under its lock: this is the
	// restoration basis for the bookmarked operation(s).
	el.rts, _, el.seenVisible = el.rec.Meta()
	el.refreshCopies(el.rec.Tuple())

	q := &healQueue{kind: make(map[*OpRun]restoreKind)}
	for _, run := range el.bookmarks {
		q.push(run, restoreReplay)
	}
	before := t.healOps
	if err := t.drainHealQueue(q); err != nil {
		return err
	}
	t.w.event(obs.KHealEnd, uint64(t.healOps-before), uint64(t.frontier))
	if traced {
		t.w.tracePass(passStart, time.Since(t.w.traceStart), t.healOps-before, t.frontier)
	}
	return nil
}

// healFromOp heals starting from a single operation that must be
// re-executed (phantom repair of a scan).
func (t *Txn) healFromOp(run *OpRun) error {
	traced := t.w.traceOn
	if t.e.opts.DetailedMetrics || traced {
		defer t.timeHeal()()
	}
	var passStart time.Duration
	if traced {
		passStart = time.Since(t.w.traceStart)
	}
	t.w.m.Inc(&t.w.m.Heals)
	t.w.event(obs.KHealStart, 0, 0) // 0,0 marks a phantom repair
	q := &healQueue{kind: make(map[*OpRun]restoreKind)}
	q.push(run, restoreReexec)
	before := t.healOps
	if err := t.drainHealQueue(q); err != nil {
		return err
	}
	t.w.event(obs.KHealEnd, uint64(t.healOps-before), uint64(t.frontier))
	if traced {
		t.w.tracePass(passStart, time.Since(t.w.traceStart), t.healOps-before, t.frontier)
	}
	return nil
}

// timeHeal accrues wall time spent inside healing into the
// transaction's heal-duration counter (Fig. 19 accounting).
func (t *Txn) timeHeal() func() {
	start := time.Now()
	return func() { t.healDur += time.Since(start) }
}

func (t *Txn) drainHealQueue(q *healQueue) error {
	for q.Len() > 0 {
		// Chaos checkpoint: between restorations, conflicting commits
		// may land and force healing over freshly healed state; a
		// restart drawn here abandons the repair mid-flight.
		if err := t.w.chaosPoint(fault.MidHealing); err != nil {
			return err
		}
		run := heap.Pop(q).(*OpRun)
		kind := q.kind[run]
		delete(q.kind, run)
		if err := t.restore(run, kind, q); err != nil {
			return err
		}
		t.w.m.Inc(&t.w.m.HealedOps)
		t.healOps++
		for _, c := range run.op.KeyChildren() {
			q.push(t.runs[c.ID], restoreReexec)
		}
		for _, c := range run.op.ValChildren() {
			q.push(t.runs[c.ID], restoreReplay)
		}
	}
	t.mode = modeExec
	return nil
}

// restore re-runs one operation. Value-dependent restoration replays
// against the cached access set (no index lookups); key-dependent
// restoration re-executes with fresh lookups and reconciles the
// read/write-set membership.
//
// Whenever restoration changes an element's buffered effects, the
// operations that later *read* that element through the database are
// non-serializable too — these read-after-write flows do not appear
// in the variable-level dependency graph, so restore enqueues the
// affected readers explicitly (notifyReaders).
func (t *Txn) restore(run *OpRun, kind restoreKind, q *healQueue) error {
	t.cur = run
	t.nacc = 0
	if kind == restoreReplay {
		// Retract the op's buffered writes; the replayed body
		// re-buffers them at their original fold positions.
		t.retractWrites(run)
		t.mode = modeReplay
		t.cursor = 0
		err := run.op.Body(t)
		if err == nil && t.cursor != len(run.accesses) {
			// The healed control flow performed fewer accesses than
			// the cached pattern: divergence.
			err = errDiverged
		}
		if errors.Is(err, errDiverged) {
			return errRestart
		}
		if err == nil {
			t.notifyReaders(run, q)
		}
		return err
	}

	// Key-dependent re-execution: retract every access the op made
	// (including its buffered writes — the retraction must happen
	// while the access list is still populated), run it afresh, then
	// drop elements that left the footprint.
	t.retractWrites(run)
	// Readers of the elements whose buffered effects we just
	// retracted see different values now.
	t.notifyReaders(run, q)
	old := run.accesses
	run.accesses = nil
	for i := range old {
		a := &old[i]
		switch a.kind {
		case accessPoint:
			a.elem.uses--
			removeBookmark(a.elem, run)
		case accessScan:
			a.scan.removed = true
			for _, sel := range a.scanElems {
				sel.uses--
				removeBookmark(sel, run)
			}
		}
	}
	t.mode = modeReexec
	err := run.op.Body(t)
	if err == nil {
		t.notifyReaders(run, q)
	}
	// Reconcile: elements no longer referenced by any access entry
	// leave the read/write set (§4.2.2 membership update). They stay
	// in the slice (and keep their lock if held — releasing early
	// would weaken two-phase locking) but are skipped everywhere.
	for i := range old {
		a := &old[i]
		drop := func(el *Element) {
			if el.uses == 0 && !el.removed {
				el.removed = true
				el.isInsert = false
				el.isDelete = false
				el.insertTuple = nil
				el.writes = el.writes[:0]
			}
		}
		if a.kind == accessPoint {
			drop(a.elem)
		} else {
			for _, sel := range a.scanElems {
				drop(sel)
			}
		}
	}
	return err
}

// notifyReaders enqueues, for every element run wrote (buffered
// effects in run.accesses), the bookmarked operations that read the
// element later in program order.
func (t *Txn) notifyReaders(run *OpRun, q *healQueue) {
	for i := range run.accesses {
		a := &run.accesses[i]
		if a.kind != accessPoint || !a.isWrite || a.elem == nil {
			continue
		}
		for _, reader := range a.elem.bookmarks {
			if reader.op.ID > run.op.ID {
				q.push(reader, restoreReplay)
			}
		}
	}
}

// retractWrites removes run's buffered writes from every element it
// wrote.
func (t *Txn) retractWrites(run *OpRun) {
	seen := map[*Element]bool{}
	for i := range run.accesses {
		a := &run.accesses[i]
		if a.kind == accessPoint && a.elem != nil && !seen[a.elem] {
			seen[a.elem] = true
			a.elem.dropWrites(run.op.ID)
		}
	}
}

func removeBookmark(el *Element, run *OpRun) {
	for i, b := range el.bookmarks {
		if b == run {
			el.bookmarks = append(el.bookmarks[:i], el.bookmarks[i+1:]...)
			return
		}
	}
}
