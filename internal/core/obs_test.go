package core

import (
	"errors"
	"strings"
	"testing"

	"thedb/internal/fault"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// TestEventSiteZeroAllocsDisabled pins the disabled-path contract:
// with Options.Recorder nil (the default) an event site is a single
// nil check and must never allocate. A regression here taxes every
// transaction of every unobserved run.
func TestEventSiteZeroAllocsDisabled(t *testing.T) {
	e := NewEngine(storage.NewCatalog(), Options{Workers: 1})
	w := e.Worker(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.event(obs.KCommit, 1, 2)
	}); allocs != 0 {
		t.Fatalf("disabled event site allocates %.1f per call, want 0", allocs)
	}
}

// TestEventSiteZeroAllocsEnabled: the enabled path is wait-free and
// allocation-free too — recording into the ring must not allocate.
func TestEventSiteZeroAllocsEnabled(t *testing.T) {
	e := NewEngine(storage.NewCatalog(), Options{Workers: 1, Recorder: obs.NewRecorder(1, 64)})
	w := e.Worker(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		w.event(obs.KCommit, 1, 2)
	}); allocs != 0 {
		t.Fatalf("enabled event site allocates %.1f per call, want 0", allocs)
	}
}

// TestCommitRecordsEvent: a committed transaction leaves a KCommit
// event carrying its worker, epoch and commit timestamp.
func TestCommitRecordsEvent(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "KV",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("KV")
	tab.Put(1, storage.Tuple{storage.Int(5)}, 0)

	rec := obs.NewRecorder(1, 64)
	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1, Recorder: rec})
	w := e.Worker(0)
	if err := w.Transact(func(ctx proc.OpCtx) error {
		row, _, err := ctx.Read("KV", 1, []int{0})
		if err != nil {
			return err
		}
		return ctx.Write("KV", 1, []int{0}, []storage.Value{storage.Int(row[0].Int() + 1)})
	}); err != nil {
		t.Fatalf("transact: %v", err)
	}
	var commit *obs.Event
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KCommit {
			ev := ev
			commit = &ev
		}
	}
	if commit == nil {
		t.Fatal("no KCommit event recorded")
	}
	if commit.Worker != 0 {
		t.Errorf("commit attributed to worker %d, want 0", commit.Worker)
	}
	if commit.A != w.lastTS {
		t.Errorf("commit ts payload = %d, want %d", commit.A, w.lastTS)
	}
	if commit.Epoch == 0 {
		t.Errorf("commit event has zero epoch")
	}
}

// TestErrContendedDumpNamesProtocolCheckpoints drives the degradation
// ladder to exhaustion with the recorder on and checks the acceptance
// contract: the dump is a merged, time-ordered interleaving that
// names the worker, the epoch, and each protocol checkpoint the
// doomed transaction crossed — every escalation rung and the final
// contended abort.
func TestErrContendedDumpNamesProtocolCheckpoints(t *testing.T) {
	const budget = 3
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "BALANCE",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("BALANCE")
	tab.Put(1, storage.Tuple{storage.Int(0)}, 0)

	sched := fault.NewSchedule(7, 1)
	sched.Inject(fault.PreValidation, fault.ActRestart, 1.0)

	rec := obs.NewRecorder(1, 256)
	e := NewEngine(cat, Options{
		Protocol:    Healing,
		Workers:     1,
		Chaos:       sched,
		RetryBudget: budget,
		Recorder:    rec,
	})
	e.MustRegister(&proc.Spec{
		Name: "ReadOne",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "read", Body: func(ctx proc.OpCtx) error {
				_, _, err := ctx.Read("BALANCE", 1, nil)
				return err
			}})
		},
	})
	if _, err := e.Worker(0).Run("ReadOne"); !errors.Is(err, ErrContended) {
		t.Fatalf("err = %v, want ErrContended", err)
	}

	var sb strings.Builder
	rec.DumpWith(&sb, func(id int) string {
		if tab := cat.TableByID(id); tab != nil {
			return tab.Schema().Name
		}
		return ""
	})
	out := sb.String()
	for _, want := range []string{
		"w0",                                     // the worker is named
		"epoch=",                                 // every line carries the epoch
		"ladder-escalate proto 0 -> 1",           // Healing → OCC
		"ladder-escalate proto 1 -> 3",           // OCC → 2PL (Protocol values)
		"abort reason=contended attempts=" + "9", // 3 rungs × budget 3
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Time-ordered: the first escalation precedes the second precedes
	// the abort.
	first := strings.Index(out, "proto 0 -> 1")
	second := strings.Index(out, "proto 1 -> 3")
	abort := strings.Index(out, "abort reason=contended")
	if !(first < second && second < abort) {
		t.Errorf("dump not time-ordered (%d, %d, %d):\n%s", first, second, abort, out)
	}
}

// TestEpochAndSealEventsRecorded: the advancer's ring captures epoch
// bumps, and with durability on, seal and sync outcomes.
func TestEpochAndSealEventsRecorded(t *testing.T) {
	cat := storage.NewCatalog()
	rec := obs.NewRecorder(1, 64)
	e := NewEngine(cat, Options{Workers: 1, Recorder: rec})
	for i := 0; i < 3; i++ {
		e.epoch.Advance()
	}
	var advances int
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KEpochAdvance {
			advances++
			if ev.Worker != obs.EpochActor {
				t.Errorf("epoch advance attributed to worker %d, want EpochActor", ev.Worker)
			}
			if ev.A != uint64(ev.Epoch) {
				t.Errorf("epoch advance payload %d != epoch %d", ev.A, ev.Epoch)
			}
		}
	}
	if advances != 3 {
		t.Fatalf("recorded %d epoch advances, want 3", advances)
	}
}
