package core

import (
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// TestScanSeesOwnBufferedEffects: a scan inside a transaction
// observes the transaction's own uncommitted inserts, updates and
// deletes at the correct program positions.
func TestScanSeesOwnBufferedEffects(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	for k := int64(1); k <= 3; k++ {
		if _, err := w.Run("Put", storage.Int(k), storage.Int(k)); err != nil {
			t.Fatal(err)
		}
	}
	e.MustRegister(&proc.Spec{
		Name: "MutateAndScan",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name: "insert4",
				Body: func(ctx proc.OpCtx) error {
					return ctx.Insert("KV", 4, storage.Tuple{storage.Int(40)})
				},
			})
			b.Op(proc.Op{
				Name: "update2",
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("KV", 2, []int{0}, []storage.Value{storage.Int(200)})
				},
			})
			b.Op(proc.Op{
				Name: "delete1",
				Body: func(ctx proc.OpCtx) error {
					return ctx.Delete("KV", 1)
				},
			})
			b.Op(proc.Op{
				Name:   "scanAll",
				Writes: []string{"sum", "count"},
				Body: func(ctx proc.OpCtx) error {
					env := ctx.Env()
					var sum, count int64
					err := ctx.Scan("KV", 0, 100, 0, func(_ storage.Key, row storage.Tuple) bool {
						sum += row[0].Int()
						count++
						return true
					})
					if err != nil {
						return err
					}
					env.SetInt("sum", sum)
					env.SetInt("count", count)
					return nil
				},
			})
		},
	})
	env, err := w.Run("MutateAndScan")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: 1 deleted (gone), 2 updated to 200, 3 unchanged, 4
	// inserted as 40 → count 3, sum 243.
	if env.Int("count") != 3 || env.Int("sum") != 243 {
		t.Fatalf("scan saw count=%d sum=%d, want 3/243", env.Int("count"), env.Int("sum"))
	}
}

// TestBranchyProcedureHealsViaRestart: a procedure whose access
// pattern branches on a read value cannot always be replayed from the
// access cache; when the branch flips mid-flight the engine must fall
// back to abort-and-restart and still produce the post-conflict
// serial result.
func TestBranchyProcedureHealsViaRestart(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	if _, err := w.Run("Put", storage.Int(1), storage.Int(0)); err != nil { // switch cell
		t.Fatal(err)
	}
	if _, err := w.Run("Put", storage.Int(10), storage.Int(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run("Put", storage.Int(20), storage.Int(0)); err != nil {
		t.Fatal(err)
	}
	e.MustRegister(&proc.Spec{
		Name: "Branch",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:   "readSwitch",
				Writes: []string{"s"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("KV", 1, nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("s", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				// The branch: zero → touch KV[10] twice; nonzero →
				// touch KV[20] once. Different access COUNTS, so a
				// cached replay diverges when the switch flips.
				Name:     "branchy",
				ValReads: []string{"s"},
				Body: func(ctx proc.OpCtx) error {
					if ctx.Env().Int("s") == 0 {
						if _, _, err := ctx.Read("KV", 10, nil); err != nil {
							return err
						}
						return ctx.Write("KV", 10, []int{0}, []storage.Value{storage.Int(1)})
					}
					return ctx.Write("KV", 20, []int{0}, []storage.Value{storage.Int(2)})
				},
			})
		},
	})

	spec, _ := e.Spec("Branch")
	env := buildEnv(spec, nil)
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	// Flip the switch mid-flight.
	externalCommit(t, e, "KV", 1, 0, storage.Int(7), storage.MakeTS(1, 1))
	err := txn.validateAndCommitHealing("Branch")
	if err != errRestart {
		t.Fatalf("branch flip mid-heal = %v, want errRestart (divergence fallback)", err)
	}
	txn.finish(false)

	// The public path converges to the post-flip serial result.
	if _, err := w.Run("Branch"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Catalog().Table("KV")
	r20, _ := tab.Peek(20)
	if got := r20.Tuple()[0].Int(); got != 2 {
		t.Fatalf("KV[20] = %d, want 2 (nonzero branch)", got)
	}
	r10, _ := tab.Peek(10)
	if got := r10.Tuple()[0].Int(); got != 0 {
		t.Fatalf("KV[10] = %d, want 0 (stale branch must not leak)", got)
	}
}

// TestScanLimitUnderPhantomHealing: a LIMIT-ed scan whose range gains
// a row before the cutoff must, after healing, return the new first
// rows.
func TestScanLimitUnderPhantomHealing(t *testing.T) {
	e := kvEngine(t, Options{Protocol: Healing, Workers: 2})
	w1, w2 := e.Worker(0), e.Worker(1)
	for _, k := range []int64{5, 7, 9} {
		if _, err := w1.Run("Put", storage.Int(k), storage.Int(k)); err != nil {
			t.Fatal(err)
		}
	}
	e.MustRegister(&proc.Spec{
		Name: "First2",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:   "scan",
				Writes: []string{"sum"},
				Body: func(ctx proc.OpCtx) error {
					var sum int64
					err := ctx.Scan("KV", 0, 100, 2, func(_ storage.Key, row storage.Tuple) bool {
						sum += row[0].Int()
						return true
					})
					if err != nil {
						return err
					}
					ctx.Env().SetInt("sum", sum)
					return nil
				},
			})
		},
	})
	spec, _ := e.Spec("First2")
	env := buildEnv(spec, nil)
	txn := newTxn(w1, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env.Int("sum") != 12 { // 5 + 7
		t.Fatalf("initial sum = %d", env.Int("sum"))
	}
	// A row lands before the old cutoff.
	if _, err := w2.Run("Put", storage.Int(3), storage.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := txn.validateAndCommitHealing("First2"); err != nil {
		t.Fatal(err)
	}
	if env.Int("sum") != 8 { // 3 + 5
		t.Fatalf("healed sum = %d, want 8", env.Int("sum"))
	}
}

// TestTreeOrderAvoidsMembershipAbort demonstrates §4.5: under tree
// order, a key-dependent membership update inserts elements after the
// validation frontier, so a busy lock means waiting (the holder
// commits), never a deadlock-prevention abort. The same scenario
// under address order (TestDeadlockPreventionAbort) aborts.
func TestTreeOrderAvoidsMembershipAbort(t *testing.T) {
	cat := storage.NewCatalog()
	// PTR is rank 0 (validates first), VAL rank 1: healed membership
	// inserts for VAL always land after the PTR frontier.
	cat.MustCreateTable(storage.Schema{
		Name:    "PTR",
		Columns: []storage.ColumnDef{{Name: "p", Kind: storage.KindInt}},
		Rank:    0,
	})
	cat.MustCreateTable(storage.Schema{
		Name:    "VAL",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		Rank:    1,
	})
	ptr, _ := cat.Table("PTR")
	val, _ := cat.Table("VAL")
	for k := storage.Key(1); k <= 3; k++ {
		val.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}
	ptr.Put(1, storage.Tuple{storage.Int(2)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1}) // TreeOrder default
	e.MustRegister(&proc.Spec{
		Name: "Chase",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:   "readPtr",
				Writes: []string{"p"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("PTR", 1, nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("p", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeVal",
				KeyReads: []string{"p"},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("VAL", storage.Key(ctx.Env().Int("p")), []int{0},
						[]storage.Value{storage.Int(1)})
				},
			})
		},
	})
	w := e.Worker(0)
	spec, _ := e.Spec("Chase")
	env := buildEnv(spec, nil)
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	// Lock the rerouted target briefly from "another transaction";
	// release it while the healing transaction is spinning in its
	// main validation loop.
	v3, _ := val.Peek(3)
	if !v3.TryLock() {
		t.Fatal("pre-lock failed")
	}
	externalCommit(t, e, "PTR", 1, 0, storage.Int(3), storage.MakeTS(1, 1))

	done := make(chan error, 1)
	go func() { done <- txn.validateAndCommitHealing("Chase") }()
	// The validation loop is spinning on VAL[3] now; releasing the
	// lock lets it commit — no abort, exactly the §4.5 argument.
	v3.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("tree order still aborted: %v", err)
	}
	if got := v3.Tuple()[0].Int(); got != 1 {
		t.Fatalf("VAL[3] = %d, want 1", got)
	}
	if w.m.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 under tree order", w.m.Restarts)
	}
}
