package core

import (
	"fmt"
	"math/rand"
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// This file property-tests the heart of the paper's §4.4 claim: the
// effect of healing an invalidated transaction equals the effect of
// re-executing it from scratch against the post-conflict state.
//
// Strategy: generate a random procedure over a small KV table — a
// random DAG of reads (some used as keys downstream, some as values),
// computes, and writes. Execute its read phase; inject random
// committed external writes; let healing validate and commit. Then
// run the same procedure on an oracle database that already contains
// the external writes, serially. The two databases and the two output
// environments must agree exactly.

const eqKeys = 16

// randOp describes one generated operation.
type randOp struct {
	kind    int // 0 read, 1 write, 2 compute
	keyFrom int // -1: the op's fixed key; >=0: key comes from var of op i
	fixed   int64
	srcA    int // value inputs: outputs of ops srcA/srcB (or -1 = constant)
	srcB    int
	cnst    int64
}

// genProc turns a []randOp into a Spec. Variable v<i> is op i's
// output. Reads produce their cell value; computes produce a mix of
// their inputs; writes store a mix at their (possibly derived) key.
func genProc(ops []randOp) *proc.Spec {
	return &proc.Spec{
		Name: "Rand",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			for i, o := range ops {
				i, o := i, o
				out := fmt.Sprintf("v%d", i)
				var keyReads, valReads []string
				if o.keyFrom >= 0 {
					keyReads = append(keyReads, fmt.Sprintf("v%d", o.keyFrom))
				}
				if o.kind != 0 { // writes/computes consume value inputs
					if o.srcA >= 0 {
						valReads = append(valReads, fmt.Sprintf("v%d", o.srcA))
					}
					if o.srcB >= 0 && o.srcB != o.srcA {
						valReads = append(valReads, fmt.Sprintf("v%d", o.srcB))
					}
				}
				key := func(e *proc.Env) storage.Key {
					if o.keyFrom >= 0 {
						// Derived keys stay in range via modulo.
						k := e.Int(fmt.Sprintf("v%d", o.keyFrom)) % eqKeys
						if k < 0 {
							k = -k
						}
						return storage.Key(k)
					}
					return storage.Key(o.fixed)
				}
				val := func(e *proc.Env) int64 {
					v := o.cnst
					if o.srcA >= 0 {
						v += 3 * e.Int(fmt.Sprintf("v%d", o.srcA))
					}
					if o.srcB >= 0 {
						v += 7 * e.Int(fmt.Sprintf("v%d", o.srcB))
					}
					return v
				}
				switch o.kind {
				case 0: // read
					b.Op(proc.Op{
						Name:     fmt.Sprintf("read%d", i),
						KeyReads: keyReads,
						Writes:   []string{out},
						Body: func(ctx proc.OpCtx) error {
							row, ok, err := ctx.Read("KV", key(ctx.Env()), nil)
							if err != nil {
								return err
							}
							v := int64(0)
							if ok {
								v = row[0].Int()
							}
							ctx.Env().SetInt(out, v)
							return nil
						},
					})
				case 1: // write (also defines out so later ops can chain)
					b.Op(proc.Op{
						Name:     fmt.Sprintf("write%d", i),
						KeyReads: keyReads,
						ValReads: valReads,
						Writes:   []string{out},
						Body: func(ctx proc.OpCtx) error {
							e := ctx.Env()
							v := val(e)
							e.SetInt(out, v)
							return ctx.Write("KV", key(e), []int{0},
								[]storage.Value{storage.Int(v)})
						},
					})
				default: // compute
					b.Op(proc.Op{
						Name:     fmt.Sprintf("comp%d", i),
						ValReads: valReads,
						Writes:   []string{out},
						Body: func(ctx proc.OpCtx) error {
							ctx.Env().SetInt(out, val(ctx.Env()))
							return nil
						},
					})
				}
			}
		},
	}
}

// genOps draws a random well-formed op list.
func genOps(rng *rand.Rand, n int) []randOp {
	ops := make([]randOp, n)
	// Track which earlier ops produce usable outputs (all do).
	for i := range ops {
		o := &ops[i]
		o.kind = rng.Intn(3)
		if i == 0 {
			o.kind = 0 // start with a read
		}
		o.keyFrom = -1
		o.srcA, o.srcB = -1, -1
		o.fixed = rng.Int63n(eqKeys)
		o.cnst = rng.Int63n(100)
		if o.kind != 2 && i > 0 && rng.Intn(2) == 0 {
			o.keyFrom = rng.Intn(i) // key dependency
		}
		if o.kind != 0 && i > 0 {
			o.srcA = rng.Intn(i)
			if rng.Intn(2) == 0 {
				o.srcB = rng.Intn(i)
			}
		}
	}
	return ops
}

func kvCatalog(vals []int64) *storage.Catalog {
	cat := storage.NewCatalog()
	tab := cat.MustCreateTable(storage.Schema{
		Name:    "KV",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	for k, v := range vals {
		tab.Put(storage.Key(k), storage.Tuple{storage.Int(v)}, 0)
	}
	return cat
}

func kvState(cat *storage.Catalog) []int64 {
	tab, _ := cat.Table("KV")
	out := make([]int64, eqKeys)
	for k := 0; k < eqKeys; k++ {
		rec, ok := tab.Peek(storage.Key(k))
		if ok && rec.Visible() {
			out[k] = rec.Tuple()[0].Int()
		}
	}
	return out
}

func TestHealingEquivalentToReexecution(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		nOps := 2 + rng.Intn(8)
		ops := genOps(rng, nOps)
		spec := genProc(ops)

		initial := make([]int64, eqKeys)
		for i := range initial {
			initial[i] = rng.Int63n(1000)
		}
		// External committed writes injected mid-flight.
		nExt := 1 + rng.Intn(3)
		type ext struct {
			key storage.Key
			val int64
		}
		exts := make([]ext, nExt)
		for i := range exts {
			exts[i] = ext{storage.Key(rng.Int63n(eqKeys)), rng.Int63n(1000)}
		}

		// Healed execution: read phase on the initial state, external
		// commits, then validate-and-commit with healing.
		liveCat := kvCatalog(initial)
		liveEng := NewEngine(liveCat, Options{Protocol: Healing, Workers: 1})
		liveEng.MustRegister(spec)
		w := liveEng.Worker(0)
		env := buildEnv(spec, nil)
		prog := spec.Instantiate(env)
		txn := newTxn(w, prog, env, false)
		if err := txn.readPhase(); err != nil {
			t.Fatalf("trial %d: read phase: %v", trial, err)
		}
		liveTab, _ := liveCat.Table("KV")
		for i, x := range exts {
			rec, _ := liveTab.Peek(x.key)
			rec.Lock()
			rec.SetTuple(storage.Tuple{storage.Int(x.val)})
			rec.SetTimestamp(storage.MakeTS(1, uint32(i+1)))
			rec.Unlock()
		}
		if err := txn.validateAndCommitHealing("Rand"); err != nil {
			// A restart (deadlock prevention, divergence) is legal;
			// drive to completion through the public path, which is
			// serial here and must succeed.
			if err != errRestart {
				t.Fatalf("trial %d: %v", trial, err)
			}
			txn.finish(false)
			var rerr error
			env, rerr = w.Run("Rand")
			if rerr != nil {
				t.Fatalf("trial %d retry: %v", trial, rerr)
			}
		}

		// Oracle: serial execution on a database that already has the
		// external writes.
		oracleInit := append([]int64(nil), initial...)
		for _, x := range exts {
			oracleInit[x.key] = x.val
		}
		oracleCat := kvCatalog(oracleInit)
		oracleEng := NewEngine(oracleCat, Options{Protocol: Healing, Workers: 1})
		oracleEng.MustRegister(spec)
		oracleEnv, err := oracleEng.Worker(0).Run("Rand")
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}

		// Compare final database state and every output variable.
		liveState, oracleState := kvState(liveCat), kvState(oracleCat)
		for k := range liveState {
			if liveState[k] != oracleState[k] {
				t.Fatalf("trial %d: key %d healed=%d oracle=%d\nops: %+v\nexts: %+v",
					trial, k, liveState[k], oracleState[k], ops, exts)
			}
		}
		for i := 0; i < nOps; i++ {
			name := fmt.Sprintf("v%d", i)
			if env.Int(name) != oracleEnv.Int(name) {
				t.Fatalf("trial %d: output %s healed=%d oracle=%d\nops: %+v\nexts: %+v",
					trial, name, env.Int(name), oracleEnv.Int(name), ops, exts)
			}
		}
	}
}
