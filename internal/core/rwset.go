package core

import (
	"sort"

	"thedb/internal/btree"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// AccessMode describes how a transaction touched a record (§4.1).
type AccessMode uint8

// Access modes.
const (
	ModeRead  AccessMode = 1 << iota // R
	ModeWrite                        // W
)

// writeRec is one operation's buffered write to a record. Writes are
// kept per operation so that a key-dependent re-execution can retract
// exactly its own effects during read/write-set membership updates.
type writeRec struct {
	opID int
	seq  int // registration order within the transaction
	cols []int
	vals []storage.Value
}

// Element is one read/write-set entry (§4.1): the record it points
// at, the access mode, the R-timestamp observed when first read, and
// the bookmarks of the operations that read it. It additionally
// carries the local read copies used for false-invalidation
// elimination (§4.5) and the buffered write effects installed at
// commit.
type Element struct {
	rec *storage.Record
	tab *storage.Table
	// rank caches tab.Rank() for validation-order sorting.
	rank int

	mode AccessMode
	rts  uint64
	// seenVisible records the visibility observed at first read, so
	// the false-invalidation check can reject visibility flips.
	seenVisible bool

	// bookmarks lists the operations that read this record; the
	// first entry is the paper's bookmark. (The paper stores only
	// the first reader; restoring every reader is strictly safer
	// when two independent operations read the same record.)
	bookmarks []*OpRun

	// readCols is the union of columns read (nil = all columns);
	// readCopy/copied hold local copies of those columns.
	readCols []int
	allCols  bool
	readCopy storage.Tuple
	copied   []bool

	writes []writeRec

	isInsert    bool
	insertTuple storage.Tuple
	isDelete    bool
	// insertConflict marks an insert that found a visible record at
	// read time. Validation decides its fate: if the record is
	// unchanged since, the key genuinely exists at commit time and
	// the transaction gets a duplicate-key abort; if it changed, the
	// insert key came from a stale read and the attempt restarts (or
	// heals).
	insertConflict bool
	// insertSeq/deleteSeq record the program-order position of the
	// buffered insert/delete, so reads by earlier operations (during
	// healing replay) do not observe effects of later ones.
	insertSeq int
	deleteSeq int

	// createdDummy marks that this transaction materialized the
	// record as an invisible dummy (read of a missing key or an
	// insert); it is retired to the GC when the transaction ends.
	createdDummy bool

	// uses counts access-cache entries referencing this element, so
	// re-execution can detect when an element left the footprint.
	uses int

	locked  bool
	removed bool

	// tplMode is the 2PL lock state held on the record (THEDB-2PL
	// only).
	tplMode uint8
}

// Record returns the record the element points at.
func (el *Element) Record() *storage.Record { return el.rec }

// Mode returns the access mode.
func (el *Element) Mode() AccessMode { return el.mode }

// RTS returns the R-timestamp.
func (el *Element) RTS() uint64 { return el.rts }

// noteRead merges a read of cols (nil = all) over the observed tuple
// cur, maintaining the local read copies when enabled. It never
// refreshes the R-timestamp: rts is captured when the element is
// acquired, strictly before any data load, so that a concurrent
// commit between timestamp capture and data read is always detected
// as a timestamp mismatch (never the reverse).
func (el *Element) noteRead(op *OpRun, cols []int, cur storage.Tuple, keepCopy bool) {
	el.mode |= ModeRead
	if op != nil && !containsOp(el.bookmarks, op) {
		el.bookmarks = append(el.bookmarks, op)
	}
	if !keepCopy {
		el.allCols = true
		el.readCols = nil
		return
	}
	if el.readCopy == nil {
		el.readCopy = make(storage.Tuple, len(cur))
		el.copied = make([]bool, len(cur))
	}
	if cols == nil {
		el.allCols = true
		el.readCols = nil
		for i, v := range cur {
			if !el.copied[i] {
				el.readCopy[i] = v
				el.copied[i] = true
			}
		}
		return
	}
	for _, c := range cols {
		if !el.copied[c] {
			el.readCopy[c] = cur[c]
			el.copied[c] = true
			if !el.allCols {
				el.readCols = appendUnique(el.readCols, c)
			}
		}
	}
}

// falseInvalidation reports whether the record's current tuple agrees
// with the local copies on every column this transaction read — the
// §4.5 check dismissing timestamp mismatches caused by writes to
// unrelated columns. It requires read copies to be maintained.
func (el *Element) falseInvalidation(cur storage.Tuple) bool {
	if el.readCopy == nil {
		return false
	}
	if el.allCols {
		for i := range cur {
			if el.copied[i] && !cur[i].Equal(el.readCopy[i]) {
				return false
			}
		}
		return true
	}
	for _, c := range el.readCols {
		if !cur[c].Equal(el.readCopy[c]) {
			return false
		}
	}
	return true
}

// refreshCopies reloads the local read copies from cur after healing
// restored the element.
func (el *Element) refreshCopies(cur storage.Tuple) {
	if el.readCopy == nil {
		return
	}
	for i := range el.copied {
		if el.copied[i] {
			el.readCopy[i] = cur[i]
		}
	}
}

// addWrite buffers a write by op.
func (el *Element) addWrite(opID, seq int, cols []int, vals []storage.Value) {
	el.mode |= ModeWrite
	el.writes = append(el.writes, writeRec{opID: opID, seq: seq, cols: cols, vals: vals})
}

// dropWrites retracts every buffered write of op (key-dependent
// re-execution).
func (el *Element) dropWrites(opID int) {
	out := el.writes[:0]
	for _, w := range el.writes {
		if w.opID != opID {
			out = append(out, w)
		}
	}
	el.writes = out
	if len(el.writes) == 0 && !el.isInsert && !el.isDelete {
		el.mode &^= ModeWrite
	}
}

// hasWrites reports whether any write effect is buffered.
func (el *Element) hasWrites() bool {
	return len(el.writes) > 0 || el.isInsert || el.isDelete
}

// applyWrites folds the buffered writes over base in registration
// order, returning a fresh tuple (or base itself when no writes
// apply).
func (el *Element) applyWrites(base storage.Tuple) storage.Tuple {
	return el.applyWritesBefore(base, int(^uint(0)>>1))
}

// applyWritesBefore folds only the writes with fold position below
// beforeSeq, i.e. those issued by operations preceding the reader in
// program order.
func (el *Element) applyWritesBefore(base storage.Tuple, beforeSeq int) storage.Tuple {
	if len(el.writes) == 0 {
		return base
	}
	sort.SliceStable(el.writes, func(i, j int) bool { return el.writes[i].seq < el.writes[j].seq })
	var t storage.Tuple
	for _, w := range el.writes {
		if w.seq >= beforeSeq {
			break
		}
		if t == nil {
			t = base.Clone()
		}
		for i, c := range w.cols {
			t[c] = w.vals[i]
		}
	}
	if t == nil {
		return base
	}
	return t
}

// writeColumns returns the distinct columns written, in fold order,
// with their final values (for value logging).
func (el *Element) writeColumns() (cols []int, vals []storage.Value) {
	sort.SliceStable(el.writes, func(i, j int) bool { return el.writes[i].seq < el.writes[j].seq })
	pos := map[int]int{}
	for _, w := range el.writes {
		for i, c := range w.cols {
			if p, ok := pos[c]; ok {
				vals[p] = w.vals[i]
			} else {
				pos[c] = len(cols)
				cols = append(cols, c)
				vals = append(vals, w.vals[i])
			}
		}
	}
	return cols, vals
}

func containsOp(ops []*OpRun, op *OpRun) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ScanAccess records one range scan's leaf observations for phantom
// validation (§4.7.2). The records returned by the scan appear as
// ordinary read elements; the leaf versions detect structural change
// (inserts, deletes, splits) within the scanned range.
type ScanAccess struct {
	op        *OpRun
	primary   storage.ScanRefs
	secondary []btree.ScanRef[string, *storage.Record]
	// removed marks observations retracted by a key-dependent
	// re-execution of the owning operation.
	removed bool
}

// changed reports whether any observed leaf was structurally modified
// since the scan.
func (s *ScanAccess) changed() bool {
	for _, r := range s.primary {
		if r.Changed() {
			return true
		}
	}
	for _, r := range s.secondary {
		if r.Changed() {
			return true
		}
	}
	return false
}

// OpRun is the access-cache entry of one operation (§4.1): the
// ordered list of record accesses it performed, enabling cached-mode
// replay (value-dependent restoration) and re-execution diffing
// (key-dependent restoration).
type OpRun struct {
	op       *proc.Op
	accesses []accessEntry
	// healed marks the op as already restored in the current healing
	// pass (each op is restored at most once, §4.2.2).
	healed bool
	// queued marks membership in the current healing queue.
	queued bool
}

type accessKind uint8

const (
	accessPoint accessKind = iota
	accessScan
)

type accessEntry struct {
	kind     accessKind
	elem     *Element // accessPoint
	readCols []int
	// seq is the entry's stable write fold position (program order),
	// reused when a replayed write re-buffers its effect.
	seq int
	// isWrite marks buffered-effect entries (write/insert/delete).
	// When healing changes such an entry's element, later operations
	// that read the element through the database must be restored
	// too (intra-transaction read-after-write flows are invisible to
	// the variable-level dependency graph).
	isWrite bool
	scan    *ScanAccess // accessScan
	// scanElems lists the elements produced by the scan, for replay.
	scanElems []*Element
}

// RWSet is a transaction's read/write set plus its scan (node) set.
type RWSet struct {
	elems []*Element
	byRec map[*storage.Record]*Element
	scans []*ScanAccess
	// sorted reports whether elems is currently in validation order.
	sorted bool
	order  OrderMode
}

func newRWSet() *RWSet {
	return &RWSet{byRec: make(map[*storage.Record]*Element, 16)}
}

// lookup returns the element for rec, if any.
func (s *RWSet) lookup(rec *storage.Record) *Element { return s.byRec[rec] }

// add registers a new element.
func (s *RWSet) add(el *Element) {
	s.byRec[el.rec] = el
	if !s.sorted {
		s.elems = append(s.elems, el)
		return
	}
	// Membership update during validation: keep the slice sorted.
	i := sort.Search(len(s.elems), func(i int) bool {
		return !less(s.elems[i], el, s.order)
	})
	s.elems = append(s.elems, nil)
	copy(s.elems[i+1:], s.elems[i:])
	s.elems[i] = el
}

// sortFor orders the elements for validation under the given order
// mode.
func (s *RWSet) sortFor(order OrderMode) {
	s.order = order
	sort.Slice(s.elems, func(i, j int) bool { return less(s.elems[i], s.elems[j], order) })
	s.sorted = true
}

// indexOf returns el's current position in the sorted slice.
func (s *RWSet) indexOf(el *Element) int {
	i := sort.Search(len(s.elems), func(i int) bool {
		return !less(s.elems[i], el, s.order)
	})
	for ; i < len(s.elems); i++ {
		if s.elems[i] == el {
			return i
		}
	}
	return -1
}

// less implements the global validation orders of §4.2.1/§4.5/App. G.
func less(a, b *Element, order OrderMode) bool {
	switch order {
	case TreeOrder:
		if a.rank != b.rank {
			return a.rank < b.rank
		}
	case ReverseTreeOrder:
		if a.rank != b.rank {
			return a.rank > b.rank
		}
	}
	return a.rec.Addr() < b.rec.Addr()
}
