package core

import (
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// TestReadAfterHealedWrite pins the intra-transaction
// read-after-write flow: op1's buffered write to KV[8] is restored by
// healing (it is value-dependent on the inconsistent read), and op2 —
// which read KV[8] through the database, a dependency invisible to
// the variable-level graph — must be restored as well. Regression
// test for the notifyReaders mechanism.
func TestReadAfterHealedWrite(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "KV",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("KV")
	tab.Put(8, storage.Tuple{storage.Int(0)}, 0)
	tab.Put(10, storage.Tuple{storage.Int(100)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1})
	e.MustRegister(&proc.Spec{
		Name: "P",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{ // op0: read KV[10] -> v0
				Name:   "r10",
				Writes: []string{"v0"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("KV", 10, nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("v0", row[0])
					return nil
				},
			})
			b.Op(proc.Op{ // op1: write KV[8] = v0 (val-dep on op0)
				Name:     "w8",
				ValReads: []string{"v0"},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("KV", 8, []int{0},
						[]storage.Value{storage.Int(ctx.Env().Int("v0"))})
				},
			})
			b.Op(proc.Op{ // op2: read KV[8] -> v2 (DB flow from op1)
				Name:   "r8",
				Writes: []string{"v2"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("KV", 8, nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("v2", row[0])
					return nil
				},
			})
		},
	})
	w := e.Worker(0)
	spec, _ := e.Spec("P")
	env := buildEnv(spec, nil)
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "KV", 10, 0, storage.Int(777), storage.MakeTS(1, 1))
	if err := txn.validateAndCommitHealing("P"); err != nil {
		t.Fatal(err)
	}
	if env.Int("v2") != 777 {
		t.Fatalf("v2 = %d, want 777", env.Int("v2"))
	}
}

// TestHealedWriteRetraction pins the reexec write-retraction bug: a
// key-dependent re-execution must retract the op's old buffered write
// before the access list is rebuilt, or the stale write commits to
// the stale key.
func TestHealedWriteRetraction(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "KV",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("KV")
	tab.Put(1, storage.Tuple{storage.Int(2)}, 0) // pointer cell
	tab.Put(2, storage.Tuple{storage.Int(0)}, 0)
	tab.Put(3, storage.Tuple{storage.Int(0)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1})
	e.MustRegister(&proc.Spec{
		Name: "WriteAtPointer",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:   "readPtr",
				Writes: []string{"p"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("KV", 1, nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("p", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeAtP",
				KeyReads: []string{"p"},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("KV", storage.Key(ctx.Env().Int("p")), []int{0},
						[]storage.Value{storage.Int(99)})
				},
			})
		},
	})
	w := e.Worker(0)
	spec, _ := e.Spec("WriteAtPointer")
	env := buildEnv(spec, nil)
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "KV", 1, 0, storage.Int(3), storage.MakeTS(1, 1))
	if err := txn.validateAndCommitHealing("WriteAtPointer"); err != nil {
		t.Fatal(err)
	}
	r2, _ := tab.Peek(2)
	if got := r2.Tuple()[0].Int(); got != 0 {
		t.Fatalf("stale key written: KV[2] = %d, want 0", got)
	}
	r3, _ := tab.Peek(3)
	if got := r3.Tuple()[0].Int(); got != 99 {
		t.Fatalf("healed key missed: KV[3] = %d, want 99", got)
	}
}
