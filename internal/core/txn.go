package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// execMode selects how OpCtx primitives behave.
type execMode uint8

const (
	// modeExec is the initial read phase: every access is performed
	// against the index and registered in the access cache.
	modeExec execMode = iota
	// modeReplay is value-dependent restoration (§4.2.2): accesses
	// are replayed positionally against the cached record addresses;
	// no index lookups happen.
	modeReplay
	// modeReexec is key-dependent restoration: the operation re-runs
	// with fresh index lookups and the read/write-set membership is
	// updated with the access-set diff.
	modeReexec
)

// errDiverged signals that a cached replay no longer matches the
// operation's original access pattern; the engine falls back to
// abort-and-restart, which is always safe.
var errDiverged = errors.New("core: cached replay diverged")

// Txn is one transaction attempt. It implements proc.OpCtx.
type Txn struct {
	w    *Worker
	e    *Engine
	prog *proc.Program
	env  *proc.Env
	rw   *RWSet
	runs []*OpRun

	mode   execMode
	cur    *OpRun
	cursor int // replay cursor into cur.accesses
	nacc   int // accesses registered for cur in this (re)run

	// frontier is the index of the element currently being validated
	// (-1 before validation starts). Membership inserts at or below
	// the frontier must take their lock no-wait (§4.2.2).
	frontier int

	locked []*Element // elements whose record meta-lock we hold

	// adhoc transactions skip access-cache maintenance and are
	// validated with plain OCC (§4.8).
	adhoc bool

	// useTPL switches the access primitives to lock-at-access
	// two-phase locking (THEDB-2PL and the second leg of
	// THEDB-HYBRID).
	useTPL bool

	// noYield suppresses interleaving yields for this attempt (the
	// starvation guard of Worker.backoff).
	noYield bool

	// tplMeta makes the 2PL leg lock through the record meta word so
	// it serializes against concurrent OCC transactions (HYBRID).
	tplMeta bool

	// noTrack marks a fallback-rung attempt running a non-healing
	// protocol under a Healing engine: healing bookkeeping (access
	// cache, read copies) would never be consumed, so skip it.
	noTrack bool

	healOps int // operations restored in this attempt (metrics)

	// healDur accumulates wall time spent in healing passes when
	// detailed metrics are on (Fig. 19).
	healDur time.Duration
}

func newTxn(w *Worker, prog *proc.Program, env *proc.Env, adhoc bool) *Txn {
	t := &Txn{
		w:        w,
		e:        w.e,
		prog:     prog,
		env:      env,
		rw:       newRWSet(),
		frontier: -1,
		adhoc:    adhoc,
	}
	t.runs = make([]*OpRun, len(prog.Ops))
	for i, op := range prog.Ops {
		t.runs[i] = &OpRun{op: op}
	}
	return t
}

// Env implements proc.OpCtx.
func (t *Txn) Env() *proc.Env { return t.env }

// trackAccesses reports whether the access cache is maintained for
// this transaction. Only the healing protocol consumes it, so the
// baselines skip the maintenance entirely (the paper's baselines do
// not carry healing structures either); it is also off for ad-hoc
// transactions (§4.8) and under the Table 4 ablation.
func (t *Txn) trackAccesses() bool {
	return t.e.opts.Protocol == Healing && !t.adhoc && !t.noTrack && !t.e.opts.NoAccessCache
}

// keepReadCopies reports whether per-read column copies are
// maintained (false-invalidation elimination, §4.5) — healing only.
func (t *Txn) keepReadCopies() bool {
	return t.e.opts.Protocol == Healing && !t.adhoc && !t.noTrack && !t.e.opts.NoReadCopies
}

// readPhase executes all operations in program order.
func (t *Txn) readPhase() error {
	t.mode = modeExec
	interleave := t.e.opts.Interleave && !t.noYield
	for i := range t.runs {
		t.cur = t.runs[i]
		t.nacc = 0
		if err := t.cur.op.Body(t); err != nil {
			return err
		}
		if interleave {
			runtime.Gosched()
		}
	}
	return nil
}

// seqFor derives a stable fold-order sequence for the n-th access of
// an operation: program order across operations, registration order
// within one.
func seqFor(opID, n int) int { return opID<<20 | n }

// acquire returns the element for (tab, key), creating the record as
// an invisible dummy when absent (§4.7.1) and handling membership
// insertion during key-dependent re-execution (§4.2.2).
func (t *Txn) acquire(tab *storage.Table, key storage.Key) (*Element, error) {
	rec, created := tab.GetOrCreateDummy(key)
	el := t.rw.lookup(rec)
	if el != nil {
		rec.Unpin() // the element already holds one pin
		if el.removed {
			el.removed = false // back in the footprint
		}
		return el, nil
	}
	el = &Element{rec: rec, tab: tab, rank: tab.Rank(), createdDummy: created}
	el.rts, _, el.seenVisible = rec.Meta()
	t.rw.add(el)
	if t.mode == modeReexec && t.rw.sorted {
		// Membership update: if the new element sorts at or before
		// the validation frontier, its lock must be taken now,
		// no-wait (Algorithm 2); otherwise the main validation loop
		// will reach it.
		if idx := t.rw.indexOf(el); idx <= t.frontier {
			if !t.tryLockBounded(el) {
				return nil, errRestart
			}
			// We hold the lock, so the fresh read below is
			// consistent by construction.
			el.rts, _, el.seenVisible = rec.Meta()
			t.frontier++ // the frontier element shifted right by the insert
		}
	}
	return el, nil
}

// tryLockBounded attempts the no-wait lock acquisition of the healing
// membership update, with the configured bounded number of attempts.
func (t *Txn) tryLockBounded(el *Element) bool {
	for i := 0; i < t.e.opts.MaxLockAttempts; i++ {
		if el.rec.TryLock() {
			el.locked = true
			t.locked = append(t.locked, el)
			return true
		}
	}
	return false
}

// lockElement spin-locks an element in the main validation loop
// (safe: global order) and records it for release.
func (t *Txn) lockElement(el *Element) {
	el.rec.Lock()
	el.locked = true
	t.locked = append(t.locked, el)
}

// visibleTo computes the record's visibility from this transaction's
// perspective, folding in buffered inserts and deletes.
func visibleTo(el *Element) bool {
	if el.isInsert {
		return true
	}
	if el.isDelete {
		return false
	}
	return el.rec.Visible()
}

// viewAt returns the element's row image and visibility as observed
// by a read at fold position beforeSeq: the record's current global
// copy overlaid with only those buffered effects issued by
// program-order-earlier operations. Healing replays depend on this
// bound — a restored early read must not observe the transaction's
// own later writes.
func (t *Txn) viewAt(el *Element, beforeSeq int) (storage.Tuple, bool) {
	return t.viewOn(el, beforeSeq, el.rec.Tuple(), el.rec.Visible())
}

// viewOn is viewAt over a caller-preloaded global copy. The caller
// must pass the very load it hands to noteRead: validating one load
// while the operation body consumed another lets a concurrent commit
// slip between them and certify a value that was never used.
func (t *Txn) viewOn(el *Element, beforeSeq int, base storage.Tuple, visible bool) (storage.Tuple, bool) {
	if el.isInsert && el.insertSeq < beforeSeq {
		base = el.insertTuple
		visible = true
	}
	if el.isDelete && el.deleteSeq < beforeSeq {
		visible = false
	}
	return el.applyWritesBefore(base, beforeSeq), visible
}

// Read implements proc.OpCtx.
func (t *Txn) Read(table string, key storage.Key, cols []int) (storage.Tuple, bool, error) {
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessPoint, false)
		if err != nil {
			return nil, false, err
		}
		if err := t.matchPoint(entry, table, key); err != nil {
			return nil, false, err
		}
		img, vis := t.viewAt(entry.elem, entry.seq)
		return img, vis, nil
	}
	tab, err := t.table(table)
	if err != nil {
		return nil, false, err
	}
	el, err := t.acquire(tab, key)
	if err != nil {
		return nil, false, err
	}
	if t.useTPL {
		if err := t.tplLock(el, false); err != nil {
			return nil, false, err
		}
	}
	seq := seqFor(t.cur.op.ID, t.nacc)
	cur := el.rec.Tuple() // single load: consumed, copied, and validated together
	img, vis := t.viewOn(el, seq, cur, el.rec.Visible())
	el.noteRead(t.bookmark(), cols, cur, t.keepReadCopies())
	t.register(accessEntry{kind: accessPoint, elem: el, readCols: cols, seq: seq})
	return img, vis, nil
}

// Write implements proc.OpCtx.
func (t *Txn) Write(table string, key storage.Key, cols []int, vals []storage.Value) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("core: write cols/vals mismatch (%d vs %d)", len(cols), len(vals))
	}
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessPoint, true)
		if err != nil {
			return err
		}
		if err := t.matchPoint(entry, table, key); err != nil {
			return err
		}
		// The op's previous writes were retracted before replay;
		// re-buffer with the entry's original fold position.
		entry.elem.addWrite(t.cur.op.ID, entry.seq, cols, vals)
		return nil
	}
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	el, err := t.acquire(tab, key)
	if err != nil {
		return err
	}
	if t.useTPL {
		if err := t.tplLock(el, true); err != nil {
			return err
		}
	}
	seq := seqFor(t.cur.op.ID, t.nacc)
	if _, vis := t.viewAt(el, seq); !vis {
		return proc.UserAbort(fmt.Sprintf("write to non-existent record %s[%d]", table, key))
	}
	el.addWrite(t.cur.op.ID, seq, cols, vals)
	t.register(accessEntry{kind: accessPoint, elem: el, seq: seq, isWrite: true})
	return nil
}

// Insert implements proc.OpCtx.
func (t *Txn) Insert(table string, key storage.Key, tuple storage.Tuple) error {
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessPoint, true)
		if err != nil {
			return err
		}
		if err := t.matchPoint(entry, table, key); err != nil {
			return err
		}
		entry.elem.insertTuple = tuple
		return nil
	}
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	if len(tuple) != len(tab.Schema().Columns) {
		return fmt.Errorf("core: insert into %s: tuple width %d != %d", table, len(tuple), len(tab.Schema().Columns))
	}
	el, err := t.acquire(tab, key)
	if err != nil {
		return err
	}
	if t.useTPL {
		if err := t.tplLock(el, true); err != nil {
			return err
		}
	}
	if visibleTo(el) {
		if t.useTPL {
			// 2PL holds the record lock, so the observation is
			// current: the key exists.
			return proc.UserAbort(fmt.Sprintf("duplicate key %s[%d]", table, key))
		}
		// Optimistic protocols defer the verdict to validation: an
		// unchanged record there is a genuine duplicate; a changed
		// one means our key came from a stale read (e.g. a raced
		// DISTRICT.next_o_id) and healing or a restart resolves it.
		el.insertConflict = true
	}
	if el.isDelete {
		// Own delete followed by re-insert: fold into an update.
		el.isDelete = false
		seq := seqFor(t.cur.op.ID, t.nacc)
		cols := make([]int, len(tuple))
		for i := range cols {
			cols[i] = i
		}
		el.addWrite(t.cur.op.ID, seq, cols, tuple)
		t.register(accessEntry{kind: accessPoint, elem: el, seq: seq, isWrite: true})
		return nil
	}
	el.mode |= ModeWrite
	el.isInsert = true
	el.insertTuple = tuple
	el.insertSeq = seqFor(t.cur.op.ID, t.nacc)
	t.register(accessEntry{kind: accessPoint, elem: el, seq: el.insertSeq, isWrite: true})
	return nil
}

// Delete implements proc.OpCtx.
func (t *Txn) Delete(table string, key storage.Key) error {
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessPoint, true)
		if err != nil {
			return err
		}
		return t.matchPoint(entry, table, key)
	}
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	el, err := t.acquire(tab, key)
	if err != nil {
		return err
	}
	if t.useTPL {
		if err := t.tplLock(el, true); err != nil {
			return err
		}
	}
	if !visibleTo(el) {
		return proc.UserAbort(fmt.Sprintf("delete of non-existent record %s[%d]", table, key))
	}
	if el.isInsert {
		// Deleting our own uncommitted insert cancels it.
		el.isInsert = false
		el.insertTuple = nil
		el.dropWrites(-1) // keep writes of other ops; -1 drops none
	} else {
		el.mode |= ModeWrite
		el.isDelete = true
		el.deleteSeq = seqFor(t.cur.op.ID, t.nacc)
	}
	t.register(accessEntry{kind: accessPoint, elem: el, seq: seqFor(t.cur.op.ID, t.nacc), isWrite: true})
	return nil
}

// Scan implements proc.OpCtx.
func (t *Txn) Scan(table string, lo, hi storage.Key, limit int, fn func(key storage.Key, row storage.Tuple) bool) error {
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessScan, false)
		if err != nil {
			return err
		}
		for _, el := range entry.scanElems {
			img, vis := t.viewAt(el, entry.seq)
			if !vis {
				continue
			}
			if !fn(el.rec.Key(), img) {
				break
			}
		}
		return nil
	}
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	if tab.Schema() == nil || !tab.Schema().Ordered {
		return fmt.Errorf("core: table %s has no ordered index", table)
	}
	seq := seqFor(t.cur.op.ID, t.nacc)
	var scanErr error
	var elems []*Element
	seen := 0
	refs := tab.RangeScan(lo, hi, func(k storage.Key, rec *storage.Record) bool {
		el, aerr := t.acquireScanned(tab, rec) // captures rts before the data load
		if aerr != nil {
			scanErr = aerr
			return false
		}
		cur := rec.Tuple() // single load: consumed, copied, validated together
		el.noteRead(t.bookmark(), nil, cur, t.keepReadCopies())
		elems = append(elems, el)
		img, vis := t.viewOn(el, seq, cur, rec.Visible())
		if !vis {
			// Invisible records join the read set (their visibility
			// flip at a concurrent commit changes their timestamp,
			// which validation detects) but are not exposed.
			return true
		}
		seen++
		if !fn(k, img) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	if scanErr != nil {
		return scanErr
	}
	sa := &ScanAccess{op: t.cur, primary: refs}
	t.rw.scans = append(t.rw.scans, sa)
	t.register(accessEntry{kind: accessScan, scan: sa, scanElems: elems, seq: seq})
	return nil
}

// ScanMin implements proc.OpCtx.
func (t *Txn) ScanMin(table string, lo, hi storage.Key) (storage.Key, storage.Tuple, bool, error) {
	var (
		rk  storage.Key
		rt  storage.Tuple
		got bool
	)
	err := t.Scan(table, lo, hi, 1, func(k storage.Key, row storage.Tuple) bool {
		rk, rt, got = k, row, true
		return false
	})
	return rk, rt, got, err
}

// ScanSec implements proc.OpCtx.
func (t *Txn) ScanSec(table, index string, lo, hi string, limit int, fn func(pk storage.Key, row storage.Tuple) bool) error {
	if t.mode == modeReplay {
		entry, err := t.nextEntry(accessScan, false)
		if err != nil {
			return err
		}
		for _, el := range entry.scanElems {
			img, vis := t.viewAt(el, entry.seq)
			if !vis {
				continue
			}
			if !fn(el.rec.Key(), img) {
				break
			}
		}
		return nil
	}
	tab, err := t.table(table)
	if err != nil {
		return err
	}
	idx := tab.SecondaryIndexID(index)
	if idx < 0 {
		return fmt.Errorf("core: table %s has no index %q", table, index)
	}
	seq := seqFor(t.cur.op.ID, t.nacc)
	var scanErr error
	var elems []*Element
	seen := 0
	refs := tab.SecondaryScan(idx, lo, hi, func(_ string, rec *storage.Record) bool {
		el, aerr := t.acquireScanned(tab, rec) // captures rts before the data load
		if aerr != nil {
			scanErr = aerr
			return false
		}
		cur := rec.Tuple() // single load: consumed, copied, validated together
		el.noteRead(t.bookmark(), nil, cur, t.keepReadCopies())
		elems = append(elems, el)
		img, vis := t.viewOn(el, seq, cur, rec.Visible())
		if !vis {
			return true
		}
		seen++
		if !fn(rec.Key(), img) {
			return false
		}
		return limit <= 0 || seen < limit
	})
	if scanErr != nil {
		return scanErr
	}
	sa := &ScanAccess{op: t.cur, secondary: refs}
	t.rw.scans = append(t.rw.scans, sa)
	t.register(accessEntry{kind: accessScan, scan: sa, scanElems: elems, seq: seq})
	return nil
}

// acquireScanned is acquire for a record already located by a scan:
// the record is pinned explicitly (scans bypass Table.Get).
func (t *Txn) acquireScanned(tab *storage.Table, rec *storage.Record) (*Element, error) {
	el := t.rw.lookup(rec)
	if el != nil {
		if el.removed {
			el.removed = false
		}
		return el, nil
	}
	rec.Pin()
	el = &Element{rec: rec, tab: tab, rank: tab.Rank()}
	el.rts, _, el.seenVisible = rec.Meta()
	t.rw.add(el)
	if t.mode == modeReexec && t.rw.sorted {
		if idx := t.rw.indexOf(el); idx <= t.frontier {
			if !t.tryLockBounded(el) {
				return nil, errRestart
			}
			el.rts, _, el.seenVisible = rec.Meta()
			t.frontier++
		}
	}
	if t.useTPL {
		if err := t.tplLock(el, false); err != nil {
			return nil, err
		}
	}
	return el, nil
}

// bookmark returns the current op for bookmark registration, or nil
// when the access cache is disabled.
func (t *Txn) bookmark() *OpRun {
	if !t.trackAccesses() {
		return nil
	}
	return t.cur
}

// register appends an access-cache entry for the current op.
func (t *Txn) register(e accessEntry) {
	if e.elem != nil {
		e.elem.uses++
	}
	for _, el := range e.scanElems {
		el.uses++
	}
	if e.seq == 0 && e.kind == accessPoint {
		e.seq = seqFor(t.cur.op.ID, t.nacc)
	}
	t.nacc++
	if !t.trackAccesses() {
		return
	}
	t.cur.accesses = append(t.cur.accesses, e)
}

// nextEntry advances the replay cursor, checking that the replayed
// access still matches the cached one in kind and read/write class. A
// mismatch means the operation's control flow branched differently on
// the healed values — the access cache is useless then, and the
// transaction falls back to abort-and-restart.
func (t *Txn) nextEntry(kind accessKind, isWrite bool) (*accessEntry, error) {
	if t.cursor >= len(t.cur.accesses) {
		return nil, errDiverged
	}
	e := &t.cur.accesses[t.cursor]
	t.cursor++
	if e.kind != kind || e.isWrite != isWrite {
		return nil, errDiverged
	}
	return e, nil
}

// matchPoint additionally verifies a replayed point access targets
// the same record as the cached entry.
func (t *Txn) matchPoint(e *accessEntry, table string, key storage.Key) error {
	if e.elem == nil || e.elem.rec.Key() != key || e.elem.tab.Schema().Name != table {
		return errDiverged
	}
	return nil
}

func (t *Txn) table(name string) (*storage.Table, error) {
	tab, ok := t.e.catalog.Table(name)
	if !ok {
		return nil, fmt.Errorf("core: no such table %q", name)
	}
	return tab, nil
}

// finish releases locks and pins and retires dummies; called on both
// commit and abort paths, after the write phase if any.
func (t *Txn) finish(committed bool) {
	for _, el := range t.locked {
		el.rec.Unlock()
		el.locked = false
	}
	t.locked = t.locked[:0]
	for _, el := range t.rw.elems {
		rec := el.rec
		if el.tplMode != tplNone {
			releaseTPL(el)
		}
		if el.createdDummy && (!committed || el.removed || !el.isInsert) {
			// A dummy we materialized that did not become a real
			// record: hand it to the GC (it reclaims once unpinned).
			t.e.gc.Retire(rec)
		}
		rec.Unpin()
	}
}
