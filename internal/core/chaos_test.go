package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"thedb/internal/fault"
	"thedb/internal/obs"
	"thedb/internal/oracle"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// dumpEvents logs the flight recorder's merged, time-ordered event
// interleaving — the post-mortem attached to every chaos failure.
func dumpEvents(t *testing.T, rec *obs.Recorder, cat *storage.Catalog) {
	t.Helper()
	var sb strings.Builder
	rec.DumpWith(&sb, func(id int) string {
		if tab := cat.TableByID(id); tab != nil {
			return tab.Schema().Name
		}
		return fmt.Sprintf("table#%d", id)
	})
	t.Logf("flight recorder (%d events recorded, %d dropped):\n%s",
		rec.Recorded(), rec.Dropped(), sb.String())
}

// auditSpec builds a read-only procedure summing all account
// balances. A serializable engine must show it the invariant total at
// every commit, no matter how hostile the schedule.
func auditSpec(accounts int) *proc.Spec {
	return &proc.Spec{
		Name: "Audit",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:   "sum",
				Writes: []string{"total"},
				Body: func(ctx proc.OpCtx) error {
					var sum int64
					for k := 1; k <= accounts; k++ {
						row, _, err := ctx.Read("BALANCE", storage.Key(k), []int{0})
						if err != nil {
							return err
						}
						sum += row[0].Int()
					}
					ctx.Env().SetInt("total", sum)
					return nil
				},
			})
		},
	}
}

// TestChaosTortureSerializable is the headline robustness test: many
// distinct seeded hostile schedules × several protocols × contended
// workers, with the serializability oracle auditing every committed
// footprint. The workload mixes the paper's transfer example (value
// and key dependencies, so healing has real repair work), read-only
// audits that must observe the conserved total at commit time, and
// per-worker insert/delete churn that drives records through delete,
// garbage collection and fresh-dummy re-creation.
func TestChaosTortureSerializable(t *testing.T) {
	seeds := 64
	if testing.Short() {
		seeds = 8
	}
	// Healing is the paper's contribution and gets double weight; the
	// optimistic baselines and the hybrid must survive the same abuse.
	protos := []Protocol{Healing, Healing, OCC, Silo, Hybrid}
	for seed := 0; seed < seeds; seed++ {
		proto := protos[seed%len(protos)]
		t.Run(fmt.Sprintf("seed=%d/%v", seed, proto), func(t *testing.T) {
			t.Parallel()
			runChaosSeed(t, uint64(seed)+1, proto)
		})
	}
}

func runChaosSeed(t *testing.T, seed uint64, proto Protocol) {
	const (
		accounts = 8
		workers  = 4
		txnsPer  = 120
		initial  = 1000
	)
	cat := storage.NewCatalog()
	for _, name := range []string{"CLIENT", "BALANCE", "BONUS", "CHURN"} {
		cat.MustCreateTable(storage.Schema{
			Name:    name,
			Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		})
	}
	client, _ := cat.Table("CLIENT")
	balance, _ := cat.Table("BALANCE")
	bonus, _ := cat.Table("BONUS")
	for k := storage.Key(1); k <= accounts; k++ {
		client.Put(k, storage.Tuple{storage.Int(int64(k%accounts) + 1)}, 0)
		balance.Put(k, storage.Tuple{storage.Int(initial)}, 0)
		bonus.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}

	sched := fault.NewSchedule(seed, workers)
	sched.SetDelay(2 * time.Microsecond)
	// "Stalls" here stretch conflict windows by ~a scheduler quantum,
	// not by watchdog-scale pauses (that scenario has its own test).
	sched.SetStall(200 * time.Microsecond)
	sched.Inject(fault.PreValidation, fault.ActYield, 0.15)
	sched.Inject(fault.PreValidation, fault.ActDelay, 0.10)
	sched.Inject(fault.PreValidation, fault.ActStall, 0.02)
	sched.Inject(fault.PreValidation, fault.ActRestart, 0.02)
	sched.Inject(fault.MidHealing, fault.ActYield, 0.20)
	sched.Inject(fault.MidHealing, fault.ActDelay, 0.10)
	sched.Inject(fault.MidHealing, fault.ActRestart, 0.02)
	sched.Inject(fault.CommitApply, fault.ActYield, 0.15)
	sched.Inject(fault.CommitApply, fault.ActDelay, 0.10)
	sched.Inject(fault.CommitApply, fault.ActRestart, 0.01)
	sched.Inject(fault.PreEpochAdvance, fault.ActDelay, 0.30)
	sched.Inject(fault.PostEpochAdvance, fault.ActYield, 0.30)

	orc := oracle.NewRecorder(workers)
	rec := obs.NewRecorder(workers, 1024)
	e := NewEngine(cat, Options{
		Protocol:      proto,
		Workers:       workers,
		EpochInterval: time.Millisecond,
		Interleave:    true,
		Chaos:         sched,
		Oracle:        orc,
		Recorder:      rec,
		// Generous per-rung budget: the ladder engages under the
		// injected restart storms without normally exhausting; a
		// transaction that does exhaust is shed, not a failure.
		RetryBudget: 64,
	})
	e.MustRegister(transferSpec())
	e.MustRegister(auditSpec(accounts))
	e.Start()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			// Worker-local deterministic LCG for argument choice.
			rng := seed*2862933555777941757 + uint64(wi) + 1
			next := func(n int64) int64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int64((rng >> 33) % uint64(n))
			}
			for i := 0; i < txnsPer; i++ {
				var err error
				switch i % 5 {
				case 3: // insert/delete churn on worker-private keys
					key := storage.Key(10_000 + int64(wi)*1_000 + next(5))
					err = w.Transact(func(ctx proc.OpCtx) error {
						_, vis, rerr := ctx.Read("CHURN", key, nil)
						if rerr != nil {
							return rerr
						}
						if vis {
							return ctx.Delete("CHURN", key)
						}
						return ctx.Insert("CHURN", key, storage.Tuple{storage.Int(int64(i))})
					})
				case 4: // read-only audit: must see the conserved total
					var env *proc.Env
					env, err = w.Run("Audit")
					if err == nil {
						if got := env.Int("total"); got != accounts*initial {
							errCh <- fmt.Errorf("worker %d audit saw total %d, want %d", wi, got, accounts*initial)
							return
						}
					}
				default:
					src := storage.Int(next(accounts) + 1)
					amt := storage.Int(next(50))
					_, err = w.Run("Transfer", src, amt)
				}
				if err != nil && !errors.Is(err, ErrContended) {
					errCh <- fmt.Errorf("worker %d txn %d: %w", wi, i, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for err := range errCh {
		dumpEvents(t, rec, cat)
		t.Fatal(err)
	}

	// The schedule must actually have perturbed the run.
	injected := sched.Total(fault.ActYield) + sched.Total(fault.ActDelay) +
		sched.Total(fault.ActStall) + sched.Total(fault.ActRestart)
	if injected == 0 {
		t.Fatalf("chaos schedule injected nothing")
	}

	// Physical invariant: transfers conserve money.
	var total int64
	for k := storage.Key(1); k <= accounts; k++ {
		rec, _ := balance.Peek(k)
		total += rec.Tuple()[0].Int()
	}
	if total != accounts*initial {
		t.Errorf("total balance = %d, want %d (money created or destroyed)", total, accounts*initial)
	}

	// Protocol invariant: the committed history is serializable. A
	// violation ships with the flight-recorder interleaving — the
	// protocol checkpoints leading up to the bad commit.
	viols := orc.Check()
	for i, v := range viols {
		if i == 5 {
			break
		}
		t.Errorf("oracle: %v", v)
	}
	if len(viols) > 0 {
		dumpEvents(t, rec, cat)
		t.Fatalf("seed %d under %v: %d serializability violations over %d commits",
			seed, proto, len(viols), len(orc.Commits()))
	}
	if len(orc.Commits()) == 0 {
		t.Fatalf("oracle recorded no commits")
	}
}

// TestChaosForcedStallTripsWatchdog scripts a single long stall into
// one worker's pre-validation checkpoint and checks the stuck-epoch
// watchdog detects it: the worker stays registered while the epoch
// races ahead, the trip is latched and surfaced through Metrics, and
// the stalled transaction still commits afterwards.
func TestChaosForcedStallTripsWatchdog(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "BALANCE",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("BALANCE")
	tab.Put(1, storage.Tuple{storage.Int(7)}, 0)

	sched := fault.NewSchedule(1, 2)
	sched.SetStall(100 * time.Millisecond)
	sched.StallAt(1, fault.PreValidation, 0)

	e := NewEngine(cat, Options{
		Protocol:      Healing,
		Workers:       2,
		EpochInterval: time.Millisecond,
		WatchdogLag:   5,
		Chaos:         sched,
	})
	e.Start()
	defer e.Stop()

	err := e.Worker(1).Transact(func(ctx proc.OpCtx) error {
		row, _, err := ctx.Read("BALANCE", 1, []int{0})
		if err != nil {
			return err
		}
		return ctx.Write("BALANCE", 1, []int{0}, []storage.Value{storage.Int(row[0].Int() + 1)})
	})
	if err != nil {
		t.Fatalf("stalled transaction failed: %v", err)
	}
	if trips := e.Epoch().Trips(1); trips < 1 {
		t.Fatalf("watchdog trips for stalled worker = %d, want >= 1", trips)
	}
	if trips := e.Epoch().Trips(0); trips != 0 {
		t.Fatalf("watchdog tripped for idle worker 0 (%d times)", trips)
	}
	if got := e.Metrics(time.Second).WatchdogTrips; got < 1 {
		t.Fatalf("aggregate WatchdogTrips = %d, want >= 1", got)
	}
	if sched.Count(fault.PreValidation, fault.ActStall) != 1 {
		t.Fatalf("scripted stall did not fire exactly once")
	}
}

// TestDegradationLadderExhaustsToErrContended drives every attempt
// into a spurious restart and checks the full deterministic descent:
// RetryBudget failed attempts on the Healing rung, escalation to OCC,
// then to 2PL, then the typed ErrContended — with the fallback and
// exhaustion counters accounting for each step.
func TestDegradationLadderExhaustsToErrContended(t *testing.T) {
	const budget = 4
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "BALANCE",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("BALANCE")
	tab.Put(1, storage.Tuple{storage.Int(0)}, 0)

	sched := fault.NewSchedule(3, 1)
	sched.Inject(fault.PreValidation, fault.ActRestart, 1.0)

	e := NewEngine(cat, Options{
		Protocol:    Healing,
		Workers:     1,
		Chaos:       sched,
		RetryBudget: budget,
	})
	// A registered (non-ad-hoc) procedure, so the ladder starts on the
	// Healing rung; ad-hoc transactions would begin at OCC (§4.8).
	e.MustRegister(&proc.Spec{
		Name: "ReadOne",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "read", Body: func(ctx proc.OpCtx) error {
				_, _, err := ctx.Read("BALANCE", 1, nil)
				return err
			}})
		},
	})
	w := e.Worker(0)
	_, err := w.Run("ReadOne")
	if !errors.Is(err, ErrContended) {
		t.Fatalf("err = %v, want ErrContended", err)
	}
	m := w.Metrics()
	// Three rungs × budget attempts, every one restarted.
	if m.Restarts != 3*budget {
		t.Errorf("restarts = %d, want %d", m.Restarts, 3*budget)
	}
	if m.HealingFallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2 (Healing→OCC, OCC→2PL)", m.HealingFallbacks)
	}
	if m.BudgetExhausted != 1 {
		t.Errorf("budget exhaustions = %d, want 1", m.BudgetExhausted)
	}
	if m.Aborted != 1 {
		t.Errorf("aborted = %d, want 1", m.Aborted)
	}
	if m.Committed != 0 {
		t.Errorf("committed = %d, want 0", m.Committed)
	}
	if got := sched.Count(fault.PreValidation, fault.ActRestart); got != 3*budget {
		t.Errorf("injected restarts = %d, want %d", got, 3*budget)
	}
}

// TestDegradationLadderRecoversMidway scripts exactly one rung's
// worth of restarts: the transaction must escalate once, then commit
// on the OCC rung instead of exhausting.
func TestDegradationLadderRecoversMidway(t *testing.T) {
	const budget = 4
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "BALANCE",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("BALANCE")
	tab.Put(1, storage.Tuple{storage.Int(0)}, 0)

	sched := fault.NewSchedule(4, 1)
	for visit := 0; visit < budget; visit++ {
		sched.ScriptAt(0, fault.PreValidation, visit, fault.ActRestart)
	}

	e := NewEngine(cat, Options{
		Protocol:    Healing,
		Workers:     1,
		Chaos:       sched,
		RetryBudget: budget,
	})
	e.MustRegister(&proc.Spec{
		Name: "Incr",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "incr", Body: func(ctx proc.OpCtx) error {
				row, _, err := ctx.Read("BALANCE", 1, []int{0})
				if err != nil {
					return err
				}
				return ctx.Write("BALANCE", 1, []int{0}, []storage.Value{storage.Int(row[0].Int() + 1)})
			}})
		},
	})
	w := e.Worker(0)
	if _, err := w.Run("Incr"); err != nil {
		t.Fatalf("transaction failed: %v", err)
	}
	m := w.Metrics()
	if m.Committed != 1 {
		t.Errorf("committed = %d, want 1", m.Committed)
	}
	if m.Restarts != budget {
		t.Errorf("restarts = %d, want %d", m.Restarts, budget)
	}
	if m.HealingFallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1 (Healing→OCC only)", m.HealingFallbacks)
	}
	if m.BudgetExhausted != 0 {
		t.Errorf("budget exhaustions = %d, want 0", m.BudgetExhausted)
	}
	rec, _ := tab.Peek(1)
	if got := rec.Tuple()[0].Int(); got != 1 {
		t.Errorf("balance = %d, want 1 (the OCC-rung attempt must have applied)", got)
	}
}

// TestBackoffReturnsOnEngineStop: once the engine stops, sleeping
// retriers must wake immediately — 1000 maximum-window backoffs after
// Stop complete in far less time than a single one would take asleep.
func TestBackoffReturnsOnEngineStop(t *testing.T) {
	e := NewEngine(storage.NewCatalog(), Options{Workers: 1})
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	w := e.Worker(0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		w.backoff(10) // max jitter window: up to 256µs each if asleep
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("1000 post-stop backoffs took %v; stop signal not honored", elapsed)
	}
}
