package core

import "runtime"

// tplMode values for Element.tplMode.
const (
	tplNone uint8 = iota
	tplR
	tplW
)

// tplLock acquires the 2PL lock for an element at access time
// (THEDB-2PL, §5): shared for reads, exclusive for writes, upgrading
// when a read is followed by a write. All acquisitions are no-wait —
// the most scalable deadlock-prevention policy per the paper's
// reference [61] — so any failure signals abort-and-restart.
//
// THEDB-HYBRID's lock-based leg runs concurrently with OCC
// transactions, which only respect the record meta lock; that leg
// therefore locks through the meta word (exclusive only) so the two
// protocols serialize against each other.
func (t *Txn) tplLock(el *Element, write bool) error {
	if t.tplMeta {
		if el.locked {
			return nil
		}
		// The hybrid's lock-based rerun follows Herlihy's scheme,
		// where the lock-based execution waits for locks. Waiting in
		// access order can deadlock, so spin only a bounded while
		// before giving up and restarting.
		for i := 0; i < 512; i++ {
			if el.rec.TryLock() {
				el.locked = true
				t.locked = append(t.locked, el)
				return nil
			}
			if i%8 == 7 {
				runtime.Gosched()
			}
		}
		return errRestart
	}
	rw := el.rec.RW()
	if !write {
		if el.tplMode != tplNone {
			return nil
		}
		if !rw.TryRLock() {
			return errRestart
		}
		el.tplMode = tplR
		return nil
	}
	switch el.tplMode {
	case tplW:
		return nil
	case tplR:
		if !rw.TryUpgrade() {
			return errRestart
		}
		el.tplMode = tplW
		return nil
	default:
		if !rw.TryWLock() {
			return errRestart
		}
		el.tplMode = tplW
		return nil
	}
}

// releaseTPL drops an element's 2PL lock (commit or abort).
func releaseTPL(el *Element) {
	switch el.tplMode {
	case tplR:
		el.rec.RW().RUnlock()
	case tplW:
		el.rec.RW().WUnlock()
	}
	el.tplMode = tplNone
}
