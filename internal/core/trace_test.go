package core

import (
	"errors"
	"testing"
	"time"

	"thedb/internal/fault"
	"thedb/internal/obs"
	"thedb/internal/proc"
	"thedb/internal/storage"
)

// TestTraceRecordZeroAllocs pins the acceptance contract on the
// trace-record commit path: arming the scratch trace and offering the
// finished record to the Tracer must not allocate, whether the trace
// is dropped as boring (committed, fast) or copied into the ring
// (contended). This is the runtime counterpart of the //thedb:noalloc
// annotation on finishTrace/Keep.
func TestTraceRecordZeroAllocs(t *testing.T) {
	e := NewEngine(storage.NewCatalog(), Options{
		Workers: 1,
		Tracer:  obs.NewTracer(16, time.Second),
	})
	w := e.Worker(0)
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		w.beginTrace(start, "T")
		w.finishTrace(obs.TraceCommitted, time.Microsecond, 1)
	}); allocs != 0 {
		t.Errorf("dropped-trace path allocates %.1f per txn, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		w.beginTrace(start, "T")
		w.finishTrace(obs.TraceContended, time.Microsecond, 9)
	}); allocs != 0 {
		t.Errorf("retained-trace path allocates %.1f per txn, want 0", allocs)
	}
	total, kept := e.tracer.Stats()
	if total < 2000 || kept < 1000 {
		t.Errorf("tracer stats = (%d, %d), want >= (2000, 1000)", total, kept)
	}
}

// TestTraceHealPassCaptured drives a full traced transaction through a
// genuine healing pass: an op mid-transaction commits a conflicting
// write to a key the transaction already read, so validation fails,
// healing replays the dependent chain, and the trace must carry the
// pass with its restored-operation count. The contention sketch fed
// from the same sites must name the key.
func TestTraceHealPassCaptured(t *testing.T) {
	tr := obs.NewTracer(8, 0)
	cont := obs.NewContention(8)
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1, Tracer: tr, Contention: cont})
	w := e.Worker(0)

	// op0 reads the balance, op1 (dependency-free, never restored)
	// simulates a concurrent commit bumping it, op2 writes a
	// value-dependent update. Validation sees op0's read invalidated.
	fired := false
	e.MustRegister(&proc.Spec{
		Name:   "ConflictedIncr",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "read",
				KeyReads: []string{"k"},
				Writes:   []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("BALANCE", storage.Key(ctx.Env().Int("k")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("v", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name: "conflict",
				Body: func(ctx proc.OpCtx) error {
					if !fired {
						fired = true
						externalCommit(t, e, "BALANCE", amy, 0, storage.Int(2500), storage.MakeTS(1, 1))
					}
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "write",
				KeyReads: []string{"k"},
				ValReads: []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("BALANCE", storage.Key(e.Int("k")), []int{0},
						[]storage.Value{storage.Int(e.Int("v") + 1)})
				},
			})
		},
	})

	if _, err := w.Run("ConflictedIncr", storage.Int(amy)); err != nil {
		t.Fatal(err)
	}
	if got := balanceOf(t, e, amy); got != 2501 {
		t.Errorf("amy balance = %d, want 2501 (healed read of 2500, +1)", got)
	}

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1 (healed commit)", len(traces))
	}
	trc := traces[0]
	if trc.ID == 0 {
		t.Error("trace ID is zero (local mint failed)")
	}
	if trc.Proc != "ConflictedIncr" || trc.Worker != 0 {
		t.Errorf("trace identity = (%q, w%d), want (ConflictedIncr, w0)", trc.Proc, trc.Worker)
	}
	if trc.Outcome != obs.TraceCommitted || trc.Attempts != 1 {
		t.Errorf("outcome = %v attempts = %d, want committed after 1 attempt (healed, not restarted)",
			trc.Outcome, trc.Attempts)
	}
	if trc.NPasses != 1 {
		t.Fatalf("n_passes = %d, want 1", trc.NPasses)
	}
	p := trc.Passes[0]
	// Healing restores op0 (replay against the refreshed copy) and its
	// value-dependent child op2.
	if p.Restored != 2 {
		t.Errorf("pass restored %d ops, want 2", p.Restored)
	}
	if p.StartUS < 0 || p.EndUS < p.StartUS {
		t.Errorf("pass offsets [%d..%d] not monotonic", p.StartUS, p.EndUS)
	}
	if trc.TotalUS < trc.ValidateUS+trc.HealUS {
		t.Errorf("total %dus < validate %dus + heal %dus", trc.TotalUS, trc.ValidateUS, trc.HealUS)
	}

	entries := cont.Snapshot()
	if len(entries) == 0 {
		t.Fatal("contention sketch empty after a validation failure + heal")
	}
	balance, _ := e.Catalog().Table("BALANCE")
	top := entries[0]
	if top.Table != balance.ID() || top.Key != amy {
		t.Errorf("hottest key = (table %d, key %d), want (BALANCE=%d, %d)",
			top.Table, top.Key, balance.ID(), amy)
	}
	if top.Fails < 1 || top.Heals < 1 {
		t.Errorf("hot key touches = fails %d heals %d, want >= 1 each", top.Fails, top.Heals)
	}
}

// TestTraceContendedCorrelatesWithRecorder exhausts the degradation
// ladder under chaos restarts with both the tracer and the flight
// recorder on, and pins the correlation contract: the retained trace
// reports the contended outcome with the ladder's attempt and
// escalation counts, and the recorder's escalation/abort events carry
// the same trace ID.
func TestTraceContendedCorrelatesWithRecorder(t *testing.T) {
	const budget = 3
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "BALANCE",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("BALANCE")
	tab.Put(1, storage.Tuple{storage.Int(0)}, 0)

	sched := fault.NewSchedule(7, 1)
	sched.Inject(fault.PreValidation, fault.ActRestart, 1.0)

	rec := obs.NewRecorder(1, 256)
	tr := obs.NewTracer(8, time.Second)
	e := NewEngine(cat, Options{
		Protocol:    Healing,
		Workers:     1,
		Chaos:       sched,
		RetryBudget: budget,
		Recorder:    rec,
		Tracer:      tr,
	})
	e.MustRegister(&proc.Spec{
		Name: "ReadOne",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "read", Body: func(ctx proc.OpCtx) error {
				_, _, err := ctx.Read("BALANCE", 1, nil)
				return err
			}})
		},
	})
	w := e.Worker(0)
	w.SetTraceContext(0xabcdef01, 37, 1234567890)
	if _, err := w.Run("ReadOne"); !errors.Is(err, ErrContended) {
		t.Fatalf("err = %v, want ErrContended", err)
	}

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	trc := traces[0]
	if trc.ID != 0xabcdef01 {
		t.Errorf("trace ID = %#x, want caller-supplied 0xabcdef01", trc.ID)
	}
	if trc.QueueUS != 37 || trc.StartNS != 1234567890 {
		t.Errorf("queue/start = (%d, %d), want caller-supplied (37, 1234567890)",
			trc.QueueUS, trc.StartNS)
	}
	if trc.Outcome != obs.TraceContended {
		t.Errorf("outcome = %v, want contended", trc.Outcome)
	}
	if trc.Attempts != 9 || trc.Escalations != 2 {
		t.Errorf("attempts/escalations = (%d, %d), want (9, 2): 3 rungs x budget 3",
			trc.Attempts, trc.Escalations)
	}

	slot, id := w.LastTrace()
	if slot != 0 || id != 0xabcdef01 {
		t.Errorf("LastTrace = (%d, %#x), want (0, 0xabcdef01)", slot, id)
	}

	var escalates, aborts int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KLadderEscalate:
			escalates++
			if ev.Trace != trc.ID {
				t.Errorf("escalation event trace = %#x, want %#x", ev.Trace, trc.ID)
			}
		case obs.KAbort:
			aborts++
			if ev.Trace != trc.ID {
				t.Errorf("abort event trace = %#x, want %#x", ev.Trace, trc.ID)
			}
		}
	}
	if escalates != 2 || aborts == 0 {
		t.Errorf("recorder saw %d escalations, %d aborts; want 2, >=1", escalates, aborts)
	}
}

// TestTraceUserAbortRetained: an application abort is interesting by
// definition and must be kept with the aborted outcome.
func TestTraceUserAbortRetained(t *testing.T) {
	tr := obs.NewTracer(8, time.Second)
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1, Tracer: tr})
	e.MustRegister(&proc.Spec{
		Name: "AlwaysAbort",
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{Name: "nope", Body: func(ctx proc.OpCtx) error {
				return proc.UserAbort("nope")
			}})
		},
	})
	if _, err := e.Worker(0).Run("AlwaysAbort"); err == nil {
		t.Fatal("expected user abort")
	}
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Outcome != obs.TraceAborted {
		t.Fatalf("traces = %+v, want one aborted", traces)
	}
	if traces[0].Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (user aborts do not retry)", traces[0].Attempts)
	}
}

// TestTraceBoringCommitDropped: with a high slow threshold a clean
// commit must pass through untraced — counted, never retained.
func TestTraceBoringCommitDropped(t *testing.T) {
	tr := obs.NewTracer(8, time.Hour)
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1, Tracer: tr})
	w := e.Worker(0)
	if _, err := w.Run("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
		t.Fatal(err)
	}
	if traces := tr.Snapshot(); len(traces) != 0 {
		t.Fatalf("retained %d traces of a boring fast commit, want 0", len(traces))
	}
	total, kept := tr.Stats()
	if total != 1 || kept != 0 {
		t.Errorf("stats = (%d, %d), want (1, 0)", total, kept)
	}
	if slot, id := w.LastTrace(); slot != -1 || id == 0 {
		t.Errorf("LastTrace = (%d, %#x), want (-1, nonzero): dropped but minted", slot, id)
	}
}
