package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// TestConcurrentTransfersConserveTotal hammers a small, contended
// account set from several goroutines under every serializable
// protocol and checks the fundamental invariant: transfers move money
// but never create or destroy it.
func TestConcurrentTransfersConserveTotal(t *testing.T) {
	const (
		accounts = 8
		workers  = 4
		txnsPer  = 300
		initial  = 1000
	)
	for _, p := range []Protocol{Healing, OCC, Silo, TPL, Hybrid} {
		t.Run(p.String(), func(t *testing.T) {
			cat := storage.NewCatalog()
			for _, name := range []string{"CLIENT", "BALANCE", "BONUS"} {
				cat.MustCreateTable(storage.Schema{
					Name:    name,
					Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
				})
			}
			client, _ := cat.Table("CLIENT")
			balance, _ := cat.Table("BALANCE")
			bonus, _ := cat.Table("BONUS")
			for k := storage.Key(1); k <= accounts; k++ {
				client.Put(k, storage.Tuple{storage.Int(int64(k%accounts) + 1)}, 0)
				balance.Put(k, storage.Tuple{storage.Int(initial)}, 0)
				bonus.Put(k, storage.Tuple{storage.Int(0)}, 0)
			}
			e := NewEngine(cat, Options{Protocol: p, Workers: workers})
			e.MustRegister(transferSpec())
			e.Start()
			defer e.Stop()

			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for wi := 0; wi < workers; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(wi) + 1))
					w := e.Worker(wi)
					for i := 0; i < txnsPer; i++ {
						src := storage.Int(rng.Int63n(accounts) + 1)
						amt := storage.Int(rng.Int63n(50))
						if _, err := w.Run("Transfer", src, amt); err != nil {
							errCh <- fmt.Errorf("worker %d txn %d: %w", wi, i, err)
							return
						}
					}
				}(wi)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			var total int64
			for k := storage.Key(1); k <= accounts; k++ {
				rec, _ := balance.Peek(k)
				total += rec.Tuple()[0].Int()
			}
			if total != accounts*initial {
				t.Errorf("total balance = %d, want %d (money created or destroyed!)", total, accounts*initial)
			}
			var committed int64
			for wi := 0; wi < workers; wi++ {
				committed += e.Worker(wi).m.Committed
			}
			if committed != workers*txnsPer {
				t.Errorf("committed = %d, want %d", committed, workers*txnsPer)
			}
			// Bonus increments count committed transfers exactly once
			// each — healed transactions must not double-apply.
			var bonusTotal int64
			for k := storage.Key(1); k <= accounts; k++ {
				rec, _ := bonus.Peek(k)
				bonusTotal += rec.Tuple()[0].Int()
			}
			if bonusTotal != int64(workers*txnsPer) {
				t.Errorf("bonus total = %d, want %d", bonusTotal, workers*txnsPer)
			}
		})
	}
}

// TestHealingNeverRestartsIndependent checks §4.6: a procedure with
// no key dependencies (independent transaction) can never abort under
// healing, no matter the contention.
func TestHealingNeverRestartsIndependent(t *testing.T) {
	const (
		workers = 4
		txnsPer = 400
	)
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "COUNTER",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("COUNTER")
	tab.Put(1, storage.Tuple{storage.Int(0)}, 0)

	spec := &proc.Spec{
		Name:   "Incr",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "read",
				KeyReads: []string{"k"},
				Writes:   []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("COUNTER", storage.Key(ctx.Env().Int("k")), nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("v", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "write",
				KeyReads: []string{"k"},
				ValReads: []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("COUNTER", storage.Key(e.Int("k")), []int{0},
						[]storage.Value{storage.Int(e.Int("v") + 1)})
				},
			})
		},
	}
	env := proc.NewEnv()
	env.SetInt("k", 1)
	if !spec.Instantiate(env).Independent {
		t.Fatal("Incr must be classified independent")
	}

	e := NewEngine(cat, Options{Protocol: Healing, Workers: workers})
	e.MustRegister(spec)
	e.Start()
	defer e.Stop()

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			for i := 0; i < txnsPer; i++ {
				if _, err := w.Run("Incr", storage.Int(1)); err != nil {
					t.Errorf("worker %d: %v", wi, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	rec, _ := tab.Peek(1)
	if got := rec.Tuple()[0].Int(); got != workers*txnsPer {
		t.Errorf("counter = %d, want %d (lost update!)", got, workers*txnsPer)
	}
	for wi := 0; wi < workers; wi++ {
		if r := e.Worker(wi).m.Restarts; r != 0 {
			t.Errorf("worker %d restarted %d times; independent healing transactions must never restart", wi, r)
		}
	}
}
