// Package core implements THEDB's transaction engine: the
// transaction-healing protocol (the paper's contribution) plus the
// baseline protocols the evaluation compares against — conventional
// OCC, Silo's OCC variant, no-wait two-phase locking, and the
// OCC→2PL hybrid — all over the same storage, index, procedure and
// logging substrate.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/fault"
	"thedb/internal/metrics"
	"thedb/internal/mvcc"
	"thedb/internal/obs"
	"thedb/internal/oracle"
	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// Protocol selects the concurrency-control mechanism of an engine.
type Protocol int

// The protocols evaluated in the paper (§5).
const (
	// Healing is the paper's transaction-healing protocol (THEDB).
	Healing Protocol = iota
	// OCC is conventional optimistic concurrency control with
	// Silo-style timestamp allocation and abort-and-restart
	// (THEDB-OCC).
	OCC
	// Silo is Silo's commit protocol: only the write set is locked,
	// reads validate unlocked (THEDB-SILO).
	Silo
	// TPL is two-phase locking with no-wait deadlock prevention
	// (THEDB-2PL).
	TPL
	// Hybrid runs OCC and switches to 2PL after a validation abort
	// (THEDB-HYBRID).
	Hybrid
	// OCCNoValidate disables OCC's validation phase: transactions
	// never abort but results may be non-serializable. It measures
	// peak attainable throughput (THEDB-OCC⁻, Fig. 8).
	OCCNoValidate
	// SiloNoValidate is the Silo analogue (THEDB-SILO⁻).
	SiloNoValidate
)

// String names the protocol as the paper does.
func (p Protocol) String() string {
	switch p {
	case Healing:
		return "THEDB"
	case OCC:
		return "THEDB-OCC"
	case Silo:
		return "THEDB-SILO"
	case TPL:
		return "THEDB-2PL"
	case Hybrid:
		return "THEDB-HYBRID"
	case OCCNoValidate:
		return "THEDB-OCC-"
	case SiloNoValidate:
		return "THEDB-SILO-"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// OrderMode selects the global validation (lock-acquisition) order.
type OrderMode int

// Validation orders (§4.2.1, §4.5, Appendix G).
const (
	// AddrOrder sorts read/write-set elements by record address
	// alone, the conventional global order.
	AddrOrder OrderMode = iota
	// TreeOrder sorts by (schema-tree rank, address): tables closer
	// to the schema root validate first, so key-dependent membership
	// updates insert elements after the frontier and deadlock-
	// prevention aborts become rare (§4.5).
	TreeOrder
	// ReverseTreeOrder reverses the rank comparison — the worst case
	// construction of Appendix G (THEDB-W).
	ReverseTreeOrder
)

// Options configures an engine.
type Options struct {
	// Protocol selects the concurrency-control mechanism.
	Protocol Protocol

	// Workers is the number of execution threads the engine serves.
	Workers int

	// Order selects the validation order (TreeOrder by default for
	// the healing protocol, AddrOrder otherwise).
	Order OrderMode

	// orderSet records whether Order was set explicitly.
	OrderSet bool

	// EpochInterval is the period of the global epoch advancer
	// (default 10ms, §4.3).
	EpochInterval time.Duration

	// NoAccessCache disables the per-operation access cache (Table 4
	// ablation), making the healing protocol fall back to
	// abort-and-restart on validation failure.
	NoAccessCache bool

	// NoReadCopies disables the per-read column copies, and with
	// them false-invalidation elimination (§4.5, Table 4 ablation).
	NoReadCopies bool

	// MaxLockAttempts bounds lock-acquisition attempts during
	// healing membership updates before the no-wait policy aborts
	// (§4.2.2 suggests such an upper bound; 1 = pure no-wait).
	MaxLockAttempts int

	// DetailedMetrics enables per-phase timing (Fig. 19). Costs two
	// clock reads per phase; latency histograms are always on.
	DetailedMetrics bool

	// Interleave yields the scheduler after every operation of the
	// read phase. On a machine with fewer cores than workers this
	// emulates the fine-grained interleaving a real multicore
	// produces: without it a goroutine runs whole transactions
	// inside one scheduler slice and cross-transaction conflicts
	// almost never materialize (see DESIGN.md §3). Benchmarks enable
	// it; unit tests of logic paths usually do not need it.
	Interleave bool

	// Logger, when non-nil, receives the commit log (Appendix C).
	Logger *wal.Logger

	// SyncRetries bounds how often a failed epoch log sync is
	// retried before the engine degrades to durability-lost
	// (default 3 retries after the first attempt).
	SyncRetries int

	// SyncBackoff is the initial delay between sync retries; it
	// doubles per retry (default 1ms).
	SyncBackoff time.Duration

	// Chaos, when non-nil, is the protocol-level fault injector: the
	// engine consults it at named checkpoints (pre-validation,
	// mid-healing, around the epoch advance, commit apply) and obeys
	// the drawn perturbation. Nil (the default) keeps every hot path
	// at a single pointer check.
	Chaos *fault.Schedule

	// Oracle, when non-nil, receives every committed transaction's
	// read/write footprint with its commit timestamp, for an offline
	// serializability check after the run (chaos tests).
	Oracle *oracle.Recorder

	// Recorder, when non-nil, is the flight recorder: workers and the
	// epoch advancer record typed protocol events (validation
	// failures, heal passes, ladder escalations, epoch seals, WAL
	// sync outcomes, watchdog trips, commits/aborts) into per-worker
	// lock-free rings. Nil (the default) keeps every event site at a
	// single pointer check, mirroring Chaos.
	Recorder *obs.Recorder

	// Tracer, when non-nil, enables per-transaction tracing: each
	// transaction accumulates monotonic phase timings (queue wait,
	// execute, validate, per-heal-pass detail, commit, WAL append)
	// into worker-owned scratch and the completed trace is offered to
	// the tracer's tail-retention ring. Nil (the default) keeps the
	// per-transaction cost at a single pointer check, mirroring
	// Recorder (DESIGN.md §15).
	Tracer *obs.Tracer

	// Contention, when non-nil, is the hot-key profiler: validation
	// failures and heal starts feed (table, key) into its space-saving
	// top-K sketch. Nil (the default) keeps the sites at one pointer
	// check; the sites sit on failure paths, never on the clean commit
	// path.
	Contention *obs.Contention

	// RetryBudget bounds failed attempts per rung of the degradation
	// ladder (DESIGN.md §10): a transaction escalates
	// Healing → OCC → 2PL as each rung's budget is spent and fails
	// with ErrContended past the last rung. Zero or negative (the
	// default) disables the ladder and keeps the legacy retry-forever
	// behavior.
	RetryBudget int

	// WatchdogLag is how many epochs a worker may go without
	// refreshing its epoch registration, while executing a
	// transaction, before the stuck-epoch watchdog trips (surfaced as
	// WatchdogTrips in Metrics). Default 16; negative disables the
	// watchdog.
	WatchdogLag int
}

// defaults fills unset fields.
func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.EpochInterval <= 0 {
		o.EpochInterval = 10 * time.Millisecond
	}
	if o.MaxLockAttempts <= 0 {
		o.MaxLockAttempts = 4
	}
	if o.SyncRetries <= 0 {
		o.SyncRetries = 3
	}
	if o.SyncBackoff <= 0 {
		o.SyncBackoff = time.Millisecond
	}
	if o.WatchdogLag == 0 {
		o.WatchdogLag = 16
	}
	if !o.OrderSet {
		if o.Protocol == Healing {
			o.Order = TreeOrder
		} else {
			o.Order = AddrOrder
		}
	}
}

// Engine executes transactions over a catalog under one protocol.
type Engine struct {
	opts    Options
	catalog *storage.Catalog
	gc      *storage.GC
	gcKick  func()
	epoch   *EpochManager
	specs   map[string]*proc.Spec
	workers []*Worker

	// rec is the flight recorder (nil when event tracing is off).
	rec *obs.Recorder

	// tracer is the transaction trace ring (nil when tracing is off);
	// cont is the hot-key contention sketch (nil when profiling is
	// off).
	tracer *obs.Tracer
	cont   *obs.Contention

	// startNS is the Start() instant (UnixNano; 0 before Start), the
	// wall-clock origin live snapshots measure throughput against.
	startNS atomic.Int64

	// stopC is closed when the engine stops, so sleeping retriers
	// (backoff, injected chaos stalls) wake immediately instead of
	// delaying shutdown.
	stopC    chan struct{}
	stopOnce sync.Once

	// Snapshot-read state (DESIGN.md §16): snap publishes each
	// worker's pinned snapshot timestamp, snapFloor is the monotone
	// snapshot-floor ratchet; together they feed the version GC's
	// low-watermark.
	snap      *mvcc.PinSet
	snapFloor mvcc.Floor

	// Durability state (Appendix C group commit, hardened): the
	// epoch advancer seals and syncs the log streams each tick, so
	// an epoch is only reported durable once every stream holding
	// its transactions has reached stable storage.
	durableEpoch   atomic.Uint32
	durabilityLost atomic.Bool
	logSyncs       atomic.Int64
	logSyncFails   atomic.Int64
}

// NewEngine builds an engine over the catalog.
func NewEngine(catalog *storage.Catalog, opts Options) *Engine {
	opts.defaults()
	e := &Engine{
		opts:    opts,
		catalog: catalog,
		gc:      storage.NewGC(catalog),
		specs:   make(map[string]*proc.Spec),
		stopC:   make(chan struct{}),
		rec:     opts.Recorder,
		tracer:  opts.Tracer,
		cont:    opts.Contention,
	}
	e.epoch = NewEpochManager(opts.EpochInterval)
	e.epoch.chaos = opts.Chaos
	e.epoch.rec = opts.Recorder
	// Registration is always armed — VisibleFloor (snapshot reads)
	// scans it; lag 0 keeps the stall checks off when the watchdog is
	// disabled.
	lag := uint32(0)
	if opts.WatchdogLag > 0 {
		lag = uint32(opts.WatchdogLag)
	}
	e.epoch.Watch(opts.Workers, lag, nil)
	e.snap = mvcc.NewPinSet(opts.Workers)
	e.gc.SetWatermark(e.versionWatermark)
	for i := 0; i < opts.Workers; i++ {
		e.workers = append(e.workers, newWorker(e, i))
	}
	return e
}

// Start launches the epoch advancer and garbage collector. Each
// epoch tick also hardens the log: streams are sealed, flushed and
// synced so that group-committed epochs actually reach stable
// storage (Appendix C's group commit, made crash-tolerant).
func (e *Engine) Start() {
	e.startNS.Store(time.Now().UnixNano())
	e.gcKick = e.gc.Start()
	e.epoch.Start(func(ep uint32) {
		if e.gcKick != nil {
			e.gcKick()
		}
		e.syncToStable(ep)
	})
}

// syncToStable seals and syncs every log stream so all epochs up to
// cur-2 are on stable storage, then publishes the new durable epoch.
// The two-epoch lag keeps the seal behind any commit that computed
// its timestamp just before the previous advance (see DESIGN.md,
// "Durability & crash recovery"). Transient sink errors are retried
// with exponential backoff; after SyncRetries failures the engine
// degrades gracefully — transactions keep committing in memory, and
// the latched durability-lost state is surfaced via Metrics instead
// of wedging the advancer.
func (e *Engine) syncToStable(cur uint32) {
	if e.opts.Logger == nil || cur < 3 {
		return
	}
	target := cur - 2
	e.advancerEvent(obs.KEpochSeal, cur, uint64(target), 0)
	for attempt := 0; ; attempt++ {
		err := e.opts.Logger.SealAndSync(target)
		if err == nil {
			e.logSyncs.Add(1)
			e.advancerEvent(obs.KWALSync, cur, 1, uint64(attempt))
			if target > e.durableEpoch.Load() {
				e.durableEpoch.Store(target)
			}
			return
		}
		e.logSyncFails.Add(1)
		e.advancerEvent(obs.KWALSync, cur, 0, uint64(attempt))
		if attempt >= e.opts.SyncRetries {
			e.durabilityLost.Store(true)
			return
		}
		time.Sleep(e.opts.SyncBackoff << attempt)
	}
}

// advancerEvent records a flight-recorder event on the epoch
// advancer's ring (no-op when tracing is off).
func (e *Engine) advancerEvent(k obs.Kind, epoch uint32, a, b uint64) {
	if e.rec != nil {
		e.rec.Record(obs.EpochActor, k, epoch, a, b)
	}
}

// Stop halts background services and closes the log: every stream is
// sealed at the highest epoch reached, flushed and synced. The
// returned error aggregates all per-stream failures.
func (e *Engine) Stop() error {
	e.stopOnce.Do(func() { close(e.stopC) })
	e.epoch.Stop()
	e.gc.Stop()
	if e.opts.Logger != nil {
		if err := e.opts.Logger.Close(); err != nil {
			e.durabilityLost.Store(true)
			return err
		}
		if cur := e.epoch.Current(); cur > e.durableEpoch.Load() {
			e.durableEpoch.Store(cur)
		}
	}
	return nil
}

// DurableEpoch returns the highest epoch known to be on stable
// storage in every log stream (0 when logging is off or nothing has
// been hardened yet). Transactions with commit epochs at or below it
// survive any crash.
func (e *Engine) DurableEpoch() uint32 { return e.durableEpoch.Load() }

// DurabilityLost reports whether a log sync exhausted its retries:
// the engine is still serving transactions, but durability of recent
// epochs is no longer guaranteed.
func (e *Engine) DurabilityLost() bool { return e.durabilityLost.Load() }

// SeedEpoch fast-forwards the global epoch to at least epoch (see
// EpochManager.SeedTo). Call after recovery, before serving resumes.
func (e *Engine) SeedEpoch(epoch uint32) { e.epoch.SeedTo(epoch) }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// GC returns the garbage collector (tests, maintenance).
func (e *Engine) GC() *storage.GC { return e.gc }

// Epoch returns the epoch manager.
func (e *Engine) Epoch() *EpochManager { return e.epoch }

// Register adds a stored procedure.
func (e *Engine) Register(spec *proc.Spec) error {
	if _, dup := e.specs[spec.Name]; dup {
		return fmt.Errorf("core: procedure %q already registered", spec.Name)
	}
	e.specs[spec.Name] = spec
	return nil
}

// MustRegister is Register panicking on duplicates.
func (e *Engine) MustRegister(spec *proc.Spec) {
	if err := e.Register(spec); err != nil {
		panic(err)
	}
}

// Spec returns a registered procedure.
func (e *Engine) Spec(name string) (*proc.Spec, bool) {
	s, ok := e.specs[name]
	return s, ok
}

// Worker returns execution context i. Each worker must be driven by
// at most one goroutine at a time.
func (e *Engine) Worker(i int) *Worker { return e.workers[i] }

// Workers returns the number of workers.
func (e *Engine) Workers() int { return len(e.workers) }

// Metrics merges all workers' collectors, attributing the given wall
// time. It copies the collectors with plain loads, so it must only be
// called once workers are quiescent (between runs, after Stop); use
// LiveMetrics to observe a running engine.
func (e *Engine) Metrics(wall time.Duration) *metrics.Aggregate {
	ws := make([]*metrics.Worker, len(e.workers))
	for i, w := range e.workers {
		ws[i] = &w.m
	}
	a := metrics.Merge(wall, ws)
	// Watchdog trips are counted by the epoch advancer, not the
	// worker (the worker is by definition stuck when one fires); fold
	// them into the aggregate so ResetMetrics stays race-free.
	for i := range e.workers {
		a.WatchdogTrips += e.epoch.Trips(i)
	}
	a.Epoch = e.epoch.Current()
	e.fillEngineMetrics(a)
	return a
}

// LiveMetrics takes an epoch-consistent snapshot of every worker's
// counters without stopping the workers: each collector is read with
// atomic loads, and the whole scan retries (bounded) when the global
// epoch advances mid-scan, so the snapshot's counters all belong to
// the same epoch window. Raw latency samples are excluded — live
// percentiles come from the histogram buckets. Wall time is measured
// from Start, so TPS() is the lifetime average.
func (e *Engine) LiveMetrics() *metrics.Aggregate {
	var wall time.Duration
	if s := e.startNS.Load(); s != 0 {
		wall = time.Duration(time.Now().UnixNano() - s)
	}
	snaps := make([]metrics.Counters, len(e.workers))
	for attempt := 0; ; attempt++ {
		ep := e.epoch.Current()
		for i, w := range e.workers {
			c := w.m.Snapshot()
			c.WatchdogTrips += e.epoch.Trips(i)
			snaps[i] = c
		}
		// Epoch consistency: a snapshot spanning an epoch advance
		// mixes pre- and post-advance counters; retry a few times,
		// then accept (the advance period is orders of magnitude
		// longer than a scan, so a second collision is pathological).
		if e.epoch.Current() != ep && attempt < 3 {
			continue
		}
		a := metrics.MergeSnapshots(wall, snaps)
		a.Epoch = ep
		e.fillEngineMetrics(a)
		return a
	}
}

// fillEngineMetrics adds the engine-owned (non-per-worker) state to
// an aggregate: durability frontier, WAL volume, and the MVCC/snapshot
// gauges.
func (e *Engine) fillEngineMetrics(a *metrics.Aggregate) {
	a.DurableEpoch = e.durableEpoch.Load()
	a.DurabilityLost = e.durabilityLost.Load()
	a.LogSyncs = e.logSyncs.Load()
	a.LogSyncFailures = e.logSyncFails.Load()
	if e.opts.Logger != nil {
		st := e.opts.Logger.Stats()
		a.WALFrames = st.Frames
		a.WALBytes = st.Bytes
	}
	a.MVCCVersionsReclaimed = e.gc.VersionsReclaimed()
	a.MVCCTrackedChains = e.gc.TrackedChains()
	a.SnapshotsPinned = e.snap.Active()
	a.SnapshotEpochLag = e.snapshotEpochLag()
}

// Recorder returns the flight recorder (nil when event tracing is
// off).
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Tracer returns the transaction trace ring (nil when tracing is
// off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Contention returns the hot-key contention sketch (nil when
// profiling is off).
func (e *Engine) Contention() *obs.Contention { return e.cont }

// ResetMetrics clears all workers' collectors (between benchmark
// phases).
func (e *Engine) ResetMetrics() {
	for _, w := range e.workers {
		w.m = metrics.Worker{}
	}
}

// Errors reported by the engine.
var (
	// ErrAborted reports a permanent abort: deadlock prevention
	// during healing membership update (§4.2.2) or an insert
	// integrity violation (§4.7.1).
	ErrAborted = errors.New("transaction aborted")

	// ErrNoSuchProc reports an unregistered procedure name.
	ErrNoSuchProc = errors.New("no such procedure")

	// ErrContended reports that a transaction spent its retry budget
	// on every rung of the degradation ladder (Options.RetryBudget)
	// without committing. The caller decides whether to shed the
	// request or resubmit later; the engine will not retry forever.
	ErrContended = errors.New("transaction contended")

	// errRestart is the internal signal that the current attempt
	// must be retried from scratch.
	errRestart = errors.New("restart transaction")
)
