package core

import (
	"errors"
	"io"
	"testing"
	"time"

	"thedb/internal/fault"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// durableEngine builds a one-worker engine logging to a fault.Writer.
func durableEngine(retries int) (*Engine, *fault.Writer) {
	sink := fault.NewWriter(io.Discard)
	logger := wal.NewLogger(wal.ValueLogging, 1, func(int) io.Writer { return sink })
	e := NewEngine(storage.NewCatalog(), Options{
		Workers:     1,
		Logger:      logger,
		SyncRetries: retries,
		SyncBackoff: time.Microsecond,
	})
	return e, sink
}

func TestSyncToStableRetriesTransientErrors(t *testing.T) {
	e, sink := durableEngine(3)
	sink.ScriptSync(errors.New("transient 1"), errors.New("transient 2"))

	e.syncToStable(5) // hardens epoch 5-2 = 3 after two retries

	if got := e.DurableEpoch(); got != 3 {
		t.Fatalf("durable epoch = %d, want 3", got)
	}
	if e.DurabilityLost() {
		t.Fatal("transient failures must not latch durability-lost")
	}
	m := e.Metrics(time.Second)
	if m.DurableEpoch != 3 || m.DurabilityLost || m.LogSyncs != 1 || m.LogSyncFailures != 2 {
		t.Fatalf("metrics = durable=%d lost=%v syncs=%d fails=%d",
			m.DurableEpoch, m.DurabilityLost, m.LogSyncs, m.LogSyncFailures)
	}
	if sink.SyncCalls() != 3 {
		t.Fatalf("sync calls = %d, want 3 (two failures + one success)", sink.SyncCalls())
	}
}

func TestSyncToStableDegradesOnPermanentFailure(t *testing.T) {
	e, sink := durableEngine(2)
	perm := errors.New("device detached")
	sink.ScriptSync(perm, perm, perm) // enough to exhaust SyncRetries=2 (three attempts)

	e.syncToStable(5) // must give up after SyncRetries, not spin

	if e.DurableEpoch() != 0 {
		t.Fatalf("durable epoch advanced to %d despite failed syncs", e.DurableEpoch())
	}
	if !e.DurabilityLost() {
		t.Fatal("exhausted retries must latch durability-lost")
	}
	m := e.Metrics(time.Second)
	if !m.DurabilityLost || m.LogSyncs != 0 || m.LogSyncFailures != 3 {
		t.Fatalf("metrics = lost=%v syncs=%d fails=%d, want lost with 0/3",
			m.DurabilityLost, m.LogSyncs, m.LogSyncFailures)
	}

	// Degradation is graceful: the next advance tries again, and a
	// healed sink resumes hardening (the lost flag stays latched —
	// epochs from the outage window were never made durable).
	e.syncToStable(6) // script drained: the sink syncs cleanly again
	if e.DurableEpoch() != 4 {
		t.Fatalf("durable epoch = %d after sink healed, want 4", e.DurableEpoch())
	}
	if !e.DurabilityLost() {
		t.Fatal("durability-lost must stay latched across recovery of the sink")
	}
}

func TestSyncToStableSkipsEarlyEpochs(t *testing.T) {
	e, sink := durableEngine(3)
	e.syncToStable(2) // cur-2 = 0: nothing to harden yet
	if sink.SyncCalls() != 0 || e.DurableEpoch() != 0 {
		t.Fatalf("sync calls = %d durable = %d, want 0/0", sink.SyncCalls(), e.DurableEpoch())
	}
}

func TestStopSurfacesCloseFailure(t *testing.T) {
	e, sink := durableEngine(3)
	boom := errors.New("final flush failed")
	// Arm a write error so Close's flush of the sealed stream fails.
	wl := e.Options().Logger.Worker(0)
	ts := storage.MakeTS(1, 1)
	_ = wl.BeginCommit(ts)
	_ = wl.LogWrite(ts, 0, 1, []int{0}, []storage.Value{storage.Int(1)})
	_ = wl.EndCommit(ts)
	sink.FailAt(0, fault.WriteError, boom)

	if err := e.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop() = %v, want the close failure", err)
	}
	if !e.DurabilityLost() {
		t.Fatal("failed close must latch durability-lost")
	}
}
