package core

import (
	"sync"
	"testing"
	"time"
)

// TestEpochManagerConcurrentLifecycle hammers Start/Stop/Advance/
// Current from many goroutines (run under -race): the lifecycle must
// not race with itself or with epoch readers, and the manager must be
// stopped cleanly at the end no matter how the calls interleaved.
func TestEpochManagerConcurrentLifecycle(t *testing.T) {
	m := NewEpochManager(100 * time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Start(nil)
				m.Advance()
				_ = m.Current()
				m.Stop()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = m.Current()
				m.Advance()
			}
		}()
	}
	wg.Wait()
	m.Stop()
	if cur := m.Current(); cur < 1000 {
		t.Fatalf("epoch advanced only to %d", cur)
	}
}

// TestEpochManagerDoubleStop: extra Stops — before Start, repeated,
// and after a restart cycle — are all no-ops.
func TestEpochManagerDoubleStop(t *testing.T) {
	m := NewEpochManager(time.Millisecond)
	m.Stop() // never started
	m.Start(nil)
	m.Stop()
	m.Stop()
	m.Stop()
	m.Start(nil) // restart after stop must still work
	before := m.Current()
	time.Sleep(10 * time.Millisecond)
	if m.Current() == before {
		t.Fatal("restarted advancer is not advancing")
	}
	m.Stop()
	m.Stop()
}

// TestEpochManagerStartWhileRunning: a second Start is a no-op and
// must not leak a second advancer (the epoch advances at roughly one
// rate, and one Stop is enough to halt it).
func TestEpochManagerStartWhileRunning(t *testing.T) {
	m := NewEpochManager(time.Millisecond)
	m.Start(nil)
	m.Start(nil)
	m.Start(nil)
	m.Stop()
	stopped := m.Current()
	time.Sleep(5 * time.Millisecond)
	if m.Current() != stopped {
		t.Fatal("epoch still advancing after Stop; a duplicate advancer leaked")
	}
}

// TestWatchdogDeterministic drives the watchdog by hand — a manual
// manager with an unreachable tick interval, explicit Refresh/Idle
// and Advance calls — so the trip, latch, re-arm and suppression
// semantics are checked without any timing dependence.
func TestWatchdogDeterministic(t *testing.T) {
	m := NewEpochManager(time.Hour)
	var tripped []int
	m.Watch(2, 3, func(worker int) { tripped = append(tripped, worker) })

	// Worker 0 registers at epoch 1 and stalls; worker 1 stays idle.
	m.Refresh(0)
	for i := 0; i < 3; i++ { // epochs 2..4: within the lag of 3
		m.Advance()
	}
	if got := m.Trips(0); got != 0 {
		t.Fatalf("tripped after %d epochs, within lag: trips=%d", 3, got)
	}
	m.Advance() // epoch 5: 4 > lag, must trip
	if got := m.Trips(0); got != 1 {
		t.Fatalf("trips(0) = %d, want 1", got)
	}
	if got := m.Trips(1); got != 0 {
		t.Fatalf("idle worker tripped: trips(1) = %d", got)
	}
	if len(tripped) != 1 || tripped[0] != 0 {
		t.Fatalf("onTrip calls = %v, want [0]", tripped)
	}

	// The trip is latched: further advances don't re-count.
	for i := 0; i < 10; i++ {
		m.Advance()
	}
	if got := m.Trips(0); got != 1 {
		t.Fatalf("latched trip re-fired: trips(0) = %d", got)
	}

	// Refresh re-arms: a second stall trips a second time.
	m.Refresh(0)
	for i := 0; i < 5; i++ {
		m.Advance()
	}
	if got := m.Trips(0); got != 2 {
		t.Fatalf("re-armed watchdog did not trip: trips(0) = %d", got)
	}

	// Idle suppresses: a deregistered worker never trips.
	m.Refresh(0)
	m.Idle(0)
	for i := 0; i < 10; i++ {
		m.Advance()
	}
	if got := m.Trips(0); got != 2 {
		t.Fatalf("idle worker tripped: trips(0) = %d", got)
	}

	// A worker that keeps refreshing never trips.
	for i := 0; i < 10; i++ {
		m.Refresh(1)
		m.Advance()
	}
	if got := m.Trips(1); got != 0 {
		t.Fatalf("refreshing worker tripped: trips(1) = %d", got)
	}
}

// TestWatchdogOutOfRangeAndUnarmed: watchdog calls on an unarmed
// manager or with out-of-range worker ids are harmless no-ops.
func TestWatchdogOutOfRangeAndUnarmed(t *testing.T) {
	m := NewEpochManager(time.Hour)
	m.Refresh(0) // unarmed: no Watch call
	m.Idle(0)
	m.Advance()
	if got := m.Trips(0); got != 0 {
		t.Fatalf("unarmed manager reported trips: %d", got)
	}
	m.Watch(1, 2, nil)
	m.Refresh(-1)
	m.Refresh(7)
	m.Idle(-1)
	m.Idle(7)
	if got := m.Trips(-1) + m.Trips(7); got != 0 {
		t.Fatalf("out-of-range ids reported trips: %d", got)
	}
}
