package core

import (
	"fmt"
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// chainSpec builds a pointer-chase of the given depth: each hop reads
// PTR[key] to obtain the next key, and the final op writes VAL at the
// last key. Every hop is key-dependent on the previous one, so an
// inconsistency at hop k must restore exactly hops k..depth.
func chainSpec(depth int) *proc.Spec {
	return &proc.Spec{
		Name:   "Chain",
		Params: []string{"k0"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			prev := "k0"
			for i := 1; i <= depth; i++ {
				cur := fmt.Sprintf("k%d", i)
				prevVar := prev
				b.Op(proc.Op{
					Name:     fmt.Sprintf("hop%d", i),
					KeyReads: []string{prevVar},
					Writes:   []string{cur},
					Body: func(ctx proc.OpCtx) error {
						row, ok, err := ctx.Read("PTR", storage.Key(ctx.Env().Int(prevVar)), nil)
						if err != nil {
							return err
						}
						if !ok {
							return proc.UserAbort("broken chain")
						}
						ctx.Env().SetVal(cur, row[0])
						return nil
					},
				})
				prev = cur
			}
			last := prev
			b.Op(proc.Op{
				Name:     "mark",
				KeyReads: []string{last},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("VAL", storage.Key(ctx.Env().Int(last)), []int{0},
						[]storage.Value{storage.Int(1)})
				},
			})
		},
	}
}

func chainEngine(t *testing.T, depth int) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "PTR",
		Columns: []storage.ColumnDef{{Name: "next", Kind: storage.KindInt}},
	})
	cat.MustCreateTable(storage.Schema{
		Name:    "VAL",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	ptr, _ := cat.Table("PTR")
	val, _ := cat.Table("VAL")
	// Identity-ish chain: i -> i+1, plus an alternate branch at 100.
	for i := int64(0); i < 120; i++ {
		ptr.Put(storage.Key(i), storage.Tuple{storage.Int(i + 1)}, 0)
		val.Put(storage.Key(i), storage.Tuple{storage.Int(0)}, 0)
	}
	val.Put(200, storage.Tuple{storage.Int(0)}, 0)
	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1})
	e.MustRegister(chainSpec(depth))
	return e
}

// TestHealPropagatesThroughChain changes the FIRST hop's pointer
// mid-flight: every downstream hop is key-dependent, so the healing
// pass must re-execute the whole chain and the write must land at the
// rerouted destination.
func TestHealPropagatesThroughChain(t *testing.T) {
	const depth = 4
	e := chainEngine(t, depth)
	w := e.Worker(0)
	spec, _ := e.Spec("Chain")

	env := buildEnv(spec, []storage.Value{storage.Int(0)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	// Original walk: 0->1->2->3->4, mark VAL[4].
	if env.Int("k4") != 4 {
		t.Fatalf("walk ended at %d", env.Int("k4"))
	}

	// Concurrent commit reroutes hop 1: 0 -> 100 (then 101, 102...).
	externalCommit(t, e, "PTR", 0, 0, storage.Int(100), storage.MakeTS(1, 1))

	if err := txn.validateAndCommitHealing("Chain"); err != nil {
		t.Fatal(err)
	}
	if got := env.Int("k4"); got != 103 {
		t.Fatalf("healed walk ended at %d, want 103", got)
	}
	// All depth hops after hop1 plus the mark were restored, plus
	// hop1 itself: depth+1 ops.
	if got := w.m.HealedOps; got != depth+1 {
		t.Errorf("healed ops = %d, want %d", got, depth+1)
	}
	val, _ := e.Catalog().Table("VAL")
	if rec, _ := val.Peek(103); rec.Tuple()[0].Int() != 1 {
		t.Error("mark did not land at the rerouted destination")
	}
	if rec, _ := val.Peek(4); rec.Tuple()[0].Int() != 0 {
		t.Error("mark leaked to the stale destination (membership update failed)")
	}
}

// TestHealMidChain changes a MIDDLE hop: upstream hops must not be
// restored.
func TestHealMidChain(t *testing.T) {
	const depth = 4
	e := chainEngine(t, depth)
	w := e.Worker(0)
	spec, _ := e.Spec("Chain")

	env := buildEnv(spec, []storage.Value{storage.Int(0)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	// Reroute hop 3's input: PTR[2] = 100.
	externalCommit(t, e, "PTR", 2, 0, storage.Int(100), storage.MakeTS(1, 1))

	if err := txn.validateAndCommitHealing("Chain"); err != nil {
		t.Fatal(err)
	}
	if got := env.Int("k2"); got != 2 {
		t.Errorf("upstream hop changed: k2 = %d", got)
	}
	if got := env.Int("k4"); got != 101 {
		t.Errorf("healed walk ended at %d, want 101", got)
	}
	// hop3 (the bookmark), hop4, mark: 3 restorations.
	if got := w.m.HealedOps; got != 3 {
		t.Errorf("healed ops = %d, want 3 (hop3, hop4, mark)", got)
	}
}

// TestSecondaryScanPhantomHealing exercises §4.7.2 through a
// secondary index: a concurrent insert matching the scanned name
// range must be healed into the scan's aggregate.
func TestSecondaryScanPhantomHealing(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name: "PEOPLE",
		Columns: []storage.ColumnDef{
			{Name: "name", Kind: storage.KindString},
			{Name: "age", Kind: storage.KindInt},
		},
		Secondaries: []storage.SecondaryDef{{
			Name: "by_name",
			Key: func(pk storage.Key, t storage.Tuple) string {
				return fmt.Sprintf("%s|%016x", t[0].Str(), uint64(pk))
			},
		}},
	})
	people, _ := cat.Table("PEOPLE")
	people.Put(1, storage.Tuple{storage.Str("smith"), storage.Int(30)}, 0)
	people.Put(2, storage.Tuple{storage.Str("smith"), storage.Int(40)}, 0)
	people.Put(3, storage.Tuple{storage.Str("jones"), storage.Int(50)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 2})
	e.MustRegister(&proc.Spec{
		Name:   "CountName",
		Params: []string{"name"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "scan",
				KeyReads: []string{"name"},
				Writes:   []string{"n"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					prefix := e.Str("name") + "|"
					var n int64
					err := ctx.ScanSec("PEOPLE", "by_name", prefix, prefix+"\xff", 0,
						func(storage.Key, storage.Tuple) bool {
							n++
							return true
						})
					if err != nil {
						return err
					}
					e.SetInt("n", n)
					return nil
				},
			})
		},
	})
	e.MustRegister(&proc.Spec{
		Name:   "AddPerson",
		Params: []string{"k", "name"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "insert",
				KeyReads: []string{"k"},
				ValReads: []string{"name"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Insert("PEOPLE", storage.Key(e.Int("k")),
						storage.Tuple{storage.Str(e.Str("name")), storage.Int(20)})
				},
			})
		},
	})
	w1, w2 := e.Worker(0), e.Worker(1)

	spec, _ := e.Spec("CountName")
	env := buildEnv(spec, []storage.Value{storage.Str("smith")})
	txn := newTxn(w1, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	if env.Int("n") != 2 {
		t.Fatalf("initial count = %d", env.Int("n"))
	}

	if _, err := w2.Run("AddPerson", storage.Int(4), storage.Str("smith")); err != nil {
		t.Fatal(err)
	}

	if err := txn.validateAndCommitHealing("CountName"); err != nil {
		t.Fatal(err)
	}
	if env.Int("n") != 3 {
		t.Fatalf("healed count = %d, want 3 (secondary phantom)", env.Int("n"))
	}
}

// TestWorstCaseOrderStillCorrect: THEDB-W (reversed validation order)
// must stay serializable — only its abort rate differs.
func TestWorstCaseOrderStillCorrect(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1, Order: ReverseTreeOrder, OrderSet: true})
	w := e.Worker(0)
	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "CLIENT", amy, 0, storage.Int(dave), storage.MakeTS(1, 1))
	// Either the heal succeeds or deadlock prevention restarts — both
	// are correct; drive to completion through Run in the latter case.
	if err := txn.validateAndCommitHealing("Transfer"); err != nil {
		if err != errRestart {
			t.Fatal(err)
		}
		txn.finish(false)
		if _, err := w.Run("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
			t.Fatal(err)
		}
	}
	if got := balanceOf(t, e, dave); got != 520 {
		t.Errorf("dave balance = %d, want 520", got)
	}
	if got := balanceOf(t, e, dan); got != 1200 {
		t.Errorf("dan balance = %d, want 1200", got)
	}
}
