package core

import (
	"errors"
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// snapEngine extends kvEngine with an in-place update, the op that
// grows version chains when commits cross epoch boundaries.
func snapEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := kvEngine(t, opts)
	e.MustRegister(&proc.Spec{
		Name:   "Upd",
		Params: []string{"k", "v"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "update",
				KeyReads: []string{"k"},
				ValReads: []string{"v"},
				Body: func(ctx proc.OpCtx) error {
					env := ctx.Env()
					return ctx.Write("KV", storage.Key(env.Int("k")),
						[]int{0}, []storage.Value{storage.Int(env.Int("v"))})
				},
			})
		},
	})
	return e
}

// Snapshot reads resolve against the epoch floor: commits from earlier
// epochs are visible, commits from the current epoch are not (they may
// still be mid-install on other workers).
func TestSnapshotReadSeesFloorNotCurrent(t *testing.T) {
	e := snapEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	mustRun(t, w, "Put", storage.Int(1), storage.Int(10))
	mustRun(t, w, "Put", storage.Int(2), storage.Int(20))
	e.epoch.Advance()
	// This epoch's update is above every valid snapshot boundary.
	mustRun(t, w, "Upd", storage.Int(1), storage.Int(100))

	var got int64
	var present bool
	if err := w.TransactSnapshot(func(ctx proc.OpCtx) error {
		row, ok, err := ctx.Read("KV", 1, nil)
		if err != nil {
			return err
		}
		present = ok
		if ok {
			got = row[0].Int()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !present || got != 10 {
		t.Fatalf("snapshot read = (%d, %v), want the pre-epoch image (10, true)", got, present)
	}

	// After the epoch advances past the update, a fresh snapshot sees it.
	e.epoch.Advance()
	env, err := w.RunSnapshot("Get", storage.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("ok") != 1 || env.Int("v") != 100 {
		t.Fatalf("snapshot after advance: ok=%d v=%d, want 100", env.Int("ok"), env.Int("v"))
	}
}

func TestSnapshotScanIsEpochConsistent(t *testing.T) {
	e := snapEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	for k := int64(0); k < 10; k++ {
		mustRun(t, w, "Put", storage.Int(k), storage.Int(100))
	}
	e.epoch.Advance()
	// Same-epoch churn after the boundary: a snapshot must see all
	// hundreds (sum 1000) — never a mix of old and new images.
	mustRun(t, w, "Upd", storage.Int(3), storage.Int(250))
	mustRun(t, w, "Upd", storage.Int(7), storage.Int(-50))

	var sum, rows int64
	if err := w.TransactSnapshot(func(ctx proc.OpCtx) error {
		sum, rows = 0, 0
		return ctx.Scan("KV", 0, ^storage.Key(0), 0, func(_ storage.Key, row storage.Tuple) bool {
			sum += row[0].Int()
			rows++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 10 || sum != 1000 {
		t.Fatalf("snapshot scan = (rows %d, sum %d), want (10, 1000)", rows, sum)
	}
}

func TestSnapshotRejectsWrites(t *testing.T) {
	e := snapEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	mustRun(t, w, "Put", storage.Int(1), storage.Int(10))

	for name, fn := range map[string]func(proc.OpCtx) error{
		"write": func(ctx proc.OpCtx) error {
			return ctx.Write("KV", 1, []int{0}, []storage.Value{storage.Int(9)})
		},
		"insert": func(ctx proc.OpCtx) error {
			return ctx.Insert("KV", 99, storage.Tuple{storage.Int(9)})
		},
		"delete": func(ctx proc.OpCtx) error { return ctx.Delete("KV", 1) },
	} {
		err := w.TransactSnapshot(fn)
		if !errors.Is(err, ErrReadOnlyTxn) {
			t.Errorf("%s in snapshot: err = %v, want ErrReadOnlyTxn", name, err)
		}
	}
}

// Snapshot transactions must never touch the validation machinery:
// whatever they read, they commit — zero heals, zero restarts.
func TestSnapshotCommitsWithZeroValidation(t *testing.T) {
	e := snapEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)
	for k := int64(0); k < 8; k++ {
		mustRun(t, w, "Put", storage.Int(k), storage.Int(k))
	}
	base := e.LiveMetrics()
	for i := 0; i < 50; i++ {
		if _, err := w.RunSnapshot("GetSum", storage.Int(0), storage.Int(1<<30)); err != nil {
			t.Fatal(err)
		}
		e.epoch.Advance()
		mustRun(t, w, "Upd", storage.Int(int64(i%8)), storage.Int(int64(i)))
	}
	m := e.LiveMetrics()
	if m.SnapshotReads-base.SnapshotReads != 50 {
		t.Fatalf("SnapshotReads grew by %d, want 50", m.SnapshotReads-base.SnapshotReads)
	}
	if m.Heals != base.Heals || m.Restarts != base.Restarts || m.Aborted != base.Aborted {
		t.Fatalf("snapshot run moved validation counters: heals %d->%d restarts %d->%d aborted %d->%d",
			base.Heals, m.Heals, base.Restarts, m.Restarts, base.Aborted, m.Aborted)
	}
	if m.VersionsInstalled == base.VersionsInstalled {
		t.Fatal("epoch-crossing updates installed no versions")
	}
}

// GC torture (ISSUE 10 satellite): no version a pinned snapshot can
// still resolve is reclaimed, and once readers drain the chains shrink
// back to just the in-record image.
func TestSnapshotGCTorture(t *testing.T) {
	e := snapEngine(t, Options{Protocol: Healing, Workers: 2})
	writer := e.Worker(0)
	reader := e.Worker(1)
	mustRun(t, writer, "Put", storage.Int(1), storage.Int(111))
	// Advance past the insert so the snapshot's boundary timestamp
	// (just below the current epoch) covers it.
	e.epoch.Advance()

	tab, _ := e.Catalog().Table("KV")
	rec, ok := tab.Peek(1)
	if !ok {
		t.Fatal("record missing")
	}

	step := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- reader.TransactSnapshot(func(ctx proc.OpCtx) error {
			for range step {
				row, ok, err := ctx.Read("KV", 1, nil)
				if err != nil {
					return err
				}
				if !ok || row[0].Int() != 111 {
					return errors.New("pinned snapshot lost its image")
				}
			}
			return nil
		})
	}()

	// Hammer the record across many epoch boundaries while the snapshot
	// stays pinned; collect aggressively after every round. Sends race
	// against an early reader failure, so bail out through done instead
	// of deadlocking on a receiver that already returned.
	poke := func() {
		select {
		case step <- struct{}{}:
		case err := <-done:
			t.Fatalf("snapshot reader bailed: %v", err)
		}
	}
	poke() // pin established, first read done
	for i := 0; i < 20; i++ {
		e.epoch.Advance()
		mustRun(t, writer, "Upd", storage.Int(1), storage.Int(int64(1000+i)))
		e.gc.CollectVersions()
		poke() // the snapshot must still see 111
	}
	if rec.VersionLen() == 0 {
		t.Fatal("no chain survived while a snapshot was pinned")
	}
	close(step)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Reader drained: the watermark catches up with the epoch floor and
	// the chain prunes to length 1 (the in-record image alone).
	e.epoch.Advance()
	for i := 0; rec.VersionLen() > 0 && i < 3; i++ {
		e.gc.CollectVersions()
	}
	if n := rec.VersionLen(); n != 0 {
		t.Fatalf("chain still holds %d superseded images after readers drained", n)
	}
	if e.gc.VersionsReclaimed() == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	if got := e.LiveMetrics().MVCCVersionsReclaimed; got == 0 {
		t.Fatal("MVCCVersionsReclaimed metric not wired")
	}
	// The live image is still the newest write.
	env, err := reader.RunSnapshot("Get", storage.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if env.Int("v") != 1019 {
		t.Fatalf("post-drain snapshot v = %d, want 1019", env.Int("v"))
	}
}

func mustRun(t *testing.T, w *Worker, proc string, args ...storage.Value) {
	t.Helper()
	if _, err := w.Run(proc, args...); err != nil {
		t.Fatalf("%s: %v", proc, err)
	}
}
