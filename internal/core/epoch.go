package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thedb/internal/fault"
	"thedb/internal/obs"
	"thedb/internal/storage"
)

// EpochManager advances the global epoch number that forms the high
// half of every commit timestamp (§4.3). A designated goroutine bumps
// the epoch periodically; transactions committed within one epoch are
// group-committed together by the logging layer.
//
// The manager doubles as the stuck-epoch watchdog: workers register
// their current epoch at each transaction attempt (Refresh) and
// deregister between transactions (Idle); each advance checks for a
// worker whose registration has fallen more than the configured lag
// behind and latches a trip for it. A tripped worker cannot advance
// the durability frontier or drain healing work, so surfacing it
// beats silently stalling group commit.
type EpochManager struct {
	cur      atomic.Uint32
	interval time.Duration

	mu   sync.Mutex // guards stop/done lifecycle
	stop chan struct{}
	done chan struct{}

	// chaos, when non-nil, is consulted around each advance.
	chaos *fault.Schedule

	// rec, when non-nil, receives epoch-advance and watchdog-trip
	// events on the advancer's flight-recorder ring.
	rec *obs.Recorder

	// Watchdog state, armed by Watch. wd[i] packs a worker's
	// registration into one word: bit 63 = executing a transaction,
	// bit 62 = trip latched, low 32 bits = epoch at last Refresh.
	wdLag  uint32
	wd     []atomic.Uint64
	trips  []atomic.Int64
	onTrip func(worker int)
}

const (
	wdActive  = uint64(1) << 63
	wdTripped = uint64(1) << 62
)

// NewEpochManager builds a manager that advances every interval.
func NewEpochManager(interval time.Duration) *EpochManager {
	m := &EpochManager{interval: interval}
	m.cur.Store(1) // epoch 0 is reserved for load-time records
	return m
}

// Current returns the global epoch.
func (m *EpochManager) Current() uint32 { return m.cur.Load() }

// SeedTo fast-forwards the epoch to at least epoch (never backwards).
// Recovery uses it before serving resumes: the epoch counter restarts
// at 1 in every process, but recovered records carry timestamps from
// earlier generations, and a commit touching one would inherit an
// epoch far above the advancer's counter — its group would then sit
// above every seal the advancer writes and be dropped by any salvage.
// Seeding past the recovered maximum keeps commit epochs and seal
// epochs in the same regime across restarts.
func (m *EpochManager) SeedTo(epoch uint32) {
	for {
		cur := m.cur.Load()
		if epoch <= cur || m.cur.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Advance bumps the epoch once (the advancer goroutine, tests, manual
// control) and runs the stall check against the new epoch.
func (m *EpochManager) Advance() uint32 {
	e := m.cur.Add(1)
	if m.rec != nil {
		m.rec.Record(obs.EpochActor, obs.KEpochAdvance, e, uint64(e), 0)
	}
	m.checkStalls(e)
	return e
}

// Watch arms worker epoch registration and, when lag > 0, the
// stuck-epoch watchdog: a worker that stays registered (Refresh
// without a matching Idle) for more than lag epochs trips once,
// counted per worker and reported to onTrip (optional). lag == 0 keeps
// registration armed without stall checks — the registration table
// also feeds VisibleFloor, which snapshot reads depend on, so the
// engine always arms it. Call before any worker runs.
func (m *EpochManager) Watch(workers int, lag uint32, onTrip func(worker int)) {
	if workers <= 0 {
		return
	}
	m.wdLag = lag
	m.wd = make([]atomic.Uint64, workers)
	m.trips = make([]atomic.Int64, workers)
	m.onTrip = onTrip
}

// Refresh registers the worker as executing in the current epoch and
// clears any previous trip latch. Workers call it at the start of
// every transaction attempt.
func (m *EpochManager) Refresh(worker int) {
	if m.wd == nil || worker < 0 || worker >= len(m.wd) {
		return
	}
	m.wd[worker].Store(wdActive | uint64(m.cur.Load()))
}

// Idle deregisters the worker (no transaction in flight), suppressing
// the watchdog until the next Refresh.
func (m *EpochManager) Idle(worker int) {
	if m.wd == nil || worker < 0 || worker >= len(m.wd) {
		return
	}
	m.wd[worker].Store(0)
}

// VisibleFloor returns the lowest epoch any currently registered
// worker was in at its last Refresh, or the current epoch when no
// worker is mid-transaction. Every in-flight and future commit is
// stamped with at least the floor's epoch: a worker's commit reads the
// epoch after its Refresh stored the registration, so a registration
// the scan observes bounds that worker's commits from below, and a
// registration the scan misses belongs to a commit whose epoch read
// happened after the scan (hence at least the scan's current epoch).
// Snapshot reads build their timestamps from this floor (DESIGN.md
// §16).
func (m *EpochManager) VisibleFloor() uint32 {
	floor := m.cur.Load()
	for i := range m.wd {
		v := m.wd[i].Load()
		if v&wdActive == 0 {
			continue
		}
		if e := uint32(v); e < floor {
			floor = e
		}
	}
	return floor
}

// Trips returns how often the watchdog has fired for the worker.
func (m *EpochManager) Trips(worker int) int64 {
	if m.trips == nil || worker < 0 || worker >= len(m.trips) {
		return 0
	}
	return m.trips[worker].Load()
}

// checkStalls trips the watchdog for every registered worker whose
// last refresh is more than wdLag epochs behind cur. The trip is
// latched per registration: one firing per stall, re-armed by the
// next Refresh.
func (m *EpochManager) checkStalls(cur uint32) {
	if m.wd == nil || m.wdLag == 0 {
		return
	}
	for i := range m.wd {
		v := m.wd[i].Load()
		if v&wdActive == 0 || v&wdTripped != 0 {
			continue
		}
		if cur-uint32(v) <= m.wdLag {
			continue
		}
		// CAS so a concurrent Refresh/Idle wins over the latch.
		if m.wd[i].CompareAndSwap(v, v|wdTripped) {
			m.trips[i].Add(1)
			if m.rec != nil {
				m.rec.Record(obs.EpochActor, obs.KWatchdogTrip, cur, uint64(i), uint64(uint32(v)))
			}
			if m.onTrip != nil {
				m.onTrip(i)
			}
		}
	}
}

// Start launches the advancer; onAdvance (optional) runs after each
// bump on the advancer goroutine. Start while already running is a
// no-op; Start/Stop are safe to call concurrently.
func (m *EpochManager) Start(onAdvance func(epoch uint32)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.done = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.chaosPoint(fault.PreEpochAdvance, stop)
				e := m.Advance()
				if onAdvance != nil {
					onAdvance(e)
				}
				m.chaosPoint(fault.PostEpochAdvance, stop)
			}
		}
	}()
}

// Stop halts the advancer. Extra Stops (including concurrent ones)
// are no-ops.
func (m *EpochManager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// chaosPoint obeys the injected perturbation on the advancer
// goroutine. ActRestart is meaningless for the advancer and ignored;
// sleeps are cut short by stop so chaos never delays shutdown.
func (m *EpochManager) chaosPoint(cp fault.Checkpoint, stop chan struct{}) {
	s := m.chaos
	if s == nil {
		return
	}
	act, d := s.At(fault.EpochSlot, cp)
	switch act {
	case fault.ActYield:
		runtime.Gosched()
	case fault.ActDelay, fault.ActStall:
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-stop:
		}
	}
}

// nextCommitTS computes a worker's commit timestamp per §4.3: the
// smallest timestamp that (a) exceeds the timestamp of every record
// the transaction read or wrote, (b) exceeds the worker's previous
// commit timestamp, (c) carries at least the current global epoch in
// its high half, and (d) whose sequence half falls in the worker's
// residue class (worker i of n draws sequences i, i+n, i+2n, ...).
func nextCommitTS(workerID, workers int, lastTS, maxSeen uint64, epoch uint32) uint64 {
	cand := maxSeen + 1
	if lastTS+1 > cand {
		cand = lastTS + 1
	}
	if floor := storage.MakeTS(epoch, 0); floor > cand {
		cand = floor
	}
	e, s := storage.SplitTS(cand)
	// Round the sequence half up to the worker's residue class.
	n := uint32(workers)
	w := uint32(workerID)
	rem := s % n
	var seq uint32
	switch {
	case rem == w:
		seq = s
	case rem < w:
		seq = s + (w - rem)
	default:
		seq = s + (n - rem + w)
	}
	if seq < s { // overflowed uint32: move to the next epoch
		e++
		seq = w
	}
	return storage.MakeTS(e, seq)
}
