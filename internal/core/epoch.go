package core

import (
	"sync/atomic"
	"time"

	"thedb/internal/storage"
)

// EpochManager advances the global epoch number that forms the high
// half of every commit timestamp (§4.3). A designated goroutine bumps
// the epoch periodically; transactions committed within one epoch are
// group-committed together by the logging layer.
type EpochManager struct {
	cur      atomic.Uint32
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// NewEpochManager builds a manager that advances every interval.
func NewEpochManager(interval time.Duration) *EpochManager {
	m := &EpochManager{interval: interval}
	m.cur.Store(1) // epoch 0 is reserved for load-time records
	return m
}

// Current returns the global epoch.
func (m *EpochManager) Current() uint32 { return m.cur.Load() }

// Advance bumps the epoch once (tests and manual control).
func (m *EpochManager) Advance() uint32 { return m.cur.Add(1) }

// Start launches the advancer; onAdvance (optional) runs after each
// bump on the advancer goroutine.
func (m *EpochManager) Start(onAdvance func(epoch uint32)) {
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				e := m.cur.Add(1)
				if onAdvance != nil {
					onAdvance(e)
				}
			}
		}
	}()
}

// Stop halts the advancer.
func (m *EpochManager) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop = nil
}

// nextCommitTS computes a worker's commit timestamp per §4.3: the
// smallest timestamp that (a) exceeds the timestamp of every record
// the transaction read or wrote, (b) exceeds the worker's previous
// commit timestamp, (c) carries at least the current global epoch in
// its high half, and (d) whose sequence half falls in the worker's
// residue class (worker i of n draws sequences i, i+n, i+2n, ...).
func nextCommitTS(workerID, workers int, lastTS, maxSeen uint64, epoch uint32) uint64 {
	cand := maxSeen + 1
	if lastTS+1 > cand {
		cand = lastTS + 1
	}
	if floor := storage.MakeTS(epoch, 0); floor > cand {
		cand = floor
	}
	e, s := storage.SplitTS(cand)
	// Round the sequence half up to the worker's residue class.
	n := uint32(workers)
	w := uint32(workerID)
	rem := s % n
	var seq uint32
	switch {
	case rem == w:
		seq = s
	case rem < w:
		seq = s + (w - rem)
	default:
		seq = s + (n - rem + w)
	}
	if seq < s { // overflowed uint32: move to the next epoch
		e++
		seq = w
	}
	return storage.MakeTS(e, seq)
}
