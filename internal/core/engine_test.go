package core

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"thedb/internal/proc"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

func TestNextCommitTSProperties(t *testing.T) {
	check := func(worker uint8, workersRaw uint8, last, seen uint64, epoch uint32) bool {
		workers := int(workersRaw%16) + 1
		wid := int(worker) % workers
		last &= storage.MaxTimestamp
		seen &= storage.MaxTimestamp
		epoch &= (1 << 20) - 1
		ts := nextCommitTS(wid, workers, last, seen, epoch)
		// (a) exceeds every record timestamp seen.
		if ts <= seen {
			return false
		}
		// (b) exceeds the worker's previous timestamp.
		if ts <= last {
			return false
		}
		// (c) carries at least the current epoch.
		if e, _ := storage.SplitTS(ts); e < epoch {
			return false
		}
		// (d) sequence half in the worker's residue class.
		_, s := storage.SplitTS(ts)
		return int(s)%workers == wid
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitTSDistinctAcrossWorkers(t *testing.T) {
	// Two workers never produce the same timestamp, whatever they
	// observe: their residue classes are disjoint.
	a := nextCommitTS(0, 3, 0, 100, 1)
	b := nextCommitTS(1, 3, 0, 100, 1)
	c := nextCommitTS(2, 3, 0, 100, 1)
	if a == b || b == c || a == c {
		t.Fatalf("collision: %d %d %d", a, b, c)
	}
}

func TestEpochManager(t *testing.T) {
	m := NewEpochManager(time.Millisecond)
	if m.Current() != 1 {
		t.Fatalf("initial epoch = %d", m.Current())
	}
	if m.Advance() != 2 {
		t.Fatal("manual advance failed")
	}
	fired := make(chan uint32, 64)
	m.Start(func(e uint32) {
		select {
		case fired <- e:
		default:
		}
	})
	e1 := <-fired
	e2 := <-fired
	if e2 <= e1 {
		t.Fatalf("epochs not increasing: %d then %d", e1, e2)
	}
	m.Stop()
	m.Stop() // idempotent
}

// TestAdhocFallsBackToOCC: ad-hoc transactions restart on conflicts
// even under the healing engine (§4.8).
func TestAdhocFallsBackToOCC(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	txn := newTxn(w, spec.Instantiate(env), env, true /* adhoc */)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "BALANCE", amy, 0, storage.Int(2500), storage.MakeTS(1, 1))
	if err := txn.validateOCC(false); err != errRestart {
		t.Fatalf("adhoc validation = %v, want errRestart", err)
	}
	txn.finish(false)

	// The Run path converges by restarting, and the engine never
	// heals ad-hoc transactions.
	if _, err := w.RunAdhoc("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
		t.Fatal(err)
	}
	if w.m.Heals != 0 {
		t.Errorf("ad-hoc transaction healed (%d heals)", w.m.Heals)
	}
}

// TestAblationNoAccessCache: with the access cache disabled (Table 4)
// the healing engine must degrade to abort-and-restart yet stay
// correct.
func TestAblationNoAccessCache(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1, NoAccessCache: true})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "BALANCE", amy, 0, storage.Int(2500), storage.MakeTS(1, 1))
	if err := txn.validateAndCommitHealing("Transfer"); err != errRestart {
		t.Fatalf("without access cache: %v, want errRestart", err)
	}
	txn.finish(false)
	if _, err := w.Run("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
		t.Fatal(err)
	}
	if got := balanceOf(t, e, amy); got != 2480 {
		t.Errorf("balance = %d, want 2480", got)
	}
	if w.m.Heals != 0 {
		t.Errorf("healed without an access cache (%d)", w.m.Heals)
	}
}

// TestAblationNoReadCopies: without read copies, false invalidations
// are not dismissed — the transaction heals instead (correct, just
// more work).
func TestAblationNoReadCopies(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name: "WIDE",
		Columns: []storage.ColumnDef{
			{Name: "a", Kind: storage.KindInt},
			{Name: "b", Kind: storage.KindInt},
		},
	})
	tab, _ := cat.Table("WIDE")
	tab.Put(1, storage.Tuple{storage.Int(10), storage.Int(20)}, 0)
	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1, NoReadCopies: true})
	e.MustRegister(&proc.Spec{
		Name:   "ReadA",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "readA",
				KeyReads: []string{"k"},
				Writes:   []string{"a"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("WIDE", storage.Key(ctx.Env().Int("k")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("a", row[0])
					return nil
				},
			})
		},
	})
	w := e.Worker(0)
	spec, _ := e.Spec("ReadA")
	env := buildEnv(spec, []storage.Value{storage.Int(1)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "WIDE", 1, 1, storage.Int(99), storage.MakeTS(1, 1))
	if err := txn.validateAndCommitHealing("ReadA"); err != nil {
		t.Fatal(err)
	}
	if w.m.FalseInval != 0 {
		t.Error("false invalidation dismissed without read copies")
	}
	if w.m.Heals != 1 {
		t.Errorf("heals = %d, want 1 (cannot prove the read unaffected)", w.m.Heals)
	}
}

// TestRecoveryMatchesLiveState is the end-to-end durability and
// serializability check: run contended transfers with value logging,
// then rebuild a fresh database from the logs alone (Thomas write
// rule, any stream order) and require the checkpoint images to be
// identical. If the engine ever committed a non-serializable
// interleaving, the per-record last-writer state could not be
// reproduced from timestamped logs.
func TestRecoveryMatchesLiveState(t *testing.T) {
	const workers = 4
	var logs [8]bytes.Buffer
	cat := storage.NewCatalog()
	for _, name := range []string{"CLIENT", "BALANCE", "BONUS"} {
		cat.MustCreateTable(storage.Schema{
			Name:    name,
			Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		})
	}
	client, _ := cat.Table("CLIENT")
	balance, _ := cat.Table("BALANCE")
	bonus, _ := cat.Table("BONUS")
	for k := storage.Key(1); k <= 8; k++ {
		client.Put(k, storage.Tuple{storage.Int(int64(k%8) + 1)}, 0)
		balance.Put(k, storage.Tuple{storage.Int(1000)}, 0)
		bonus.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}
	logger := wal.NewLogger(wal.ValueLogging, workers, func(i int) io.Writer { return &logs[i] })
	e := NewEngine(cat, Options{Protocol: Healing, Workers: workers, Logger: logger})
	e.MustRegister(transferSpec())
	e.Start()

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			for i := 0; i < 200; i++ {
				src := storage.Int(int64((wi+i)%8) + 1)
				if _, err := w.Run("Transfer", src, storage.Int(int64(i%37))); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	e.Stop() // flushes the logs

	var live bytes.Buffer
	if err := wal.Checkpoint(cat, &live); err != nil {
		t.Fatal(err)
	}

	// Rebuild from the initial state plus logs, streams in a
	// scrambled order.
	cat2 := storage.NewCatalog()
	for _, name := range []string{"CLIENT", "BALANCE", "BONUS"} {
		cat2.MustCreateTable(storage.Schema{
			Name:    name,
			Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		})
	}
	c2, _ := cat2.Table("CLIENT")
	b2, _ := cat2.Table("BALANCE")
	bo2, _ := cat2.Table("BONUS")
	for k := storage.Key(1); k <= 8; k++ {
		c2.Put(k, storage.Tuple{storage.Int(int64(k%8) + 1)}, 0)
		b2.Put(k, storage.Tuple{storage.Int(1000)}, 0)
		bo2.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}
	var streams []io.Reader
	for _, i := range []int{3, 1, 2, 0} {
		streams = append(streams, bytes.NewReader(logs[i].Bytes()))
	}
	if _, err := wal.Recover(cat2, streams); err != nil {
		t.Fatal(err)
	}
	var recovered bytes.Buffer
	if err := wal.Checkpoint(cat2, &recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatal("recovered state differs from live state")
	}
}

// TestDeadlockPreventionAbort constructs the §4.2.2 situation
// directly: during a healing membership update the new element sorts
// below the validation frontier and its lock is held by someone else,
// so the transaction must abort (restart) instead of waiting.
func TestDeadlockPreventionAbort(t *testing.T) {
	cat := storage.NewCatalog()
	// VAL records are created first (low global lock order), the PTR
	// record afterwards (high), so a healed pointer chase inserts a
	// membership element *below* the already-passed frontier.
	cat.MustCreateTable(storage.Schema{
		Name:    "VAL",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	cat.MustCreateTable(storage.Schema{
		Name:    "PTR",
		Columns: []storage.ColumnDef{{Name: "p", Kind: storage.KindInt}},
	})
	val, _ := cat.Table("VAL")
	ptr, _ := cat.Table("PTR")
	for k := storage.Key(1); k <= 3; k++ {
		val.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}
	ptr.Put(1, storage.Tuple{storage.Int(2)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1, Order: AddrOrder, OrderSet: true, MaxLockAttempts: 1})
	e.MustRegister(&proc.Spec{
		Name:   "Chase",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "readPtr",
				KeyReads: []string{"k"},
				Writes:   []string{"target"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("PTR", storage.Key(ctx.Env().Int("k")), nil)
					if err != nil {
						return err
					}
					ctx.Env().SetVal("target", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeVal",
				KeyReads: []string{"target"},
				Body: func(ctx proc.OpCtx) error {
					return ctx.Write("VAL", storage.Key(ctx.Env().Int("target")), []int{0},
						[]storage.Value{storage.Int(1)})
				},
			})
		},
	})
	w := e.Worker(0)

	spec, _ := e.Spec("Chase")
	env := buildEnv(spec, []storage.Value{storage.Int(1)})
	txn := newTxn(w, spec.Instantiate(env), env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	// RW set: VAL[2] (low addr, write-only), PTR[1] (high addr).
	// Repoint to VAL[1] and pre-lock it: the healed membership
	// insert sorts below the frontier and must fail no-wait.
	v1, _ := val.Peek(1)
	if !v1.TryLock() {
		t.Fatal("could not pre-lock VAL[1]")
	}
	defer v1.Unlock()
	externalCommit(t, e, "PTR", 1, 0, storage.Int(1), storage.MakeTS(1, 1))

	err := txn.validateAndCommitHealing("Chase")
	if err != errRestart {
		t.Fatalf("healing with contended membership lock = %v, want errRestart (no-wait)", err)
	}
	txn.finish(false)

	// With the contended lock released, the retry path succeeds and
	// the healed target receives the write.
	v1.Unlock()
	if _, err := w.Run("Chase", storage.Int(1)); err != nil {
		t.Fatal(err)
	}
	v1.Lock() // re-acquire so the deferred unlock stays balanced
	if got := v1.Tuple()[0].Int(); got != 1 {
		t.Fatalf("VAL[1] = %d, want 1", got)
	}
	v2, _ := val.Peek(2)
	if got := v2.Tuple()[0].Int(); got != 0 {
		t.Fatalf("VAL[2] = %d, want 0 (membership update removed it)", got)
	}
}

// TestCommitTimestampsUniqueUnderConcurrency runs contended traffic
// with value logging and checks the global commit-timestamp
// properties the recovery path depends on: every logged transaction
// timestamp is globally unique, and each worker's stream is strictly
// increasing.
func TestCommitTimestampsUniqueUnderConcurrency(t *testing.T) {
	const workers = 4
	var logs [workers]bytes.Buffer
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name:    "C",
		Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
	})
	tab, _ := cat.Table("C")
	for k := storage.Key(0); k < 4; k++ {
		tab.Put(k, storage.Tuple{storage.Int(0)}, 0)
	}
	logger := wal.NewLogger(wal.CommandLogging, workers, func(i int) io.Writer { return &logs[i] })
	e := NewEngine(cat, Options{Protocol: Healing, Workers: workers, Logger: logger, Interleave: true})
	e.MustRegister(&proc.Spec{
		Name:   "Incr",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "rmw",
				KeyReads: []string{"k"},
				Body: func(ctx proc.OpCtx) error {
					env := ctx.Env()
					row, _, err := ctx.Read("C", storage.Key(env.Int("k")), nil)
					if err != nil {
						return err
					}
					return ctx.Write("C", storage.Key(env.Int("k")), []int{0},
						[]storage.Value{storage.Int(row[0].Int() + 1)})
				},
			})
		},
	})
	e.Start()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.Worker(wi)
			for i := 0; i < 250; i++ {
				if _, err := w.Run("Incr", storage.Int(int64(i%4))); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	e.Stop()

	seen := make(map[uint64]int)
	for wi := range logs {
		cmds, err := wal.Recover(storage.NewCatalog(), []io.Reader{bytes.NewReader(logs[wi].Bytes())})
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		for _, c := range cmds {
			if c.TS <= prev {
				t.Fatalf("worker %d: non-increasing commit ts %d after %d", wi, c.TS, prev)
			}
			prev = c.TS
			if other, dup := seen[c.TS]; dup {
				t.Fatalf("commit ts %d used by workers %d and %d", c.TS, other, wi)
			}
			seen[c.TS] = wi
		}
	}
	if len(seen) != workers*250 {
		t.Fatalf("logged %d commits, want %d", len(seen), workers*250)
	}
}
