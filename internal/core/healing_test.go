package core

import (
	"testing"

	"thedb/internal/proc"
	"thedb/internal/storage"
)

// The tests in this file reproduce the paper's running example
// (Figures 1, 4, 5): a bank transfer whose destination account is
// looked up through a client record, giving both value and key
// dependencies.
//
// Tables (keys are account ids):
//
//	CLIENT  key -> {client}   the transfer destination for an account
//	BALANCE key -> {balance}
//	BONUS   key -> {bonus}
//
// Transfer(src, amount):
//
//	op0: dst    <- read  CLIENT[src]
//	op1: srcVal <- read  BALANCE[src]
//	op2: dstVal <- read  BALANCE[dst]          (key-dep on op0)
//	op3: write BALANCE[src] = srcVal - amount  (val-dep on op1)
//	op4: write BALANCE[dst] = dstVal + amount  (key-dep on op0, val-dep on op2)
//	op5: bonus  <- read  BONUS[src]
//	op6: write BONUS[src] = bonus + 1          (val-dep on op5)
func transferSpec() *proc.Spec {
	return &proc.Spec{
		Name:   "Transfer",
		Params: []string{"src", "amount"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "readClient",
				KeyReads: []string{"src"},
				Writes:   []string{"dst"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("CLIENT", storage.Key(ctx.Env().Int("src")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("dst", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "readSrcBal",
				KeyReads: []string{"src"},
				Writes:   []string{"srcVal"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("BALANCE", storage.Key(ctx.Env().Int("src")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("srcVal", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "readDstBal",
				KeyReads: []string{"dst"},
				Writes:   []string{"dstVal"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("BALANCE", storage.Key(ctx.Env().Int("dst")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("dstVal", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeSrcBal",
				KeyReads: []string{"src"},
				ValReads: []string{"srcVal", "amount"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("BALANCE", storage.Key(e.Int("src")), []int{0},
						[]storage.Value{storage.Int(e.Int("srcVal") - e.Int("amount"))})
				},
			})
			b.Op(proc.Op{
				Name:     "writeDstBal",
				KeyReads: []string{"dst"},
				ValReads: []string{"dstVal", "amount"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("BALANCE", storage.Key(e.Int("dst")), []int{0},
						[]storage.Value{storage.Int(e.Int("dstVal") + e.Int("amount"))})
				},
			})
			b.Op(proc.Op{
				Name:     "readBonus",
				KeyReads: []string{"src"},
				Writes:   []string{"bonus"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("BONUS", storage.Key(ctx.Env().Int("src")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("bonus", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeBonus",
				KeyReads: []string{"src"},
				ValReads: []string{"bonus"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("BONUS", storage.Key(e.Int("src")), []int{0},
						[]storage.Value{storage.Int(e.Int("bonus") + 1)})
				},
			})
		},
	}
}

const (
	amy  = 1
	dan  = 2
	dave = 3
)

func bankEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	for _, name := range []string{"CLIENT", "BALANCE", "BONUS"} {
		cat.MustCreateTable(storage.Schema{
			Name:    name,
			Columns: []storage.ColumnDef{{Name: "v", Kind: storage.KindInt}},
		})
	}
	client, _ := cat.Table("CLIENT")
	balance, _ := cat.Table("BALANCE")
	bonus, _ := cat.Table("BONUS")
	client.Put(amy, storage.Tuple{storage.Int(dan)}, 0)
	client.Put(dan, storage.Tuple{storage.Int(amy)}, 0)
	client.Put(dave, storage.Tuple{storage.Int(amy)}, 0)
	balance.Put(amy, storage.Tuple{storage.Int(2000)}, 0)
	balance.Put(dan, storage.Tuple{storage.Int(1200)}, 0)
	balance.Put(dave, storage.Tuple{storage.Int(500)}, 0)
	bonus.Put(amy, storage.Tuple{storage.Int(18)}, 0)
	bonus.Put(dan, storage.Tuple{storage.Int(7)}, 0)
	bonus.Put(dave, storage.Tuple{storage.Int(3)}, 0)

	e := NewEngine(cat, opts)
	e.MustRegister(transferSpec())
	return e
}

func balanceOf(t *testing.T, e *Engine, key storage.Key) int64 {
	t.Helper()
	tab, _ := e.Catalog().Table("BALANCE")
	rec, ok := tab.Peek(key)
	if !ok {
		t.Fatalf("no BALANCE record for key %d", key)
	}
	return rec.Tuple()[0].Int()
}

func bonusOf(t *testing.T, e *Engine, key storage.Key) int64 {
	t.Helper()
	tab, _ := e.Catalog().Table("BONUS")
	rec, _ := tab.Peek(key)
	return rec.Tuple()[0].Int()
}

// externalCommit simulates a committed concurrent transaction: it
// locks the record, installs a new value, stamps a fresh timestamp,
// and unlocks.
func externalCommit(t *testing.T, e *Engine, table string, key storage.Key, col int, v storage.Value, ts uint64) {
	t.Helper()
	tab, _ := e.Catalog().Table(table)
	rec, ok := tab.Peek(key)
	if !ok {
		t.Fatalf("no %s record for key %d", table, key)
	}
	if !rec.TryLock() {
		t.Fatalf("record %s[%d] unexpectedly locked", table, key)
	}
	tuple := rec.Tuple().Clone()
	tuple[col] = v
	rec.SetTuple(tuple)
	rec.SetTimestamp(ts)
	rec.Unlock()
}

func TestTransferDependencyGraph(t *testing.T) {
	spec := transferSpec()
	env := proc.NewEnv()
	env.SetInt("src", amy)
	env.SetInt("amount", 20)
	prog := spec.Instantiate(env)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.Independent {
		t.Fatal("Transfer must be classified dependent (op2/op4 are key-dependent)")
	}
	// op0 -> K -> op2, op4
	kc := prog.Op(0).KeyChildren()
	if len(kc) != 2 || kc[0].ID != 2 || kc[1].ID != 4 {
		t.Fatalf("op0 key children = %v", ids(kc))
	}
	// op1 -> V -> op3
	vc := prog.Op(1).ValChildren()
	if len(vc) != 1 || vc[0].ID != 3 {
		t.Fatalf("op1 val children = %v", ids(vc))
	}
	// op2 -> V -> op4
	vc = prog.Op(2).ValChildren()
	if len(vc) != 1 || vc[0].ID != 4 {
		t.Fatalf("op2 val children = %v", ids(vc))
	}
	// op5 -> V -> op6
	vc = prog.Op(5).ValChildren()
	if len(vc) != 1 || vc[0].ID != 6 {
		t.Fatalf("op5 val children = %v", ids(vc))
	}
}

func ids(ops []*proc.Op) []int {
	var out []int
	for _, o := range ops {
		out = append(out, o.ID)
	}
	return out
}

func TestTransferNoConflict(t *testing.T) {
	for _, p := range []Protocol{Healing, OCC, Silo, TPL, Hybrid} {
		t.Run(p.String(), func(t *testing.T) {
			e := bankEngine(t, Options{Protocol: p, Workers: 1})
			w := e.Worker(0)
			if _, err := w.Run("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
				t.Fatal(err)
			}
			if got := balanceOf(t, e, amy); got != 1980 {
				t.Errorf("amy balance = %d, want 1980", got)
			}
			if got := balanceOf(t, e, dan); got != 1220 {
				t.Errorf("dan balance = %d, want 1220", got)
			}
			if got := bonusOf(t, e, amy); got != 19 {
				t.Errorf("amy bonus = %d, want 19", got)
			}
			if w.m.Committed != 1 || w.m.Restarts != 0 || w.m.Aborted != 0 {
				t.Errorf("metrics = %+v", w.m)
			}
		})
	}
}

// TestHealValueDependent reproduces Figure 4's scenario: a concurrent
// transaction bumps Amy's balance between T1's read and validation.
// Healing must restore ops 1, 3 (and the bonus chain is untouched);
// the transaction commits without restart and the final balances
// reflect the concurrent update.
func TestHealValueDependent(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	prog := spec.Instantiate(env)
	txn := newTxn(w, prog, env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	// Concurrent commit: Amy's balance 2000 -> 2500.
	externalCommit(t, e, "BALANCE", amy, 0, storage.Int(2500), storage.MakeTS(1, 1))

	if err := txn.validateAndCommitHealing("Transfer"); err != nil {
		t.Fatal(err)
	}
	if w.m.Heals != 1 {
		t.Errorf("heals = %d, want 1", w.m.Heals)
	}
	if got := balanceOf(t, e, amy); got != 2480 {
		t.Errorf("amy balance = %d, want 2480 (2500 - 20)", got)
	}
	if got := balanceOf(t, e, dan); got != 1220 {
		t.Errorf("dan balance = %d, want 1220", got)
	}
	if got := bonusOf(t, e, amy); got != 19 {
		t.Errorf("amy bonus = %d, want 19", got)
	}
}

// TestHealKeyDependent reproduces Figure 5's scenario: a concurrent
// transaction changes Amy's client from Dan to Dave while T1 is in
// flight. Healing must re-execute the key-dependent ops (2 and 4),
// performing a read/write-set membership update: the money lands in
// Dave's account, and Dan's balance is untouched.
func TestHealKeyDependent(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	prog := spec.Instantiate(env)
	txn := newTxn(w, prog, env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	externalCommit(t, e, "CLIENT", amy, 0, storage.Int(dave), storage.MakeTS(1, 1))

	if err := txn.validateAndCommitHealing("Transfer"); err != nil {
		t.Fatal(err)
	}
	if w.m.Heals != 1 {
		t.Errorf("heals = %d, want 1", w.m.Heals)
	}
	if got := balanceOf(t, e, amy); got != 1980 {
		t.Errorf("amy balance = %d, want 1980", got)
	}
	if got := balanceOf(t, e, dan); got != 1200 {
		t.Errorf("dan balance = %d, want 1200 (untouched after heal)", got)
	}
	if got := balanceOf(t, e, dave); got != 520 {
		t.Errorf("dave balance = %d, want 520 (500 + 20)", got)
	}
	if got := env.Int("dst"); got != dave {
		t.Errorf("healed dst = %d, want %d (query result healed)", got, dave)
	}
}

// TestHealBothDependencies changes both the client pointer and the
// source balance concurrently; healing must fix the whole chain.
func TestHealBothDependencies(t *testing.T) {
	e := bankEngine(t, Options{Protocol: Healing, Workers: 1})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	prog := spec.Instantiate(env)
	txn := newTxn(w, prog, env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	externalCommit(t, e, "CLIENT", amy, 0, storage.Int(dave), storage.MakeTS(1, 1))
	externalCommit(t, e, "BALANCE", amy, 0, storage.Int(3000), storage.MakeTS(1, 2))

	if err := txn.validateAndCommitHealing("Transfer"); err != nil {
		t.Fatal(err)
	}
	if got := balanceOf(t, e, amy); got != 2980 {
		t.Errorf("amy balance = %d, want 2980", got)
	}
	if got := balanceOf(t, e, dave); got != 520 {
		t.Errorf("dave balance = %d, want 520", got)
	}
	if got := balanceOf(t, e, dan); got != 1200 {
		t.Errorf("dan balance = %d, want 1200", got)
	}
}

// TestFalseInvalidation writes a column the reader did not read: the
// timestamp changes but the healing engine must dismiss the mismatch
// without restoring any operation (§4.5, Fig. 6).
func TestFalseInvalidation(t *testing.T) {
	cat := storage.NewCatalog()
	cat.MustCreateTable(storage.Schema{
		Name: "WIDE",
		Columns: []storage.ColumnDef{
			{Name: "a", Kind: storage.KindInt},
			{Name: "b", Kind: storage.KindInt},
		},
	})
	tab, _ := cat.Table("WIDE")
	tab.Put(1, storage.Tuple{storage.Int(10), storage.Int(20)}, 0)

	e := NewEngine(cat, Options{Protocol: Healing, Workers: 1})
	spec := &proc.Spec{
		Name:   "ReadA",
		Params: []string{"k"},
		Plan: func(b *proc.Builder, _ *proc.Env) {
			b.Op(proc.Op{
				Name:     "readA",
				KeyReads: []string{"k"},
				Writes:   []string{"a"},
				Body: func(ctx proc.OpCtx) error {
					row, _, err := ctx.Read("WIDE", storage.Key(ctx.Env().Int("k")), []int{0})
					if err != nil {
						return err
					}
					ctx.Env().SetVal("a", row[0])
					return nil
				},
			})
			b.Op(proc.Op{
				Name:     "writeA",
				KeyReads: []string{"k"},
				ValReads: []string{"a"},
				Body: func(ctx proc.OpCtx) error {
					e := ctx.Env()
					return ctx.Write("WIDE", storage.Key(e.Int("k")), []int{0},
						[]storage.Value{storage.Int(e.Int("a") + 1)})
				},
			})
		},
	}
	e.MustRegister(spec)
	w := e.Worker(0)

	env := buildEnv(spec, []storage.Value{storage.Int(1)})
	prog := spec.Instantiate(env)
	txn := newTxn(w, prog, env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}

	// Concurrent commit touches only column b.
	externalCommit(t, e, "WIDE", 1, 1, storage.Int(99), storage.MakeTS(1, 1))

	if err := txn.validateAndCommitHealing("ReadA"); err != nil {
		t.Fatal(err)
	}
	if w.m.Heals != 0 {
		t.Errorf("heals = %d, want 0 (false invalidation dismissed)", w.m.Heals)
	}
	if w.m.FalseInval != 1 {
		t.Errorf("false invalidations = %d, want 1", w.m.FalseInval)
	}
	rec, _ := tab.Peek(1)
	if got := rec.Tuple()[0].Int(); got != 11 {
		t.Errorf("a = %d, want 11", got)
	}
	if got := rec.Tuple()[1].Int(); got != 99 {
		t.Errorf("b = %d, want 99 (concurrent write preserved)", got)
	}
}

// TestHealOCCRestartsInstead confirms the OCC baseline aborts and
// restarts on the same conflict that healing repairs in place.
func TestHealOCCRestartsInstead(t *testing.T) {
	e := bankEngine(t, Options{Protocol: OCC, Workers: 1})
	w := e.Worker(0)

	spec, _ := e.Spec("Transfer")
	env := buildEnv(spec, []storage.Value{storage.Int(amy), storage.Int(20)})
	prog := spec.Instantiate(env)
	txn := newTxn(w, prog, env, false)
	if err := txn.readPhase(); err != nil {
		t.Fatal(err)
	}
	externalCommit(t, e, "BALANCE", amy, 0, storage.Int(2500), storage.MakeTS(1, 1))
	err := txn.validateOCC(false)
	if err != errRestart {
		t.Fatalf("validateOCC = %v, want errRestart", err)
	}
	txn.finish(false)
	// The full Run path must converge by restarting.
	if _, err := w.Run("Transfer", storage.Int(amy), storage.Int(20)); err != nil {
		t.Fatal(err)
	}
	if got := balanceOf(t, e, amy); got != 2480 {
		t.Errorf("amy balance = %d, want 2480", got)
	}
}
