// Package checkpoint implements THEDB's online checkpoint subsystem
// (paper Appendix C, made non-blocking): slot-framed binary snapshots
// of the whole catalog taken while workers keep committing, published
// crash-atomically, plus the WAL generation files whose tail — the
// epochs above the newest checkpoint's watermark — is all a restart
// has to replay.
//
// On disk a checkpoint is a sequence of CRC32C frames, reusing the
// WAL's frame layout ([len u32 LE][crc32c u32 LE][payload]):
//
//	header  magic, format version, schema digest, sealed-epoch
//	        watermark, table count, slot capacity
//	slot*   one table's rows in primary-key order, at most slotRows
//	        per slot, each row (key, ts, tuple)
//	footer  slot count, row count, max row epoch — so a truncated
//	        file can never masquerade as a short-but-valid image
//
// The watermark is the epoch-consistency contract with the WAL: every
// transaction with commit epoch ≤ watermark is fully contained in the
// image, so WAL generations whose maximum epoch is at or below it can
// be deleted, and recovery replays only generations above it. Rows
// with epochs above the watermark may also appear (the scan is fuzzy);
// the publisher guarantees they are durable in the WAL before the
// image becomes visible, so the tail replay always re-applies their
// commit groups in full (see Checkpointer).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"sort"

	"thedb/internal/storage"
)

// Frame payload kinds.
const (
	kindHeader byte = 1
	kindSlot   byte = 2
	kindFooter byte = 3
)

// Magic identifies the slot-framed checkpoint format ("thedbck2";
// "thedbcp1" was the legacy unframed quiesced format in package wal).
const Magic uint64 = 0x7468656462636b32

// Version is the current format version.
const Version uint32 = 1

// slotRows is the slot capacity: rows per CRC-framed slot. Bounded so
// single-slot corruption is detectable at fine grain and decode
// buffers stay small.
const slotRows = 512

var castagnoli = crc32.MakeTable(crc32.Castagnoli)
var ecma = crc64.MakeTable(crc64.ECMA)

// Header is a checkpoint file's decoded header frame.
type Header struct {
	Magic        uint64
	Version      uint32
	SchemaDigest uint64
	Watermark    uint32 // sealed-epoch watermark (see package doc)
	Tables       uint32
	SlotRows     uint32
}

// Info describes a written or loaded checkpoint image.
type Info struct {
	Path        string // file path ("" for raw streams)
	Seq         uint64 // publication sequence number (file name)
	Watermark   uint32 // sealed-epoch watermark
	MaxRowEpoch uint32 // highest commit epoch on any row in the image
	Rows        int64
	Bytes       int64
	Tables      int
}

// SchemaDigest hashes the catalog's schema shape — table names, order,
// column names and kinds, secondary index names — so a checkpoint is
// never loaded into a catalog it was not written from. The digest is
// deliberately insensitive to non-layout schema knobs (ranks, shard
// shifts, partition functions): those change behavior, not the stored
// bytes.
func SchemaDigest(catalog *storage.Catalog) uint64 {
	var b []byte
	for _, tab := range catalog.Tables() {
		s := tab.Schema()
		b = storage.AppendString(b, s.Name)
		b = binary.AppendUvarint(b, uint64(len(s.Columns)))
		for _, c := range s.Columns {
			b = storage.AppendString(b, c.Name)
			b = append(b, byte(c.Kind))
		}
		b = binary.AppendUvarint(b, uint64(len(s.Secondaries)))
		for _, sec := range s.Secondaries {
			b = storage.AppendString(b, sec.Name)
		}
	}
	return crc64.Checksum(b, ecma)
}

// row is one snapshotted record.
type row struct {
	key storage.Key
	ts  uint64
	t   storage.Tuple
}

// tableImage is one table's scanned rows, key-sorted.
type tableImage struct {
	id   int
	rows []row
}

// writeFrame wraps payload in a length-prefixed CRC32C frame (the
// WAL's frame layout) and writes it.
func writeFrame(w io.Writer, scratch, payload []byte) ([]byte, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	scratch = append(scratch[:0], hdr[:]...)
	scratch = append(scratch, payload...)
	_, err := w.Write(scratch)
	return scratch, err
}

// readFrame reads one frame, verifying its checksum.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF means a clean end for the caller to judge
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > 1<<26 {
		return nil, fmt.Errorf("checkpoint: implausible frame length %d", length)
	}
	if cap(buf) < int(length) {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("checkpoint: truncated frame body")
		}
		return nil, err
	}
	if got := crc32.Checksum(buf, castagnoli); got != want {
		return nil, fmt.Errorf("checkpoint: frame checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return buf, nil
}

// encodeHeader builds the header frame payload.
func encodeHeader(h Header) []byte {
	b := make([]byte, 0, 1+8+4+8+4+4+4)
	b = append(b, kindHeader)
	b = binary.LittleEndian.AppendUint64(b, h.Magic)
	b = binary.LittleEndian.AppendUint32(b, h.Version)
	b = binary.LittleEndian.AppendUint64(b, h.SchemaDigest)
	b = binary.LittleEndian.AppendUint32(b, h.Watermark)
	b = binary.LittleEndian.AppendUint32(b, h.Tables)
	b = binary.LittleEndian.AppendUint32(b, h.SlotRows)
	return b
}

func decodeHeader(payload []byte) (Header, error) {
	var h Header
	if len(payload) != 1+8+4+8+4+4+4 || payload[0] != kindHeader {
		return h, fmt.Errorf("checkpoint: malformed header frame")
	}
	h.Magic = binary.LittleEndian.Uint64(payload[1:])
	h.Version = binary.LittleEndian.Uint32(payload[9:])
	h.SchemaDigest = binary.LittleEndian.Uint64(payload[13:])
	h.Watermark = binary.LittleEndian.Uint32(payload[21:])
	h.Tables = binary.LittleEndian.Uint32(payload[25:])
	h.SlotRows = binary.LittleEndian.Uint32(payload[29:])
	return h, nil
}

// Write serializes images into w as a slot-framed checkpoint with the
// given watermark. It returns the row count, byte count and maximum
// row epoch written. midSlot, when non-nil, is called once after the
// first slot frame (crash-point injection for the torture harness).
func Write(w io.Writer, catalog *storage.Catalog, watermark uint32, images []tableImage, midSlot func() error) (rows int64, bytes_ int64, maxRowEpoch uint32, err error) {
	count := func(b []byte, e error) error {
		bytes_ += int64(len(b))
		return e
	}
	var scratch, payload []byte
	hdr := encodeHeader(Header{
		Magic: Magic, Version: Version,
		SchemaDigest: SchemaDigest(catalog),
		Watermark:    watermark,
		Tables:       uint32(len(catalog.Tables())),
		SlotRows:     slotRows,
	})
	if scratch, err = writeFrame(w, scratch, hdr); err != nil {
		return 0, 0, 0, err
	}
	_ = count(scratch, nil)
	slots := 0
	for _, img := range images {
		for lo := 0; lo < len(img.rows); lo += slotRows {
			hi := lo + slotRows
			if hi > len(img.rows) {
				hi = len(img.rows)
			}
			payload = payload[:0]
			payload = append(payload, kindSlot)
			payload = binary.AppendUvarint(payload, uint64(img.id))
			payload = binary.AppendUvarint(payload, uint64(hi-lo))
			for _, r := range img.rows[lo:hi] {
				payload = binary.AppendUvarint(payload, uint64(r.key))
				payload = binary.AppendUvarint(payload, r.ts)
				payload = binary.AppendUvarint(payload, uint64(len(r.t)))
				for _, v := range r.t {
					payload = storage.AppendValue(payload, v)
				}
				if e, _ := storage.SplitTS(r.ts); e > maxRowEpoch {
					maxRowEpoch = e
				}
				rows++
			}
			if scratch, err = writeFrame(w, scratch, payload); err != nil {
				return rows, bytes_, maxRowEpoch, err
			}
			_ = count(scratch, nil)
			slots++
			if slots == 1 && midSlot != nil {
				if err := midSlot(); err != nil {
					return rows, bytes_, maxRowEpoch, err
				}
			}
		}
	}
	payload = payload[:0]
	payload = append(payload, kindFooter)
	payload = binary.AppendUvarint(payload, uint64(slots))
	payload = binary.AppendUvarint(payload, uint64(rows))
	payload = binary.AppendUvarint(payload, uint64(maxRowEpoch))
	if scratch, err = writeFrame(w, scratch, payload); err != nil {
		return rows, bytes_, maxRowEpoch, err
	}
	_ = count(scratch, nil)
	return rows, bytes_, maxRowEpoch, nil
}

// Load decodes and validates a checkpoint stream end to end — header,
// every slot's checksum, footer totals, clean EOF — and only then
// applies the rows to the catalog (tab.Put bulk loads, bypassing
// concurrency control). The catalog must hold the schema the image
// was written from (checked via the digest) and should hold no data.
// On any error the catalog is untouched.
func Load(catalog *storage.Catalog, r io.Reader) (*Info, error) {
	var buf []byte
	frame, err := readFrame(r, buf)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("checkpoint: empty stream")
		}
		return nil, err
	}
	h, err := decodeHeader(frame)
	if err != nil {
		return nil, err
	}
	if h.Magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %016x", h.Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d", h.Version)
	}
	if want := SchemaDigest(catalog); h.SchemaDigest != want {
		return nil, fmt.Errorf("checkpoint: schema digest %016x does not match catalog %016x", h.SchemaDigest, want)
	}
	if int(h.Tables) != len(catalog.Tables()) {
		return nil, fmt.Errorf("checkpoint: image has %d tables, catalog has %d", h.Tables, len(catalog.Tables()))
	}

	info := &Info{Watermark: h.Watermark, Tables: int(h.Tables)}
	type slotRowsDecoded struct {
		table int
		rows  []row
	}
	var slots []slotRowsDecoded
	var rows int64
	var maxRowEpoch uint32
	footerSeen := false
	var footSlots, footRows, footMax uint64
	for {
		frame, err = readFrame(r, frame)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if footerSeen {
			return nil, fmt.Errorf("checkpoint: frame after footer")
		}
		if len(frame) == 0 {
			return nil, fmt.Errorf("checkpoint: empty frame payload")
		}
		switch frame[0] {
		case kindSlot:
			rd := bytes.NewReader(frame[1:])
			tid, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, err
			}
			if int(tid) >= len(catalog.Tables()) {
				return nil, fmt.Errorf("checkpoint: slot references table %d, catalog has %d tables", tid, len(catalog.Tables()))
			}
			n, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, err
			}
			ncols := len(catalog.TableByID(int(tid)).Schema().Columns)
			sl := slotRowsDecoded{table: int(tid), rows: make([]row, 0, n)}
			for j := uint64(0); j < n; j++ {
				key, err := binary.ReadUvarint(rd)
				if err != nil {
					return nil, err
				}
				ts, err := binary.ReadUvarint(rd)
				if err != nil {
					return nil, err
				}
				nc, err := binary.ReadUvarint(rd)
				if err != nil {
					return nil, err
				}
				if int(nc) != ncols {
					return nil, fmt.Errorf("checkpoint: row of table %d has %d columns, schema has %d", tid, nc, ncols)
				}
				t := make(storage.Tuple, nc)
				for c := range t {
					if t[c], err = storage.ReadValue(rd); err != nil {
						return nil, err
					}
				}
				sl.rows = append(sl.rows, row{key: storage.Key(key), ts: ts, t: t})
				if e, _ := storage.SplitTS(ts); e > maxRowEpoch {
					maxRowEpoch = e
				}
				rows++
			}
			if rd.Len() != 0 {
				return nil, fmt.Errorf("checkpoint: %d trailing bytes in slot", rd.Len())
			}
			slots = append(slots, sl)
		case kindFooter:
			rd := bytes.NewReader(frame[1:])
			if footSlots, err = binary.ReadUvarint(rd); err != nil {
				return nil, err
			}
			if footRows, err = binary.ReadUvarint(rd); err != nil {
				return nil, err
			}
			if footMax, err = binary.ReadUvarint(rd); err != nil {
				return nil, err
			}
			footerSeen = true
		default:
			return nil, fmt.Errorf("checkpoint: bad frame kind %d", frame[0])
		}
	}
	if !footerSeen {
		return nil, fmt.Errorf("checkpoint: missing footer (truncated image)")
	}
	if footSlots != uint64(len(slots)) || footRows != uint64(rows) || uint32(footMax) != maxRowEpoch {
		return nil, fmt.Errorf("checkpoint: footer mismatch (slots %d/%d, rows %d/%d, max epoch %d/%d)",
			footSlots, len(slots), footRows, rows, footMax, maxRowEpoch)
	}

	for _, sl := range slots {
		tab := catalog.TableByID(sl.table)
		for _, r := range sl.rows {
			tab.Put(r.key, r.t, r.ts)
		}
	}
	info.Rows = rows
	info.MaxRowEpoch = maxRowEpoch
	return info, nil
}

// Scan snapshots every table of a live catalog without stalling
// writers: each record is read with the seqlock-style
// Record.StableSnapshot (timestamp and tuple as one consistent pair),
// invisible records are skipped, and rows are key-sorted for
// deterministic images. The result is fuzzy — rows may carry epochs
// above any single cut — which is exactly what the watermark/publish
// contract of the Checkpointer accounts for.
func Scan(catalog *storage.Catalog) []tableImage {
	images := make([]tableImage, 0, len(catalog.Tables()))
	for _, tab := range catalog.Tables() {
		img := tableImage{id: tab.ID()}
		tab.ForEach(func(k storage.Key, rec *storage.Record) bool {
			ts, t, visible := rec.StableSnapshot()
			if visible {
				img.rows = append(img.rows, row{key: k, ts: ts, t: t})
			}
			return true
		})
		sort.Slice(img.rows, func(i, j int) bool { return img.rows[i].key < img.rows[j].key })
		images = append(images, img)
	}
	return images
}
