package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"thedb/internal/metrics"
	"thedb/internal/storage"
	"thedb/internal/wal"
)

// CrashPoint names a kill site inside the checkpoint round. The
// torture harness arms Hooks to return an error at one of these and
// verifies recovery lands on a valid checkpoint plus a consistent WAL
// tail no matter where the round died.
type CrashPoint int

const (
	// MidWrite fires after the first slot frame of the temp image.
	MidWrite CrashPoint = iota
	// PreRename fires after the temp image is fsynced, before rename.
	PreRename
	// PostRename fires after the image is published, before WAL
	// rotation and truncation.
	PostRename
	// MidTruncate fires after the first WAL generation is deleted.
	MidTruncate
)

func (p CrashPoint) String() string {
	switch p {
	case MidWrite:
		return "mid-write"
	case PreRename:
		return "pre-rename"
	case PostRename:
		return "post-rename"
	case MidTruncate:
		return "mid-truncate"
	default:
		return fmt.Sprintf("crashpoint(%d)", int(p))
	}
}

// Hooks injects failures at crash points. At returning a non-nil
// error aborts the round there, leaving the disk state exactly as a
// crash at that instant would.
type Hooks struct {
	At func(CrashPoint) error
}

func (h Hooks) at(p CrashPoint) error {
	if h.At == nil {
		return nil
	}
	return h.At(p)
}

// ErrStopped reports a round aborted because the checkpointer was
// stopped while waiting for durability to catch up.
var ErrStopped = errors.New("checkpoint: checkpointer stopped")

// ErrDurabilityLost reports a round aborted because the engine latched
// durability-lost: the WAL can no longer certify the epochs the fuzzy
// scan may have captured, so the image must not be published.
var ErrDurabilityLost = errors.New("checkpoint: durability lost, image not published")

// Source is the engine surface a Checkpointer snapshots. Closures
// keep the package decoupled from internal/core.
type Source struct {
	Catalog *storage.Catalog
	// CurrentEpoch returns the global epoch.
	CurrentEpoch func() uint32
	// DurableEpoch returns the group-commit durability frontier.
	// Required unless Quiesced.
	DurableEpoch func() uint32
	// DurabilityLost reports whether group commit gave up on syncing
	// (the frontier will never advance). Optional.
	DurabilityLost func() bool
	// Quiesced asserts no writer is concurrent with the scan (engine
	// not started, or stopped). The watermark is then the current
	// epoch and no publication gate is needed.
	Quiesced bool
}

// Options configures a Checkpointer.
type Options struct {
	// Dir is where checkpoint-<seq>.ckpt images are published.
	Dir string
	// Interval is the cadence of the background loop (Start). Zero
	// with Start is an error; RunOnce ignores it.
	Interval time.Duration
	// Keep is how many published images to retain (default 2: the
	// newest plus one fallback should the newest be corrupt).
	Keep int
	// Files, when set, is rotated and truncated after each publish so
	// the WAL tail stays bounded. Requires Log.
	Files *FileSet
	// Log is the live logger rotated through Files.
	Log *wal.Logger
	// Stats, when set, receives counters for the obs plane.
	Stats *metrics.Checkpoint
	// Hooks injects crash points (tests only).
	Hooks Hooks
	// GatePoll is the publication-gate polling interval (default 1ms).
	GatePoll time.Duration
	// GateTimeout bounds the publication-gate wait (default 30s); an
	// advancer that never reaches the gate epoch means group commit is
	// wedged and the round aborts rather than hangs.
	GateTimeout time.Duration
}

// Checkpointer takes checkpoints of a Source, either on demand
// (RunOnce) or on a background cadence (Start/Stop).
//
// The round's correctness argument: the watermark W is the durable
// epoch at scan start — every group with epoch ≤ W is both on disk in
// the WAL and fully installed in memory (commit installs memory
// effects before its WAL append; the frontier only advances past
// epochs whose groups are complete), so the fuzzy scan can only see
// those groups in full. Rows from epochs in (W, E_gate] (E_gate = the
// current epoch when the scan finished) may be captured partially;
// before publishing, the round waits until the durable frontier
// reaches E_gate, so any replay that starts from this image finds all
// of those groups in the WAL tail and re-applies them whole
// (value-log replay is idempotent under the Thomas write rule).
// Truncation then deletes only generations with max epoch ≤ W.
type Checkpointer struct {
	src Source
	opt Options

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// New validates the wiring and builds a Checkpointer.
func New(src Source, opt Options) (*Checkpointer, error) {
	if src.Catalog == nil || src.CurrentEpoch == nil {
		return nil, fmt.Errorf("checkpoint: source needs Catalog and CurrentEpoch")
	}
	if !src.Quiesced && src.DurableEpoch == nil {
		return nil, fmt.Errorf("checkpoint: online source needs DurableEpoch")
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("checkpoint: options need Dir")
	}
	if opt.Files != nil && opt.Log == nil {
		return nil, fmt.Errorf("checkpoint: Files requires Log to rotate")
	}
	if opt.Keep <= 0 {
		opt.Keep = 2
	}
	if opt.GatePoll <= 0 {
		opt.GatePoll = time.Millisecond
	}
	if opt.GateTimeout <= 0 {
		opt.GateTimeout = 30 * time.Second
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Checkpointer{src: src, opt: opt}, nil
}

// Start launches the background loop, one round every Interval.
// Round errors are counted in Stats and retried next tick.
func (c *Checkpointer) Start() error {
	if c.opt.Interval <= 0 {
		return fmt.Errorf("checkpoint: Start needs a positive Interval")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return nil
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stop, c.done = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(c.opt.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = c.RunOnce() // errors are visible via Stats.Failed
			}
		}
	}()
	return nil
}

// Stop halts the background loop, waiting out an in-flight round.
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// stopped reports whether Stop has been requested (nil-safe when the
// loop never started).
func (c *Checkpointer) stopped() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stop
}

// RunOnce executes one checkpoint round: scan, write temp image, wait
// the publication gate, fsync, rename into place, prune old images,
// rotate the WAL onto a fresh generation and truncate generations the
// new watermark covers. On error nothing is published (a dead temp
// file may remain; it is never loaded and is overwritten next round).
func (c *Checkpointer) RunOnce() (*Info, error) {
	start := time.Now()
	info, err := c.runOnce()
	if c.opt.Stats != nil {
		if err != nil {
			c.opt.Stats.Failed.Add(1)
		} else {
			c.opt.Stats.Taken.Add(1)
			c.opt.Stats.LastWatermark.Store(info.Watermark)
			c.opt.Stats.LastRows.Store(info.Rows)
			c.opt.Stats.LastBytes.Store(info.Bytes)
			c.opt.Stats.LastDurationNS.Store(time.Since(start).Nanoseconds())
		}
	}
	return info, err
}

func (c *Checkpointer) runOnce() (*Info, error) {
	var watermark uint32
	if c.src.Quiesced {
		watermark = c.src.CurrentEpoch()
	} else {
		watermark = c.src.DurableEpoch()
	}

	images := Scan(c.src.Catalog)

	tmp := filepath.Join(c.opt.Dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	defer func() {
		if f != nil {
			f.Close() //thedb:nolint:syncerr error-path cleanup; the success path Syncs and Closes explicitly before rename
		}
	}()
	midSlot := func() error { return c.opt.Hooks.at(MidWrite) }
	rows, bytes_, maxRowEpoch, err := Write(f, c.src.Catalog, watermark, images, midSlot)
	if err != nil {
		return nil, err
	}

	// Publication gate: the scan may have captured partial effects of
	// epochs up to the current one. Wait until every epoch the image
	// can contain is durable in the WAL, so a restart from this image
	// always finds the full groups in the tail.
	gate := c.src.CurrentEpoch()
	if !c.src.Quiesced {
		if err := c.waitGate(gate); err != nil {
			return nil, err
		}
	}

	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		f = nil
		return nil, err
	}
	f = nil

	if err := c.opt.Hooks.at(PreRename); err != nil {
		return nil, err
	}

	seq := nextSeq(c.opt.Dir)
	final := ckptPath(c.opt.Dir, seq)
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	if err := syncDir(c.opt.Dir); err != nil {
		return nil, err
	}
	info := &Info{
		Path: final, Seq: seq,
		Watermark: watermark, MaxRowEpoch: maxRowEpoch,
		Rows: rows, Bytes: bytes_, Tables: len(c.src.Catalog.Tables()),
	}

	if err := c.opt.Hooks.at(PostRename); err != nil {
		return info, err
	}

	if err := pruneCheckpoints(c.opt.Dir, c.opt.Keep); err != nil {
		return info, err
	}

	if c.opt.Files != nil {
		if _, err := c.opt.Files.Rotate(c.opt.Log); err != nil {
			return info, err
		}
		midTrunc := func() error { return c.opt.Hooks.at(MidTruncate) }
		removed, err := c.opt.Files.Truncate(watermark, midTrunc)
		if c.opt.Stats != nil {
			c.opt.Stats.WALGensRemoved.Add(int64(removed))
		}
		if err != nil {
			return info, err
		}
	}
	return info, nil
}

// waitGate polls until the durable frontier reaches gate.
func (c *Checkpointer) waitGate(gate uint32) error {
	deadline := time.Now().Add(c.opt.GateTimeout)
	stop := c.stopped()
	for {
		if c.src.DurabilityLost != nil && c.src.DurabilityLost() {
			return ErrDurabilityLost
		}
		if c.src.DurableEpoch() >= gate {
			return nil
		}
		if stop != nil {
			select {
			case <-stop:
				return ErrStopped
			default:
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("checkpoint: publication gate timed out (durable %d, need %d)", c.src.DurableEpoch(), gate)
		}
		time.Sleep(c.opt.GatePoll)
	}
}

var ckptFileRE = regexp.MustCompile(`^checkpoint-(\d+)\.ckpt$`)

func ckptPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.ckpt", seq))
}

// listCheckpoints returns published images sorted newest first.
func listCheckpoints(dir string) (seqs []uint64, paths []string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil
	}
	for _, e := range entries {
		m := ckptFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		s, _ := strconv.ParseUint(m[1], 10, 64)
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		paths = append(paths, ckptPath(dir, s))
	}
	return seqs, paths
}

func nextSeq(dir string) uint64 {
	seqs, _ := listCheckpoints(dir)
	if len(seqs) == 0 {
		return 1
	}
	return seqs[0] + 1
}

// pruneCheckpoints deletes all but the keep newest images.
func pruneCheckpoints(dir string, keep int) error {
	_, paths := listCheckpoints(dir)
	if len(paths) <= keep {
		return nil
	}
	for _, p := range paths[keep:] {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return syncDir(dir)
}

// LoadNewest finds the newest valid checkpoint in dir and applies it
// to the catalog: images are tried newest first, and one that fails
// validation (torn write the rename protocol should prevent, bit rot,
// schema drift) is skipped in favor of the next — a checkpoint is an
// optimization over replaying the full WAL, so falling back to an
// older image is always safe for value logs. Returns (nil, nil) if
// dir holds no images at all; an error only if images exist and none
// validates.
func LoadNewest(catalog *storage.Catalog, dir string) (*Info, error) {
	seqs, paths := listCheckpoints(dir)
	if len(paths) == 0 {
		return nil, nil
	}
	var firstErr error
	for i, p := range paths {
		info, err := loadFile(catalog, p)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("checkpoint: %s: %w", filepath.Base(p), err)
			}
			continue
		}
		info.Path = p
		info.Seq = seqs[i]
		return info, nil
	}
	return nil, fmt.Errorf("checkpoint: no valid image in %s: %w", dir, firstErr)
}

func loadFile(catalog *storage.Catalog, path string) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //thedb:nolint:syncerr read-only fd; nothing to lose on close
	return Load(catalog, bufio.NewReaderSize(f, 1<<15))
}

// BootReport is the structured one-line recovery summary a server
// prints at boot and serves at /debug/recovery.
type BootReport struct {
	CheckpointPath   string   `json:"checkpoint,omitempty"`
	CheckpointSeq    uint64   `json:"checkpoint_seq,omitempty"`
	Watermark        uint32   `json:"watermark_epoch"`
	CheckpointRows   int64    `json:"checkpoint_rows"`
	Streams          int      `json:"wal_streams"`
	GroupsApplied    int      `json:"groups_applied"`
	GroupsSkipped    int      `json:"groups_skipped"`
	GroupsDropped    int      `json:"groups_dropped"`
	TornTails        int      `json:"torn_tails"`
	CommandsReplayed int      `json:"commands_replayed"`
	DurableEpoch     uint32   `json:"durable_epoch"`
	SeededEpoch      uint32   `json:"seeded_epoch"`
	Salvaged         bool     `json:"salvaged"`
	Damage           []string `json:"damage,omitempty"`
	WallMS           float64  `json:"wall_ms"`
}
